package printqueue

import (
	"bufio"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// scrapeMetrics GETs /metrics from an ops endpoint, validates the text
// exposition line by line, and returns every sample as "name{labels}" ->
// value.
func scrapeMetrics(t *testing.T, ops *OpsService) map[string]int64 {
	t.Helper()
	resp, err := http.Get("http://" + ops.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type %q does not declare exposition format 0.0.4", ct)
	}
	samples := make(map[string]int64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseInt(line[sp+1:], 10, 64)
		if err != nil {
			t.Fatalf("sample %q has non-integer value: %v", line, err)
		}
		samples[line[:sp]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

// statsConfig provokes every Stats field: a short poll period for many
// checkpoints, a starved read budget so every flip is infeasible and the
// first data-plane query locks the trigger (suppressing the rest), and a
// low depth trigger so deep packets fire it.
func statsConfig() Config {
	cfg := Config{
		TimeWindows: TimeWindowConfig{
			M0: 3, K: 6, Alpha: 1, T: 3, MinPktTxDelay: 10 * time.Nanosecond,
		},
		QueueMonitor:          QueueMonitorConfig{MaxDepthCells: 1024, GranuleCells: 4},
		Ports:                 []int{0},
		PollPeriod:            time.Microsecond,
		ReadRateEntriesPerSec: 1, // one entry per second: every read is infeasible
		DPTriggerDepthCells:   10,
	}
	return cfg
}

// TestStatsMetricsParity guards the Stats field mapping end to end: drive
// periodic checkpoints, a data-plane trigger, suppressed triggers, and
// infeasible flips, then require every Stats field to be nonzero and equal
// to its /metrics sample — adding a counter without exporting it (or
// vice versa) fails here.
func TestStatsMetricsParity(t *testing.T) {
	pq, err := New(statsConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := FlowID{SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2}, SrcPort: 1, DstPort: 2, Proto: 6}
	var ts uint64 = 1000
	for i := 0; i < 500; i++ {
		ts += 100
		pq.Observe(Packet{Flow: f, Port: 0, Bytes: 100}, ts-50, ts, 50)
	}
	pq.Finalize(ts + 1)

	st := pq.Stats()
	if st.Checkpoints == 0 || st.SpecialFreezes == 0 || st.EntriesRead == 0 ||
		st.InfeasibleFlips == 0 || st.DPSuppressed == 0 || st.PacketsObserved == 0 {
		t.Fatalf("test drive left a Stats field zero: %+v", st)
	}

	ops, err := pq.ServeOps("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ops.Close()
	m := scrapeMetrics(t, ops)

	for _, tt := range []struct {
		metric string
		want   int64
	}{
		{"printqueue_checkpoints_total", int64(st.Checkpoints)},
		{"printqueue_special_freezes_total", int64(st.SpecialFreezes)},
		{"printqueue_checkpoint_entries_read_total", st.EntriesRead},
		{"printqueue_infeasible_flips_total", int64(st.InfeasibleFlips)},
		{"printqueue_dp_suppressed_total", int64(st.DPSuppressed)},
		{`printqueue_port_packets_total{port="0"}`, st.PacketsObserved},
	} {
		got, ok := m[tt.metric]
		if !ok {
			t.Errorf("/metrics missing %s", tt.metric)
			continue
		}
		if got != tt.want {
			t.Errorf("%s = %d, but Stats reports %d", tt.metric, got, tt.want)
		}
	}
	// The freeze-to-retire histogram must have one observation per freeze
	// (periodic and special alike).
	if got := m["printqueue_checkpoint_freeze_to_retire_ns_count"]; got != int64(st.Checkpoints+st.SpecialFreezes) {
		t.Errorf("freeze-to-retire count = %d, want %d", got, st.Checkpoints+st.SpecialFreezes)
	}
}

// TestServeOpsUnderPipelineLoad is the acceptance check: with the sharded
// pipeline open and a query served, /metrics exposes ring occupancy,
// backpressure nanoseconds, freeze-to-retire buckets, and query latency
// histograms, and the other ops endpoints respond.
func TestServeOpsUnderPipelineLoad(t *testing.T) {
	cfg := DefaultConfig(0, 1)
	cfg.PollPeriod = 10 * time.Microsecond
	cfg.MaxCheckpoints = 8
	pq, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := pq.ServeOps("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ops.Close()

	pl, err := pq.StartPipeline(PipelineConfig{Shards: 2, BatchSize: 64, RingDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	f := FlowID{SrcIP: [4]byte{10, 0, 0, 9}, DstIP: [4]byte{10, 0, 0, 2}, SrcPort: 9, DstPort: 80, Proto: 17}
	var ts uint64 = 1000
	for i := 0; i < 50000; i++ {
		ts += 80
		pl.Observe(Packet{Flow: f, Port: i & 1, Bytes: 100}, ts-40, ts, 30)
	}
	pl.Flush()

	// Scrape while the pipeline is still open: the ops endpoint must not
	// perturb or block ingestion.
	m := scrapeMetrics(t, ops)
	for _, name := range []string{
		`printqueue_pipeline_shard_ring_occupancy{shard="0"}`,
		`printqueue_pipeline_shard_ring_high_watermark{shard="0"}`,
		`printqueue_pipeline_backpressure_wait_ns_total{shard="0"}`,
	} {
		if _, ok := m[name]; !ok {
			t.Errorf("/metrics missing %s while pipeline open", name)
		}
	}
	pl.Close()
	pq.Finalize(ts + 1)

	// Serve one query so the query-path histograms have observations.
	svc, err := pq.Serve("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	qc, err := DialQueries(svc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()
	if _, err := qc.Interval(0, ts-4000, ts); err != nil {
		t.Fatal(err)
	}

	m = scrapeMetrics(t, ops)
	if m[`printqueue_pipeline_packets_total{shard="0"}`]+m[`printqueue_pipeline_packets_total{shard="1"}`] != 50000 {
		t.Error("shard packet counters do not sum to the ingested total")
	}
	if m["printqueue_checkpoint_freeze_to_retire_ns_count"] == 0 {
		t.Error("freeze-to-retire histogram empty after checkpoints")
	}
	found := false
	for name := range m {
		if strings.HasPrefix(name, `printqueue_checkpoint_freeze_to_retire_ns_bucket{le="`) {
			found = true
			break
		}
	}
	if !found {
		t.Error("/metrics missing freeze-to-retire histogram buckets")
	}
	if m[`printqueue_query_latency_ns_count{op="interval"}`] != 1 {
		t.Errorf("interval query latency count = %d, want 1",
			m[`printqueue_query_latency_ns_count{op="interval"}`])
	}
	if m["printqueue_netserver_requests_total"] != 1 {
		t.Errorf("netserver requests = %d, want 1", m["printqueue_netserver_requests_total"])
	}
	// Resilience counters register with the listener and must be scrapeable
	// even before they move.
	for _, name := range []string{
		"printqueue_netserver_shed_total",
		"printqueue_netserver_accept_retries_total",
	} {
		if _, ok := m[name]; !ok {
			t.Errorf("/metrics missing %s", name)
		}
	}

	for _, path := range []string{"/healthz", "/debug/vars", "/debug/pipeline"} {
		resp, err := http.Get("http://" + ops.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
		if path == "/debug/pipeline" && !strings.Contains(string(body), `"ports"`) {
			t.Errorf("/debug/pipeline missing ports section: %s", body)
		}
	}
}

// TestPipelineAttachError covers the activated-port bounds check: attaching
// to a switch that lacks an activated port must fail, naming the port,
// rather than silently monitoring a subset.
func TestPipelineAttachError(t *testing.T) {
	sw, err := NewSwitch(SwitchConfig{Ports: 2, LinkBps: 10e9, BufferCells: 1000})
	if err != nil {
		t.Fatal(err)
	}
	pq, err := New(DefaultConfig(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := pq.StartPipeline(PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Close()
	err = pl.Attach(sw)
	if err == nil {
		t.Fatal("Attach accepted an activated port beyond the switch's port count")
	}
	if !strings.Contains(err.Error(), "[3]") {
		t.Errorf("error %q does not name the unattachable port 3", err)
	}

	pq2, err := New(DefaultConfig(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	pl2, err := pq2.StartPipeline(PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer pl2.Close()
	if err := pl2.Attach(sw); err != nil {
		t.Fatalf("Attach failed on fully covered switch: %v", err)
	}
}

// TestQueryClientTimeoutsExposed checks the public client's timeout
// accounting against a listener that accepts and never answers.
func TestQueryClientTimeoutsExposed(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold silently until the listener closes
		}
	}()

	// MaxRetries -1: exactly one attempt so exactly one timeout is counted.
	c, err := DialQueriesOpts(ln.Addr().String(), DialOptions{Timeout: 50 * time.Millisecond, MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Interval(0, 1, 2); err == nil {
		t.Fatal("query against a mute server succeeded")
	}
	if got := c.Timeouts(); got != 1 {
		t.Errorf("Timeouts() = %d, want 1", got)
	}
}
