package printqueue

import (
	"time"

	"printqueue/internal/pktrec"
	"printqueue/internal/trace"
)

// This file exposes the workload substrate: generators for the paper's
// three evaluation traces and its motivating scenarios, producing Packet
// schedules ready for Switch.Inject.

// Workload selects one of the paper's traffic mixes.
type Workload int

const (
	// WorkloadUW models the University of Wisconsin data-center trace:
	// ~100 B packets, extreme long-tailed flow sizes.
	WorkloadUW Workload = iota
	// WorkloadWS models the web-search (DCTCP) flow-size distribution with
	// near-MTU packets.
	WorkloadWS
	// WorkloadDM models the data-mining (VL2) flow-size distribution with
	// near-MTU packets.
	WorkloadDM
)

func (w Workload) internal() trace.Workload {
	switch w {
	case WorkloadWS:
		return trace.WS
	case WorkloadDM:
		return trace.DM
	default:
		return trace.UW
	}
}

func (w Workload) String() string { return w.internal().String() }

// TraceConfig shapes a synthetic trace for one egress port.
type TraceConfig struct {
	Workload Workload
	Seed     uint64
	Port     int
	Queue    int
	LinkBps  uint64
	// Packets or Duration bounds the trace (at least one required).
	Packets  int
	Duration time.Duration
	// CalmLoad and BurstLoad are offered loads relative to LinkBps outside
	// and during congestion episodes (defaults 0.9 / workload-specific).
	CalmLoad, BurstLoad float64
	// Episodic drives each congestion episode to a target queue depth
	// drawn log-uniformly from [MinEpisodeCells, MaxEpisodeCells]; this is
	// how the evaluation populates every queue-depth bucket.
	Episodic                         bool
	MinEpisodeCells, MaxEpisodeCells int
}

// GenerateTrace materializes a synthetic trace.
func GenerateTrace(cfg TraceConfig) ([]Packet, error) {
	pkts, err := trace.Generate(trace.Config{
		Workload:        cfg.Workload.internal(),
		Seed:            cfg.Seed,
		Port:            cfg.Port,
		Queue:           cfg.Queue,
		LinkBps:         cfg.LinkBps,
		Packets:         cfg.Packets,
		DurationNs:      uint64(cfg.Duration.Nanoseconds()),
		CalmLoad:        cfg.CalmLoad,
		BurstLoad:       cfg.BurstLoad,
		Episodic:        cfg.Episodic,
		MinEpisodeCells: cfg.MinEpisodeCells,
		MaxEpisodeCells: cfg.MaxEpisodeCells,
	})
	if err != nil {
		return nil, err
	}
	return convertPackets(pkts), nil
}

func convertPackets(pkts []*pktrec.Packet) []Packet {
	out := make([]Packet, len(pkts))
	for i, p := range pkts {
		out[i] = Packet{
			Flow:    fromInternal(p.Flow),
			Bytes:   p.Bytes,
			Arrival: p.Arrival,
			Port:    p.Port,
			Queue:   p.Queue,
		}
	}
	return out
}

// MicroburstScenario configures the Figure-1 scenario: light background
// traffic plus one multi-sender microburst.
type MicroburstScenario struct {
	Port          int
	LinkBps       uint64
	Seed          uint64
	BackgroundBps float64
	BurstFlows    int
	BurstPackets  int
	BurstStart    time.Duration
	Duration      time.Duration
}

// Microburst builds the scenario. The returned FlowID is the background
// flow whose post-burst packets make natural victims.
func Microburst(s MicroburstScenario) ([]Packet, FlowID, error) {
	pkts, bg, err := trace.Microburst(trace.MicroburstConfig{
		Port:          s.Port,
		LinkBps:       s.LinkBps,
		Seed:          s.Seed,
		BackgroundBps: s.BackgroundBps,
		BurstFlows:    s.BurstFlows,
		BurstPackets:  s.BurstPackets,
		BurstStartNs:  uint64(s.BurstStart.Nanoseconds()),
		DurationNs:    uint64(s.Duration.Nanoseconds()),
	})
	if err != nil {
		return nil, FlowID{}, err
	}
	return convertPackets(pkts), fromInternal(bg), nil
}

// IncastScenario configures synchronized senders converging on one port.
type IncastScenario struct {
	Port          int
	LinkBps       uint64
	Seed          uint64
	Senders       int
	ResponseBytes int
	Start         time.Duration
	SyncJitter    time.Duration
	Duration      time.Duration
}

// Incast builds the scenario, returning the probe (victim) flow and the
// synchronized application flows.
func Incast(s IncastScenario) ([]Packet, FlowID, []FlowID, error) {
	pkts, probe, app, err := trace.Incast(trace.IncastConfig{
		Port:          s.Port,
		LinkBps:       s.LinkBps,
		Seed:          s.Seed,
		Senders:       s.Senders,
		ResponseBytes: s.ResponseBytes,
		StartNs:       uint64(s.Start.Nanoseconds()),
		SyncJitterNs:  uint64(s.SyncJitter.Nanoseconds()),
		DurationNs:    uint64(s.Duration.Nanoseconds()),
	})
	if err != nil {
		return nil, FlowID{}, nil, err
	}
	flows := make([]FlowID, len(app))
	for i, k := range app {
		flows[i] = fromInternal(k)
	}
	return convertPackets(pkts), fromInternal(probe), flows, nil
}

// CaseStudyFlows names the §7.2 case study's principals.
type CaseStudyFlows struct {
	Background FlowID
	Burst      FlowID
	NewTCP     FlowID
}

// CaseStudy builds the paper's §7.2 scenario at the given time scale
// (1.0 = the full 500 ms, 10000-datagram run).
func CaseStudy(scale float64) ([]Packet, CaseStudyFlows, error) {
	pkts, fs, err := trace.CaseStudy(trace.DefaultCaseStudy(scale))
	if err != nil {
		return nil, CaseStudyFlows{}, err
	}
	return convertPackets(pkts), CaseStudyFlows{
		Background: fromInternal(fs.Background),
		Burst:      fromInternal(fs.Burst),
		NewTCP:     fromInternal(fs.NewTCP),
	}, nil
}
