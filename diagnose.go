package printqueue

import "fmt"

// Diagnosis is a complete culprit report for one victim packet: all three
// classes of the paper's taxonomy in one answer.
type Diagnosis struct {
	Port    int
	Queue   int
	EnqTime uint64
	DeqTime uint64
	// RegimeStart is the congestion regime's beginning, if supplied.
	RegimeStart uint64

	// Direct culprits: flows dequeued during [EnqTime, DeqTime).
	Direct Report
	// Indirect culprits: flows dequeued during [RegimeStart, EnqTime);
	// empty when no regime start was supplied.
	Indirect Report
	// Original culprits: the queue monitor's staircase at EnqTime.
	Original Report
}

// Diagnose answers the paper's full question for one victim: who directly
// delayed it, who else belongs to its congestion regime, and who built the
// queue it found. Pass regimeStart = 0 to skip the indirect query (the
// regime boundary typically comes from a PacketLog.RegimeStart or an
// operator's estimate).
func (s *System) Diagnose(port, queue int, enqTime, deqTime, regimeStart uint64) (*Diagnosis, error) {
	if deqTime <= enqTime {
		return nil, fmt.Errorf("printqueue: victim interval [%d, %d) is empty", enqTime, deqTime)
	}
	d := &Diagnosis{
		Port:        port,
		Queue:       queue,
		EnqTime:     enqTime,
		DeqTime:     deqTime,
		RegimeStart: regimeStart,
	}
	var err error
	if d.Direct, err = s.QueryInterval(port, enqTime, deqTime); err != nil {
		return nil, err
	}
	if regimeStart > 0 && regimeStart < enqTime {
		if d.Indirect, err = s.QueryInterval(port, regimeStart, enqTime); err != nil {
			return nil, err
		}
	}
	if d.Original, err = s.QueryOriginal(port, queue, enqTime); err != nil {
		return nil, err
	}
	return d, nil
}

// Summary renders the diagnosis as a short human-readable report listing
// the top flows of each culprit class.
func (d *Diagnosis) Summary(top int) string {
	if top <= 0 {
		top = 5
	}
	out := fmt.Sprintf("victim on port %d queue %d: queued %d ns\n", d.Port, d.Queue, d.DeqTime-d.EnqTime)
	section := func(name string, r Report) string {
		s := fmt.Sprintf("%s (%d flows, %.1f packets):\n", name, len(r), r.Total())
		for i, c := range r {
			if i == top {
				break
			}
			s += fmt.Sprintf("  %-44v %10.1f\n", c.Flow, c.Packets)
		}
		return s
	}
	out += section("direct culprits", d.Direct)
	if d.RegimeStart > 0 {
		out += section("indirect culprits", d.Indirect)
	}
	out += section("original culprits", d.Original)
	return out
}
