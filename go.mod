module printqueue

go 1.22
