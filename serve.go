package printqueue

import (
	"time"

	"printqueue/internal/core/control"
)

// QueryService is a running TCP endpoint for asynchronous queries: the
// paper's Figure-3 path where higher-layer applications send requests to
// the analysis program on the switch CPU. The wire protocol is
// newline-delimited JSON; see QueryClient for the matching client.
type QueryService struct {
	qs  *control.QueryServer
	srv *control.NetServer
}

// ServeOptions tunes the TCP query listener's resilience behavior.
type ServeOptions struct {
	// IdleTimeout closes a connection that sends no request for this long.
	// 0 means the 2m default; negative disables the idle deadline.
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write. 0 means the 10s default;
	// negative disables it.
	WriteTimeout time.Duration
	// ShedLimit bounds concurrently executing requests; beyond it the
	// server replies {"error":"overloaded"} instead of queueing (counted in
	// printqueue_netserver_shed_total). 0 means the default of 256;
	// negative disables shedding.
	ShedLimit int
}

// Serve starts query workers plus a TCP listener on addr (use
// "127.0.0.1:0" to pick a free port). Queries run concurrently with the
// data plane; the per-packet path stays lock-free.
func (s *System) Serve(addr string, workers int) (*QueryService, error) {
	return s.ServeOpts(addr, workers, ServeOptions{})
}

// ServeOpts is Serve with explicit listener options.
func (s *System) ServeOpts(addr string, workers int, opts ServeOptions) (*QueryService, error) {
	qs := control.NewQueryServer(s.inner)
	qs.Start(workers)
	srv, err := control.ServeQueriesOpts(addr, qs, control.ServeOptions{
		IdleTimeout:  opts.IdleTimeout,
		WriteTimeout: opts.WriteTimeout,
		ShedLimit:    opts.ShedLimit,
	})
	if err != nil {
		qs.Stop()
		return nil, err
	}
	return &QueryService{qs: qs, srv: srv}, nil
}

// Addr returns the listening address.
func (q *QueryService) Addr() string { return q.srv.Addr().String() }

// Close stops the listener and the query workers.
func (q *QueryService) Close() error {
	err := q.srv.Close()
	q.qs.Stop()
	return err
}

// QueryClient talks to a QueryService over TCP. Every round trip carries
// an I/O deadline (default 5s) so a hung or partitioned QueryService fails
// a diagnosis quickly instead of blocking it forever. Queries are
// idempotent, so failed round trips are retried automatically on a fresh
// connection with exponential backoff (default 2 retries); requests and
// responses carry matching ids, so a response delayed past its deadline can
// never be mistaken for the answer to a later query.
type QueryClient struct {
	inner *control.QueryClient
}

// DialOptions tunes a QueryClient connection.
type DialOptions struct {
	// Timeout is the per-round-trip I/O deadline. 0 means the 5s default;
	// negative disables deadlines entirely.
	Timeout time.Duration
	// MaxRetries bounds automatic retries after a retryable failure
	// (timeout, reset, overload). 0 means the default of 2; negative
	// disables retries.
	MaxRetries int
	// BackoffBase is the first retry delay; it doubles per attempt with
	// jitter. 0 means the 20ms default; negative disables backoff sleeps.
	BackoffBase time.Duration
	// BackoffMax caps the backoff delay. 0 means the 1s default.
	BackoffMax time.Duration
}

// DialQueries connects to a QueryService with default options.
func DialQueries(addr string) (*QueryClient, error) {
	return DialQueriesOpts(addr, DialOptions{})
}

// DialQueriesOpts connects to a QueryService with explicit options.
func DialQueriesOpts(addr string, opts DialOptions) (*QueryClient, error) {
	inner, err := control.DialOpts(addr, control.DialOptions{
		Timeout:     opts.Timeout,
		MaxRetries:  opts.MaxRetries,
		BackoffBase: opts.BackoffBase,
		BackoffMax:  opts.BackoffMax,
	})
	if err != nil {
		return nil, err
	}
	return &QueryClient{inner: inner}, nil
}

// Close closes the connection.
func (c *QueryClient) Close() error { return c.inner.Close() }

// Timeouts returns how many of this client's round trips have failed with
// an I/O timeout. The server-side view of query health lives on the ops
// endpoint (printqueue_query_* metrics).
func (c *QueryClient) Timeouts() int64 { return c.inner.Timeouts() }

// Retries returns how many retry attempts this client has made after
// retryable failures.
func (c *QueryClient) Retries() int64 { return c.inner.Retries() }

// Reconnects returns how many times this client has redialed after a
// connection was poisoned by an I/O error.
func (c *QueryClient) Reconnects() int64 { return c.inner.Reconnects() }

// reportFromWire converts a wire response into a Report.
func reportFromWire(counts map[string]float64) (Report, error) {
	out := make(Report, 0, len(counts))
	for s, n := range counts {
		f, err := ParseFlowID(s)
		if err != nil {
			return nil, err
		}
		out = append(out, Culprit{Flow: f, Packets: n})
	}
	SortCulprits(out)
	return out, nil
}

// Interval queries per-flow packet counts dequeued during [start, end) on a
// port.
func (c *QueryClient) Interval(port int, start, end uint64) (Report, error) {
	counts, err := c.inner.Interval(port, start, end)
	if err != nil {
		return nil, err
	}
	return reportFromWire(counts)
}

// Original queries the original causes of congestion at time t.
func (c *QueryClient) Original(port, queue int, t uint64) (Report, error) {
	counts, err := c.inner.Original(port, queue, t)
	if err != nil {
		return nil, err
	}
	return reportFromWire(counts)
}
