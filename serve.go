package printqueue

import (
	"printqueue/internal/core/control"
)

// QueryService is a running TCP endpoint for asynchronous queries: the
// paper's Figure-3 path where higher-layer applications send requests to
// the analysis program on the switch CPU. The wire protocol is
// newline-delimited JSON; see QueryClient for the matching client.
type QueryService struct {
	qs  *control.QueryServer
	srv *control.NetServer
}

// Serve starts query workers plus a TCP listener on addr (use
// "127.0.0.1:0" to pick a free port). Queries run concurrently with the
// data plane; the per-packet path stays lock-free.
func (s *System) Serve(addr string, workers int) (*QueryService, error) {
	qs := control.NewQueryServer(s.inner)
	qs.Start(workers)
	srv, err := control.ServeQueries(addr, qs)
	if err != nil {
		qs.Stop()
		return nil, err
	}
	return &QueryService{qs: qs, srv: srv}, nil
}

// Addr returns the listening address.
func (q *QueryService) Addr() string { return q.srv.Addr().String() }

// Close stops the listener and the query workers.
func (q *QueryService) Close() error {
	err := q.srv.Close()
	q.qs.Stop()
	return err
}

// QueryClient talks to a QueryService over TCP.
type QueryClient struct {
	inner *control.QueryClient
}

// DialQueries connects to a QueryService.
func DialQueries(addr string) (*QueryClient, error) {
	inner, err := control.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &QueryClient{inner: inner}, nil
}

// Close closes the connection.
func (c *QueryClient) Close() error { return c.inner.Close() }

// reportFromWire converts a wire response into a Report.
func reportFromWire(counts map[string]float64) (Report, error) {
	out := make(Report, 0, len(counts))
	for s, n := range counts {
		f, err := ParseFlowID(s)
		if err != nil {
			return nil, err
		}
		out = append(out, Culprit{Flow: f, Packets: n})
	}
	SortCulprits(out)
	return out, nil
}

// Interval queries per-flow packet counts dequeued during [start, end) on a
// port.
func (c *QueryClient) Interval(port int, start, end uint64) (Report, error) {
	counts, err := c.inner.Interval(port, start, end)
	if err != nil {
		return nil, err
	}
	return reportFromWire(counts)
}

// Original queries the original causes of congestion at time t.
func (c *QueryClient) Original(port, queue int, t uint64) (Report, error) {
	counts, err := c.inner.Original(port, queue, t)
	if err != nil {
		return nil, err
	}
	return reportFromWire(counts)
}
