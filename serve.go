package printqueue

import (
	"fmt"
	"time"

	"printqueue/internal/core/control"
)

// QueryService is a running TCP endpoint for asynchronous queries: the
// paper's Figure-3 path where higher-layer applications send requests to
// the analysis program on the switch CPU. One listener speaks two wire
// protocols, negotiated by the first byte of each connection: the binary
// multiplexed v2 protocol (see MuxQueryClient) and newline-delimited JSON
// (see QueryClient), which remains as the fallback.
type QueryService struct {
	qs  *control.QueryServer
	srv *control.NetServer
}

// ServeOptions tunes the TCP query listener's resilience behavior.
type ServeOptions struct {
	// IdleTimeout closes a connection that sends no request for this long.
	// 0 means the 2m default; negative disables the idle deadline.
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write. 0 means the 10s default;
	// negative disables it.
	WriteTimeout time.Duration
	// ShedLimit bounds concurrently executing requests; beyond it the
	// server replies {"error":"overloaded"} instead of queueing (counted in
	// printqueue_netserver_shed_total). 0 means the default of 256;
	// negative disables shedding.
	ShedLimit int
}

// Serve starts query workers plus a TCP listener on addr (use
// "127.0.0.1:0" to pick a free port). Queries run concurrently with the
// data plane; the per-packet path stays lock-free.
func (s *System) Serve(addr string, workers int) (*QueryService, error) {
	return s.ServeOpts(addr, workers, ServeOptions{})
}

// ServeOpts is Serve with explicit listener options.
func (s *System) ServeOpts(addr string, workers int, opts ServeOptions) (*QueryService, error) {
	qs := control.NewQueryServer(s.inner)
	qs.Start(workers)
	srv, err := control.ServeQueriesOpts(addr, qs, control.ServeOptions{
		IdleTimeout:  opts.IdleTimeout,
		WriteTimeout: opts.WriteTimeout,
		ShedLimit:    opts.ShedLimit,
	})
	if err != nil {
		qs.Stop()
		return nil, err
	}
	return &QueryService{qs: qs, srv: srv}, nil
}

// Addr returns the listening address.
func (q *QueryService) Addr() string { return q.srv.Addr().String() }

// Close stops the listener and the query workers.
func (q *QueryService) Close() error {
	err := q.srv.Close()
	q.qs.Stop()
	return err
}

// QueryClient talks to a QueryService over TCP. Every round trip carries
// an I/O deadline (default 5s) so a hung or partitioned QueryService fails
// a diagnosis quickly instead of blocking it forever. Queries are
// idempotent, so failed round trips are retried automatically on a fresh
// connection with exponential backoff (default 2 retries); requests and
// responses carry matching ids, so a response delayed past its deadline can
// never be mistaken for the answer to a later query.
type QueryClient struct {
	inner *control.QueryClient
}

// DialOptions tunes a QueryClient connection.
type DialOptions struct {
	// Timeout is the per-round-trip I/O deadline. 0 means the 5s default;
	// negative disables deadlines entirely.
	Timeout time.Duration
	// MaxRetries bounds automatic retries after a retryable failure
	// (timeout, reset, overload). 0 means the default of 2; negative
	// disables retries.
	MaxRetries int
	// BackoffBase is the first retry delay; it doubles per attempt with
	// jitter. 0 means the 20ms default; negative disables backoff sleeps.
	BackoffBase time.Duration
	// BackoffMax caps the backoff delay. 0 means the 1s default.
	BackoffMax time.Duration
	// Tracer, when non-nil, samples this client's queries into end-to-end
	// traces: sampled queries carry their trace id to the server, and the
	// reply brings the server-side spans back into the same trace.
	// Unsampled queries stay on the untraced wire path and only feed the
	// tracer's slow-query log. See NewTracer.
	Tracer *Tracer
}

// DialQueries connects to a QueryService with default options.
func DialQueries(addr string) (*QueryClient, error) {
	return DialQueriesOpts(addr, DialOptions{})
}

// DialQueriesOpts connects to a QueryService with explicit options.
func DialQueriesOpts(addr string, opts DialOptions) (*QueryClient, error) {
	inner, err := control.DialOpts(addr, control.DialOptions{
		Timeout:     opts.Timeout,
		MaxRetries:  opts.MaxRetries,
		BackoffBase: opts.BackoffBase,
		BackoffMax:  opts.BackoffMax,
		Tracer:      opts.Tracer,
	})
	if err != nil {
		return nil, err
	}
	return &QueryClient{inner: inner}, nil
}

// Close closes the connection.
func (c *QueryClient) Close() error { return c.inner.Close() }

// Timeouts returns how many of this client's round trips have failed with
// an I/O timeout. The server-side view of query health lives on the ops
// endpoint (printqueue_query_* metrics).
func (c *QueryClient) Timeouts() int64 { return c.inner.Timeouts() }

// Retries returns how many retry attempts this client has made after
// retryable failures.
func (c *QueryClient) Retries() int64 { return c.inner.Retries() }

// Reconnects returns how many times this client has redialed after a
// connection was poisoned by an I/O error.
func (c *QueryClient) Reconnects() int64 { return c.inner.Reconnects() }

// MuxQueryClient talks to a QueryService over the binary v2 wire protocol
// with true multiplexing: many queries may be in flight on one TCP
// connection at once (call it concurrently from any number of goroutines),
// and Batch answers many queries with a single frame in each direction.
// It keeps the QueryClient resilience contract — per-round-trip deadlines,
// automatic retries with backoff, and id-matched responses so a late reply
// is never mistaken for a later query's answer.
type MuxQueryClient struct {
	inner *control.MuxClient
}

// DialQueriesMux connects a multiplexed binary client with default options.
func DialQueriesMux(addr string) (*MuxQueryClient, error) {
	return DialQueriesMuxOpts(addr, DialOptions{})
}

// DialQueriesMuxOpts connects a multiplexed binary client with explicit
// options. The options have the same meaning as for DialQueriesOpts.
func DialQueriesMuxOpts(addr string, opts DialOptions) (*MuxQueryClient, error) {
	inner, err := control.DialMuxOpts(addr, control.DialOptions{
		Timeout:     opts.Timeout,
		MaxRetries:  opts.MaxRetries,
		BackoffBase: opts.BackoffBase,
		BackoffMax:  opts.BackoffMax,
		Tracer:      opts.Tracer,
	})
	if err != nil {
		return nil, err
	}
	return &MuxQueryClient{inner: inner}, nil
}

// Close closes the connection and fails any in-flight queries.
func (c *MuxQueryClient) Close() error { return c.inner.Close() }

// Timeouts returns how many round trips have failed with an I/O timeout.
func (c *MuxQueryClient) Timeouts() int64 { return c.inner.Timeouts() }

// Retries returns how many retry attempts this client has made.
func (c *MuxQueryClient) Retries() int64 { return c.inner.Retries() }

// Reconnects returns how many times this client has redialed after a
// connection was poisoned.
func (c *MuxQueryClient) Reconnects() int64 { return c.inner.Reconnects() }

// InFlight returns the number of queries currently awaiting replies.
func (c *MuxQueryClient) InFlight() int64 { return c.inner.InFlight() }

// Interval queries per-flow packet counts dequeued during [start, end) on a
// port. Safe for concurrent use; concurrent calls share the connection.
func (c *MuxQueryClient) Interval(port int, start, end uint64) (Report, error) {
	counts, err := c.inner.Interval(port, start, end)
	if err != nil {
		return nil, err
	}
	return reportFromWire(counts)
}

// Original queries the original causes of congestion at time t.
func (c *MuxQueryClient) Original(port, queue int, t uint64) (Report, error) {
	counts, err := c.inner.Original(port, queue, t)
	if err != nil {
		return nil, err
	}
	return reportFromWire(counts)
}

// BatchQuery is one query in a Batch call. Kind is "interval" (Port,
// Start, End) or "original" (Port, Queue, At).
type BatchQuery struct {
	Kind  string
	Port  int
	Queue int
	Start uint64
	End   uint64
	At    uint64
}

// BatchResult is the answer to the BatchQuery at the same index: a Report
// or a per-query error. A per-query error never fails the whole batch.
type BatchResult struct {
	Report Report
	Err    error
}

// Batch sends every query in one request frame and decodes every answer
// from one response frame, preserving order. It is the cheapest way to ask
// many questions: framing, syscalls, and round-trip latency are amortized
// across the whole batch.
func (c *MuxQueryClient) Batch(queries []BatchQuery) ([]BatchResult, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	wire := make([]control.BatchQuery, len(queries))
	for i, q := range queries {
		switch q.Kind {
		case "interval":
			wire[i] = control.BatchQuery{Kind: control.IntervalQuery, Port: q.Port, Start: q.Start, End: q.End}
		case "original":
			wire[i] = control.BatchQuery{Kind: control.OriginalQuery, Port: q.Port, Queue: q.Queue, Start: q.At}
		default:
			return nil, fmt.Errorf("batch query %d: unknown kind %q", i, q.Kind)
		}
	}
	rs, err := c.inner.Batch(wire)
	if err != nil {
		return nil, err
	}
	out := make([]BatchResult, len(rs))
	for i, r := range rs {
		if r.Err != nil {
			out[i] = BatchResult{Err: r.Err}
			continue
		}
		rep, err := reportFromWire(r.Counts)
		if err != nil {
			return nil, err
		}
		out[i] = BatchResult{Report: rep}
	}
	return out, nil
}

// reportFromWire converts a wire response into a Report.
func reportFromWire(counts map[string]float64) (Report, error) {
	out := make(Report, 0, len(counts))
	for s, n := range counts {
		f, err := ParseFlowID(s)
		if err != nil {
			return nil, err
		}
		out = append(out, Culprit{Flow: f, Packets: n})
	}
	SortCulprits(out)
	return out, nil
}

// Interval queries per-flow packet counts dequeued during [start, end) on a
// port.
func (c *QueryClient) Interval(port int, start, end uint64) (Report, error) {
	counts, err := c.inner.Interval(port, start, end)
	if err != nil {
		return nil, err
	}
	return reportFromWire(counts)
}

// Original queries the original causes of congestion at time t.
func (c *QueryClient) Original(port, queue int, t uint64) (Report, error) {
	counts, err := c.inner.Original(port, queue, t)
	if err != nil {
		return nil, err
	}
	return reportFromWire(counts)
}
