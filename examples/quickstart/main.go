// Quickstart: run PrintQueue on a single simulated 10 Gbps port, replay a
// synthetic congested trace, pick the packet that suffered the deepest
// queue, and ask which flows caused its delay.
package main

import (
	"fmt"
	"log"
	"time"

	"printqueue"
)

func main() {
	// 1. A one-port switch with a 40k-cell (3.2 MB) buffer.
	sw, err := printqueue.NewSwitch(printqueue.SwitchConfig{
		Ports:       1,
		LinkBps:     10e9,
		BufferCells: 40000,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. PrintQueue with the paper's UW-trace parameters, attached to the
	// port, plus a telemetry log for victim selection (evaluation only —
	// a real deployment doesn't need the log).
	pq, err := printqueue.New(printqueue.DefaultConfig(0))
	if err != nil {
		log.Fatal(err)
	}
	pq.Attach(sw)
	tlog := sw.AttachLog(0)

	// 3. Replay 300k packets of a bursty small-packet workload.
	pkts, err := printqueue.GenerateTrace(printqueue.TraceConfig{
		Workload: printqueue.WorkloadUW,
		Seed:     42,
		LinkBps:  10e9,
		Packets:  300000,
		Episodic: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pkts {
		sw.Inject(p)
	}
	sw.Flush()
	pq.Finalize(sw.Now() + 1)

	// 4. Pick the deepest victim and diagnose its direct culprits: the
	// flows the switch chose to serve instead of it.
	victims := tlog.Victims(1000, 0)
	if len(victims) == 0 {
		log.Fatal("no congestion in trace")
	}
	worst := victims[0]
	for _, i := range victims {
		if tlog.Record(i).DepthCells > tlog.Record(worst).DepthCells {
			worst = i
		}
	}
	v := tlog.Record(worst)
	fmt.Printf("victim %v waited %v behind %d cells of queue\n",
		v.Flow, time.Duration(v.DeqTime-v.EnqTime), v.DepthCells)

	report, err := pq.QueryInterval(0, v.EnqTime, v.DeqTime)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop direct culprits (estimated packets during the victim's wait):\n")
	for i, c := range report {
		if i == 10 {
			break
		}
		fmt.Printf("  %-44v %8.1f\n", c.Flow, c.Packets)
	}

	// 5. Score against ground truth, as the paper's evaluation does.
	p, r := printqueue.Accuracy(report, tlog.DirectTruth(worst))
	fmt.Printf("\naccuracy vs ground truth: precision %.3f, recall %.3f\n", p, r)
	fmt.Printf("control plane: %+v\n", pq.Stats())
}
