// Priority scheduling: the paper's Figure-1 situation. A low-priority flow
// shares a port with bursts of high-priority traffic under strict-priority
// scheduling. The victim (low-priority packet) is delayed by high-priority
// packets that arrived AFTER it — something a FIFO mental model misses, and
// exactly why PrintQueue defines direct culprits by dequeue interval
// ("this definition is independent of the packet scheduling algorithm").
// The same diagnosis runs unchanged under a PIFO scheduler.
package main

import (
	"fmt"
	"log"
	"time"

	"printqueue"
)

func buildSchedule() ([]printqueue.Packet, printqueue.FlowID, printqueue.FlowID) {
	lo := printqueue.FlowID{SrcIP: [4]byte{10, 1, 0, 1}, DstIP: [4]byte{10, 2, 0, 1}, SrcPort: 4000, DstPort: 5001, Proto: 6}
	hi := printqueue.FlowID{SrcIP: [4]byte{10, 1, 0, 2}, DstIP: [4]byte{10, 2, 0, 1}, SrcPort: 4001, DstPort: 5001, Proto: 17}
	var pkts []printqueue.Packet
	// Low-priority flow: steady 2 Gbps (class 1).
	for t := uint64(0); t < 4e6; t += 6000 {
		pkts = append(pkts, printqueue.Packet{Flow: lo, Bytes: 1500, Arrival: t, Queue: 1})
	}
	// High-priority bursts (class 0): 12 Gbps for 200 us, every 1 ms.
	for burst := uint64(0); burst < 4; burst++ {
		start := 500000 + burst*1000000
		for t := start; t < start+200000; t += 1000 {
			pkts = append(pkts, printqueue.Packet{Flow: hi, Bytes: 1500, Arrival: t, Queue: 0})
		}
	}
	// Sort by arrival (merge the two schedules).
	for i := 1; i < len(pkts); i++ {
		for j := i; j > 0 && pkts[j].Arrival < pkts[j-1].Arrival; j-- {
			pkts[j], pkts[j-1] = pkts[j-1], pkts[j]
		}
	}
	return pkts, lo, hi
}

func diagnose(scheduler printqueue.SchedulerKind, name string) {
	pkts, lo, hi := buildSchedule()
	sw, err := printqueue.NewSwitch(printqueue.SwitchConfig{
		Ports:         1,
		LinkBps:       10e9,
		BufferCells:   100000,
		QueuesPerPort: 2,
		Scheduler:     scheduler,
	})
	if err != nil {
		log.Fatal(err)
	}
	pq, err := printqueue.New(printqueue.Config{
		TimeWindows: printqueue.TimeWindowConfig{
			M0: 10, K: 12, Alpha: 1, T: 4, MinPktTxDelay: 1200 * time.Nanosecond,
		},
		QueueMonitor:  printqueue.QueueMonitorConfig{MaxDepthCells: 65536, GranuleCells: 19},
		Ports:         []int{0},
		QueuesPerPort: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	pq.Attach(sw)
	tlog := sw.AttachLog(0)
	for _, p := range pkts {
		sw.Inject(p)
	}
	sw.Flush()
	pq.Finalize(sw.Now() + 1)

	// The most-delayed low-priority packet.
	victims := tlog.VictimsOf(lo, 0)
	worst := victims[0]
	for _, i := range victims {
		r, w := tlog.Record(i), tlog.Record(worst)
		if r.DeqTime-r.EnqTime > w.DeqTime-w.EnqTime {
			worst = i
		}
	}
	v := tlog.Record(worst)
	report, err := pq.QueryInterval(0, v.EnqTime, v.DeqTime)
	if err != nil {
		log.Fatal(err)
	}
	p, r := printqueue.Accuracy(report, tlog.DirectTruth(worst))
	hiShare := report.Find(hi) / report.Total() * 100

	// How many of the high-priority culprits arrived AFTER the victim?
	latecomers := 0
	for i := 0; i < tlog.Len(); i++ {
		rec := tlog.Record(i)
		if rec.Flow == hi && rec.EnqTime > v.EnqTime && rec.DeqTime < v.DeqTime {
			latecomers++
		}
	}
	fmt.Printf("%s:\n", name)
	fmt.Printf("  victim (low prio) waited %v\n", time.Duration(v.DeqTime-v.EnqTime))
	fmt.Printf("  direct culprits: %.1f%% high-priority (precision %.2f, recall %.2f)\n", hiShare, p, r)
	fmt.Printf("  %d culprit packets arrived AFTER the victim but jumped ahead\n\n", latecomers)
}

func main() {
	diagnose(printqueue.SchedulerStrictPriority, "strict priority")
	// A PIFO ranking by priority class behaves identically; PrintQueue
	// does not care which scheduler produced the dequeue order.
	diagnose(printqueue.SchedulerPIFO, "PIFO (rank = priority class)")
}
