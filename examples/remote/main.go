// Remote diagnosis: the paper's Figure-3 architecture end to end. The
// switch-side process runs the data plane and the analysis program and
// exposes the TCP query API plus an ops HTTP endpoint; a separate
// "operator" client connects, diagnoses a victim over the wire, and
// scrapes the switch's own health metrics — the asynchronous-query path a
// real deployment uses when a customer complains about latency.
package main

import (
	"bufio"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"printqueue"
)

func main() {
	// --- switch side ---
	sw, err := printqueue.NewSwitch(printqueue.SwitchConfig{
		Ports: 1, LinkBps: 10e9, BufferCells: 60000,
	})
	if err != nil {
		log.Fatal(err)
	}
	pq, err := printqueue.New(printqueue.Config{
		TimeWindows: printqueue.TimeWindowConfig{
			M0: 10, K: 12, Alpha: 1, T: 4, MinPktTxDelay: 1200 * time.Nanosecond,
		},
		QueueMonitor: printqueue.QueueMonitorConfig{MaxDepthCells: 65536, GranuleCells: 19},
		Ports:        []int{0},
	})
	if err != nil {
		log.Fatal(err)
	}
	pq.Attach(sw)
	tlog := sw.AttachLog(0)

	pkts, _, err := printqueue.Microburst(printqueue.MicroburstScenario{
		LinkBps: 10e9, Seed: 11, BurstStart: time.Millisecond, Duration: 5 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pkts {
		sw.Inject(p)
	}
	sw.Flush()
	pq.Finalize(sw.Now() + 1)

	// ServeOpts bounds the listener: idle connections are reaped after two
	// minutes and at most 64 queries execute at once — beyond that the
	// server sheds load ({"error":"overloaded"}) instead of queueing.
	svc, err := pq.ServeOpts("127.0.0.1:0", 2, printqueue.ServeOptions{
		IdleTimeout: 2 * time.Minute,
		ShedLimit:   64,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	fmt.Printf("switch: analysis program serving queries on %s\n", svc.Addr())

	ops, err := pq.ServeOps("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ops.Close()
	fmt.Printf("switch: ops endpoint on http://%s (curl /metrics)\n", ops.Addr())

	// --- operator side (would normally be another machine) ---
	// The operator speaks the binary multiplexed v2 wire protocol: one TCP
	// connection carries any number of concurrent queries, and batches
	// answer many questions with one frame each way. The client rides out
	// transient network trouble on its own: failed round trips are retried
	// on a fresh connection with exponential backoff, and request/response
	// ids keep a late answer from one query from being mistaken for the
	// next one's.
	client, err := printqueue.DialQueriesMuxOpts(svc.Addr(), printqueue.DialOptions{
		Timeout:     5 * time.Second,
		MaxRetries:  3,
		BackoffBase: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// The customer complaint names a time window; the operator asks what
	// occupied the port then.
	victims := tlog.Victims(2000, 1)
	if len(victims) == 0 {
		log.Fatal("no congestion")
	}
	v := tlog.Record(victims[0])
	fmt.Printf("operator: investigating a packet that waited %v\n\n",
		time.Duration(v.DeqTime-v.EnqTime))

	report, err := client.Interval(0, v.EnqTime, v.DeqTime)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("operator: direct culprits over the wire:")
	for i, c := range report {
		if i == 5 {
			break
		}
		fmt.Printf("  %-44v %10.1f\n", c.Flow, c.Packets)
	}
	// Follow-up questions go out as one batch: a single frame carries the
	// original-culprit query and a wider interval, and a single frame
	// brings both answers back.
	batch, err := client.Batch([]printqueue.BatchQuery{
		{Kind: "original", Port: 0, Queue: 0, At: v.EnqTime},
		{Kind: "interval", Port: 0, Start: v.EnqTime - 1000, End: v.DeqTime + 1000},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range batch {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
	}
	orig := batch[0].Report
	fmt.Printf("\noperator: %d original culprit flows via the queue monitor\n", len(orig))
	fmt.Printf("operator: %d flows near the incident (batched with the above)\n", len(batch[1].Report))

	p, r := printqueue.Accuracy(report, tlog.DirectTruth(victims[0]))
	fmt.Printf("\n(remote answers scored against local ground truth: precision %.2f, recall %.2f)\n", p, r)

	// Finally, the operator checks the measurement system itself: scrape
	// the switch's Prometheus metrics the way a monitoring stack would.
	resp, err := http.Get("http://" + ops.Addr() + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	fmt.Println("\noperator: switch self-telemetry (/metrics excerpt):")
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "printqueue_checkpoints_total") ||
			strings.HasPrefix(line, "printqueue_port_packets_total") ||
			strings.HasPrefix(line, "printqueue_query_latency_ns_count") {
			fmt.Printf("  %s\n", line)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noperator: client health: timeouts=%d retries=%d reconnects=%d\n",
		client.Timeouts(), client.Retries(), client.Reconnects())
}
