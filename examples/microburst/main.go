// Microburst diagnosis: the paper's Figure-1 congestion regime. A light
// background flow shares a port with a sudden multi-sender microburst; a
// background packet enqueued near the end of the burst is the victim. The
// example shows all three culprit classes:
//
//   - direct culprits (dequeued during the victim's wait) name the burst
//     flows still in the queue,
//   - indirect culprits (the rest of the regime) expose the whole burst,
//   - original culprits (queue monitor) pinpoint who built the queue.
package main

import (
	"fmt"
	"log"
	"time"

	"printqueue"
)

func main() {
	const linkBps = 10e9

	pkts, background, err := printqueue.Microburst(printqueue.MicroburstScenario{
		LinkBps:       linkBps,
		Seed:          7,
		BackgroundBps: 4e9,
		BurstFlows:    8,
		BurstPackets:  400,
		BurstStart:    2 * time.Millisecond,
		Duration:      8 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	sw, err := printqueue.NewSwitch(printqueue.SwitchConfig{Ports: 1, LinkBps: linkBps, BufferCells: 60000})
	if err != nil {
		log.Fatal(err)
	}
	cfg := printqueue.Config{
		// MTU-class packets: m0 = 10 (1024 ns cells), alpha = 1.
		TimeWindows: printqueue.TimeWindowConfig{
			M0: 10, K: 12, Alpha: 1, T: 4, MinPktTxDelay: 1200 * time.Nanosecond,
		},
		QueueMonitor: printqueue.QueueMonitorConfig{MaxDepthCells: 65536, GranuleCells: 19},
		Ports:        []int{0},
		// Arm data-plane queries so a register freeze lands while the
		// queue is deep: the queue-monitor snapshot then reflects the
		// congestion peak rather than the drained end-of-run state.
		DPTriggerDepthCells:   15000,
		ReadRateEntriesPerSec: 50e6,
	}
	pq, err := printqueue.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	pq.Attach(sw)
	tlog := sw.AttachLog(0)

	for _, p := range pkts {
		sw.Inject(p)
	}
	sw.Flush()
	pq.Finalize(sw.Now() + 1)

	// Victim: the background packet that waited longest.
	victims := tlog.VictimsOf(background, 0)
	worst := victims[0]
	for _, i := range victims {
		r, w := tlog.Record(i), tlog.Record(worst)
		if r.DeqTime-r.EnqTime > w.DeqTime-w.EnqTime {
			worst = i
		}
	}
	v := tlog.Record(worst)
	fmt.Printf("victim: background packet, queued %v (depth %d cells)\n\n",
		time.Duration(v.DeqTime-v.EnqTime), v.DepthCells)

	show := func(name string, rep printqueue.Report, truth printqueue.Report) {
		p, r := printqueue.Accuracy(rep, truth)
		fmt.Printf("%s (precision %.2f, recall %.2f):\n", name, p, r)
		for i, c := range rep {
			if i == 5 {
				break
			}
			who := "burst sender"
			if c.Flow == background {
				who = "background"
			}
			fmt.Printf("  %-44v %8.1f  (%s)\n", c.Flow, c.Packets, who)
		}
		fmt.Println()
	}

	direct, err := pq.QueryInterval(0, v.EnqTime, v.DeqTime)
	if err != nil {
		log.Fatal(err)
	}
	show("direct culprits", direct, tlog.DirectTruth(worst))

	regime := tlog.RegimeStart(worst)
	indirect, err := pq.QueryInterval(0, regime, v.EnqTime)
	if err != nil {
		log.Fatal(err)
	}
	show("indirect culprits (regime start -> victim enqueue)", indirect, tlog.IndirectTruth(worst))

	original, err := pq.QueryOriginal(0, 0, v.EnqTime)
	if err != nil {
		log.Fatal(err)
	}
	show("original culprits (queue monitor)", original, tlog.OriginalTruth(worst))
}
