// Incast diagnosis: 32 synchronized senders answer a request at once and
// converge on one egress port (the paper's motivating example for indirect
// culprits). A low-rate probe flow's packets are the victims. Direct
// culprits alone show a mix of senders; the indirect culprits reveal that
// the entire congestion regime is one application's synchronized burst —
// the signature that de-synchronizing the sends would fix.
package main

import (
	"fmt"
	"log"
	"time"

	"printqueue"
)

func main() {
	const linkBps = 10e9

	pkts, probe, appFlows, err := printqueue.Incast(printqueue.IncastScenario{
		LinkBps:       linkBps,
		Seed:          3,
		Senders:       32,
		ResponseBytes: 128 * 1024,
		Start:         2 * time.Millisecond,
		SyncJitter:    50 * time.Microsecond,
		Duration:      10 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	app := make(map[printqueue.FlowID]bool, len(appFlows))
	for _, f := range appFlows {
		app[f] = true
	}

	sw, err := printqueue.NewSwitch(printqueue.SwitchConfig{Ports: 1, LinkBps: linkBps, BufferCells: 80000})
	if err != nil {
		log.Fatal(err)
	}
	pq, err := printqueue.New(printqueue.Config{
		TimeWindows: printqueue.TimeWindowConfig{
			M0: 10, K: 12, Alpha: 1, T: 4, MinPktTxDelay: 1200 * time.Nanosecond,
		},
		QueueMonitor: printqueue.QueueMonitorConfig{MaxDepthCells: 131072, GranuleCells: 19},
		Ports:        []int{0},
		// Arm data-plane queries: any packet that sees >= 5000 cells of
		// queue triggers an on-demand diagnosis of its own delay.
		DPTriggerDepthCells:   5000,
		ReadRateEntriesPerSec: 50e6,
	})
	if err != nil {
		log.Fatal(err)
	}
	pq.Attach(sw)
	tlog := sw.AttachLog(0)

	for _, p := range pkts {
		sw.Inject(p)
	}
	sw.Flush()
	pq.Finalize(sw.Now() + 1)

	// The data plane diagnosed deep-queue packets on its own.
	dqs := pq.DataPlaneQueries(0)
	fmt.Printf("data-plane queries triggered: %d\n", len(dqs))

	// Diagnose the worst probe victim asynchronously.
	victims := tlog.VictimsOf(probe, 0)
	if len(victims) == 0 {
		log.Fatal("probe never dequeued")
	}
	worst := victims[0]
	for _, i := range victims {
		if tlog.Record(i).DepthCells > tlog.Record(worst).DepthCells {
			worst = i
		}
	}
	v := tlog.Record(worst)
	fmt.Printf("probe victim queued %v behind %d cells\n\n",
		time.Duration(v.DeqTime-v.EnqTime), v.DepthCells)

	appShare := func(rep printqueue.Report) float64 {
		var in, total float64
		for _, c := range rep {
			total += c.Packets
			if app[c.Flow] {
				in += c.Packets
			}
		}
		if total == 0 {
			return 0
		}
		return in / total * 100
	}

	direct, err := pq.QueryInterval(0, v.EnqTime, v.DeqTime)
	if err != nil {
		log.Fatal(err)
	}
	regime := tlog.RegimeStart(worst)
	indirect, err := pq.QueryInterval(0, regime, v.EnqTime)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("direct culprits:   %5.1f%% incast application, %d flows implicated\n",
		appShare(direct), len(direct))
	fmt.Printf("indirect culprits: %5.1f%% incast application, %d flows implicated\n",
		appShare(indirect), len(indirect))
	fmt.Printf("\nregime spans %v: one synchronized application - the incast signature\n",
		time.Duration(v.EnqTime-regime))
}
