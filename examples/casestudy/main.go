// Case study (paper §7.2): a background TCP flow holds ~99% of a 10 Gbps
// link, a short UDP datagram burst fills the queue, and a new low-rate TCP
// flow arriving later suffers the leftover congestion. Direct culprits blame
// only the background; indirect culprits barely show the burst; the queue
// monitor's original culprits correctly implicate it.
package main

import (
	"fmt"
	"log"
	"time"

	"printqueue"
)

func main() {
	// 0.2 = a 100 ms run with 2000 datagrams (1.0 = the paper's full run).
	pkts, flows, err := printqueue.CaseStudy(0.2)
	if err != nil {
		log.Fatal(err)
	}

	sw, err := printqueue.NewSwitch(printqueue.SwitchConfig{Ports: 1, LinkBps: 10e9, BufferCells: 120000})
	if err != nil {
		log.Fatal(err)
	}
	pq, err := printqueue.New(printqueue.Config{
		TimeWindows: printqueue.TimeWindowConfig{
			M0: 10, K: 12, Alpha: 1, T: 4, MinPktTxDelay: 1200 * time.Nanosecond,
		},
		QueueMonitor: printqueue.QueueMonitorConfig{MaxDepthCells: 131072, GranuleCells: 4},
		Ports:        []int{0},
	})
	if err != nil {
		log.Fatal(err)
	}
	pq.Attach(sw)
	tlog := sw.AttachLog(0)

	for _, p := range pkts {
		sw.Inject(p)
	}
	sw.Flush()
	pq.Finalize(sw.Now() + 1)

	// The new TCP flow's deepest packet is the victim.
	victims := tlog.VictimsOf(flows.NewTCP, 0)
	if len(victims) == 0 {
		log.Fatal("new TCP flow never dequeued")
	}
	worst := victims[0]
	for _, i := range victims {
		if tlog.Record(i).DepthCells > tlog.Record(worst).DepthCells {
			worst = i
		}
	}
	v := tlog.Record(worst)
	fmt.Printf("new TCP packet queued %v behind %d cells\n\n",
		time.Duration(v.DeqTime-v.EnqTime), v.DepthCells)

	shares := func(rep printqueue.Report) (burst, bg, newtcp float64) {
		total := rep.Total()
		if total == 0 {
			return 0, 0, 0
		}
		return rep.Find(flows.Burst) / total * 100,
			rep.Find(flows.Background) / total * 100,
			rep.Find(flows.NewTCP) / total * 100
	}

	direct, err := pq.QueryInterval(0, v.EnqTime, v.DeqTime)
	if err != nil {
		log.Fatal(err)
	}
	indirect, err := pq.QueryInterval(0, tlog.RegimeStart(worst), v.EnqTime)
	if err != nil {
		log.Fatal(err)
	}
	original, err := pq.QueryOriginal(0, 0, v.EnqTime)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("culprit composition (percent of packets):")
	fmt.Printf("  %-10s %8s %12s %8s\n", "class", "burst", "background", "newTCP")
	for _, row := range []struct {
		name string
		rep  printqueue.Report
	}{{"direct", direct}, {"indirect", indirect}, {"original", original}} {
		b, g, n := shares(row.rep)
		fmt.Printf("  %-10s %7.1f%% %11.1f%% %7.1f%%\n", row.name, b, g, n)
	}

	fmt.Printf("\noriginal culprit counts burst:background = %.0f:%.0f\n",
		original.Find(flows.Burst), original.Find(flows.Background))
	fmt.Println("\nthe burst left the network long ago, yet the queue monitor still")
	fmt.Println("implicates it - exactly the paper's point: direct and indirect views")
	fmt.Println("blame the background; only the original culprits expose the burst.")
}
