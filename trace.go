package printqueue

import (
	"time"

	"printqueue/internal/core/control"
	"printqueue/internal/tracing"
)

// This file is the public face of the observability plane added for
// end-to-end query tracing: per-query span traces that join client and
// server sides of a wire round trip, an always-on slow-query log, and a
// bounded ring of data-plane trigger events (backpressure, load shedding,
// freeze stalls) mirroring the paper's data-plane-triggered diagnoses.

// Tracer samples queries into traces. The nil *Tracer is valid and records
// nothing, so tracing disabled costs one pointer test on the hot paths.
type Tracer = tracing.Tracer

// Trace is one recorded query: an id plus named, timestamped spans from
// both sides of the wire.
type Trace = tracing.Trace

// TraceView is a Trace rendered to plain JSON-friendly values.
type TraceView = tracing.View

// TraceSpan is one named stage of a trace.
type TraceSpan = tracing.Span

// DataPlaneEvent is one structured event from the data-plane event ring.
type DataPlaneEvent = tracing.Event

// TracingConfig configures System.EnableTracing. The zero value enables
// the always-on paths only: remote trace ids are honored and slow queries
// land in the slowlog, but no local query is proactively sampled.
type TracingConfig struct {
	// SampleEvery samples 1-in-N locally issued queries into full traces.
	// 1 traces everything; 0 disables proactive sampling.
	SampleEvery int
	// SlowThreshold promotes any query at least this slow into the
	// always-on slow-trace ring, sampled or not (0 = 10ms).
	SlowThreshold time.Duration
	// RingSize / SlowRingSize bound the completed-trace rings (0 = 256/64).
	RingSize     int
	SlowRingSize int
	// MaxSpans bounds the spans kept per trace (0 = 64); overflow is
	// counted, never grown.
	MaxSpans int
	// EventRing bounds the data-plane event ring (0 = 512).
	EventRing int
}

// EnableTracing installs the tracing and event planes on the system,
// registers their metrics in the system registry, and returns the tracer
// (also reachable later via System.Tracer). Safe to call while traffic
// flows. The ops endpoint (ServeOps) picks the planes up automatically,
// exposing /debug/traces, /debug/trace/{id}, /debug/slowlog, and
// /debug/events.
func (s *System) EnableTracing(cfg TracingConfig) *Tracer {
	tr, _ := s.inner.EnableTracing(control.TraceOptions{
		SampleEvery:  cfg.SampleEvery,
		SlowNs:       uint64(cfg.SlowThreshold.Nanoseconds()),
		RingSize:     cfg.RingSize,
		SlowRingSize: cfg.SlowRingSize,
		MaxSpans:     cfg.MaxSpans,
		EventRing:    cfg.EventRing,
	})
	return tr
}

// Tracer returns the system's tracer, or nil when tracing is disabled.
func (s *System) Tracer() *Tracer { return s.inner.Tracer() }

// Traces returns the completed traces in the ring, newest first.
func (s *System) Traces() []*Trace { return s.inner.Tracer().Traces() }

// SlowTraces returns the slow-query ring, newest first.
func (s *System) SlowTraces() []*Trace { return s.inner.Tracer().Slow() }

// Events returns the data-plane event ring, newest first.
func (s *System) Events() []DataPlaneEvent { return s.inner.Events().Events() }

// NewTracer builds a standalone tracer for query clients: pass it in
// DialOptions.Tracer so sampled queries carry a trace id to the server and
// come back with the server-side spans joined in. sampleEvery = 1 traces
// every query; slowThreshold = 0 keeps the 10ms slowlog default.
func NewTracer(sampleEvery int, slowThreshold time.Duration) *Tracer {
	return tracing.New(tracing.Config{
		SampleEvery: sampleEvery,
		SlowNs:      uint64(slowThreshold.Nanoseconds()),
	})
}

// FormatTrace renders a trace as an indented span tree, client and server
// stages interleaved by time, for terminal output.
func FormatTrace(t *Trace) string { return tracing.FormatTree(t) }

// FormatTraceID renders a trace id the way the wire and the ops endpoint
// do (16 hex digits).
func FormatTraceID(id uint64) string { return tracing.FormatID(id) }
