package printqueue

import (
	"bytes"
	"testing"
	"time"
)

func TestPacketLogFileRoundTrip(t *testing.T) {
	sw, err := NewSwitch(SwitchConfig{Ports: 1, LinkBps: 10e9})
	if err != nil {
		t.Fatal(err)
	}
	tlog := sw.AttachLog(0)
	for i := 0; i < 100; i++ {
		sw.Inject(Packet{Flow: testFlow(byte(i % 3)), Bytes: 500, Arrival: uint64(i) * 100})
	}
	sw.Flush()
	var buf bytes.Buffer
	if err := tlog.WriteLog(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPacketLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tlog.Len() {
		t.Fatalf("read %d records, wrote %d", got.Len(), tlog.Len())
	}
	if got.Record(5) != tlog.Record(5) {
		t.Fatalf("record 5 differs: %+v vs %+v", got.Record(5), tlog.Record(5))
	}
	if _, err := ReadPacketLog(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("junk log accepted")
	}
}

func TestDRRFacade(t *testing.T) {
	sw, err := NewSwitch(SwitchConfig{
		Ports: 1, LinkBps: 1e9, QueuesPerPort: 2,
		Scheduler: SchedulerDRR, Weights: []int{3, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	tlog := sw.AttachLog(0)
	for i := 0; i < 400; i++ {
		sw.Inject(Packet{Flow: testFlow(1), Bytes: 1000, Arrival: 1, Queue: 0})
		sw.Inject(Packet{Flow: testFlow(2), Bytes: 1000, Arrival: 1, Queue: 1})
	}
	sw.Flush()
	// Count the shares among the first 400 dequeues (both backlogged).
	counts := map[byte]int{}
	for i := 0; i < 400; i++ {
		counts[tlog.Record(i).Flow.SrcIP[3]]++
	}
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 2.4 || ratio > 3.6 {
		t.Fatalf("DRR 3:1 weights produced ratio %.2f", ratio)
	}
	// Weight validation propagates.
	if _, err := NewSwitch(SwitchConfig{
		Ports: 1, LinkBps: 1e9, QueuesPerPort: 2,
		Scheduler: SchedulerDRR, Weights: []int{1},
	}); err == nil {
		t.Fatal("mismatched weights accepted")
	}
}

func TestPIFOFacadeRank(t *testing.T) {
	sw, err := NewSwitch(SwitchConfig{
		Ports: 1, LinkBps: 1e9, Scheduler: SchedulerPIFO,
		Rank: func(p Packet) uint64 { return uint64(p.Bytes) },
	})
	if err != nil {
		t.Fatal(err)
	}
	tlog := sw.AttachLog(0)
	sw.Inject(Packet{Flow: testFlow(9), Bytes: 125, Arrival: 0})
	sw.Inject(Packet{Flow: testFlow(1), Bytes: 900, Arrival: 10})
	sw.Inject(Packet{Flow: testFlow(2), Bytes: 100, Arrival: 20})
	sw.Flush()
	if tlog.Record(1).Flow != testFlow(2) {
		t.Fatalf("custom rank ignored: second dequeue = %v", tlog.Record(1).Flow)
	}
}

func TestIndirectAndOriginalTruthFacade(t *testing.T) {
	sw, _ := NewSwitch(SwitchConfig{Ports: 1, LinkBps: 10e9, BufferCells: 60000})
	tlog := sw.AttachLog(0)
	pkts, _, err := Microburst(MicroburstScenario{
		LinkBps: 10e9, Seed: 4, BurstStart: time.Millisecond, Duration: 4 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		sw.Inject(p)
	}
	sw.Flush()
	victims := tlog.Victims(2000, 1)
	if len(victims) == 0 {
		t.Fatal("no victims")
	}
	vi := victims[0]
	if tlog.IndirectTruth(vi) == nil {
		t.Fatal("nil indirect truth")
	}
	orig := tlog.OriginalTruth(vi)
	if orig.Total() == 0 {
		t.Fatal("empty original truth during congestion")
	}
	counts := tlog.TrueCounts(tlog.Record(vi).EnqTime, tlog.Record(vi).DeqTime)
	if counts.Total() == 0 {
		t.Fatal("empty interval truth")
	}
}

func TestDPTriggerVariantsFacade(t *testing.T) {
	cfg := Config{
		TimeWindows:  TimeWindowConfig{M0: 10, K: 12, Alpha: 1, T: 4, MinPktTxDelay: 1200 * time.Nanosecond},
		QueueMonitor: QueueMonitorConfig{MaxDepthCells: 65536, GranuleCells: 19},
		Ports:        []int{0},
		// Delay- and probe-based triggers (§6.2's other examples).
		DPTriggerDelay:        200 * time.Microsecond,
		DPTriggerProbePort:    7777,
		ReadRateEntriesPerSec: 50e6,
	}
	pq, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sw, _ := NewSwitch(SwitchConfig{Ports: 1, LinkBps: 10e9, BufferCells: 60000})
	pq.Attach(sw)
	pkts, _, err := Microburst(MicroburstScenario{
		LinkBps: 10e9, Seed: 8, BurstStart: time.Millisecond, Duration: 4 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	probe := FlowID{SrcIP: [4]byte{10, 8, 0, 1}, DstIP: [4]byte{10, 8, 1, 1}, SrcPort: 999, DstPort: 7777, Proto: 17}
	// Insert a probe packet mid-burst.
	for _, p := range pkts {
		sw.Inject(p)
		if p.Arrival > 1500000 && p.Arrival < 1500000+3000 {
			sw.Inject(Packet{Flow: probe, Bytes: 100, Arrival: p.Arrival})
		}
	}
	sw.Flush()
	dqs := pq.DataPlaneQueries(0)
	if len(dqs) == 0 {
		t.Fatal("no data-plane queries from delay/probe triggers")
	}
	sawProbe := false
	for _, dq := range dqs {
		if dq.Victim == probe {
			sawProbe = true
		}
	}
	if !sawProbe {
		t.Log("probe packet did not win a trigger slot (lock contention); delay trigger fired instead")
	}
}
