// Package printqueue is a library reproduction of PrintQueue (SIGCOMM 2022):
// performance diagnosis via queue measurement in the data plane.
//
// PrintQueue answers, for a victim packet that suffered queuing delay at a
// switch egress port, which flows caused the delay and by how much. It
// tracks three classes of culprit packets:
//
//   - direct culprits: packets dequeued while the victim sat in the queue;
//   - indirect culprits: earlier packets of the same congestion regime;
//   - original culprits: the packets whose arrival built the queue to its
//     current level.
//
// Direct and indirect culprits are served by the time-windows structure —
// a hierarchy of ring buffers whose cell periods grow exponentially, so an
// arbitrary query interval (nanoseconds to seconds old) can be estimated
// from fixed register space. Original culprits are served by the queue
// monitor, a sparse stack indexed by queue depth.
//
// The package bundles the switch substrate the hardware prototype ran on —
// a nanosecond-resolution egress-queue simulator standing in for the Tofino
// traffic manager — plus workload generators for the paper's traces, so the
// whole system runs on a laptop:
//
//	sw, _ := printqueue.NewSwitch(printqueue.SwitchConfig{Ports: 1, LinkBps: 10e9, BufferCells: 40000})
//	pq, _ := printqueue.New(printqueue.DefaultConfig(0))
//	pq.Attach(sw)
//	for _, pkt := range packets {
//		sw.Inject(pkt)
//	}
//	sw.Flush()
//	pq.Finalize(sw.Now())
//	report, _ := pq.QueryInterval(0, victimEnq, victimDeq)
//
// See examples/ for complete programs and DESIGN.md for the mapping between
// the paper's sections and this module's packages.
package printqueue

import (
	"fmt"
	"sort"
	"time"

	"printqueue/internal/core/control"
	"printqueue/internal/core/histstore"
	"printqueue/internal/core/qmonitor"
	"printqueue/internal/core/timewindow"
	"printqueue/internal/flow"
	"printqueue/internal/pktrec"
)

// FlowID is a 5-tuple flow identity.
type FlowID struct {
	SrcIP   [4]byte
	DstIP   [4]byte
	SrcPort uint16
	DstPort uint16
	Proto   uint8 // IP protocol number (6 = TCP, 17 = UDP)
}

func (f FlowID) internal() flow.Key {
	return flow.Key{SrcIP: f.SrcIP, DstIP: f.DstIP, SrcPort: f.SrcPort, DstPort: f.DstPort, Proto: flow.Proto(f.Proto)}
}

func fromInternal(k flow.Key) FlowID {
	return FlowID{SrcIP: k.SrcIP, DstIP: k.DstIP, SrcPort: k.SrcPort, DstPort: k.DstPort, Proto: uint8(k.Proto)}
}

// String renders the flow as "src:sport>dst:dport/proto".
func (f FlowID) String() string { return f.internal().String() }

// ParseFlowID parses the format produced by String.
func ParseFlowID(s string) (FlowID, error) {
	k, err := flow.ParseKey(s)
	if err != nil {
		return FlowID{}, err
	}
	return fromInternal(k), nil
}

// TimeWindowConfig parameterizes the time-windows structure (§4 of the
// paper).
type TimeWindowConfig struct {
	// M0 is log2 of window 0's cell period in nanoseconds. Pick
	// floor(log2(MinPktTxDelay)) — see M0For.
	M0 uint
	// K is log2 of the cells per window (typical: 12, i.e. 4096 cells).
	K uint
	// Alpha is the per-window compression exponent: window i's cell period
	// is 2^(M0 + Alpha*i) ns.
	Alpha uint
	// T is the number of windows.
	T int
	// MinPktTxDelay is the transmission delay of the workload's smallest
	// packet at line rate; it seeds the count-recovery coefficients.
	MinPktTxDelay time.Duration
}

// M0For returns the recommended M0 for a minimum-packet transmission delay.
func M0For(minPktTxDelay time.Duration) uint {
	return timewindow.M0ForDelay(float64(minPktTxDelay.Nanoseconds()))
}

func (c TimeWindowConfig) internal() timewindow.Config {
	return timewindow.Config{
		M0:              c.M0,
		K:               c.K,
		Alpha:           c.Alpha,
		T:               c.T,
		MinPktTxDelayNs: float64(c.MinPktTxDelay.Nanoseconds()),
	}
}

// SetPeriod returns the timespan one full window set covers; the control
// plane polls at least once per set period.
func (c TimeWindowConfig) SetPeriod() time.Duration {
	return time.Duration(c.internal().SetPeriod())
}

// QueueMonitorConfig parameterizes the queue monitor (§5).
type QueueMonitorConfig struct {
	// MaxDepthCells is the deepest queue level tracked, in 80-byte cells.
	MaxDepthCells int
	// GranuleCells is the buffer-allocation granularity per monitor entry.
	GranuleCells int
}

func (c QueueMonitorConfig) internal() qmonitor.Config {
	return qmonitor.Config{MaxDepthCells: c.MaxDepthCells, GranuleCells: c.GranuleCells}
}

// Config configures a PrintQueue deployment on one switch.
type Config struct {
	TimeWindows  TimeWindowConfig
	QueueMonitor QueueMonitorConfig
	// Ports lists the egress ports to activate PrintQueue on.
	Ports []int
	// QueuesPerPort is the number of priority classes the queue monitor
	// tracks per port (default 1).
	QueuesPerPort int
	// PollPeriod overrides the periodic checkpoint cadence (default: the
	// time windows' set period).
	PollPeriod time.Duration
	// ReadRateEntriesPerSec models the control plane's register read
	// throughput; 0 means unlimited.
	ReadRateEntriesPerSec float64
	// DPTriggerDepthCells, when > 0, arms data-plane queries: any packet
	// whose enqueue-time queue depth is at least this many cells triggers
	// an on-demand freeze and a diagnosis of its own queuing interval.
	DPTriggerDepthCells int
	// DPTriggerDelay, when > 0, additionally triggers on packets that
	// spent at least this long in the queue ("packets with unusually high
	// queuing delay", §6.2).
	DPTriggerDelay time.Duration
	// DPTriggerProbePort, when > 0, additionally triggers on end-host
	// probe packets addressed to this destination port.
	DPTriggerProbePort uint16
	// MaxCheckpoints bounds the retained checkpoint history per port
	// (0 = unlimited).
	MaxCheckpoints int
	// QueryPath selects the asynchronous-query implementation: the default
	// indexed path (checkpoint pruning + per-window cell index), or the
	// reference full scan kept for ablation. Results are bit-identical.
	QueryPath QueryPath
	// History, when non-nil, enables the tiered checkpoint history: every
	// retired checkpoint is compactly encoded and appended to a durable
	// segment log, and interval queries reaching past the in-RAM history
	// (MaxCheckpoints) are answered from the log. Call Close to seal it.
	History *HistoryConfig
}

// HistoryConfig configures the durable, tiered checkpoint history.
type HistoryConfig struct {
	// Dir is the segment-log directory (created if absent). Required.
	Dir string
	// SegmentBytes is the segment rotation threshold (default 4 MiB).
	SegmentBytes int64
	// MaxBytes bounds total bytes on disk; oldest sealed segments are
	// dropped whole while over. 0 = unlimited.
	MaxBytes int64
	// MaxAge bounds retention by trace time: sealed segments entirely older
	// than MaxAge before the newest checkpoint are dropped. 0 = unlimited.
	// (Trace time, not wall time: one nanosecond of simulated traffic ages
	// history by one nanosecond.)
	MaxAge time.Duration
	// FsyncEvery fsyncs the log after every N appended checkpoints; 0
	// syncs only on segment rotation and Close.
	FsyncEvery int
	// CacheBytes budgets the decoded-checkpoint LRU that keeps repeated
	// cold queries fast (default 64 MiB).
	CacheBytes int64
}

func (h *HistoryConfig) internal() *histstore.Options {
	if h == nil {
		return nil
	}
	return &histstore.Options{
		Dir:          h.Dir,
		SegmentBytes: h.SegmentBytes,
		MaxBytes:     h.MaxBytes,
		MaxAgeNs:     uint64(h.MaxAge.Nanoseconds()),
		FsyncEvery:   h.FsyncEvery,
		CacheBytes:   h.CacheBytes,
	}
}

// HistoryStats summarizes the durable history store.
type HistoryStats struct {
	Segments         int   // segment files on disk
	BytesOnDisk      int64 // total log bytes
	CacheBytes       int64 // resident bytes of the decoded-checkpoint LRU
	Appended         int64 // checkpoints appended
	AppendErrors     int64 // appends that failed (encode or I/O)
	EncodedBytes     int64 // encoded payload bytes appended
	RawBytes         int64 // in-memory bytes of the same checkpoints
	CacheHits        int64 // cold queries served from the LRU
	CacheMisses      int64 // cold queries that decoded from disk
	PrunedSegments   int64 // sealed segments dropped by retention
	RecoveredRecords int   // records recovered from unsealed segments at open
	TruncatedBytes   int64 // torn-tail bytes truncated at open
}

// CompressionRatio returns in-memory bytes per encoded byte for the
// checkpoints appended so far (0 until something is appended).
func (h HistoryStats) CompressionRatio() float64 {
	if h.EncodedBytes == 0 {
		return 0
	}
	return float64(h.RawBytes) / float64(h.EncodedBytes)
}

// QueryPath selects how interval queries walk the checkpoint history.
type QueryPath int

const (
	// QueryPathIndexed binary-searches the overlapping checkpoint run and,
	// per checkpoint, the overlapping cell range of each window.
	QueryPathIndexed QueryPath = iota
	// QueryPathScan visits every cell of every retained checkpoint — the
	// reference implementation, retained for ablation.
	QueryPathScan
)

func (p QueryPath) internal() control.QueryPath {
	if p == QueryPathScan {
		return control.QueryPathScan
	}
	return control.QueryPathIndexed
}

// DefaultConfig returns the paper's UW-trace configuration (m0=6, k=12,
// alpha=2, T=4 at 10 Gbps) activated on the given ports.
func DefaultConfig(ports ...int) Config {
	if len(ports) == 0 {
		ports = []int{0}
	}
	return Config{
		TimeWindows: TimeWindowConfig{
			M0: 6, K: 12, Alpha: 2, T: 4,
			MinPktTxDelay: 80 * time.Nanosecond,
		},
		QueueMonitor: QueueMonitorConfig{MaxDepthCells: 32768, GranuleCells: 2},
		Ports:        ports,
	}
}

// Culprit is one flow's contribution to a diagnosis: its identity and the
// (estimated) number of culprit packets.
type Culprit struct {
	Flow    FlowID
	Packets float64
}

// Report is a ranked list of culprits, largest contribution first.
type Report []Culprit

// Total returns the cumulative packet estimate of the report.
func (r Report) Total() float64 {
	var t float64
	for _, c := range r {
		t += c.Packets
	}
	return t
}

// Find returns the packet estimate for one flow (0 if absent).
func (r Report) Find(f FlowID) float64 {
	for _, c := range r {
		if c.Flow == f {
			return c.Packets
		}
	}
	return 0
}

func reportFromCounts(c flow.Counts) Report {
	entries := c.TopK(0)
	out := make(Report, len(entries))
	for i, e := range entries {
		out[i] = Culprit{Flow: fromInternal(e.Flow), Packets: e.Count}
	}
	return out
}

// DataPlaneQuery is the outcome of one data-plane-triggered diagnosis: the
// victim packet's identity, its queuing interval, and the culprit report
// computed from the specially frozen registers.
type DataPlaneQuery struct {
	Port        int
	Queue       int
	Victim      FlowID
	EnqTime     uint64
	DeqTime     uint64
	DepthCells  int
	Culprits    Report
	FreezeTime  uint64
	ReadLatency time.Duration
}

// Stats summarizes control-plane activity.
type Stats struct {
	Checkpoints     int
	SpecialFreezes  int
	EntriesRead     int64
	InfeasibleFlips int
	DPSuppressed    int
	PacketsObserved int64
}

// System is a per-switch PrintQueue instance.
type System struct {
	inner *control.System
}

// New validates the configuration and builds a System.
func New(cfg Config) (*System, error) {
	inner, err := control.New(control.Config{
		TW:                    cfg.TimeWindows.internal(),
		QM:                    cfg.QueueMonitor.internal(),
		Ports:                 cfg.Ports,
		QueuesPerPort:         cfg.QueuesPerPort,
		PollPeriodNs:          uint64(cfg.PollPeriod.Nanoseconds()),
		ReadRateEntriesPerSec: cfg.ReadRateEntriesPerSec,
		MaxCheckpoints:        cfg.MaxCheckpoints,
		QueryPath:             cfg.QueryPath.internal(),
		DPTrigger:             cfg.dpTrigger(),
		History:               cfg.History.internal(),
	})
	if err != nil {
		return nil, err
	}
	return &System{inner: inner}, nil
}

// dpTrigger assembles the configured data-plane query triggers (any-of).
func (cfg Config) dpTrigger() control.Trigger {
	var triggers []control.Trigger
	if cfg.DPTriggerDepthCells > 0 {
		triggers = append(triggers, control.DepthTrigger(cfg.DPTriggerDepthCells))
	}
	if cfg.DPTriggerDelay > 0 {
		triggers = append(triggers, control.DelayTrigger(uint64(cfg.DPTriggerDelay.Nanoseconds())))
	}
	if cfg.DPTriggerProbePort > 0 {
		triggers = append(triggers, control.ProbeTrigger(cfg.DPTriggerProbePort))
	}
	if len(triggers) == 0 {
		return nil
	}
	return control.AnyTrigger(triggers...)
}

// Attach hooks the system into every activated port of a simulated switch.
func (s *System) Attach(sw *Switch) {
	for _, port := range s.inner.Config().Ports {
		if port < sw.inner.Ports() {
			sw.inner.Port(port).AddEgressHook(egressAdapter{s.inner})
		}
	}
}

type egressAdapter struct{ sys *control.System }

func (a egressAdapter) OnDequeue(p *pktrec.Packet) { a.sys.OnDequeue(p) }

// Observe feeds one dequeued packet directly (for callers embedding
// PrintQueue in their own pipeline instead of using Switch). Packets must
// arrive in dequeue order per port.
func (s *System) Observe(p Packet, enqTime, deqTime uint64, enqDepthCells int) {
	// Clamp to zero rather than letting deqTime < enqTime (clock skew,
	// caller bugs) wrap the unsigned delta to ~2^64 and misfile the packet.
	var delta uint64
	if deqTime > enqTime {
		delta = deqTime - enqTime
	}
	rec := &pktrec.Packet{
		Flow:    p.Flow.internal(),
		Bytes:   p.Bytes,
		Arrival: p.Arrival,
		Port:    p.Port,
		Queue:   p.Queue,
		Meta: pktrec.Metadata{
			EnqTimestamp: enqTime,
			DeqTimedelta: delta,
			EnqQdepth:    enqDepthCells,
		},
	}
	s.inner.OnDequeue(rec)
}

// Finalize checkpoints every activated port's live registers at the given
// time so subsequent queries can reach the most recent traffic.
func (s *System) Finalize(now uint64) { s.inner.Finalize(now) }

// QueryInterval estimates the per-flow packet counts dequeued on a port
// during [start, end) — the asynchronous query of §6.3. Query a victim's
// [enqueue, dequeue) for its direct culprits, or [regime start, enqueue)
// for its indirect culprits.
func (s *System) QueryInterval(port int, start, end uint64) (Report, error) {
	counts, err := s.inner.QueryInterval(port, start, end)
	if err != nil {
		return nil, err
	}
	return reportFromCounts(counts), nil
}

// QueryOriginal returns the original causes of congestion on a port/queue
// at the instant closest to t, aggregated per flow.
func (s *System) QueryOriginal(port, queue int, t uint64) (Report, error) {
	culprits, err := s.inner.QueryOriginal(port, queue, t)
	if err != nil {
		return nil, err
	}
	return reportFromCounts(qmonitor.FlowCounts(culprits)), nil
}

// OriginalLevels returns the original culprits with their queue levels, for
// callers that want the raw staircase rather than per-flow aggregates.
func (s *System) OriginalLevels(port, queue int, t uint64) ([]OriginalCulprit, error) {
	culprits, err := s.inner.QueryOriginal(port, queue, t)
	if err != nil {
		return nil, err
	}
	out := make([]OriginalCulprit, len(culprits))
	for i, c := range culprits {
		out[i] = OriginalCulprit{Flow: fromInternal(c.Flow), Level: c.Level}
	}
	return out, nil
}

// OriginalCulprit is one entry of the queue-monitor staircase.
type OriginalCulprit struct {
	Flow  FlowID
	Level int // queue level (in granules) this packet raised the queue to
}

// DataPlaneQueries returns the data-plane-triggered diagnoses executed on a
// port so far, oldest first.
func (s *System) DataPlaneQueries(port int) []DataPlaneQuery {
	var out []DataPlaneQuery
	for _, dq := range s.inner.DPQueries(port) {
		out = append(out, DataPlaneQuery{
			Port:        dq.Port,
			Queue:       dq.Queue,
			Victim:      fromInternal(dq.Victim),
			EnqTime:     dq.EnqTS,
			DeqTime:     dq.DeqTS,
			DepthCells:  dq.EnqQdepth,
			Culprits:    reportFromCounts(dq.Result),
			FreezeTime:  dq.FreezeTime,
			ReadLatency: time.Duration(dq.ReadLatency),
		})
	}
	return out
}

// HistoryStats returns the durable history store's statistics; ok is false
// when Config.History is not set.
func (s *System) HistoryStats() (HistoryStats, bool) {
	st, ok := s.inner.HistoryStats()
	if !ok {
		return HistoryStats{}, false
	}
	return HistoryStats{
		Segments:         st.Segments,
		BytesOnDisk:      st.BytesOnDisk,
		CacheBytes:       st.CacheBytes,
		Appended:         st.Appended,
		AppendErrors:     st.AppendErrors,
		EncodedBytes:     st.EncodedBytes,
		RawBytes:         st.RawBytes,
		CacheHits:        st.CacheHits,
		CacheMisses:      st.CacheMisses,
		PrunedSegments:   st.PrunedSegments,
		RecoveredRecords: st.RecoveredRecords,
		TruncatedBytes:   st.TruncatedBytes,
	}, true
}

// Close seals and closes the durable history log (a no-op without one).
// The in-RAM system remains queryable afterwards; close any Pipeline first.
func (s *System) Close() error { return s.inner.Close() }

// Stats returns control-plane counters.
func (s *System) Stats() Stats {
	st := s.inner.Stats()
	return Stats{
		Checkpoints:     st.Checkpoints,
		SpecialFreezes:  st.SpecialFreezes,
		EntriesRead:     st.EntriesRead,
		InfeasibleFlips: st.InfeasibleFlips,
		DPSuppressed:    st.DPSuppressed,
		PacketsObserved: st.PacketsObserved,
	}
}

// SortCulprits ranks a slice of culprits in place, largest first with
// deterministic tie-breaking on the raw flow fields (no per-comparison
// string rendering).
func SortCulprits(cs []Culprit) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Packets != cs[j].Packets {
			return cs[i].Packets > cs[j].Packets
		}
		return cs[i].Flow.internal().Compare(cs[j].Flow.internal()) < 0
	})
}

// Validate checks a Config without building a System.
func (cfg Config) Validate() error {
	if err := cfg.TimeWindows.internal().Validate(); err != nil {
		return err
	}
	if err := cfg.QueueMonitor.internal().Validate(); err != nil {
		return err
	}
	if len(cfg.Ports) == 0 {
		return fmt.Errorf("printqueue: no ports configured")
	}
	return nil
}
