// Command pqsim runs PrintQueue over a workload on the simulated switch and
// prints culprit diagnoses for the worst victims.
//
// Usage:
//
//	pqsim -workload UW -packets 500000 -top 10 -victims 3
//	pqsim -scenario casestudy -scale 0.2
//	pqsim -scenario microburst
//	pqsim -workload WS -dp-trigger 5000        # arm data-plane queries
//	pqsim -trace trace.bin                     # replay a pqtrace file
//	pqsim -save-log run.pqgt                   # dump the telemetry log
//	pqsim -serve 127.0.0.1:7171                # host the TCP query API
//	                                           # (diagnose with cmd/pqquery)
//	pqsim -ops 127.0.0.1:9090                  # ops endpoint: curl /metrics
//	pqsim -hist-dir hist -max-checkpoints 32   # durable tiered history:
//	                                           # RAM holds 32 checkpoints,
//	                                           # the rest queried from disk
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"printqueue"
	"printqueue/internal/pktrec"
	"printqueue/internal/trace"
)

var (
	workload  = flag.String("workload", "UW", "workload: UW, WS or DM")
	scenario  = flag.String("scenario", "", "instead of a workload: microburst, incast or casestudy")
	tracePath = flag.String("trace", "", "instead of a workload: replay a binary trace file written by pqtrace")
	packets   = flag.Int("packets", 500000, "trace length in packets")
	seed      = flag.Uint64("seed", 1, "generator seed")
	linkBps   = flag.Float64("link", 10e9, "egress line rate (bits/sec)")
	buffer    = flag.Int("buffer", 40000, "port buffer in 80-byte cells")
	top       = flag.Int("top", 10, "culprit flows to print per victim")
	nVictims  = flag.Int("victims", 3, "victims to diagnose")
	dpTrigger = flag.Int("dp-trigger", 0, "arm data-plane queries at this queue depth (cells); 0 = off")
	scale     = flag.Float64("scale", 0.2, "case-study time scale")
	origFlag  = flag.Bool("original", true, "also query original culprits (queue monitor)")
	saveLog   = flag.String("save-log", "", "write the telemetry (ground-truth) log to this file")
	serveAddr = flag.String("serve", "", "after the run, host the TCP query API on this address until interrupted")
	opsAddr   = flag.String("ops", "", "host the ops HTTP endpoint (Prometheus /metrics, /healthz, /debug/*) on this address for the whole run")
	slowN     = flag.Int("slow-traces", 0, "trace every query and dump the slowest N as span trees at exit; 0 = off")

	histDir   = flag.String("hist-dir", "", "enable the tiered checkpoint history: append retired checkpoints to a durable segment log in this directory")
	histCache = flag.Int64("hist-cache", 0, "cold-tier decoded-checkpoint LRU budget in bytes (0 = default 64 MiB)")
	histMaxB  = flag.Int64("hist-max-bytes", 0, "history disk budget in bytes; oldest sealed segments pruned while over (0 = unlimited)")
	histFsync = flag.Int("hist-fsync", 0, "fsync the history log every N checkpoints (0 = only on segment rotation/close)")
	maxCps    = flag.Int("max-checkpoints", 0, "bound the in-RAM checkpoint history per port; older checkpoints fall to the cold tier (0 = unlimited)")
)

func main() {
	log.SetFlags(0)
	flag.Parse()

	pkts, cfg, err := buildWorkload()
	if err != nil {
		log.Fatal(err)
	}
	sw, err := printqueue.NewSwitch(printqueue.SwitchConfig{
		Ports: 1, LinkBps: uint64(*linkBps), BufferCells: *buffer,
	})
	if err != nil {
		log.Fatal(err)
	}
	pq, err := printqueue.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	pq.Attach(sw)
	tlog := sw.AttachLog(0)

	if *slowN > 0 {
		// Trace every query so the slowest-N dump sees the full population;
		// the ring is sized to hold them all.
		pq.EnableTracing(printqueue.TracingConfig{SampleEvery: 1, RingSize: 4096})
		defer dumpSlowTraces(pq, *slowN)
	}

	if *opsAddr != "" {
		ops, err := pq.ServeOps(*opsAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer ops.Close()
		fmt.Printf("ops endpoint on http://%s (try /metrics, /debug/pipeline)\n", ops.Addr())
	}

	for _, p := range pkts {
		sw.Inject(p)
	}
	sw.Flush()
	pq.Finalize(sw.Now() + 1)

	st := sw.Stats(0)
	fmt.Printf("replayed %d packets: %d dequeued, %d dropped, max depth %d cells\n",
		st.Enqueued+st.Dropped, st.Dequeued, st.Dropped, st.MaxDepthCells)
	fmt.Printf("control plane: %d checkpoints, %d special freezes, %d data-plane queries\n\n",
		pq.Stats().Checkpoints, pq.Stats().SpecialFreezes, len(pq.DataPlaneQueries(0)))

	if hs, ok := pq.HistoryStats(); ok {
		defer pq.Close()
		fmt.Printf("history log: %d checkpoints in %d segments, %d bytes on disk (%.1fx smaller than in-memory), %d append errors\n\n",
			hs.Appended, hs.Segments, hs.BytesOnDisk, hs.CompressionRatio(), hs.AppendErrors)
	}

	if *saveLog != "" {
		f, err := os.Create(*saveLog)
		if err != nil {
			log.Fatal(err)
		}
		if err := tlog.WriteLog(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("telemetry log (%d records) written to %s\n\n", tlog.Len(), *saveLog)
	}

	victims := tlog.Victims(1000, 0)
	if len(victims) == 0 {
		fmt.Println("no packet ever saw >= 1000 cells of queue; nothing to diagnose")
		serve(pq)
		return
	}
	// Diagnose the deepest victims.
	sort.Slice(victims, func(i, j int) bool {
		return tlog.Record(victims[i]).DepthCells > tlog.Record(victims[j]).DepthCells
	})
	if len(victims) > *nVictims {
		victims = victims[:*nVictims]
	}
	for _, vi := range victims {
		diagnose(pq, tlog, vi)
	}
	serve(pq)
}

// dumpSlowTraces prints the slowest n completed traces as span trees,
// slowest first.
func dumpSlowTraces(pq *printqueue.System, n int) {
	traces := pq.Traces()
	sort.Slice(traces, func(i, j int) bool { return traces[i].DurNs() > traces[j].DurNs() })
	if len(traces) > n {
		traces = traces[:n]
	}
	if len(traces) == 0 {
		fmt.Println("no traces recorded")
		return
	}
	fmt.Printf("slowest %d of %d traced queries:\n", len(traces), pq.Tracer().Finished())
	for _, tr := range traces {
		fmt.Print(printqueue.FormatTrace(tr))
	}
}

// serve optionally hosts the TCP query API until interrupted.
func serve(pq *printqueue.System) {
	if *serveAddr == "" {
		return
	}
	svc, err := pq.Serve(*serveAddr, 4)
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	fmt.Printf("serving queries on %s (newline-delimited JSON; ctrl-c to exit)\n", svc.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
}

func diagnose(pq *printqueue.System, tlog *printqueue.PacketLog, vi int) {
	v := tlog.Record(vi)
	fmt.Printf("victim %v\n", v.Flow)
	fmt.Printf("  queued %v at depth %d cells\n", time.Duration(v.DeqTime-v.EnqTime), v.DepthCells)
	regime := uint64(0)
	if *origFlag {
		regime = tlog.RegimeStart(vi)
	}
	diag, err := pq.Diagnose(0, 0, v.EnqTime, v.DeqTime, regime)
	if err != nil {
		log.Fatal(err)
	}
	p, r := printqueue.Accuracy(diag.Direct, tlog.DirectTruth(vi))
	fmt.Printf("  direct-culprit accuracy vs ground truth: precision %.2f recall %.2f\n", p, r)
	for _, line := range strings.Split(diag.Summary(*top), "\n") {
		if line != "" {
			fmt.Printf("  %s\n", line)
		}
	}
	fmt.Println()
}

func buildWorkload() ([]printqueue.Packet, printqueue.Config, error) {
	cfgSmall := printqueue.DefaultConfig(0) // UW-style: m0=6, alpha=2
	cfgMTU := printqueue.Config{
		TimeWindows: printqueue.TimeWindowConfig{
			M0: 10, K: 12, Alpha: 1, T: 4, MinPktTxDelay: 1200 * time.Nanosecond,
		},
		QueueMonitor: printqueue.QueueMonitorConfig{MaxDepthCells: 131072, GranuleCells: 19},
		Ports:        []int{0},
	}
	arm := func(c printqueue.Config) printqueue.Config {
		if *dpTrigger > 0 {
			c.DPTriggerDepthCells = *dpTrigger
			c.ReadRateEntriesPerSec = 50e6
		}
		c.MaxCheckpoints = *maxCps
		if *histDir != "" {
			c.History = &printqueue.HistoryConfig{
				Dir:        *histDir,
				CacheBytes: *histCache,
				MaxBytes:   *histMaxB,
				FsyncEvery: *histFsync,
			}
		}
		return c
	}

	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			return nil, printqueue.Config{}, err
		}
		defer f.Close()
		recs, err := trace.ReadFile(f)
		if err != nil {
			return nil, printqueue.Config{}, err
		}
		pkts := make([]printqueue.Packet, len(recs))
		small := true
		for i, rec := range recs {
			pkts[i] = packetFromRec(rec)
			if rec.Bytes > 512 {
				small = false
			}
		}
		if small {
			return pkts, arm(cfgSmall), nil
		}
		return pkts, arm(cfgMTU), nil
	}

	switch *scenario {
	case "":
	case "microburst":
		pkts, _, err := printqueue.Microburst(printqueue.MicroburstScenario{
			LinkBps: uint64(*linkBps), Seed: *seed,
			BurstStart: 2 * time.Millisecond, Duration: 8 * time.Millisecond,
		})
		return pkts, arm(cfgMTU), err
	case "incast":
		pkts, _, _, err := printqueue.Incast(printqueue.IncastScenario{
			LinkBps: uint64(*linkBps), Seed: *seed,
			Senders: 32, Start: 2 * time.Millisecond, Duration: 10 * time.Millisecond,
		})
		return pkts, arm(cfgMTU), err
	case "casestudy":
		pkts, _, err := printqueue.CaseStudy(*scale)
		c := cfgMTU
		c.QueueMonitor.GranuleCells = 4
		return pkts, arm(c), err
	default:
		return nil, printqueue.Config{}, fmt.Errorf("unknown scenario %q", *scenario)
	}

	var w printqueue.Workload
	switch *workload {
	case "UW":
		w = printqueue.WorkloadUW
	case "WS":
		w = printqueue.WorkloadWS
	case "DM":
		w = printqueue.WorkloadDM
	default:
		return nil, printqueue.Config{}, fmt.Errorf("unknown workload %q", *workload)
	}
	pkts, err := printqueue.GenerateTrace(printqueue.TraceConfig{
		Workload: w, Seed: *seed, LinkBps: uint64(*linkBps),
		Packets: *packets, Episodic: true,
	})
	cfg := cfgSmall
	if w != printqueue.WorkloadUW {
		cfg = cfgMTU
	}
	return pkts, arm(cfg), err
}

func packetFromRec(p *pktrec.Packet) printqueue.Packet {
	return printqueue.Packet{
		Flow: printqueue.FlowID{
			SrcIP: p.Flow.SrcIP, DstIP: p.Flow.DstIP,
			SrcPort: p.Flow.SrcPort, DstPort: p.Flow.DstPort, Proto: uint8(p.Flow.Proto),
		},
		Bytes:   p.Bytes,
		Arrival: p.Arrival,
		Port:    p.Port,
		Queue:   p.Queue,
	}
}
