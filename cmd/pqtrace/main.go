// Command pqtrace generates synthetic workload traces to a binary file and
// inspects existing ones. The files substitute for the paper's pcap replays
// (the UW data-center trace and the synthetic WS/DM traces).
//
// Usage:
//
//	pqtrace gen -workload UW -packets 1000000 -o uw.bin
//	pqtrace gen -scenario casestudy -scale 0.5 -o case.bin
//	pqtrace info uw.bin
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"printqueue/internal/flow"
	"printqueue/internal/pktrec"
	"printqueue/internal/trace"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 {
		log.Fatal("usage: pqtrace gen|info [flags]")
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "info":
		info(os.Args[2:])
	default:
		log.Fatalf("unknown subcommand %q (want gen or info)", os.Args[1])
	}
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	workload := fs.String("workload", "UW", "workload: UW, WS or DM")
	scenario := fs.String("scenario", "", "instead of a workload: microburst, incast or casestudy")
	packets := fs.Int("packets", 500000, "trace length in packets")
	seed := fs.Uint64("seed", 1, "generator seed")
	linkBps := fs.Float64("link", 10e9, "line rate the loads are relative to")
	scale := fs.Float64("scale", 0.2, "case-study time scale")
	out := fs.String("o", "trace.bin", "output file")
	fs.Parse(args)

	var pkts []*pktrec.Packet
	var err error
	switch *scenario {
	case "":
		w, werr := trace.ParseWorkload(*workload)
		if werr != nil {
			log.Fatal(werr)
		}
		pkts, err = trace.Generate(trace.Config{
			Workload: w,
			Seed:     *seed,
			LinkBps:  uint64(*linkBps),
			Packets:  *packets,
			Episodic: true,
		})
	case "microburst":
		pkts, _, err = trace.Microburst(trace.MicroburstConfig{
			LinkBps: uint64(*linkBps), Seed: *seed,
			BurstStartNs: 2e6, DurationNs: 8e6,
		})
	case "incast":
		pkts, _, _, err = trace.Incast(trace.IncastConfig{
			LinkBps: uint64(*linkBps), Seed: *seed,
			StartNs: 2e6, DurationNs: 10e6,
		})
	case "casestudy":
		pkts, _, err = trace.CaseStudy(trace.DefaultCaseStudy(*scale))
	default:
		log.Fatalf("unknown scenario %q", *scenario)
	}
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.WriteFile(f, pkts); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d packets to %s\n", len(pkts), *out)
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	topN := fs.Int("top", 10, "largest flows to list")
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("usage: pqtrace info <file>")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	pkts, err := trace.ReadFile(f)
	if err != nil {
		log.Fatal(err)
	}
	if len(pkts) == 0 {
		fmt.Println("empty trace")
		return
	}
	var bytes uint64
	counts := make(flow.Counts)
	minB, maxB := pkts[0].Bytes, pkts[0].Bytes
	for _, p := range pkts {
		bytes += uint64(p.Bytes)
		counts.Add(p.Flow, 1)
		if p.Bytes < minB {
			minB = p.Bytes
		}
		if p.Bytes > maxB {
			maxB = p.Bytes
		}
	}
	span := pkts[len(pkts)-1].Arrival - pkts[0].Arrival
	fmt.Printf("packets:  %d\n", len(pkts))
	fmt.Printf("flows:    %d\n", len(counts))
	fmt.Printf("span:     %.3f ms\n", float64(span)/1e6)
	fmt.Printf("bytes:    %d (packet size %d..%d, mean %.1f)\n",
		bytes, minB, maxB, float64(bytes)/float64(len(pkts)))
	if span > 0 {
		fmt.Printf("avg rate: %.3f Gbps, %.3f Mpps\n",
			float64(bytes)*8/float64(span), float64(len(pkts))*1e3/float64(span))
	}
	fmt.Printf("top %d flows by packets:\n", *topN)
	entries := counts.TopK(*topN)
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Count > entries[j].Count })
	for _, e := range entries {
		fmt.Printf("  %-44v %10.0f\n", e.Flow, e.Count)
	}
}
