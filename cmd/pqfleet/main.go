// Command pqfleet is the fleet-level diagnosis client: the paper's
// higher-layer application that queries every switch on a packet's path
// and correlates the answers into a per-hop culprit report.
//
// Usage:
//
//	pqfleet -hop s1=127.0.0.1:7171 -hop s2=127.0.0.1:7172 -hop s3=127.0.0.1:7173 \
//	        -port 0 -start 1000000 -end 2000000 -victim pkt-42 -topk 5
//	pqfleet -demo
//
// Hops are listed in path order; each -hop is "id=addr". The collector
// fans the interval query out to every hop concurrently, keeps
// partial-result semantics (a dead hop is reported in place, the others
// still answer), and ranks each hop's top-k culprit flows.
//
// -demo runs an in-process 3-hop simulated chain with cross-traffic at
// the middle hop, serves each hop's System over loopback, and prints the
// resulting path diagnosis plus its precision/recall against the per-hop
// ground truth.
//
// -mirror turns on checkpoint streaming: the collector subscribes to every
// hop's checkpoint stream and keeps a local histstore replica per switch
// (under -mirror-dir), so covered intervals are answered at local speed
// with no per-query round trip. Answers that extend past a replica's
// coverage are served only within -mirror-staleness nanoseconds of lag and
// are explicitly annotated "[mirror, stale +Nns]" in the report; with the
// strict default (0) they fall back to the network fan-out. A hop whose
// switch is unreachable is still answered from its replica, always
// annotated stale. Combined with -demo, the demo chain runs with durable
// per-hop histories and prints the same diagnosis both over the network
// and from the warmed mirrors.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"printqueue/internal/core/control"
	"printqueue/internal/core/qmonitor"
	"printqueue/internal/core/timewindow"
	"printqueue/internal/experiments"
	"printqueue/internal/fleet"
	"printqueue/internal/flow"
	"printqueue/internal/pktrec"
)

// hopFlags accumulates repeated -hop id=addr flags in path order.
type hopFlags []fleet.SwitchInfo

func (h *hopFlags) String() string { return fmt.Sprint(*h) }

func (h *hopFlags) Set(v string) error {
	id, addr, ok := strings.Cut(v, "=")
	if !ok || id == "" || addr == "" {
		return fmt.Errorf("want id=addr, got %q", v)
	}
	*h = append(*h, fleet.SwitchInfo{ID: id, Hop: len(*h), Addr: addr})
	return nil
}

func main() {
	log.SetFlags(0)
	var hops hopFlags
	flag.Var(&hops, "hop", "one path hop as id=addr; repeat in path order")
	port := flag.Int("port", 0, "egress port to query at every hop")
	start := flag.Uint64("start", 0, "interval start, ns")
	end := flag.Uint64("end", 0, "interval end, ns (exclusive)")
	topk := flag.Int("topk", 5, "culprit flows to rank per hop")
	victim := flag.String("victim", "victim", "label for the diagnosed packet/flow")
	timeout := flag.Duration("timeout", 2*time.Second, "per-hop query deadline")
	workers := flag.Int("workers", fleet.DefaultWorkers, "max concurrent hop queries")
	dialTimeout := flag.Duration("dial-timeout", 5*time.Second, "per-round-trip I/O deadline")
	demo := flag.Bool("demo", false, "run the in-process 3-hop chain demo instead of dialing real switches")
	mirror := flag.Bool("mirror", false, "subscribe to every hop's checkpoint stream and answer covered intervals from local replicas")
	mirrorDir := flag.String("mirror-dir", "", "root directory for the per-switch replica stores (default: a fresh temp dir)")
	mirrorStaleness := flag.Uint64("mirror-staleness", 0, "max ns a query may reach past a replica's coverage and still be served locally, annotated stale; 0 = strict")
	flag.Parse()

	if *mirror && *mirrorDir == "" {
		dir, err := os.MkdirTemp("", "pqfleet-mirror-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		*mirrorDir = dir
	}
	if *demo {
		if err := runDemo(*topk, *mirror, *mirrorDir, *mirrorStaleness); err != nil {
			log.Fatal(err)
		}
		return
	}
	if len(hops) == 0 {
		log.Fatal("usage: pqfleet -hop id=addr [-hop id=addr ...] -port 0 -start S -end E, or pqfleet -demo")
	}
	if *end <= *start {
		log.Fatalf("empty interval [%d, %d)", *start, *end)
	}
	c := fleet.New(fleet.Options{
		Workers:           *workers,
		HopTimeout:        *timeout,
		Dial:              control.DialOptions{Timeout: *dialTimeout},
		Mirror:            *mirror,
		MirrorDir:         *mirrorDir,
		MirrorStalenessNs: *mirrorStaleness,
	})
	defer c.Close()
	refs := make([]fleet.HopRef, 0, len(hops))
	for _, info := range hops {
		if err := c.Register(info); err != nil {
			log.Fatal(err)
		}
		refs = append(refs, fleet.HopRef{SwitchID: info.ID, Port: *port})
	}
	d, err := c.Diagnose(*victim, refs, *start, *end, *topk)
	if err != nil {
		log.Fatal(err)
	}
	printDiagnosis(d)
}

func printDiagnosis(d *fleet.PathDiagnosis) {
	fmt.Printf("victim %s, interval [%d, %d), %d hops, %v", d.Victim, d.Start, d.End, len(d.Hops), d.Elapsed.Round(time.Microsecond))
	if d.Partial {
		fmt.Printf("  PARTIAL (failed: %s)", strings.Join(d.FailedHops(), ", "))
	}
	fmt.Println()
	for _, hd := range d.Hops {
		src := ""
		if hd.Mirrored {
			src = "  [mirror"
			if hd.Stale {
				src += fmt.Sprintf(", stale +%dns", hd.LagNs)
			}
			src += "]"
		}
		fmt.Printf("hop %d  %-8s port %d  %v%s\n", hd.Hop, hd.SwitchID, hd.Port, hd.Latency.Round(time.Microsecond), src)
		if hd.Err != nil {
			fmt.Printf("    ERROR: %v\n", hd.Err)
			continue
		}
		if len(hd.Culprits) == 0 {
			fmt.Println("    (no traffic in interval)")
			continue
		}
		for i, cu := range hd.Culprits {
			fmt.Printf("    #%d %-40s %10.1f\n", i+1, cu.Flow, cu.Count)
		}
	}
}

// runDemo stages the cross-switch scenario end to end in one process:
// a 3-hop chain, heavy path traffic, cross-traffic entering at hop 1,
// each hop served over loopback, one fleet diagnosis over the result.
// With mirror set, every hop additionally keeps a durable checkpoint
// history, a second mirror-mode collector warms its replicas from the
// checkpoint streams, and the same diagnosis is printed again as answered
// from the mirrors.
func runDemo(topk int, mirror bool, mirrorDir string, staleness uint64) error {
	var path, cross []pktrec.Packet
	var ts uint64
	for i := 0; i < 250; i++ {
		ts += 500
		f := demoKey(2)
		if i%5 == 0 {
			f = demoKey(1)
		}
		path = append(path, pktrec.Packet{Flow: f, Bytes: 800, Arrival: ts, Port: 0})
	}
	ts = 2000
	for i := 0; i < 150; i++ {
		ts += 600
		cross = append(cross, pktrec.Packet{Flow: demoKey(9), Bytes: 800, Arrival: ts, Port: 0})
	}
	chainCfg := experiments.ChainRunConfig{
		Hops:        3,
		LinkBps:     []uint64{1e9},
		LinkDelayNs: 1000,
		TW:          timewindow.Config{M0: 3, K: 6, Alpha: 1, T: 3, MinPktTxDelayNs: 10},
		QM:          qmonitor.Config{MaxDepthCells: 4096, GranuleCells: 4},
	}
	if mirror {
		histDir, err := os.MkdirTemp("", "pqfleet-demo-hist-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(histDir)
		chainCfg.HistDir = histDir
	}
	run, err := experiments.ExecuteChain(path, [][]pktrec.Packet{1: cross}, chainCfg)
	if err != nil {
		return err
	}
	defer run.Close()
	c := fleet.New(fleet.Options{})
	defer c.Close()
	var mc *fleet.Collector
	if mirror {
		mc = fleet.New(fleet.Options{Mirror: true, MirrorDir: mirrorDir, MirrorStalenessNs: staleness})
		defer mc.Close()
	}
	refs := make([]fleet.HopRef, len(run.Sys))
	// minFreeze is the largest interval end every hop's mirror covers with
	// zero lag: the smallest finalize freeze across hops.
	minFreeze := ^uint64(0)
	for k, sys := range run.Sys {
		qs := control.NewQueryServer(sys)
		qs.Start(2)
		defer qs.Stop()
		srv, err := control.ServeQueries("127.0.0.1:0", qs)
		if err != nil {
			return err
		}
		defer srv.Close()
		id := fmt.Sprintf("sw%d", k)
		info := fleet.SwitchInfo{ID: id, Hop: k, Addr: srv.Addr().String()}
		if err := c.Register(info); err != nil {
			return err
		}
		if mc != nil {
			if err := mc.Register(info); err != nil {
				return err
			}
		}
		refs[k] = fleet.HopRef{SwitchID: id, Port: 0}
		if f := run.Chain.Switch(k).Port(0).Now() + 1; f < minFreeze {
			minFreeze = f
		}
	}
	d, err := c.Diagnose("demo-victim", refs, 0, minFreeze, topk)
	if err != nil {
		return err
	}
	fmt.Println("3-hop chain, cross-traffic at hop 1 (flow 10.0.0.9):")
	printDiagnosis(d)
	fmt.Println("\nattribution vs per-hop ground truth:")
	for _, s := range experiments.ScoreChainAttribution(run, d, topk) {
		fmt.Printf("hop %d: precision %.2f recall %.2f (reported %d, truth %d)\n",
			s.Hop, s.Precision, s.Recall, s.Reported, s.Truth)
	}
	if mc == nil {
		return nil
	}
	// Wait for the replicas to finish their catch-up replay, observable as
	// every hop answering Mirrored.
	deadline := time.Now().Add(15 * time.Second)
	for {
		results := mc.QueryPath(refs, 0, minFreeze)
		warm := true
		for _, res := range results {
			if res.Err != nil || !res.Mirrored {
				warm = false
				break
			}
		}
		if warm {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("pqfleet: mirrors never warmed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	md, err := mc.Diagnose("demo-victim", refs, 0, minFreeze, topk)
	if err != nil {
		return err
	}
	fmt.Println("\nsame diagnosis from the warmed mirrors (no per-hop round trips):")
	printDiagnosis(md)
	return nil
}

func demoKey(n byte) flow.Key {
	return flow.Key{SrcIP: [4]byte{10, 0, 0, n}, DstIP: [4]byte{10, 0, 1, 1}, SrcPort: 5, DstPort: 80, Proto: flow.ProtoTCP}
}
