// Command pqfleet is the fleet-level diagnosis client: the paper's
// higher-layer application that queries every switch on a packet's path
// and correlates the answers into a per-hop culprit report.
//
// Usage:
//
//	pqfleet -hop s1=127.0.0.1:7171 -hop s2=127.0.0.1:7172 -hop s3=127.0.0.1:7173 \
//	        -port 0 -start 1000000 -end 2000000 -victim pkt-42 -topk 5
//	pqfleet -demo
//
// Hops are listed in path order; each -hop is "id=addr". The collector
// fans the interval query out to every hop concurrently, keeps
// partial-result semantics (a dead hop is reported in place, the others
// still answer), and ranks each hop's top-k culprit flows.
//
// -demo runs an in-process 3-hop simulated chain with cross-traffic at
// the middle hop, serves each hop's System over loopback, and prints the
// resulting path diagnosis plus its precision/recall against the per-hop
// ground truth.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"printqueue/internal/core/control"
	"printqueue/internal/core/qmonitor"
	"printqueue/internal/core/timewindow"
	"printqueue/internal/experiments"
	"printqueue/internal/fleet"
	"printqueue/internal/flow"
	"printqueue/internal/pktrec"
)

// hopFlags accumulates repeated -hop id=addr flags in path order.
type hopFlags []fleet.SwitchInfo

func (h *hopFlags) String() string { return fmt.Sprint(*h) }

func (h *hopFlags) Set(v string) error {
	id, addr, ok := strings.Cut(v, "=")
	if !ok || id == "" || addr == "" {
		return fmt.Errorf("want id=addr, got %q", v)
	}
	*h = append(*h, fleet.SwitchInfo{ID: id, Hop: len(*h), Addr: addr})
	return nil
}

func main() {
	log.SetFlags(0)
	var hops hopFlags
	flag.Var(&hops, "hop", "one path hop as id=addr; repeat in path order")
	port := flag.Int("port", 0, "egress port to query at every hop")
	start := flag.Uint64("start", 0, "interval start, ns")
	end := flag.Uint64("end", 0, "interval end, ns (exclusive)")
	topk := flag.Int("topk", 5, "culprit flows to rank per hop")
	victim := flag.String("victim", "victim", "label for the diagnosed packet/flow")
	timeout := flag.Duration("timeout", 2*time.Second, "per-hop query deadline")
	workers := flag.Int("workers", fleet.DefaultWorkers, "max concurrent hop queries")
	dialTimeout := flag.Duration("dial-timeout", 5*time.Second, "per-round-trip I/O deadline")
	demo := flag.Bool("demo", false, "run the in-process 3-hop chain demo instead of dialing real switches")
	flag.Parse()

	if *demo {
		if err := runDemo(*topk); err != nil {
			log.Fatal(err)
		}
		return
	}
	if len(hops) == 0 {
		log.Fatal("usage: pqfleet -hop id=addr [-hop id=addr ...] -port 0 -start S -end E, or pqfleet -demo")
	}
	if *end <= *start {
		log.Fatalf("empty interval [%d, %d)", *start, *end)
	}
	c := fleet.New(fleet.Options{
		Workers:    *workers,
		HopTimeout: *timeout,
		Dial:       control.DialOptions{Timeout: *dialTimeout},
	})
	defer c.Close()
	refs := make([]fleet.HopRef, 0, len(hops))
	for _, info := range hops {
		if err := c.Register(info); err != nil {
			log.Fatal(err)
		}
		refs = append(refs, fleet.HopRef{SwitchID: info.ID, Port: *port})
	}
	d, err := c.Diagnose(*victim, refs, *start, *end, *topk)
	if err != nil {
		log.Fatal(err)
	}
	printDiagnosis(d)
}

func printDiagnosis(d *fleet.PathDiagnosis) {
	fmt.Printf("victim %s, interval [%d, %d), %d hops, %v", d.Victim, d.Start, d.End, len(d.Hops), d.Elapsed.Round(time.Microsecond))
	if d.Partial {
		fmt.Printf("  PARTIAL (failed: %s)", strings.Join(d.FailedHops(), ", "))
	}
	fmt.Println()
	for _, hd := range d.Hops {
		fmt.Printf("hop %d  %-8s port %d  %v\n", hd.Hop, hd.SwitchID, hd.Port, hd.Latency.Round(time.Microsecond))
		if hd.Err != nil {
			fmt.Printf("    ERROR: %v\n", hd.Err)
			continue
		}
		if len(hd.Culprits) == 0 {
			fmt.Println("    (no traffic in interval)")
			continue
		}
		for i, cu := range hd.Culprits {
			fmt.Printf("    #%d %-40s %10.1f\n", i+1, cu.Flow, cu.Count)
		}
	}
}

// runDemo stages the cross-switch scenario end to end in one process:
// a 3-hop chain, heavy path traffic, cross-traffic entering at hop 1,
// each hop served over loopback, one fleet diagnosis over the result.
func runDemo(topk int) error {
	var path, cross []pktrec.Packet
	var ts uint64
	for i := 0; i < 250; i++ {
		ts += 500
		f := demoKey(2)
		if i%5 == 0 {
			f = demoKey(1)
		}
		path = append(path, pktrec.Packet{Flow: f, Bytes: 800, Arrival: ts, Port: 0})
	}
	ts = 2000
	for i := 0; i < 150; i++ {
		ts += 600
		cross = append(cross, pktrec.Packet{Flow: demoKey(9), Bytes: 800, Arrival: ts, Port: 0})
	}
	run, err := experiments.ExecuteChain(path, [][]pktrec.Packet{1: cross}, experiments.ChainRunConfig{
		Hops:        3,
		LinkBps:     []uint64{1e9},
		LinkDelayNs: 1000,
		TW:          timewindow.Config{M0: 3, K: 6, Alpha: 1, T: 3, MinPktTxDelayNs: 10},
		QM:          qmonitor.Config{MaxDepthCells: 4096, GranuleCells: 4},
	})
	if err != nil {
		return err
	}
	defer run.Close()
	c := fleet.New(fleet.Options{})
	defer c.Close()
	refs := make([]fleet.HopRef, len(run.Sys))
	var horizon uint64
	for k, sys := range run.Sys {
		qs := control.NewQueryServer(sys)
		qs.Start(2)
		defer qs.Stop()
		srv, err := control.ServeQueries("127.0.0.1:0", qs)
		if err != nil {
			return err
		}
		defer srv.Close()
		id := fmt.Sprintf("sw%d", k)
		if err := c.Register(fleet.SwitchInfo{ID: id, Hop: k, Addr: srv.Addr().String()}); err != nil {
			return err
		}
		refs[k] = fleet.HopRef{SwitchID: id, Port: 0}
		if now := run.Chain.Switch(k).Port(0).Now(); now > horizon {
			horizon = now
		}
	}
	d, err := c.Diagnose("demo-victim", refs, 0, horizon+1, topk)
	if err != nil {
		return err
	}
	fmt.Println("3-hop chain, cross-traffic at hop 1 (flow 10.0.0.9):")
	printDiagnosis(d)
	fmt.Println("\nattribution vs per-hop ground truth:")
	for _, s := range experiments.ScoreChainAttribution(run, d, topk) {
		fmt.Printf("hop %d: precision %.2f recall %.2f (reported %d, truth %d)\n",
			s.Hop, s.Precision, s.Recall, s.Reported, s.Truth)
	}
	return nil
}

func demoKey(n byte) flow.Key {
	return flow.Key{SrcIP: [4]byte{10, 0, 0, n}, DstIP: [4]byte{10, 0, 1, 1}, SrcPort: 5, DstPort: 80, Proto: flow.ProtoTCP}
}
