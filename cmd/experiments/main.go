// Command experiments regenerates every table and figure of the paper's
// evaluation (§7) on the simulated substrate, plus this reproduction's
// extension experiments. Each experiment prints the same rows/series the
// paper reports; absolute numbers differ (synthetic traces, simulated
// switch) but the shapes reproduce. See EXPERIMENTS.md.
//
// Usage:
//
//	experiments -run all
//	experiments -run fig9 -packets 1000000 -victims 100
//	experiments -run table2,fig16 -seed 3
//	experiments -run fig13 -csv > fig13.csv
//
// Experiments: fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig16tcp
// table2 schedulers conquest
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"

	"printqueue/internal/experiments"
	"printqueue/internal/trace"
)

var (
	runFlag = flag.String("run", "all", "comma-separated experiments to run (fig9..fig16, table2, schedulers, all)")
	packets = flag.Int("packets", 500000, "trace length in packets for measurement experiments")
	victims = flag.Int("victims", 100, "victims sampled per bucket/band")
	seed    = flag.Uint64("seed", 1, "workload generator seed")
	scale   = flag.Float64("scale", 0.2, "case-study time scale (1.0 = the paper's full 500 ms run)")
	csvOut  = flag.Bool("csv", false, "emit comma-separated rows instead of aligned tables")
)

// printer renders experiment rows either as aligned tables or CSV.
type printer struct {
	tw  *tabwriter.Writer
	csv bool
}

func newPrinter() *printer {
	if *csvOut {
		return &printer{csv: true}
	}
	return &printer{tw: tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)}
}

// row emits one row of cells.
func (p *printer) row(cells ...string) {
	if p.csv {
		fmt.Println(strings.Join(cells, ","))
		return
	}
	fmt.Fprintln(p.tw, strings.Join(cells, "\t"))
}

// flush completes the table.
func (p *printer) flush() {
	if !p.csv {
		p.tw.Flush()
	}
}

// section prints a human heading (suppressed in CSV mode, where a comment
// line is used so files remain machine-readable).
func section(format string, args ...interface{}) {
	if *csvOut {
		fmt.Printf("# "+format+"\n", args...)
		return
	}
	fmt.Printf(format+"\n", args...)
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

func main() {
	log.SetFlags(0)
	flag.Parse()
	want := map[string]bool{}
	for _, name := range strings.Split(*runFlag, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	ran := 0
	for _, exp := range []struct {
		name string
		fn   func() error
	}{
		{"fig9", fig9},
		{"table2", table2},
		{"fig10", fig10},
		{"fig11", fig11},
		{"fig12", fig12},
		{"fig13", fig13},
		{"fig14", fig14},
		{"fig15", fig15},
		{"fig16", fig16},
		{"fig16tcp", fig16tcp},
		{"schedulers", schedulers},
		{"conquest", conquestCmp},
	} {
		if !all && !want[exp.name] {
			continue
		}
		ran++
		section("==== %s ====", exp.name)
		if err := exp.fn(); err != nil {
			log.Fatalf("%s: %v", exp.name, err)
		}
		fmt.Println()
	}
	if ran == 0 {
		log.Fatalf("unknown experiment selection %q", *runFlag)
	}
}

func fig9() error {
	for _, w := range []trace.Workload{trace.UW, trace.WS, trace.DM} {
		res, err := experiments.Fig9(w, *packets, *seed, *victims)
		if err != nil {
			return err
		}
		section("-- %s: precision/recall vs queue depth (10^3 cells) --", w)
		p := newPrinter()
		p.row("depth", "AQ prec", "AQ rec", "DQ prec", "DQ rec", "AQ n", "DQ n")
		for _, r := range res.Rows {
			p.row(r.Bucket, f3(r.AQPrecision), f3(r.AQRecall), f3(r.DQPrecision), f3(r.DQRecall),
				fmt.Sprint(r.AQVictims), fmt.Sprint(r.DQVictims))
		}
		p.flush()
	}
	return nil
}

func table2() error {
	rows, err := experiments.Table2(*packets, *seed, *victims)
	if err != nil {
		return err
	}
	section("-- average precision/recall: PrintQueue vs HashPipe vs FlowRadar --")
	p := newPrinter()
	p.row("trace", "PQ prec", "PQ rec", "HP prec", "HP rec", "FR prec", "FR rec")
	for _, r := range rows {
		p.row(r.Trace.String(), f3(r.PQPrecision), f3(r.PQRecall),
			f3(r.HPPrecision), f3(r.HPRecall), f3(r.FRPrecision), f3(r.FRRecall))
	}
	p.flush()
	return nil
}

func fig10() error {
	bands, err := experiments.Fig10(*packets, *seed, *victims)
	if err != nil {
		return err
	}
	quantiles := []float64{0.1, 0.25, 0.5, 0.75, 0.9}
	for _, b := range bands {
		section("-- UW, queue depth %s: accuracy CDF quantiles --", b.Band)
		p := newPrinter()
		p.row("series", "p10", "p25", "p50", "p75", "p90")
		for _, s := range []struct {
			name string
			vals []float64
		}{
			{"PQ precision", b.PQPrec}, {"PQ recall", b.PQRec},
			{"HP precision", b.HPPrec}, {"HP recall", b.HPRec},
			{"FR precision", b.FRPrec}, {"FR recall", b.FRRec},
		} {
			cells := []string{s.name}
			for _, q := range quantiles {
				cells = append(cells, f3(quantile(s.vals, q)))
			}
			p.row(cells...)
		}
		p.flush()
	}
	return nil
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func fig11() error {
	for _, v := range experiments.Fig11Variants {
		res, err := experiments.Fig11(v, *packets, *seed, *victims)
		if err != nil {
			return err
		}
		section("-- UW, %s: median accuracy by depth --", v)
		p := newPrinter()
		p.row("depth", "PQ P", "PQ R", "HP P", "HP R", "FR P", "FR R")
		for _, r := range res.Rows {
			p.row(r.Bucket, f3(r.PQPrecision), f3(r.PQRecall),
				f3(r.HPPrecision), f3(r.HPRecall), f3(r.FRPrecision), f3(r.FRRecall))
		}
		p.flush()
	}
	return nil
}

func fig12() error {
	rows, err := experiments.Fig12(*packets, *seed)
	if err != nil {
		return err
	}
	section("-- UW, alpha=1 k=12 T=5: Top-K accuracy per window --")
	p := newPrinter()
	p.row("window", "K", "precision", "recall")
	for _, r := range rows {
		k := fmt.Sprint(r.K)
		if r.K == 0 {
			k = "all"
		}
		p.row(fmt.Sprint(r.Window), k, f3(r.Precision), f3(r.Recall))
	}
	p.flush()
	return nil
}

func fig13() error {
	rows, err := experiments.Fig13(*packets, *seed, *victims)
	if err != nil {
		return err
	}
	section("-- UW: control-plane storage overhead vs accuracy (alpha_k_T) --")
	p := newPrinter()
	p.row("config", "MB/s", "precision", "recall", "feasible")
	for _, r := range rows {
		p.row(r.Config.Label(), f2(r.MBps), f3(r.Precision), f3(r.Recall), fmt.Sprint(r.Feasible))
	}
	p.flush()
	return nil
}

func fig14() error {
	section("-- (a) linear : exponential storage ratio --")
	p := newPrinter()
	p.row("alpha", "duration(ns)", "ratio")
	for _, r := range experiments.Fig14a() {
		p.row(fmt.Sprint(r.Alpha), fmt.Sprintf("2^%d", log2(r.DurationNs)), f1(r.Ratio))
	}
	p.flush()
	section("-- (b) SRAM usage of time windows (k_T) --")
	p = newPrinter()
	p.row("k_T", "bytes", "utilization%")
	for _, r := range experiments.Fig14b() {
		p.row(fmt.Sprintf("%d_%d", r.K, r.T), fmt.Sprint(r.SRAMBytes), f2(r.Utilization))
	}
	p.flush()
	return nil
}

func log2(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

func fig15() error {
	rows, err := experiments.Fig15(*packets, *seed, *victims)
	if err != nil {
		return err
	}
	section("-- WS: accuracy and SRAM vs activated ports --")
	p := newPrinter()
	p.row("ports", "alpha", "k", "SRAM%", "precision", "recall")
	for _, r := range rows {
		p.row(fmt.Sprint(r.Ports), fmt.Sprint(r.Alpha), fmt.Sprint(r.K),
			f2(r.SRAMPercent), f3(r.Precision), f3(r.Recall))
	}
	p.flush()
	return nil
}

func fig16() error {
	r, err := experiments.Fig16(*scale)
	if err != nil {
		return err
	}
	return printFig16(r, "open-loop senders")
}

func fig16tcp() error {
	r, err := experiments.Fig16TCP(*scale)
	if err != nil {
		return err
	}
	return printFig16(r, "closed-loop TCP senders")
}

func printFig16(r *experiments.Fig16Result, variant string) error {
	section("-- case study (scale %.2f, %s) --", *scale, variant)
	section("burst duration: %.2f ms; congestion duration: %.2f ms (%.0fx)",
		float64(r.BurstDurationNs)/1e6, float64(r.CongestionDurationNs)/1e6,
		float64(r.CongestionDurationNs)/float64(max64(r.BurstDurationNs, 1)))
	section("victim: new TCP packet at depth %d cells", r.VictimDepth)
	p := newPrinter()
	p.row("culprits", "burst%", "background%", "newTCP%", "other%")
	for _, row := range []struct {
		name string
		s    experiments.Fig16Shares
	}{
		{"direct", r.Direct}, {"indirect", r.Indirect}, {"original", r.Original},
	} {
		p.row(row.name, f1(row.s.Burst), f1(row.s.Background), f1(row.s.NewTCP), f1(row.s.Other))
	}
	p.flush()
	section("original culprit packets burst:background = %.0f:%.0f",
		r.OriginalBurst, r.OriginalBackground)
	if !*csvOut {
		fmt.Println("queue depth over time (figure 16a):")
		fmt.Println(sparkline(r.Depth, 100))
	}
	return nil
}

// sparkline renders a depth series as a fixed-width ASCII chart.
func sparkline(series []experiments.Fig16DepthSample, width int) string {
	if len(series) == 0 {
		return "(no samples)"
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	start := series[0].EnqTS
	end := series[len(series)-1].EnqTS
	if end <= start {
		end = start + 1
	}
	maxDepth := 1
	buckets := make([]int, width)
	for _, p := range series {
		i := int(uint64(width-1) * (p.EnqTS - start) / (end - start))
		if p.Depth > buckets[i] {
			buckets[i] = p.Depth
		}
		if p.Depth > maxDepth {
			maxDepth = p.Depth
		}
	}
	out := make([]rune, width)
	for i, d := range buckets {
		out[i] = levels[d*(len(levels)-1)/maxDepth]
	}
	return fmt.Sprintf("  %s\n  0 ms%*s%.1f ms (peak %d cells)",
		string(out), width-9, "", float64(end-start)/1e6, maxDepth)
}

func schedulers() error {
	rows, err := experiments.SchedulerAgnosticism(*packets, *seed, *victims)
	if err != nil {
		return err
	}
	section("-- extension: direct-culprit accuracy under four scheduling disciplines (WS) --")
	p := newPrinter()
	p.row("scheduler", "precision", "recall", "victims", "max depth")
	for _, r := range rows {
		p.row(r.Scheduler.String(), f3(r.Precision), f3(r.Recall),
			fmt.Sprint(r.Victims), fmt.Sprint(r.MaxDepth))
	}
	p.flush()
	return nil
}

func conquestCmp() error {
	res, err := experiments.ConQuestComparison(*packets, *seed, *victims, 20e6)
	if err != nil {
		return err
	}
	section("-- extension: ConQuest vs PrintQueue for victim diagnosis (UW, %d victims) --", res.Victims)
	p := newPrinter()
	p.row("system", "precision", "recall")
	p.row("ConQuest at enqueue (online)", f3(res.OnlinePrecision), f3(res.OnlineRecall))
	p.row("ConQuest 20 ms later (async)", f3(res.AsyncPrecision), f3(res.AsyncRecall))
	p.row("PrintQueue (async)", f3(res.PQPrecision), f3(res.PQRecall))
	p.flush()
	return nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
