// Command pqquery is a client for the PrintQueue TCP query API (hosted by
// `pqsim -serve` or any program calling System.Serve): the remote
// asynchronous-query path of the paper's Figure 3.
//
// Usage:
//
//	pqquery -addr 127.0.0.1:7171 interval -port 0 -start 1000000 -end 2000000
//	pqquery -addr 127.0.0.1:7171 original -port 0 -queue 0 -at 1500000
//	pqquery -addr 127.0.0.1:7171 -proto json interval -port 0 -start 0 -end 100
//	pqquery -addr 127.0.0.1:7171 -batch < queries.txt
//	pqquery -repeat 3 interval -port 0 -start 0 -end 1000   # cold-vs-warm latency
//
// By default pqquery speaks the binary multiplexed v2 wire protocol;
// -proto json selects the newline-delimited JSON fallback.
//
// With -batch, query lines are read from stdin — one query per line in the
// same syntax as the command line ("interval -port 0 -start 5 -end 9" or
// "original -port 0 -queue 0 -at 7") — and all of them are sent to the
// server in a single frame and answered in a single frame.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"printqueue"
)

// queryClient is the part of the client surface pqquery uses, satisfied by
// both printqueue.QueryClient (JSON) and printqueue.MuxQueryClient (binary).
type queryClient interface {
	Interval(port int, start, end uint64) (printqueue.Report, error)
	Original(port, queue int, t uint64) (printqueue.Report, error)
	Close() error
}

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "127.0.0.1:7171", "query service address")
	top := flag.Int("top", 20, "flows to print")
	timeout := flag.Duration("timeout", 5*time.Second, "per-round-trip I/O deadline")
	retries := flag.Int("retries", 2, "retries after a retryable failure (-1 to disable)")
	proto := flag.String("proto", "binary", "wire protocol: binary or json")
	batch := flag.Bool("batch", false, "read one query per line from stdin, send as one frame (binary only)")
	trace := flag.Bool("trace", false, "trace every query end to end and print the joined client+server span tree")
	repeat := flag.Int("repeat", 1, "run the query N times, printing per-attempt latency (shows the server's cold-tier decode cost amortizing into its LRU)")
	flag.Parse()
	if flag.NArg() < 1 && !*batch {
		log.Fatal("usage: pqquery [-addr host:port] [-proto binary|json] [-timeout 5s] [-retries 2] [-trace] interval|original [flags], or -batch < queries")
	}
	if *retries == 0 {
		*retries = -1 // flag 0 means "no retries"; the option's 0 means default
	}
	opts := printqueue.DialOptions{Timeout: *timeout, MaxRetries: *retries}
	var tracer *printqueue.Tracer
	if *trace {
		tracer = printqueue.NewTracer(1, 0) // sample every query
		opts.Tracer = tracer
	}

	var client queryClient
	var mux *printqueue.MuxQueryClient
	var err error
	switch *proto {
	case "binary":
		mux, err = printqueue.DialQueriesMuxOpts(*addr, opts)
		client = mux
	case "json":
		client, err = printqueue.DialQueriesOpts(*addr, opts)
	default:
		log.Fatalf("unknown -proto %q (want binary or json)", *proto)
	}
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	if *batch {
		if mux == nil {
			log.Fatal("-batch requires -proto binary")
		}
		code := runBatch(mux, os.Stdin, *top)
		client.Close()
		printTraces(tracer)
		os.Exit(code)
	}

	var report printqueue.Report
	for i := 0; i < *repeat; i++ {
		t0 := time.Now()
		report, err = runOne(client, flag.Arg(0), flag.Args()[1:])
		if err != nil {
			printTraces(tracer)
			log.Fatal(err)
		}
		if *repeat > 1 {
			fmt.Printf("attempt %d: %v\n", i+1, time.Since(t0).Round(time.Microsecond))
		}
	}
	printReport(report, *top)
	printTraces(tracer)
}

// printTraces dumps every trace the client tracer completed, newest last,
// as indented span trees joining the client and server sides.
func printTraces(tracer *printqueue.Tracer) {
	if tracer == nil {
		return
	}
	traces := tracer.Traces()
	for i := len(traces) - 1; i >= 0; i-- {
		fmt.Print(printqueue.FormatTrace(traces[i]))
	}
}

// runOne executes a single query given its kind and flag-style arguments.
func runOne(client queryClient, kind string, args []string) (printqueue.Report, error) {
	q, err := parseQuery(kind, args)
	if err != nil {
		return nil, err
	}
	switch q.Kind {
	case "interval":
		return client.Interval(q.Port, q.Start, q.End)
	default:
		return client.Original(q.Port, q.Queue, q.At)
	}
}

// parseQuery turns "interval -port 0 -start 5 -end 9" style arguments into
// a BatchQuery, shared by the single-shot and -batch paths.
func parseQuery(kind string, args []string) (printqueue.BatchQuery, error) {
	switch kind {
	case "interval":
		fs := flag.NewFlagSet("interval", flag.ContinueOnError)
		port := fs.Int("port", 0, "egress port")
		start := fs.Uint64("start", 0, "interval start (ns)")
		end := fs.Uint64("end", 0, "interval end (ns)")
		if err := fs.Parse(args); err != nil {
			return printqueue.BatchQuery{}, err
		}
		return printqueue.BatchQuery{Kind: "interval", Port: *port, Start: *start, End: *end}, nil
	case "original":
		fs := flag.NewFlagSet("original", flag.ContinueOnError)
		port := fs.Int("port", 0, "egress port")
		queue := fs.Int("queue", 0, "priority queue")
		at := fs.Uint64("at", 0, "query instant (ns)")
		if err := fs.Parse(args); err != nil {
			return printqueue.BatchQuery{}, err
		}
		return printqueue.BatchQuery{Kind: "original", Port: *port, Queue: *queue, At: *at}, nil
	default:
		return printqueue.BatchQuery{}, fmt.Errorf("unknown query kind %q (want interval or original)", kind)
	}
}

// runBatch reads one query per line, sends them as a single frame, and
// prints each answer labelled by its line. It returns the process exit
// code so main can flush traces before exiting.
func runBatch(mux *printqueue.MuxQueryClient, in *os.File, top int) int {
	var queries []printqueue.BatchQuery
	var lines []string
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		q, err := parseQuery(fields[0], fields[1:])
		if err != nil {
			log.Fatalf("query %d (%q): %v", len(queries)+1, line, err)
		}
		queries = append(queries, q)
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(queries) == 0 {
		log.Fatal("no queries on stdin")
	}
	results, err := mux.Batch(queries)
	if err != nil {
		log.Fatal(err)
	}
	exit := 0
	for i, r := range results {
		fmt.Printf("[%d] %s\n", i+1, lines[i])
		if r.Err != nil {
			fmt.Printf("  error: %v\n", r.Err)
			exit = 1
			continue
		}
		printReport(r.Report, top)
	}
	return exit
}

func printReport(report printqueue.Report, top int) {
	if len(report) == 0 {
		fmt.Println("no culprits")
		return
	}
	fmt.Printf("%d culprit flows, %.1f packets total:\n", len(report), report.Total())
	for i, c := range report {
		if i == top {
			break
		}
		fmt.Printf("  %-44v %10.1f\n", c.Flow, c.Packets)
	}
}
