// Command pqquery is a client for the PrintQueue TCP query API (hosted by
// `pqsim -serve` or any program calling System.Serve): the remote
// asynchronous-query path of the paper's Figure 3.
//
// Usage:
//
//	pqquery -addr 127.0.0.1:7171 interval -port 0 -start 1000000 -end 2000000
//	pqquery -addr 127.0.0.1:7171 original -port 0 -queue 0 -at 1500000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"printqueue"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "127.0.0.1:7171", "query service address")
	top := flag.Int("top", 20, "flows to print")
	timeout := flag.Duration("timeout", 5*time.Second, "per-round-trip I/O deadline")
	retries := flag.Int("retries", 2, "retries after a retryable failure (-1 to disable)")
	flag.Parse()
	if flag.NArg() < 1 {
		log.Fatal("usage: pqquery [-addr host:port] [-timeout 5s] [-retries 2] interval|original [flags]")
	}
	if *retries == 0 {
		*retries = -1 // flag 0 means "no retries"; the option's 0 means default
	}

	client, err := printqueue.DialQueriesOpts(*addr, printqueue.DialOptions{
		Timeout:    *timeout,
		MaxRetries: *retries,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	var report printqueue.Report
	switch flag.Arg(0) {
	case "interval":
		fs := flag.NewFlagSet("interval", flag.ExitOnError)
		port := fs.Int("port", 0, "egress port")
		start := fs.Uint64("start", 0, "interval start (ns)")
		end := fs.Uint64("end", 0, "interval end (ns)")
		fs.Parse(flag.Args()[1:])
		report, err = client.Interval(*port, *start, *end)
	case "original":
		fs := flag.NewFlagSet("original", flag.ExitOnError)
		port := fs.Int("port", 0, "egress port")
		queue := fs.Int("queue", 0, "priority queue")
		at := fs.Uint64("at", 0, "query instant (ns)")
		fs.Parse(flag.Args()[1:])
		report, err = client.Original(*port, *queue, *at)
	default:
		log.Fatalf("unknown query kind %q (want interval or original)", flag.Arg(0))
	}
	if err != nil {
		log.Fatal(err)
	}
	if len(report) == 0 {
		fmt.Println("no culprits")
		os.Exit(0)
	}
	fmt.Printf("%d culprit flows, %.1f packets total:\n", len(report), report.Total())
	for i, c := range report {
		if i == *top {
			break
		}
		fmt.Printf("  %-44v %10.1f\n", c.Flow, c.Packets)
	}
}
