package printqueue

import (
	"encoding/json"
	"net/http"
	"strings"

	"printqueue/internal/telemetry"
	"printqueue/internal/tracing"
)

// OpsService is a running operations endpoint for one System: the
// out-of-band observability window PrintQueue's own premise demands — you
// cannot diagnose what you cannot measure, including the measurement system
// itself. It serves:
//
//	/metrics          Prometheus text exposition (format 0.0.4) of every
//	                  control-plane metric: checkpoint/freeze counters, the
//	                  freeze-to-retire latency histogram, per-port packet
//	                  counts, per-shard ingestion ring occupancy and
//	                  backpressure, and query latency histograms. A scrape
//	                  that Accepts application/openmetrics-text gets the
//	                  OpenMetrics rendition with trace-id exemplars on the
//	                  latency histogram buckets.
//	/healthz          liveness probe (compatibility alias of /healthz/live)
//	/healthz/live     liveness probe: the process serves HTTP
//	/healthz/ready    readiness probe: 503 with reasons (e.g.
//	                  "pipeline-stopped") while the system should be
//	                  rotated out of serving
//	/debug/vars       expvar JSON, including the metric registry snapshot
//	/debug/pipeline   JSON introspection: ports, shard assignment, ring
//	                  state, live stats
//	/debug/history    tiered checkpoint history: segments, bytes on disk,
//	                  cache hit/miss, compression ratio inputs, resident
//	                  bytes across tiers
//	/debug/traces     recent completed traces, newest first (tracing on)
//	/debug/trace/{id} one trace by 16-hex-digit id
//	/debug/slowlog    the always-on slow-query trace ring
//	/debug/events     the data-plane event ring (backpressure, shed,
//	                  freeze stalls, ring high-watermarks)
//	/debug/pprof/*    Go runtime profiles
//
// The instrumentation record path is lock-free and allocation-free, so the
// endpoint can stay attached to a system under full pipeline load; see the
// "Operations & metrics" section of README.md for the metric reference.
type OpsService struct {
	srv *telemetry.Server
}

// ServeOps starts the ops HTTP endpoint on addr (use "127.0.0.1:0" to pick
// a free port). Scrapes are safe at any time: while the sharded pipeline
// runs, while queries execute, and across pipeline restarts. The trace and
// event endpoints answer with empty lists until EnableTracing installs the
// tracing plane (before or after ServeOps — the endpoint reads the live
// system state per request).
func (s *System) ServeOps(addr string) (*OpsService, error) {
	srv, err := telemetry.NewServer(addr, s.inner.Telemetry())
	if err != nil {
		return nil, err
	}
	srv.SetReady(s.inner.Degraded)
	srv.HandleJSON("/debug/pipeline", func() any { return s.inner.Introspect() })
	srv.HandleJSON("/debug/history", func() any {
		st, ok := s.HistoryStats()
		return map[string]any{
			"enabled":        ok,
			"stats":          st,
			"resident_bytes": s.inner.HistoryBytes(),
		}
	})
	srv.HandleJSON("/debug/traces", func() any { return traceViews(s.inner.Tracer().Traces()) })
	srv.HandleJSON("/debug/slowlog", func() any { return traceViews(s.inner.Tracer().Slow()) })
	srv.HandleJSON("/debug/events", func() any {
		evs := s.inner.Events().Events()
		if evs == nil {
			evs = []tracing.Event{}
		}
		return evs
	})
	srv.Handle("/debug/trace/", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		s.serveTrace(w, req)
	}))
	return &OpsService{srv: srv}, nil
}

// serveTrace answers /debug/trace/{id}: the trace view, or 404 when the id
// is malformed or the trace has aged out of both rings.
func (s *System) serveTrace(w http.ResponseWriter, req *http.Request) {
	idStr := strings.TrimPrefix(req.URL.Path, "/debug/trace/")
	id, ok := tracing.ParseID(idStr)
	if !ok {
		http.Error(w, "bad trace id", http.StatusNotFound)
		return
	}
	tr := s.inner.Tracer().Find(id)
	if tr == nil {
		http.Error(w, "trace not found", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(tr.View())
}

// traceViews renders traces for JSON exposition (never nil, so the
// endpoint returns [] rather than null when the ring is empty).
func traceViews(trs []*tracing.Trace) []tracing.View {
	out := make([]tracing.View, len(trs))
	for i, tr := range trs {
		out[i] = tr.View()
	}
	return out
}

// Addr returns the endpoint's listening address.
func (o *OpsService) Addr() string { return o.srv.Addr() }

// Close shuts the endpoint down. Idempotent.
func (o *OpsService) Close() error { return o.srv.Close() }
