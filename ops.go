package printqueue

import (
	"printqueue/internal/telemetry"
)

// OpsService is a running operations endpoint for one System: the
// out-of-band observability window PrintQueue's own premise demands — you
// cannot diagnose what you cannot measure, including the measurement system
// itself. It serves:
//
//	/metrics         Prometheus text exposition (format 0.0.4) of every
//	                 control-plane metric: checkpoint/freeze counters, the
//	                 freeze-to-retire latency histogram, per-port packet
//	                 counts, per-shard ingestion ring occupancy and
//	                 backpressure, and query latency histograms.
//	/healthz         liveness probe
//	/debug/vars      expvar JSON, including the metric registry snapshot
//	/debug/pipeline  JSON introspection: ports, shard assignment, ring
//	                 state, live stats
//	/debug/pprof/*   Go runtime profiles
//
// The instrumentation record path is lock-free and allocation-free, so the
// endpoint can stay attached to a system under full pipeline load; see the
// "Operations & metrics" section of README.md for the metric reference.
type OpsService struct {
	srv *telemetry.Server
}

// ServeOps starts the ops HTTP endpoint on addr (use "127.0.0.1:0" to pick
// a free port). Scrapes are safe at any time: while the sharded pipeline
// runs, while queries execute, and across pipeline restarts.
func (s *System) ServeOps(addr string) (*OpsService, error) {
	srv, err := telemetry.NewServer(addr, s.inner.Telemetry())
	if err != nil {
		return nil, err
	}
	srv.HandleJSON("/debug/pipeline", func() any { return s.inner.Introspect() })
	return &OpsService{srv: srv}, nil
}

// Addr returns the endpoint's listening address.
func (o *OpsService) Addr() string { return o.srv.Addr() }

// Close shuts the endpoint down. Idempotent.
func (o *OpsService) Close() error { return o.srv.Close() }
