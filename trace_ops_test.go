package printqueue

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func opsFixture(t *testing.T) (*System, *OpsService, uint64) {
	t.Helper()
	cfg := DefaultConfig(0)
	pq, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := FlowID{SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2}, SrcPort: 1, DstPort: 2, Proto: 6}
	var ts uint64 = 1000
	for i := 0; i < 200; i++ {
		ts += 80
		pq.Observe(Packet{Flow: f, Port: 0, Bytes: 100}, ts-40, ts, 30)
	}
	pq.Finalize(ts + 1)
	ops, err := pq.ServeOps("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ops.Close() })
	return pq, ops, ts
}

func opsGet(t *testing.T, ops *OpsService, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + ops.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

// TestHealthzLivenessReadinessSplit is the readiness satellite: liveness
// stays 200 as long as the process serves, while readiness flips to 503
// with a reason once the ingestion pipeline has been attached and stopped.
func TestHealthzLivenessReadinessSplit(t *testing.T) {
	pq, ops, _ := opsFixture(t)

	for _, path := range []string{"/healthz", "/healthz/live", "/healthz/ready"} {
		if code, body := opsGet(t, ops, path); code != 200 || !strings.Contains(body, "ok") {
			t.Errorf("GET %s before pipeline = %d %q, want 200 ok", path, code, body)
		}
	}

	pl, err := pq.StartPipeline(PipelineConfig{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := opsGet(t, ops, "/healthz/ready"); code != 200 {
		t.Errorf("ready = %d while pipeline open, want 200", code)
	}
	pl.Close()

	code, body := opsGet(t, ops, "/healthz/ready")
	if code != http.StatusServiceUnavailable {
		t.Errorf("ready after pipeline Close = %d, want 503", code)
	}
	if !strings.Contains(body, "pipeline-stopped") {
		t.Errorf("readiness body %q does not name the pipeline-stopped reason", body)
	}
	// Liveness is unaffected: the process still serves.
	for _, path := range []string{"/healthz", "/healthz/live"} {
		if code, _ := opsGet(t, ops, path); code != 200 {
			t.Errorf("GET %s after pipeline close = %d, want 200", path, code)
		}
	}
}

// TestOpsTraceEndpoints drives a traced query through the query plane and
// checks the trace/slowlog/event debug endpoints plus the OpenMetrics
// exemplar rendition of /metrics.
func TestOpsTraceEndpoints(t *testing.T) {
	pq, ops, ts := opsFixture(t)
	pq.EnableTracing(TracingConfig{SampleEvery: 1})

	// Empty rings render as JSON arrays, not null.
	for _, path := range []string{"/debug/traces", "/debug/slowlog", "/debug/events"} {
		code, body := opsGet(t, ops, path)
		if code != 200 {
			t.Fatalf("GET %s = %d", path, code)
		}
		if !strings.HasPrefix(strings.TrimSpace(body), "[") {
			t.Errorf("GET %s did not return a JSON array: %q", path, body)
		}
	}

	// A served query self-samples into the server trace ring and stamps a
	// latency-histogram exemplar.
	svc, err := pq.Serve("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	qc, err := DialQueries(svc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()
	if _, err := qc.Interval(0, 1000, ts+1); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for pq.Tracer().Finished() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	traces := pq.Traces()
	if len(traces) == 0 {
		t.Fatal("no trace recorded for the served query")
	}
	id := FormatTraceID(traces[0].ID())

	code, body := opsGet(t, ops, "/debug/traces")
	if code != 200 || !strings.Contains(body, id) {
		t.Fatalf("/debug/traces (%d) missing trace %s: %s", code, id, body)
	}
	code, body = opsGet(t, ops, "/debug/trace/"+id)
	if code != 200 || !strings.Contains(body, `"spans"`) {
		t.Fatalf("/debug/trace/%s = %d: %s", id, code, body)
	}
	if code, _ := opsGet(t, ops, "/debug/trace/not-a-trace-id"); code != http.StatusNotFound {
		t.Errorf("bad trace id = %d, want 404", code)
	}
	if code, _ := opsGet(t, ops, "/debug/trace/ffffffffffffffff"); code != http.StatusNotFound {
		t.Errorf("unknown trace id = %d, want 404", code)
	}

	// Content negotiation: default scrape stays 0.0.4 and carries no
	// exemplars; an OpenMetrics Accept gets exemplars and the EOF marker.
	code, body = opsGet(t, ops, "/metrics")
	if code != 200 || strings.Contains(body, "# EOF") || strings.Contains(body, "trace_id=") {
		t.Fatalf("default /metrics changed format (code %d, EOF=%v, exemplars=%v)",
			code, strings.Contains(body, "# EOF"), strings.Contains(body, "trace_id="))
	}
	req, _ := http.NewRequest("GET", "http://"+ops.Addr()+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	om, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Errorf("negotiated Content-Type %q is not OpenMetrics", ct)
	}
	if !strings.HasSuffix(strings.TrimRight(string(om), "\n"), "# EOF") {
		t.Error("OpenMetrics rendition missing # EOF terminator")
	}
	if !strings.Contains(string(om), `# {trace_id="`+id+`"}`) {
		t.Errorf("OpenMetrics rendition missing exemplar for trace %s", id)
	}
}

// TestTracedQueryMatchesUntraced guards the public API: the same query
// with and without tracing returns identical reports.
func TestTracedQueryMatchesUntraced(t *testing.T) {
	pq, _, ts := opsFixture(t)
	before, err := pq.QueryInterval(0, 1000, ts+1)
	if err != nil {
		t.Fatal(err)
	}
	pq.EnableTracing(TracingConfig{SampleEvery: 1})
	after, err := pq.QueryInterval(0, 1000, ts+1)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Fatalf("tracing changed the report: %d vs %d culprits", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("culprit %d differs with tracing on: %+v vs %+v", i, before[i], after[i])
		}
	}
	if pq.Tracer().Finished() == 0 {
		t.Fatal("traced query did not record a trace")
	}
}
