package printqueue

import (
	"io"
	"time"

	"printqueue/internal/flow"
	"printqueue/internal/groundtruth"
	"printqueue/internal/metrics"
	"printqueue/internal/pktrec"
	"printqueue/internal/switchsim"
)

// Packet is one packet offered to the simulated switch.
type Packet struct {
	Flow    FlowID
	Bytes   int    // wire size
	Arrival uint64 // ingress timestamp, ns
	Port    int    // egress port
	Queue   int    // priority class (0 = highest); used by StrictPriority
}

func (p Packet) internal() *pktrec.Packet {
	return &pktrec.Packet{
		Flow:    p.Flow.internal(),
		Bytes:   p.Bytes,
		Arrival: p.Arrival,
		Port:    p.Port,
		Queue:   p.Queue,
	}
}

// SchedulerKind selects a port's packet scheduling discipline.
type SchedulerKind int

const (
	// SchedulerFIFO serves packets in arrival order.
	SchedulerFIFO SchedulerKind = iota
	// SchedulerStrictPriority always serves the lowest-numbered non-empty
	// queue.
	SchedulerStrictPriority
	// SchedulerDRR shares the link across classes with deficit round robin
	// (byte-level weighted fairness; see SwitchConfig.Weights).
	SchedulerDRR
	// SchedulerPIFO dequeues by per-packet rank (push-in first-out; see
	// SwitchConfig.Rank) — the primitive of programmable schedulers.
	// PrintQueue's structures are scheduling-agnostic, so diagnosis works
	// unchanged under any of these.
	SchedulerPIFO
)

// SwitchConfig configures the simulated switch.
type SwitchConfig struct {
	// Ports is the number of egress ports.
	Ports int
	// LinkBps is each port's line rate in bits per second.
	LinkBps uint64
	// BufferCells caps each port's occupancy in 80-byte cells (0 =
	// unlimited; packets beyond the cap are tail-dropped).
	BufferCells int
	// QueuesPerPort is the number of priority classes (>= 1).
	QueuesPerPort int
	// Scheduler selects the queueing discipline.
	Scheduler SchedulerKind
	// Weights are per-class DRR weights (optional; default all 1).
	Weights []int
	// Rank assigns PIFO ranks; lower ranks dequeue first (optional;
	// default: the packet's Queue field).
	Rank func(p Packet) uint64
}

// Switch is a simulated multi-port switch: the substrate the PrintQueue
// data plane attaches to, standing in for the paper's Tofino.
type Switch struct {
	inner *switchsim.Switch
}

// NewSwitch builds a switch.
func NewSwitch(cfg SwitchConfig) (*Switch, error) {
	if cfg.Ports == 0 {
		cfg.Ports = 1
	}
	var sched switchsim.Scheduler
	switch cfg.Scheduler {
	case SchedulerStrictPriority:
		sched = switchsim.StrictPriority
	case SchedulerDRR:
		sched = switchsim.DRR
	case SchedulerPIFO:
		sched = switchsim.PIFO
	default:
		sched = switchsim.FIFO
	}
	var rank switchsim.RankFunc
	if cfg.Rank != nil {
		userRank := cfg.Rank
		rank = func(p *pktrec.Packet) uint64 {
			return userRank(Packet{
				Flow:    fromInternal(p.Flow),
				Bytes:   p.Bytes,
				Arrival: p.Arrival,
				Port:    p.Port,
				Queue:   p.Queue,
			})
		}
	}
	inner, err := switchsim.NewSwitch(cfg.Ports, switchsim.PortConfig{
		LinkBps:     cfg.LinkBps,
		BufferCells: cfg.BufferCells,
		Queues:      cfg.QueuesPerPort,
		Scheduler:   sched,
		Weights:     cfg.Weights,
		Rank:        rank,
	})
	if err != nil {
		return nil, err
	}
	return &Switch{inner: inner}, nil
}

// Inject delivers a packet to its egress port. Arrivals must be fed in
// non-decreasing timestamp order per port.
func (s *Switch) Inject(p Packet) { s.inner.Inject(p.internal()) }

// Flush drains every port's remaining packets.
func (s *Switch) Flush() { s.inner.Flush() }

// Now returns the latest simulated time across ports.
func (s *Switch) Now() uint64 {
	var now uint64
	for i := 0; i < s.inner.Ports(); i++ {
		if t := s.inner.Port(i).Now(); t > now {
			now = t
		}
	}
	return now
}

// Depth returns a port's current occupancy in cells.
func (s *Switch) Depth(port int) int { return s.inner.Port(port).Depth() }

// PortStats summarizes one port's activity.
type PortStats struct {
	Enqueued, Dequeued, Dropped int
	MaxDepthCells               int
	BytesOut                    uint64
}

// Stats returns a port's counters.
func (s *Switch) Stats(port int) PortStats {
	st := s.inner.Port(port).Stats()
	return PortStats{
		Enqueued:      st.Enqueued,
		Dequeued:      st.Dequeued,
		Dropped:       st.Dropped,
		MaxDepthCells: st.MaxDepth,
		BytesOut:      st.BytesOut,
	}
}

// PacketLog records, per dequeued packet, the telemetry the paper's
// evaluation testbed captures with its inserted header: flow, enqueue and
// dequeue times, and the queue depth at enqueue. Attach one with
// AttachLog to obtain ground truth for victim selection and accuracy
// scoring — a real deployment does not need it.
type PacketLog struct {
	inner *groundtruth.Collector
}

// AttachLog hooks a fresh PacketLog onto one port.
func (s *Switch) AttachLog(port int) *PacketLog {
	log := &PacketLog{inner: groundtruth.NewCollector()}
	s.inner.Port(port).AddEgressHook(log.inner)
	return log
}

// LoggedPacket is one telemetry record.
type LoggedPacket struct {
	Flow       FlowID
	EnqTime    uint64
	DeqTime    uint64
	DepthCells int
	Bytes      int
}

// WriteLog serializes the log to w in the binary telemetry format (the
// stand-in for the paper's receiver-side capture files).
func (l *PacketLog) WriteLog(w io.Writer) error { return l.inner.WriteLog(w) }

// ReadPacketLog loads a telemetry log previously written with WriteLog.
func ReadPacketLog(r io.Reader) (*PacketLog, error) {
	inner, err := groundtruth.ReadLog(r)
	if err != nil {
		return nil, err
	}
	return &PacketLog{inner: inner}, nil
}

// Len returns the number of records.
func (l *PacketLog) Len() int { return l.inner.Len() }

// Record returns record i (dequeue order).
func (l *PacketLog) Record(i int) LoggedPacket {
	r := l.inner.Record(i)
	return LoggedPacket{
		Flow:       fromInternal(r.Flow),
		EnqTime:    r.EnqTimestamp,
		DeqTime:    r.DeqTimestamp(),
		DepthCells: int(r.EnqQdepth),
		Bytes:      int(r.Bytes),
	}
}

// Victims returns the indices of packets whose enqueue-time depth is at
// least minDepthCells, up to max entries (0 = all), evenly sampled.
func (l *PacketLog) Victims(minDepthCells, max int) []int {
	return l.inner.SampleVictims(groundtruth.DepthBucket(minDepthCells, 0), max)
}

// VictimsOf returns the indices of packets of one flow, up to max entries.
func (l *PacketLog) VictimsOf(f FlowID, max int) []int {
	return l.inner.SampleVictims(groundtruth.FlowIs(f.internal()), max)
}

// TrueCounts returns the exact per-flow packet counts dequeued during
// [start, end) — ground truth for scoring QueryInterval estimates.
func (l *PacketLog) TrueCounts(start, end uint64) Report {
	return reportFromCounts(l.inner.CountsInInterval(start, end))
}

// DirectTruth returns the exact direct culprits of victim record i.
func (l *PacketLog) DirectTruth(i int) Report {
	return reportFromCounts(l.inner.DirectTruth(i))
}

// RegimeStart returns the beginning of the congestion regime containing
// victim record i.
func (l *PacketLog) RegimeStart(i int) uint64 { return l.inner.RegimeStart(i) }

// IndirectTruth returns the exact indirect culprits of victim record i.
func (l *PacketLog) IndirectTruth(i int) Report {
	return reportFromCounts(l.inner.IndirectTruth(i))
}

// OriginalTruth returns the exact original culprits as of victim record
// i's enqueue — the ideal the queue monitor approximates.
func (l *PacketLog) OriginalTruth(i int) Report {
	return reportFromCounts(l.inner.OriginalTruth(i))
}

// Accuracy scores an estimate against a truth report with the paper's
// precision/recall metric (per-flow true positives are min(estimate,
// truth)).
func Accuracy(estimate, truth Report) (precision, recall float64) {
	return metrics.PrecisionRecall(countsFromReport(estimate), countsFromReport(truth))
}

func countsFromReport(r Report) flow.Counts {
	m := make(flow.Counts, len(r))
	for _, c := range r {
		m.Add(c.Flow.internal(), c.Packets)
	}
	return m
}

// Nanos converts a time.Duration to the uint64 nanosecond timestamps the
// simulator uses.
func Nanos(d time.Duration) uint64 { return uint64(d.Nanoseconds()) }
