package printqueue

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (one benchmark per result; see EXPERIMENTS.md for the mapping)
// and measures the per-packet datapath cost and analysis-program query
// rate. Reproduced quantities are attached to the benchmark output as
// custom metrics (precision, recall, MB/s, ...), so
//
//	go test -bench=. -benchmem
//
// prints the paper's numbers alongside the timing. Ablation benchmarks
// quantify the design choices DESIGN.md calls out: the one-shot passing
// rule, coefficient recovery, exponential versus uniform windows, the
// queue monitor's sequence filter, and data-plane versus asynchronous
// queries.

import (
	"math/rand/v2"
	"strconv"
	"testing"
	"time"

	"printqueue/internal/baseline/flowradar"
	"printqueue/internal/baseline/hashpipe"
	"printqueue/internal/core/qmonitor"
	"printqueue/internal/core/timewindow"
	"printqueue/internal/experiments"
	"printqueue/internal/flow"
	"printqueue/internal/groundtruth"
	"printqueue/internal/metrics"
	"printqueue/internal/pktrec"
	"printqueue/internal/switchsim"
	"printqueue/internal/tcpsim"
	"printqueue/internal/trace"
)

const (
	benchPackets = 300000
	benchVictims = 60
	benchSeed    = 1
)

// --- Figure 9: accuracy vs queue depth, AQ and DQ, three workloads ---

func benchFig9(b *testing.B, w trace.Workload) {
	var res *experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig9(w, benchPackets, benchSeed, benchVictims)
		if err != nil {
			b.Fatal(err)
		}
	}
	var aqp, aqr, dqp, dqr metrics.Sample
	for _, r := range res.Rows {
		if r.AQVictims > 0 {
			aqp.Add(r.AQPrecision)
			aqr.Add(r.AQRecall)
		}
		if r.DQVictims > 0 {
			dqp.Add(r.DQPrecision)
			dqr.Add(r.DQRecall)
		}
	}
	b.ReportMetric(aqp.Mean(), "AQ-precision")
	b.ReportMetric(aqr.Mean(), "AQ-recall")
	b.ReportMetric(dqp.Mean(), "DQ-precision")
	b.ReportMetric(dqr.Mean(), "DQ-recall")
}

func BenchmarkFig9UW(b *testing.B) { benchFig9(b, trace.UW) }
func BenchmarkFig9WS(b *testing.B) { benchFig9(b, trace.WS) }
func BenchmarkFig9DM(b *testing.B) { benchFig9(b, trace.DM) }

// --- Table 2: PrintQueue vs HashPipe vs FlowRadar averages ---

func BenchmarkTable2(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table2(benchPackets/2, benchSeed, benchVictims)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.PQPrecision, r.Trace.String()+"-PQ-P")
		b.ReportMetric(r.PQRecall, r.Trace.String()+"-PQ-R")
		b.ReportMetric(r.HPPrecision, r.Trace.String()+"-HP-P")
		b.ReportMetric(r.FRPrecision, r.Trace.String()+"-FR-P")
	}
}

// --- Figure 10: accuracy CDFs in three occupancy bands (UW) ---

func BenchmarkFig10(b *testing.B) {
	var bands []experiments.Fig10Band
	for i := 0; i < b.N; i++ {
		var err error
		bands, err = experiments.Fig10(benchPackets, benchSeed, benchVictims)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, band := range bands {
		if n := len(band.PQPrec); n > 0 {
			b.ReportMetric(band.PQPrec[n/2], band.Band+"-PQ-P50")
			b.ReportMetric(band.HPPrec[len(band.HPPrec)/2], band.Band+"-HP-P50")
		}
	}
}

// --- Figure 11: parameter variants vs the baselines (UW) ---

func benchFig11(b *testing.B, v experiments.Fig11Variant) {
	var res *experiments.Fig11Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig11(v, benchPackets, benchSeed, benchVictims)
		if err != nil {
			b.Fatal(err)
		}
	}
	var pq, hp metrics.Sample
	for _, r := range res.Rows {
		if r.Victims > 0 {
			pq.Add(r.PQPrecision)
			hp.Add(r.HPPrecision)
		}
	}
	b.ReportMetric(pq.Mean(), "PQ-median-P")
	b.ReportMetric(hp.Mean(), "HP-median-P")
}

func BenchmarkFig11Alpha2T4(b *testing.B) {
	benchFig11(b, experiments.Fig11Variant{Alpha: 2, K: 12, T: 4})
}
func BenchmarkFig11Alpha2T5(b *testing.B) {
	benchFig11(b, experiments.Fig11Variant{Alpha: 2, K: 12, T: 5})
}
func BenchmarkFig11Alpha3T4(b *testing.B) {
	benchFig11(b, experiments.Fig11Variant{Alpha: 3, K: 12, T: 4})
}

// --- Figure 12: Top-K accuracy per individual window (UW) ---

func BenchmarkFig12(b *testing.B) {
	var rows []experiments.Fig12Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig12(benchPackets, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.K == 0 && (r.Window == 0 || r.Window == 4) {
			suffix := "w0"
			if r.Window == 4 {
				suffix = "w4"
			}
			b.ReportMetric(r.Precision, suffix+"-all-P")
			b.ReportMetric(r.Recall, suffix+"-all-R")
		}
	}
}

// --- Figure 13: storage overhead vs accuracy ---

func BenchmarkFig13(b *testing.B) {
	var rows []experiments.Fig13Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig13(benchPackets/2, benchSeed, benchVictims)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.MBps, r.Config.Label()+"-MBps")
		b.ReportMetric(r.Precision, r.Config.Label()+"-P")
	}
}

// --- Figure 14: storage ratio and SRAM (analytic) ---

func BenchmarkFig14(b *testing.B) {
	var a []experiments.Fig14aRow
	var bb []experiments.Fig14bRow
	for i := 0; i < b.N; i++ {
		a = experiments.Fig14a()
		bb = experiments.Fig14b()
	}
	var maxRatio float64
	for _, r := range a {
		if r.Ratio > maxRatio {
			maxRatio = r.Ratio
		}
	}
	b.ReportMetric(maxRatio, "max-linear:exp-ratio")
	for _, r := range bb {
		if r.K == 12 && r.T == 5 {
			b.ReportMetric(r.Utilization, "k12T5-SRAM%")
		}
	}
}

// --- Figure 15: accuracy vs activated ports (WS) ---

func BenchmarkFig15(b *testing.B) {
	var rows []experiments.Fig15Point
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig15(benchPackets/3, benchSeed, benchVictims)
		if err != nil {
			b.Fatal(err)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	b.ReportMetric(first.Precision, "1port-P")
	b.ReportMetric(last.Precision, "10port-P")
	b.ReportMetric(last.SRAMPercent, "10port-SRAM%")
}

// --- Figure 16: the queue-monitor case study ---

func BenchmarkFig16(b *testing.B) {
	var res *experiments.Fig16Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig16(0.2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.CongestionDurationNs)/float64(res.BurstDurationNs), "congestion:burst")
	b.ReportMetric(res.Direct.Burst, "direct-burst%")
	b.ReportMetric(res.Indirect.Burst, "indirect-burst%")
	b.ReportMetric(res.Original.Burst, "original-burst%")
}

// --- Datapath microbenchmarks ---

// BenchmarkTimeWindowInsert measures Algorithm 1 per packet at the paper's
// UW configuration.
func BenchmarkTimeWindowInsert(b *testing.B) {
	cfg := timewindow.Config{M0: 6, K: 12, Alpha: 2, T: 4, MinPktTxDelayNs: 80}
	w, err := timewindow.New(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	keys := benchKeys(64)
	b.ResetTimer()
	var ts uint64
	for i := 0; i < b.N; i++ {
		ts += 80
		w.Insert(keys[i&63].internal(), ts)
	}
}

// BenchmarkQueueMonitorObserve measures the queue monitor per packet.
func BenchmarkQueueMonitorObserve(b *testing.B) {
	m, err := qmonitor.New(qmonitor.Config{MaxDepthCells: 32768, GranuleCells: 2}, nil)
	if err != nil {
		b.Fatal(err)
	}
	keys := benchKeys(64)
	rng := rand.New(rand.NewPCG(1, 2))
	depths := make([]int, 1024)
	for i := range depths {
		depths[i] = rng.IntN(32768)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Observe(keys[i&63].internal(), depths[i&1023])
	}
}

// BenchmarkSwitchPerPacket measures the full simulated egress path:
// enqueue, drain, metadata stamping, PrintQueue update.
func BenchmarkSwitchPerPacket(b *testing.B) {
	sw, err := switchsim.NewSwitch(1, switchsim.PortConfig{LinkBps: 10e9, BufferCells: 40000})
	if err != nil {
		b.Fatal(err)
	}
	pq, err := New(DefaultConfig(0))
	if err != nil {
		b.Fatal(err)
	}
	sw.Port(0).AddEgressHook(switchsim.EgressFunc(func(p *pktrec.Packet) {
		pq.inner.OnDequeue(p)
	}))
	keys := benchKeys(64)
	b.ResetTimer()
	var ts uint64
	for i := 0; i < b.N; i++ {
		ts += 70 // slightly over line rate: persistent queue
		pkt := &pktrec.Packet{Flow: keys[i&63].internal(), Bytes: 100, Arrival: ts}
		sw.Inject(pkt)
	}
}

// --- Sharded ingestion pipeline ---

// benchIngestConfig is the multi-port configuration shared by the pipeline
// and serial throughput benchmarks: the paper's UW datapath with a bounded
// checkpoint history so long runs don't accumulate snapshots.
func benchIngestConfig(nports int) Config {
	ports := make([]int, nports)
	for i := range ports {
		ports[i] = i
	}
	cfg := DefaultConfig(ports...)
	cfg.PollPeriod = time.Millisecond
	cfg.MaxCheckpoints = 8
	return cfg
}

// benchIngestPacket computes the i-th packet of the synthetic multi-port
// stream: ports round-robin, each port advancing its clock at line rate.
func benchIngestPacket(i, nports int, ts []uint64, keys []FlowID) (Packet, uint64, uint64) {
	port := i % nports
	ts[port] += 80 * uint64(nports)
	deq := ts[port] + 1000
	return Packet{Flow: keys[i&63], Port: port, Queue: 0, Bytes: 100}, deq - 500, deq
}

// BenchmarkPipelineThroughput measures aggregate ingestion through the
// sharded pipeline at 1, 4, and 16 activated ports. Pipeline start and
// Close (flush + drain) are inside the timed region, so pkts/sec is
// end-to-end. On a multi-core machine aggregate throughput scales with
// shard count; compare against BenchmarkSerialThroughput for the speedup.
func BenchmarkPipelineThroughput(b *testing.B) {
	for _, nports := range []int{1, 4, 16} {
		b.Run("ports="+strconv.Itoa(nports), func(b *testing.B) {
			pq, err := New(benchIngestConfig(nports))
			if err != nil {
				b.Fatal(err)
			}
			keys := benchKeys(64)
			ts := make([]uint64, nports)
			b.ResetTimer()
			pl, err := pq.StartPipeline(PipelineConfig{})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				pkt, enq, deq := benchIngestPacket(i, nports, ts, keys)
				pl.Observe(pkt, enq, deq, 40)
			}
			pl.Close()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/sec")
		})
	}
}

// BenchmarkSerialThroughput is the single-goroutine baseline for
// BenchmarkPipelineThroughput: the same synthetic multi-port stream fed
// through System.Observe, with flips snapshotting inline on the packet
// path.
func BenchmarkSerialThroughput(b *testing.B) {
	for _, nports := range []int{1, 4, 16} {
		b.Run("ports="+strconv.Itoa(nports), func(b *testing.B) {
			pq, err := New(benchIngestConfig(nports))
			if err != nil {
				b.Fatal(err)
			}
			keys := benchKeys(64)
			ts := make([]uint64, nports)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pkt, enq, deq := benchIngestPacket(i, nports, ts, keys)
				pq.Observe(pkt, enq, deq, 40)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/sec")
		})
	}
}

// BenchmarkQueryRate measures asynchronous query execution (the paper's
// Python front end manages ~100 queries/second; the Go analysis program is
// orders of magnitude faster).
func BenchmarkQueryRate(b *testing.B) {
	preset := experiments.Preset(trace.UW, 200000, benchSeed)
	pkts, err := trace.Generate(preset.Gen)
	if err != nil {
		b.Fatal(err)
	}
	run, err := experiments.Execute(pkts, preset.RunConfigFor(false))
	if err != nil {
		b.Fatal(err)
	}
	victims := run.GT.SampleVictims(groundtruth.DepthBucket(1000, 0), 256)
	if len(victims) == 0 {
		b.Fatal("no victims")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := run.GT.Record(victims[i%len(victims)])
		if _, err := run.Sys.QueryInterval(run.Port, v.EnqTimestamp, v.DeqTimestamp()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(time.Second)/float64(b.Elapsed())*float64(b.N), "queries/sec")
}

// --- Ablations ---

// BenchmarkAblationPassingRule compares the paper's one-shot passing rule
// against naive always-pass. The one-shot rule guarantees a passed packet
// is the newest in its new window; always-pass promotes arbitrarily stale
// evictions, which overwrite newer deep-window cells whenever the traffic
// has gaps. The ablation therefore runs a gappy (bursty, low calm-load)
// stream and diagnoses a recent interval.
func BenchmarkAblationPassingRule(b *testing.B) {
	// A gappy stream: sparse calm traffic separating bursts.
	gen := experiments.Preset(trace.UW, 150000, benchSeed).Gen
	gen.CalmLoad = 0.25
	gen.MeanCalmNs = 2e6
	stream, gt := benchStreamFrom(b, gen)
	cfg := timewindow.Config{M0: 6, K: 12, Alpha: 2, T: 4, MinPktTxDelayNs: 80}
	var pOne, pAlways, rOne, rAlways float64
	for i := 0; i < b.N; i++ {
		one, _ := timewindow.New(cfg, nil)
		always, _ := timewindow.New(cfg, nil)
		for _, r := range stream {
			one.Insert(r.Flow, r.DeqTimestamp())
			always.InsertAblationAlwaysPass(r.Flow, r.DeqTimestamp())
		}
		start, end := benchOldInterval(cfg, stream)
		truth := gt.CountsInInterval(start, end)
		pOne, rOne = metrics.PrecisionRecall(one.Snapshot().Filter().Query(start, end), truth)
		pAlways, rAlways = metrics.PrecisionRecall(always.Snapshot().Filter().Query(start, end), truth)
	}
	b.ReportMetric(pOne, "oneshot-P")
	b.ReportMetric(rOne, "oneshot-R")
	b.ReportMetric(pAlways, "alwayspass-P")
	b.ReportMetric(rAlways, "alwayspass-R")
}

// BenchmarkAblationCoefficients compares recovery with and without the
// Algorithm-2 coefficients: without them, deep-window estimates
// under-count by the compression ratio.
func BenchmarkAblationCoefficients(b *testing.B) {
	stream, gt := benchStream(b)
	cfg := timewindow.Config{M0: 6, K: 12, Alpha: 2, T: 4, MinPktTxDelayNs: 80}
	var rWith, rWithout float64
	for i := 0; i < b.N; i++ {
		w, _ := timewindow.New(cfg, nil)
		for _, r := range stream {
			w.Insert(r.Flow, r.DeqTimestamp())
		}
		start, end := benchOldInterval(cfg, stream)
		truth := gt.CountsInInterval(start, end)
		f := w.Snapshot().Filter()
		_, rWith = metrics.PrecisionRecall(f.Query(start, end), truth)
		_, rWithout = metrics.PrecisionRecall(f.QueryWithoutCoefficients(start, end), truth)
	}
	b.ReportMetric(rWith, "with-coeff-R")
	b.ReportMetric(rWithout, "without-coeff-R")
}

// BenchmarkAblationUniformWindows spends the same SRAM on T identical
// windows (equivalently one window with T-fold cells) instead of
// exponentially growing periods: coverage shrinks from
// (2^(aT)-1)/(2^a-1) * 2^(m0+k) to T * 2^(m0+k), so queries beyond the
// uniform horizon return nothing.
func BenchmarkAblationUniformWindows(b *testing.B) {
	stream, gt := benchStream(b)
	exp := timewindow.Config{M0: 6, K: 12, Alpha: 2, T: 4, MinPktTxDelayNs: 80}
	// Same cell count (4 * 4096 = 2^14) in a single full-fidelity window.
	uni := timewindow.Config{M0: 6, K: 14, Alpha: 1, T: 1, MinPktTxDelayNs: 80}
	var rExp, rUni float64
	for i := 0; i < b.N; i++ {
		we, _ := timewindow.New(exp, nil)
		wu, _ := timewindow.New(uni, nil)
		for _, r := range stream {
			we.Insert(r.Flow, r.DeqTimestamp())
			wu.Insert(r.Flow, r.DeqTimestamp())
		}
		// An interval older than the uniform horizon but inside the
		// exponential set period.
		last := stream[len(stream)-1].DeqTimestamp()
		end := last - uni.SetPeriod() - 200000
		start := end - 100000
		truth := gt.CountsInInterval(start, end)
		_, rExp = metrics.PrecisionRecall(we.Snapshot().Filter().Query(start, end), truth)
		_, rUni = metrics.PrecisionRecall(wu.Snapshot().Filter().Query(start, end), truth)
	}
	b.ReportMetric(float64(exp.SetPeriod())/float64(uni.SetPeriod()), "coverage-ratio")
	b.ReportMetric(rExp, "exponential-R")
	b.ReportMetric(rUni, "uniform-R")
}

// BenchmarkAblationSeqFilter compares the queue monitor's staircase filter
// against the unfiltered walk: stale peaks survive without the sequence
// numbers and pollute the original-culprit set.
func BenchmarkAblationSeqFilter(b *testing.B) {
	// MTU packets over a fine granule: each arrival jumps many levels, so
	// drains leave stale entries at skipped levels — exactly Figure 7's
	// situation (a small-packet workload overwrites every level on the way
	// up and never exhibits staleness).
	gen := experiments.Preset(trace.WS, 150000, benchSeed).Gen
	stream, gt := benchStreamFrom(b, gen)
	cfg := qmonitor.Config{MaxDepthCells: 65536, GranuleCells: 1}
	// Stale peaks only matter when the queue sits below an earlier high:
	// snapshot at the first packet (after the global peak) that sees less
	// than a third of the peak depth.
	peakIdx, peak := 0, uint32(0)
	for j, r := range stream {
		if r.EnqQdepth > peak {
			peak, peakIdx = r.EnqQdepth, j
		}
	}
	snapIdx := len(stream) - 1
	for j := peakIdx + 1; j < len(stream); j++ {
		if stream[j].EnqQdepth < peak/3 {
			snapIdx = j
			break
		}
	}
	var pFilt, pNo float64
	for i := 0; i < b.N; i++ {
		m, _ := qmonitor.New(cfg, nil)
		for _, r := range stream[:snapIdx+1] {
			m.Observe(r.Flow, int(r.EnqQdepth))
		}
		truth := gt.OriginalTruth(snapIdx)
		snap := m.Snapshot()
		pFilt, _ = metrics.PrecisionRecall(qmonitor.FlowCounts(snap.OriginalCulprits()), truth)
		pNo, _ = metrics.PrecisionRecall(qmonitor.FlowCounts(snap.OriginalCulpritsNoFilter()), truth)
	}
	b.ReportMetric(pFilt, "filtered-P")
	b.ReportMetric(pNo, "unfiltered-P")
}

// BenchmarkAblationDataPlaneQuery contrasts data-plane queries (special
// freeze at the victim's dequeue) with asynchronous queries over periodic
// checkpoints for the same workload — Figure 9's DQ advantage, isolated.
func BenchmarkAblationDataPlaneQuery(b *testing.B) {
	var res *experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig9(trace.UW, benchPackets/2, benchSeed, benchVictims)
		if err != nil {
			b.Fatal(err)
		}
	}
	var aq, dq metrics.Sample
	for _, r := range res.Rows {
		if r.AQVictims > 0 {
			aq.Add(r.AQPrecision)
		}
		if r.DQVictims > 0 {
			dq.Add(r.DQPrecision)
		}
	}
	b.ReportMetric(dq.Mean(), "DQ-P")
	b.ReportMetric(aq.Mean(), "AQ-P")
}

// --- helpers ---

func benchKeys(n int) []FlowID {
	keys := make([]FlowID, n)
	for i := range keys {
		keys[i] = FlowID{
			SrcIP: [4]byte{10, 0, byte(i >> 8), byte(i)}, DstIP: [4]byte{10, 0, 0, 1},
			SrcPort: uint16(1000 + i), DstPort: 80, Proto: 6,
		}
	}
	return keys
}

// benchStream runs a UW trace through the switch once and returns the
// dequeue-ordered telemetry (shared by the ablation benches).
func benchStream(b *testing.B) ([]pktrec.Telemetry, *groundtruth.Collector) {
	b.Helper()
	return benchStreamFrom(b, experiments.Preset(trace.UW, 200000, benchSeed).Gen)
}

// benchStreamFrom replays an arbitrary generator config through the switch.
func benchStreamFrom(b *testing.B, gen trace.Config) ([]pktrec.Telemetry, *groundtruth.Collector) {
	b.Helper()
	pkts, err := trace.Generate(gen)
	if err != nil {
		b.Fatal(err)
	}
	sw, err := switchsim.NewSwitch(1, switchsim.PortConfig{LinkBps: gen.LinkBps, BufferCells: 70000})
	if err != nil {
		b.Fatal(err)
	}
	gt := groundtruth.NewCollector()
	sw.Port(0).AddEgressHook(gt)
	for _, p := range pkts {
		sw.Inject(p)
	}
	sw.Flush()
	b.ResetTimer()
	return gt.Records(), gt
}

// benchOldInterval picks a query interval old enough to live in a deep
// window but still inside the set period.
func benchOldInterval(cfg timewindow.Config, stream []pktrec.Telemetry) (uint64, uint64) {
	last := stream[len(stream)-1].DeqTimestamp()
	end := last - 3*cfg.WindowPeriod(0)
	return end - 100000, end
}

var _ = flow.Zero // keep the import for helpers that may move

// --- Extension: scheduler agnosticism ---

// BenchmarkSchedulers runs the same workload under FIFO, strict priority,
// DRR, and PIFO (the §2 claim that culprit definitions are
// scheduling-independent) and reports each discipline's accuracy.
func BenchmarkSchedulers(b *testing.B) {
	var rows []experiments.SchedulerRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.SchedulerAgnosticism(benchPackets/2, benchSeed, benchVictims)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Precision, r.Scheduler.String()+"-P")
	}
}

// --- Baseline microbenchmarks ---

func BenchmarkHashPipeInsert(b *testing.B) {
	s, err := hashpipe.New(hashpipe.Config{Stages: 5, SlotsPerStage: 4096, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	keys := benchKeys(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(keys[i&1023].internal())
	}
}

func BenchmarkFlowRadarInsert(b *testing.B) {
	s, err := flowradar.New(flowradar.Config{Cells: 4096 * 4, KHash: 3, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	keys := benchKeys(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(keys[i&1023].internal())
	}
}

func BenchmarkFlowRadarDecode(b *testing.B) {
	keys := benchKeys(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, _ := flowradar.New(flowradar.Config{Cells: 4096 * 4, KHash: 3, Seed: 1})
		for j, k := range keys {
			for n := 0; n <= j%5; n++ {
				s.Insert(k.internal())
			}
		}
		b.StartTimer()
		counts, _ := s.Decode()
		if len(counts) == 0 {
			b.Fatal("decode failed")
		}
	}
}

// BenchmarkCheckpoint measures one frozen register read (snapshot) at the
// paper's UW configuration — the unit of the Figure-13 bandwidth budget.
func BenchmarkCheckpoint(b *testing.B) {
	cfg := timewindow.Config{M0: 6, K: 12, Alpha: 2, T: 4, MinPktTxDelayNs: 80}
	w, err := timewindow.New(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	keys := benchKeys(64)
	var ts uint64
	for i := 0; i < 100000; i++ {
		ts += 80
		w.Insert(keys[i&63].internal(), ts)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := w.Snapshot()
		if i == 0 && snap == nil {
			b.Fatal("nil snapshot")
		}
	}
}

// BenchmarkAblationDigestWidth quantifies what storing fixed-width flow
// digests per cell (as hardware does) costs at several widths: with 32-bit
// digests the query results are indistinguishable from exact flow IDs,
// supporting §7.1's note that PrintQueue's errors "are not caused by hash
// collisions".
func BenchmarkAblationDigestWidth(b *testing.B) {
	stream, gt := benchStream(b)
	cfg := timewindow.Config{M0: 6, K: 12, Alpha: 2, T: 4, MinPktTxDelayNs: 80}
	w, err := timewindow.New(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range stream {
		w.Insert(r.Flow, r.DeqTimestamp())
	}
	f := w.Snapshot().Filter()
	last := stream[len(stream)-1].DeqTimestamp()
	start, end := last-200000, last
	truth := gt.CountsInInterval(start, end)
	exact := f.Query(start, end)
	var p32, p6 float64
	for i := 0; i < b.N; i++ {
		d32 := timewindow.NewDigestTable(32, 5)
		d6 := timewindow.NewDigestTable(6, 5)
		p32, _ = metrics.PrecisionRecall(d32.ApplyDigests(exact), truth)
		p6, _ = metrics.PrecisionRecall(d6.ApplyDigests(exact), truth)
	}
	pExact, _ := metrics.PrecisionRecall(exact, truth)
	b.ReportMetric(pExact, "exact-P")
	b.ReportMetric(p32, "digest32-P")
	b.ReportMetric(p6, "digest6-P")
}

// BenchmarkConQuestComparison regenerates the §8 ConQuest contrast.
func BenchmarkConQuestComparison(b *testing.B) {
	var res *experiments.ConQuestResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.ConQuestComparison(benchPackets/2, benchSeed, benchVictims, 20e6)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.OnlineRecall, "conquest-online-R")
	b.ReportMetric(res.AsyncRecall, "conquest-async-R")
	b.ReportMetric(res.PQRecall, "printqueue-R")
}

// BenchmarkFig16TCP regenerates the closed-loop case study.
func BenchmarkFig16TCP(b *testing.B) {
	var res *experiments.Fig16Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig16TCP(0.2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.CongestionDurationNs)/float64(res.BurstDurationNs), "congestion:burst")
	b.ReportMetric(res.Original.Burst, "original-burst%")
}

// BenchmarkTCPSimSender measures the closed-loop event loop's cost per
// delivered packet.
func BenchmarkTCPSimSender(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sw, err := switchsim.NewSwitch(1, switchsim.PortConfig{LinkBps: 10e9, BufferCells: 4000})
		if err != nil {
			b.Fatal(err)
		}
		d := tcpsim.NewDriver(sw, 0)
		if err := d.AddSender(tcpsim.SenderConfig{
			Flow:  benchKeys(1)[0].internal(),
			RTTNs: 100000, Packets: 20000, SSThresh: 1024,
		}); err != nil {
			b.Fatal(err)
		}
		d.Run(1e9)
		sw.Flush()
	}
}

// BenchmarkPipelineIngestAllocs pins the instrumented ingestion hot path
// at zero allocations per packet: Observe copies the record into the
// current batch by value, batches recycle through the pool, and the
// telemetry updates (occupancy gauge, watermark, worker counters) are
// per-batch atomics. Run with -benchmem; allocs/op must stay 0.
func BenchmarkPipelineIngestAllocs(b *testing.B) {
	const nports = 4
	cfg := benchIngestConfig(nports)
	// Push flips out of the run so the measurement isolates the ingest
	// path: checkpoint copies allocate by design, on the snapshotter.
	cfg.PollPeriod = time.Hour
	pq, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	keys := benchKeys(64)
	ts := make([]uint64, nports)
	pl, err := pq.StartPipeline(PipelineConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt, enq, deq := benchIngestPacket(i, nports, ts, keys)
		pl.Observe(pkt, enq, deq, 40)
	}
	b.StopTimer()
	pl.Close()
}
