// Package tcpsim adds closed-loop senders to the switch simulator: TCP
// Reno-style sources whose congestion windows react to ACKs and drops at
// the simulated egress port. The paper's testbed workloads are sent by real
// TCP stacks ("one server send[s] a background TCP flow limited to ~90% of
// the link capacity"); this package closes that loop so scenarios exhibit
// genuine congestion-control dynamics — slow start, AIMD sawtooth, standing
// queues — instead of open-loop pacing.
//
// The model is deliberately compact: window-based ACK clocking with slow
// start, congestion avoidance, and multiplicative decrease on loss. ACKs
// return one propagation RTT after a data packet is dequeued; reverse-path
// queueing is ignored (the paper's reverse path is uncongested). An
// optional rate cap models application-limited senders.
package tcpsim

import (
	"container/heap"
	"fmt"

	"printqueue/internal/flow"
	"printqueue/internal/pktrec"
	"printqueue/internal/switchsim"
)

// SenderConfig parameterizes one TCP sender.
type SenderConfig struct {
	// Flow is the sender's 5-tuple.
	Flow flow.Key
	// PacketBytes is the segment wire size (default MTU).
	PacketBytes int
	// RTTNs is the propagation round-trip time excluding queueing.
	RTTNs uint64
	// StartNs is when the flow begins.
	StartNs uint64
	// Packets bounds the flow (0 = unlimited until the driver stops).
	Packets int
	// InitialCwnd is the starting window in packets (default 10).
	InitialCwnd int
	// MaxCwndPackets caps the window (0 = receiver window of 4096).
	MaxCwndPackets int
	// SSThresh is the initial slow-start threshold in packets (default 64).
	SSThresh int
	// MaxRateBps, if > 0, paces the sender: it models an
	// application-limited source (the paper's "limited to ~90% of the link
	// capacity" background).
	MaxRateBps float64
	// Queue is the priority class of the sender's packets.
	Queue int
}

func (c *SenderConfig) normalize() error {
	if c.Flow.IsZero() {
		return fmt.Errorf("tcpsim: sender needs a flow")
	}
	if c.RTTNs == 0 {
		return fmt.Errorf("tcpsim: sender needs a propagation RTT")
	}
	if c.PacketBytes <= 0 {
		c.PacketBytes = pktrec.MTUBytes
	}
	if c.InitialCwnd <= 0 {
		c.InitialCwnd = 10
	}
	if c.MaxCwndPackets <= 0 {
		c.MaxCwndPackets = 4096
	}
	if c.SSThresh <= 0 {
		c.SSThresh = 64
	}
	return nil
}

// SenderStats reports a sender's progress.
type SenderStats struct {
	Sent        int
	Acked       int
	Lost        int
	Cwnd        float64
	SSThresh    float64
	LastSendNs  uint64
	Retransmits int
}

// sender is the per-flow congestion-control state.
type sender struct {
	cfg      SenderConfig
	cwnd     float64
	ssthresh float64
	inflight int
	sent     int // packets handed to the switch, including retransmissions
	acked    int
	lost     int
	retx     int // packets queued for retransmission
	retx0    int // retransmissions already sent
	nextSend uint64
	// sendScheduled dedupes pacing wakeups: at most one pending evSend.
	sendScheduled bool
	done          bool
}

// remaining reports whether the sender still has data.
func (s *sender) remaining() bool {
	if s.retx > 0 {
		return true
	}
	if s.cfg.Packets == 0 {
		return true
	}
	// Original (non-retransmitted) packets sent so far.
	return s.sent-s.retx0 < s.cfg.Packets
}

// event is one scheduled simulation event.
type event struct {
	at   uint64
	kind eventKind
	snd  *sender
	pkt  *pktrec.Packet // for schedule events
	seq  int            // heap tiebreak: insertion order
}

type eventKind int

const (
	evSend   eventKind = iota // sender attempts transmissions
	evAck                     // one ACK arrives at the sender
	evInject                  // open-loop scheduled packet
)

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Driver couples senders and open-loop schedules to one egress port and
// runs the event loop.
type Driver struct {
	sw      *switchsim.Switch
	port    int
	events  eventHeap
	seq     int
	senders map[flow.Key]*sender
	now     uint64
}

// NewDriver builds a driver for one port of a switch. It installs the
// egress and drop hooks that close the loop; install application hooks
// (PrintQueue, logs) before or after — order does not matter for them.
func NewDriver(sw *switchsim.Switch, port int) *Driver {
	d := &Driver{
		sw:      sw,
		port:    port,
		senders: make(map[flow.Key]*sender),
	}
	p := sw.Port(port)
	p.AddEgressHook(switchsim.EgressFunc(d.onDequeue))
	p.AddDropHook(dropFunc(d.onDrop))
	return d
}

type dropFunc func(*pktrec.Packet)

func (f dropFunc) OnDrop(p *pktrec.Packet) { f(p) }

func (d *Driver) push(e *event) {
	d.seq++
	e.seq = d.seq
	heap.Push(&d.events, e)
}

// AddSender registers a TCP sender.
func (d *Driver) AddSender(cfg SenderConfig) error {
	if err := cfg.normalize(); err != nil {
		return err
	}
	if _, dup := d.senders[cfg.Flow]; dup {
		return fmt.Errorf("tcpsim: duplicate sender flow %v", cfg.Flow)
	}
	s := &sender{
		cfg:      cfg,
		cwnd:     float64(cfg.InitialCwnd),
		ssthresh: float64(cfg.SSThresh),
		nextSend: cfg.StartNs,
	}
	d.senders[cfg.Flow] = s
	d.push(&event{at: cfg.StartNs, kind: evSend, snd: s})
	return nil
}

// AddSchedule merges an open-loop packet schedule (e.g. a UDP burst) into
// the event loop. Packets must be in non-decreasing arrival order.
func (d *Driver) AddSchedule(pkts []*pktrec.Packet) {
	for _, p := range pkts {
		d.push(&event{at: p.Arrival, kind: evInject, pkt: p})
	}
}

// Stats returns a sender's state.
func (d *Driver) Stats(f flow.Key) (SenderStats, bool) {
	s, ok := d.senders[f]
	if !ok {
		return SenderStats{}, false
	}
	return SenderStats{
		Sent:        s.sent,
		Acked:       s.acked,
		Lost:        s.lost,
		Cwnd:        s.cwnd,
		SSThresh:    s.ssthresh,
		LastSendNs:  s.nextSend,
		Retransmits: s.retx0,
	}, true
}

// onDequeue schedules the ACK for a sender's packet one propagation RTT
// after it leaves the queue.
func (d *Driver) onDequeue(p *pktrec.Packet) {
	s, ok := d.senders[p.Flow]
	if !ok {
		return
	}
	d.push(&event{at: p.Meta.DeqTimestamp() + s.cfg.RTTNs, kind: evAck, snd: s})
}

// onDrop applies multiplicative decrease and queues a retransmission.
func (d *Driver) onDrop(p *pktrec.Packet) {
	s, ok := d.senders[p.Flow]
	if !ok {
		return
	}
	s.inflight--
	s.lost++
	s.retx++
	// Loss reaction (detected via dupACKs in real TCP; immediate here):
	// halve the window, at least to 2 packets.
	s.ssthresh = s.cwnd / 2
	if s.ssthresh < 2 {
		s.ssthresh = 2
	}
	s.cwnd = s.ssthresh
}

// Run processes events until the queue drains or simulated time passes
// until. It returns the time of the last processed event.
func (d *Driver) Run(until uint64) uint64 {
	port := d.sw.Port(d.port)
	for {
		if d.events.Len() == 0 {
			// Nothing scheduled, but queued packets may still be
			// draining; their dequeues produce ACKs that revive the loop.
			if port.QueuedPackets() == 0 {
				return d.now
			}
			port.Flush()
			if d.events.Len() == 0 {
				return d.now
			}
			continue
		}
		// Let the port's clock catch up to the next event first: dequeues
		// due before it may schedule earlier ACKs.
		next := d.events[0].at
		if next > until {
			return d.now
		}
		port.AdvanceTo(next)
		if d.events[0].at < next {
			continue // an earlier event appeared
		}
		e := heap.Pop(&d.events).(*event)
		if e.at > d.now {
			d.now = e.at
		}
		switch e.kind {
		case evInject:
			d.inject(e.pkt, e.at)
		case evAck:
			s := e.snd
			s.inflight--
			s.acked++
			if s.cwnd < s.ssthresh {
				s.cwnd++ // slow start
			} else {
				s.cwnd += 1 / s.cwnd // congestion avoidance
			}
			if max := float64(s.cfg.MaxCwndPackets); s.cwnd > max {
				s.cwnd = max
			}
			d.trySend(s, e.at)
		case evSend:
			e.snd.sendScheduled = false
			d.trySend(e.snd, e.at)
		}
	}
}

// inject delivers a packet to the port, clamping arrival to the port's
// current time (events at equal timestamps may interleave with dequeues).
func (d *Driver) inject(p *pktrec.Packet, at uint64) {
	if at > p.Arrival {
		p.Arrival = at
	}
	if now := d.sw.Port(d.port).Now(); p.Arrival < now {
		p.Arrival = now
	}
	p.Port = d.port
	d.sw.Inject(p)
}

// trySend transmits as the window and pacing allow, rescheduling itself
// when pacing limits.
func (d *Driver) trySend(s *sender, now uint64) {
	if s.done {
		return
	}
	if now > s.nextSend {
		s.nextSend = now
	}
	for s.inflight < int(s.cwnd) && s.remaining() {
		if s.cfg.MaxRateBps > 0 && s.nextSend > now {
			// Pacing gate: come back when the next credit accrues. A
			// single pending wakeup suffices.
			if !s.sendScheduled {
				s.sendScheduled = true
				d.push(&event{at: s.nextSend, kind: evSend, snd: s})
			}
			return
		}
		if s.retx > 0 {
			s.retx--
			s.retx0++
		}
		pkt := &pktrec.Packet{
			Flow:    s.cfg.Flow,
			Bytes:   s.cfg.PacketBytes,
			Arrival: s.nextSend,
			Queue:   s.cfg.Queue,
		}
		// Account the transmission before injecting: a tail drop fires the
		// drop hook synchronously inside Inject, which decrements inflight.
		s.sent++
		s.inflight++
		before := s.inflight
		d.inject(pkt, s.nextSend)
		if s.cfg.MaxRateBps > 0 {
			gap := uint64(float64(s.cfg.PacketBytes) * 8 * 1e9 / s.cfg.MaxRateBps)
			s.nextSend += gap
		}
		if s.inflight < before {
			// The send was tail-dropped: the buffer is full. Retrying
			// immediately would spin; back off one RTT (a crude RTO) and
			// let the queue drain.
			if !s.sendScheduled {
				s.sendScheduled = true
				d.push(&event{at: now + s.cfg.RTTNs, kind: evSend, snd: s})
			}
			return
		}
	}
	if s.cfg.Packets > 0 && !s.remaining() && s.inflight == 0 {
		s.done = true
	}
}
