package tcpsim

import (
	"testing"

	"printqueue/internal/flow"
	"printqueue/internal/pktrec"
	"printqueue/internal/switchsim"
)

func fkey(n byte) flow.Key {
	return flow.Key{SrcIP: [4]byte{10, 9, 0, n}, DstIP: [4]byte{10, 9, 1, 1}, SrcPort: uint16(n), DstPort: 5001, Proto: flow.ProtoTCP}
}

func newPort(t *testing.T, linkBps uint64, bufferCells int) (*switchsim.Switch, *Driver) {
	t.Helper()
	sw, err := switchsim.NewSwitch(1, switchsim.PortConfig{LinkBps: linkBps, BufferCells: bufferCells})
	if err != nil {
		t.Fatal(err)
	}
	return sw, NewDriver(sw, 0)
}

func TestSenderValidation(t *testing.T) {
	_, d := newPort(t, 1e9, 0)
	if err := d.AddSender(SenderConfig{RTTNs: 1000}); err == nil {
		t.Error("zero flow accepted")
	}
	if err := d.AddSender(SenderConfig{Flow: fkey(1)}); err == nil {
		t.Error("zero RTT accepted")
	}
	if err := d.AddSender(SenderConfig{Flow: fkey(1), RTTNs: 1000}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddSender(SenderConfig{Flow: fkey(1), RTTNs: 1000}); err == nil {
		t.Error("duplicate sender accepted")
	}
}

// TestSlowStartDoubles: with ample capacity, the window doubles per RTT.
func TestSlowStartDoubles(t *testing.T) {
	_, d := newPort(t, 100e9, 0) // effectively no queueing
	cfg := SenderConfig{
		Flow: fkey(1), RTTNs: 100000, InitialCwnd: 2, SSThresh: 1 << 20,
		Packets: 1 << 20,
	}
	if err := d.AddSender(cfg); err != nil {
		t.Fatal(err)
	}
	// After ~5 RTTs of slow start from cwnd 2, cwnd should be >= 2^5.
	d.Run(5 * cfg.RTTNs)
	st, _ := d.Stats(cfg.Flow)
	if st.Cwnd < 30 {
		t.Fatalf("cwnd after 5 RTTs of slow start = %.1f, want >= 30", st.Cwnd)
	}
	if st.Lost != 0 {
		t.Fatalf("lost %d packets on an uncongested path", st.Lost)
	}
}

// TestBoundedFlowCompletes: a finite flow delivers exactly its packets.
func TestBoundedFlowCompletes(t *testing.T) {
	sw, d := newPort(t, 10e9, 0)
	delivered := 0
	sw.Port(0).AddEgressHook(switchsim.EgressFunc(func(p *pktrec.Packet) { delivered++ }))
	cfg := SenderConfig{Flow: fkey(1), RTTNs: 50000, Packets: 500}
	if err := d.AddSender(cfg); err != nil {
		t.Fatal(err)
	}
	d.Run(1e9)
	sw.Flush()
	st, _ := d.Stats(cfg.Flow)
	if st.Sent != 500 || delivered != 500 {
		t.Fatalf("sent %d, delivered %d, want 500", st.Sent, delivered)
	}
	if st.Acked != 500 {
		t.Fatalf("acked %d, want 500", st.Acked)
	}
}

// TestAIMDReactsToDrops: a sender over a shallow buffer experiences loss
// and halves its window; throughput still approaches link capacity.
func TestAIMDReactsToDrops(t *testing.T) {
	sw, d := newPort(t, 1e9, 400) // shallow buffer forces drops
	var lastDeq uint64
	var bytes float64
	sw.Port(0).AddEgressHook(switchsim.EgressFunc(func(p *pktrec.Packet) {
		bytes += float64(p.Bytes)
		lastDeq = p.Meta.DeqTimestamp()
	}))
	cfg := SenderConfig{Flow: fkey(1), RTTNs: 200000, MaxCwndPackets: 4096}
	if err := d.AddSender(cfg); err != nil {
		t.Fatal(err)
	}
	d.Run(50e6) // 50 ms
	st, _ := d.Stats(cfg.Flow)
	if st.Lost == 0 {
		t.Fatal("no drops despite the shallow buffer")
	}
	if st.Cwnd > float64(cfg.MaxCwndPackets) {
		t.Fatalf("cwnd %v above cap", st.Cwnd)
	}
	// Average goodput should be a large fraction of the 1 Gbps link.
	rate := bytes * 8 / float64(lastDeq) // bits per ns = Gbps
	if rate < 0.5 || rate > 1.01 {
		t.Fatalf("achieved %.2f Gbps on a 1 Gbps link", rate)
	}
	// Multiplicative decrease happened: ssthresh well below the cap.
	if st.SSThresh >= float64(cfg.MaxCwndPackets) {
		t.Fatalf("ssthresh %v never reduced", st.SSThresh)
	}
}

// TestRateCappedSender: an application-limited sender stays near its
// configured rate and builds no standing queue.
func TestRateCappedSender(t *testing.T) {
	sw, d := newPort(t, 10e9, 0)
	var bytes float64
	var lastDeq uint64
	maxDepth := 0
	sw.Port(0).AddEgressHook(switchsim.EgressFunc(func(p *pktrec.Packet) {
		bytes += float64(p.Bytes)
		lastDeq = p.Meta.DeqTimestamp()
		if p.Meta.EnqQdepth > maxDepth {
			maxDepth = p.Meta.EnqQdepth
		}
	}))
	cfg := SenderConfig{Flow: fkey(1), RTTNs: 100000, MaxRateBps: 3e9}
	if err := d.AddSender(cfg); err != nil {
		t.Fatal(err)
	}
	d.Run(20e6)
	rate := bytes * 8 / float64(lastDeq) // Gbps
	if rate < 2.6 || rate > 3.2 {
		t.Fatalf("app-limited sender achieved %.2f Gbps, want ~3", rate)
	}
	if maxDepth > 1000 {
		t.Fatalf("app-limited sender built a %d-cell queue", maxDepth)
	}
}

// TestTwoSendersShare: two identical TCP flows split a link roughly evenly.
func TestTwoSendersShare(t *testing.T) {
	sw, d := newPort(t, 1e9, 800)
	bytes := map[flow.Key]float64{}
	sw.Port(0).AddEgressHook(switchsim.EgressFunc(func(p *pktrec.Packet) {
		bytes[p.Flow] += float64(p.Bytes)
	}))
	a := SenderConfig{Flow: fkey(1), RTTNs: 200000}
	b := SenderConfig{Flow: fkey(2), RTTNs: 200000}
	if err := d.AddSender(a); err != nil {
		t.Fatal(err)
	}
	if err := d.AddSender(b); err != nil {
		t.Fatal(err)
	}
	d.Run(100e6)
	ra, rb := bytes[a.Flow], bytes[b.Flow]
	if ra == 0 || rb == 0 {
		t.Fatal("a sender was starved")
	}
	ratio := ra / rb
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("share ratio %.2f, want roughly fair", ratio)
	}
}

// TestScheduleMerge: an open-loop burst injected mid-flow displaces the
// TCP sender (drops or delay) and both complete coherently.
func TestScheduleMerge(t *testing.T) {
	sw, d := newPort(t, 1e9, 2000)
	burst := make([]*pktrec.Packet, 0, 500)
	bf := fkey(9)
	for i := 0; i < 500; i++ {
		burst = append(burst, &pktrec.Packet{
			Flow: bf, Bytes: 1500, Arrival: 10e6 + uint64(i)*2000,
		})
	}
	if err := d.AddSender(SenderConfig{Flow: fkey(1), RTTNs: 200000}); err != nil {
		t.Fatal(err)
	}
	d.AddSchedule(burst)
	d.Run(40e6)
	st, _ := d.Stats(fkey(1))
	if st.Lost == 0 && st.Cwnd > 3000 {
		t.Fatal("burst had no effect on the TCP sender")
	}
	if got := sw.Port(0).Stats().Dequeued; got == 0 {
		t.Fatal("nothing dequeued")
	}
}

// TestInvariants drives random scenarios and checks the sender state
// machine's invariants: inflight never negative, cwnd within [1, cap],
// acked+lost never exceeds sent.
func TestInvariants(t *testing.T) {
	for trial := uint64(0); trial < 10; trial++ {
		sw, d := newPort(t, 1e9+trial*1e9, 300+int(trial)*200)
		cfgs := []SenderConfig{
			{Flow: fkey(1), RTTNs: 100000 + trial*20000, MaxCwndPackets: 512},
			{Flow: fkey(2), RTTNs: 150000, Packets: int(2000 + trial*500), MaxCwndPackets: 512},
			{Flow: fkey(3), RTTNs: 80000, MaxRateBps: 4e8, MaxCwndPackets: 512},
		}
		for _, c := range cfgs {
			if err := d.AddSender(c); err != nil {
				t.Fatal(err)
			}
		}
		d.Run(30e6)
		sw.Flush()
		for _, c := range cfgs {
			st, ok := d.Stats(c.Flow)
			if !ok {
				t.Fatal("sender vanished")
			}
			if st.Cwnd < 1 || st.Cwnd > float64(c.MaxCwndPackets) {
				t.Fatalf("trial %d %v: cwnd %v out of range", trial, c.Flow, st.Cwnd)
			}
			if st.Acked+st.Lost > st.Sent {
				t.Fatalf("trial %d %v: acked %d + lost %d > sent %d",
					trial, c.Flow, st.Acked, st.Lost, st.Sent)
			}
			if st.Sent < 0 || st.Acked < 0 || st.Lost < 0 {
				t.Fatalf("trial %d %v: negative counters %+v", trial, c.Flow, st)
			}
		}
	}
}
