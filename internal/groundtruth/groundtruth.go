// Package groundtruth plays the role of the paper's instrumented receiver:
// the switch inserts a telemetry header (enqueue/dequeue timestamps, queue
// depth at enqueue) into every packet, and a DPDK receiver logs them; the
// evaluation later derives the true culprit sets from the log. Here the
// Collector hooks the simulated egress port directly and offers the same
// derivations: per-flow counts over any dequeue-time interval (direct and
// indirect culprit truth), congestion-regime boundaries, and the exact
// original-culprit staircase.
package groundtruth

import (
	"fmt"
	"sort"

	"printqueue/internal/flow"
	"printqueue/internal/pktrec"
)

// Collector records the telemetry of every packet leaving one port, in
// dequeue order.
type Collector struct {
	recs []pktrec.Telemetry
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// OnDequeue implements the switch egress hook.
func (c *Collector) OnDequeue(p *pktrec.Packet) {
	c.recs = append(c.recs, pktrec.FromPacket(p))
}

// Add appends a pre-built telemetry record (used when replaying logged
// traces). Records must arrive in dequeue order.
func (c *Collector) Add(t pktrec.Telemetry) { c.recs = append(c.recs, t) }

// Len returns the number of recorded packets.
func (c *Collector) Len() int { return len(c.recs) }

// Record returns record i (dequeue order).
func (c *Collector) Record(i int) pktrec.Telemetry { return c.recs[i] }

// Records exposes the full log (read-only by convention).
func (c *Collector) Records() []pktrec.Telemetry { return c.recs }

// searchDeq returns the index of the first record with dequeue timestamp
// >= t. Records are sorted by dequeue time by construction.
func (c *Collector) searchDeq(t uint64) int {
	return sort.Search(len(c.recs), func(i int) bool { return c.recs[i].DeqTimestamp() >= t })
}

// FindByDeq locates the record of flow k dequeued exactly at deqTS.
func (c *Collector) FindByDeq(deqTS uint64, k flow.Key) (int, bool) {
	for i := c.searchDeq(deqTS); i < len(c.recs) && c.recs[i].DeqTimestamp() == deqTS; i++ {
		if c.recs[i].Flow == k {
			return i, true
		}
	}
	return 0, false
}

// CountsInInterval returns the true per-flow packet counts dequeued during
// [start, end) — the ground truth for time-window queries.
func (c *Collector) CountsInInterval(start, end uint64) flow.Counts {
	out := make(flow.Counts)
	for i := c.searchDeq(start); i < len(c.recs); i++ {
		if c.recs[i].DeqTimestamp() >= end {
			break
		}
		out.Add(c.recs[i].Flow, 1)
	}
	return out
}

// PacketsInInterval counts packets dequeued during [start, end).
func (c *Collector) PacketsInInterval(start, end uint64) int {
	lo := c.searchDeq(start)
	hi := c.searchDeq(end)
	return hi - lo
}

// DirectTruth returns the true direct culprits of the victim at record
// index i: per-flow counts of the packets dequeued during the victim's
// residence [t_enq, t_deq). The victim itself is excluded.
func (c *Collector) DirectTruth(i int) flow.Counts {
	v := c.recs[i]
	out := c.CountsInInterval(v.EnqTimestamp, v.DeqTimestamp())
	if n := out[v.Flow]; n > 0 {
		if n == 1 {
			delete(out, v.Flow)
		} else {
			out[v.Flow] = n - 1
		}
	}
	return out
}

// RegimeStart returns the beginning of the congestion regime containing
// victim record i: walking back from the victim's enqueue, the enqueue time
// of the earliest packet after the queue was last empty. A packet saw an
// empty queue if its enqueue-time depth equals its own footprint in cells.
func (c *Collector) RegimeStart(i int) uint64 {
	v := c.recs[i]
	start := v.EnqTimestamp
	// Dequeue order equals enqueue order under FIFO, so walking records
	// backwards walks arrivals backwards.
	for j := i; j >= 0; j-- {
		r := c.recs[j]
		if r.EnqTimestamp > v.EnqTimestamp {
			continue
		}
		start = r.EnqTimestamp
		if int(r.EnqQdepth) <= pktrec.Cells(int(r.Bytes)) {
			// This packet found the queue empty: the regime starts here.
			break
		}
	}
	return start
}

// IndirectTruth returns the true indirect culprits of victim record i:
// per-flow counts of packets dequeued in [regimeStart, t_enq).
func (c *Collector) IndirectTruth(i int) flow.Counts {
	v := c.recs[i]
	return c.CountsInInterval(c.RegimeStart(i), v.EnqTimestamp)
}

// OriginalTruth returns the exact original culprits as of the enqueue of
// record i: replaying arrivals in order, it maintains the high-water
// staircase — the packets whose arrival raised the queue to a level not
// since drained below — and reports the survivors' per-flow counts. This is
// the infinite-resolution ideal the queue monitor approximates.
func (c *Collector) OriginalTruth(i int) flow.Counts {
	type stackEnt struct {
		f  flow.Key
		hi int // depth in cells this packet raised the queue to
	}
	var stack []stackEnt
	for j := 0; j <= i; j++ {
		r := c.recs[j]
		if r.EnqTimestamp > c.recs[i].EnqTimestamp {
			continue
		}
		hi := int(r.EnqQdepth)
		// The queue stood at hi - cells(r) just before this packet arrived;
		// pop packets whose level has drained away since they raised it.
		before := hi - pktrec.Cells(int(r.Bytes))
		for len(stack) > 0 && stack[len(stack)-1].hi > before {
			stack = stack[:len(stack)-1]
		}
		stack = append(stack, stackEnt{f: r.Flow, hi: hi})
	}
	out := make(flow.Counts)
	for _, e := range stack {
		out.Add(e.f, 1)
	}
	return out
}

// VictimFilter selects victim candidates.
type VictimFilter func(t pktrec.Telemetry) bool

// DepthBucket returns a filter matching victims whose enqueue-time queue
// depth (in cells) lies in [lo, hi); hi == 0 means unbounded — the paper's
// ">20k" bucket.
func DepthBucket(lo, hi int) VictimFilter {
	return func(t pktrec.Telemetry) bool {
		d := int(t.EnqQdepth)
		return d >= lo && (hi == 0 || d < hi)
	}
}

// FlowIs returns a filter matching packets of one flow.
func FlowIs(k flow.Key) VictimFilter {
	return func(t pktrec.Telemetry) bool { return t.Flow == k }
}

// SampleVictims picks up to n record indices matching the filter, evenly
// spaced over the matches for determinism (the paper samples 100 victims
// per bucket; "larger sample sizes produced similar results").
func (c *Collector) SampleVictims(filter VictimFilter, n int) []int {
	var matches []int
	for i, r := range c.recs {
		if filter(r) {
			matches = append(matches, i)
		}
	}
	if n <= 0 || len(matches) <= n {
		return matches
	}
	out := make([]int, 0, n)
	step := float64(len(matches)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, matches[int(float64(i)*step)])
	}
	return out
}

// MaxDepth returns the maximum enqueue-time depth observed, in cells.
func (c *Collector) MaxDepth() int {
	max := 0
	for _, r := range c.recs {
		if int(r.EnqQdepth) > max {
			max = int(r.EnqQdepth)
		}
	}
	return max
}

// TimeSpan returns the dequeue-time range covered by the log.
func (c *Collector) TimeSpan() (start, end uint64, err error) {
	if len(c.recs) == 0 {
		return 0, 0, fmt.Errorf("groundtruth: empty log")
	}
	return c.recs[0].DeqTimestamp(), c.recs[len(c.recs)-1].DeqTimestamp(), nil
}
