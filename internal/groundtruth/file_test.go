package groundtruth

import (
	"bytes"
	"testing"
)

func TestLogRoundTrip(t *testing.T) {
	c := fixture()
	var buf bytes.Buffer
	if err := c.WriteLog(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != c.Len() {
		t.Fatalf("read %d records, wrote %d", got.Len(), c.Len())
	}
	for i := 0; i < c.Len(); i++ {
		if got.Record(i) != c.Record(i) {
			t.Fatalf("record %d differs: %+v vs %+v", i, got.Record(i), c.Record(i))
		}
	}
	// Derived truths match on the replayed log.
	want := c.DirectTruth(4)
	have := got.DirectTruth(4)
	if len(want) != len(have) {
		t.Fatalf("direct truth differs: %v vs %v", have, want)
	}
}

func TestLogEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewCollector().WriteLog(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(&buf)
	if err != nil || got.Len() != 0 {
		t.Fatalf("empty round trip: %v, %v", got, err)
	}
}

func TestReadLogErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("NOPE\x00\x01\x00\x00\x00\x00\x00\x00\x00\x00"),
		"bad version": []byte("PQGT\x00\x09\x00\x00\x00\x00\x00\x00\x00\x00"),
		"truncated":   []byte("PQGT\x00\x01\x00\x00\x00\x00\x00\x00\x00\x02abc"),
		"absurd":      append([]byte("PQGT\x00\x01"), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF),
	}
	for name, data := range cases {
		if _, err := ReadLog(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: ReadLog succeeded", name)
		}
	}
}

func TestReadLogRejectsDisorder(t *testing.T) {
	c := NewCollector()
	c.Add(rec('A', 100, 500, 1, 80))
	c.Add(rec('B', 110, 200, 2, 80)) // dequeues before A: out of order
	var buf bytes.Buffer
	if err := c.WriteLog(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLog(&buf); err == nil {
		t.Fatal("out-of-order log accepted")
	}
}
