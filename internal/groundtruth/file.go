package groundtruth

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"printqueue/internal/pktrec"
)

// Telemetry log file format — the offline stand-in for the files the
// paper's DPDK receiver writes ("store the telemetry headers in files"):
//
//	header:  magic "PQGT" | uint16 version | uint64 record count
//	record:  pktrec.Telemetry wire encoding (TelemetryWireSize bytes)
//
// Integers are big-endian; records are in dequeue order.

const (
	logMagic   = "PQGT"
	logVersion = 1
)

// WriteLog writes the collector's records to w.
func (c *Collector) WriteLog(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(logMagic); err != nil {
		return err
	}
	var hdr [10]byte
	binary.BigEndian.PutUint16(hdr[0:2], logVersion)
	binary.BigEndian.PutUint64(hdr[2:10], uint64(len(c.recs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 0, pktrec.TelemetryWireSize)
	for _, r := range c.recs {
		buf = r.AppendBinary(buf[:0])
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadLog reads a telemetry log into a fresh collector, verifying dequeue
// order.
func ReadLog(r io.Reader) (*Collector, error) {
	br := bufio.NewReader(r)
	var hdr [14]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("groundtruth: reading header: %w", err)
	}
	if string(hdr[0:4]) != logMagic {
		return nil, fmt.Errorf("groundtruth: bad magic %q", hdr[0:4])
	}
	if v := binary.BigEndian.Uint16(hdr[4:6]); v != logVersion {
		return nil, fmt.Errorf("groundtruth: unsupported version %d", v)
	}
	count := binary.BigEndian.Uint64(hdr[6:14])
	const maxRecords = 1 << 31
	if count > maxRecords {
		return nil, fmt.Errorf("groundtruth: implausible record count %d", count)
	}
	c := &Collector{recs: make([]pktrec.Telemetry, 0, count)}
	buf := make([]byte, pktrec.TelemetryWireSize)
	var prevDeq uint64
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("groundtruth: record %d: %w", i, err)
		}
		rec, _, err := pktrec.DecodeTelemetry(buf)
		if err != nil {
			return nil, err
		}
		if d := rec.DeqTimestamp(); d < prevDeq {
			return nil, fmt.Errorf("groundtruth: record %d out of dequeue order", i)
		} else {
			prevDeq = d
		}
		c.recs = append(c.recs, rec)
	}
	return c, nil
}
