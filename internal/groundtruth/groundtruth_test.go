package groundtruth

import (
	"testing"

	"printqueue/internal/flow"
	"printqueue/internal/pktrec"
)

func fkey(n byte) flow.Key {
	return flow.Key{SrcIP: [4]byte{10, 0, 0, n}, DstIP: [4]byte{10, 0, 1, 1}, SrcPort: 1, DstPort: 2, Proto: flow.ProtoTCP}
}

// rec builds a telemetry record; depth is in cells and includes the packet.
func rec(f byte, enq, deq uint64, depth int, bytes int) pktrec.Telemetry {
	return pktrec.Telemetry{
		Flow:         fkey(f),
		EnqTimestamp: enq,
		DeqTimedelta: deq - enq,
		EnqQdepth:    uint32(depth),
		Bytes:        uint32(bytes),
	}
}

// fixture: a small congestion regime, FIFO, 80-byte packets (1 cell each).
//
//	idx  flow  enq   deq   depth
//	0    A     100   100   1      (empty queue: regime start)
//	1    B     110   200   2
//	2    C     120   300   3
//	3    A     130   400   4
//	4    D     140   500   5      (victim)
//	5    E     600   600   1      (new regime)
func fixture() *Collector {
	c := NewCollector()
	c.Add(rec('A', 100, 100, 1, 80))
	c.Add(rec('B', 110, 200, 2, 80))
	c.Add(rec('C', 120, 300, 3, 80))
	c.Add(rec('A', 130, 400, 4, 80))
	c.Add(rec('D', 140, 500, 5, 80))
	c.Add(rec('E', 600, 600, 1, 80))
	return c
}

func TestCountsInInterval(t *testing.T) {
	c := fixture()
	counts := c.CountsInInterval(200, 500)
	// Dequeues at 200 (B), 300 (C), 400 (A); 500 excluded.
	if counts[fkey('B')] != 1 || counts[fkey('C')] != 1 || counts[fkey('A')] != 1 || counts.Total() != 3 {
		t.Fatalf("counts = %v", counts)
	}
	if got := c.PacketsInInterval(200, 500); got != 3 {
		t.Fatalf("PacketsInInterval = %d", got)
	}
}

func TestDirectTruthExcludesVictim(t *testing.T) {
	c := fixture()
	// Victim D (idx 4): residence [140, 500); dequeues in it: B, C, A and
	// the victim itself would be at 500 (excluded by the half-open bound).
	truth := c.DirectTruth(4)
	if truth[fkey('D')] != 0 {
		t.Fatalf("victim counted in its own direct culprits: %v", truth)
	}
	if truth.Total() != 3 {
		t.Fatalf("direct truth = %v, want 3 packets", truth)
	}
	// Victim of flow A at idx 3: the other A packet (dequeued at 100,
	// before enqueue) is not included; interval [130, 400) holds B, C.
	truth = c.DirectTruth(3)
	if truth.Total() != 2 || truth[fkey('A')] != 0 {
		t.Fatalf("direct truth idx3 = %v", truth)
	}
}

func TestRegimeStart(t *testing.T) {
	c := fixture()
	if got := c.RegimeStart(4); got != 100 {
		t.Fatalf("regime start = %d, want 100 (A's arrival)", got)
	}
	// The post-drain packet E starts its own regime.
	if got := c.RegimeStart(5); got != 600 {
		t.Fatalf("regime start for E = %d, want 600", got)
	}
}

func TestIndirectTruth(t *testing.T) {
	c := fixture()
	// Victim D: regime [100, enq 140); dequeues in it: A at 100.
	truth := c.IndirectTruth(4)
	if truth.Total() != 1 || truth[fkey('A')] != 1 {
		t.Fatalf("indirect truth = %v", truth)
	}
}

func TestOriginalTruth(t *testing.T) {
	c := fixture()
	// At D's enqueue the staircase is A(1), B(2), C(3), A(4), D(5): no
	// drains happened, so all five are original culprits.
	truth := c.OriginalTruth(4)
	if truth.Total() != 5 || truth[fkey('A')] != 2 {
		t.Fatalf("original truth = %v", truth)
	}
}

func TestOriginalTruthWithDrain(t *testing.T) {
	c := NewCollector()
	c.Add(rec('A', 100, 100, 2, 160)) // 2 cells: raises 0->2
	c.Add(rec('B', 110, 260, 5, 240)) // 3 cells: raises 2->5
	c.Add(rec('C', 400, 500, 3, 240)) // queue drained to 0; C raises 0->3
	truth := c.OriginalTruth(2)
	// B's levels drained away; A's too (C saw depth 3 with its own 3
	// cells, so the queue was empty before it).
	if truth.Total() != 1 || truth[fkey('C')] != 1 {
		t.Fatalf("original truth = %v, want only C", truth)
	}
}

func TestFindByDeq(t *testing.T) {
	c := fixture()
	if i, ok := c.FindByDeq(300, fkey('C')); !ok || i != 2 {
		t.Fatalf("FindByDeq = %d, %v", i, ok)
	}
	if _, ok := c.FindByDeq(300, fkey('A')); ok {
		t.Fatal("found wrong flow")
	}
	if _, ok := c.FindByDeq(301, fkey('C')); ok {
		t.Fatal("found at wrong time")
	}
}

func TestSampleVictims(t *testing.T) {
	c := fixture()
	all := c.SampleVictims(DepthBucket(3, 0), 0)
	if len(all) != 3 { // depths 3, 4, 5
		t.Fatalf("victims = %v", all)
	}
	bounded := c.SampleVictims(DepthBucket(3, 5), 0)
	if len(bounded) != 2 {
		t.Fatalf("bounded victims = %v", bounded)
	}
	sampled := c.SampleVictims(DepthBucket(1, 0), 2)
	if len(sampled) != 2 {
		t.Fatalf("sampled = %v", sampled)
	}
	byFlow := c.SampleVictims(FlowIs(fkey('A')), 0)
	if len(byFlow) != 2 {
		t.Fatalf("flow victims = %v", byFlow)
	}
}

func TestMaxDepthAndTimeSpan(t *testing.T) {
	c := fixture()
	if got := c.MaxDepth(); got != 5 {
		t.Fatalf("MaxDepth = %d", got)
	}
	start, end, err := c.TimeSpan()
	if err != nil || start != 100 || end != 600 {
		t.Fatalf("TimeSpan = %d, %d, %v", start, end, err)
	}
	if _, _, err := NewCollector().TimeSpan(); err == nil {
		t.Fatal("empty collector TimeSpan succeeded")
	}
}

func TestOnDequeueHook(t *testing.T) {
	c := NewCollector()
	p := &pktrec.Packet{
		Flow:  fkey('Z'),
		Bytes: 100,
		Port:  2,
		Meta:  pktrec.Metadata{EnqTimestamp: 50, DeqTimedelta: 25, EnqQdepth: 7},
	}
	c.OnDequeue(p)
	if c.Len() != 1 {
		t.Fatal("record not stored")
	}
	r := c.Record(0)
	if r.Flow != fkey('Z') || r.DeqTimestamp() != 75 || r.EnqQdepth != 7 {
		t.Fatalf("record = %+v", r)
	}
}
