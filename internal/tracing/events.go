package tracing

import (
	"sync/atomic"
	"time"
)

// EventKind classifies a data-plane event, mirroring the paper's
// data-plane triggers: threshold crossings surfaced to the control
// plane instead of waiting to be polled.
type EventKind uint8

const (
	// EventRingHighWater fires when a pipeline shard ring reaches a new
	// occupancy high-watermark (edge-triggered per watermark value).
	EventRingHighWater EventKind = iota
	// EventBackpressure fires at the start of a producer backpressure
	// episode (ring full, producer spinning).
	EventBackpressure
	// EventShed fires when the query server sheds load (admission
	// control rejects a request or batch).
	EventShed
	// EventFreezeStall fires when a checkpoint freeze stalls waiting for
	// the snapshotter to release a register set (the paper's
	// "infeasible flip" condition).
	EventFreezeStall

	numEventKinds
)

// NumEventKinds is the number of defined kinds (for metric registration).
const NumEventKinds = int(numEventKinds)

func (k EventKind) String() string {
	switch k {
	case EventRingHighWater:
		return "ring_high_watermark"
	case EventBackpressure:
		return "backpressure"
	case EventShed:
		return "shed"
	case EventFreezeStall:
		return "freeze_stall"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the kind as its string name.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// Event is one structured data-plane event.
type Event struct {
	TimeNs  uint64    `json:"time_ns"`
	Kind    EventKind `json:"kind"`
	Subject string    `json:"subject"` // e.g. "shard=3", "port=0", "netserver"
	Value   int64     `json:"value"`   // kind-specific: occupancy, ns waited, inflight
	TraceID string    `json:"trace_id,omitempty"`
}

// EventLog is a bounded lock-free ring of events plus per-kind totals.
// Record is safe from any goroutine; all methods are nil-safe so a
// disabled event plane is a single pointer test.
type EventLog struct {
	slots    []atomic.Pointer[Event]
	pos      atomic.Uint64
	counters [numEventKinds]Counter
	totals   [numEventKinds]atomic.Int64
}

// DefaultEventRingSize bounds the event ring when the caller passes 0.
const DefaultEventRingSize = 512

// NewEventLog builds an event ring of the given size (0 → default).
func NewEventLog(size int) *EventLog {
	if size <= 0 {
		size = DefaultEventRingSize
	}
	return &EventLog{slots: make([]atomic.Pointer[Event], size)}
}

// SetCounter attaches a metrics hook for one kind.
func (l *EventLog) SetCounter(k EventKind, c Counter) {
	if l == nil || int(k) >= len(l.counters) {
		return
	}
	l.counters[k] = c
}

// Record appends an event. nil-safe; allocates one Event (events are
// edge-triggered and rare by construction, never per-packet).
func (l *EventLog) Record(k EventKind, subject string, value int64, traceID uint64) {
	if l == nil {
		return
	}
	ev := &Event{
		TimeNs:  uint64(time.Now().UnixNano()),
		Kind:    k,
		Subject: subject,
		Value:   value,
	}
	if traceID != 0 {
		ev.TraceID = FormatID(traceID)
	}
	i := (l.pos.Add(1) - 1) % uint64(len(l.slots))
	l.slots[i].Store(ev)
	if int(k) < len(l.totals) {
		l.totals[k].Add(1)
		if c := l.counters[k]; c != nil {
			c.Inc()
		}
	}
}

// Events snapshots the ring, newest first.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	n := len(l.slots)
	out := make([]Event, 0, n)
	pos := l.pos.Load()
	for k := 0; k < n; k++ {
		i := (pos + uint64(n) - 1 - uint64(k)) % uint64(n)
		if ev := l.slots[i].Load(); ev != nil {
			out = append(out, *ev)
		}
	}
	return out
}

// Total returns the lifetime count for one kind. nil-safe.
func (l *EventLog) Total(k EventKind) int64 {
	if l == nil || int(k) >= len(l.totals) {
		return 0
	}
	return l.totals[k].Load()
}
