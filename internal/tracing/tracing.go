// Package tracing is a zero-dependency, bounded-overhead span recorder
// for the PrintQueue query plane.
//
// Design constraints (mirroring the paper's "measurement must not perturb
// the measured system" rule):
//
//   - A nil *Tracer and a nil *Trace are valid receivers for every method;
//     disabled tracing is a pointer test on the hot path and allocates
//     nothing.
//   - Sampling is counter-based (1-in-N). Unsampled queries can still be
//     promoted post-hoc into the slow ring via MaybeSlow, so the slow-query
//     path is always on even at low sample rates.
//   - Completed traces land in a fixed-size lock-free ring of atomic
//     pointers; readers (debug endpoints) never block writers.
//   - Spans are appended with an atomic reservation index so concurrent
//     stages (shard fan-out workers) can record into one trace; overflow
//     beyond MaxSpans is counted, never grown.
//
// Trace ids are 64-bit and non-zero; id 0 on the wire means "untraced".
// A server joins a client's trace by creating a trace with the same
// forced id, so the two halves can be merged by id.
package tracing

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Counter is the minimal metrics hook; *telemetry.Counter satisfies it.
// Keeping an interface here keeps the package dependency-free.
type Counter interface{ Inc() }

// Span sources: which side of the wire recorded the span.
const (
	SrcClient = "client"
	SrcServer = "server"
)

// Span is one named, timed stage of a trace. Start is wall-clock
// nanoseconds (UnixNano) so client and server spans order on a shared
// axis; Dur comes from the monotonic clock.
type Span struct {
	Name  string `json:"name"`
	Src   string `json:"src,omitempty"`
	Start uint64 `json:"start"`
	Dur   uint64 `json:"dur"`
}

// Defaults applied by New for zero Config fields.
const (
	DefaultRingSize     = 256
	DefaultSlowRingSize = 64
	DefaultMaxSpans     = 64
	DefaultSlowNs       = uint64(10 * time.Millisecond)
)

// Config configures a Tracer. The zero value samples nothing but keeps
// the always-on slow path (and forced ids) live.
type Config struct {
	// SampleEvery samples 1-in-N traces at Start. 0 disables proactive
	// sampling; 1 samples everything. Forced ids (StartForced) and the
	// slow path ignore it.
	SampleEvery int
	// SlowNs is the always-on slow-query threshold in nanoseconds.
	// 0 means DefaultSlowNs.
	SlowNs uint64
	// RingSize / SlowRingSize bound the completed-trace and slow-trace
	// rings. MaxSpans bounds spans per trace.
	RingSize     int
	SlowRingSize int
	MaxSpans     int
	// Optional metric hooks; nil hooks are skipped.
	Started      Counter
	Finished     Counter
	Slow         Counter
	SpansDropped Counter
}

// Tracer hands out traces and retains completed ones.
type Tracer struct {
	cfg  Config
	seed uint64
	seq  atomic.Uint64
	tick atomic.Uint64

	ring *ring
	slow *ring

	started  atomic.Int64
	finished atomic.Int64
	slowN    atomic.Int64
	dropped  atomic.Int64
}

// New builds a Tracer, applying defaults to zero Config fields.
func New(cfg Config) *Tracer {
	if cfg.SlowNs == 0 {
		cfg.SlowNs = DefaultSlowNs
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingSize
	}
	if cfg.SlowRingSize <= 0 {
		cfg.SlowRingSize = DefaultSlowRingSize
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = DefaultMaxSpans
	}
	return &Tracer{
		cfg:  cfg,
		seed: uint64(time.Now().UnixNano()) | 1,
		ring: newRing(cfg.RingSize),
		slow: newRing(cfg.SlowRingSize),
	}
}

// splitmix64 mixes the sequence counter into a well-spread non-zero id.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewID returns a fresh non-zero trace id.
func (t *Tracer) NewID() uint64 {
	id := splitmix64(t.seed + t.seq.Add(1))
	if id == 0 {
		id = 1
	}
	return id
}

// SlowNs reports the slow-query threshold. nil-safe (returns 0).
func (t *Tracer) SlowNs() uint64 {
	if t == nil {
		return 0
	}
	return t.cfg.SlowNs
}

// sampled rolls the 1-in-N sampler.
func (t *Tracer) sampled() bool {
	n := t.cfg.SampleEvery
	if n <= 0 {
		return false
	}
	if n == 1 {
		return true
	}
	return t.tick.Add(1)%uint64(n) == 0
}

// Start begins a sampled trace, or returns nil if the sampler says no
// (or the tracer is nil). A nil *Trace is safe to use everywhere.
func (t *Tracer) Start(name string) *Trace {
	if t == nil || !t.sampled() {
		return nil
	}
	return t.startTrace(name, t.NewID())
}

// StartForced begins a trace regardless of sampling, joining the given
// id (a remote caller's trace id). id 0 generates a fresh one.
// nil-safe (returns nil).
func (t *Tracer) StartForced(name string, id uint64) *Trace {
	if t == nil {
		return nil
	}
	if id == 0 {
		id = t.NewID()
	}
	return t.startTrace(name, id)
}

func (t *Tracer) startTrace(name string, id uint64) *Trace {
	if t.cfg.Started != nil {
		t.cfg.Started.Inc()
	}
	t.started.Add(1)
	tr := NewDetached(name, id, t.cfg.MaxSpans)
	tr.tr = t
	return tr
}

// NewDetached builds a trace not attached to any tracer: it records
// spans and can be finished, but lands in no ring. Servers use this to
// honor a client's trace id even when local tracing is disabled.
func NewDetached(name string, id uint64, maxSpans int) *Trace {
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	t0 := time.Now()
	return &Trace{
		id:      id,
		name:    name,
		t0:      t0,
		startNs: uint64(t0.UnixNano()),
		spans:   make([]Span, maxSpans),
	}
}

// MaybeSlow is the always-on slow path for queries the sampler skipped:
// if dur crosses the threshold, a span-less trace is recorded into the
// slow ring. nil-safe.
func (t *Tracer) MaybeSlow(name string, start time.Time, dur time.Duration, err error) {
	if t == nil || dur < 0 || uint64(dur) < t.cfg.SlowNs {
		return
	}
	tr := NewDetached(name, t.NewID(), 1)
	tr.t0 = start
	tr.startNs = uint64(start.UnixNano())
	tr.tr = t
	if t.cfg.Started != nil {
		t.cfg.Started.Inc()
	}
	t.started.Add(1)
	tr.finishDur(dur, errString(err))
}

// finish retains a completed trace.
func (t *Tracer) finish(tr *Trace) {
	t.finished.Add(1)
	if t.cfg.Finished != nil {
		t.cfg.Finished.Inc()
	}
	t.ring.put(tr)
	if tr.durNs >= t.cfg.SlowNs {
		tr.slow = true
		t.slowN.Add(1)
		if t.cfg.Slow != nil {
			t.cfg.Slow.Inc()
		}
		t.slow.put(tr)
	}
}

// Traces returns completed traces, newest first.
func (t *Tracer) Traces() []*Trace {
	if t == nil {
		return nil
	}
	return t.ring.snapshot()
}

// Slow returns the slowlog (traces over the threshold), newest first.
func (t *Tracer) Slow() []*Trace {
	if t == nil {
		return nil
	}
	return t.slow.snapshot()
}

// Find looks an id up in the completed and slow rings.
func (t *Tracer) Find(id uint64) *Trace {
	if t == nil {
		return nil
	}
	for _, tr := range t.ring.snapshot() {
		if tr.id == id {
			return tr
		}
	}
	for _, tr := range t.slow.snapshot() {
		if tr.id == id {
			return tr
		}
	}
	return nil
}

// Started / Finished / SlowCount / SpansDropped expose lifetime totals
// (used by chaos tests to prove orphan closure). nil-safe.
func (t *Tracer) Started() int64 {
	if t == nil {
		return 0
	}
	return t.started.Load()
}

func (t *Tracer) Finished() int64 {
	if t == nil {
		return 0
	}
	return t.finished.Load()
}

func (t *Tracer) SlowCount() int64 {
	if t == nil {
		return 0
	}
	return t.slowN.Load()
}

func (t *Tracer) SpansDropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// ring is a fixed-size lock-free MPMC ring of completed traces. put
// claims a slot with an atomic counter and stores a pointer; snapshot
// loads pointers. Overwrites drop the oldest entry, by design.
type ring struct {
	slots []atomic.Pointer[Trace]
	pos   atomic.Uint64
}

func newRing(n int) *ring {
	return &ring{slots: make([]atomic.Pointer[Trace], n)}
}

func (r *ring) put(t *Trace) {
	i := (r.pos.Add(1) - 1) % uint64(len(r.slots))
	r.slots[i].Store(t)
}

// snapshot returns entries newest-first.
func (r *ring) snapshot() []*Trace {
	n := len(r.slots)
	out := make([]*Trace, 0, n)
	pos := r.pos.Load()
	for k := 0; k < n; k++ {
		i := (pos + uint64(n) - 1 - uint64(k)) % uint64(n)
		if t := r.slots[i].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Trace is one query's tree of spans. All methods are nil-safe.
type Trace struct {
	id      uint64
	name    string
	t0      time.Time
	startNs uint64

	n     atomic.Int32
	spans []Span

	// set at Finish; published via the ring (or the finished flag).
	durNs    uint64
	errStr   string
	slow     bool
	dropped  int32
	finished atomic.Bool

	tr *Tracer
}

// ID returns the trace id, 0 for a nil trace (untraced on the wire).
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// Name returns the root operation name.
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// StartNs returns the wall-clock start in UnixNano.
func (t *Trace) StartNs() uint64 {
	if t == nil {
		return 0
	}
	return t.startNs
}

// DurNs returns the finished duration (0 before Finish).
func (t *Trace) DurNs() uint64 {
	if t == nil || !t.finished.Load() {
		return 0
	}
	return t.durNs
}

// Err returns the error annotation set at Finish.
func (t *Trace) Err() string {
	if t == nil || !t.finished.Load() {
		return ""
	}
	return t.errStr
}

// Slow reports whether the trace crossed the slow threshold.
func (t *Trace) Slow() bool {
	if t == nil || !t.finished.Load() {
		return false
	}
	return t.slow
}

// Finished reports whether Finish ran.
func (t *Trace) Finished() bool {
	if t == nil {
		return false
	}
	return t.finished.Load()
}

// Span records a completed stage. Concurrent callers are safe: slots
// are claimed with an atomic index. Past MaxSpans the span is dropped
// and counted.
func (t *Trace) Span(name, src string, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	if dur < 0 {
		dur = 0
	}
	t.add(Span{Name: name, Src: src, Start: uint64(start.UnixNano()), Dur: uint64(dur)})
}

// Add records a pre-built span (e.g. decoded from a reply frame).
func (t *Trace) Add(sp Span) {
	if t == nil {
		return
	}
	t.add(sp)
}

// AddSpans bulk-records remote spans.
func (t *Trace) AddSpans(sps []Span) {
	if t == nil {
		return
	}
	for _, sp := range sps {
		t.add(sp)
	}
}

func (t *Trace) add(sp Span) {
	i := t.n.Add(1) - 1
	if int(i) >= len(t.spans) {
		atomic.AddInt32(&t.dropped, 1)
		if t.tr != nil {
			t.tr.dropped.Add(1)
			if t.tr.cfg.SpansDropped != nil {
				t.tr.cfg.SpansDropped.Inc()
			}
		}
		return
	}
	t.spans[i] = sp
}

// Spans snapshots the recorded spans. Callers must ensure recording
// goroutines have synchronized (the query plane does: shard workers
// join before the reply is encoded).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	n := int(t.n.Load())
	if n > len(t.spans) {
		n = len(t.spans)
	}
	out := make([]Span, n)
	copy(out, t.spans[:n])
	return out
}

// SpanHandle times one stage; obtain with StartSpan, close with End.
// The zero value (from a nil trace) is a no-op.
type SpanHandle struct {
	tr   *Trace
	name string
	src  string
	t0   time.Time
}

// StartSpan opens a stage timer on the trace. nil-safe: a nil trace
// returns a no-op handle without reading the clock.
func (t *Trace) StartSpan(name, src string) SpanHandle {
	if t == nil {
		return SpanHandle{}
	}
	return SpanHandle{tr: t, name: name, src: src, t0: time.Now()}
}

// End records the stage. Safe on the zero handle.
func (h SpanHandle) End() {
	if h.tr == nil {
		return
	}
	h.tr.Span(h.name, h.src, h.t0, time.Since(h.t0))
}

// Finish closes the trace, computing the duration and retaining it in
// the tracer's ring(s). Exactly one Finish wins; later calls no-op, so
// orphan-closure paths (writer drain, poison, timeouts) can all call it
// defensively. nil-safe.
func (t *Trace) Finish(errStr string) {
	if t == nil {
		return
	}
	t.finishDur(time.Since(t.t0), errStr)
}

// FinishErr is Finish with an error value (nil → "").
func (t *Trace) FinishErr(err error) {
	if t == nil {
		return
	}
	t.finishDur(time.Since(t.t0), errString(err))
}

func (t *Trace) finishDur(dur time.Duration, errStr string) {
	if dur < 0 {
		dur = 0
	}
	if !t.finished.CompareAndSwap(false, true) {
		return
	}
	t.durNs = uint64(dur)
	t.errStr = errStr
	if t.tr != nil {
		t.tr.finish(t)
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// View is the JSON shape served by /debug/traces and friends.
type View struct {
	ID           string `json:"id"`
	Name         string `json:"name"`
	StartNs      uint64 `json:"start_ns"`
	DurNs        uint64 `json:"dur_ns"`
	Err          string `json:"err,omitempty"`
	Slow         bool   `json:"slow,omitempty"`
	Finished     bool   `json:"finished"`
	Spans        []Span `json:"spans"`
	SpansDropped int32  `json:"spans_dropped,omitempty"`
}

// View renders the trace for JSON serving. nil-safe (zero View).
func (t *Trace) View() View {
	if t == nil {
		return View{}
	}
	v := View{
		ID:           FormatID(t.id),
		Name:         t.name,
		StartNs:      t.startNs,
		DurNs:        t.DurNs(),
		Err:          t.Err(),
		Slow:         t.Slow(),
		Finished:     t.finished.Load(),
		Spans:        t.Spans(),
		SpansDropped: atomic.LoadInt32(&t.dropped),
	}
	sort.SliceStable(v.Spans, func(i, j int) bool { return v.Spans[i].Start < v.Spans[j].Start })
	return v
}

// FormatID renders a trace id the way debug endpoints and exemplars
// expect it: 16 hex digits.
func FormatID(id uint64) string {
	return fmt.Sprintf("%016x", id)
}

// ParseID parses FormatID output (with or without a 0x prefix).
func ParseID(s string) (uint64, bool) {
	s = strings.TrimPrefix(s, "0x")
	if s == "" || len(s) > 16 {
		return 0, false
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}

// FormatTree renders a finished trace as an indented span tree: spans
// sorted by start time, nested by time containment. Used by
// `pqquery -trace` and the pqsim slowlog dump.
func FormatTree(t *Trace) string {
	if t == nil {
		return "(no trace)\n"
	}
	v := t.View()
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s %s dur=%s", v.ID, v.Name, time.Duration(v.DurNs))
	if v.Err != "" {
		fmt.Fprintf(&b, " err=%q", v.Err)
	}
	if v.Slow {
		b.WriteString(" SLOW")
	}
	if !v.Finished {
		b.WriteString(" (unfinished)")
	}
	b.WriteByte('\n')
	// Stack of span end-times drives indentation: a span starting before
	// the top of stack ends is a child.
	type frame struct{ end uint64 }
	var stack []frame
	for _, sp := range v.Spans {
		for len(stack) > 0 && sp.Start >= stack[len(stack)-1].end {
			stack = stack[:len(stack)-1]
		}
		indent := strings.Repeat("  ", len(stack)+1)
		off := int64(sp.Start) - int64(v.StartNs)
		if off < 0 {
			off = 0
		}
		src := sp.Src
		if src == "" {
			src = "-"
		}
		fmt.Fprintf(&b, "%s%-24s %-6s %12s  +%s\n",
			indent, sp.Name, src, time.Duration(sp.Dur), time.Duration(off))
		stack = append(stack, frame{end: sp.Start + sp.Dur})
	}
	if v.SpansDropped > 0 {
		fmt.Fprintf(&b, "  (%d spans dropped)\n", v.SpansDropped)
	}
	return b.String()
}
