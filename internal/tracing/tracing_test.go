package tracing

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if got := tr.Start("x"); got != nil {
		t.Fatalf("nil tracer Start = %v", got)
	}
	if got := tr.StartForced("x", 7); got != nil {
		t.Fatalf("nil tracer StartForced = %v", got)
	}
	tr.MaybeSlow("x", time.Now(), time.Hour, nil)
	if tr.Started() != 0 || tr.Finished() != 0 || tr.SlowNs() != 0 {
		t.Fatal("nil tracer counters nonzero")
	}
	var trace *Trace
	trace.Span("a", SrcClient, time.Now(), time.Millisecond)
	trace.Add(Span{})
	trace.AddSpans([]Span{{}})
	trace.StartSpan("a", SrcClient).End()
	trace.Finish("")
	trace.FinishErr(errors.New("x"))
	if trace.ID() != 0 || trace.Finished() || trace.Spans() != nil {
		t.Fatal("nil trace misbehaves")
	}
	var el *EventLog
	el.Record(EventShed, "x", 1, 0)
	if el.Events() != nil || el.Total(EventShed) != 0 {
		t.Fatal("nil event log misbehaves")
	}
}

func TestStartFinishLifecycle(t *testing.T) {
	tr := New(Config{SampleEvery: 1, SlowNs: uint64(time.Hour)})
	trace := tr.Start("interval")
	if trace == nil {
		t.Fatal("SampleEvery=1 did not sample")
	}
	if trace.ID() == 0 {
		t.Fatal("zero trace id")
	}
	sp := trace.StartSpan("stage", SrcServer)
	time.Sleep(time.Millisecond)
	sp.End()
	trace.Finish("")
	if !trace.Finished() {
		t.Fatal("not finished")
	}
	if tr.Started() != 1 || tr.Finished() != 1 {
		t.Fatalf("counters started=%d finished=%d", tr.Started(), tr.Finished())
	}
	got := tr.Traces()
	if len(got) != 1 || got[0] != trace {
		t.Fatalf("ring snapshot = %v", got)
	}
	if len(tr.Slow()) != 0 {
		t.Fatal("fast trace landed in slowlog")
	}
	spans := trace.Spans()
	if len(spans) != 1 || spans[0].Name != "stage" || spans[0].Dur == 0 {
		t.Fatalf("spans = %+v", spans)
	}
	if f := tr.Find(trace.ID()); f != trace {
		t.Fatal("Find missed the trace")
	}
}

func TestFinishIdempotent(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	trace := tr.Start("q")
	trace.Finish("first")
	trace.Finish("second")
	trace.FinishErr(errors.New("third"))
	if tr.Finished() != 1 {
		t.Fatalf("finished = %d, want 1", tr.Finished())
	}
	if trace.Err() != "first" {
		t.Fatalf("err = %q, want first writer to win", trace.Err())
	}
}

func TestSampling(t *testing.T) {
	tr := New(Config{SampleEvery: 4})
	n := 0
	for i := 0; i < 100; i++ {
		if trace := tr.Start("q"); trace != nil {
			n++
			trace.Finish("")
		}
	}
	if n != 25 {
		t.Fatalf("sampled %d of 100 with SampleEvery=4", n)
	}
	off := New(Config{SampleEvery: 0})
	if off.Start("q") != nil {
		t.Fatal("SampleEvery=0 sampled")
	}
	if off.StartForced("q", 42) == nil {
		t.Fatal("forced trace refused with sampling off")
	}
}

func TestSlowPath(t *testing.T) {
	tr := New(Config{SampleEvery: 0, SlowNs: uint64(time.Millisecond)})
	// Under threshold: dropped.
	tr.MaybeSlow("fast", time.Now(), 100*time.Microsecond, nil)
	if tr.SlowCount() != 0 || len(tr.Slow()) != 0 {
		t.Fatal("fast query promoted to slowlog")
	}
	// Over threshold: promoted, finished, error captured.
	tr.MaybeSlow("slow", time.Now().Add(-time.Second), time.Second, errors.New("boom"))
	slow := tr.Slow()
	if len(slow) != 1 {
		t.Fatalf("slowlog len = %d", len(slow))
	}
	got := slow[0]
	if !got.Finished() || !got.Slow() || got.Err() != "boom" || got.Name() != "slow" {
		t.Fatalf("slow trace = %+v", got.View())
	}
	if tr.Started() != 1 || tr.Finished() != 1 {
		t.Fatal("slow path skipped lifecycle counters")
	}
	// Sampled traces that finish slow also land in the slowlog.
	tr2 := New(Config{SampleEvery: 1, SlowNs: 1})
	trace := tr2.Start("q")
	time.Sleep(10 * time.Microsecond)
	trace.Finish("")
	if len(tr2.Slow()) != 1 || !trace.Slow() {
		t.Fatal("slow sampled trace missing from slowlog")
	}
}

func TestRingOverwriteBounded(t *testing.T) {
	tr := New(Config{SampleEvery: 1, RingSize: 8, SlowNs: uint64(time.Hour)})
	for i := 0; i < 100; i++ {
		tr.Start("q").Finish("")
	}
	got := tr.Traces()
	if len(got) != 8 {
		t.Fatalf("ring len = %d, want 8", len(got))
	}
	if tr.Finished() != 100 {
		t.Fatalf("finished = %d", tr.Finished())
	}
}

func TestSpanOverflowCounted(t *testing.T) {
	tr := New(Config{SampleEvery: 1, MaxSpans: 4})
	trace := tr.Start("q")
	for i := 0; i < 10; i++ {
		trace.Span("s", SrcServer, time.Now(), time.Microsecond)
	}
	trace.Finish("")
	if got := len(trace.Spans()); got != 4 {
		t.Fatalf("spans kept = %d, want 4", got)
	}
	if tr.SpansDropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.SpansDropped())
	}
}

func TestConcurrentSpansAndFinishes(t *testing.T) {
	tr := New(Config{SampleEvery: 1, RingSize: 64, MaxSpans: 128})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				trace := tr.Start("q")
				var inner sync.WaitGroup
				for s := 0; s < 4; s++ {
					inner.Add(1)
					go func() {
						defer inner.Done()
						trace.Span("shard", SrcServer, time.Now(), time.Microsecond)
					}()
				}
				inner.Wait()
				trace.Finish("")
				_ = tr.Traces()
			}
		}()
	}
	wg.Wait()
	if tr.Started() != tr.Finished() {
		t.Fatalf("started %d != finished %d", tr.Started(), tr.Finished())
	}
}

func TestIDRoundTrip(t *testing.T) {
	tr := New(Config{})
	for i := 0; i < 100; i++ {
		id := tr.NewID()
		if id == 0 {
			t.Fatal("zero id")
		}
		s := FormatID(id)
		if len(s) != 16 {
			t.Fatalf("FormatID len = %d", len(s))
		}
		back, ok := ParseID(s)
		if !ok || back != id {
			t.Fatalf("ParseID(%q) = %d, %v", s, back, ok)
		}
	}
	if _, ok := ParseID("zz"); ok {
		t.Fatal("parsed junk")
	}
	if _, ok := ParseID(""); ok {
		t.Fatal("parsed empty")
	}
	if v, ok := ParseID("0xff"); !ok || v != 255 {
		t.Fatalf("ParseID(0xff) = %d, %v", v, ok)
	}
}

func TestFormatTree(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	trace := tr.StartForced("interval", 0xabc)
	base := time.Now()
	trace.Add(Span{Name: "client.write", Src: SrcClient, Start: uint64(base.UnixNano()), Dur: uint64(10 * time.Millisecond)})
	trace.Add(Span{Name: "server.execute", Src: SrcServer, Start: uint64(base.Add(time.Millisecond).UnixNano()), Dur: uint64(5 * time.Millisecond)})
	trace.Add(Span{Name: "server.merge", Src: SrcServer, Start: uint64(base.Add(2 * time.Millisecond).UnixNano()), Dur: uint64(time.Millisecond)})
	trace.Finish("")
	out := FormatTree(trace)
	for _, want := range []string{"0000000000000abc", "client.write", "server.execute", "server.merge", "interval"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatTree missing %q in:\n%s", want, out)
		}
	}
	// server.execute nests under client.write, merge under execute.
	wIdx := strings.Index(out, "client.write")
	eIdx := strings.Index(out, "server.execute")
	if wIdx > eIdx {
		t.Fatalf("span order wrong:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	var wIndent, eIndent, mIndent int
	for _, ln := range lines {
		trimmed := strings.TrimLeft(ln, " ")
		indent := len(ln) - len(trimmed)
		switch {
		case strings.HasPrefix(trimmed, "client.write"):
			wIndent = indent
		case strings.HasPrefix(trimmed, "server.execute"):
			eIndent = indent
		case strings.HasPrefix(trimmed, "server.merge"):
			mIndent = indent
		}
	}
	if !(wIndent < eIndent && eIndent < mIndent) {
		t.Fatalf("nesting indents %d/%d/%d:\n%s", wIndent, eIndent, mIndent, out)
	}
	if got := FormatTree(nil); got != "(no trace)\n" {
		t.Fatalf("FormatTree(nil) = %q", got)
	}
}

type testCounter struct{ n int64 }

func (c *testCounter) Inc() { c.n++ }

func TestCounterHooks(t *testing.T) {
	var started, finished, slow testCounter
	tr := New(Config{SampleEvery: 1, SlowNs: 1, Started: &started, Finished: &finished, Slow: &slow})
	trace := tr.Start("q")
	time.Sleep(10 * time.Microsecond)
	trace.Finish("")
	if started.n != 1 || finished.n != 1 || slow.n != 1 {
		t.Fatalf("hooks started=%d finished=%d slow=%d", started.n, finished.n, slow.n)
	}
}

func TestEventLog(t *testing.T) {
	el := NewEventLog(4)
	var shed testCounter
	el.SetCounter(EventShed, &shed)
	el.Record(EventShed, "netserver", 256, 0)
	el.Record(EventBackpressure, "shard=0", 1234, 0)
	el.Record(EventRingHighWater, "shard=1", 900, 0)
	el.Record(EventFreezeStall, "port=2", 777, 0xdead)
	evs := el.Events()
	if len(evs) != 4 {
		t.Fatalf("events = %d", len(evs))
	}
	// Newest first.
	if evs[0].Kind != EventFreezeStall || evs[0].TraceID != FormatID(0xdead) {
		t.Fatalf("newest = %+v", evs[0])
	}
	if evs[3].Kind != EventShed || evs[3].Subject != "netserver" || evs[3].Value != 256 {
		t.Fatalf("oldest = %+v", evs[3])
	}
	if shed.n != 1 || el.Total(EventShed) != 1 {
		t.Fatal("shed counter mismatch")
	}
	// Overwrite keeps the ring bounded.
	for i := 0; i < 10; i++ {
		el.Record(EventShed, "netserver", int64(i), 0)
	}
	if got := len(el.Events()); got != 4 {
		t.Fatalf("ring grew to %d", got)
	}
	if el.Total(EventShed) != 11 {
		t.Fatalf("total = %d", el.Total(EventShed))
	}
	// Kind JSON + names.
	if EventRingHighWater.String() != "ring_high_watermark" || EventKind(200).String() != "unknown" {
		t.Fatal("kind names")
	}
	b, err := EventRingHighWater.MarshalJSON()
	if err != nil || string(b) != `"ring_high_watermark"` {
		t.Fatalf("kind json = %s, %v", b, err)
	}
}

func TestDetachedTrace(t *testing.T) {
	trace := NewDetached("interval", 99, 8)
	trace.StartSpan("server.execute", SrcServer).End()
	trace.Finish("")
	if !trace.Finished() || trace.ID() != 99 || len(trace.Spans()) != 1 {
		t.Fatalf("detached trace = %+v", trace.View())
	}
}
