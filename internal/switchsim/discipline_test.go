package switchsim

import (
	"math/rand/v2"
	"testing"

	"printqueue/internal/pktrec"
)

func qpkt(f byte, bytes int, arrival uint64, queue int) *pktrec.Packet {
	p := pkt(f, bytes, arrival)
	p.Queue = queue
	return p
}

// TestDRRFairness: two backlogged classes with weights 3:1 must share the
// link roughly 3:1 by bytes.
func TestDRRFairness(t *testing.T) {
	sw, err := NewSwitch(1, PortConfig{
		LinkBps:   1e9,
		Queues:    2,
		Scheduler: DRR,
		Weights:   []int{3, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	bytesOut := map[int]int{}
	done := 0
	sw.Port(0).AddEgressHook(EgressFunc(func(p *pktrec.Packet) {
		// Only count while both classes are backlogged (before either
		// finishes) to measure the steady-state share.
		if done < 1200 {
			bytesOut[p.Queue] += p.Bytes
		}
		done++
	}))
	// Saturate both classes from t=0.
	for i := 0; i < 1000; i++ {
		sw.Inject(qpkt(1, 1000, 1, 0))
		sw.Inject(qpkt(2, 1000, 1, 1))
	}
	sw.Flush()
	ratio := float64(bytesOut[0]) / float64(bytesOut[1])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("DRR share ratio %.2f, want ~3.0 (bytes %v)", ratio, bytesOut)
	}
}

// TestDRRVariablePacketSizes: byte-level fairness must hold even when one
// class sends small packets and the other MTUs.
func TestDRRVariablePacketSizes(t *testing.T) {
	sw, err := NewSwitch(1, PortConfig{
		LinkBps:   1e9,
		Queues:    2,
		Scheduler: DRR,
		Weights:   []int{1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	bytesOut := map[int]int{}
	done := 0
	sw.Port(0).AddEgressHook(EgressFunc(func(p *pktrec.Packet) {
		if done < 5000 {
			bytesOut[p.Queue] += p.Bytes
		}
		done++
	}))
	for i := 0; i < 6000; i++ {
		sw.Inject(qpkt(1, 100, 1, 0)) // small packets
	}
	for i := 0; i < 400; i++ {
		sw.Inject(qpkt(2, 1500, 1, 1)) // MTU packets
	}
	sw.Flush()
	ratio := float64(bytesOut[0]) / float64(bytesOut[1])
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("byte share ratio %.2f, want ~1.0 (bytes %v)", ratio, bytesOut)
	}
}

func TestDRRWeightsValidation(t *testing.T) {
	if _, err := NewSwitch(1, PortConfig{LinkBps: 1e9, Queues: 2, Scheduler: DRR, Weights: []int{1}}); err == nil {
		t.Error("weight count mismatch accepted")
	}
	if _, err := NewSwitch(1, PortConfig{LinkBps: 1e9, Queues: 2, Scheduler: DRR, Weights: []int{1, 0}}); err == nil {
		t.Error("zero weight accepted")
	}
	// Default weights.
	sw, err := NewSwitch(1, PortConfig{LinkBps: 1e9, Queues: 3, Scheduler: DRR})
	if err != nil {
		t.Fatal(err)
	}
	if w := sw.Port(0).Config().Weights; len(w) != 3 || w[0] != 1 {
		t.Fatalf("default weights = %v", w)
	}
}

// TestPIFORankOrder: while the link is busy, later packets with smaller
// ranks dequeue first; ties go in arrival order.
func TestPIFORankOrder(t *testing.T) {
	sw, err := NewSwitch(1, PortConfig{
		LinkBps:   1e9,
		Scheduler: PIFO,
		Rank:      func(p *pktrec.Packet) uint64 { return uint64(p.Bytes) }, // SRPT-ish: shortest first
	})
	if err != nil {
		t.Fatal(err)
	}
	var order []byte
	sw.Port(0).AddEgressHook(EgressFunc(func(p *pktrec.Packet) {
		order = append(order, p.Flow.SrcIP[3])
	}))
	sw.Inject(pkt(9, 125, 0))  // transmits immediately
	sw.Inject(pkt(1, 500, 10)) // rank 500
	sw.Inject(pkt(2, 100, 20)) // rank 100 -> first
	sw.Inject(pkt(3, 100, 30)) // rank 100, later arrival -> second
	sw.Inject(pkt(4, 300, 40)) // rank 300
	sw.Port(0).Flush()
	want := []byte{9, 2, 3, 4, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("PIFO order = %v, want %v", order, want)
		}
	}
}

// TestPIFODefaultRankIsStrictPriority: without a rank function, PIFO
// degenerates to strict priority on Packet.Queue.
func TestPIFODefaultRankIsStrictPriority(t *testing.T) {
	run := func(sched Scheduler) []byte {
		cfg := PortConfig{LinkBps: 1e9, Queues: 3, Scheduler: sched}
		sw, err := NewSwitch(1, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var order []byte
		sw.Port(0).AddEgressHook(EgressFunc(func(p *pktrec.Packet) {
			order = append(order, p.Flow.SrcIP[3])
		}))
		rng := rand.New(rand.NewPCG(1, 1))
		sw.Inject(qpkt(0, 125, 0, 0))
		for i := byte(1); i <= 30; i++ {
			sw.Inject(qpkt(i, 125, uint64(i), rng.IntN(3)))
		}
		sw.Port(0).Flush()
		return order
	}
	pifo := run(PIFO)
	sp := run(StrictPriority)
	for i := range sp {
		if pifo[i] != sp[i] {
			t.Fatalf("PIFO default diverges from strict priority at %d: %v vs %v", i, pifo, sp)
		}
	}
}

// TestDisciplinesPreserveMetadata: every discipline stamps coherent
// enq/deq metadata (deq >= enq, monotone deq).
func TestDisciplinesPreserveMetadata(t *testing.T) {
	for _, sched := range []Scheduler{FIFO, StrictPriority, DRR, PIFO} {
		sw, err := NewSwitch(1, PortConfig{LinkBps: 10e9, Queues: 2, Scheduler: sched})
		if err != nil {
			t.Fatal(err)
		}
		var prev uint64
		bad := false
		sw.Port(0).AddEgressHook(EgressFunc(func(p *pktrec.Packet) {
			d := p.Meta.DeqTimestamp()
			if d < prev || d < p.Meta.EnqTimestamp {
				bad = true
			}
			prev = d
		}))
		rng := rand.New(rand.NewPCG(uint64(sched), 7))
		var ts uint64
		for i := 0; i < 5000; i++ {
			ts += uint64(rng.IntN(100))
			sw.Inject(qpkt(byte(i), 64+rng.IntN(1400), ts, rng.IntN(2)))
		}
		sw.Flush()
		if bad {
			t.Fatalf("%v: metadata incoherent", sched)
		}
		if got := sw.Port(0).Stats().Dequeued; got != 5000 {
			t.Fatalf("%v: dequeued %d of 5000", sched, got)
		}
	}
}
