package switchsim

import (
	"container/heap"

	"printqueue/internal/pktrec"
)

// discipline abstracts the packet scheduling algorithm of a port. The
// paper's structures are explicitly scheduling-agnostic ("compatible with
// non-FIFO queuing policies", §1; "the above algorithm may generalize to
// other scheduling algorithms", §5), so the simulator offers the FIFO and
// strict-priority disciplines the Tofino traffic manager has, plus deficit
// round robin and a PIFO (push-in first-out) rank queue in the style of the
// programmable schedulers the paper cites [20, 22, 32, 33].
type discipline interface {
	push(p *pktrec.Packet)
	pop() *pktrec.Packet
	empty() bool
}

// --- FIFO / strict priority ---

// classQueues is an array of per-class FIFOs served lowest class first:
// with one class it is a plain FIFO, with several it is strict priority.
type classQueues struct {
	queues []fifo
	queued int
}

func newClassQueues(n int) *classQueues {
	return &classQueues{queues: make([]fifo, n)}
}

func (c *classQueues) push(p *pktrec.Packet) {
	q := p.Queue
	if q < 0 || q >= len(c.queues) {
		q = len(c.queues) - 1
	}
	c.queues[q].push(p)
	c.queued++
}

func (c *classQueues) pop() *pktrec.Packet {
	for i := range c.queues {
		if !c.queues[i].empty() {
			c.queued--
			return c.queues[i].pop()
		}
	}
	panic("switchsim: pop from empty classQueues")
}

func (c *classQueues) empty() bool { return c.queued == 0 }

// --- Deficit round robin ---

// drrQueues implements deficit round robin (Shreedhar & Varghese): each
// class accumulates quantum*weight of credit per round and sends packets
// while its deficit covers the head-of-line size, giving weighted
// byte-level fairness across classes.
type drrQueues struct {
	queues   []fifo
	weights  []int
	deficit  []int
	quantum  int
	active   int  // round-robin cursor
	credited bool // whether the cursor class received its quantum this visit
	queued   int
}

func newDRRQueues(weights []int, quantum int) *drrQueues {
	if quantum <= 0 {
		quantum = pktrec.MTUBytes
	}
	d := &drrQueues{
		queues:  make([]fifo, len(weights)),
		weights: weights,
		deficit: make([]int, len(weights)),
		quantum: quantum,
	}
	return d
}

func (d *drrQueues) push(p *pktrec.Packet) {
	q := p.Queue
	if q < 0 || q >= len(d.queues) {
		q = len(d.queues) - 1
	}
	d.queues[q].push(p)
	d.queued++
}

func (d *drrQueues) pop() *pktrec.Packet {
	if d.queued == 0 {
		panic("switchsim: pop from empty drrQueues")
	}
	for {
		q := &d.queues[d.active]
		if q.empty() {
			d.deficit[d.active] = 0 // idle classes keep no credit
			d.moveCursor()
			continue
		}
		// Credit the class exactly once per cursor visit.
		if !d.credited {
			d.deficit[d.active] += d.quantum * d.weights[d.active]
			d.credited = true
		}
		if head := q.peek(); d.deficit[d.active] >= head.Bytes {
			d.deficit[d.active] -= head.Bytes
			d.queued--
			return q.pop()
		}
		d.moveCursor()
	}
}

func (d *drrQueues) moveCursor() {
	d.active = (d.active + 1) % len(d.queues)
	d.credited = false
}

func (d *drrQueues) empty() bool { return d.queued == 0 }

// --- PIFO ---

// RankFunc assigns a scheduling rank to a packet at enqueue; lower ranks
// dequeue first. Ties dequeue in arrival order.
type RankFunc func(p *pktrec.Packet) uint64

// pifoEntry is one heap element: rank with an arrival sequence tiebreak.
type pifoEntry struct {
	rank uint64
	seq  uint64
	pkt  *pktrec.Packet
}

type pifoHeap []pifoEntry

func (h pifoHeap) Len() int { return len(h) }
func (h pifoHeap) Less(i, j int) bool {
	if h[i].rank != h[j].rank {
		return h[i].rank < h[j].rank
	}
	return h[i].seq < h[j].seq
}
func (h pifoHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pifoHeap) Push(x interface{}) { *h = append(*h, x.(pifoEntry)) }
func (h *pifoHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = pifoEntry{}
	*h = old[:n-1]
	return e
}

// pifoQueue is a push-in first-out queue: packets enqueue with a rank and
// dequeue smallest-rank first — the abstraction programmable schedulers
// build richer policies from.
type pifoQueue struct {
	heap pifoHeap
	rank RankFunc
	seq  uint64
}

func newPIFOQueue(rank RankFunc) *pifoQueue {
	if rank == nil {
		// Default: the packet's Queue field is its priority class and
		// arrival order breaks ties, which makes the default PIFO behave
		// like strict priority.
		rank = func(p *pktrec.Packet) uint64 { return uint64(p.Queue) }
	}
	return &pifoQueue{rank: rank}
}

func (q *pifoQueue) push(p *pktrec.Packet) {
	q.seq++
	heap.Push(&q.heap, pifoEntry{rank: q.rank(p), seq: q.seq, pkt: p})
}

func (q *pifoQueue) pop() *pktrec.Packet {
	return heap.Pop(&q.heap).(pifoEntry).pkt
}

func (q *pifoQueue) empty() bool { return q.heap.Len() == 0 }
