// Package switchsim models the part of a programmable switch that PrintQueue
// cares about: per-egress-port queues between an ingress and an egress
// pipeline. It substitutes for the paper's Tofino testbed.
//
// The model is deliberately narrow but faithful where it matters. Queuing
// delay "is almost entirely a function of the activity on each independent
// egress port" (paper §3), so each port is simulated independently: packets
// arrive with ingress timestamps, wait in a FIFO or strict-priority queue
// bounded by a buffer measured in 80-byte cells, and drain at the configured
// line rate. At enqueue the traffic manager stamps enq_timestamp and
// enq_qdepth; at dequeue it stamps deq_timedelta and hands the packet to the
// egress pipeline hooks — which is exactly where PrintQueue's time windows
// and queue monitor run on hardware.
package switchsim

import (
	"fmt"
	"math"

	"printqueue/internal/pktrec"
)

// Scheduler selects the packet scheduling discipline of a port.
type Scheduler int

const (
	// FIFO serves packets in arrival order, ignoring Packet.Queue.
	FIFO Scheduler = iota
	// StrictPriority always serves the lowest-numbered non-empty queue.
	// Queue 0 is the highest priority.
	StrictPriority
	// DRR serves the queues with deficit round robin: weighted byte-level
	// fairness across classes.
	DRR
	// PIFO dequeues by per-packet rank (push-in first-out), the primitive
	// the programmable schedulers the paper cites are built from. Configure
	// the rank with PortConfig.Rank.
	PIFO
)

func (s Scheduler) String() string {
	switch s {
	case FIFO:
		return "fifo"
	case StrictPriority:
		return "strict-priority"
	case DRR:
		return "drr"
	case PIFO:
		return "pifo"
	default:
		return fmt.Sprintf("scheduler(%d)", int(s))
	}
}

// EgressHook observes packets leaving a port, with all metadata filled in.
// PrintQueue's data-plane components attach here, as do ground-truth
// collectors and baselines.
type EgressHook interface {
	// OnDequeue is called in dequeue order. The packet's Meta fields are
	// complete; Meta.DeqTimestamp() is the current simulated time at the
	// port. The hook must not retain p past the call.
	OnDequeue(p *pktrec.Packet)
}

// EgressFunc adapts a function to the EgressHook interface.
type EgressFunc func(p *pktrec.Packet)

// OnDequeue implements EgressHook.
func (f EgressFunc) OnDequeue(p *pktrec.Packet) { f(p) }

// DropHook observes packets tail-dropped by the traffic manager.
type DropHook interface {
	OnDrop(p *pktrec.Packet)
}

// EnqueueHook observes packets accepted into a port's queue, with
// enq_timestamp and enq_qdepth stamped. Structures that update on the
// ingress side of the traffic manager (e.g. ConQuest's snapshots) attach
// here.
type EnqueueHook interface {
	OnEnqueue(p *pktrec.Packet)
}

// EnqueueFunc adapts a function to the EnqueueHook interface.
type EnqueueFunc func(p *pktrec.Packet)

// OnEnqueue implements EnqueueHook.
func (f EnqueueFunc) OnEnqueue(p *pktrec.Packet) { f(p) }

// PortConfig configures a single egress port.
type PortConfig struct {
	// LinkBps is the egress line rate in bits per second. The paper's
	// receivers sit behind 10 Gbps links.
	LinkBps uint64
	// BufferCells caps the queue occupancy in 80-byte cells; 0 means
	// unlimited. Packets that would exceed the cap are tail-dropped.
	BufferCells int
	// Queues is the number of priority classes (>=1). Ignored under FIFO
	// and PIFO.
	Queues int
	// Scheduler selects the queueing discipline.
	Scheduler Scheduler
	// Weights are the per-class DRR weights (optional; default all 1).
	Weights []int
	// Rank assigns PIFO ranks (optional; default: Packet.Queue).
	Rank RankFunc
}

func (c *PortConfig) normalize() error {
	if c.LinkBps == 0 {
		return fmt.Errorf("switchsim: port link rate must be > 0")
	}
	if c.Queues <= 0 {
		c.Queues = 1
	}
	if c.Scheduler == FIFO {
		c.Queues = 1
	}
	if c.Scheduler == DRR {
		if len(c.Weights) == 0 {
			c.Weights = make([]int, c.Queues)
			for i := range c.Weights {
				c.Weights[i] = 1
			}
		}
		if len(c.Weights) != c.Queues {
			return fmt.Errorf("switchsim: %d DRR weights for %d queues", len(c.Weights), c.Queues)
		}
		for i, w := range c.Weights {
			if w <= 0 {
				return fmt.Errorf("switchsim: DRR weight %d of class %d must be positive", w, i)
			}
		}
	}
	if c.BufferCells < 0 {
		return fmt.Errorf("switchsim: negative buffer size %d", c.BufferCells)
	}
	return nil
}

// newDiscipline builds the configured queueing discipline.
func (c *PortConfig) newDiscipline() discipline {
	switch c.Scheduler {
	case DRR:
		return newDRRQueues(c.Weights, pktrec.MTUBytes)
	case PIFO:
		return newPIFOQueue(c.Rank)
	default:
		return newClassQueues(c.Queues)
	}
}

// PortStats accumulates counters for one port.
type PortStats struct {
	Enqueued     int
	Dequeued     int
	Dropped      int
	MaxDepth     int    // max enqueue-time depth seen, cells
	BytesOut     uint64 // bytes transmitted
	LastActivity uint64 // latest timestamp observed
}

// Port simulates one egress port. The zero value is not usable; construct
// ports through NewSwitch.
type Port struct {
	cfg  PortConfig
	id   int
	disc discipline
	occupancy,
	queued int // cells, packets currently buffered
	// classOcc tracks per-class occupancy in cells: enq_qdepth is the
	// depth of the packet's own queue, as on Tofino, so per-queue monitors
	// see their queue, not the whole port.
	classOcc []int

	// linkFree is the earliest time the link can begin transmitting the
	// next packet.
	linkFree uint64
	now      uint64

	egress  []EgressHook
	drops   []DropHook
	ingress []EnqueueHook
	stats   PortStats
}

// fifo is a growable ring of packets; a plain slice-with-head avoids
// re-allocating on every pop.
type fifo struct {
	buf  []*pktrec.Packet
	head int
}

func (q *fifo) push(p *pktrec.Packet) { q.buf = append(q.buf, p) }

func (q *fifo) empty() bool { return q.head >= len(q.buf) }

func (q *fifo) peek() *pktrec.Packet { return q.buf[q.head] }

func (q *fifo) pop() *pktrec.Packet {
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head > 4096 && q.head*2 > len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = nil
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	return p
}

// ID returns the port number.
func (p *Port) ID() int { return p.id }

// Config returns the port's configuration.
func (p *Port) Config() PortConfig { return p.cfg }

// Stats returns a snapshot of the port counters.
func (p *Port) Stats() PortStats { return p.stats }

// Depth returns the current queue occupancy in cells.
func (p *Port) Depth() int { return p.occupancy }

// QueuedPackets returns the number of packets currently buffered.
func (p *Port) QueuedPackets() int { return p.queued }

// Now returns the port-local simulated time (latest event processed).
func (p *Port) Now() uint64 { return p.now }

// AddEgressHook registers h to observe dequeues, after previously added
// hooks.
func (p *Port) AddEgressHook(h EgressHook) { p.egress = append(p.egress, h) }

// AddDropHook registers h to observe tail drops.
func (p *Port) AddDropHook(h DropHook) { p.drops = append(p.drops, h) }

// AddEnqueueHook registers h to observe accepted enqueues.
func (p *Port) AddEnqueueHook(h EnqueueHook) { p.ingress = append(p.ingress, h) }

// class clamps a packet's queue index the same way the disciplines do.
func (p *Port) class(pkt *pktrec.Packet) int {
	q := pkt.Queue
	if q < 0 || q >= len(p.classOcc) {
		q = len(p.classOcc) - 1
	}
	return q
}

// txDelay returns the serialization delay of a packet in ns, rounded to at
// least 1 ns.
func (p *Port) txDelay(bytes int) uint64 {
	d := uint64(math.Round(float64(bytes) * 8 * 1e9 / float64(p.cfg.LinkBps)))
	if d == 0 {
		d = 1
	}
	return d
}

// advance drains every packet whose transmission can start at or before now.
func (p *Port) advance(now uint64) {
	for p.queued > 0 && p.linkFree <= now {
		pkt := p.disc.pop()
		p.queued--
		p.occupancy -= pktrec.Cells(pkt.Bytes)
		p.classOcc[p.class(pkt)] -= pktrec.Cells(pkt.Bytes)
		pkt.Meta.DeqTimedelta = p.linkFree - pkt.Meta.EnqTimestamp
		p.linkFree += p.txDelay(pkt.Bytes)
		p.stats.Dequeued++
		p.stats.BytesOut += uint64(pkt.Bytes)
		for _, h := range p.egress {
			h.OnDequeue(pkt)
		}
	}
	if now > p.now {
		p.now = now
	}
}

// Enqueue delivers a packet to the port at pkt.Arrival. Arrivals at a port
// must be fed in non-decreasing timestamp order. The traffic manager stamps
// enqueue metadata (or drops the packet), then drains anything eligible.
func (p *Port) Enqueue(pkt *pktrec.Packet) {
	if pkt.Arrival < p.now {
		panic(fmt.Sprintf("switchsim: port %d arrival %d before current time %d", p.id, pkt.Arrival, p.now))
	}
	p.advance(pkt.Arrival)
	cells := pktrec.Cells(pkt.Bytes)
	if p.cfg.BufferCells > 0 && p.occupancy+cells > p.cfg.BufferCells {
		pkt.Meta.Dropped = true
		p.stats.Dropped++
		for _, h := range p.drops {
			h.OnDrop(pkt)
		}
		return
	}
	if p.queued == 0 && p.linkFree < pkt.Arrival {
		// Link was idle: this packet can start transmitting on arrival.
		p.linkFree = pkt.Arrival
	}
	p.occupancy += cells
	p.queued++
	cls := p.class(pkt)
	p.classOcc[cls] += cells
	// enq_qdepth is the level the packet brought its queue to (the l2 of
	// the paper's queue monitor, Figure 7: "packet B brings the queue from
	// a depth of 2 to 5 units") — per class, as on Tofino; with a single
	// queue this is the port occupancy.
	pkt.Meta.EnqTimestamp = pkt.Arrival
	pkt.Meta.EnqQdepth = p.classOcc[cls]
	if p.occupancy > p.stats.MaxDepth {
		p.stats.MaxDepth = p.occupancy
	}
	p.stats.Enqueued++
	p.disc.push(pkt)
	for _, h := range p.ingress {
		h.OnEnqueue(pkt)
	}
	// The head packet might be this one if the link is free.
	p.advance(pkt.Arrival)
}

// AdvanceTo processes the passage of time without a new arrival: every
// packet whose transmission can start at or before t is dequeued. Closed-
// loop drivers (tcpsim) use it so ACK clocks keep ticking between
// arrivals. Times before the port's current clock are ignored.
func (p *Port) AdvanceTo(t uint64) {
	if t > p.now {
		p.advance(t)
	}
}

// Flush drains every buffered packet regardless of time, advancing the clock
// to the final transmission.
func (p *Port) Flush() {
	p.advance(math.MaxUint64)
	p.now = p.linkFree
}

// Switch is a set of independently simulated egress ports.
type Switch struct {
	ports []*Port
}

// NewSwitch builds a switch with n identical ports. n must be >= 1.
func NewSwitch(n int, cfg PortConfig) (*Switch, error) {
	if n < 1 {
		return nil, fmt.Errorf("switchsim: need at least one port, got %d", n)
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	s := &Switch{ports: make([]*Port, n)}
	for i := range s.ports {
		s.ports[i] = &Port{
			cfg:      cfg,
			id:       i,
			disc:     cfg.newDiscipline(),
			classOcc: make([]int, cfg.Queues),
		}
	}
	return s, nil
}

// Ports returns the number of ports.
func (s *Switch) Ports() int { return len(s.ports) }

// Port returns port i.
func (s *Switch) Port(i int) *Port { return s.ports[i] }

// Inject routes a packet to its egress port (pkt.Port). Arrivals must be
// non-decreasing per port.
func (s *Switch) Inject(pkt *pktrec.Packet) {
	if pkt.Port < 0 || pkt.Port >= len(s.ports) {
		panic(fmt.Sprintf("switchsim: packet for unknown port %d", pkt.Port))
	}
	s.ports[pkt.Port].Enqueue(pkt)
}

// Flush drains every port.
func (s *Switch) Flush() {
	for _, p := range s.ports {
		p.Flush()
	}
}
