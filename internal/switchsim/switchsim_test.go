package switchsim

import (
	"math/rand/v2"
	"testing"

	"printqueue/internal/flow"
	"printqueue/internal/pktrec"
)

func fkey(n byte) flow.Key {
	return flow.Key{SrcIP: [4]byte{10, 0, 0, n}, DstIP: [4]byte{10, 0, 1, 1}, SrcPort: 1, DstPort: 2, Proto: flow.ProtoTCP}
}

func pkt(f byte, bytes int, arrival uint64) *pktrec.Packet {
	return &pktrec.Packet{Flow: fkey(f), Bytes: bytes, Arrival: arrival}
}

// collect gathers dequeues in order.
type collect struct{ got []*pktrec.Packet }

func (c *collect) OnDequeue(p *pktrec.Packet) {
	cp := *p
	c.got = append(c.got, &cp)
}

func onePort(t *testing.T, cfg PortConfig) (*Switch, *Port, *collect) {
	t.Helper()
	sw, err := NewSwitch(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := &collect{}
	sw.Port(0).AddEgressHook(c)
	return sw, sw.Port(0), c
}

// TestFIFOTimestamps hand-computes the drain schedule: 1 Gbps link = 8 ns
// per byte; a 125-byte packet takes 1000 ns.
func TestFIFOTimestamps(t *testing.T) {
	sw, port, c := onePort(t, PortConfig{LinkBps: 1e9})
	sw.Inject(pkt(1, 125, 0))    // tx 0..1000
	sw.Inject(pkt(2, 125, 100))  // waits; tx 1000..2000
	sw.Inject(pkt(3, 125, 2500)) // idle link; tx 2500..3500
	port.Flush()

	// Occupancy excludes the packet being serialized: packet 1 dequeues
	// (starts transmitting) at t=0, so packet 2 sees only its own cells.
	want := []struct {
		enq, deq uint64
		depth    int
	}{
		{0, 0, pktrec.Cells(125)},
		{100, 1000, pktrec.Cells(125)},
		{2500, 2500, pktrec.Cells(125)},
	}
	if len(c.got) != 3 {
		t.Fatalf("dequeued %d packets, want 3", len(c.got))
	}
	for i, w := range want {
		g := c.got[i]
		if g.Meta.EnqTimestamp != w.enq {
			t.Errorf("pkt %d enq = %d, want %d", i, g.Meta.EnqTimestamp, w.enq)
		}
		if g.Meta.DeqTimestamp() != w.deq {
			t.Errorf("pkt %d deq = %d, want %d", i, g.Meta.DeqTimestamp(), w.deq)
		}
		if g.Meta.EnqQdepth != w.depth {
			t.Errorf("pkt %d depth = %d, want %d", i, g.Meta.EnqQdepth, w.depth)
		}
	}
}

func TestDequeueOrderAndTimes(t *testing.T) {
	sw, port, c := onePort(t, PortConfig{LinkBps: 10e9})
	var ts uint64
	for i := 0; i < 1000; i++ {
		ts += 50 // offered ~2x the 10 Gbps line rate for 125 B packets
		sw.Inject(pkt(byte(i%7), 125, ts))
	}
	port.Flush()
	if len(c.got) != 1000 {
		t.Fatalf("dequeued %d, want 1000", len(c.got))
	}
	var prev uint64
	for i, g := range c.got {
		d := g.Meta.DeqTimestamp()
		if d < prev {
			t.Fatalf("pkt %d dequeue time went backwards: %d < %d", i, d, prev)
		}
		if d < g.Meta.EnqTimestamp {
			t.Fatalf("pkt %d dequeued before enqueue", i)
		}
		prev = d
	}
	// Conservation: egress bytes spaced at line rate while busy.
	st := port.Stats()
	if st.Dequeued != 1000 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBufferDrops(t *testing.T) {
	// 10 cells of buffer; each 125 B packet takes 2 cells; the link is so
	// slow nothing drains.
	sw, port, c := onePort(t, PortConfig{LinkBps: 1e6, BufferCells: 10})
	drops := 0
	sw.Port(0).AddDropHook(dropFunc(func(p *pktrec.Packet) { drops++ }))
	for i := 0; i < 8; i++ {
		sw.Inject(pkt(1, 125, uint64(i)+1))
	}
	// The first packet starts transmitting immediately (doesn't occupy);
	// the next five fill the 10-cell buffer; the last two drop.
	if port.Stats().Dropped != 2 || drops != 2 {
		t.Fatalf("dropped %d (hook %d), want 2", port.Stats().Dropped, drops)
	}
	port.Flush()
	if len(c.got) != 6 {
		t.Fatalf("dequeued %d, want 6", len(c.got))
	}
}

type dropFunc func(*pktrec.Packet)

func (f dropFunc) OnDrop(p *pktrec.Packet) { f(p) }

func TestStrictPriority(t *testing.T) {
	sw, err := NewSwitch(1, PortConfig{LinkBps: 1e9, Queues: 2, Scheduler: StrictPriority})
	if err != nil {
		t.Fatal(err)
	}
	c := &collect{}
	sw.Port(0).AddEgressHook(c)
	// While a packet transmits (0..1000), enqueue low then high priority;
	// the high-priority one must dequeue first despite arriving later.
	sw.Inject(&pktrec.Packet{Flow: fkey(0), Bytes: 125, Arrival: 0, Queue: 0})
	sw.Inject(&pktrec.Packet{Flow: fkey(1), Bytes: 125, Arrival: 10, Queue: 1}) // low
	sw.Inject(&pktrec.Packet{Flow: fkey(2), Bytes: 125, Arrival: 20, Queue: 0}) // high
	sw.Port(0).Flush()
	order := []byte{0, 2, 1}
	for i, want := range order {
		if c.got[i].Flow != fkey(want) {
			t.Fatalf("dequeue %d = %v, want flow %d", i, c.got[i].Flow, want)
		}
	}
	// The victim (low priority) was directly delayed by the later
	// high-priority packet — the paper's Figure 1 situation.
	if c.got[2].Meta.DeqTimestamp() != 2000 {
		t.Fatalf("low-priority deq = %d, want 2000", c.got[2].Meta.DeqTimestamp())
	}
}

func TestFIFOConfigNormalizesQueues(t *testing.T) {
	sw, err := NewSwitch(1, PortConfig{LinkBps: 1e9, Queues: 8, Scheduler: FIFO})
	if err != nil {
		t.Fatal(err)
	}
	if got := sw.Port(0).Config().Queues; got != 1 {
		t.Fatalf("FIFO queues = %d, want 1", got)
	}
	// Out-of-range queue indices are clamped, not dropped.
	c := &collect{}
	sw.Port(0).AddEgressHook(c)
	sw.Inject(&pktrec.Packet{Flow: fkey(1), Bytes: 64, Arrival: 1, Queue: 5})
	sw.Port(0).Flush()
	if len(c.got) != 1 {
		t.Fatal("packet with out-of-range queue lost")
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := NewSwitch(0, PortConfig{LinkBps: 1e9}); err == nil {
		t.Error("0 ports accepted")
	}
	if _, err := NewSwitch(1, PortConfig{}); err == nil {
		t.Error("zero link rate accepted")
	}
	if _, err := NewSwitch(1, PortConfig{LinkBps: 1e9, BufferCells: -1}); err == nil {
		t.Error("negative buffer accepted")
	}
}

func TestOutOfOrderArrivalPanics(t *testing.T) {
	sw, _, _ := onePort(t, PortConfig{LinkBps: 1e9})
	sw.Inject(pkt(1, 64, 100))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on time-travel arrival")
		}
	}()
	sw.Inject(pkt(2, 64, 50))
}

func TestUnknownPortPanics(t *testing.T) {
	sw, _, _ := onePort(t, PortConfig{LinkBps: 1e9})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown port")
		}
	}()
	p := pkt(1, 64, 0)
	p.Port = 3
	sw.Inject(p)
}

func TestMultiPortIsolation(t *testing.T) {
	sw, err := NewSwitch(2, PortConfig{LinkBps: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	c0, c1 := &collect{}, &collect{}
	sw.Port(0).AddEgressHook(c0)
	sw.Port(1).AddEgressHook(c1)
	// Saturate port 0; port 1 stays idle and must see zero delay.
	for i := 0; i < 100; i++ {
		p := pkt(1, 125, uint64(i*100))
		sw.Inject(p)
	}
	p := pkt(2, 125, 5000)
	p.Port = 1
	sw.Inject(p)
	sw.Flush()
	if len(c1.got) != 1 || c1.got[0].Meta.DeqTimedelta != 0 {
		t.Fatalf("idle port delayed its packet: %+v", c1.got)
	}
	if len(c0.got) != 100 {
		t.Fatalf("port 0 dequeued %d, want 100", len(c0.got))
	}
}

func TestOccupancyAccounting(t *testing.T) {
	sw, port, _ := onePort(t, PortConfig{LinkBps: 1e6})
	sw.Inject(pkt(1, 80, 1))  // 1 cell
	sw.Inject(pkt(2, 81, 2))  // 2 cells
	sw.Inject(pkt(3, 160, 3)) // 2 cells
	// First packet starts transmitting at t=1 (leaves the queue), so the
	// occupancy holds the remaining two.
	if got := port.Depth(); got != 4 {
		t.Fatalf("Depth = %d cells, want 4", got)
	}
	if got := port.QueuedPackets(); got != 2 {
		t.Fatalf("QueuedPackets = %d, want 2", got)
	}
	port.Flush()
	if port.Depth() != 0 || port.QueuedPackets() != 0 {
		t.Fatalf("queue not empty after flush: %d cells", port.Depth())
	}
}

func TestSchedulerString(t *testing.T) {
	if FIFO.String() != "fifo" || StrictPriority.String() != "strict-priority" {
		t.Fatal("scheduler names changed")
	}
	if Scheduler(99).String() == "" {
		t.Fatal("unknown scheduler has empty name")
	}
}

func TestTxDelayRounding(t *testing.T) {
	sw, _, c := onePort(t, PortConfig{LinkBps: 1e12}) // 1 Tbps: sub-ns serialization
	sw.Inject(pkt(1, 1, 0))
	sw.Inject(pkt(2, 1, 0))
	sw.Port(0).Flush()
	// Serialization is clamped to >= 1 ns so time always advances.
	if c.got[1].Meta.DeqTimestamp() != c.got[0].Meta.DeqTimestamp()+1 {
		t.Fatalf("deq times %d, %d: want 1 ns spacing",
			c.got[0].Meta.DeqTimestamp(), c.got[1].Meta.DeqTimestamp())
	}
}

// TestConservation property-checks the traffic manager's bookkeeping under
// random traffic and every discipline: every accepted packet dequeues
// exactly once, bytes are conserved, and occupancy returns to zero.
func TestConservation(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 20; trial++ {
		sched := []Scheduler{FIFO, StrictPriority, DRR, PIFO}[trial%4]
		sw, err := NewSwitch(1, PortConfig{
			LinkBps:     1e9 + uint64(rng.IntN(9e9)),
			BufferCells: 500 + rng.IntN(5000),
			Queues:      1 + rng.IntN(3),
			Scheduler:   sched,
		})
		if err != nil {
			t.Fatal(err)
		}
		var outBytes, inBytes, dropBytes uint64
		sw.Port(0).AddEgressHook(EgressFunc(func(p *pktrec.Packet) {
			outBytes += uint64(p.Bytes)
		}))
		sw.Port(0).AddDropHook(dropFunc(func(p *pktrec.Packet) {
			dropBytes += uint64(p.Bytes)
		}))
		var ts uint64
		n := 2000 + rng.IntN(3000)
		for i := 0; i < n; i++ {
			ts += uint64(rng.IntN(2000))
			b := 64 + rng.IntN(1437)
			inBytes += uint64(b)
			sw.Inject(&pktrec.Packet{
				Flow:    fkey(byte(i)),
				Bytes:   b,
				Arrival: ts,
				Queue:   rng.IntN(3),
			})
		}
		sw.Flush()
		st := sw.Port(0).Stats()
		if st.Enqueued+st.Dropped != n {
			t.Fatalf("%v: %d enq + %d drop != %d offered", sched, st.Enqueued, st.Dropped, n)
		}
		if st.Dequeued != st.Enqueued {
			t.Fatalf("%v: %d dequeued != %d enqueued", sched, st.Dequeued, st.Enqueued)
		}
		if outBytes+dropBytes != inBytes {
			t.Fatalf("%v: bytes out %d + dropped %d != in %d", sched, outBytes, dropBytes, inBytes)
		}
		if st.BytesOut != outBytes {
			t.Fatalf("%v: stats bytes %d != hook bytes %d", sched, st.BytesOut, outBytes)
		}
		if sw.Port(0).Depth() != 0 || sw.Port(0).QueuedPackets() != 0 {
			t.Fatalf("%v: queue not empty after flush", sched)
		}
	}
}

// TestEnqueueHook checks ingress-side observation: accepted packets are
// seen with enqueue metadata, drops are not.
func TestEnqueueHook(t *testing.T) {
	sw, _, _ := onePort(t, PortConfig{LinkBps: 1e6, BufferCells: 4})
	var seen []int
	sw.Port(0).AddEnqueueHook(EnqueueFunc(func(p *pktrec.Packet) {
		if p.Meta.EnqTimestamp == 0 || p.Meta.EnqQdepth == 0 {
			t.Error("enqueue hook saw unstamped metadata")
		}
		seen = append(seen, p.Bytes)
	}))
	sw.Inject(pkt(1, 80, 1))  // transmits immediately: still an enqueue
	sw.Inject(pkt(2, 160, 2)) // queues
	sw.Inject(pkt(3, 160, 3)) // queues
	sw.Inject(pkt(4, 160, 4)) // exceeds the 4-cell buffer: dropped
	if len(seen) != 3 {
		t.Fatalf("enqueue hook saw %d packets, want 3", len(seen))
	}
}
