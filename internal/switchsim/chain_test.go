package switchsim

import (
	"testing"

	"printqueue/internal/pktrec"
)

// hopCollect records dequeues at every hop of a chain.
func attachCollectors(t *testing.T, c *Chain, port int) []*collect {
	t.Helper()
	out := make([]*collect, c.Hops())
	for k := 0; k < c.Hops(); k++ {
		out[k] = &collect{}
		c.Switch(k).Port(port).AddEgressHook(out[k])
	}
	return out
}

// TestChainForwarding: every packet that survives hop k arrives at hop
// k+1 exactly LinkDelayNs after its dequeue, with fresh metadata, on the
// same port.
func TestChainForwarding(t *testing.T) {
	const delay = 500
	c, err := NewChain(ChainConfig{
		Hops:        3,
		Ports:       1,
		Port:        PortConfig{LinkBps: 1e9},
		LinkDelayNs: delay,
	})
	if err != nil {
		t.Fatal(err)
	}
	cols := attachCollectors(t, c, 0)
	pkts := []pktrec.Packet{
		*pkt(1, 125, 0),
		*pkt(2, 125, 100),
		*pkt(3, 125, 2500),
	}
	c.Run(pkts, nil)
	for k := 0; k < 3; k++ {
		if got := len(cols[k].got); got != 3 {
			t.Fatalf("hop %d dequeued %d packets, want 3", k, got)
		}
	}
	// Hop k+1 arrivals are hop k dequeues plus the link delay.
	for k := 0; k < 2; k++ {
		for i, up := range cols[k].got {
			down := cols[k+1].got[i]
			if want := up.Meta.DeqTimestamp() + delay; down.Meta.EnqTimestamp != want {
				t.Fatalf("hop %d pkt %d: downstream enqueue at %d, want %d", k, i, down.Meta.EnqTimestamp, want)
			}
			if down.Flow != up.Flow || down.Bytes != up.Bytes || down.Port != up.Port {
				t.Fatalf("hop %d pkt %d mutated in flight: %+v vs %+v", k, i, down, up)
			}
		}
	}
	// Inputs were taken by value: the caller's slice keeps its original
	// (un-stamped) metadata.
	if pkts[0].Meta.DeqTimedelta != 0 && pkts[0].Meta.EnqTimestamp != 0 {
		t.Fatalf("Run mutated the caller's packets: %+v", pkts[0].Meta)
	}
}

// TestChainCrossTraffic: inject[k] merges hop-local traffic into the path
// at hop k, and it does not appear upstream.
func TestChainCrossTraffic(t *testing.T) {
	c, err := NewChain(ChainConfig{
		Hops:        3,
		Ports:       1,
		Port:        PortConfig{LinkBps: 1e9},
		LinkDelayNs: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	cols := attachCollectors(t, c, 0)
	path := []pktrec.Packet{*pkt(1, 125, 0)}
	cross := [][]pktrec.Packet{
		1: {*pkt(9, 125, 50), *pkt(9, 125, 60)}, // enters at the middle hop
	}
	c.Run(path, cross)
	if len(cols[0].got) != 1 {
		t.Fatalf("hop 0 saw %d packets, want only the path packet", len(cols[0].got))
	}
	if len(cols[1].got) != 3 {
		t.Fatalf("hop 1 saw %d packets, want path + 2 cross", len(cols[1].got))
	}
	if len(cols[2].got) != 3 {
		t.Fatalf("hop 2 saw %d packets, want everything forwarded", len(cols[2].got))
	}
	crossSeen := 0
	for _, p := range cols[1].got {
		if p.Flow == fkey(9) {
			crossSeen++
		}
	}
	if crossSeen != 2 {
		t.Fatalf("hop 1 saw %d cross-traffic packets, want 2", crossSeen)
	}
}

// TestChainPerHopConfig: a drop at an underprovisioned middle hop removes
// the packet from the rest of the path but not from earlier hops.
func TestChainPerHopConfig(t *testing.T) {
	wide := PortConfig{LinkBps: 1e9}
	// 10x slower and one packet deep: hop 0 spaces the burst by its own
	// serialization, but the narrow hop still can't drain fast enough.
	narrow := PortConfig{LinkBps: 1e8, BufferCells: pktrec.Cells(125)}
	c, err := NewChain(ChainConfig{
		Hops:        3,
		Ports:       1,
		PerHop:      []PortConfig{wide, narrow, wide},
		LinkDelayNs: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	cols := attachCollectors(t, c, 0)
	// A burst that fits the wide hops but overflows the narrow one: the
	// narrow hop holds one packet while another transmits, so the third
	// is tail-dropped.
	pkts := []pktrec.Packet{
		*pkt(1, 125, 0),
		*pkt(2, 125, 1),
		*pkt(3, 125, 2),
	}
	c.Run(pkts, nil)
	if len(cols[0].got) != 3 {
		t.Fatalf("hop 0 dequeued %d, want 3", len(cols[0].got))
	}
	if len(cols[1].got) >= 3 {
		t.Fatalf("narrow hop dequeued %d, want a tail drop", len(cols[1].got))
	}
	if len(cols[2].got) != len(cols[1].got) {
		t.Fatalf("hop 2 dequeued %d, want the narrow hop's survivors (%d)", len(cols[2].got), len(cols[1].got))
	}
	if drops := c.Switch(1).Port(0).Stats().Dropped; drops == 0 {
		t.Fatal("narrow hop recorded no drops")
	}
}

// TestChainMultiPort: packets keep their port across hops and ports stay
// independent.
func TestChainMultiPort(t *testing.T) {
	c, err := NewChain(ChainConfig{
		Hops:        2,
		Ports:       2,
		Port:        PortConfig{LinkBps: 1e9},
		LinkDelayNs: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	col0, col1 := &collect{}, &collect{}
	c.Switch(1).Port(0).AddEgressHook(col0)
	c.Switch(1).Port(1).AddEgressHook(col1)
	p0 := *pkt(1, 125, 0)
	p1 := *pkt(2, 125, 0)
	p1.Port = 1
	c.Run([]pktrec.Packet{p0, p1}, nil)
	if len(col0.got) != 1 || col0.got[0].Flow != fkey(1) {
		t.Fatalf("port 0 at hop 1: %+v", col0.got)
	}
	if len(col1.got) != 1 || col1.got[0].Flow != fkey(2) {
		t.Fatalf("port 1 at hop 1: %+v", col1.got)
	}
}

// TestChainConfigValidation rejects malformed topologies.
func TestChainConfigValidation(t *testing.T) {
	if _, err := NewChain(ChainConfig{Hops: 0, Ports: 1, Port: PortConfig{LinkBps: 1e9}}); err == nil {
		t.Fatal("zero hops accepted")
	}
	if _, err := NewChain(ChainConfig{Hops: 1, Ports: 0, Port: PortConfig{LinkBps: 1e9}}); err == nil {
		t.Fatal("zero ports accepted")
	}
	if _, err := NewChain(ChainConfig{Hops: 2, Ports: 1, PerHop: []PortConfig{{LinkBps: 1e9}}}); err == nil {
		t.Fatal("mismatched per-hop config accepted")
	}
	if _, err := NewChain(ChainConfig{Hops: 1, Ports: 1}); err == nil {
		t.Fatal("zero link rate accepted")
	}
}
