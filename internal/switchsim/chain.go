package switchsim

import (
	"fmt"
	"sort"

	"printqueue/internal/pktrec"
)

// ChainConfig describes a linear multi-switch topology: Hops switches,
// each with Ports egress ports, where everything hop k transmits on port
// p re-arrives at hop k+1 on port p after LinkDelayNs. This is the
// paper's diagnosis setting — one packet traverses several monitored
// switches, and a path-level query must correlate per-switch answers.
type ChainConfig struct {
	// Hops is the path length in switches (>= 1).
	Hops int
	// Ports per switch (>= 1). A forwarded packet keeps its port number.
	Ports int
	// Port is the per-hop port configuration.
	Port PortConfig
	// PerHop, when non-empty, overrides Port hop by hop (len == Hops) —
	// e.g. an underprovisioned middle hop to stage cross-switch
	// congestion.
	PerHop []PortConfig
	// LinkDelayNs is the propagation delay between adjacent hops.
	LinkDelayNs uint64
}

// Chain is a linear cascade of switches. Forwarding is buffered, not
// recursive: hop k runs to completion (so its per-port arrival order is
// established), then its egressed packets — re-timestamped to their
// arrival at hop k+1 and with fresh metadata — are sorted and injected
// into hop k+1. Buffering preserves the per-port non-decreasing-arrival
// invariant that direct hook-to-Enqueue chaining would violate, and lets
// per-hop cross-traffic merge into the path between hops.
type Chain struct {
	cfg ChainConfig
	sws []*Switch
	// fwd[k] accumulates packets egressing hop k, already rewritten for
	// hop k+1. Egress hooks must not retain their argument, so packets
	// are copied by value at the hook.
	fwd [][]pktrec.Packet
}

// NewChain builds the cascade and wires the forwarding hooks.
func NewChain(cfg ChainConfig) (*Chain, error) {
	if cfg.Hops < 1 {
		return nil, fmt.Errorf("switchsim: chain needs at least one hop, got %d", cfg.Hops)
	}
	if cfg.Ports < 1 {
		return nil, fmt.Errorf("switchsim: chain needs at least one port, got %d", cfg.Ports)
	}
	if len(cfg.PerHop) != 0 && len(cfg.PerHop) != cfg.Hops {
		return nil, fmt.Errorf("switchsim: %d per-hop configs for %d hops", len(cfg.PerHop), cfg.Hops)
	}
	c := &Chain{cfg: cfg, sws: make([]*Switch, cfg.Hops), fwd: make([][]pktrec.Packet, cfg.Hops)}
	for k := 0; k < cfg.Hops; k++ {
		pc := cfg.Port
		if len(cfg.PerHop) != 0 {
			pc = cfg.PerHop[k]
		}
		sw, err := NewSwitch(cfg.Ports, pc)
		if err != nil {
			return nil, fmt.Errorf("switchsim: chain hop %d: %w", k, err)
		}
		c.sws[k] = sw
		if k == cfg.Hops-1 {
			continue // the last hop egresses out of the monitored path
		}
		hop := k
		for p := 0; p < cfg.Ports; p++ {
			sw.Port(p).AddEgressHook(EgressFunc(func(pkt *pktrec.Packet) {
				np := *pkt // copy: hooks must not retain the packet
				np.Arrival = pkt.Meta.DeqTimestamp() + c.cfg.LinkDelayNs
				np.Meta = pktrec.Metadata{} // next hop stamps fresh telemetry
				c.fwd[hop] = append(c.fwd[hop], np)
			}))
		}
	}
	return c, nil
}

// Hops returns the path length.
func (c *Chain) Hops() int { return len(c.sws) }

// Switch returns hop k's switch, e.g. to attach monitors before Run.
func (c *Chain) Switch(k int) *Switch { return c.sws[k] }

// Run replays pkts through the cascade: the schedule enters hop 0, each
// hop is drained completely, and its egress (plus hop-local cross-traffic
// from inject[k], when provided) feeds the next hop. Packets are taken by
// value — Run owns its copies, so callers can reuse the inputs. Dropped
// packets leave the path at the hop that dropped them. A Chain is
// single-shot: monitors accumulate one run's worth of state.
func (c *Chain) Run(pkts []pktrec.Packet, inject [][]pktrec.Packet) {
	cur := append([]pktrec.Packet(nil), pkts...)
	for k := range c.sws {
		if k < len(inject) {
			cur = append(cur, inject[k]...)
		}
		// Per-port arrivals must be non-decreasing; a global stable sort
		// by arrival establishes that and keeps ties deterministic.
		sort.SliceStable(cur, func(i, j int) bool { return cur[i].Arrival < cur[j].Arrival })
		c.fwd[k] = c.fwd[k][:0]
		for i := range cur {
			c.sws[k].Inject(&cur[i])
		}
		c.sws[k].Flush()
		cur = append([]pktrec.Packet(nil), c.fwd[k]...)
	}
}
