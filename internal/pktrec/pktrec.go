// Package pktrec defines the per-packet record that flows through the
// simulated switch, the Tofino-style intrinsic metadata PrintQueue consumes
// (paper Table 1), and the telemetry header the paper's testbed inserts to
// capture ground truth.
package pktrec

import (
	"encoding/binary"
	"fmt"

	"printqueue/internal/flow"
)

// CellBytes is the buffer allocation granule of the modelled traffic manager.
// Tofino accounts buffer occupancy in 80-byte cells; the paper's
// "queue depth (10^3)" axes are in these units.
const CellBytes = 80

// MinPacketBytes is the minimum Ethernet frame size; the paper derives
// m0 = floor(log2(min_pkt_tx_delay)) from the transmission delay of a
// minimum-sized (64 B) packet.
const MinPacketBytes = 64

// MTUBytes is the maximum frame size used by the WS/DM workloads.
const MTUBytes = 1500

// Cells returns the buffer cells occupied by a packet of the given size,
// i.e. ceil(bytes/CellBytes), minimum 1.
func Cells(bytes int) int {
	if bytes <= 0 {
		return 1
	}
	return (bytes + CellBytes - 1) / CellBytes
}

// Packet is one packet traversing the simulated switch. Arrival carries the
// ingress timestamp; the traffic manager fills the queueing metadata at
// enqueue/dequeue time.
type Packet struct {
	Flow    flow.Key
	Bytes   int    // wire size including headers
	Arrival uint64 // ingress timestamp, ns
	Port    int    // egress_spec: output port
	Queue   int    // egress queue (priority class) within the port; 0 = highest

	Meta Metadata // filled by the traffic manager
}

// Metadata mirrors the intrinsic metadata PrintQueue requires (Table 1 of
// the paper) as provided by Tofino and BMv2.
type Metadata struct {
	EnqTimestamp uint64 // ns timestamp at enqueue
	DeqTimedelta uint64 // ns spent in the queue
	EnqQdepth    int    // queue depth in cells observed at enqueue
	Dropped      bool   // true if the traffic manager tail-dropped the packet
}

// DeqTimestamp returns the dequeue time, computed exactly as the paper does:
// enq_timestamp + deq_timedelta.
func (m Metadata) DeqTimestamp() uint64 { return m.EnqTimestamp + m.DeqTimedelta }

// TelemetryWireSize is the encoded size of a telemetry header.
const TelemetryWireSize = flow.KeyWireSize + 8 + 8 + 4 + 4 + 2

// Telemetry is the ground-truth header the paper's switch prepends to every
// packet in the testbed ("this header is not required in a real PrintQueue
// deployment — only to compute our evaluation metrics"). The receiver logs
// these records; the scorer replays them.
type Telemetry struct {
	Flow         flow.Key
	EnqTimestamp uint64
	DeqTimedelta uint64
	EnqQdepth    uint32
	Port         uint16
	Bytes        uint32
}

// FromPacket builds the telemetry record for a dequeued packet.
func FromPacket(p *Packet) Telemetry {
	return Telemetry{
		Flow:         p.Flow,
		EnqTimestamp: p.Meta.EnqTimestamp,
		DeqTimedelta: p.Meta.DeqTimedelta,
		EnqQdepth:    uint32(p.Meta.EnqQdepth),
		Port:         uint16(p.Port),
		Bytes:        uint32(p.Bytes),
	}
}

// DeqTimestamp returns the dequeue time of the recorded packet.
func (t Telemetry) DeqTimestamp() uint64 { return t.EnqTimestamp + t.DeqTimedelta }

// AppendBinary appends the fixed-width wire encoding of t to b.
func (t Telemetry) AppendBinary(b []byte) []byte {
	b = t.Flow.AppendBinary(b)
	b = binary.BigEndian.AppendUint64(b, t.EnqTimestamp)
	b = binary.BigEndian.AppendUint64(b, t.DeqTimedelta)
	b = binary.BigEndian.AppendUint32(b, t.EnqQdepth)
	b = binary.BigEndian.AppendUint32(b, t.Bytes)
	return binary.BigEndian.AppendUint16(b, t.Port)
}

// DecodeTelemetry decodes a record encoded with AppendBinary, returning the
// record and the remaining bytes.
func DecodeTelemetry(b []byte) (Telemetry, []byte, error) {
	var t Telemetry
	if len(b) < TelemetryWireSize {
		return t, b, fmt.Errorf("pktrec: short telemetry encoding (%d bytes)", len(b))
	}
	var err error
	t.Flow, b, err = flow.DecodeKey(b)
	if err != nil {
		return t, b, err
	}
	t.EnqTimestamp = binary.BigEndian.Uint64(b[0:8])
	t.DeqTimedelta = binary.BigEndian.Uint64(b[8:16])
	t.EnqQdepth = binary.BigEndian.Uint32(b[16:20])
	t.Bytes = binary.BigEndian.Uint32(b[20:24])
	t.Port = binary.BigEndian.Uint16(b[24:26])
	return t, b[26:], nil
}
