package pktrec

import (
	"testing"
	"testing/quick"

	"printqueue/internal/flow"
)

func TestCells(t *testing.T) {
	tests := []struct{ bytes, want int }{
		{-1, 1}, {0, 1}, {1, 1}, {79, 1}, {80, 1}, {81, 2}, {160, 2}, {161, 3},
		{1500, 19}, // MTU = 19 cells, the WS/DM granule
		{64, 1},
	}
	for _, tt := range tests {
		if got := Cells(tt.bytes); got != tt.want {
			t.Errorf("Cells(%d) = %d, want %d", tt.bytes, got, tt.want)
		}
	}
}

func TestDeqTimestamp(t *testing.T) {
	m := Metadata{EnqTimestamp: 100, DeqTimedelta: 250}
	if got := m.DeqTimestamp(); got != 350 {
		t.Fatalf("DeqTimestamp = %d, want 350", got)
	}
}

func TestTelemetryRoundTrip(t *testing.T) {
	f := func(src, dst [4]byte, sp, dp uint16, enq, delta uint64, depth, bytes uint32, port uint16) bool {
		tel := Telemetry{
			Flow:         flow.Key{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: flow.ProtoTCP},
			EnqTimestamp: enq,
			DeqTimedelta: delta,
			EnqQdepth:    depth,
			Bytes:        bytes,
			Port:         port,
		}
		enc := tel.AppendBinary(nil)
		if len(enc) != TelemetryWireSize {
			return false
		}
		got, rest, err := DecodeTelemetry(enc)
		return err == nil && len(rest) == 0 && got == tel
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTelemetryShort(t *testing.T) {
	if _, _, err := DecodeTelemetry(make([]byte, TelemetryWireSize-1)); err == nil {
		t.Fatal("short decode succeeded")
	}
}

func TestFromPacket(t *testing.T) {
	p := &Packet{
		Flow:  flow.Key{SrcPort: 9},
		Bytes: 1500,
		Port:  3,
		Meta:  Metadata{EnqTimestamp: 10, DeqTimedelta: 5, EnqQdepth: 77},
	}
	tel := FromPacket(p)
	if tel.Flow != p.Flow || tel.EnqTimestamp != 10 || tel.DeqTimedelta != 5 ||
		tel.EnqQdepth != 77 || tel.Port != 3 || tel.Bytes != 1500 {
		t.Fatalf("FromPacket = %+v", tel)
	}
	if tel.DeqTimestamp() != 15 {
		t.Fatalf("DeqTimestamp = %d", tel.DeqTimestamp())
	}
}
