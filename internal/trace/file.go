package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"printqueue/internal/flow"
	"printqueue/internal/pktrec"
)

// Binary trace file format, the offline stand-in for the paper's pcap
// replays:
//
//	header:  magic "PQTR" | uint16 version | uint64 packet count
//	packet:  13-byte flow key | uint32 bytes | uint64 arrival ns
//	         | uint16 port | uint8 queue
//
// All integers are big-endian. Packets are stored in arrival order.

const (
	fileMagic   = "PQTR"
	fileVersion = 1
)

// WriteFile writes a packet schedule to w.
func WriteFile(w io.Writer, pkts []*pktrec.Packet) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	var hdr [10]byte
	binary.BigEndian.PutUint16(hdr[0:2], fileVersion)
	binary.BigEndian.PutUint64(hdr[2:10], uint64(len(pkts)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 0, flow.KeyWireSize+15)
	for _, p := range pkts {
		buf = buf[:0]
		buf = p.Flow.AppendBinary(buf)
		buf = binary.BigEndian.AppendUint32(buf, uint32(p.Bytes))
		buf = binary.BigEndian.AppendUint64(buf, p.Arrival)
		buf = binary.BigEndian.AppendUint16(buf, uint16(p.Port))
		buf = append(buf, byte(p.Queue))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFile reads a packet schedule from r.
func ReadFile(r io.Reader) ([]*pktrec.Packet, error) {
	br := bufio.NewReader(r)
	var hdr [14]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[0:4]) != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[0:4])
	}
	if v := binary.BigEndian.Uint16(hdr[4:6]); v != fileVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	count := binary.BigEndian.Uint64(hdr[6:14])
	const maxPackets = 1 << 31
	if count > maxPackets {
		return nil, fmt.Errorf("trace: implausible packet count %d", count)
	}
	pkts := make([]*pktrec.Packet, 0, count)
	rec := make([]byte, flow.KeyWireSize+15)
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("trace: packet %d: %w", i, err)
		}
		key, rest, err := flow.DecodeKey(rec)
		if err != nil {
			return nil, err
		}
		pkts = append(pkts, &pktrec.Packet{
			Flow:    key,
			Bytes:   int(binary.BigEndian.Uint32(rest[0:4])),
			Arrival: binary.BigEndian.Uint64(rest[4:12]),
			Port:    int(binary.BigEndian.Uint16(rest[12:14])),
			Queue:   int(rest[14]),
		})
	}
	return pkts, nil
}
