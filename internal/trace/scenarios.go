package trace

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"printqueue/internal/flow"
	"printqueue/internal/pktrec"
)

// This file builds the paper's motivating scenarios as explicit packet
// schedules: a microburst, a TCP-incast-style synchronized burst, and the
// §7.2 case study (long-lived background traffic, a short datagram burst,
// and a late low-rate TCP flow whose packets become the victims).

// PacedFlow emits packets of one flow at a constant average rate with
// optional exponential jitter.
type PacedFlow struct {
	Flow flow.Key
	// RateBps is the flow's average sending rate on the wire.
	RateBps float64
	// PacketBytes is the wire size of each packet.
	PacketBytes int
	// StartNs is the first packet's arrival time.
	StartNs uint64
	// Packets is the number of packets to emit; 0 means emit until EndNs.
	Packets int
	// EndNs stops emission (0 = no time bound; Packets must then be set).
	EndNs uint64
	// JitterFrac adds +/- jitter to each gap: the gap is drawn uniformly
	// in [gap*(1-J), gap*(1+J)]. 0 means perfectly paced.
	JitterFrac float64
	// Queue is the priority class stamped on the packets.
	Queue int
}

// emit appends the flow's packets for port to out.
func (pf PacedFlow) emit(out []*pktrec.Packet, port int, rng *rand.Rand) ([]*pktrec.Packet, error) {
	if pf.RateBps <= 0 || pf.PacketBytes <= 0 {
		return nil, fmt.Errorf("trace: paced flow needs positive rate and packet size")
	}
	if pf.Packets == 0 && pf.EndNs == 0 {
		return nil, fmt.Errorf("trace: paced flow needs Packets or EndNs")
	}
	gap := float64(pf.PacketBytes) * 8 * 1e9 / pf.RateBps
	t := float64(pf.StartNs)
	for i := 0; pf.Packets == 0 || i < pf.Packets; i++ {
		if pf.EndNs > 0 && uint64(t) > pf.EndNs {
			break
		}
		out = append(out, &pktrec.Packet{
			Flow:    pf.Flow,
			Bytes:   pf.PacketBytes,
			Arrival: uint64(t),
			Port:    port,
			Queue:   pf.Queue,
		})
		g := gap
		if pf.JitterFrac > 0 {
			g = gap * (1 - pf.JitterFrac + 2*pf.JitterFrac*rng.Float64())
		}
		if g < 1 {
			g = 1
		}
		t += g
	}
	return out, nil
}

// Schedule merges paced flows into one arrival-ordered packet stream for a
// port. The sort is stable so same-timestamp packets keep flow order.
func Schedule(port int, seed uint64, flows ...PacedFlow) ([]*pktrec.Packet, error) {
	rng := rand.New(rand.NewPCG(seed, 0x243f6a8885a308d3))
	var out []*pktrec.Packet
	var err error
	for _, pf := range flows {
		out, err = pf.emit(out, port, rng)
		if err != nil {
			return nil, err
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Arrival < out[j].Arrival })
	return out, nil
}

// hostKey builds a deterministic 5-tuple for scenario hosts.
func hostKey(host, dst int, port uint16, proto flow.Proto) flow.Key {
	return flow.Key{
		SrcIP:   [4]byte{10, 1, byte(host >> 8), byte(host)},
		DstIP:   [4]byte{10, 2, byte(dst >> 8), byte(dst)},
		SrcPort: 40000 + port,
		DstPort: 5001,
		Proto:   proto,
	}
}

// MicroburstConfig describes a single microburst riding on light background
// traffic — the Figure-1 congestion regime.
type MicroburstConfig struct {
	Port    int
	LinkBps uint64
	Seed    uint64
	// BackgroundBps is the long-lived background flow's rate (below line
	// rate so the queue stays near-empty outside the burst).
	BackgroundBps float64
	// BurstFlows senders each blast BurstPackets packets of BurstBytes at
	// BurstBps starting at BurstStartNs.
	BurstFlows   int
	BurstPackets int
	BurstBytes   int
	BurstBps     float64
	BurstStartNs uint64
	// DurationNs is the total schedule length.
	DurationNs uint64
}

// Microburst builds the scenario's packet schedule. It returns the packets
// and the background flow's key (whose post-burst packets are natural
// victims).
func Microburst(cfg MicroburstConfig) ([]*pktrec.Packet, flow.Key, error) {
	if cfg.LinkBps == 0 || cfg.DurationNs == 0 {
		return nil, flow.Zero, fmt.Errorf("trace: microburst needs LinkBps and DurationNs")
	}
	if cfg.BackgroundBps <= 0 {
		cfg.BackgroundBps = 0.5 * float64(cfg.LinkBps)
	}
	if cfg.BurstFlows <= 0 {
		cfg.BurstFlows = 8
	}
	if cfg.BurstPackets <= 0 {
		cfg.BurstPackets = 200
	}
	if cfg.BurstBytes <= 0 {
		cfg.BurstBytes = pktrec.MTUBytes
	}
	if cfg.BurstBps <= 0 {
		cfg.BurstBps = 2 * float64(cfg.LinkBps) / float64(cfg.BurstFlows)
	}
	bg := hostKey(1, 1, 1, flow.ProtoTCP)
	flows := []PacedFlow{{
		Flow:        bg,
		RateBps:     cfg.BackgroundBps,
		PacketBytes: pktrec.MTUBytes,
		JitterFrac:  0.2,
		EndNs:       cfg.DurationNs,
	}}
	for i := 0; i < cfg.BurstFlows; i++ {
		flows = append(flows, PacedFlow{
			Flow:        hostKey(100+i, 1, uint16(i), flow.ProtoUDP),
			RateBps:     cfg.BurstBps,
			PacketBytes: cfg.BurstBytes,
			StartNs:     cfg.BurstStartNs,
			Packets:     cfg.BurstPackets,
			JitterFrac:  0.1,
		})
	}
	pkts, err := Schedule(cfg.Port, cfg.Seed, flows...)
	return pkts, bg, err
}

// IncastConfig describes synchronized senders converging on one port — the
// paper's motivating example for indirect culprits ("the entire burst
// containing a single application's traffic").
type IncastConfig struct {
	Port    int
	LinkBps uint64
	Seed    uint64
	// Senders respond simultaneously at StartNs (+- SyncJitterNs each)
	// with ResponseBytes each, paced at SenderBps.
	Senders       int
	ResponseBytes int
	SenderBps     float64
	StartNs       uint64
	SyncJitterNs  uint64
	// ProbeBps adds a low-rate foreground flow whose packets act as
	// victims. DurationNs bounds the schedule.
	ProbeBps   float64
	DurationNs uint64
}

// Incast builds the scenario and returns the packets, the probe flow's key,
// and the set of incast (application) flow keys.
func Incast(cfg IncastConfig) ([]*pktrec.Packet, flow.Key, []flow.Key, error) {
	if cfg.LinkBps == 0 || cfg.DurationNs == 0 {
		return nil, flow.Zero, nil, fmt.Errorf("trace: incast needs LinkBps and DurationNs")
	}
	if cfg.Senders <= 0 {
		cfg.Senders = 32
	}
	if cfg.ResponseBytes <= 0 {
		cfg.ResponseBytes = 64 * 1024
	}
	if cfg.SenderBps <= 0 {
		cfg.SenderBps = float64(cfg.LinkBps) / 8
	}
	if cfg.ProbeBps <= 0 {
		cfg.ProbeBps = 0.02 * float64(cfg.LinkBps)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x452821e638d01377))
	probe := hostKey(1, 1, 1, flow.ProtoTCP)
	flows := []PacedFlow{{
		Flow:        probe,
		RateBps:     cfg.ProbeBps,
		PacketBytes: pktrec.MTUBytes,
		JitterFrac:  0.2,
		EndNs:       cfg.DurationNs,
	}}
	var app []flow.Key
	pktsPerSender := (cfg.ResponseBytes + pktrec.MTUBytes - 1) / pktrec.MTUBytes
	for i := 0; i < cfg.Senders; i++ {
		k := hostKey(200+i, 1, uint16(i), flow.ProtoTCP)
		app = append(app, k)
		start := cfg.StartNs
		if cfg.SyncJitterNs > 0 {
			start += uint64(rng.Int64N(int64(cfg.SyncJitterNs)))
		}
		flows = append(flows, PacedFlow{
			Flow:        k,
			RateBps:     cfg.SenderBps,
			PacketBytes: pktrec.MTUBytes,
			StartNs:     start,
			Packets:     pktsPerSender,
			JitterFrac:  0.05,
		})
	}
	pkts, err := Schedule(cfg.Port, cfg.Seed, flows...)
	return pkts, probe, app, err
}

// CaseStudyConfig reproduces the §7.2 experiment: a long-lived TCP
// background flow near line rate, a short high-rate UDP datagram burst that
// fills the queue, and a later low-rate TCP flow whose first packets suffer
// the leftover queuing.
type CaseStudyConfig struct {
	Port    int
	LinkBps uint64 // paper: 10 Gbps
	Seed    uint64
	// BackgroundBps: paper ~9 Gbps ("limited to ~90% of link capacity").
	BackgroundBps float64
	// Burst: paper sends 10000 datagrams at 4 Gbps.
	BurstPackets int
	BurstBps     float64
	BurstBytes   int
	BurstStartNs uint64
	// NewTCPBps: paper 0.5 Gbps, starting after the burst.
	NewTCPBps     float64
	NewTCPStartNs uint64
	DurationNs    uint64
}

// CaseStudyFlows names the three principals of the case study.
type CaseStudyFlows struct {
	Background flow.Key
	Burst      flow.Key
	NewTCP     flow.Key
}

// DefaultCaseStudy returns the paper's §7.2 parameters, time-scaled by
// scale (1.0 = paper scale: 10 Gbps link, 10000 datagrams, ~5 ms burst).
func DefaultCaseStudy(scale float64) CaseStudyConfig {
	if scale <= 0 {
		scale = 1
	}
	// The paper's background is real TCP pinned near 90% of capacity whose
	// congestion control keeps the buffer occupied for 376 ms after a 5 ms
	// burst. With open-loop senders the same persistence needs the
	// steady-state slack to be a sliver of line rate: 9.9 Gbps background
	// and a 50 Mbps late flow leave ~0.05 Gbps of drain, stretching the
	// burst's 2.4 MB of backlog over ~300 ms (~60x the burst duration).
	return CaseStudyConfig{
		LinkBps:       10e9,
		Seed:          7,
		BackgroundBps: 9.9e9,
		BurstPackets:  int(10000 * scale),
		BurstBps:      4e9,
		BurstBytes:    250,
		BurstStartNs:  uint64(10e6 * scale),
		NewTCPBps:     0.05e9,
		NewTCPStartNs: uint64(40e6 * scale),
		DurationNs:    uint64(500e6 * scale),
	}
}

// CaseStudy builds the packet schedule and returns the principal flows.
func CaseStudy(cfg CaseStudyConfig) ([]*pktrec.Packet, CaseStudyFlows, error) {
	if cfg.LinkBps == 0 || cfg.DurationNs == 0 {
		return nil, CaseStudyFlows{}, fmt.Errorf("trace: case study needs LinkBps and DurationNs")
	}
	fs := CaseStudyFlows{
		Background: hostKey(1, 1, 1, flow.ProtoTCP),
		Burst:      hostKey(2, 1, 2, flow.ProtoUDP),
		NewTCP:     hostKey(3, 1, 3, flow.ProtoTCP),
	}
	pkts, err := Schedule(cfg.Port, cfg.Seed,
		PacedFlow{
			Flow:        fs.Background,
			RateBps:     cfg.BackgroundBps,
			PacketBytes: pktrec.MTUBytes,
			JitterFrac:  0.05,
			EndNs:       cfg.DurationNs,
		},
		PacedFlow{
			Flow:        fs.Burst,
			RateBps:     cfg.BurstBps,
			PacketBytes: cfg.BurstBytes,
			StartNs:     cfg.BurstStartNs,
			Packets:     cfg.BurstPackets,
			JitterFrac:  0.02,
		},
		PacedFlow{
			Flow:        fs.NewTCP,
			RateBps:     cfg.NewTCPBps,
			PacketBytes: pktrec.MTUBytes,
			StartNs:     cfg.NewTCPStartNs,
			JitterFrac:  0.05,
			EndNs:       cfg.DurationNs,
		},
	)
	return pkts, fs, err
}
