package trace

import (
	"testing"

	"printqueue/internal/flow"
	"printqueue/internal/pktrec"
)

func baseCfg(w Workload) Config {
	return Config{
		Workload: w,
		Seed:     1,
		LinkBps:  10e9,
		Packets:  20000,
		Episodic: true,
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewGenerator(Config{LinkBps: 0, Packets: 10}); err == nil {
		t.Error("zero link rate accepted")
	}
	if _, err := NewGenerator(Config{LinkBps: 1e9}); err == nil {
		t.Error("unbounded trace accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Generate(baseCfg(UW))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(baseCfg(UW))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("packet %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	cfg := baseCfg(UW)
	cfg.Seed = 2
	c, _ := Generate(cfg)
	same := len(c) == len(a)
	if same {
		diff := false
		for i := range a {
			if *a[i] != *c[i] {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestArrivalOrderAndBounds(t *testing.T) {
	for _, w := range []Workload{UW, WS, DM} {
		pkts, err := Generate(baseCfg(w))
		if err != nil {
			t.Fatal(err)
		}
		if len(pkts) != 20000 {
			t.Fatalf("%v: got %d packets, want 20000", w, len(pkts))
		}
		var prev uint64
		for i, p := range pkts {
			if p.Arrival < prev {
				t.Fatalf("%v: packet %d goes back in time", w, i)
			}
			prev = p.Arrival
			if p.Bytes < 64 || p.Bytes > pktrec.MTUBytes {
				t.Fatalf("%v: packet %d has %d bytes", w, i, p.Bytes)
			}
			if p.Flow.IsZero() {
				t.Fatalf("%v: packet %d has zero flow", w, i)
			}
		}
	}
}

func TestWorkloadPacketSizes(t *testing.T) {
	uw, _ := Generate(baseCfg(UW))
	var sum int
	for _, p := range uw {
		sum += p.Bytes
		if p.Bytes > 136 {
			t.Fatalf("UW packet of %d bytes", p.Bytes)
		}
	}
	mean := float64(sum) / float64(len(uw))
	if mean < 90 || mean > 110 {
		t.Fatalf("UW mean packet size %v, want ~100", mean)
	}
	ws, _ := Generate(baseCfg(WS))
	full := 0
	for _, p := range ws {
		if p.Bytes == pktrec.MTUBytes {
			full++
		}
	}
	if float64(full)/float64(len(ws)) < 0.8 {
		t.Fatalf("WS only %d/%d MTU packets", full, len(ws))
	}
}

// TestUWLongTail checks the published UW characteristic the generator
// matches: the 100th-largest flow carries <1% of the largest flow's
// packets.
func TestUWLongTail(t *testing.T) {
	cfg := baseCfg(UW)
	cfg.Packets = 300000
	pkts, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(flow.Counts)
	for _, p := range pkts {
		counts.Add(p.Flow, 1)
	}
	top := counts.TopK(100)
	if len(top) < 100 {
		t.Skipf("only %d flows; trace too short for the tail check", len(top))
	}
	if ratio := top[99].Count / top[0].Count; ratio >= 0.01 {
		t.Fatalf("100th/1st flow ratio = %v, want < 0.01", ratio)
	}
}

func TestWorkloadParse(t *testing.T) {
	for _, s := range []string{"UW", "WS", "DM"} {
		w, err := ParseWorkload(s)
		if err != nil || w.String() != s {
			t.Fatalf("ParseWorkload(%q) = %v, %v", s, w, err)
		}
	}
	if _, err := ParseWorkload("bogus"); err == nil {
		t.Fatal("bogus workload parsed")
	}
}

func TestDurationBound(t *testing.T) {
	cfg := baseCfg(UW)
	cfg.Packets = 0
	cfg.DurationNs = 1e6
	pkts, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) == 0 {
		t.Fatal("empty trace")
	}
	for _, p := range pkts {
		if p.Arrival > 1e6 {
			t.Fatalf("packet at %d past the 1 ms bound", p.Arrival)
		}
	}
}

func TestSizeDistSample(t *testing.T) {
	// The CDF inverse is monotone and stays within the support.
	for _, d := range []sizeDist{webSearchDist, dataMiningDist} {
		prev := 0.0
		for u := 0.0; u <= 1.0; u += 0.01 {
			v := d.sample(u)
			if v < prev {
				t.Fatalf("sample(%v) = %v < previous %v", u, v, prev)
			}
			prev = v
		}
		if max := d.bytes[len(d.bytes)-1]; d.sample(1.0) > max {
			t.Fatalf("sample(1) = %v beyond support %v", d.sample(1.0), max)
		}
	}
}

// TestEpisodicTargetsSpread runs the generator against an actual simulated
// queue and checks episodes reach both shallow and deep targets.
func TestEpisodicTargetsSpread(t *testing.T) {
	cfg := baseCfg(UW)
	cfg.Packets = 150000
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Track the generator's own backlog estimate peaks per episode.
	var peaks []float64
	var peak float64
	prevDraining := false
	for p := g.Next(); p != nil; p = g.Next() {
		if g.backlogBytes > peak {
			peak = g.backlogBytes
		}
		if prevDraining && !g.draining { // new episode started
			peaks = append(peaks, peak/pktrec.CellBytes)
			peak = 0
		}
		prevDraining = g.draining
	}
	if len(peaks) < 3 {
		t.Skipf("only %d episodes; trace too short", len(peaks))
	}
	min, max := peaks[0], peaks[0]
	for _, p := range peaks {
		if p < min {
			min = p
		}
		if p > max {
			max = p
		}
	}
	if max < 4*min {
		t.Fatalf("episode peaks not spread: min %v, max %v", min, max)
	}
}
