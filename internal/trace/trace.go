// Package trace synthesizes the workloads of the paper's evaluation. The
// original testbed replays the University of Wisconsin data-center trace and
// two synthetic traces modeled after well-known flow-size distributions
// (web search / DCTCP and data mining / VL2), with flows and packets
// arriving as Poisson processes. The UW pcap itself is not redistributable,
// so this package generates a synthetic equivalent from its published
// characteristics: ~100-byte packets and an extremely long-tailed flow-size
// distribution (the 100th-largest flow carries <1% of the largest flow's
// packets). WS and DM use near-MTU packets, as in the paper.
//
// All randomness is drawn from seeded PCG generators, so every trace is
// reproducible from its configuration.
package trace

import (
	"fmt"
	"math"
	"math/rand/v2"

	"printqueue/internal/flow"
	"printqueue/internal/pktrec"
)

// Workload selects one of the paper's three traffic mixes.
type Workload int

const (
	// UW models the University of Wisconsin data-center trace: small
	// packets (~100 B), extreme long-tailed flow sizes, ~9.1 Mpps at
	// 10 Gbps.
	UW Workload = iota
	// WS models the web-search (DCTCP) flow-size distribution with
	// near-MTU packets (~0.84 Mpps at 10 Gbps).
	WS
	// DM models the data-mining (VL2) flow-size distribution with near-MTU
	// packets.
	DM
)

func (w Workload) String() string {
	switch w {
	case UW:
		return "UW"
	case WS:
		return "WS"
	case DM:
		return "DM"
	default:
		return fmt.Sprintf("workload(%d)", int(w))
	}
}

// ParseWorkload parses "UW", "WS" or "DM" (case-sensitive).
func ParseWorkload(s string) (Workload, error) {
	switch s {
	case "UW":
		return UW, nil
	case "WS":
		return WS, nil
	case "DM":
		return DM, nil
	}
	return 0, fmt.Errorf("trace: unknown workload %q", s)
}

// sizeDist is a piecewise-linear CDF over flow sizes in bytes.
type sizeDist struct {
	bytes []float64 // x: flow size
	cdf   []float64 // y: P(size <= x), ending at 1
}

// sample inverts the CDF at a uniform variate.
func (d sizeDist) sample(u float64) float64 {
	// Find the first cdf point >= u and interpolate linearly from the
	// previous point.
	lo, loCDF := 0.0, 0.0
	for i, c := range d.cdf {
		if u <= c {
			hi, hiCDF := d.bytes[i], c
			if hiCDF == loCDF {
				return hi
			}
			return lo + (hi-lo)*(u-loCDF)/(hiCDF-loCDF)
		}
		lo, loCDF = d.bytes[i], c
	}
	return d.bytes[len(d.bytes)-1]
}

// webSearchDist is modeled after the DCTCP web-search workload: a mix of
// short queries and large responses up to tens of MB.
var webSearchDist = sizeDist{
	bytes: []float64{6e3, 13e3, 19e3, 33e3, 53e3, 133e3, 667e3, 1.467e6, 3.333e6, 6.667e6, 20e6},
	cdf:   []float64{0.15, 0.20, 0.30, 0.40, 0.53, 0.60, 0.70, 0.80, 0.90, 0.97, 1.0},
}

// dataMiningDist is modeled after the VL2 data-mining workload: ~80% of
// flows under 10 KB but most bytes in very large flows.
var dataMiningDist = sizeDist{
	bytes: []float64{100, 1e3, 2e3, 10e3, 100e3, 1e6, 10e6, 100e6},
	cdf:   []float64{0.10, 0.50, 0.60, 0.80, 0.90, 0.95, 0.98, 1.0},
}

// Config describes one synthetic trace destined for a single egress port.
type Config struct {
	Workload Workload
	Seed     uint64
	// Port and Queue stamp the generated packets.
	Port  int
	Queue int
	// LinkBps is the egress line rate the load levels are relative to.
	LinkBps uint64
	// Packets bounds the trace length (stop after this many packets).
	// Zero means DurationNs governs.
	Packets int
	// DurationNs bounds the trace length in time. Zero means Packets
	// governs. At least one bound must be set.
	DurationNs uint64
	// CalmLoad is the offered load, relative to LinkBps, outside bursts
	// (e.g. 0.7). BurstLoad is the offered load during bursts (e.g. 2.5);
	// values above 1 grow the queue. Congestion in the paper's networks
	// arrives in waves (microbursts), which the two-state modulation
	// reproduces; the resulting victims span all of the paper's
	// queue-depth buckets.
	CalmLoad, BurstLoad float64
	// MeanCalmNs and MeanBurstNs are the mean sojourn times of the
	// two-state (calm/burst) modulation, exponentially distributed.
	MeanCalmNs, MeanBurstNs float64
	// Episodic switches the modulation to targeted congestion episodes:
	// the generator tracks the backlog the egress queue must be holding
	// (offered bytes minus line-rate drain) and bursts until it reaches a
	// per-episode target depth drawn log-uniformly from
	// [MinEpisodeCells, MaxEpisodeCells], then drains and idles. This
	// guarantees victims in every queue-depth bucket of the paper's
	// figures, which a memoryless modulation cannot.
	Episodic bool
	// MinEpisodeCells and MaxEpisodeCells bound the per-episode target
	// depth in 80-byte cells (defaults 600 and 28000).
	MinEpisodeCells, MaxEpisodeCells int
	// FlowArrivalRate is the Poisson flow arrival rate in flows/sec.
	// Zero picks a workload-appropriate default.
	FlowArrivalRate float64
	// MaxActiveFlows caps concurrency (arrivals beyond it are deferred).
	MaxActiveFlows int
}

func (c *Config) normalize() error {
	if c.LinkBps == 0 {
		return fmt.Errorf("trace: LinkBps must be set")
	}
	if c.Packets == 0 && c.DurationNs == 0 {
		return fmt.Errorf("trace: either Packets or DurationNs must bound the trace")
	}
	if c.CalmLoad <= 0 {
		c.CalmLoad = 0.7
	}
	if c.BurstLoad <= 0 {
		c.BurstLoad = 2.5
	}
	if c.MeanCalmNs <= 0 {
		c.MeanCalmNs = 200e3 // 200 us
	}
	if c.MeanBurstNs <= 0 {
		c.MeanBurstNs = 100e3 // 100 us
	}
	if c.FlowArrivalRate <= 0 {
		switch c.Workload {
		case UW:
			c.FlowArrivalRate = 20000
		default:
			c.FlowArrivalRate = 5000
		}
	}
	if c.MaxActiveFlows <= 0 {
		c.MaxActiveFlows = 512
	}
	if c.MinEpisodeCells <= 0 {
		c.MinEpisodeCells = 600
	}
	if c.MaxEpisodeCells <= c.MinEpisodeCells {
		c.MaxEpisodeCells = 28000
	}
	return nil
}

// meanPacketBytes returns the workload's average packet size, which sets
// the packet rate at a given offered load.
func (c *Config) meanPacketBytes() float64 {
	if c.Workload == UW {
		return 100
	}
	return pktrec.MTUBytes
}

// activeFlow is a flow currently emitting packets.
type activeFlow struct {
	key       flow.Key
	remaining int // packets left to send
}

// Generator streams one synthetic trace. Packets come out in non-decreasing
// arrival order, ready for switchsim injection.
type Generator struct {
	cfg Config
	rng *rand.Rand

	now        uint64
	burst      bool
	burstLoad  float64 // this episode's offered load
	stateUntil uint64
	flows      []activeFlow
	deferred   int // flows that arrived past the concurrency cap
	nextFlowAt uint64
	emitted    int
	flowSeq    uint32

	// Episodic-mode state: the generator's running estimate of the egress
	// backlog in bytes, and the current episode's target.
	backlogBytes float64
	lastEmit     uint64
	targetCells  int
	draining     bool
	idleUntil    uint64
}

// NewGenerator validates the config and builds a generator.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	g := &Generator{
		cfg: cfg,
		rng: rand.New(rand.NewPCG(cfg.Seed, 0x9e3779b97f4a7c15)),
	}
	g.nextFlowAt = g.expDelay(1e9 / cfg.FlowArrivalRate)
	g.stateUntil = g.expDelay(cfg.MeanCalmNs)
	g.burstLoad = cfg.BurstLoad
	if cfg.Episodic {
		g.newEpisode()
	}
	return g, nil
}

// expDelay draws an exponential delay with the given mean in ns, >= 1.
func (g *Generator) expDelay(meanNs float64) uint64 {
	d := g.rng.ExpFloat64() * meanNs
	if d < 1 {
		d = 1
	}
	if d > 1e15 {
		d = 1e15
	}
	return uint64(d)
}

// newFlowKey mints a unique 5-tuple.
func (g *Generator) newFlowKey(proto flow.Proto) flow.Key {
	g.flowSeq++
	id := g.flowSeq
	var k flow.Key
	k.SrcIP = [4]byte{10, byte(id >> 16), byte(id >> 8), byte(id)}
	k.DstIP = [4]byte{10, 128, byte(g.cfg.Port), 1}
	k.SrcPort = uint16(33000 + id%16384)
	k.DstPort = uint16(80 + id%4)
	k.Proto = proto
	return k
}

// flowPackets draws a flow size and converts it to a packet count.
func (g *Generator) flowPackets() int {
	u := g.rng.Float64()
	var bytes float64
	switch g.cfg.Workload {
	case WS:
		bytes = webSearchDist.sample(u)
	case DM:
		bytes = dataMiningDist.sample(u)
	default:
		// UW: Pareto-like with a heavy tail. Shape chosen so the
		// 100th-largest of ~10k flows is <1% of the largest.
		const shape = 0.65
		bytes = 2e3 * math.Pow(1-u, -1/shape)
		if bytes > 4e8 {
			bytes = 4e8
		}
	}
	n := int(math.Ceil(bytes / g.cfg.meanPacketBytes()))
	if n < 1 {
		n = 1
	}
	return n
}

// packetBytes draws one packet's wire size.
func (g *Generator) packetBytes(last bool) int {
	if g.cfg.Workload == UW {
		// Mean ~100 B (64..136), matching the paper's UW description and
		// the 80 ns min-packet transmission delay the coefficient model
		// assumes at 10 Gbps.
		return 64 + g.rng.IntN(73)
	}
	if last {
		return 64 + g.rng.IntN(pktrec.MTUBytes-64)
	}
	return pktrec.MTUBytes
}

// offeredLoad returns the current offered load relative to line rate.
func (g *Generator) offeredLoad() float64 {
	if g.cfg.Episodic {
		if g.draining {
			return g.cfg.CalmLoad
		}
		return g.burstLoad
	}
	if g.burst {
		return g.burstLoad
	}
	return g.cfg.CalmLoad
}

// lineBytesPerNs is the egress drain rate in bytes/ns.
func (g *Generator) lineBytesPerNs() float64 {
	return float64(g.cfg.LinkBps) / 8e9
}

// episodicStep maintains the backlog estimate and the episode state
// machine: burst to the target depth, drain to empty, idle, repeat.
func (g *Generator) episodicStep(emittedBytes int) {
	if g.now > g.lastEmit {
		g.backlogBytes -= float64(g.now-g.lastEmit) * g.lineBytesPerNs()
		if g.backlogBytes < 0 {
			g.backlogBytes = 0
		}
	}
	g.lastEmit = g.now
	if g.draining && g.backlogBytes <= 0 {
		// The queue drained before this packet: the episode is over. Idle
		// to separate congestion regimes, then start the next one.
		g.idleUntil = g.now + g.expDelay(g.cfg.MeanCalmNs)
		g.newEpisode()
	}
	g.backlogBytes += float64(emittedBytes)
	if !g.draining && g.backlogBytes >= float64(g.targetCells*pktrec.CellBytes) {
		g.draining = true
	}
}

// newEpisode draws the next target depth (log-uniform over the configured
// range) and burst intensity.
func (g *Generator) newEpisode() {
	lo := math.Log(float64(g.cfg.MinEpisodeCells))
	hi := math.Log(float64(g.cfg.MaxEpisodeCells))
	g.targetCells = int(math.Exp(lo + (hi-lo)*g.rng.Float64()))
	g.burstLoad = 1.5 + (g.cfg.BurstLoad-1.5)*g.rng.Float64()
	if g.burstLoad < 1.2 {
		g.burstLoad = 1.2
	}
	g.draining = false
}

// step advances the modulation and flow-arrival processes to time t.
func (g *Generator) step(t uint64) {
	for t >= g.stateUntil {
		g.burst = !g.burst
		mean := g.cfg.MeanCalmNs
		if g.burst {
			mean = g.cfg.MeanBurstNs
			// Vary burst intensity per episode so congestion peaks spread
			// over the whole range of queue depths, like the replayed
			// trace's natural burst structure.
			g.burstLoad = 1.2 + (g.cfg.BurstLoad-1.2)*g.rng.Float64()
		}
		g.stateUntil += g.expDelay(mean)
	}
	for t >= g.nextFlowAt {
		if len(g.flows) < g.cfg.MaxActiveFlows {
			g.flows = append(g.flows, activeFlow{key: g.newFlowKey(flow.ProtoTCP), remaining: g.flowPackets()})
		} else {
			g.deferred++
		}
		g.nextFlowAt += g.expDelay(1e9 / g.cfg.FlowArrivalRate)
	}
	if len(g.flows) < g.cfg.MaxActiveFlows && g.deferred > 0 {
		g.deferred--
		g.flows = append(g.flows, activeFlow{key: g.newFlowKey(flow.ProtoTCP), remaining: g.flowPackets()})
	}
}

// Next returns the next packet, or nil when the trace is exhausted.
func (g *Generator) Next() *pktrec.Packet {
	if g.cfg.Packets > 0 && g.emitted >= g.cfg.Packets {
		return nil
	}
	for {
		// Mean inter-packet gap at the current offered load.
		gap := g.meanGapNs()
		g.now += g.expDelay(gap)
		if g.cfg.Episodic && g.now < g.idleUntil {
			g.now = g.idleUntil
		}
		if g.cfg.DurationNs > 0 && g.now > g.cfg.DurationNs {
			return nil
		}
		g.step(g.now)
		if len(g.flows) == 0 {
			// The pool ran dry before the next Poisson arrival: mint a
			// flow on demand so the offered load is actually delivered
			// (senders in the paper's testbed replay back-to-back; the
			// trace is never supply-limited).
			g.flows = append(g.flows, activeFlow{key: g.newFlowKey(flow.ProtoTCP), remaining: g.flowPackets()})
		}
		i := g.rng.IntN(len(g.flows))
		f := &g.flows[i]
		f.remaining--
		last := f.remaining == 0
		pkt := &pktrec.Packet{
			Flow:    f.key,
			Bytes:   g.packetBytes(last),
			Arrival: g.now,
			Port:    g.cfg.Port,
			Queue:   g.cfg.Queue,
		}
		if last {
			g.flows[i] = g.flows[len(g.flows)-1]
			g.flows = g.flows[:len(g.flows)-1]
		}
		if g.cfg.Episodic {
			g.episodicStep(pkt.Bytes)
		}
		g.emitted++
		return pkt
	}
}

// DebugState summarizes the generator's internal state (for tests and
// tuning).
func (g *Generator) DebugState() string {
	return fmt.Sprintf("backlog=%.0fB target=%d draining=%v load=%.2f flows=%d",
		g.backlogBytes, g.targetCells, g.draining, g.offeredLoad(), len(g.flows))
}

// meanGapNs is the mean inter-packet arrival gap for the current load.
func (g *Generator) meanGapNs() float64 {
	pps := g.offeredLoad() * float64(g.cfg.LinkBps) / (8 * g.cfg.meanPacketBytes())
	return 1e9 / pps
}

// Generate materializes the whole trace into a slice.
func Generate(cfg Config) ([]*pktrec.Packet, error) {
	g, err := NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	var out []*pktrec.Packet
	for p := g.Next(); p != nil; p = g.Next() {
		out = append(out, p)
	}
	return out, nil
}
