package trace

import (
	"bytes"
	"testing"
)

// FuzzReadFile checks the trace-file reader never panics or over-allocates
// on corrupt input, and that whatever it accepts re-serializes losslessly.
func FuzzReadFile(f *testing.F) {
	// Seed with a small valid trace and header mutations.
	cfg := Config{Workload: UW, Seed: 1, LinkBps: 10e9, Packets: 20}
	pkts, err := Generate(cfg)
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := WriteFile(&valid, pkts); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte("PQTR"))
	f.Add([]byte("PQTR\x00\x01\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadFile(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteFile(&out, got); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		again, err := ReadFile(&out)
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		if len(again) != len(got) {
			t.Fatalf("round trip changed count: %d vs %d", len(again), len(got))
		}
		for i := range got {
			if *again[i] != *got[i] {
				t.Fatalf("packet %d changed", i)
			}
		}
	})
}
