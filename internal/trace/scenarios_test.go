package trace

import (
	"math"
	"testing"

	"printqueue/internal/flow"
	"printqueue/internal/pktrec"
)

func TestPacedFlowRate(t *testing.T) {
	k := hostKey(1, 1, 1, flow.ProtoTCP)
	pkts, err := Schedule(0, 1, PacedFlow{
		Flow: k, RateBps: 1e9, PacketBytes: 1250, EndNs: 10e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1 Gbps with 1250 B packets = one packet per 10 us: ~1000 packets in
	// 10 ms.
	if len(pkts) < 990 || len(pkts) > 1010 {
		t.Fatalf("got %d packets, want ~1000", len(pkts))
	}
	var bytes float64
	for _, p := range pkts {
		bytes += float64(p.Bytes)
	}
	rate := bytes * 8 / 10e-3
	if math.Abs(rate-1e9)/1e9 > 0.02 {
		t.Fatalf("achieved rate %v, want ~1 Gbps", rate)
	}
}

func TestPacedFlowJitterPreservesRate(t *testing.T) {
	k := hostKey(1, 1, 1, flow.ProtoTCP)
	pkts, err := Schedule(0, 1, PacedFlow{
		Flow: k, RateBps: 1e9, PacketBytes: 1250, EndNs: 10e6, JitterFrac: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) < 900 || len(pkts) > 1100 {
		t.Fatalf("jittered flow emitted %d packets, want ~1000", len(pkts))
	}
}

func TestPacedFlowValidation(t *testing.T) {
	if _, err := Schedule(0, 1, PacedFlow{RateBps: 0, PacketBytes: 100, Packets: 1}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := Schedule(0, 1, PacedFlow{RateBps: 1e9, PacketBytes: 100}); err == nil {
		t.Error("unbounded flow accepted")
	}
}

func TestScheduleOrdering(t *testing.T) {
	pkts, err := Schedule(3, 1,
		PacedFlow{Flow: hostKey(1, 1, 1, flow.ProtoTCP), RateBps: 1e9, PacketBytes: 1250, Packets: 100},
		PacedFlow{Flow: hostKey(2, 1, 2, flow.ProtoUDP), RateBps: 2e9, PacketBytes: 250, Packets: 300, StartNs: 5000},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 400 {
		t.Fatalf("got %d packets", len(pkts))
	}
	var prev uint64
	for i, p := range pkts {
		if p.Arrival < prev {
			t.Fatalf("packet %d out of order", i)
		}
		prev = p.Arrival
		if p.Port != 3 {
			t.Fatalf("packet %d on port %d", i, p.Port)
		}
	}
}

func TestMicroburstScenario(t *testing.T) {
	pkts, bg, err := Microburst(MicroburstConfig{
		LinkBps: 10e9, Seed: 1, BurstStartNs: 1e6, DurationNs: 4e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if bg.IsZero() {
		t.Fatal("no background flow returned")
	}
	flows := make(map[flow.Key]int)
	var burstPkts int
	for _, p := range pkts {
		flows[p.Flow]++
		if p.Flow != bg {
			burstPkts++
			if p.Arrival < 1e6 {
				t.Fatal("burst packet before burst start")
			}
		}
	}
	if len(flows) != 9 { // 1 background + 8 burst senders
		t.Fatalf("flows = %d, want 9", len(flows))
	}
	if burstPkts != 8*200 {
		t.Fatalf("burst packets = %d, want 1600", burstPkts)
	}
	if _, _, err := Microburst(MicroburstConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestIncastScenario(t *testing.T) {
	pkts, probe, app, err := Incast(IncastConfig{
		LinkBps: 10e9, Seed: 1, Senders: 16, ResponseBytes: 30000,
		StartNs: 1e6, SyncJitterNs: 10000, DurationNs: 5e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(app) != 16 {
		t.Fatalf("app flows = %d", len(app))
	}
	perSender := (30000 + pktrec.MTUBytes - 1) / pktrec.MTUBytes
	counts := make(map[flow.Key]int)
	for _, p := range pkts {
		counts[p.Flow]++
	}
	for _, f := range app {
		if counts[f] != perSender {
			t.Fatalf("sender %v sent %d, want %d", f, counts[f], perSender)
		}
	}
	if counts[probe] == 0 {
		t.Fatal("probe emitted nothing")
	}
	if _, _, _, err := Incast(IncastConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestCaseStudyScenario(t *testing.T) {
	cfg := DefaultCaseStudy(0.1)
	pkts, fs, err := CaseStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Background == fs.Burst || fs.Burst == fs.NewTCP {
		t.Fatal("principal flows not distinct")
	}
	var burstCount int
	var firstNew uint64
	for _, p := range pkts {
		switch p.Flow {
		case fs.Burst:
			burstCount++
			if p.Bytes != cfg.BurstBytes {
				t.Fatalf("burst datagram of %d bytes", p.Bytes)
			}
		case fs.NewTCP:
			if firstNew == 0 {
				firstNew = p.Arrival
			}
		}
	}
	if burstCount != cfg.BurstPackets {
		t.Fatalf("burst packets = %d, want %d", burstCount, cfg.BurstPackets)
	}
	if firstNew < cfg.NewTCPStartNs {
		t.Fatalf("new TCP started at %d, configured %d", firstNew, cfg.NewTCPStartNs)
	}
	if _, _, err := CaseStudy(CaseStudyConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestDefaultCaseStudyScaling(t *testing.T) {
	full := DefaultCaseStudy(1)
	half := DefaultCaseStudy(0.5)
	if half.BurstPackets*2 != full.BurstPackets {
		t.Fatal("burst packets do not scale")
	}
	if half.DurationNs*2 != full.DurationNs {
		t.Fatal("duration does not scale")
	}
	if zero := DefaultCaseStudy(0); zero.BurstPackets != full.BurstPackets {
		t.Fatal("scale 0 should default to 1")
	}
}
