package trace

import (
	"bytes"
	"testing"

	"printqueue/internal/pktrec"
)

func TestFileRoundTrip(t *testing.T) {
	cfg := baseCfg(UW)
	cfg.Packets = 5000
	pkts, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFile(&buf, pkts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pkts) {
		t.Fatalf("read %d packets, wrote %d", len(got), len(pkts))
	}
	for i := range pkts {
		want := *pkts[i]
		want.Meta = pktrec.Metadata{} // metadata is not serialized
		if *got[i] != want {
			t.Fatalf("packet %d: got %+v, want %+v", i, *got[i], want)
		}
	}
}

func TestFileEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFile(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v, %v", got, err)
	}
}

func TestReadFileErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    []byte("NOPE\x00\x01\x00\x00\x00\x00\x00\x00\x00\x00"),
		"bad version":  []byte("PQTR\x00\x09\x00\x00\x00\x00\x00\x00\x00\x00"),
		"short header": []byte("PQTR\x00\x01"),
		"truncated":    []byte("PQTR\x00\x01\x00\x00\x00\x00\x00\x00\x00\x02abc"),
		"absurd count": append([]byte("PQTR\x00\x01"), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF),
	}
	for name, data := range cases {
		if _, err := ReadFile(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: ReadFile succeeded", name)
		}
	}
}
