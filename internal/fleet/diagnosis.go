package fleet

import (
	"fmt"
	"time"

	"printqueue/internal/flow"
)

// Culprit is one flow ranked as contributing to a hop's queue buildup.
type Culprit struct {
	Flow  flow.Key
	Count float64
}

// HopDiagnosis is one hop's contribution to a path diagnosis: the raw
// query outcome plus its top-k culprit ranking (empty when the hop
// failed or saw no traffic in the interval).
type HopDiagnosis struct {
	HopResult
	Culprits []Culprit
}

// PathDiagnosis correlates one victim's interval across every hop of its
// path: per hop, the flows that shared the victim's queues, ranked by
// packet count (the paper's time-window answer to "who delayed this
// packet, and where").
type PathDiagnosis struct {
	// Victim labels the diagnosed packet or flow; informational.
	Victim string
	// Start and End bound the queried interval, [Start, End).
	Start, End uint64
	// Hops holds one entry per requested hop, in path order as requested.
	Hops []HopDiagnosis
	// Partial is true when at least one hop failed; the surviving hops'
	// rankings are still valid for their switches.
	Partial bool
	// Elapsed is the fan-out wall time.
	Elapsed time.Duration
}

// FailedHops lists the switch IDs of hops that returned an error.
func (d *PathDiagnosis) FailedHops() []string {
	var out []string
	for i := range d.Hops {
		if d.Hops[i].Err != nil {
			out = append(out, d.Hops[i].SwitchID)
		}
	}
	return out
}

// Diagnose fans the victim's interval out across the path and ranks the
// top-k culprit flows per hop. Hops that fail keep partial-result
// semantics: they appear in the report with their error and an empty
// ranking, and Partial is set.
func (c *Collector) Diagnose(victim string, hops []HopRef, start, end uint64, k int) (*PathDiagnosis, error) {
	if end <= start {
		return nil, fmt.Errorf("fleet: empty diagnosis interval [%d, %d)", start, end)
	}
	if k <= 0 {
		k = 10
	}
	t0 := time.Now()
	results := c.QueryPath(hops, start, end)
	d := &PathDiagnosis{
		Victim: victim,
		Start:  start,
		End:    end,
		Hops:   make([]HopDiagnosis, len(results)),
	}
	for i, res := range results {
		hd := HopDiagnosis{HopResult: res}
		if res.Err == nil {
			cul, err := topCulprits(res.Counts, k)
			if err != nil {
				// A malformed flow key in the wire reply is a hop-level
				// failure, not a fatal one: report it in place.
				hd.Err = err
				hd.Counts = nil
			} else {
				hd.Culprits = cul
			}
		}
		if hd.Err != nil {
			d.Partial = true
		}
		d.Hops[i] = hd
	}
	d.Elapsed = time.Since(t0)
	return d, nil
}

// topCulprits parses the wire-form counts back into flow keys and ranks
// the top k by count.
func topCulprits(counts map[string]float64, k int) ([]Culprit, error) {
	if len(counts) == 0 {
		return nil, nil
	}
	fc := make(flow.Counts, len(counts))
	for s, n := range counts {
		key, err := flow.ParseKey(s)
		if err != nil {
			return nil, fmt.Errorf("fleet: malformed flow key %q in hop reply: %w", s, err)
		}
		fc[key] += n
	}
	top := fc.TopK(k)
	out := make([]Culprit, len(top))
	for i, e := range top {
		out[i] = Culprit{Flow: e.Flow, Count: e.Count}
	}
	return out, nil
}
