package fleet

import (
	"errors"
	"net"
	"os"
	"reflect"
	"strconv"
	"testing"
	"time"

	"printqueue/internal/core/control"
	"printqueue/internal/faultnet"
	"printqueue/internal/pktrec"
)

// chaosSeed returns the fault-injection seed, overridable via
// PRINTQUEUE_CHAOS_SEED so CI can pin or sweep it.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	if s := os.Getenv("PRINTQUEUE_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad PRINTQUEUE_CHAOS_SEED %q: %v", s, err)
		}
		return v
	}
	return 1
}

// feedSystem builds one hop's System with the standard 60-packet feed.
func feedSystem(t *testing.T, hop int) (*control.System, uint64) {
	t.Helper()
	sys, err := control.New(fleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	var ts uint64 = 1000
	for i := 0; i < 60; i++ {
		ts += 10
		sys.OnDequeue(&pktrec.Packet{
			Flow: fleetKey(byte(hop), byte(i%3)),
			Port: 0,
			Meta: pktrec.Metadata{EnqTimestamp: ts - 40, DeqTimedelta: 40, EnqQdepth: 8 + i%9},
		})
	}
	sys.Finalize(ts + 1)
	return sys, ts
}

// startTornSwitch serves a hop whose every reply is torn mid-frame: the
// fault injector transmits half of each server write, then resets the
// connection. Dials succeed, so the hop looks alive until a fan-out leg
// is in flight — the blackholed-mid-frame scenario.
func startTornSwitch(t *testing.T, hop int, seed int64) string {
	t.Helper()
	sys, _ := feedSystem(t, hop)
	qs := control.NewQueryServer(sys)
	qs.Start(2)
	t.Cleanup(qs.Stop)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := control.ServeQueriesListener(faultnet.Wrap(ln, faultnet.Config{
		Seed:         seed,
		PartialWrite: 1, // every reply: half the frame, then ECONNRESET
	}), qs, control.ServeOptions{})
	t.Cleanup(func() { srv.Close() })
	return srv.Addr().String()
}

// TestFleetTornHopChaos is the fleet chaos scenario: a 3-hop path where
// the middle hop's replies are torn mid-frame. The fan-out must keep
// partial-result semantics — one HopResult per requested hop, the torn
// hop failing in place with its error — while the surviving hops' counts
// stay bit-identical to querying those switches directly, and the torn
// hop's session shows connection poisoning (reconnects) rather than a
// wedged desynced stream.
func TestFleetTornHopChaos(t *testing.T) {
	seed := chaosSeed(t)
	c, _, horizon := newFleet(t, 2, Options{
		HopTimeout: 5 * time.Second,
		Dial: control.DialOptions{
			Timeout:     300 * time.Millisecond,
			MaxRetries:  2,
			BackoffBase: time.Microsecond,
			BackoffMax:  time.Millisecond,
			Seed:        seed,
		},
	})
	tornAddr := startTornSwitch(t, 2, seed)
	if err := c.Register(SwitchInfo{ID: "torn", Hop: 2, Addr: tornAddr}); err != nil {
		t.Fatalf("register torn hop (dial must succeed; faults hit replies only): %v", err)
	}
	hops := []HopRef{{"sw0", 0}, {"torn", 0}, {"sw1", 0}}
	results := c.QueryPath(hops, 1000, horizon+1)
	if len(results) != len(hops) {
		t.Fatalf("got %d hop results, want %d — hops must never be dropped", len(results), len(hops))
	}
	for i, res := range results {
		if res.SwitchID != hops[i].SwitchID {
			t.Fatalf("result %d misattributed: got %q want %q", i, res.SwitchID, hops[i].SwitchID)
		}
	}
	if results[1].Err == nil {
		t.Fatal("torn hop answered; fault injector exercised nothing")
	}
	if errors.Is(results[1].Err, ErrHopTimeout) {
		t.Fatalf("torn hop failed with the collector deadline (%v); expected the client's own transport error", results[1].Err)
	}
	for _, i := range []int{0, 2} {
		res := results[i]
		if res.Err != nil {
			t.Fatalf("surviving hop %s failed: %v", res.SwitchID, res.Err)
		}
		sw := c.lookup(res.SwitchID)
		direct, err := control.DialMux(sw.info.Addr)
		if err != nil {
			t.Fatal(err)
		}
		want, err := direct.Interval(0, 1000, horizon+1)
		direct.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Counts, want) {
			t.Fatalf("surviving hop %s: fleet counts %v != direct counts %v", res.SwitchID, res.Counts, want)
		}
	}
	// The torn session must have poisoned and redialed rather than reusing
	// the desynced connection.
	var torn *Status
	for _, st := range c.Health() {
		if st.Info.ID == "torn" {
			s := st
			torn = &s
		}
	}
	if torn == nil {
		t.Fatal("torn hop missing from Health")
	}
	if torn.Reconnects == 0 {
		t.Fatal("torn replies produced no reconnects; connection poisoning did not engage")
	}
	if torn.LastErr == nil {
		t.Fatal("torn hop's transport error not recorded in Health")
	}
	// Diagnosis over the same path degrades, not fails.
	d, err := c.Diagnose("victim", hops, 1000, horizon+1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Partial {
		t.Fatal("diagnosis across a torn hop not marked partial")
	}
	if got := d.FailedHops(); len(got) != 1 || got[0] != "torn" {
		t.Fatalf("failed hops = %v, want [torn]", got)
	}
	for _, i := range []int{0, 2} {
		if len(d.Hops[i].Culprits) == 0 {
			t.Fatalf("surviving hop %s lost its culprit ranking: %+v", d.Hops[i].SwitchID, d.Hops[i])
		}
	}
}

// TestFleetBlackholeHopChaos drops every server write silently (reported
// as sent) — the hop is a pure blackhole. The leg must fail by deadline:
// either the client's own read timeout or the collector's per-hop
// ceiling, never a hang.
func TestFleetBlackholeHopChaos(t *testing.T) {
	seed := chaosSeed(t)
	c, _, horizon := newFleet(t, 2, Options{
		HopTimeout: 700 * time.Millisecond,
		Dial: control.DialOptions{
			Timeout:     150 * time.Millisecond,
			MaxRetries:  1,
			BackoffBase: time.Microsecond,
			BackoffMax:  time.Millisecond,
			Seed:        seed,
		},
	})
	sys, _ := feedSystem(t, 2)
	qs := control.NewQueryServer(sys)
	qs.Start(1)
	t.Cleanup(qs.Stop)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := control.ServeQueriesListener(faultnet.Wrap(ln, faultnet.Config{
		Seed:      seed,
		DropWrite: 1, // every reply vanishes; client reads time out
	}), qs, control.ServeOptions{})
	t.Cleanup(func() { srv.Close() })
	if err := c.Register(SwitchInfo{ID: "hole", Hop: 2, Addr: srv.Addr().String()}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	results := c.QueryPath([]HopRef{{"sw0", 0}, {"hole", 0}, {"sw1", 0}}, 1000, horizon+1)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("fan-out across a blackhole took %v; deadlines did not engage", elapsed)
	}
	if results[1].Err == nil {
		t.Fatal("blackholed hop answered")
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Fatalf("surviving hop %s failed: %v", results[i].SwitchID, results[i].Err)
		}
		if len(results[i].Counts) == 0 {
			t.Fatalf("surviving hop %s returned no counts", results[i].SwitchID)
		}
	}
	if fh := (&PathDiagnosis{Hops: []HopDiagnosis{
		{HopResult: results[0]}, {HopResult: results[1]}, {HopResult: results[2]},
	}}).FailedHops(); len(fh) != 1 || fh[0] != "hole" {
		t.Fatalf("failed hops = %v, want [hole]", fh)
	}
}
