// Package fleet is the multi-switch collector tier of the reproduction:
// the paper's higher-layer diagnosis applications (Fig. 2) that query the
// per-switch analysis program on every hop of a packet's path. A
// Collector maintains one multiplexed query session (MuxClient, wire
// protocol v2 with the hardened retry/backoff substrate) per registered
// switch, polls their liveness, and fans interval queries out to all
// switches on a path concurrently under a bounded worker pool with a
// per-hop deadline.
//
// Partial-result semantics are the contract: every requested hop yields a
// HopResult — a hop that errors or times out is reported with its error,
// never silently dropped — so a diagnosis over a path with one dead
// switch still answers for the surviving hops.
package fleet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"printqueue/internal/core/control"
	"printqueue/internal/telemetry"
	"printqueue/internal/tracing"
)

// SwitchInfo identifies one registered switch.
type SwitchInfo struct {
	// ID is the stable switch identifier hops refer to.
	ID string
	// Hop is the switch's position on the monitored path, 0-based.
	Hop int
	// Addr is the switch's query-plane TCP address.
	Addr string
}

// queryConn is the slice of the mux client the collector uses; a seam so
// tests can substitute a stub without a listener.
type queryConn interface {
	Interval(port int, start, end uint64) (map[string]float64, error)
	IntervalTraced(port int, start, end uint64, tr *tracing.Trace) (map[string]float64, error)
	Reconnects() int64
	Close() error
}

// member is one registered switch and its session state.
type member struct {
	info SwitchInfo
	conn queryConn
	// mirror is the switch's local checkpoint replica (nil unless
	// Options.Mirror is set).
	mirror *Mirror

	mu      sync.Mutex
	lastErr error
	lastOK  time.Time
}

// note records the outcome of a round trip against the member's health.
func (m *member) note(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err == nil || !transportError(err) {
		// An application-level reply (even an error like "port not
		// activated") proves the switch's query plane round-trips.
		m.lastOK = time.Now()
		m.lastErr = nil
		return
	}
	m.lastErr = err
}

// transportError reports whether err is a transport-level failure (the
// switch is unreachable or its connection died) as opposed to an
// application-level reply.
func transportError(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrHopTimeout) || errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// Defaults for Options zero fields.
const (
	// DefaultWorkers bounds concurrent per-hop queries in one fan-out.
	DefaultWorkers = 8
	// DefaultHopTimeout is the per-switch deadline of one fan-out leg.
	DefaultHopTimeout = 2 * time.Second
)

// ErrHopTimeout marks a hop that missed the collector's per-switch
// deadline. The hop's client keeps its own (shorter) I/O deadlines and
// retry budget; this is the hard ceiling on one leg of a fan-out.
var ErrHopTimeout = errors.New("fleet: hop query deadline exceeded")

// Options tunes a Collector.
type Options struct {
	// Workers bounds how many per-hop queries run concurrently in one
	// fan-out (and across overlapping fan-outs). 0 means DefaultWorkers.
	Workers int
	// HopTimeout is the per-switch deadline of one fan-out leg; a hop that
	// misses it is reported with ErrHopTimeout. 0 means DefaultHopTimeout;
	// negative disables the deadline.
	HopTimeout time.Duration
	// Dial tunes every per-switch MuxClient session (timeouts, retry
	// budget, backoff, fault-injecting dialer).
	Dial control.DialOptions
	// Telemetry receives the printqueue_fleet_* metrics. nil uses a
	// private registry.
	Telemetry *telemetry.Registry
	// Tracer, when non-nil, samples fleet queries: one trace per sampled
	// fan-out absorbs the per-hop client spans and — because the trace id
	// travels on every leg's wire frame — each hop's server-side spans.
	Tracer *tracing.Tracer
	// Mirror enables checkpoint streaming: every registered switch gets a
	// local histstore replica fed by a checkpoint subscription, and hop
	// queries whose interval the replica covers are answered locally with
	// no network round trip.
	Mirror bool
	// MirrorDir is the root directory for the per-switch replica stores
	// (one subdirectory per switch ID). Required when Mirror is set.
	MirrorDir string
	// MirrorStalenessNs bounds how far a query's end may extend past a
	// mirror's covered span and still be served locally; such answers are
	// annotated Stale with their LagNs. 0 (the default) is strict: only
	// fully covered intervals are served from the mirror.
	MirrorStalenessNs uint64
	// MirrorDial, when non-nil, tunes the checkpoint-stream connections
	// separately from the query sessions (e.g. to fault-inject only the
	// stream). nil uses Dial.
	MirrorDial *control.DialOptions
}

// Collector maintains query sessions to a fleet of switches and serves
// path-correlated queries over them.
type Collector struct {
	opts Options
	dial func(addr string, opts control.DialOptions) (queryConn, error)
	sem  chan struct{}

	mu      sync.Mutex
	members map[string]*member
	closed  bool

	// flights coalesces identical in-flight network legs (singleflight
	// per switch+port+interval): a thundering herd of dashboards asking
	// the same question costs one upstream query.
	flightMu sync.Mutex
	flights  map[flightKey]*flightCall

	queries     *telemetry.Counter
	fanoutLat   *telemetry.Histogram
	hopErrors   *telemetry.Counter
	hopTimeouts *telemetry.Counter
	partials    *telemetry.Counter
	polls       *telemetry.Counter
	switchesG   *telemetry.Gauge
	coalesced   *telemetry.Counter

	streamFrames        *telemetry.Counter
	streamBytes         *telemetry.Counter
	streamResyncs       *telemetry.Counter
	streamReplayed      *telemetry.Counter
	streamReconnects    *telemetry.Counter
	streamMirrorQueries *telemetry.Counter
	streamFallbacks     *telemetry.Counter
	streamStaleServed   *telemetry.Counter
}

// New builds a Collector. Register switches before querying.
func New(opts Options) *Collector {
	if opts.Workers <= 0 {
		opts.Workers = DefaultWorkers
	}
	if opts.HopTimeout == 0 {
		opts.HopTimeout = DefaultHopTimeout
	}
	reg := opts.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &Collector{
		opts: opts,
		dial: func(addr string, o control.DialOptions) (queryConn, error) {
			return control.DialMuxOpts(addr, o)
		},
		sem:     make(chan struct{}, opts.Workers),
		members: make(map[string]*member),
		flights: make(map[flightKey]*flightCall),
		queries: reg.Counter("printqueue_fleet_queries_total",
			"Fleet-level path queries fanned out by the collector."),
		fanoutLat: reg.Histogram("printqueue_fleet_fanout_latency_ns",
			"Wall-clock latency of one fleet fan-out (all hops answered or timed out).",
			telemetry.LatencyBuckets),
		hopErrors: reg.Counter("printqueue_fleet_hop_errors_total",
			"Per-hop failures inside fleet fan-outs.", telemetry.L("kind", "error")),
		hopTimeouts: reg.Counter("printqueue_fleet_hop_errors_total",
			"Per-hop failures inside fleet fan-outs.", telemetry.L("kind", "timeout")),
		partials: reg.Counter("printqueue_fleet_partial_results_total",
			"Fleet queries that returned with at least one failed hop alongside surviving answers."),
		polls: reg.Counter("printqueue_fleet_polls_total",
			"Liveness poll rounds issued to the registered switches."),
		switchesG: reg.Gauge("printqueue_fleet_switches",
			"Switches currently registered with the collector."),
		coalesced: reg.Counter("printqueue_fleet_coalesced_queries_total",
			"Hop queries answered by joining an identical in-flight network leg."),
		streamFrames: reg.Counter("printqueue_fleet_stream_frames_total",
			"Checkpoint frames ingested by the collector's mirrors."),
		streamBytes: reg.Counter("printqueue_fleet_stream_bytes_total",
			"Encoded checkpoint payload bytes ingested by the mirrors."),
		streamResyncs: reg.Counter("printqueue_fleet_stream_resyncs_total",
			"Stream resyncs observed (server dropped frames under backpressure or a sequence gap)."),
		streamReplayed: reg.Counter("printqueue_fleet_stream_replayed_total",
			"Checkpoint frames ingested from segment-log catch-up replays."),
		streamReconnects: reg.Counter("printqueue_fleet_stream_reconnects_total",
			"Checkpoint-stream redials after a break or resync."),
		streamMirrorQueries: reg.Counter("printqueue_fleet_stream_mirror_queries_total",
			"Hop queries answered locally from a mirror."),
		streamFallbacks: reg.Counter("printqueue_fleet_stream_fallbacks_total",
			"Hop queries that fell back to the network fan-out (mirror cold or lagged past the staleness bound)."),
		streamStaleServed: reg.Counter("printqueue_fleet_stream_stale_served_total",
			"Mirror answers served with an explicit staleness annotation."),
	}
}

// Register dials a query session to the switch and adds it to the fleet.
// IDs are unique; re-registering an ID fails.
func (c *Collector) Register(info SwitchInfo) error {
	if info.ID == "" {
		return errors.New("fleet: empty switch id")
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return net.ErrClosed
	}
	if _, ok := c.members[info.ID]; ok {
		c.mu.Unlock()
		return fmt.Errorf("fleet: switch %q already registered", info.ID)
	}
	c.mu.Unlock()
	conn, err := c.dial(info.Addr, c.opts.Dial)
	if err != nil {
		return fmt.Errorf("fleet: dial switch %q at %s: %w", info.ID, info.Addr, err)
	}
	var mirror *Mirror
	if c.opts.Mirror {
		mirror, err = c.startMirror(info)
		if err != nil {
			conn.Close()
			return err
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		conn.Close()
		if mirror != nil {
			mirror.close()
		}
		return net.ErrClosed
	}
	if _, ok := c.members[info.ID]; ok {
		conn.Close()
		if mirror != nil {
			mirror.close()
		}
		return fmt.Errorf("fleet: switch %q already registered", info.ID)
	}
	c.members[info.ID] = &member{info: info, conn: conn, mirror: mirror}
	c.switchesG.Add(1)
	return nil
}

// Unregister closes the switch's session and removes it from the fleet.
func (c *Collector) Unregister(id string) error {
	c.mu.Lock()
	m, ok := c.members[id]
	if ok {
		delete(c.members, id)
		c.switchesG.Add(-1)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("fleet: switch %q not registered", id)
	}
	if m.mirror != nil {
		m.mirror.close()
	}
	return m.conn.Close()
}

// Close unregisters every switch and closes their sessions.
func (c *Collector) Close() error {
	c.mu.Lock()
	c.closed = true
	members := make([]*member, 0, len(c.members))
	for id, m := range c.members {
		members = append(members, m)
		delete(c.members, id)
	}
	c.switchesG.Add(int64(-len(members)))
	c.mu.Unlock()
	var first error
	for _, m := range members {
		if m.mirror != nil {
			m.mirror.close()
		}
		if err := m.conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Switches returns the registered switches sorted by hop, then ID.
func (c *Collector) Switches() []SwitchInfo {
	c.mu.Lock()
	out := make([]SwitchInfo, 0, len(c.members))
	for _, m := range c.members {
		out = append(out, m.info)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hop != out[j].Hop {
			return out[i].Hop < out[j].Hop
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func (c *Collector) lookup(id string) *member {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.members[id]
}

// HopRef names one hop of a path query: a registered switch and the
// egress port the victim's path takes through it.
type HopRef struct {
	SwitchID string
	Port     int
}

// HopResult is one hop's answer to a path query. Every requested hop
// yields exactly one HopResult — partial-result semantics — with either
// Counts (the wire-form per-flow packet counts) or Err set.
type HopResult struct {
	SwitchID string
	Hop      int
	Port     int
	Counts   map[string]float64
	Err      error
	// Latency is the hop's round-trip wall time (including retries), up
	// to the per-hop deadline. Mirror-served answers report the local
	// query time.
	Latency time.Duration
	// Mirrored marks an answer served from the collector's local replica
	// instead of a network round trip to the switch.
	Mirrored bool
	// Stale marks a mirrored answer whose interval extends past the
	// replica's covered span: data the switch retired after LagNs before
	// the query's end is missing. Never set silently — a stale answer is
	// only produced within Options.MirrorStalenessNs, or as the explicit
	// last resort when the switch itself is unreachable.
	Stale bool
	// LagNs is how far the query's end exceeded the mirror's covered
	// span (0 for fresh answers).
	LagNs uint64
}

// QueryPath fans an interval query out to every hop of the path
// concurrently (bounded by Options.Workers) and returns one HopResult per
// requested hop, in request order. It never returns early: hops that fail
// or miss the per-hop deadline are reported in place with their error.
func (c *Collector) QueryPath(hops []HopRef, start, end uint64) []HopResult {
	t0 := time.Now()
	c.queries.Inc()
	tr := c.opts.Tracer.Start("fleet.query")
	results := make([]HopResult, len(hops))
	var wg sync.WaitGroup
	for i, h := range hops {
		results[i] = HopResult{SwitchID: h.SwitchID, Hop: i, Port: h.Port}
		m := c.lookup(h.SwitchID)
		if m == nil {
			results[i].Err = fmt.Errorf("fleet: unknown switch %q", h.SwitchID)
			c.hopErrors.Inc()
			continue
		}
		results[i].Hop = m.info.Hop
		// Mirror fast path, inline: a covered interval is answered from
		// the local replica without a goroutine, a pool slot, or a wire
		// round trip — this is what makes a warm-mirror fan-out run at
		// local speed.
		if m.mirror != nil {
			if res, ok := c.tryMirror(m, h.Port, start, end, false); ok {
				results[i] = res
				continue
			}
			c.streamFallbacks.Inc()
		}
		wg.Add(1)
		go func(i int, m *member, port int) {
			defer wg.Done()
			c.sem <- struct{}{} // bounded fan-out pool
			defer func() { <-c.sem }()
			results[i] = c.queryHop(m, port, start, end, tr)
		}(i, m, h.Port)
	}
	wg.Wait()
	failed, ok := 0, 0
	for i := range results {
		if results[i].Err != nil {
			failed++
		} else {
			ok++
		}
	}
	if failed > 0 && ok > 0 {
		c.partials.Inc()
	}
	c.fanoutLat.ObserveEx(uint64(time.Since(t0)), tr.ID())
	if failed > 0 {
		tr.Finish(fmt.Sprintf("%d/%d hops failed", failed, len(results)))
	} else {
		tr.Finish("")
	}
	return results
}

// queryHop runs one hop's network leg (the mirror fast path, if any,
// already declined inline in QueryPath), coalesced with identical
// in-flight legs. A leg that dies with a transport error falls back to the
// mirror as an explicit last resort — annotated stale, never silent —
// which is how a blackholed switch keeps answering.
func (c *Collector) queryHop(m *member, port int, start, end uint64, tr *tracing.Trace) HopResult {
	res := c.queryHopNet(m, port, start, end, tr)
	if res.Err != nil && transportError(res.Err) && m.mirror != nil {
		if degraded, ok := c.tryMirror(m, port, start, end, true); ok {
			if !degraded.Stale {
				// Unreachable switch: annotate even a fully covered answer.
				degraded.Stale = true
				c.streamStaleServed.Inc()
			}
			return degraded
		}
	}
	return res
}

// flightKey identifies one coalescable network leg.
type flightKey struct {
	id         string
	port       int
	start, end uint64
}

// flightCall is one in-flight leader; followers block on done and share
// its result (including the counts map, which is read-only downstream).
type flightCall struct {
	done chan struct{}
	res  HopResult
}

// queryHopNet coalesces identical concurrent network legs: the first
// caller (the leader) performs the round trip, later callers wait for its
// result. The leader already holds a fan-out pool slot, so followers
// waiting never starve it.
func (c *Collector) queryHopNet(m *member, port int, start, end uint64, tr *tracing.Trace) HopResult {
	key := flightKey{id: m.info.ID, port: port, start: start, end: end}
	c.flightMu.Lock()
	if fc, ok := c.flights[key]; ok {
		c.flightMu.Unlock()
		c.coalesced.Inc()
		<-fc.done
		return fc.res
	}
	fc := &flightCall{done: make(chan struct{})}
	c.flights[key] = fc
	c.flightMu.Unlock()
	fc.res = c.queryHopDirect(m, port, start, end, tr)
	c.flightMu.Lock()
	delete(c.flights, key)
	c.flightMu.Unlock()
	close(fc.done)
	return fc.res
}

// queryHopDirect runs one fan-out leg under the per-hop deadline. The
// leg's client spans and the hop's server spans land in tr (shared across
// legs; span recording is lock-free and concurrent-safe).
func (c *Collector) queryHopDirect(m *member, port int, start, end uint64, tr *tracing.Trace) HopResult {
	res := HopResult{SwitchID: m.info.ID, Hop: m.info.Hop, Port: port}
	sp := tr.StartSpan("fleet.hop."+m.info.ID, tracing.SrcClient)
	t0 := time.Now()
	type answer struct {
		counts map[string]float64
		err    error
	}
	ch := make(chan answer, 1) // buffered: a late answer after deadline is dropped, not leaked
	go func() {
		counts, err := m.conn.IntervalTraced(port, start, end, tr)
		ch <- answer{counts, err}
	}()
	var deadlineC <-chan time.Time
	if c.opts.HopTimeout > 0 {
		timer := time.NewTimer(c.opts.HopTimeout)
		defer timer.Stop()
		deadlineC = timer.C
	}
	select {
	case a := <-ch:
		res.Counts, res.Err = a.counts, a.err
		if a.err != nil {
			c.hopErrors.Inc()
		}
	case <-deadlineC:
		res.Err = ErrHopTimeout
		c.hopTimeouts.Inc()
	}
	res.Latency = time.Since(t0)
	sp.End()
	m.note(res.Err)
	return res
}

// Status is one switch's collector-side health.
type Status struct {
	Info SwitchInfo
	// LastOK is when the switch last answered a round trip (application
	// errors count: they prove the query plane is alive).
	LastOK time.Time
	// LastErr is the most recent transport failure, nil when healthy.
	LastErr error
	// Reconnects is the session's lifetime redial count — how often the
	// connection was poisoned and re-established.
	Reconnects int64
}

// Health snapshots every registered switch's state, sorted by hop.
func (c *Collector) Health() []Status {
	c.mu.Lock()
	members := make([]*member, 0, len(c.members))
	for _, m := range c.members {
		members = append(members, m)
	}
	c.mu.Unlock()
	out := make([]Status, 0, len(members))
	for _, m := range members {
		m.mu.Lock()
		out = append(out, Status{
			Info:       m.info,
			LastOK:     m.lastOK,
			LastErr:    m.lastErr,
			Reconnects: m.conn.Reconnects(),
		})
		m.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Info.Hop != out[j].Info.Hop {
			return out[i].Info.Hop < out[j].Info.Hop
		}
		return out[i].Info.ID < out[j].Info.ID
	})
	return out
}

// Poll issues one cheap liveness query to every registered switch (an
// interval probe on the given port) and records the outcomes; Health
// reflects them. Probes run under the fan-out pool like any query.
func (c *Collector) Poll(port int) {
	c.polls.Inc()
	c.mu.Lock()
	members := make([]*member, 0, len(c.members))
	for _, m := range c.members {
		members = append(members, m)
	}
	c.mu.Unlock()
	var wg sync.WaitGroup
	for _, m := range members {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			c.sem <- struct{}{}
			defer func() { <-c.sem }()
			_, err := m.conn.Interval(port, 0, 1)
			m.note(err)
		}(m)
	}
	wg.Wait()
}

// StartPolling launches a background liveness poller at the given period,
// returning its stop function (idempotent).
func (c *Collector) StartPolling(period time.Duration, port int) (stop func()) {
	if period <= 0 {
		period = time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				c.Poll(port)
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
