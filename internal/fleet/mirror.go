package fleet

// Mirror is the collector-side half of checkpoint streaming: an embedded
// histstore replica of one switch's checkpoint history, fed by a
// CheckpointStream subscription. Frames arrive carrying the switch's
// already-encoded record payload plus its index metadata, so replication
// costs one segment-log append and zero codec work; interval queries then
// run the same coverage-binary-search + cell-index machinery the switch
// itself uses, at local speed, with no per-query network round trip.
//
// Soundness is coverage-based, not wall-clock-based: per-port freeze times
// are monotone, so once a record covering (PrevFreeze, FreezeTime] has
// been ingested, that span of the switch's history can never change
// retroactively. A query is served locally only when its interval lies
// inside the mirror's contiguous covered span (or sticks out by no more
// than the configured staleness bound, in which case the answer is
// explicitly annotated stale) — never silently.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"printqueue/internal/core/control"
	"printqueue/internal/core/histstore"
	"printqueue/internal/core/timewindow"
	"printqueue/internal/telemetry"
)

// mirrorCover tracks the contiguous covered suffix of one port's history:
// records with FreezeTime in (start, end] are all present. complete means
// the cover reaches back to the beginning of the switch's retained
// history (the port was first seen during a from-zero replay session), so
// queries starting before start are still fully answerable — the switch
// itself has nothing older either.
type mirrorCover struct {
	start    uint64
	end      uint64
	n        int
	complete bool
}

// Mirror replicates one switch's checkpoint log and answers interval
// queries from it.
type Mirror struct {
	c    *Collector
	info SwitchInfo
	dial control.DialOptions

	store *histstore.Store

	mu     sync.Mutex
	covers map[int]*mirrorCover
	cur    *control.CheckpointStream
	// sessionComplete marks the current subscription as a from-zero
	// replay: ports first seen under it get complete covers.
	sessionComplete bool
	coeff           []float64
	coeffT          int

	// qcache memoizes interval answers. A cover is an append-only suffix:
	// while (end, n) are unchanged, the records a query folds over are
	// unchanged, so the cached counts stay exact. Entries are validated
	// against the live cover on every hit and the map is wiped wholesale at
	// the size bound — repeated dashboard queries cost one map lookup.
	qmu    sync.Mutex
	qcache map[mirrorQKey]mirrorQVal

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// mirrorQKey identifies one memoizable interval query.
type mirrorQKey struct {
	port       int
	start, end uint64
}

// mirrorQVal is a memoized answer, valid while the port's cover still has
// the same end and record count. The counts map is shared with every
// caller that hits the entry and must be treated as read-only (the same
// contract the singleflight result already carries).
type mirrorQVal struct {
	covEnd uint64
	covN   int
	counts map[string]float64
}

// mirrorQCacheCap bounds the memo table; past it the table is dropped
// wholesale (cheaper than LRU bookkeeping on a hot path, and a full wipe
// just costs the next few queries a recompute).
const mirrorQCacheCap = 1024

// cachedQuery returns the memoized answer for the interval if the port's
// cover has not advanced since it was computed.
func (m *Mirror) cachedQuery(key mirrorQKey, cov mirrorCover) (map[string]float64, bool) {
	m.qmu.Lock()
	defer m.qmu.Unlock()
	v, ok := m.qcache[key]
	if !ok || v.covEnd != cov.end || v.covN != cov.n {
		return nil, false
	}
	return v.counts, true
}

// storeQuery memoizes one computed answer.
func (m *Mirror) storeQuery(key mirrorQKey, cov mirrorCover, counts map[string]float64) {
	m.qmu.Lock()
	defer m.qmu.Unlock()
	if m.qcache == nil || len(m.qcache) >= mirrorQCacheCap {
		m.qcache = make(map[mirrorQKey]mirrorQVal, 64)
	}
	m.qcache[key] = mirrorQVal{covEnd: cov.end, covN: cov.n, counts: counts}
}

// mirrorDirName maps a switch ID to a safe directory component.
func mirrorDirName(id string) string {
	var b strings.Builder
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "switch"
	}
	return b.String()
}

// startMirror opens the replica store and launches the streamer for one
// registered switch.
func (c *Collector) startMirror(info SwitchInfo) (*Mirror, error) {
	dir := filepath.Join(c.opts.MirrorDir, mirrorDirName(info.ID))
	// The mirror is a cache of the switch's durable log, not a store of
	// record: wipe any stale replica so a collector restart re-replays
	// from the switch instead of appending duplicates over old segments.
	if err := os.RemoveAll(dir); err != nil {
		return nil, fmt.Errorf("fleet: reset mirror dir for %q: %w", info.ID, err)
	}
	// Each mirror store gets a private registry: the store registers
	// fixed-name histstore gauges, which would collide across mirrors on
	// the collector's shared registry.
	st, err := histstore.Open(histstore.Options{Dir: dir}, telemetry.NewRegistry())
	if err != nil {
		return nil, fmt.Errorf("fleet: open mirror store for %q: %w", info.ID, err)
	}
	dialOpts := c.opts.Dial
	if c.opts.MirrorDial != nil {
		dialOpts = *c.opts.MirrorDial
	}
	m := &Mirror{
		c:      c,
		info:   info,
		dial:   dialOpts,
		store:  st,
		covers: make(map[int]*mirrorCover),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go m.run()
	return m, nil
}

// close stops the streamer (unblocking a pending Next via the connection)
// and closes the replica store.
func (m *Mirror) close() {
	m.once.Do(func() {
		close(m.stop)
		m.mu.Lock()
		if m.cur != nil {
			m.cur.Close()
		}
		m.mu.Unlock()
		<-m.done
		m.store.Close()
	})
}

// watermark is the resubscribe point: the smallest covered end across
// ports (records past it may be missing for some port). fresh reports
// that nothing has been ingested yet, i.e. the subscription replays the
// switch's whole retained history.
func (m *Mirror) watermark() (since uint64, fresh bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.covers) == 0 {
		return 0, true
	}
	since = ^uint64(0)
	for _, cov := range m.covers {
		if cov.end < since {
			since = cov.end
		}
	}
	return since, false
}

// run is the streamer goroutine: subscribe, ingest until the stream
// breaks (error, resync marker, or close), resubscribe from the watermark
// with exponential backoff. A resync redial replays the dropped records
// from the switch's segment log, healing the gap.
func (m *Mirror) run() {
	defer close(m.done)
	const backoffBase = 50 * time.Millisecond
	const backoffMax = 2 * time.Second
	backoff := backoffBase
	first := true
	for {
		select {
		case <-m.stop:
			return
		default:
		}
		since, fresh := m.watermark()
		st, err := control.DialCheckpoints(m.info.Addr, since, m.dial)
		if err != nil {
			if !m.sleep(backoff) {
				return
			}
			if backoff *= 2; backoff > backoffMax {
				backoff = backoffMax
			}
			continue
		}
		if !first {
			m.c.streamReconnects.Inc()
		}
		first = false
		backoff = backoffBase
		m.mu.Lock()
		m.cur = st
		m.sessionComplete = fresh
		m.mu.Unlock()
		for {
			f, err := st.Next()
			if err != nil {
				if errors.Is(err, control.ErrStreamResync) {
					m.c.streamResyncs.Inc()
				}
				break
			}
			m.ingest(f)
		}
		m.mu.Lock()
		m.cur = nil
		m.mu.Unlock()
		st.Close()
	}
}

// sleep waits d or until the mirror is stopped.
func (m *Mirror) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-m.stop:
		return false
	case <-t.C:
		return true
	}
}

// ingest replicates one pushed checkpoint frame: append the encoded
// payload to the local segment log, then advance the port's cover. The
// append happens first so the cover never claims data the store does not
// hold. Duplicates (the live subscription overlaps the replay, and the
// reconnect watermark is the minimum across ports) are skipped by freeze
// time.
func (m *Mirror) ingest(f control.CheckpointFrame) {
	m.c.streamFrames.Inc()
	m.c.streamBytes.Add(int64(len(f.Payload)))
	if f.Replay {
		m.c.streamReplayed.Inc()
	}
	m.mu.Lock()
	if cov := m.covers[f.Port]; cov != nil && f.FreezeTime <= cov.end {
		m.mu.Unlock()
		return
	}
	m.mu.Unlock()
	if err := m.store.AppendEncoded(f.Payload, f.Port, f.FreezeTime, f.PrevFreeze, f.Special); err != nil {
		return
	}
	m.mu.Lock()
	if cov := m.covers[f.Port]; cov == nil {
		m.covers[f.Port] = &mirrorCover{
			start:    f.PrevFreeze,
			end:      f.FreezeTime,
			n:        1,
			complete: m.sessionComplete,
		}
	} else {
		if f.PrevFreeze > cov.end {
			// A hole: records between cov.end and f.PrevFreeze never
			// arrived (dropped under backpressure on a switch without a
			// log, or a failed replay). Shrink the contiguous cover to the
			// post-gap suffix; pre-gap records stay in the store but
			// Covering's freeze-time filter keeps them out of any query
			// the cover admits.
			cov.start = f.PrevFreeze
			cov.complete = false
		}
		cov.end = f.FreezeTime
		cov.n++
	}
	m.mu.Unlock()
}

// coverage returns the port's covered span (a copy).
func (m *Mirror) coverage(port int) (mirrorCover, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cov := m.covers[port]
	if cov == nil {
		return mirrorCover{}, false
	}
	return *cov, true
}

// Query answers an interval query from the replica, bit-identically to
// the switch's own query path: the same coverage search, the same
// per-checkpoint clamping, the same integer accumulator and coefficient
// fold (see control.accumulateCold). Callers gate on coverage first; this
// method just computes over whatever records the store holds.
func (m *Mirror) Query(port int, start, end uint64) (map[string]float64, error) {
	if end <= start {
		return nil, fmt.Errorf("fleet: empty interval [%d, %d)", start, end)
	}
	cps, err := m.store.Covering(port, start, end)
	if err != nil {
		return nil, err
	}
	if len(cps) == 0 {
		return map[string]float64{}, nil
	}
	cfg := cps[0].Record().TW.Config()
	m.mu.Lock()
	if m.coeff == nil || m.coeffT != cfg.T {
		m.coeff = cfg.Coefficients()
		m.coeffT = cfg.T
	}
	coeff := m.coeff
	m.mu.Unlock()
	acc := timewindow.NewAccumulator(cfg.T, coeff)
	for _, cc := range cps {
		rec := cc.Record()
		lo, hi := start, end
		if rec.PrevFreeze > lo {
			lo = rec.PrevFreeze
		}
		if rec.FreezeTime < hi {
			hi = rec.FreezeTime
		}
		if hi <= lo {
			continue
		}
		cc.Filtered().AccumulateInto(acc, lo, hi)
	}
	counts := acc.Counts()
	res := make(map[string]float64, len(counts))
	for f, n := range counts {
		res[f.String()] = n
	}
	return res, nil
}

// tryMirror attempts to serve one hop query from the member's mirror.
// Normal mode (degraded=false) serves only when the interval is fully
// covered, or lags past the cover's end by no more than
// Options.MirrorStalenessNs — the lagged answer is annotated Stale with
// its LagNs. Degraded mode (the network leg already failed with a
// transport error) serves any overlapping coverage, always annotated
// stale with the measured lag: an explicit degraded answer, never a
// silent one.
func (c *Collector) tryMirror(m *member, port int, start, end uint64, degraded bool) (HopResult, bool) {
	res := HopResult{SwitchID: m.info.ID, Hop: m.info.Hop, Port: port}
	mir := m.mirror
	if mir == nil {
		return res, false
	}
	cov, ok := mir.coverage(port)
	if !ok || cov.n == 0 {
		return res, false
	}
	if start < cov.start && !cov.complete {
		return res, false
	}
	var lag uint64
	if end > cov.end {
		lag = end - cov.end
	}
	if degraded {
		if cov.end <= start {
			// No overlap at all: an answer would be vacuously empty.
			return res, false
		}
	} else if lag > c.opts.MirrorStalenessNs {
		return res, false
	}
	t0 := time.Now()
	key := mirrorQKey{port: port, start: start, end: end}
	counts, hit := mir.cachedQuery(key, cov)
	if !hit {
		var err error
		counts, err = mir.Query(port, start, end)
		if err != nil {
			return res, false
		}
		mir.storeQuery(key, cov, counts)
	}
	res.Counts = counts
	res.Latency = time.Since(t0)
	res.Mirrored = true
	res.LagNs = lag
	res.Stale = lag > 0
	c.streamMirrorQueries.Inc()
	if res.Stale {
		c.streamStaleServed.Inc()
	}
	return res, true
}
