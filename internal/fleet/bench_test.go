package fleet

// BenchmarkFleetQuery measures a collector fan-out over N=8 simulated
// switches under an injected per-leg RTT. Loopback has ~0 RTT, so without
// the delay every fan-out degenerates to a CPU benchmark; with it the
// figure of merit is how close one fan-out's wall time stays to a single
// hop's round trip (the legs overlap under the worker pool) rather than
// the sum over hops.

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"printqueue/internal/core/control"
	"printqueue/internal/core/histstore"
	"printqueue/internal/pktrec"
)

func benchPkt(hop, i int, ts uint64) *pktrec.Packet {
	return &pktrec.Packet{
		Flow: fleetKey(byte(hop), byte(i%3)),
		Port: 0,
		Meta: pktrec.Metadata{EnqTimestamp: ts - 40, DeqTimedelta: 40, EnqQdepth: 8 + i%9},
	}
}

// benchRTT is the injected round trip per leg (one-way delay RTT/2 on
// client writes only, so replies return after ~RTT/2; the asymmetry is
// identical across legs and irrelevant to the overlap being measured).
const benchRTT = 2 * time.Millisecond

// delayConn defers writes by a fixed propagation delay: Write returns
// immediately and a deliverer goroutine forwards chunks when due, so
// concurrent in-flight writes overlap rather than serialize.
type delayConn struct {
	net.Conn
	d      time.Duration
	q      chan delayChunk
	closed chan struct{}
	once   sync.Once

	emu  sync.Mutex
	werr error
}

type delayChunk struct {
	due time.Time
	p   []byte
}

func newDelayConn(c net.Conn, d time.Duration) *delayConn {
	dc := &delayConn{Conn: c, d: d, q: make(chan delayChunk, 4096), closed: make(chan struct{})}
	go dc.deliver()
	return dc
}

func (dc *delayConn) deliver() {
	for {
		select {
		case <-dc.closed:
			return
		case ch := <-dc.q:
			if wait := time.Until(ch.due); wait > 0 {
				time.Sleep(wait)
			}
			if _, err := dc.Conn.Write(ch.p); err != nil {
				dc.emu.Lock()
				dc.werr = err
				dc.emu.Unlock()
				return
			}
		}
	}
}

func (dc *delayConn) Write(p []byte) (int, error) {
	dc.emu.Lock()
	err := dc.werr
	dc.emu.Unlock()
	if err != nil {
		return 0, err
	}
	buf := make([]byte, len(p))
	copy(buf, p)
	select {
	case dc.q <- delayChunk{due: time.Now().Add(dc.d), p: buf}:
		return len(p), nil
	case <-dc.closed:
		return 0, net.ErrClosed
	}
}

func (dc *delayConn) Close() error {
	dc.once.Do(func() { close(dc.closed) })
	return dc.Conn.Close()
}

func delayDialer(d time.Duration) func(string, time.Duration) (net.Conn, error) {
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		return newDelayConn(c, d), nil
	}
}

// benchSwitch mirrors the test fixture without testing.T cleanup plumbing.
func benchSwitch(b *testing.B, hop int) (addr string, shutdown func()) {
	b.Helper()
	sys, err := control.New(fleetConfig())
	if err != nil {
		b.Fatal(err)
	}
	var ts uint64 = 1000
	for i := 0; i < 60; i++ {
		ts += 10
		sys.OnDequeue(benchPkt(hop, i, ts))
	}
	sys.Finalize(ts + 1)
	qs := control.NewQueryServer(sys)
	qs.Start(4)
	srv, err := control.ServeQueries("127.0.0.1:0", qs)
	if err != nil {
		b.Fatal(err)
	}
	return srv.Addr().String(), func() {
		srv.Close()
		qs.Stop()
		sys.Close()
	}
}

func BenchmarkFleetQuery(b *testing.B) {
	const nSwitches = 8
	c := New(Options{
		Workers:    nSwitches,
		HopTimeout: 10 * time.Second,
		Dial:       control.DialOptions{Dialer: delayDialer(benchRTT / 2)},
	})
	defer c.Close()
	hops := make([]HopRef, nSwitches)
	for i := 0; i < nSwitches; i++ {
		addr, shutdown := benchSwitch(b, i)
		defer shutdown()
		if err := c.Register(SwitchInfo{ID: fmt.Sprintf("sw%d", i), Hop: i, Addr: addr}); err != nil {
			b.Fatal(err)
		}
		hops[i] = HopRef{SwitchID: fmt.Sprintf("sw%d", i), Port: 0}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := c.QueryPath(hops, 1000, 1700)
		for _, res := range results {
			if res.Err != nil {
				b.Fatalf("hop %s: %v", res.SwitchID, res.Err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(benchRTT.Nanoseconds()), "rtt-ns/leg")
}

// benchHistSwitch is benchSwitch plus a durable checkpoint history, so a
// mirror can replay it.
func benchHistSwitch(b *testing.B, hop int) (addr string, shutdown func()) {
	b.Helper()
	cfg := fleetConfig()
	cfg.History = &histstore.Options{Dir: b.TempDir()}
	sys, err := control.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var ts uint64 = 1000
	for i := 0; i < 60; i++ {
		ts += 10
		sys.OnDequeue(benchPkt(hop, i, ts))
	}
	sys.Finalize(ts + 1)
	qs := control.NewQueryServer(sys)
	qs.Start(4)
	srv, err := control.ServeQueries("127.0.0.1:0", qs)
	if err != nil {
		b.Fatal(err)
	}
	return srv.Addr().String(), func() {
		srv.Close()
		qs.Stop()
		sys.Close()
	}
}

// BenchmarkFleetQueryMirrored is BenchmarkFleetQuery with checkpoint
// streaming on: the same 8 switches behind the same injected RTT, but
// every hop's interval is answered from the collector's warm local
// replica. The per-query figure should sit orders of magnitude below the
// fan-out benchmark's, because no leg crosses the delayed network.
func BenchmarkFleetQueryMirrored(b *testing.B) {
	const nSwitches = 8
	c := New(Options{
		Workers:    nSwitches,
		HopTimeout: 10 * time.Second,
		Dial:       control.DialOptions{Dialer: delayDialer(benchRTT / 2)},
		Mirror:     true,
		MirrorDir:  b.TempDir(),
		// The bench interval's end (1700) reaches 99ns past the last
		// checkpoint freeze (1601); admit that lag so the mirror serves the
		// exact interval the fan-out benchmark queries.
		MirrorStalenessNs: 200,
	})
	defer c.Close()
	hops := make([]HopRef, nSwitches)
	for i := 0; i < nSwitches; i++ {
		addr, shutdown := benchHistSwitch(b, i)
		defer shutdown()
		if err := c.Register(SwitchInfo{ID: fmt.Sprintf("sw%d", i), Hop: i, Addr: addr}); err != nil {
			b.Fatal(err)
		}
		hops[i] = HopRef{SwitchID: fmt.Sprintf("sw%d", i), Port: 0}
	}
	// Warm every mirror through the feed horizon before timing.
	for i := 0; i < nSwitches; i++ {
		m := c.lookup(fmt.Sprintf("sw%d", i))
		deadline := time.Now().Add(30 * time.Second)
		for {
			if cov, ok := m.mirror.coverage(0); ok && cov.end >= 1601 {
				break
			}
			if time.Now().After(deadline) {
				b.Fatalf("mirror %d never warmed", i)
			}
			time.Sleep(time.Millisecond)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := c.QueryPath(hops, 1000, 1700)
		for _, res := range results {
			if res.Err != nil {
				b.Fatalf("hop %s: %v", res.SwitchID, res.Err)
			}
			if !res.Mirrored {
				b.Fatalf("hop %s fell back to the network mid-benchmark", res.SwitchID)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(benchRTT.Nanoseconds()), "rtt-ns/leg")
}
