package fleet

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"printqueue/internal/core/control"
	"printqueue/internal/core/qmonitor"
	"printqueue/internal/core/timewindow"
	"printqueue/internal/flow"
	"printqueue/internal/pktrec"
	"printqueue/internal/telemetry"
	"printqueue/internal/tracing"
)

// fleetKey namespaces flows per hop so each simulated switch answers with
// distinguishable counts.
func fleetKey(hop, n byte) flow.Key {
	return flow.Key{SrcIP: [4]byte{10, hop, 0, n}, DstIP: [4]byte{10, 0, 1, 1}, SrcPort: 5, DstPort: 80, Proto: flow.ProtoTCP}
}

func fleetConfig() control.Config {
	return control.Config{
		TW:    timewindow.Config{M0: 3, K: 6, Alpha: 1, T: 3, MinPktTxDelayNs: 10},
		QM:    qmonitor.Config{MaxDepthCells: 1024, GranuleCells: 4},
		Ports: []int{0},
	}
}

// startSwitch runs one simulated switch's query plane: a System fed 60
// dequeues on port 0 between t=1010 and t=1600 (flows namespaced by hop),
// served over TCP. Returns its address and the underlying System.
func startSwitch(t *testing.T, hop int) (addr string, sys *control.System, horizon uint64) {
	t.Helper()
	sys, err := control.New(fleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	var ts uint64 = 1000
	for i := 0; i < 60; i++ {
		ts += 10
		sys.OnDequeue(&pktrec.Packet{
			Flow: fleetKey(byte(hop), byte(i%3)),
			Port: 0,
			Meta: pktrec.Metadata{EnqTimestamp: ts - 40, DeqTimedelta: 40, EnqQdepth: 8 + i%9},
		})
	}
	sys.Finalize(ts + 1)
	qs := control.NewQueryServer(sys)
	qs.Start(2)
	t.Cleanup(qs.Stop)
	srv, err := control.ServeQueries("127.0.0.1:0", qs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr().String(), sys, ts
}

// newFleet builds a collector over n freshly served switches.
func newFleet(t *testing.T, n int, opts Options) (*Collector, []string, uint64) {
	t.Helper()
	c := New(opts)
	t.Cleanup(func() { c.Close() })
	addrs := make([]string, n)
	var horizon uint64
	for i := 0; i < n; i++ {
		addr, _, h := startSwitch(t, i)
		addrs[i] = addr
		horizon = h
		if err := c.Register(SwitchInfo{ID: fmt.Sprintf("sw%d", i), Hop: i, Addr: addr}); err != nil {
			t.Fatalf("register hop %d: %v", i, err)
		}
	}
	return c, addrs, horizon
}

// TestFleetQueryPathBitIdentical is the core acceptance property: each
// hop's counts from a fleet fan-out must be bit-identical to querying that
// switch directly over its own session.
func TestFleetQueryPathBitIdentical(t *testing.T) {
	c, addrs, horizon := newFleet(t, 3, Options{})
	hops := []HopRef{{"sw0", 0}, {"sw1", 0}, {"sw2", 0}}
	results := c.QueryPath(hops, 1000, horizon+1)
	if len(results) != 3 {
		t.Fatalf("got %d hop results, want 3", len(results))
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("hop %d (%s): %v", i, res.SwitchID, res.Err)
		}
		if res.Hop != i || res.SwitchID != hops[i].SwitchID {
			t.Fatalf("hop %d answered out of order: %+v", i, res)
		}
		direct, err := control.DialMux(addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		want, err := direct.Interval(0, 1000, horizon+1)
		direct.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(want) == 0 {
			t.Fatalf("hop %d: direct query returned no counts", i)
		}
		if !reflect.DeepEqual(res.Counts, want) {
			t.Fatalf("hop %d: fleet counts %v != direct counts %v", i, res.Counts, want)
		}
		// Flows are hop-namespaced: hop i must only see its own.
		for k := range res.Counts {
			if !strings.HasPrefix(k, fmt.Sprintf("10.%d.0.", i)) {
				t.Fatalf("hop %d reported foreign flow %q", i, k)
			}
		}
	}
}

// TestFleetPartialResults: an unknown switch in the path yields an
// in-place error result — never a silent drop — while other hops answer,
// and the partial-result metric increments.
func TestFleetPartialResults(t *testing.T) {
	reg := telemetry.NewRegistry()
	c, _, horizon := newFleet(t, 2, Options{Telemetry: reg})
	hops := []HopRef{{"sw0", 0}, {"ghost", 0}, {"sw1", 0}}
	results := c.QueryPath(hops, 1000, horizon+1)
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3 (one per requested hop)", len(results))
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "unknown switch") {
		t.Fatalf("ghost hop error = %v, want unknown-switch", results[1].Err)
	}
	if results[1].SwitchID != "ghost" {
		t.Fatalf("ghost hop result misattributed: %+v", results[1])
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Fatalf("surviving hop %d failed: %v", i, results[i].Err)
		}
		if len(results[i].Counts) == 0 {
			t.Fatalf("surviving hop %d returned no counts", i)
		}
	}
}

// slowConn stubs the query session seam: answers after a fixed delay.
type slowConn struct {
	delay  time.Duration
	counts map[string]float64
	err    error
}

func (s *slowConn) Interval(port int, start, end uint64) (map[string]float64, error) {
	time.Sleep(s.delay)
	return s.counts, s.err
}

func (s *slowConn) IntervalTraced(port int, start, end uint64, tr *tracing.Trace) (map[string]float64, error) {
	return s.Interval(port, start, end)
}
func (s *slowConn) Reconnects() int64 { return 0 }
func (s *slowConn) Close() error      { return nil }

// stubDial points the collector's dial seam at canned connections by
// address.
func stubDial(conns map[string]queryConn) func(string, control.DialOptions) (queryConn, error) {
	return func(addr string, _ control.DialOptions) (queryConn, error) {
		c, ok := conns[addr]
		if !ok {
			return nil, fmt.Errorf("stub: no conn for %s", addr)
		}
		return c, nil
	}
}

// TestFleetHopTimeout: a hop that exceeds the per-switch deadline is
// reported with ErrHopTimeout while fast hops still answer.
func TestFleetHopTimeout(t *testing.T) {
	fast := map[string]float64{"10.0.0.1:5>10.0.1.1:80/tcp": 3}
	c := New(Options{HopTimeout: 30 * time.Millisecond})
	defer c.Close()
	c.dial = stubDial(map[string]queryConn{
		"fast": &slowConn{counts: fast},
		"slow": &slowConn{delay: 2 * time.Second, counts: fast},
	})
	for i, addr := range []string{"fast", "slow"} {
		if err := c.Register(SwitchInfo{ID: addr, Hop: i, Addr: addr}); err != nil {
			t.Fatal(err)
		}
	}
	results := c.QueryPath([]HopRef{{"fast", 0}, {"slow", 0}}, 0, 100)
	if results[0].Err != nil || !reflect.DeepEqual(results[0].Counts, fast) {
		t.Fatalf("fast hop: %+v", results[0])
	}
	if !errors.Is(results[1].Err, ErrHopTimeout) {
		t.Fatalf("slow hop error = %v, want ErrHopTimeout", results[1].Err)
	}
	if results[1].Latency < 30*time.Millisecond {
		t.Fatalf("timed-out hop reported latency %v below the deadline", results[1].Latency)
	}
}

// TestFleetRegistration covers duplicate IDs, unregister, and the sorted
// fleet listing.
func TestFleetRegistration(t *testing.T) {
	c, addrs, _ := newFleet(t, 2, Options{})
	if err := c.Register(SwitchInfo{ID: "sw0", Hop: 7, Addr: addrs[0]}); err == nil {
		t.Fatal("duplicate switch id accepted")
	}
	if err := c.Register(SwitchInfo{ID: "", Addr: addrs[0]}); err == nil {
		t.Fatal("empty switch id accepted")
	}
	sws := c.Switches()
	ids := make([]string, len(sws))
	for i, s := range sws {
		ids[i] = s.ID
	}
	if !sort.StringsAreSorted(ids) || len(ids) != 2 {
		t.Fatalf("fleet listing %v not sorted by hop/id", ids)
	}
	if err := c.Unregister("sw0"); err != nil {
		t.Fatal(err)
	}
	if err := c.Unregister("sw0"); err == nil {
		t.Fatal("double unregister succeeded")
	}
	res := c.QueryPath([]HopRef{{"sw0", 0}}, 0, 100)
	if res[0].Err == nil {
		t.Fatal("query against unregistered switch succeeded")
	}
}

// TestFleetDiagnose: the per-hop culprit ranking must match each switch's
// own TopK over the same interval, with exact counts.
func TestFleetDiagnose(t *testing.T) {
	c, _, horizon := newFleet(t, 3, Options{})
	hops := []HopRef{{"sw0", 0}, {"sw1", 0}, {"sw2", 0}}
	d, err := c.Diagnose("victim-pkt-42", hops, 1000, horizon+1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Partial || len(d.FailedHops()) != 0 {
		t.Fatalf("clean path reported partial: %+v", d.FailedHops())
	}
	if len(d.Hops) != 3 {
		t.Fatalf("got %d hop diagnoses, want 3", len(d.Hops))
	}
	for i, hd := range d.Hops {
		if len(hd.Culprits) != 2 {
			t.Fatalf("hop %d: %d culprits, want k=2", i, len(hd.Culprits))
		}
		// Rankings are descending and hop-local.
		if hd.Culprits[0].Count < hd.Culprits[1].Count {
			t.Fatalf("hop %d culprits unsorted: %+v", i, hd.Culprits)
		}
		for _, cu := range hd.Culprits {
			if cu.Flow.SrcIP[1] != byte(i) {
				t.Fatalf("hop %d ranked foreign culprit %v", i, cu.Flow)
			}
			if want := hd.Counts[cu.Flow.String()]; cu.Count != want {
				t.Fatalf("hop %d culprit %v count %v != hop counts %v", i, cu.Flow, cu.Count, want)
			}
		}
	}
	if _, err := c.Diagnose("v", hops, 500, 500, 2); err == nil {
		t.Fatal("empty diagnosis interval accepted")
	}
}

// TestFleetDiagnoseMalformedKey: a hop replying with an unparseable flow
// key degrades to a per-hop error, not a fatal diagnosis failure.
func TestFleetDiagnoseMalformedKey(t *testing.T) {
	good := map[string]float64{"10.0.0.1:5>10.0.1.1:80/tcp": 3}
	c := New(Options{})
	defer c.Close()
	c.dial = stubDial(map[string]queryConn{
		"ok":  &slowConn{counts: good},
		"bad": &slowConn{counts: map[string]float64{"not-a-flow-key": 1}},
	})
	for i, id := range []string{"ok", "bad"} {
		if err := c.Register(SwitchInfo{ID: id, Hop: i, Addr: id}); err != nil {
			t.Fatal(err)
		}
	}
	d, err := c.Diagnose("v", []HopRef{{"ok", 0}, {"bad", 0}}, 0, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Partial {
		t.Fatal("malformed hop reply did not mark the diagnosis partial")
	}
	if got := d.FailedHops(); len(got) != 1 || got[0] != "bad" {
		t.Fatalf("failed hops = %v, want [bad]", got)
	}
	if len(d.Hops[0].Culprits) != 1 || d.Hops[0].Err != nil {
		t.Fatalf("healthy hop corrupted by sibling failure: %+v", d.Hops[0])
	}
}

// TestFleetHealthPolling: polls mark switches healthy; a dead switch's
// transport error surfaces in Health.
func TestFleetHealthPolling(t *testing.T) {
	c, addrs, _ := newFleet(t, 2, Options{
		Dial: control.DialOptions{Timeout: 300 * time.Millisecond, MaxRetries: 1, BackoffBase: time.Microsecond},
	})
	_ = addrs
	c.Poll(0)
	for _, st := range c.Health() {
		if st.LastOK.IsZero() || st.LastErr != nil {
			t.Fatalf("healthy switch %s reported unhealthy: %+v", st.Info.ID, st)
		}
	}
	stop := c.StartPolling(10*time.Millisecond, 0)
	time.Sleep(35 * time.Millisecond)
	stop()
	stop() // idempotent
}

// TestFleetTracingJoined: a sampled fleet query produces one trace whose
// spans include the fan-out legs and each hop's server-side stages.
func TestFleetTracingJoined(t *testing.T) {
	tracer := tracing.New(tracing.Config{SampleEvery: 1})
	c, _, horizon := newFleet(t, 3, Options{Tracer: tracer})
	results := c.QueryPath([]HopRef{{"sw0", 0}, {"sw1", 0}, {"sw2", 0}}, 1000, horizon+1)
	for _, res := range results {
		if res.Err != nil {
			t.Fatalf("hop %s: %v", res.SwitchID, res.Err)
		}
	}
	traces := tracer.Traces()
	if len(traces) == 0 {
		t.Fatal("no trace recorded for a sampled fleet query")
	}
	srcs := map[string]int{}
	hopSpans := 0
	for _, sp := range traces[0].Spans() {
		srcs[sp.Src]++
		if strings.HasPrefix(sp.Name, "fleet.hop.") {
			hopSpans++
		}
	}
	if hopSpans != 3 {
		t.Fatalf("trace has %d fleet.hop spans, want 3: %+v", hopSpans, traces[0].Spans())
	}
	if srcs[tracing.SrcServer] == 0 {
		t.Fatalf("trace absorbed no server-side spans: %v", srcs)
	}
}
