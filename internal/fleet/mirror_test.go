package fleet

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"printqueue/internal/core/control"
	"printqueue/internal/core/histstore"
	"printqueue/internal/pktrec"
	"printqueue/internal/telemetry"
)

// startHistSwitch is startSwitch with a durable checkpoint history — the
// segment log that checkpoint streaming replays from, so a mirror can warm
// up against traffic that predates its subscription.
func startHistSwitch(t *testing.T, hop int) (addr string, sys *control.System, horizon uint64, srv *control.NetServer) {
	t.Helper()
	cfg := fleetConfig()
	cfg.History = &histstore.Options{Dir: t.TempDir()}
	sys, err := control.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	var ts uint64 = 1000
	for i := 0; i < 60; i++ {
		ts += 10
		sys.OnDequeue(&pktrec.Packet{
			Flow: fleetKey(byte(hop), byte(i%3)),
			Port: 0,
			Meta: pktrec.Metadata{EnqTimestamp: ts - 40, DeqTimedelta: 40, EnqQdepth: 8 + i%9},
		})
	}
	sys.Finalize(ts + 1)
	qs := control.NewQueryServer(sys)
	qs.Start(2)
	t.Cleanup(qs.Stop)
	srv, err = control.ServeQueries("127.0.0.1:0", qs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr().String(), sys, ts, srv
}

// newMirroredFleet builds a mirror-mode collector over n switches with
// durable histories and waits until every mirror's replay has caught up to
// the feed horizon.
func newMirroredFleet(t *testing.T, n int, opts Options) (*Collector, []string, uint64) {
	t.Helper()
	opts.Mirror = true
	if opts.MirrorDir == "" {
		opts.MirrorDir = t.TempDir()
	}
	c := New(opts)
	t.Cleanup(func() { c.Close() })
	addrs := make([]string, n)
	var horizon uint64
	for i := 0; i < n; i++ {
		addr, _, h, _ := startHistSwitch(t, i)
		addrs[i] = addr
		horizon = h
		if err := c.Register(SwitchInfo{ID: fmt.Sprintf("sw%d", i), Hop: i, Addr: addr}); err != nil {
			t.Fatalf("register hop %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		waitMirrorWarm(t, c, fmt.Sprintf("sw%d", i), 0, horizon+1)
	}
	return c, addrs, horizon
}

// waitMirrorWarm blocks until the switch's mirror covers through target.
func waitMirrorWarm(t *testing.T, c *Collector, id string, port int, target uint64) {
	t.Helper()
	m := c.lookup(id)
	if m == nil || m.mirror == nil {
		t.Fatalf("switch %s has no mirror", id)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if cov, ok := m.mirror.coverage(port); ok && cov.end >= target {
			return
		}
		if time.Now().After(deadline) {
			cov, ok := m.mirror.coverage(port)
			t.Fatalf("mirror for %s never warmed to %d (cover %+v ok=%v)", id, target, cov, ok)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFleetMirrorBitIdentical is the differential acceptance property:
// with warm mirrors, every hop of a path query is answered locally and the
// counts are bit-identical to querying the switch directly.
func TestFleetMirrorBitIdentical(t *testing.T) {
	c, addrs, horizon := newMirroredFleet(t, 3, Options{})
	hops := []HopRef{{"sw0", 0}, {"sw1", 0}, {"sw2", 0}}
	results := c.QueryPath(hops, 1000, horizon+1)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("hop %d: %v", i, res.Err)
		}
		if !res.Mirrored {
			t.Fatalf("hop %d not served from its warm mirror: %+v", i, res)
		}
		if res.Stale || res.LagNs != 0 {
			t.Fatalf("fully covered hop %d annotated stale: %+v", i, res)
		}
		direct, err := control.DialMux(addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		want, err := direct.Interval(0, 1000, horizon+1)
		direct.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(want) == 0 {
			t.Fatalf("hop %d: direct query returned no counts", i)
		}
		if !reflect.DeepEqual(res.Counts, want) {
			t.Fatalf("hop %d: mirror counts %v != direct counts %v", i, res.Counts, want)
		}
	}
	if got := c.streamMirrorQueries.Load(); got != 3 {
		t.Fatalf("mirror queries counter = %d, want 3", got)
	}
	if got := c.streamFallbacks.Load(); got != 0 {
		t.Fatalf("warm fleet recorded %d fallbacks", got)
	}
}

// TestFleetMirrorRandomIntervals fuzzes the differential property over
// random intervals that land in the cold tier, the hot tier, and straddle
// both: the mirror must agree bit-for-bit with the switch everywhere its
// coverage admits the query.
func TestFleetMirrorRandomIntervals(t *testing.T) {
	c, addrs, horizon := newMirroredFleet(t, 1, Options{})
	direct, err := control.DialMux(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	// A deterministic LCG stands in for math/rand: same spread, no seed
	// plumbing.
	state := uint64(0x9E3779B97F4A7C15)
	next := func(span uint64) uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return (state >> 33) % span
	}
	span := horizon + 1 - 900
	for trial := 0; trial < 40; trial++ {
		start := 900 + next(span)
		end := start + 1 + next(span)
		if end > horizon+1 {
			end = horizon + 1
		}
		if end <= start {
			continue
		}
		res := c.QueryPath([]HopRef{{"sw0", 0}}, start, end)[0]
		if res.Err != nil {
			t.Fatalf("[%d,%d): %v", start, end, res.Err)
		}
		if !res.Mirrored {
			t.Fatalf("[%d,%d) inside coverage not mirror-served", start, end)
		}
		want, err := direct.Interval(0, start, end)
		if err != nil {
			t.Fatalf("[%d,%d) direct: %v", start, end, err)
		}
		if !reflect.DeepEqual(res.Counts, want) {
			t.Fatalf("[%d,%d): mirror %v != direct %v", start, end, res.Counts, want)
		}
	}
}

// TestFleetMirrorStalenessGate: a query reaching past the mirror's cover
// falls back to the network under the strict default, and is served
// locally with an explicit Stale/LagNs annotation under a tolerant bound.
func TestFleetMirrorStalenessGate(t *testing.T) {
	strict, _, horizon := newMirroredFleet(t, 1, Options{})
	res := strict.QueryPath([]HopRef{{"sw0", 0}}, 1000, horizon+5)[0]
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Mirrored {
		t.Fatalf("strict staleness served a lagged query from the mirror: %+v", res)
	}
	if got := strict.streamFallbacks.Load(); got == 0 {
		t.Fatal("fallback not counted")
	}

	tolerant, _, horizon := newMirroredFleet(t, 1, Options{MirrorStalenessNs: 100})
	res = tolerant.QueryPath([]HopRef{{"sw0", 0}}, 1000, horizon+5)[0]
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Mirrored || !res.Stale {
		t.Fatalf("tolerant bound did not serve an annotated stale answer: %+v", res)
	}
	if want := uint64(4); res.LagNs != want {
		t.Fatalf("LagNs = %d, want %d", res.LagNs, want)
	}
	if got := tolerant.streamStaleServed.Load(); got != 1 {
		t.Fatalf("stale-served counter = %d, want 1", got)
	}
}

// TestFleetMirrorColdFallback: mirror mode against a switch with no
// durable history — there is nothing to replay, so queries over old
// traffic fall back to the network and stay correct.
func TestFleetMirrorColdFallback(t *testing.T) {
	addr, _, horizon := startSwitch(t, 0)
	c := New(Options{Mirror: true, MirrorDir: t.TempDir()})
	t.Cleanup(func() { c.Close() })
	if err := c.Register(SwitchInfo{ID: "sw0", Hop: 0, Addr: addr}); err != nil {
		t.Fatal(err)
	}
	res := c.QueryPath([]HopRef{{"sw0", 0}}, 1000, horizon+1)[0]
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Mirrored {
		t.Fatalf("cold mirror claimed to answer: %+v", res)
	}
	if len(res.Counts) == 0 {
		t.Fatal("network fallback returned no counts")
	}
	if got := c.streamFallbacks.Load(); got == 0 {
		t.Fatal("cold-mirror fallback not counted")
	}
}

// TestFleetCoalescedQueries: identical concurrent network legs collapse to
// one upstream round trip; followers share the leader's result.
func TestFleetCoalescedQueries(t *testing.T) {
	want := map[string]float64{"10.0.0.1:5>10.0.1.1:80/tcp": 3}
	c := New(Options{Workers: 16})
	defer c.Close()
	c.dial = stubDial(map[string]queryConn{
		"slow": &slowConn{delay: 100 * time.Millisecond, counts: want},
	})
	if err := c.Register(SwitchInfo{ID: "slow", Hop: 0, Addr: "slow"}); err != nil {
		t.Fatal(err)
	}
	const callers = 8
	var wg sync.WaitGroup
	results := make([][]HopResult, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.QueryPath([]HopRef{{"slow", 0}}, 0, 100)
		}(i)
	}
	wg.Wait()
	for i, rs := range results {
		if rs[0].Err != nil || !reflect.DeepEqual(rs[0].Counts, want) {
			t.Fatalf("caller %d: %+v", i, rs[0])
		}
	}
	coalesced := c.coalesced.Load()
	if coalesced == 0 {
		t.Fatal("no coalescing despite identical concurrent legs")
	}
	if coalesced > callers-1 {
		t.Fatalf("coalesced %d legs, more than the %d possible followers", coalesced, callers-1)
	}
	// A different interval must NOT join the flight.
	res := c.QueryPath([]HopRef{{"slow", 0}}, 0, 101)[0]
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := c.coalesced.Load(); got != coalesced {
		t.Fatalf("distinct interval coalesced: counter %d -> %d", coalesced, got)
	}
}

// TestFleetStreamMetricsParity is the registry audit: every metric family
// the collector registers — including the nine streaming/coalescing
// families added with mirror mode — must appear in the Prometheus
// exposition after a mirrored query.
func TestFleetStreamMetricsParity(t *testing.T) {
	reg := telemetry.NewRegistry()
	c, _, horizon := newMirroredFleet(t, 1, Options{Telemetry: reg})
	if res := c.QueryPath([]HopRef{{"sw0", 0}}, 1000, horizon+1)[0]; res.Err != nil {
		t.Fatal(res.Err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exposition := buf.String()
	names := reg.Names()
	for _, want := range []string{
		"printqueue_fleet_coalesced_queries_total",
		"printqueue_fleet_stream_frames_total",
		"printqueue_fleet_stream_bytes_total",
		"printqueue_fleet_stream_resyncs_total",
		"printqueue_fleet_stream_replayed_total",
		"printqueue_fleet_stream_reconnects_total",
		"printqueue_fleet_stream_mirror_queries_total",
		"printqueue_fleet_stream_fallbacks_total",
		"printqueue_fleet_stream_stale_served_total",
	} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("metric %s not registered", want)
		}
	}
	for _, n := range names {
		if !strings.Contains(exposition, n) {
			t.Errorf("registered metric %s missing from exposition", n)
		}
	}
	if !strings.Contains(exposition, "printqueue_fleet_stream_frames_total") {
		t.Fatal("stream frame counter missing from exposition")
	}
}
