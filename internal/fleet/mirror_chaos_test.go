package fleet

import (
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"printqueue/internal/core/control"
	"printqueue/internal/faultnet"
	"printqueue/internal/pktrec"
)

// flakyStreamDialer routes the mirror's checkpoint-stream dials through a
// swappable faultnet.Dialer, so a test can blackout redials (transient
// injected dial failures) for a window and then heal them.
type flakyStreamDialer struct {
	mu    sync.Mutex
	inner *faultnet.Dialer
}

func (d *flakyStreamDialer) dial(addr string, timeout time.Duration) (net.Conn, error) {
	d.mu.Lock()
	inner := d.inner
	d.mu.Unlock()
	return inner.Dial(addr, timeout)
}

func (d *flakyStreamDialer) set(inner *faultnet.Dialer) {
	d.mu.Lock()
	d.inner = inner
	d.mu.Unlock()
}

// TestFleetMirrorCatchUpChaos is the stream-outage scenario: the
// checkpoint stream is killed mid-flight and every redial fails while the
// switch keeps retiring checkpoints into its segment log. When the network
// heals, the mirror must resubscribe from its watermark, replay exactly
// the records it missed from the switch's log, and answer an interval
// spanning the outage bit-identically to querying the switch directly.
func TestFleetMirrorCatchUpChaos(t *testing.T) {
	seed := chaosSeed(t)
	addr, sys, horizon, _ := startHistSwitch(t, 0)

	dialer := &flakyStreamDialer{inner: &faultnet.Dialer{Config: faultnet.Config{Seed: seed}}}
	c := New(Options{
		MirrorDir: t.TempDir(),
		Mirror:    true,
		MirrorDial: &control.DialOptions{
			Timeout: time.Second,
			Dialer:  dialer.dial,
		},
	})
	t.Cleanup(func() { c.Close() })
	if err := c.Register(SwitchInfo{ID: "sw0", Hop: 0, Addr: addr}); err != nil {
		t.Fatal(err)
	}
	waitMirrorWarm(t, c, "sw0", 0, horizon+1)
	replayedWarm := c.streamReplayed.Load()
	if replayedWarm == 0 {
		t.Fatal("initial warm-up replayed nothing; the fixture's history is empty")
	}

	// Blackout: every stream redial now fails with a faultnet transient
	// error, and the live subscription is killed mid-flight.
	dialer.set(&faultnet.Dialer{
		Config:    faultnet.Config{Seed: seed},
		FailFirst: 1 << 30,
	})
	mir := c.lookup("sw0").mirror
	mir.mu.Lock()
	cur := mir.cur
	mir.mu.Unlock()
	if cur == nil {
		t.Fatal("no live stream to kill")
	}
	cur.Close()

	// The switch keeps working through the outage: 60 more dequeues retire
	// checkpoints the mirror cannot see.
	ts := horizon + 100
	for i := 0; i < 60; i++ {
		ts += 10
		sys.OnDequeue(&pktrec.Packet{
			Flow: fleetKey(0, byte(i%3)),
			Port: 0,
			Meta: pktrec.Metadata{EnqTimestamp: ts - 40, DeqTimedelta: 40, EnqQdepth: 8 + i%9},
		})
	}
	sys.Finalize(ts + 1)
	horizon2 := ts

	// Prove the mirror is actually dark: give the redial loop time to spin
	// against the injected failures.
	time.Sleep(50 * time.Millisecond)
	if cov, ok := mir.coverage(0); !ok || cov.end >= horizon2 {
		t.Fatalf("mirror advanced to %+v during the blackout", cov)
	}

	// Heal and wait for catch-up.
	dialer.set(&faultnet.Dialer{Config: faultnet.Config{Seed: seed + 1}})
	waitMirrorWarm(t, c, "sw0", 0, horizon2+1)

	if got := c.streamReconnects.Load(); got == 0 {
		t.Fatal("catch-up did not count a reconnect")
	}
	if got := c.streamReplayed.Load(); got <= replayedWarm {
		t.Fatalf("no gap replay: replayed counter stuck at %d", got)
	}

	// Differential check across the outage window: the healed mirror must
	// agree bit-for-bit with the switch's own answer.
	res := c.QueryPath([]HopRef{{"sw0", 0}}, 1000, horizon2+1)[0]
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Mirrored {
		t.Fatalf("healed mirror did not serve: %+v", res)
	}
	if res.Stale {
		t.Fatalf("fully caught-up mirror annotated stale: %+v", res)
	}
	direct, err := control.DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Interval(0, 1000, horizon2+1)
	direct.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("direct query returned no counts")
	}
	if !reflect.DeepEqual(res.Counts, want) {
		t.Fatalf("post-outage mirror counts %v != direct counts %v", res.Counts, want)
	}
}

// TestFleetMirrorBlackholedSwitch is the degraded-service acceptance
// criterion: a switch that vanishes entirely (its query plane is gone)
// must still be answerable from its warm replica — explicitly annotated
// stale, never silently — while a plain collector can only report the
// transport error.
func TestFleetMirrorBlackholedSwitch(t *testing.T) {
	addr, _, horizon, srv := startHistSwitch(t, 0)
	c := New(Options{
		Mirror:     true,
		MirrorDir:  t.TempDir(),
		HopTimeout: 2 * time.Second,
		Dial: control.DialOptions{
			Timeout:     150 * time.Millisecond,
			MaxRetries:  1,
			BackoffBase: time.Microsecond,
			BackoffMax:  time.Millisecond,
		},
	})
	t.Cleanup(func() { c.Close() })
	if err := c.Register(SwitchInfo{ID: "sw0", Hop: 0, Addr: addr}); err != nil {
		t.Fatal(err)
	}
	waitMirrorWarm(t, c, "sw0", 0, horizon+1)

	// Snapshot the expected answer while the switch is still up, over an
	// interval that reaches past the replica's cover (so the strict
	// staleness gate would normally force the network leg).
	direct, err := control.DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Interval(0, 1000, horizon+5)
	direct.Close()
	if err != nil {
		t.Fatal(err)
	}

	srv.Close() // the switch disappears

	res := c.QueryPath([]HopRef{{"sw0", 0}}, 1000, horizon+5)[0]
	if res.Err != nil {
		t.Fatalf("blackholed switch with a warm replica failed: %v", res.Err)
	}
	if !res.Mirrored {
		t.Fatalf("answer not served from the replica: %+v", res)
	}
	if !res.Stale {
		t.Fatal("degraded replica answer not annotated stale — silent staleness is forbidden")
	}
	if res.LagNs != 4 {
		t.Fatalf("LagNs = %d, want 4 (query end %d vs cover end %d)", res.LagNs, horizon+5, horizon+1)
	}
	if !reflect.DeepEqual(res.Counts, want) {
		t.Fatalf("replica counts %v != pre-outage direct counts %v", res.Counts, want)
	}
	if got := c.streamStaleServed.Load(); got == 0 {
		t.Fatal("stale-served counter did not move")
	}

	// Control group: without a mirror the same query can only fail.
	plain := New(Options{
		HopTimeout: time.Second,
		Dial: control.DialOptions{
			Timeout:     100 * time.Millisecond,
			MaxRetries:  1,
			BackoffBase: time.Microsecond,
			BackoffMax:  time.Millisecond,
		},
	})
	t.Cleanup(func() { plain.Close() })
	if err := plain.Register(SwitchInfo{ID: "sw0", Hop: 0, Addr: addr}); err == nil {
		if r := plain.QueryPath([]HopRef{{"sw0", 0}}, 1000, horizon+5)[0]; r.Err == nil {
			t.Fatal("plain collector answered through a closed server")
		}
	}
}
