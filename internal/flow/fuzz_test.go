package flow

import (
	"bytes"
	"testing"
)

// FuzzParseKey checks ParseKey never panics and that accepted inputs
// round-trip through String.
func FuzzParseKey(f *testing.F) {
	f.Add("10.1.2.3:12345>192.168.0.9:443/tcp")
	f.Add("1.2.3.4:0>5.6.7.8:65535/udp")
	f.Add("<none>")
	f.Add("255.255.255.255:1>0.0.0.1:2/proto89")
	f.Add("garbage")
	f.Add(":>:/")
	f.Fuzz(func(t *testing.T, s string) {
		k, err := ParseKey(s)
		if err != nil {
			return
		}
		again, err := ParseKey(k.String())
		if err != nil {
			t.Fatalf("re-parsing %q (from %q): %v", k.String(), s, err)
		}
		if again != k {
			t.Fatalf("round trip changed key: %v -> %v", k, again)
		}
	})
}

// FuzzDecodeKey checks the binary decoder never panics and that decoded
// keys re-encode to the same bytes.
func FuzzDecodeKey(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, KeyWireSize))
	f.Add(bytes.Repeat([]byte{0xFF}, KeyWireSize+3))
	f.Fuzz(func(t *testing.T, data []byte) {
		k, rest, err := DecodeKey(data)
		if err != nil {
			return
		}
		if len(data)-len(rest) != KeyWireSize {
			t.Fatalf("consumed %d bytes, want %d", len(data)-len(rest), KeyWireSize)
		}
		enc := k.AppendBinary(nil)
		if !bytes.Equal(enc, data[:KeyWireSize]) {
			t.Fatalf("re-encode mismatch: %x vs %x", enc, data[:KeyWireSize])
		}
	})
}
