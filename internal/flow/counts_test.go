package flow

import (
	"math/rand/v2"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func k(n byte) Key {
	return Key{SrcIP: [4]byte{10, 0, 0, n}, DstIP: [4]byte{10, 0, 1, 1}, SrcPort: 1, DstPort: 2, Proto: ProtoTCP}
}

func TestCountsBasics(t *testing.T) {
	c := make(Counts)
	c.Add(k(1), 3)
	c.Add(k(1), 2)
	c.Add(k(2), 1)
	if c[k(1)] != 5 || c.Total() != 6 {
		t.Fatalf("counts = %v", c)
	}
	clone := c.Clone()
	clone.Add(k(1), 10)
	if c[k(1)] != 5 {
		t.Fatal("clone aliases original")
	}
	c.Merge(Counts{k(3): 4})
	if c[k(3)] != 4 || c.Total() != 10 {
		t.Fatalf("after merge: %v", c)
	}
	c.Scale(0.5)
	if c[k(1)] != 2.5 || c.Total() != 5 {
		t.Fatalf("after scale: %v", c)
	}
}

func TestTopK(t *testing.T) {
	c := Counts{k(1): 5, k(2): 9, k(3): 1, k(4): 9}
	top := c.TopK(2)
	if len(top) != 2 {
		t.Fatalf("TopK(2) returned %d entries", len(top))
	}
	if top[0].Count != 9 || top[1].Count != 9 {
		t.Fatalf("TopK order wrong: %v", top)
	}
	// Ties break deterministically by flow string.
	if !(top[0].Flow.String() < top[1].Flow.String()) {
		t.Fatalf("tie break wrong: %v then %v", top[0].Flow, top[1].Flow)
	}
	all := c.TopK(0)
	if len(all) != 4 || all[3].Flow != k(3) {
		t.Fatalf("TopK(0) = %v", all)
	}
	if got := c.TopK(99); len(got) != 4 {
		t.Fatalf("TopK over-length = %v", got)
	}
}

// TestTopKMatchesSortOracle is the property test for the bounded-heap
// selection: for random count multisets (with deliberate ties) and every k,
// TopK must return exactly the k-prefix of the full sort.
func TestTopKMatchesSortOracle(t *testing.T) {
	oracle := func(c Counts, k int) []Entry {
		all := make([]Entry, 0, len(c))
		for f, n := range c {
			all = append(all, Entry{Flow: f, Count: n})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].Count != all[j].Count {
				return all[i].Count > all[j].Count
			}
			return all[i].Flow.Compare(all[j].Flow) < 0
		})
		if k > 0 && k < len(all) {
			all = all[:k]
		}
		return all
	}
	rng := rand.New(rand.NewPCG(21, 42))
	for trial := 0; trial < 50; trial++ {
		n := rng.IntN(40)
		c := make(Counts, n)
		for i := 0; i < n; i++ {
			// Small value range forces many exact ties, exercising the
			// Key.Compare tie-break.
			c[Key{SrcIP: [4]byte{10, 0, byte(i / 256), byte(i)}, Proto: ProtoUDP}] = float64(rng.IntN(5))
		}
		for k := -1; k <= n+2; k++ {
			got := c.TopK(k)
			want := oracle(c, k)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d n=%d k=%d:\n got %v\nwant %v", trial, n, k, got, want)
			}
		}
	}
}

func TestCountsString(t *testing.T) {
	c := Counts{k(1): 2, k(2): 7}
	s := c.String()
	if !strings.Contains(s, "7.0") || !strings.Contains(s, "2.0") {
		t.Fatalf("String = %q", s)
	}
	// Largest first.
	if strings.Index(s, "7.0") > strings.Index(s, "2.0") {
		t.Fatalf("order wrong: %q", s)
	}
}
