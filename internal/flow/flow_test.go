package flow

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func sampleKey() Key {
	return NewKey(netip.MustParseAddr("10.1.2.3"), 12345, netip.MustParseAddr("192.168.0.9"), 443, ProtoTCP)
}

func TestStringParseRoundTrip(t *testing.T) {
	tests := []Key{
		sampleKey(),
		NewKey(netip.MustParseAddr("1.2.3.4"), 0, netip.MustParseAddr("5.6.7.8"), 65535, ProtoUDP),
		NewKey(netip.MustParseAddr("255.255.255.255"), 1, netip.MustParseAddr("0.0.0.1"), 2, Proto(89)),
		Zero,
	}
	for _, k := range tests {
		got, err := ParseKey(k.String())
		if err != nil {
			t.Fatalf("ParseKey(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("round trip %q: got %v", k.String(), got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "nonsense", "1.2.3.4:5>6.7.8.9:10", // missing proto
		"1.2.3.4>5.6.7.8:10/tcp",         // missing src port
		"1.2.3.4:5>6.7.8.9:10/bogus",     // bad proto
		"1.2.3.4:5>6.7.8.9:10/proto9999", // proto overflow
		"::1:5>6.7.8.9:10/tcp",           // v6 not supported
		"1.2.3.4:99999>5.6.7.8:10/udp",   // port overflow
	}
	for _, s := range bad {
		if _, err := ParseKey(s); err == nil {
			t.Errorf("ParseKey(%q) succeeded", s)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	f := func(a, b [4]byte, sp, dp uint16, proto uint8) bool {
		k := Key{SrcIP: a, DstIP: b, SrcPort: sp, DstPort: dp, Proto: Proto(proto)}
		enc := k.AppendBinary(nil)
		if len(enc) != KeyWireSize {
			return false
		}
		got, rest, err := DecodeKey(enc)
		return err == nil && len(rest) == 0 && got == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeKeyShort(t *testing.T) {
	if _, _, err := DecodeKey(make([]byte, KeyWireSize-1)); err == nil {
		t.Fatal("short decode succeeded")
	}
}

func TestReverse(t *testing.T) {
	k := sampleKey()
	r := k.Reverse()
	if r.SrcIP != k.DstIP || r.DstIP != k.SrcIP || r.SrcPort != k.DstPort || r.DstPort != k.SrcPort {
		t.Fatalf("Reverse = %v", r)
	}
	if r.Reverse() != k {
		t.Fatal("Reverse not an involution")
	}
}

func TestHashDeterministicAndSeeded(t *testing.T) {
	k := sampleKey()
	if k.Hash(1) != k.Hash(1) {
		t.Fatal("hash not deterministic")
	}
	if k.Hash(1) == k.Hash(2) {
		t.Fatal("seeds do not separate hashes")
	}
	if k.Hash(1) == k.Reverse().Hash(1) {
		t.Fatal("directions collide")
	}
}

func TestHashDistribution(t *testing.T) {
	// 4096 sequential flows into 64 buckets: no bucket should be badly
	// overloaded if the hash avalanches.
	buckets := make([]int, 64)
	for i := 0; i < 4096; i++ {
		k := Key{SrcIP: [4]byte{10, 0, byte(i >> 8), byte(i)}, DstIP: [4]byte{10, 0, 0, 1}, SrcPort: 80, DstPort: 80, Proto: ProtoTCP}
		buckets[k.Hash(7)&63]++
	}
	for i, n := range buckets {
		if n < 24 || n > 110 { // expectation 64
			t.Fatalf("bucket %d holds %d of 4096 (expected ~64)", i, n)
		}
	}
}

func TestIsZero(t *testing.T) {
	if !Zero.IsZero() || sampleKey().IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestProtoString(t *testing.T) {
	if ProtoTCP.String() != "tcp" || ProtoUDP.String() != "udp" || Proto(47).String() != "proto47" {
		t.Fatal("proto names wrong")
	}
}
