package flow

import (
	"fmt"
	"sort"
	"strings"
)

// Counts maps flows to (possibly estimated, therefore fractional) packet
// counts. It is the common currency between time-window queries, baseline
// estimates, and ground truth.
type Counts map[Key]float64

// Add accumulates n packets for flow k.
func (c Counts) Add(k Key, n float64) { c[k] += n }

// Total returns the sum of all counts.
func (c Counts) Total() float64 {
	var t float64
	for _, n := range c {
		t += n
	}
	return t
}

// Clone returns a deep copy of c.
func (c Counts) Clone() Counts {
	out := make(Counts, len(c))
	for k, n := range c {
		out[k] = n
	}
	return out
}

// Merge adds every count of other into c.
func (c Counts) Merge(other Counts) {
	for k, n := range other {
		c[k] += n
	}
}

// Scale multiplies every count by f and returns c for chaining.
func (c Counts) Scale(f float64) Counts {
	for k := range c {
		c[k] *= f
	}
	return c
}

// Entry is a (flow, count) pair used for ordered reporting.
type Entry struct {
	Flow  Key
	Count float64
}

// TopK returns the k largest flows by count, descending, ties broken by the
// flow key's field order (Key.Compare) for determinism. k <= 0 or
// k >= len(c) returns all flows sorted.
func (c Counts) TopK(k int) []Entry {
	entries := make([]Entry, 0, len(c))
	for f, n := range c {
		entries = append(entries, Entry{Flow: f, Count: n})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Count != entries[j].Count {
			return entries[i].Count > entries[j].Count
		}
		return entries[i].Flow.Compare(entries[j].Flow) < 0
	})
	if k > 0 && k < len(entries) {
		entries = entries[:k]
	}
	return entries
}

// String renders the counts as a human-readable table, largest flows first.
func (c Counts) String() string {
	var b strings.Builder
	for _, e := range c.TopK(0) {
		fmt.Fprintf(&b, "%-48s %10.1f\n", e.Flow, e.Count)
	}
	return b.String()
}
