package flow

import (
	"fmt"
	"sort"
	"strings"
)

// Counts maps flows to (possibly estimated, therefore fractional) packet
// counts. It is the common currency between time-window queries, baseline
// estimates, and ground truth.
type Counts map[Key]float64

// Add accumulates n packets for flow k.
func (c Counts) Add(k Key, n float64) { c[k] += n }

// Total returns the sum of all counts.
func (c Counts) Total() float64 {
	var t float64
	for _, n := range c {
		t += n
	}
	return t
}

// Clone returns a deep copy of c.
func (c Counts) Clone() Counts {
	out := make(Counts, len(c))
	for k, n := range c {
		out[k] = n
	}
	return out
}

// Merge adds every count of other into c.
func (c Counts) Merge(other Counts) {
	for k, n := range other {
		c[k] += n
	}
}

// Scale multiplies every count by f and returns c for chaining.
func (c Counts) Scale(f float64) Counts {
	for k := range c {
		c[k] *= f
	}
	return c
}

// Entry is a (flow, count) pair used for ordered reporting.
type Entry struct {
	Flow  Key
	Count float64
}

// TopK returns the k largest flows by count, descending, ties broken by the
// flow key's field order (Key.Compare) for determinism. k <= 0 or
// k >= len(c) returns all flows sorted.
//
// For 0 < k < len(c) the selection runs over a bounded min-heap of k
// entries — O(n log k) and O(k) space instead of sorting all n flows — and
// is deterministic despite map iteration order because the ranking
// (count, then Key.Compare) is a strict total order over distinct keys.
func (c Counts) TopK(k int) []Entry {
	if k <= 0 || k >= len(c) {
		entries := make([]Entry, 0, len(c))
		for f, n := range c {
			entries = append(entries, Entry{Flow: f, Count: n})
		}
		sortEntries(entries)
		return entries
	}
	// h is a min-heap under entryRanksBelow: h[0] is the weakest retained
	// entry, evicted whenever a stronger one arrives.
	h := make([]Entry, 0, k)
	for f, n := range c {
		e := Entry{Flow: f, Count: n}
		if len(h) < k {
			h = append(h, e)
			siftUp(h, len(h)-1)
			continue
		}
		if entryRanksBelow(h[0], e) {
			h[0] = e
			siftDown(h, 0)
		}
	}
	sortEntries(h)
	return h
}

// sortEntries orders entries by count descending, Key.Compare ascending.
func sortEntries(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Count != entries[j].Count {
			return entries[i].Count > entries[j].Count
		}
		return entries[i].Flow.Compare(entries[j].Flow) < 0
	})
}

// entryRanksBelow reports whether a ranks strictly below b in the TopK
// order: smaller count, or equal count with the later key.
func entryRanksBelow(a, b Entry) bool {
	if a.Count != b.Count {
		return a.Count < b.Count
	}
	return a.Flow.Compare(b.Flow) > 0
}

func siftUp(h []Entry, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !entryRanksBelow(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func siftDown(h []Entry, i int) {
	for {
		least := i
		if l := 2*i + 1; l < len(h) && entryRanksBelow(h[l], h[least]) {
			least = l
		}
		if r := 2*i + 2; r < len(h) && entryRanksBelow(h[r], h[least]) {
			least = r
		}
		if least == i {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// String renders the counts as a human-readable table, largest flows first.
func (c Counts) String() string {
	var b strings.Builder
	for _, e := range c.TopK(0) {
		fmt.Fprintf(&b, "%-48s %10.1f\n", e.Flow, e.Count)
	}
	return b.String()
}
