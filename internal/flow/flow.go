// Package flow defines flow identity for PrintQueue: the 5-tuple key the
// paper uses to aggregate culprit packets ("Flow ID, expressed as 5-Tuple"),
// plus hashing and per-flow counting helpers shared by the data-plane
// structures, the baselines, and the ground-truth scorer.
package flow

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net/netip"
	"strconv"
	"strings"
)

// Proto is an IP protocol number. Only TCP and UDP appear in the paper's
// workloads, but any 8-bit protocol is representable.
type Proto uint8

// Protocol numbers used by the workload generators.
const (
	ProtoTCP Proto = 6
	ProtoUDP Proto = 17
)

func (p Proto) String() string {
	switch p {
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return "proto" + strconv.Itoa(int(p))
	}
}

// Key is a 5-tuple flow identifier. It is comparable and therefore usable as
// a map key, and compact enough (13 bytes + padding) to store per register
// cell in the simulator.
type Key struct {
	SrcIP   [4]byte
	DstIP   [4]byte
	SrcPort uint16
	DstPort uint16
	Proto   Proto
}

// Zero is the zero Key. An all-zero 5-tuple never appears in generated
// workloads, so data structures may use it as "empty cell".
var Zero Key

// IsZero reports whether k is the zero (empty) key.
func (k Key) IsZero() bool { return k == Zero }

// NewKey builds a Key from addr/port pairs.
func NewKey(src netip.Addr, sport uint16, dst netip.Addr, dport uint16, proto Proto) Key {
	var k Key
	k.SrcIP = src.As4()
	k.DstIP = dst.As4()
	k.SrcPort = sport
	k.DstPort = dport
	k.Proto = proto
	return k
}

// Src returns the source address of the flow.
func (k Key) Src() netip.Addr { return netip.AddrFrom4(k.SrcIP) }

// Dst returns the destination address of the flow.
func (k Key) Dst() netip.Addr { return netip.AddrFrom4(k.DstIP) }

// Reverse returns the key of the opposite direction of the flow.
func (k Key) Reverse() Key {
	return Key{
		SrcIP:   k.DstIP,
		DstIP:   k.SrcIP,
		SrcPort: k.DstPort,
		DstPort: k.SrcPort,
		Proto:   k.Proto,
	}
}

// Compare orders keys by (SrcIP, DstIP, SrcPort, DstPort, Proto) — the
// same field order as the wire encoding. It is the deterministic tie-break
// used by ranked reports; unlike comparing String() renderings it performs
// no allocation, so sort comparators can call it per comparison.
func (k Key) Compare(o Key) int {
	if c := bytes.Compare(k.SrcIP[:], o.SrcIP[:]); c != 0 {
		return c
	}
	if c := bytes.Compare(k.DstIP[:], o.DstIP[:]); c != 0 {
		return c
	}
	if k.SrcPort != o.SrcPort {
		if k.SrcPort < o.SrcPort {
			return -1
		}
		return 1
	}
	if k.DstPort != o.DstPort {
		if k.DstPort < o.DstPort {
			return -1
		}
		return 1
	}
	if k.Proto != o.Proto {
		if k.Proto < o.Proto {
			return -1
		}
		return 1
	}
	return 0
}

// String renders the key as "src:sport>dst:dport/proto".
func (k Key) String() string {
	if k.IsZero() {
		return "<none>"
	}
	return fmt.Sprintf("%s:%d>%s:%d/%s", k.Src(), k.SrcPort, k.Dst(), k.DstPort, k.Proto)
}

// ParseKey parses the format produced by String. It accepts "<none>" for the
// zero key.
func ParseKey(s string) (Key, error) {
	if s == "<none>" {
		return Zero, nil
	}
	slash := strings.LastIndexByte(s, '/')
	if slash < 0 {
		return Zero, fmt.Errorf("flow: missing protocol in %q", s)
	}
	var proto Proto
	switch ps := s[slash+1:]; ps {
	case "tcp":
		proto = ProtoTCP
	case "udp":
		proto = ProtoUDP
	default:
		if !strings.HasPrefix(ps, "proto") {
			return Zero, fmt.Errorf("flow: bad protocol %q", ps)
		}
		n, err := strconv.ParseUint(ps[len("proto"):], 10, 8)
		if err != nil {
			return Zero, fmt.Errorf("flow: bad protocol %q: %v", ps, err)
		}
		proto = Proto(n)
	}
	gt := strings.IndexByte(s, '>')
	if gt < 0 {
		return Zero, fmt.Errorf("flow: missing '>' in %q", s)
	}
	src, sport, err := parseHostPort(s[:gt])
	if err != nil {
		return Zero, err
	}
	dst, dport, err := parseHostPort(s[gt+1 : slash])
	if err != nil {
		return Zero, err
	}
	return NewKey(src, sport, dst, dport, proto), nil
}

func parseHostPort(s string) (netip.Addr, uint16, error) {
	colon := strings.LastIndexByte(s, ':')
	if colon < 0 {
		return netip.Addr{}, 0, fmt.Errorf("flow: missing port in %q", s)
	}
	addr, err := netip.ParseAddr(s[:colon])
	if err != nil {
		return netip.Addr{}, 0, fmt.Errorf("flow: bad address in %q: %v", s, err)
	}
	if !addr.Is4() {
		return netip.Addr{}, 0, fmt.Errorf("flow: only IPv4 keys supported, got %q", s)
	}
	port, err := strconv.ParseUint(s[colon+1:], 10, 16)
	if err != nil {
		return netip.Addr{}, 0, fmt.Errorf("flow: bad port in %q: %v", s, err)
	}
	return addr, uint16(port), nil
}

// AppendBinary appends the 13-byte fixed-width wire encoding of k to b.
func (k Key) AppendBinary(b []byte) []byte {
	b = append(b, k.SrcIP[:]...)
	b = append(b, k.DstIP[:]...)
	b = binary.BigEndian.AppendUint16(b, k.SrcPort)
	b = binary.BigEndian.AppendUint16(b, k.DstPort)
	return append(b, byte(k.Proto))
}

// KeyWireSize is the size of a Key's binary encoding.
const KeyWireSize = 13

// DecodeKey decodes a key previously encoded with AppendBinary. It returns
// the decoded key and the remaining bytes.
func DecodeKey(b []byte) (Key, []byte, error) {
	if len(b) < KeyWireSize {
		return Zero, b, fmt.Errorf("flow: short key encoding (%d bytes)", len(b))
	}
	var k Key
	copy(k.SrcIP[:], b[0:4])
	copy(k.DstIP[:], b[4:8])
	k.SrcPort = binary.BigEndian.Uint16(b[8:10])
	k.DstPort = binary.BigEndian.Uint16(b[10:12])
	k.Proto = Proto(b[12])
	return k, b[KeyWireSize:], nil
}

// Hash returns a 64-bit hash of the key. The function is a fixed-key
// SplitMix64 avalanche over the packed tuple: deterministic across runs so
// experiments are reproducible, and well distributed so the baselines'
// hash-table stages behave like their papers assume.
func (k Key) Hash(seed uint64) uint64 {
	var buf [16]byte
	copy(buf[0:4], k.SrcIP[:])
	copy(buf[4:8], k.DstIP[:])
	binary.BigEndian.PutUint16(buf[8:10], k.SrcPort)
	binary.BigEndian.PutUint16(buf[10:12], k.DstPort)
	buf[12] = byte(k.Proto)
	lo := binary.LittleEndian.Uint64(buf[0:8])
	hi := binary.LittleEndian.Uint64(buf[8:16])
	return mix64(mix64(lo^seed) ^ hi)
}

// Hash32 returns a 32-bit hash, as a hardware pipeline computing a CRC-based
// flow digest would produce.
func (k Key) Hash32(seed uint64) uint32 {
	return uint32(k.Hash(seed) >> 32)
}

// mix64 is the SplitMix64 finalizer.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
