package faultnet

import (
	"errors"
	"io"
	"net"
	"syscall"
	"testing"
	"time"
)

// tcpPair returns two ends of a loopback TCP connection.
func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		server, err = ln.Accept()
		close(done)
	}()
	client, cerr := net.Dial("tcp", ln.Addr().String())
	if cerr != nil {
		t.Fatal(cerr)
	}
	<-done
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestAcceptFailuresCountdown(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := Wrap(inner, Config{AcceptFailures: 2})
	defer ln.Close()
	for i := 0; i < 2; i++ {
		_, err := ln.Accept()
		if err == nil {
			t.Fatalf("accept %d succeeded; want injected failure", i)
		}
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Temporary() || ne.Timeout() { //nolint:staticcheck // Temporary is the accept-loop contract
			t.Fatalf("accept %d error %v is not a transient net.Error", i, err)
		}
	}
	go func() {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err == nil {
			defer c.Close()
			c.Write([]byte("x"))
		}
	}()
	conn, err := ln.Accept()
	if err != nil {
		t.Fatalf("accept after budget drained: %v", err)
	}
	defer conn.Close()
	if _, ok := conn.(*Conn); !ok {
		t.Fatalf("accepted conn is %T, want *faultnet.Conn", conn)
	}
}

func TestPartialWriteResets(t *testing.T) {
	client, server := tcpPair(t)
	fc := WrapConn(client, Config{PartialWrite: 1}, 7)
	msg := []byte("0123456789")
	n, err := fc.Write(msg)
	if n != len(msg)/2 {
		t.Fatalf("partial write wrote %d bytes, want %d", n, len(msg)/2)
	}
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("partial write error %v, want ECONNRESET", err)
	}
	got := make([]byte, len(msg))
	server.SetReadDeadline(time.Now().Add(time.Second))
	rn, _ := io.ReadFull(server, got)
	if rn != len(msg)/2 {
		t.Fatalf("peer received %d bytes, want %d", rn, len(msg)/2)
	}
}

func TestDropWriteIsSilent(t *testing.T) {
	client, server := tcpPair(t)
	fc := WrapConn(client, Config{DropWrite: 1}, 7)
	if n, err := fc.Write([]byte("lost")); n != 4 || err != nil {
		t.Fatalf("dropped write reported (%d, %v), want (4, nil)", n, err)
	}
	server.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if n, _ := server.Read(make([]byte, 8)); n != 0 {
		t.Fatalf("peer received %d bytes of a dropped write", n)
	}
}

// TestDeterministicFaults wires two identically seeded connections through
// the same probabilistic config and requires identical fault decisions.
func TestDeterministicFaults(t *testing.T) {
	pattern := func(seed int64) []bool {
		client, server := tcpPair(t)
		defer client.Close()
		defer server.Close()
		fc := WrapConn(client, Config{DropWrite: 0.5, Seed: seed}, seed)
		var delivered []bool
		buf := make([]byte, 1)
		for i := 0; i < 32; i++ {
			if _, err := fc.Write([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			server.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
			n, _ := server.Read(buf)
			delivered = append(delivered, n == 1)
		}
		return delivered
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequences diverge at write %d: %v vs %v", i, a, b)
		}
	}
	anyDropped, anyDelivered := false, false
	for _, d := range a {
		if d {
			anyDelivered = true
		} else {
			anyDropped = true
		}
	}
	if !anyDropped || !anyDelivered {
		t.Fatalf("p=0.5 drop pattern degenerate: %v", a)
	}
}

func TestSlowWritesBudget(t *testing.T) {
	client, server := tcpPair(t)
	go io.Copy(io.Discard, server)
	fc := WrapConn(client, Config{WriteLatency: 60 * time.Millisecond, SlowWrites: 1}, 1)
	start := time.Now()
	if _, err := fc.Write([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("first write took %v, want >= ~60ms of injected latency", d)
	}
	start = time.Now()
	if _, err := fc.Write([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 40*time.Millisecond {
		t.Fatalf("second write took %v; slow-write budget not consumed", d)
	}
}

func TestDialerFailFirst(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	d := &Dialer{FailFirst: 1}
	if _, err := d.Dial(ln.Addr().String(), time.Second); err == nil {
		t.Fatal("first dial succeeded; want injected failure")
	}
	c, err := d.Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatalf("second dial: %v", err)
	}
	c.Close()
}
