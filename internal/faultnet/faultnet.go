// Package faultnet wraps net.Listener and net.Conn with deterministic,
// seedable fault injection — added latency, partial writes, silently
// dropped writes, connection resets, and transient accept/dial failures —
// so the query plane's retry, reconnect, and shedding paths can be driven
// from ordinary `go test -race` runs instead of waiting for real networks
// to misbehave.
//
// Determinism: every accepted (or dialed) connection gets its own PRNG
// seeded with Config.Seed plus the connection's ordinal, so a test that
// establishes connections in a fixed order sees the same fault sequence on
// every run with the same seed.
package faultnet

import (
	"math/rand"
	"net"
	"sync"
	"syscall"
	"time"
)

// Config selects which faults to inject and how often.
type Config struct {
	// Seed is the base PRNG seed; connection i uses Seed+i.
	Seed int64
	// ReadLatency is added before every Read.
	ReadLatency time.Duration
	// WriteLatency is added before a Write (see SlowWrites).
	WriteLatency time.Duration
	// SlowWrites, when > 0, restricts WriteLatency to the first N writes
	// observed across the whole listener (or dialer) — a scripted "the
	// server was slow exactly once" fault. 0 applies WriteLatency to every
	// write.
	SlowWrites int
	// PartialWrite is the probability that a Write transmits only the
	// first half of its buffer, then resets the connection.
	PartialWrite float64
	// DropWrite is the probability that a Write is silently discarded
	// while being reported as fully written.
	DropWrite float64
	// Reset is the probability, rolled per Read and per Write, that the
	// operation closes the connection and fails with ECONNRESET.
	Reset float64
	// AcceptFailures makes the listener's first N Accept calls fail with a
	// transient (net.Error Temporary) error before any connection is
	// accepted — the EMFILE-under-load scenario.
	AcceptFailures int
}

// tempError is the injected transient failure; it satisfies net.Error with
// Temporary() == true, like EMFILE from a real accept loop.
type tempError struct{ op string }

func (e *tempError) Error() string   { return "faultnet: injected transient " + e.op + " failure" }
func (e *tempError) Timeout() bool   { return false }
func (e *tempError) Temporary() bool { return true }

// resetErr builds the injected connection-reset error, wrapped the way the
// kernel would report it so errors.Is(err, syscall.ECONNRESET) holds.
func resetErr(op string) error {
	return &net.OpError{Op: op, Net: "faultnet", Err: syscall.ECONNRESET}
}

// shared is fault state spanning every connection of one listener/dialer.
type shared struct {
	mu         sync.Mutex
	slowBudget int64 // WriteLatency applications remaining; -1 = unlimited
}

func newShared(cfg Config) *shared {
	sh := &shared{slowBudget: -1}
	if cfg.SlowWrites > 0 {
		sh.slowBudget = int64(cfg.SlowWrites)
	}
	return sh
}

// slow consumes one unit of the slow-write budget.
func (s *shared) slow() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.slowBudget < 0 {
		return true
	}
	if s.slowBudget == 0 {
		return false
	}
	s.slowBudget--
	return true
}

// Listener injects faults into accepted connections.
type Listener struct {
	ln  net.Listener
	cfg Config
	sh  *shared

	mu          sync.Mutex
	acceptFails int
	conns       int64
}

// Wrap builds a fault-injecting listener around ln.
func Wrap(ln net.Listener, cfg Config) *Listener {
	return &Listener{ln: ln, cfg: cfg, sh: newShared(cfg), acceptFails: cfg.AcceptFailures}
}

// Accept fails transiently while the AcceptFailures budget lasts, then
// accepts from the underlying listener and wraps the connection.
func (l *Listener) Accept() (net.Conn, error) {
	l.mu.Lock()
	if l.acceptFails > 0 {
		l.acceptFails--
		l.mu.Unlock()
		return nil, &tempError{op: "accept"}
	}
	n := l.conns
	l.conns++
	l.mu.Unlock()
	c, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	return wrapConn(c, l.cfg, l.sh, l.cfg.Seed+n), nil
}

// Close closes the underlying listener.
func (l *Listener) Close() error { return l.ln.Close() }

// Addr returns the underlying listener's address.
func (l *Listener) Addr() net.Addr { return l.ln.Addr() }

// Dialer produces fault-injected client-side connections; the first
// FailFirst dials fail with a transient error before reaching the network.
type Dialer struct {
	Config    Config
	FailFirst int

	once  sync.Once
	sh    *shared
	mu    sync.Mutex
	fails int
	dials int64
}

// Dial connects to addr over TCP and wraps the connection. It matches the
// control-plane DialOptions.Dialer hook signature.
func (d *Dialer) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	d.once.Do(func() { d.sh = newShared(d.Config) })
	d.mu.Lock()
	if d.fails < d.FailFirst {
		d.fails++
		d.mu.Unlock()
		return nil, &tempError{op: "dial"}
	}
	n := d.dials
	d.dials++
	d.mu.Unlock()
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return wrapConn(c, d.Config, d.sh, d.Config.Seed+n), nil
}

// Conn is a fault-injecting net.Conn.
type Conn struct {
	net.Conn
	cfg Config
	sh  *shared

	mu  sync.Mutex
	rng *rand.Rand
}

// WrapConn wraps a single connection with its own PRNG seed (exported for
// tests that build connections outside a Listener/Dialer).
func WrapConn(c net.Conn, cfg Config, seed int64) *Conn {
	return wrapConn(c, cfg, newShared(cfg), seed)
}

func wrapConn(c net.Conn, cfg Config, sh *shared, seed int64) *Conn {
	return &Conn{Conn: c, cfg: cfg, sh: sh, rng: rand.New(rand.NewSource(seed))}
}

// roll draws one Bernoulli sample from the connection's PRNG.
func (c *Conn) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64() < p
}

// Read injects latency and resets, then delegates.
func (c *Conn) Read(p []byte) (int, error) {
	if c.cfg.ReadLatency > 0 {
		time.Sleep(c.cfg.ReadLatency)
	}
	if c.roll(c.cfg.Reset) {
		c.Conn.Close()
		return 0, resetErr("read")
	}
	return c.Conn.Read(p)
}

// Write injects latency, resets, drops, and partial writes, then delegates.
func (c *Conn) Write(p []byte) (int, error) {
	if c.cfg.WriteLatency > 0 && c.sh.slow() {
		time.Sleep(c.cfg.WriteLatency)
	}
	if c.roll(c.cfg.Reset) {
		c.Conn.Close()
		return 0, resetErr("write")
	}
	if c.roll(c.cfg.DropWrite) {
		return len(p), nil // lost in flight, reported as sent
	}
	if c.roll(c.cfg.PartialWrite) && len(p) > 1 {
		n, err := c.Conn.Write(p[:len(p)/2])
		c.Conn.Close()
		if err != nil {
			return n, err
		}
		return n, resetErr("write")
	}
	return c.Conn.Write(p)
}
