package overhead

import "printqueue/internal/core/timewindow"

// Pipeline-stage accounting, from the paper's §7 opening: "Time windows
// need 4 MAU stages for preparations and two additional stages for each
// time window. The queue monitor uses six, but these can be overlapped with
// the above." A Tofino-class ingress+egress pipeline offers on the order of
// 12 match-action stages per direction.
const (
	// TWPrepStages are the fixed preparation stages (TTS computation,
	// index/cycle split, register-set selection).
	TWPrepStages = 4
	// TWStagesPerWindow covers one window's read-modify-write plus the
	// pass decision.
	TWStagesPerWindow = 2
	// QMStages is the queue monitor's stage cost, overlappable with the
	// time windows' stages.
	QMStages = 6
	// PipelineStages is the modelled per-direction MAU budget.
	PipelineStages = 12
)

// TimeWindowStages returns the MAU stages a T-window deployment occupies.
func TimeWindowStages(t int) int { return TWPrepStages + TWStagesPerWindow*t }

// StagesFit reports whether a configuration's egress program fits the
// pipeline. The queue monitor overlaps with the time-window stages (the
// paper: "these can be overlapped with the above"), so the constraint is
// max(TW, QM) <= budget.
func StagesFit(cfg timewindow.Config) bool {
	tw := TimeWindowStages(cfg.T)
	need := tw
	if QMStages > need {
		need = QMStages
	}
	return need <= PipelineStages
}

// MaxWindowsForPipeline returns the largest T that fits the stage budget —
// the hardware reason the paper evaluates T in 2..5.
func MaxWindowsForPipeline() int {
	return (PipelineStages - TWPrepStages) / TWStagesPerWindow
}
