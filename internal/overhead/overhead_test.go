package overhead

import (
	"testing"

	"printqueue/internal/core/qmonitor"
	"printqueue/internal/core/timewindow"
)

func twCfg(k uint, tt int) timewindow.Config {
	return timewindow.Config{M0: 6, K: k, Alpha: 1, T: tt, MinPktTxDelayNs: 80}
}

func TestTimeWindowSRAMBytes(t *testing.T) {
	// 1 port, k=12, T=4: 4 sets * 1 partition * 4 windows * 4096 cells * 8 B.
	want := 4 * 1 * 4 * 4096 * TWCellBytes
	if got := TimeWindowSRAMBytes(twCfg(12, 4), 1); got != want {
		t.Fatalf("SRAM = %d, want %d", got, want)
	}
	// 3 ports round to 4 partitions.
	if got := TimeWindowSRAMBytes(twCfg(12, 4), 3); got != 4*want {
		t.Fatalf("3-port SRAM = %d, want %d", got, 4*want)
	}
	// Doubling k doubles the cells.
	if got := TimeWindowSRAMBytes(twCfg(13, 4), 1); got != 2*want {
		t.Fatalf("k=13 SRAM = %d, want %d", got, 2*want)
	}
}

func TestQueueMonitorSRAMBytes(t *testing.T) {
	qm := qmonitor.Config{MaxDepthCells: 1000, GranuleCells: 10} // 101 entries -> 128
	got := QueueMonitorSRAMBytes(qm, 1, 1)
	want := 4 * 1 * 128 * QMEntryBytes
	if got != want {
		t.Fatalf("QM SRAM = %d, want %d", got, want)
	}
	// Two queues per port double the partitions.
	if got := QueueMonitorSRAMBytes(qm, 1, 2); got != 2*want {
		t.Fatalf("2-queue SRAM = %d, want %d", got, 2*want)
	}
}

func TestSRAMUtilization(t *testing.T) {
	if got := SRAMUtilization(TotalSRAMBytes); got != 100 {
		t.Fatalf("full budget = %v%%", got)
	}
	if got := SRAMUtilization(TotalSRAMBytes / 4); got != 25 {
		t.Fatalf("quarter budget = %v%%", got)
	}
}

func TestControlPlaneMBps(t *testing.T) {
	tw := twCfg(12, 4)
	qm := qmonitor.Config{MaxDepthCells: 32768, GranuleCells: 2}
	mbps := ControlPlaneMBps(tw, qm, 1)
	// One snapshot per set period: bytes / period.
	bytes := float64(tw.EntriesPerSnapshot()*TWCellBytes + qm.EntriesPerSnapshot()*QMEntryBytes)
	period := float64(tw.SetPeriod()) / 1e9
	if want := bytes / period / 1e6; mbps != want {
		t.Fatalf("MBps = %v, want %v", mbps, want)
	}
	// Higher alpha -> longer set period -> lower bandwidth.
	tw2 := tw
	tw2.Alpha = 2
	if ControlPlaneMBps(tw2, qm, 1) >= mbps {
		t.Fatal("alpha=2 did not reduce polling bandwidth")
	}
}

func TestFeasible(t *testing.T) {
	qm := qmonitor.Config{MaxDepthCells: 32768, GranuleCells: 2}
	// alpha=3 compresses aggressively: cheap polling.
	cheap := timewindow.Config{M0: 6, K: 12, Alpha: 3, T: 4, MinPktTxDelayNs: 80}
	if !Feasible(cheap, qm, 1) {
		t.Fatalf("alpha=3 infeasible at %v MB/s", ControlPlaneMBps(cheap, qm, 1))
	}
	// A tiny k with T=2 polls very frequently: should blow the budget.
	hot := timewindow.Config{M0: 6, K: 8, Alpha: 1, T: 2, MinPktTxDelayNs: 80}
	if Feasible(hot, qm, 1) {
		t.Fatalf("k=8 T=2 feasible at %v MB/s; expected over the limit", ControlPlaneMBps(hot, qm, 1))
	}
}

func TestStageAccounting(t *testing.T) {
	// The paper's numbers: 4 prep + 2/window; T=4 -> 12 stages, exactly a
	// Tofino-class pipeline.
	if got := TimeWindowStages(4); got != 12 {
		t.Fatalf("T=4 stages = %d, want 12", got)
	}
	if MaxWindowsForPipeline() != 4 {
		t.Fatalf("max windows = %d, want 4", MaxWindowsForPipeline())
	}
	fits := timewindow.Config{M0: 6, K: 12, Alpha: 2, T: 4, MinPktTxDelayNs: 80}
	if !StagesFit(fits) {
		t.Fatal("T=4 should fit the pipeline")
	}
	tooDeep := fits
	tooDeep.T = 5
	if StagesFit(tooDeep) {
		t.Fatal("T=5 (14 stages) should not fit a 12-stage pipeline")
	}
	// The queue monitor alone never exceeds the budget (it overlaps).
	shallow := fits
	shallow.T = 1
	if !StagesFit(shallow) {
		t.Fatal("T=1 should fit")
	}
}
