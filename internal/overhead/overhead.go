// Package overhead models PrintQueue's resource costs: data-plane SRAM
// (Figure 14(b), Figure 15, the §7.2 queue-monitor figure) and
// control-plane read bandwidth (Figure 13's storage-overhead axis and
// "data exchange limit" feasibility line).
package overhead

import (
	"printqueue/internal/core/qmonitor"
	"printqueue/internal/core/registers"
	"printqueue/internal/core/timewindow"
)

// Hardware-calibrated constants. A Tofino-class pipeline has on the order
// of tens of MB of SRAM usable by stateful registers; the exact figure is
// not public, so TotalSRAMBytes is calibrated such that the paper's
// reported utilisations (e.g. queue monitor = 12.81% for one port)
// reproduce.
const (
	// TWCellBytes is the register width of one time-window cell: a 32-bit
	// flow digest plus a 32-bit cycle ID.
	TWCellBytes = 8
	// QMEntryBytes is one queue-monitor entry: two halves of
	// (32-bit flow digest, 32-bit sequence number).
	QMEntryBytes = 16
	// TotalSRAMBytes is the modelled per-pipeline register SRAM budget,
	// calibrated so the paper's reported queue-monitor utilisation for a
	// single port (12.81%, end of §7.2) reproduces: a 32k-cell monitor at
	// granule 2 occupies 2 MiB across its four register sets, i.e. 12.5%
	// of 16 MiB.
	TotalSRAMBytes = 16 << 20 // 16 MiB
)

// TimeWindowSRAMBytes returns the data-plane SRAM of the time windows for
// the given per-port config and number of activated ports, including the
// double-buffered and special register sets (the Figure-8 layout allocates
// 4 sets: dp x flip).
func TimeWindowSRAMBytes(cfg timewindow.Config, ports int) int {
	partitions := registers.Layout{PortBits: registers.PortBitsFor(ports), IndexBits: int(cfg.K)}.Partitions()
	return 4 * partitions * cfg.T * cfg.Cells() * TWCellBytes
}

// QueueMonitorSRAMBytes returns the queue monitor's SRAM for the given
// config, ports and queues per port, across the 4 register sets.
func QueueMonitorSRAMBytes(cfg qmonitor.Config, ports, queuesPerPort int) int {
	slots := ports * queuesPerPort
	partitions := registers.PortBitsFor(slots)
	entries := 1
	for 1<<entries < cfg.Entries() {
		entries++
	}
	return 4 * (1 << partitions) * (1 << entries) * QMEntryBytes
}

// SRAMUtilization returns bytes/TotalSRAMBytes as a percentage.
func SRAMUtilization(bytes int) float64 {
	return float64(bytes) / float64(TotalSRAMBytes) * 100
}

// ControlPlaneMBps returns the control-plane read bandwidth one port's
// periodic polling consumes: a full snapshot (time windows + queue monitor)
// every set period, in MB/s. This is Figure 13's y-axis.
func ControlPlaneMBps(tw timewindow.Config, qm qmonitor.Config, queuesPerPort int) float64 {
	bytes := tw.EntriesPerSnapshot()*TWCellBytes + queuesPerPort*qm.EntriesPerSnapshot()*QMEntryBytes
	period := float64(tw.SetPeriod()) / 1e9 // seconds
	return float64(bytes) / period / 1e6
}

// FeasibleMBps is the modelled ceiling of the paper's Python analysis
// program + PCIe path: the rough data-exchange limit line of Figure 13.
// Above it, registers cannot be read before they age out.
const FeasibleMBps = 30.0

// Feasible reports whether a configuration's polling fits the budget.
func Feasible(tw timewindow.Config, qm qmonitor.Config, queuesPerPort int) bool {
	return ControlPlaneMBps(tw, qm, queuesPerPort) <= FeasibleMBps
}
