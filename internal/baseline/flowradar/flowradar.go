// Package flowradar reimplements FlowRadar (Li et al., NSDI 2016), the
// encoded-flowset per-flow counter the paper compares against. Every packet
// is hashed into kHash cells of a counting table; each cell keeps an XOR of
// the flow keys present, a flow count, and a packet count. Decoding peels
// singleton cells (FlowCount == 1) iteratively, removing the revealed flow
// from its other cells until no singletons remain. A flow filter (Bloom
// filter) ensures each flow increments FlowCount only once.
//
// As in the paper's comparison (§7.1), the table is reset at a fixed
// interval and interval queries prorate the decoded counts by overlap.
package flowradar

import (
	"fmt"

	"printqueue/internal/flow"
)

// Config parameterizes FlowRadar.
type Config struct {
	// Cells is the counting-table size (paper comparison: 4096 entries in
	// each of 5 stages; we model the equivalent 5*4096 single table unless
	// configured otherwise).
	Cells int
	// KHash is the number of cells each flow maps to (classic choice: 3).
	KHash int
	// FilterBits sizes the flow filter; 0 picks 8x Cells.
	FilterBits int
	// FilterHashes is the Bloom filter's hash count; 0 picks 4.
	FilterHashes int
	// Seed drives all hash functions.
	Seed uint64
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Cells < 1 || c.Cells&(c.Cells-1) != 0 {
		return fmt.Errorf("flowradar: cells must be a power of two, got %d", c.Cells)
	}
	if c.KHash < 1 {
		return fmt.Errorf("flowradar: need at least one hash, got %d", c.KHash)
	}
	if c.FilterBits == 0 {
		c.FilterBits = 8 * c.Cells
	}
	if c.FilterBits&(c.FilterBits-1) != 0 {
		return fmt.Errorf("flowradar: filter bits must be a power of two, got %d", c.FilterBits)
	}
	if c.FilterHashes == 0 {
		c.FilterHashes = 4
	}
	return nil
}

// cell is one counting-table entry.
type cell struct {
	flowXOR   flow.Key
	flowCount uint32
	pktCount  uint64
}

func xorKey(a, b flow.Key) flow.Key {
	var out flow.Key
	for i := 0; i < 4; i++ {
		out.SrcIP[i] = a.SrcIP[i] ^ b.SrcIP[i]
		out.DstIP[i] = a.DstIP[i] ^ b.DstIP[i]
	}
	out.SrcPort = a.SrcPort ^ b.SrcPort
	out.DstPort = a.DstPort ^ b.DstPort
	out.Proto = a.Proto ^ b.Proto
	return out
}

// Sketch is one FlowRadar instance covering one measurement interval.
type Sketch struct {
	cfg    Config
	table  []cell
	filter []uint64 // bitset
}

// New builds a sketch.
func New(cfg Config) (*Sketch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Sketch{
		cfg:    cfg,
		table:  make([]cell, cfg.Cells),
		filter: make([]uint64, cfg.FilterBits/64+1),
	}, nil
}

// Reset clears the table and filter.
func (s *Sketch) Reset() {
	clear(s.table)
	clear(s.filter)
}

func (s *Sketch) cellIndex(k flow.Key, i int) int {
	return int(k.Hash(s.cfg.Seed+uint64(i)*0x6a09e667f3bcc909) & uint64(s.cfg.Cells-1))
}

func (s *Sketch) filterIndex(k flow.Key, i int) int {
	return int(k.Hash(s.cfg.Seed+0xbb67ae8584caa73b+uint64(i)*0x3c6ef372fe94f82b) & uint64(s.cfg.FilterBits-1))
}

// testAndSetFilter returns whether the flow was already present and marks
// it.
func (s *Sketch) testAndSetFilter(k flow.Key) bool {
	present := true
	for i := 0; i < s.cfg.FilterHashes; i++ {
		bit := s.filterIndex(k, i)
		w, m := bit/64, uint64(1)<<(bit%64)
		if s.filter[w]&m == 0 {
			present = false
			s.filter[w] |= m
		}
	}
	return present
}

// Insert records one packet of flow k.
func (s *Sketch) Insert(k flow.Key) {
	newFlow := !s.testAndSetFilter(k)
	for i := 0; i < s.cfg.KHash; i++ {
		c := &s.table[s.cellIndex(k, i)]
		if newFlow {
			c.flowXOR = xorKey(c.flowXOR, k)
			c.flowCount++
		}
		c.pktCount++
	}
}

// Decode peels the counting table and returns the recovered per-flow packet
// counts plus the number of packets left in undecodable cells. Packet
// counts use the standard single-decode estimate: when a singleton flow is
// peeled, it is credited pktCount/flowCount... — FlowRadar's SolveLP
// refinement is out of scope; the peeled singleton is credited its cell's
// remaining packet count divided by its remaining flow count only when the
// cell is a pure singleton, which makes the credit exact for fully decoded
// tables.
func (s *Sketch) Decode() (flow.Counts, uint64) {
	table := make([]cell, len(s.table))
	copy(table, s.table)
	out := make(flow.Counts)

	// Iteratively peel pure singletons.
	queue := make([]int, 0, len(table))
	for i := range table {
		if table[i].flowCount == 1 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		idx := queue[0]
		queue = queue[1:]
		c := &table[idx]
		if c.flowCount != 1 {
			continue
		}
		k := c.flowXOR
		pkts := c.pktCount
		out[k] = float64(pkts)
		for i := 0; i < s.cfg.KHash; i++ {
			j := s.cellIndex(k, i)
			cc := &table[j]
			cc.flowXOR = xorKey(cc.flowXOR, k)
			cc.flowCount--
			if cc.pktCount >= pkts {
				cc.pktCount -= pkts
			} else {
				cc.pktCount = 0
			}
			if cc.flowCount == 1 {
				queue = append(queue, j)
			}
		}
	}
	var residual uint64
	for i := range table {
		if table[i].flowCount > 0 {
			residual += table[i].pktCount
		}
	}
	// Each undecoded packet was counted in kHash cells.
	return out, residual / uint64(s.cfg.KHash)
}

// Interval is one finished measurement window.
type Interval struct {
	Start, End uint64
	Counts     flow.Counts
	Residual   uint64 // packets in cells that failed to decode
}

// Prorate scales the interval's decoded counts by the overlap with
// [start, end).
func (iv Interval) Prorate(start, end uint64) flow.Counts {
	out := make(flow.Counts)
	if iv.End <= iv.Start {
		return out
	}
	lo, hi := start, end
	if iv.Start > lo {
		lo = iv.Start
	}
	if iv.End < hi {
		hi = iv.End
	}
	if hi <= lo {
		return out
	}
	frac := float64(hi-lo) / float64(iv.End-iv.Start)
	for f, n := range iv.Counts {
		out[f] = n * frac
	}
	return out
}

// Runner drives a sketch over a packet stream with fixed-interval resets.
type Runner struct {
	sketch   *Sketch
	periodNs uint64
	start    uint64
	started  bool
	last     uint64
	closed   []Interval
}

// NewRunner builds a runner resetting every periodNs.
func NewRunner(cfg Config, periodNs uint64) (*Runner, error) {
	if periodNs == 0 {
		return nil, fmt.Errorf("flowradar: reset period must be > 0")
	}
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &Runner{sketch: s, periodNs: periodNs}, nil
}

// Observe records one packet of flow k dequeued at time t (non-decreasing).
func (r *Runner) Observe(k flow.Key, t uint64) {
	if !r.started {
		r.started = true
		r.start = t
	}
	for t-r.start >= r.periodNs {
		r.rollover(r.start + r.periodNs)
	}
	r.sketch.Insert(k)
	r.last = t
}

func (r *Runner) rollover(at uint64) {
	counts, residual := r.sketch.Decode()
	r.closed = append(r.closed, Interval{Start: r.start, End: at, Counts: counts, Residual: residual})
	r.sketch.Reset()
	r.start = at
}

// Finalize closes the in-progress interval.
func (r *Runner) Finalize() {
	if r.started && r.last >= r.start {
		r.rollover(r.last + 1)
	}
}

// Query prorates across every finished interval overlapping [start, end).
func (r *Runner) Query(start, end uint64) flow.Counts {
	out := make(flow.Counts)
	for _, iv := range r.closed {
		out.Merge(iv.Prorate(start, end))
	}
	return out
}

// Intervals returns the finished intervals.
func (r *Runner) Intervals() []Interval { return r.closed }
