package flowradar

import (
	"math/rand/v2"
	"testing"

	"printqueue/internal/flow"
)

func fkey(n uint16) flow.Key {
	return flow.Key{SrcIP: [4]byte{10, byte(n >> 8), byte(n), 1}, DstIP: [4]byte{10, 0, 1, 1}, SrcPort: n, DstPort: 80, Proto: flow.ProtoTCP}
}

func TestConfigValidate(t *testing.T) {
	c := Config{Cells: 4096, KHash: 3}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.FilterBits == 0 || c.FilterHashes == 0 {
		t.Fatal("defaults not applied")
	}
	if err := (&Config{Cells: 100, KHash: 3}).Validate(); err == nil {
		t.Error("non-power-of-two cells accepted")
	}
	if err := (&Config{Cells: 64, KHash: 0}).Validate(); err == nil {
		t.Error("0 hashes accepted")
	}
	if err := (&Config{Cells: 64, KHash: 3, FilterBits: 100}).Validate(); err == nil {
		t.Error("non-power-of-two filter accepted")
	}
}

func TestXORKeyProperties(t *testing.T) {
	a, b := fkey(1), fkey(2)
	if xorKey(a, a) != flow.Zero {
		t.Fatal("x^x != 0")
	}
	if xorKey(xorKey(a, b), b) != a {
		t.Fatal("xor not invertible")
	}
	if xorKey(a, flow.Zero) != a {
		t.Fatal("x^0 != x")
	}
}

// TestDecodeExact: with load well under the peeling threshold, every flow
// decodes with its exact packet count.
func TestDecodeExact(t *testing.T) {
	s, err := New(Config{Cells: 1024, KHash: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	want := map[uint16]uint64{}
	for f := uint16(0); f < 200; f++ { // load factor 200*3/1024 = 0.59
		n := uint64(1 + rng.IntN(50))
		want[f] = n
		for i := uint64(0); i < n; i++ {
			s.Insert(fkey(f))
		}
	}
	counts, residual := s.Decode()
	if residual != 0 {
		t.Fatalf("residual = %d, want 0", residual)
	}
	if len(counts) != len(want) {
		t.Fatalf("decoded %d flows, want %d", len(counts), len(want))
	}
	for f, n := range want {
		if counts[fkey(f)] != float64(n) {
			t.Fatalf("flow %d = %v, want %d", f, counts[fkey(f)], n)
		}
	}
}

// TestDecodeOverload: far past the threshold, peeling stalls and the
// residual reports the stranded packets.
func TestDecodeOverload(t *testing.T) {
	s, _ := New(Config{Cells: 64, KHash: 3, Seed: 2})
	for f := uint16(0); f < 500; f++ {
		s.Insert(fkey(f))
	}
	counts, residual := s.Decode()
	if len(counts) == 500 && residual == 0 {
		t.Fatal("overloaded table decoded perfectly; implausible")
	}
	var decoded uint64
	for _, n := range counts {
		decoded += uint64(n)
	}
	if decoded+residual < 400 {
		t.Fatalf("decoded %d + residual %d lost too many of 500", decoded, residual)
	}
}

func TestFlowFilterCountsFlowsOnce(t *testing.T) {
	s, _ := New(Config{Cells: 256, KHash: 3, Seed: 3})
	for i := 0; i < 100; i++ {
		s.Insert(fkey(7))
	}
	counts, residual := s.Decode()
	if residual != 0 || counts[fkey(7)] != 100 {
		t.Fatalf("counts = %v, residual = %d", counts, residual)
	}
}

func TestReset(t *testing.T) {
	s, _ := New(Config{Cells: 64, KHash: 3, Seed: 4})
	s.Insert(fkey(1))
	s.Reset()
	counts, residual := s.Decode()
	if len(counts) != 0 || residual != 0 {
		t.Fatalf("after reset: %v, %d", counts, residual)
	}
	// The filter must also clear: re-inserting counts the flow again.
	s.Insert(fkey(1))
	counts, _ = s.Decode()
	if counts[fkey(1)] != 1 {
		t.Fatalf("filter not cleared: %v", counts)
	}
}

func TestRunner(t *testing.T) {
	r, err := NewRunner(Config{Cells: 256, KHash: 3, Seed: 5}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for ts := uint64(0); ts < 2000; ts += 20 {
		r.Observe(fkey(uint16(ts%5)), ts)
	}
	r.Finalize()
	if got := len(r.Intervals()); got != 2 {
		t.Fatalf("intervals = %d, want 2", got)
	}
	total := r.Query(0, 2000).Total()
	if total < 95 || total > 105 {
		t.Fatalf("query total = %v, want ~100", total)
	}
	// Half-period query prorates to ~half of that period's packets.
	half := r.Query(0, 500).Total()
	if half < 20 || half > 30 {
		t.Fatalf("half-period query = %v, want ~25", half)
	}
	if _, err := NewRunner(Config{Cells: 64, KHash: 3}, 0); err == nil {
		t.Fatal("zero period accepted")
	}
}
