package conquest

import (
	"testing"

	"printqueue/internal/flow"
)

func fkey(n byte) flow.Key {
	return flow.Key{SrcIP: [4]byte{10, 7, 0, n}, DstIP: [4]byte{10, 7, 1, 1}, SrcPort: uint16(n), DstPort: 80, Proto: flow.ProtoTCP}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Snapshots: 4, CellsPerSnapshot: 256, WindowNs: 1000}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Snapshots: 1, CellsPerSnapshot: 256, WindowNs: 1000},
		{Snapshots: 4, CellsPerSnapshot: 100, WindowNs: 1000},
		{Snapshots: 4, CellsPerSnapshot: 256, WindowNs: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if got := good.Entries(); got != 4*2*256 {
		t.Errorf("Entries = %d", got)
	}
}

// TestQueryAtSumsRecentWindows: packets enqueued in the R-1 preceding
// windows are counted; the current write window is not readable.
func TestQueryAtSumsRecentWindows(t *testing.T) {
	s, err := New(Config{Snapshots: 4, CellsPerSnapshot: 256, WindowNs: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := fkey(1)
	// 3 packets in window 5, 2 in window 6, 1 in window 7 (current = 7 at
	// query time 7500).
	for i := 0; i < 3; i++ {
		s.OnEnqueue(f, 5000+uint64(i))
	}
	for i := 0; i < 2; i++ {
		s.OnEnqueue(f, 6000+uint64(i))
	}
	s.OnEnqueue(f, 7000)
	if got := s.QueryAt(f, 7500); got != 5 { // windows 6 and 5 and 4(empty)
		t.Fatalf("QueryAt = %v, want 5", got)
	}
	// An unknown flow estimates 0 (no collisions at this load).
	if got := s.QueryAt(fkey(99), 7500); got != 0 {
		t.Fatalf("unknown flow = %v", got)
	}
}

// TestRotationReclaims: windows older than R rotations are overwritten.
func TestRotationReclaims(t *testing.T) {
	s, _ := New(Config{Snapshots: 3, CellsPerSnapshot: 256, WindowNs: 1000, Seed: 2})
	f := fkey(1)
	s.OnEnqueue(f, 1000) // window 1
	// Rotate far ahead: window 1's slot (1 % 3) is rewritten by window 4.
	s.OnEnqueue(fkey(2), 4000)
	if got := s.QueryAt(f, 5500); got != 0 {
		t.Fatalf("stale window still readable: %v", got)
	}
}

// TestQueryAsyncAgesOut is the paper's core contrast: the same victim
// query succeeds at enqueue time but returns nothing once the rotation has
// reclaimed the snapshots.
func TestQueryAsyncAgesOut(t *testing.T) {
	s, _ := New(Config{Snapshots: 4, CellsPerSnapshot: 256, WindowNs: 1000, Seed: 3})
	f := fkey(1)
	for i := 0; i < 10; i++ {
		s.OnEnqueue(f, 5000+uint64(i)*100)
	}
	victimTs := uint64(6500)
	s.OnEnqueue(fkey(2), victimTs)
	// Online (at enqueue): window 5 readable.
	if got := s.QueryAsync(f, victimTs, victimTs); got == 0 {
		t.Fatal("online query found nothing")
	}
	// Much later: everything reclaimed.
	later := victimTs + 10*1000
	for w := uint64(7); w <= 17; w++ {
		s.OnEnqueue(fkey(3), w*1000) // keep rotating
	}
	if got := s.QueryAsync(f, victimTs, later); got != 0 {
		t.Fatalf("async query after aging returned %v, want 0", got)
	}
}

// TestCountMinOverestimatesOnly: estimates never undercount.
func TestCountMinOverestimatesOnly(t *testing.T) {
	s, _ := New(Config{Snapshots: 4, CellsPerSnapshot: 64, WindowNs: 1000, Seed: 4})
	truth := map[byte]int{}
	for i := 0; i < 2000; i++ {
		f := byte(i % 100)
		truth[f]++
		s.OnEnqueue(fkey(f), 1000+uint64(i)%900)
	}
	for f, n := range truth {
		if got := s.QueryAt(fkey(f), 2500); got < float64(n) {
			t.Fatalf("flow %d estimated %v < true %d", f, got, n)
		}
	}
}
