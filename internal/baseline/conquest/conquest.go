// Package conquest reimplements ConQuest (Chen et al., CoNEXT 2019), the
// related work closest to PrintQueue's time windows (paper §8). ConQuest
// tracks the *current* queue's composition with a ring of R snapshots: the
// snapshot in the write role accumulates the flow sizes of packets enqueued
// during the current time window; at any instant, summing a flow's counts
// over the readable (recent, non-write) snapshots estimates that flow's
// bytes currently in the queue.
//
// The paper's contrast (§1, §8): ConQuest answers "is the enqueuing
// packet's flow a heavy occupant of the queue right now?", but it "does not
// permit the reverse lookup: given a victim, determine the culprits in its
// queuing" — its snapshots age out after R windows, so an asynchronous
// (after-the-fact) query finds nothing. The experiment in
// internal/experiments quantifies exactly that asymmetry.
package conquest

import (
	"fmt"

	"printqueue/internal/flow"
)

// Config parameterizes a ConQuest instance.
type Config struct {
	// Snapshots is R, the ring size (typical: 4).
	Snapshots int
	// CellsPerSnapshot is the count-min row width (power of two).
	CellsPerSnapshot int
	// Rows is the count-min depth per snapshot (typical: 2).
	Rows int
	// WindowNs is the snapshot rotation period; ConQuest sizes it to a
	// fraction of the maximum queue drain time so the readable snapshots
	// approximately cover the queue's contents.
	WindowNs uint64
	// Seed drives the hash functions.
	Seed uint64
}

// Validate checks and defaults the configuration.
func (c *Config) Validate() error {
	if c.Snapshots < 2 {
		return fmt.Errorf("conquest: need at least 2 snapshots, got %d", c.Snapshots)
	}
	if c.CellsPerSnapshot < 1 || c.CellsPerSnapshot&(c.CellsPerSnapshot-1) != 0 {
		return fmt.Errorf("conquest: cells per snapshot must be a power of two, got %d", c.CellsPerSnapshot)
	}
	if c.Rows <= 0 {
		c.Rows = 2
	}
	if c.WindowNs == 0 {
		return fmt.Errorf("conquest: window must be > 0")
	}
	return nil
}

// snapshot is one count-min sketch plus its covered window index.
type snapshot struct {
	rows   [][]uint64 // packet counts (the paper counts bytes; packets keep the comparison unit consistent)
	window uint64     // which rotation wrote it; ^uint64(0) = never used
}

// Sketch is a ConQuest instance for one port.
type Sketch struct {
	cfg   Config
	snaps []snapshot
	cur   uint64 // current window index
}

// New builds a sketch.
func New(cfg Config) (*Sketch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sketch{cfg: cfg, snaps: make([]snapshot, cfg.Snapshots)}
	for i := range s.snaps {
		s.snaps[i].rows = make([][]uint64, cfg.Rows)
		for r := range s.snaps[i].rows {
			s.snaps[i].rows[r] = make([]uint64, cfg.CellsPerSnapshot)
		}
		s.snaps[i].window = ^uint64(0)
	}
	return s, nil
}

// windowOf maps a timestamp to its rotation index.
func (s *Sketch) windowOf(ts uint64) uint64 { return ts / s.cfg.WindowNs }

// slotFor returns the ring slot for a window, cleaning it when the ring
// wraps into a stale window (ConQuest's "cleaning" phase).
func (s *Sketch) slotFor(window uint64) *snapshot {
	slot := &s.snaps[window%uint64(s.cfg.Snapshots)]
	if slot.window != window {
		for r := range slot.rows {
			clear(slot.rows[r])
		}
		slot.window = window
	}
	return slot
}

func (s *Sketch) index(row int, k flow.Key) int {
	return int(k.Hash(s.cfg.Seed+uint64(row)*0x9e3779b97f4a7c15) & uint64(s.cfg.CellsPerSnapshot-1))
}

// OnEnqueue records a packet's flow into the current write snapshot.
func (s *Sketch) OnEnqueue(f flow.Key, ts uint64) {
	w := s.windowOf(ts)
	if w > s.cur {
		s.cur = w
	}
	slot := s.slotFor(w)
	for r := range slot.rows {
		slot.rows[r][s.index(r, f)]++
	}
}

// estimate reads a flow's count-min estimate from one snapshot.
func (sn *snapshot) estimate(s *Sketch, f flow.Key) uint64 {
	min := ^uint64(0)
	for r := range sn.rows {
		if v := sn.rows[r][s.index(r, f)]; v < min {
			min = v
		}
	}
	return min
}

// QueryAt estimates a flow's packets currently in the queue, as the data
// plane would at enqueue time ts: the sum over the readable snapshots (the
// R-1 windows preceding ts's write window).
func (s *Sketch) QueryAt(f flow.Key, ts uint64) float64 {
	w := s.windowOf(ts)
	var total uint64
	for i := 1; i < s.cfg.Snapshots; i++ {
		if uint64(i) > w {
			break
		}
		slot := &s.snaps[(w-uint64(i))%uint64(s.cfg.Snapshots)]
		if slot.window == w-uint64(i) {
			total += slot.estimate(s, f)
		}
	}
	return float64(total)
}

// QueryAsync is the after-the-fact lookup the paper says ConQuest cannot
// serve: asked at time now about an interval ending at victimTs, only
// snapshots that still exist (not yet overwritten by the rotation at time
// now) contribute. Once now - victimTs exceeds R windows, nothing survives.
func (s *Sketch) QueryAsync(f flow.Key, victimTs, now uint64) float64 {
	wNow := s.windowOf(now)
	wVictim := s.windowOf(victimTs)
	var total uint64
	for i := 1; i < s.cfg.Snapshots; i++ {
		if uint64(i) > wVictim {
			break
		}
		w := wVictim - uint64(i)
		// Has the rotation already reclaimed this window's slot?
		if wNow >= w+uint64(s.cfg.Snapshots) {
			continue
		}
		slot := &s.snaps[w%uint64(s.cfg.Snapshots)]
		if slot.window == w {
			total += slot.estimate(s, f)
		}
	}
	return float64(total)
}

// Entries reports total register cells (for resource accounting).
func (c Config) Entries() int { return c.Snapshots * c.Rows * c.CellsPerSnapshot }
