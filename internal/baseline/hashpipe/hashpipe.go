// Package hashpipe reimplements HashPipe (Sivaraman et al., SOSR 2017), the
// d-stage heavy-hitter pipeline the paper compares against. Each stage is a
// hash-indexed table of (flow, count) slots. A packet always claims its slot
// in the first stage, evicting the incumbent; in later stages the carried
// (evicted) entry either merges with a matching slot, fills an empty slot,
// or swaps with a smaller incumbent and carries that one onward — so large
// flows tend to stick while small ones wash out.
//
// As in the paper's comparison (§7.1), the structure is reset at a fixed
// interval (PrintQueue's set period — control-plane polling is the common
// bottleneck) and interval queries are answered by prorating the fixed
// window's counts by the overlap fraction.
package hashpipe

import (
	"fmt"

	"printqueue/internal/flow"
)

// Config parameterizes HashPipe.
type Config struct {
	// Stages is d, the number of pipeline stages (paper comparison: 5).
	Stages int
	// SlotsPerStage is the table size per stage (paper comparison: 4096).
	SlotsPerStage int
	// Seed drives the per-stage hash functions.
	Seed uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Stages < 1 {
		return fmt.Errorf("hashpipe: need at least 1 stage, got %d", c.Stages)
	}
	if c.SlotsPerStage < 1 || c.SlotsPerStage&(c.SlotsPerStage-1) != 0 {
		return fmt.Errorf("hashpipe: slots per stage must be a power of two, got %d", c.SlotsPerStage)
	}
	return nil
}

// Entries returns the total register slots (for resource comparisons).
func (c Config) Entries() int { return c.Stages * c.SlotsPerStage }

type slot struct {
	key   flow.Key
	count uint64
}

// Sketch is one HashPipe instance covering one measurement interval.
type Sketch struct {
	cfg    Config
	stages [][]slot
}

// New builds a HashPipe sketch.
func New(cfg Config) (*Sketch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sketch{cfg: cfg, stages: make([][]slot, cfg.Stages)}
	for i := range s.stages {
		s.stages[i] = make([]slot, cfg.SlotsPerStage)
	}
	return s, nil
}

// Reset clears all stages (interval rollover).
func (s *Sketch) Reset() {
	for i := range s.stages {
		clear(s.stages[i])
	}
}

func (s *Sketch) index(stage int, k flow.Key) int {
	return int(k.Hash(s.cfg.Seed+uint64(stage)*0x9e3779b97f4a7c15) & uint64(s.cfg.SlotsPerStage-1))
}

// Insert records one packet of flow k.
func (s *Sketch) Insert(k flow.Key) {
	// Stage 0: always insert; evict the incumbent unless it matches.
	idx := s.index(0, k)
	sl := &s.stages[0][idx]
	if sl.key == k {
		sl.count++
		return
	}
	carried := *sl
	*sl = slot{key: k, count: 1}
	if carried.key.IsZero() {
		return
	}
	// Later stages: merge, fill, or swap-with-smaller.
	for st := 1; st < s.cfg.Stages; st++ {
		idx = s.index(st, carried.key)
		sl = &s.stages[st][idx]
		switch {
		case sl.key == carried.key:
			sl.count += carried.count
			return
		case sl.key.IsZero():
			*sl = carried
			return
		case carried.count > sl.count:
			carried, *sl = *sl, carried
		}
	}
	// Carried entry falls off the pipeline: its packets are lost, exactly
	// the subset-sum error HashPipe accepts.
}

// Counts returns the per-flow packet counts currently held.
func (s *Sketch) Counts() flow.Counts {
	out := make(flow.Counts)
	for _, stage := range s.stages {
		for _, sl := range stage {
			if !sl.key.IsZero() {
				out.Add(sl.key, float64(sl.count))
			}
		}
	}
	return out
}

// Interval is one finished measurement window: its span and its counts.
type Interval struct {
	Start, End uint64
	Counts     flow.Counts
}

// Prorate estimates the per-flow counts for [start, end) from a fixed
// interval's totals by scaling with the overlap fraction — the paper's
// "multiplier equal to the length of the query interval over the length of
// the total period".
func (iv Interval) Prorate(start, end uint64) flow.Counts {
	out := make(flow.Counts)
	if iv.End <= iv.Start {
		return out
	}
	lo, hi := start, end
	if iv.Start > lo {
		lo = iv.Start
	}
	if iv.End < hi {
		hi = iv.End
	}
	if hi <= lo {
		return out
	}
	frac := float64(hi-lo) / float64(iv.End-iv.Start)
	for f, n := range iv.Counts {
		out[f] = n * frac
	}
	return out
}

// Runner drives a sketch over a packet stream with fixed-interval resets,
// retaining each finished interval for query execution. It implements the
// same egress-hook shape as PrintQueue so experiments attach both to one
// simulated port.
type Runner struct {
	sketch   *Sketch
	periodNs uint64
	start    uint64
	started  bool
	last     uint64
	closed   []Interval
}

// NewRunner builds a runner that resets the sketch every periodNs.
func NewRunner(cfg Config, periodNs uint64) (*Runner, error) {
	if periodNs == 0 {
		return nil, fmt.Errorf("hashpipe: reset period must be > 0")
	}
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &Runner{sketch: s, periodNs: periodNs}, nil
}

// Observe records one packet of flow k dequeued at time t (non-decreasing).
func (r *Runner) Observe(k flow.Key, t uint64) {
	if !r.started {
		r.started = true
		r.start = t
	}
	for t-r.start >= r.periodNs {
		r.rollover(r.start + r.periodNs)
	}
	r.sketch.Insert(k)
	r.last = t
}

func (r *Runner) rollover(at uint64) {
	r.closed = append(r.closed, Interval{Start: r.start, End: at, Counts: r.sketch.Counts()})
	r.sketch.Reset()
	r.start = at
}

// Finalize closes the in-progress interval.
func (r *Runner) Finalize() {
	if r.started && r.last >= r.start {
		r.rollover(r.last + 1)
	}
}

// Query prorates across every finished interval overlapping [start, end).
func (r *Runner) Query(start, end uint64) flow.Counts {
	out := make(flow.Counts)
	for _, iv := range r.closed {
		out.Merge(iv.Prorate(start, end))
	}
	return out
}

// Intervals returns the finished intervals.
func (r *Runner) Intervals() []Interval { return r.closed }
