package hashpipe

import (
	"math/rand/v2"
	"testing"

	"printqueue/internal/flow"
)

func fkey(n uint16) flow.Key {
	return flow.Key{SrcIP: [4]byte{10, byte(n >> 8), byte(n), 1}, DstIP: [4]byte{10, 0, 1, 1}, SrcPort: n, DstPort: 80, Proto: flow.ProtoTCP}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Stages: 5, SlotsPerStage: 4096}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{Stages: 0, SlotsPerStage: 16}).Validate(); err == nil {
		t.Error("0 stages accepted")
	}
	if err := (Config{Stages: 2, SlotsPerStage: 17}).Validate(); err == nil {
		t.Error("non-power-of-two slots accepted")
	}
	if got := (Config{Stages: 5, SlotsPerStage: 4096}).Entries(); got != 20480 {
		t.Errorf("Entries = %d", got)
	}
}

func TestExactWhenUnderLoaded(t *testing.T) {
	s, err := New(Config{Stages: 3, SlotsPerStage: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint16]int{1: 100, 2: 50, 3: 7}
	for f, n := range want {
		for i := 0; i < n; i++ {
			s.Insert(fkey(f))
		}
	}
	counts := s.Counts()
	for f, n := range want {
		if counts[fkey(f)] != float64(n) {
			t.Fatalf("flow %d = %v, want %d", f, counts[fkey(f)], n)
		}
	}
}

// TestHeavyHitterRetention: overload the table with mice; the elephants'
// counts must survive mostly intact — HashPipe's core property.
func TestHeavyHitterRetention(t *testing.T) {
	s, err := New(Config{Stages: 4, SlotsPerStage: 64, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 6))
	elephants := []uint16{10001, 10002, 10003}
	inserted := map[uint16]int{}
	for i := 0; i < 30000; i++ {
		var f uint16
		if rng.IntN(2) == 0 {
			f = elephants[rng.IntN(len(elephants))]
		} else {
			f = uint16(rng.IntN(2000)) // mice
		}
		inserted[f]++
		s.Insert(fkey(f))
	}
	counts := s.Counts()
	for _, e := range elephants {
		got := counts[fkey(e)]
		want := float64(inserted[e])
		if got < 0.5*want {
			t.Fatalf("elephant %d retained %v of %v", e, got, want)
		}
		if got > want {
			t.Fatalf("elephant %d overcounted: %v > %v", e, got, want)
		}
	}
}

func TestReset(t *testing.T) {
	s, _ := New(Config{Stages: 2, SlotsPerStage: 16, Seed: 3})
	s.Insert(fkey(1))
	s.Reset()
	if got := s.Counts(); len(got) != 0 {
		t.Fatalf("after reset: %v", got)
	}
}

func TestProrate(t *testing.T) {
	iv := Interval{Start: 1000, End: 2000, Counts: flow.Counts{fkey(1): 100}}
	tests := []struct {
		qs, qe uint64
		want   float64
	}{
		{1000, 2000, 100}, // full overlap
		{1250, 1750, 50},  // half
		{0, 1000, 0},      // before
		{2000, 3000, 0},   // after
		{0, 4000, 100},    // superset
		{1900, 5000, 10},  // partial tail
	}
	for _, tt := range tests {
		got := iv.Prorate(tt.qs, tt.qe)[fkey(1)]
		if got != tt.want {
			t.Errorf("Prorate(%d, %d) = %v, want %v", tt.qs, tt.qe, got, tt.want)
		}
	}
	empty := Interval{Start: 5, End: 5}
	if got := empty.Prorate(0, 10); len(got) != 0 {
		t.Errorf("degenerate interval prorated: %v", got)
	}
}

func TestRunnerIntervals(t *testing.T) {
	r, err := NewRunner(Config{Stages: 2, SlotsPerStage: 64, Seed: 4}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Two full periods plus a partial one.
	for ts := uint64(0); ts < 2500; ts += 10 {
		r.Observe(fkey(uint16(ts%3)), ts)
	}
	r.Finalize()
	ivs := r.Intervals()
	if len(ivs) != 3 {
		t.Fatalf("intervals = %d, want 3", len(ivs))
	}
	if ivs[0].Start != 0 || ivs[0].End != 1000 || ivs[1].End != 2000 {
		t.Fatalf("interval bounds: %+v", ivs[:2])
	}
	// A query spanning one full period returns that period's counts.
	q := r.Query(1000, 2000)
	if q.Total() != ivs[1].Counts.Total() {
		t.Fatalf("query = %v, interval = %v", q.Total(), ivs[1].Counts.Total())
	}
	if _, err := NewRunner(Config{Stages: 1, SlotsPerStage: 2}, 0); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestRunnerCarriesGapPeriods(t *testing.T) {
	r, _ := NewRunner(Config{Stages: 2, SlotsPerStage: 64, Seed: 4}, 100)
	r.Observe(fkey(1), 0)
	r.Observe(fkey(2), 1000) // 10 periods later
	r.Finalize()
	// The big time gap must produce interval rollovers without losing
	// either packet.
	total := r.Query(0, 2000).Total()
	if total != 2 {
		t.Fatalf("query total = %v, want 2", total)
	}
}
