package linearstore

import (
	"testing"

	"printqueue/internal/core/timewindow"
)

func cfg(alpha uint) timewindow.Config {
	return timewindow.Config{M0: 6, K: 12, Alpha: alpha, T: 4, MinPktTxDelayNs: 80}
}

func TestLinearBytesScalesWithDuration(t *testing.T) {
	const pps = 1e6
	b1 := LinearBytes(1e9, pps) // 1 second
	b2 := LinearBytes(2e9, pps)
	if b1 != pps*RecordBytes {
		t.Fatalf("LinearBytes(1s) = %v, want %v", b1, pps*RecordBytes)
	}
	if b2 != 2*b1 {
		t.Fatalf("linear storage not linear: %v vs %v", b2, b1)
	}
}

func TestPrintQueueBytesStepwise(t *testing.T) {
	c := cfg(1)
	set := c.SetPeriod()
	one := PrintQueueBytes(c, set/2, 8)
	alsoOne := PrintQueueBytes(c, set, 8)
	two := PrintQueueBytes(c, set+1, 8)
	if one != alsoOne {
		t.Fatalf("within one set period the cost must be flat: %v vs %v", one, alsoOne)
	}
	if two != 2*one {
		t.Fatalf("crossing the set period must add one snapshot: %v vs %v", two, one)
	}
	if zero := PrintQueueBytes(c, 0, 8); zero != one {
		t.Fatalf("zero duration still needs one snapshot: %v", zero)
	}
}

func TestRatioGrowsWithDurationAndAlpha(t *testing.T) {
	const pps = 12.5e6
	// Within a set period, the ratio grows linearly with duration.
	r1 := Ratio(cfg(2), 1<<20, pps, 8)
	r2 := Ratio(cfg(2), 1<<22, pps, 8)
	if r2 <= r1 {
		t.Fatalf("ratio did not grow with duration: %v -> %v", r1, r2)
	}
	// Larger alpha covers more time in the same registers: higher ratio
	// for long durations.
	d := uint64(1) << 28
	ra1 := Ratio(cfg(1), d, pps, 8)
	ra3 := Ratio(cfg(3), d, pps, 8)
	if ra3 <= ra1 {
		t.Fatalf("alpha=3 ratio %v not above alpha=1 ratio %v", ra3, ra1)
	}
}
