// Package linearstore models the storage cost of linear-space telemetry
// systems (the NetSight / BurstRadar class the paper's Figure 14(a)
// compares against): one record per packet, so offline storage grows
// linearly with the monitored duration, versus PrintQueue's
// exponential-coverage time windows whose register footprint is fixed.
package linearstore

import (
	"printqueue/internal/core/timewindow"
)

// RecordBytes is the per-packet record size the model charges: a 32-bit
// flow digest plus a 32-bit timestamp, the minimum a BurstRadar-style
// snapshotter ships to the collector.
const RecordBytes = 8

// LinearBytes returns the bytes a linear-storage system needs to retain
// culprit information for a span of durationNs at the given packet rate.
func LinearBytes(durationNs uint64, packetsPerSec float64) float64 {
	return float64(durationNs) / 1e9 * packetsPerSec * RecordBytes
}

// PrintQueueBytes returns the register bytes PrintQueue needs to cover the
// same duration: full window sets (cellBytes per cell) for the ceil of the
// duration over the set period — the control plane must retain that many
// checkpoints to answer queries over the whole span.
func PrintQueueBytes(cfg timewindow.Config, durationNs uint64, cellBytes int) float64 {
	set := cfg.SetPeriod()
	snapshots := (durationNs + set - 1) / set
	if snapshots == 0 {
		snapshots = 1
	}
	return float64(snapshots) * float64(cfg.EntriesPerSnapshot()) * float64(cellBytes)
}

// Ratio returns linear-storage bytes over PrintQueue bytes for a duration —
// the y-axis of Figure 14(a).
func Ratio(cfg timewindow.Config, durationNs uint64, packetsPerSec float64, cellBytes int) float64 {
	pq := PrintQueueBytes(cfg, durationNs, cellBytes)
	if pq == 0 {
		return 0
	}
	return LinearBytes(durationNs, packetsPerSec) / pq
}
