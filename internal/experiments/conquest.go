package experiments

import (
	"printqueue/internal/baseline/conquest"
	"printqueue/internal/core/control"
	"printqueue/internal/flow"
	"printqueue/internal/groundtruth"
	"printqueue/internal/metrics"
	"printqueue/internal/pktrec"
	"printqueue/internal/switchsim"
	"printqueue/internal/trace"
)

// ConQuestResult quantifies the paper's §1/§8 contrast with ConQuest.
// Under FIFO, a victim's direct culprits are exactly the queue's contents
// at its enqueue — which ConQuest can estimate, but only *at that instant*
// in the data plane. Asked asynchronously (the operator investigates a
// complaint later), its snapshots have been reclaimed by the rotation and
// the answer is gone; PrintQueue's time windows still answer.
type ConQuestResult struct {
	// Online: ConQuest queried at the victim's enqueue instant.
	OnlinePrecision, OnlineRecall float64
	// Async: the same queries executed lagNs after the victim.
	AsyncPrecision, AsyncRecall float64
	// PQ: PrintQueue asynchronous queries for the same victims.
	PQPrecision, PQRecall float64
	Victims               int
	LagNs                 uint64
}

// ConQuestComparison runs the UW workload with both systems attached at
// comparable register budgets (ConQuest: 4 snapshots x 2 rows x 2048 cells
// = 16384 entries; PrintQueue: 4 windows x 4096 cells).
func ConQuestComparison(packets int, seed uint64, victims int, lagNs uint64) (*ConQuestResult, error) {
	preset := Preset(trace.UW, packets, seed)
	pkts, err := trace.Generate(preset.Gen)
	if err != nil {
		return nil, err
	}
	// ConQuest sizes its snapshot window to a fraction of the maximum
	// queue drain time: ~30k cells at 10 Gbps drain in ~2 ms; R-1 = 3
	// readable snapshots of 650 us cover it.
	cq, err := conquest.New(conquest.Config{
		Snapshots:        4,
		CellsPerSnapshot: 2048,
		Rows:             2,
		WindowNs:         650e3,
		Seed:             17,
	})
	if err != nil {
		return nil, err
	}
	if lagNs == 0 {
		lagNs = 20e6 // a leisurely 20 ms after the fact
	}

	// Build the run manually so the enqueue hook can be attached.
	sw, err := switchsim.NewSwitch(1, switchsim.PortConfig{
		LinkBps: preset.LinkBps, BufferCells: 40000,
	})
	if err != nil {
		return nil, err
	}
	sys, err := control.New(control.Config{
		TW:    preset.TW,
		QM:    preset.QM,
		Ports: []int{0},
	})
	if err != nil {
		return nil, err
	}
	gt := groundtruth.NewCollector()
	sw.Port(0).AddEgressHook(gt)
	sw.Port(0).AddEgressHook(switchsim.EgressFunc(sys.OnDequeue))
	for _, p := range pkts {
		sw.Inject(p)
	}
	sw.Flush()
	sys.Finalize(sw.Port(0).Now() + 1)

	res := &ConQuestResult{LagNs: lagNs}
	vs := gt.SampleVictims(groundtruth.DepthBucket(1000, 0), victims)
	res.Victims = len(vs)

	// Victim truths, keyed so the second pass can recognize the victims'
	// enqueues as they happen.
	type vkey struct {
		ts uint64
		f  flow.Key
	}
	truths := make(map[vkey]flow.Counts, len(vs))
	order := make([]vkey, 0, len(vs))
	for _, vi := range vs {
		v := gt.Record(vi)
		k := vkey{ts: v.EnqTimestamp, f: v.Flow}
		if _, dup := truths[k]; dup {
			continue
		}
		truths[k] = gt.DirectTruth(vi)
		order = append(order, k)
	}

	// Second pass: replay the same (deterministic) schedule with ConQuest
	// attached, executing each victim's online query at its enqueue
	// instant and the async variant lagNs later.
	sw2, err := switchsim.NewSwitch(1, switchsim.PortConfig{
		LinkBps: preset.LinkBps, BufferCells: 40000,
	})
	if err != nil {
		return nil, err
	}
	onlineEst := make(map[vkey]flow.Counts, len(truths))
	asyncEst := make(map[vkey]flow.Counts, len(truths))
	type pending struct {
		due uint64
		k   vkey
	}
	var queue []pending
	runAsync := func(now uint64) {
		for len(queue) > 0 && queue[0].due <= now {
			pq := queue[0]
			queue = queue[1:]
			est := make(flow.Counts)
			// Grant ConQuest the flow list (generous: a real deployment
			// would have to learn it out of band).
			for f := range truths[pq.k] {
				est[f] = cq.QueryAsync(f, pq.k.ts, now)
			}
			clearZeroes(est)
			asyncEst[pq.k] = est
		}
	}
	sw2.Port(0).AddEnqueueHook(switchsim.EnqueueFunc(func(p *pktrec.Packet) {
		now := p.Meta.EnqTimestamp
		runAsync(now)
		k := vkey{ts: now, f: p.Flow}
		if truth, ok := truths[k]; ok {
			if _, done := onlineEst[k]; !done {
				est := make(flow.Counts)
				for f := range truth {
					est[f] = cq.QueryAt(f, now)
				}
				clearZeroes(est)
				onlineEst[k] = est
				queue = append(queue, pending{due: now + lagNs, k: k})
			}
		}
		cq.OnEnqueue(p.Flow, now)
	}))
	for _, p := range clonePackets(pkts) {
		sw2.Inject(p)
	}
	sw2.Flush()
	runAsync(sw2.Port(0).Now() + lagNs)

	var onP, onR, asP, asR, pqP, pqR metrics.Sample
	for _, k := range order {
		truth := truths[k]
		p1, r1 := metrics.PrecisionRecall(onlineEst[k], truth)
		onP.Add(p1)
		onR.Add(r1)
		p2, r2 := metrics.PrecisionRecall(asyncEst[k], truth)
		asP.Add(p2)
		asR.Add(r2)
		v := k.ts
		est, err := sys.QueryInterval(0, v, v+deqDeltaFor(gt, k.ts, k.f))
		if err != nil {
			return nil, err
		}
		p3, r3 := metrics.PrecisionRecall(est, truth)
		pqP.Add(p3)
		pqR.Add(r3)
	}
	res.OnlinePrecision, res.OnlineRecall = onP.Mean(), onR.Mean()
	res.AsyncPrecision, res.AsyncRecall = asP.Mean(), asR.Mean()
	res.PQPrecision, res.PQRecall = pqP.Mean(), pqR.Mean()
	return res, nil
}

// deqDeltaFor finds the victim's queuing delay from the ground truth.
func deqDeltaFor(gt *groundtruth.Collector, enqTS uint64, f flow.Key) uint64 {
	for i := 0; i < gt.Len(); i++ {
		r := gt.Record(i)
		if r.EnqTimestamp == enqTS && r.Flow == f {
			return r.DeqTimedelta
		}
	}
	return 1
}

func clearZeroes(c flow.Counts) {
	for f, n := range c {
		if n == 0 {
			delete(c, f)
		}
	}
}
