package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"printqueue/internal/core/control"
	"printqueue/internal/core/qmonitor"
	"printqueue/internal/core/timewindow"
	"printqueue/internal/fleet"
	"printqueue/internal/flow"
	"printqueue/internal/pktrec"
)

func chainKey(n byte) flow.Key {
	return flow.Key{SrcIP: [4]byte{10, 0, 0, n}, DstIP: [4]byte{10, 0, 1, 1}, SrcPort: 5, DstPort: 80, Proto: flow.ProtoTCP}
}

// chainSchedule interleaves a heavy culprit flow with a victim flow on
// port 0: spacing below the service time builds standing queues at every
// hop.
func chainSchedule() []pktrec.Packet {
	var pkts []pktrec.Packet
	var ts uint64
	for i := 0; i < 250; i++ {
		ts += 500
		f := chainKey(2) // heavy: 4 of 5 packets
		if i%5 == 0 {
			f = chainKey(1) // victim
		}
		pkts = append(pkts, pktrec.Packet{Flow: f, Bytes: 800, Arrival: ts, Port: 0})
	}
	return pkts
}

// crossSchedule is hop-local traffic that merges into the path at one hop
// only — the cross-switch congestion the path diagnosis must localize.
func crossSchedule() []pktrec.Packet {
	var pkts []pktrec.Packet
	var ts uint64 = 2000
	for i := 0; i < 150; i++ {
		ts += 600
		pkts = append(pkts, pktrec.Packet{Flow: chainKey(9), Bytes: 800, Arrival: ts, Port: 0})
	}
	return pkts
}

func chainRunConfig(hops int) ChainRunConfig {
	return ChainRunConfig{
		Hops:        hops,
		LinkBps:     []uint64{1e9},
		LinkDelayNs: 1000,
		TW:          timewindow.Config{M0: 3, K: 6, Alpha: 1, T: 3, MinPktTxDelayNs: 10},
		QM:          qmonitor.Config{MaxDepthCells: 4096, GranuleCells: 4},
	}
}

// serveChain exposes every hop's System over TCP and registers the hops
// with a fresh collector, in path order.
func serveChain(t *testing.T, run *ChainRun) (*fleet.Collector, []fleet.HopRef) {
	t.Helper()
	c := fleet.New(fleet.Options{})
	t.Cleanup(func() { c.Close() })
	hops := make([]fleet.HopRef, len(run.Sys))
	for k, sys := range run.Sys {
		qs := control.NewQueryServer(sys)
		qs.Start(2)
		t.Cleanup(qs.Stop)
		srv, err := control.ServeQueries("127.0.0.1:0", qs)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		id := fmt.Sprintf("sw%d", k)
		if err := c.Register(fleet.SwitchInfo{ID: id, Hop: k, Addr: srv.Addr().String()}); err != nil {
			t.Fatal(err)
		}
		hops[k] = fleet.HopRef{SwitchID: id, Port: run.Port}
	}
	return c, hops
}

// chainHorizon returns an interval end past every hop's local clock.
func chainHorizon(run *ChainRun) uint64 {
	var h uint64
	for k := range run.Sys {
		if now := run.Chain.Switch(k).Port(run.Port).Now(); now > h {
			h = now
		}
	}
	return h + 1
}

// TestFleetChainAcceptance is the PR's acceptance scenario: a 3-hop
// simulated path with hop-local cross-traffic at the middle hop. The
// fleet query must return a per-hop culprit report whose per-hop counts
// are bit-identical to querying each System directly, and the diagnosis
// must localize the cross-traffic culprit to the hops it actually
// traversed.
func TestFleetChainAcceptance(t *testing.T) {
	run, err := ExecuteChain(chainSchedule(), [][]pktrec.Packet{1: crossSchedule()}, chainRunConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(run.Close)
	for k := range run.GT {
		if run.GT[k].Len() == 0 {
			t.Fatalf("hop %d saw no traffic", k)
		}
	}
	c, hops := serveChain(t, run)
	horizon := chainHorizon(run)

	// Bit-identity: each hop's fan-out counts equal the hop's own System
	// queried directly, flow for flow, with exact float equality.
	results := c.QueryPath(hops, 0, horizon)
	if len(results) != 3 {
		t.Fatalf("got %d hop results, want 3", len(results))
	}
	for k, res := range results {
		if res.Err != nil {
			t.Fatalf("hop %d: %v", k, res.Err)
		}
		direct, err := run.Sys[k].QueryInterval(run.Port, 0, horizon)
		if err != nil {
			t.Fatal(err)
		}
		want := make(map[string]float64, len(direct))
		for f, n := range direct {
			want[f.String()] = n
		}
		if !reflect.DeepEqual(res.Counts, want) {
			t.Fatalf("hop %d: fleet counts diverge from direct query\nfleet:  %v\ndirect: %v", k, res.Counts, want)
		}
		if len(res.Counts) == 0 {
			t.Fatalf("hop %d answered with no counts", k)
		}
	}

	// Path diagnosis: ranked culprits per hop, correlated with ground
	// truth.
	d, err := c.Diagnose("victim", hops, 0, horizon, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Partial {
		t.Fatalf("clean chain produced a partial diagnosis: %v", d.FailedHops())
	}
	culpritsAt := func(k int) map[flow.Key]bool {
		set := map[flow.Key]bool{}
		for _, cu := range d.Hops[k].Culprits {
			set[cu.Flow] = true
		}
		return set
	}
	for k := 0; k < 3; k++ {
		if !culpritsAt(k)[chainKey(2)] {
			t.Errorf("hop %d: heavy path flow missing from culprits %v", k, d.Hops[k].Culprits)
		}
	}
	// The cross-traffic flow enters at hop 1: it must be ranked there and
	// downstream, and must NOT appear upstream — that asymmetry is the
	// cross-switch localization the fleet plane exists for.
	if culpritsAt(0)[chainKey(9)] {
		t.Errorf("hop 0 ranked the cross-traffic flow it never carried: %v", d.Hops[0].Culprits)
	}
	for _, k := range []int{1, 2} {
		if !culpritsAt(k)[chainKey(9)] {
			t.Errorf("hop %d: cross-traffic culprit missing: %v", k, d.Hops[k].Culprits)
		}
	}

	// Scored against per-hop ground truth, attribution must be strong on
	// this deterministic workload.
	scores := ScoreChainAttribution(run, d, 3)
	for _, s := range scores {
		if s.Err != nil {
			t.Fatalf("hop %d scored with error: %v", s.Hop, s.Err)
		}
		if s.Reported == 0 || s.Truth == 0 {
			t.Fatalf("hop %d: degenerate score %+v", s.Hop, s)
		}
		if s.Precision < 0.5 || s.Recall < 0.5 {
			t.Errorf("hop %d: precision %.2f recall %.2f below 0.5", s.Hop, s.Precision, s.Recall)
		}
		t.Logf("hop %d: precision %.2f recall %.2f (reported %d, truth %d)",
			s.Hop, s.Precision, s.Recall, s.Reported, s.Truth)
	}
}

// TestFleetChainPartialAcceptance tears one hop down after registration:
// the diagnosis must degrade to the surviving hops, whose counts stay
// bit-identical to their direct queries.
func TestFleetChainPartialAcceptance(t *testing.T) {
	run, err := ExecuteChain(chainSchedule(), nil, chainRunConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(run.Close)
	c, hops := serveChain(t, run)
	horizon := chainHorizon(run)
	// Replace the middle hop with a dead address: registration must fail,
	// and querying the still-registered id after unregistering must yield
	// an in-place per-hop error.
	if err := c.Unregister("sw1"); err != nil {
		t.Fatal(err)
	}
	d, err := c.Diagnose("victim", hops, 0, horizon, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Partial {
		t.Fatal("diagnosis with a missing hop not marked partial")
	}
	if got := d.FailedHops(); len(got) != 1 || got[0] != "sw1" {
		t.Fatalf("failed hops = %v, want [sw1]", got)
	}
	for _, k := range []int{0, 2} {
		hd := d.Hops[k]
		if hd.Err != nil || len(hd.Culprits) == 0 {
			t.Fatalf("surviving hop %d degraded: %+v", k, hd)
		}
		direct, err := run.Sys[k].QueryInterval(run.Port, 0, horizon)
		if err != nil {
			t.Fatal(err)
		}
		want := make(map[string]float64, len(direct))
		for f, n := range direct {
			want[f.String()] = n
		}
		if !reflect.DeepEqual(hd.Counts, want) {
			t.Fatalf("surviving hop %d: counts diverge from direct query", k)
		}
	}
}
