package experiments

import (
	"printqueue/internal/metrics"
	"printqueue/internal/trace"
)

// Fig12Ks are the Top-K series of Figure 12; 0 means "All".
var Fig12Ks = []int{50, 100, 200, 500, 0}

// Fig12Row is one (window, K) point: mean precision/recall of the window's
// Top-K flow packet counts across checkpoints.
type Fig12Row struct {
	Window    int
	K         int // 0 = all flows
	Precision float64
	Recall    float64
}

// Fig12 reproduces "Top-K flows from a single time window under UW traces":
// alpha=1, k=12, T=5, with the query interval set to each window's full
// retained period. Every periodic checkpoint contributes one sample per
// (window, K) pair.
func Fig12(packets int, seed uint64) ([]Fig12Row, error) {
	preset := Preset(trace.UW, packets, seed)
	preset.TW.Alpha = 1
	preset.TW.K = 12
	preset.TW.T = 5
	pkts, err := trace.Generate(preset.Gen)
	if err != nil {
		return nil, err
	}
	run, err := Execute(pkts, preset.RunConfigFor(false))
	if err != nil {
		return nil, err
	}
	type cell struct{ p, r metrics.Sample }
	grid := make([][]cell, preset.TW.T)
	for i := range grid {
		grid[i] = make([]cell, len(Fig12Ks))
	}
	gtStart, gtEnd, err := run.GT.TimeSpan()
	if err != nil {
		return nil, err
	}
	for _, cp := range run.Sys.Checkpoints(run.Port) {
		f := cp.Filtered()
		if f.Empty() {
			continue
		}
		for w := 0; w < preset.TW.T; w++ {
			lo, hi := f.WindowSpan(w)
			if lo < gtStart {
				lo = gtStart
			}
			if hi > gtEnd {
				hi = gtEnd
			}
			if hi <= lo {
				continue
			}
			est := f.QueryWindow(w, lo, hi)
			truth := run.GT.CountsInInterval(lo, hi)
			if truth.Total() == 0 {
				continue
			}
			for ki, k := range Fig12Ks {
				p, r := metrics.TopKPrecisionRecall(est, truth, k)
				grid[w][ki].p.Add(p)
				grid[w][ki].r.Add(r)
			}
		}
	}
	var out []Fig12Row
	for w := range grid {
		for ki, k := range Fig12Ks {
			out = append(out, Fig12Row{
				Window:    w,
				K:         k,
				Precision: grid[w][ki].p.Mean(),
				Recall:    grid[w][ki].r.Mean(),
			})
		}
	}
	return out, nil
}
