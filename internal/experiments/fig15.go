package experiments

import (
	"printqueue/internal/groundtruth"
	"printqueue/internal/overhead"
	"printqueue/internal/trace"
)

// Fig15Point is one x-position of Figure 15: a port count with the
// (alpha, k) the paper shrinks to in order to fit the SRAM budget, the
// resulting total SRAM utilisation, and the measured per-port accuracy
// under WS traces.
type Fig15Point struct {
	Ports       int
	Alpha       uint
	K           uint
	SRAMPercent float64
	Precision   float64
	Recall      float64
}

// Fig15Sweep are the paper's x-axis points: as more ports activate
// PrintQueue, k shrinks and alpha grows to stay within SRAM.
var Fig15Sweep = []struct {
	Ports int
	Alpha uint
	K     uint
}{
	{1, 1, 12},
	{2, 1, 11},
	{4, 2, 10},
	{8, 2, 10},
	{10, 2, 10},
}

// Fig15 reproduces "Accuracy versus port number under WS traces". Queuing
// is independent per egress port, so per-port accuracy is measured on one
// simulated port with the point's (alpha, k) while SRAM is accounted for
// the full register partitioning across r(#ports) partitions.
func Fig15(packets int, seed uint64, victims int) ([]Fig15Point, error) {
	var out []Fig15Point
	for _, pt := range Fig15Sweep {
		preset := Preset(trace.WS, packets, seed)
		preset.TW.Alpha = pt.Alpha
		preset.TW.K = pt.K
		pkts, err := trace.Generate(preset.Gen)
		if err != nil {
			return nil, err
		}
		run, err := Execute(pkts, preset.RunConfigFor(false))
		if err != nil {
			return nil, err
		}
		vs := run.GT.SampleVictims(groundtruth.DepthBucket(1000, 0), victims)
		p, r, err := evalVictimsPQ(run, vs)
		if err != nil {
			return nil, err
		}
		bytes := overhead.TimeWindowSRAMBytes(preset.TW, pt.Ports) +
			overhead.QueueMonitorSRAMBytes(preset.QM, pt.Ports, 1)
		out = append(out, Fig15Point{
			Ports:       pt.Ports,
			Alpha:       pt.Alpha,
			K:           pt.K,
			SRAMPercent: overhead.SRAMUtilization(bytes),
			Precision:   p.Mean(),
			Recall:      r.Mean(),
		})
	}
	return out, nil
}
