// Package experiments contains one driver per table and figure of the
// paper's evaluation (§7), plus the shared machinery to wire a workload
// through the simulated switch into PrintQueue, the ground-truth collector,
// and the baselines. Each driver returns the rows/series the paper reports;
// cmd/experiments prints them and bench_test.go regenerates them under
// `go test -bench`.
package experiments

import (
	"fmt"

	"printqueue/internal/baseline/flowradar"
	"printqueue/internal/baseline/hashpipe"
	"printqueue/internal/core/control"
	"printqueue/internal/core/qmonitor"
	"printqueue/internal/core/timewindow"
	"printqueue/internal/groundtruth"
	"printqueue/internal/pktrec"
	"printqueue/internal/switchsim"
	"printqueue/internal/trace"
)

// RunConfig wires one single-port experiment.
type RunConfig struct {
	LinkBps     uint64
	BufferCells int
	TW          timewindow.Config
	QM          qmonitor.Config
	// QueuesPerPort and Scheduler configure the port; default FIFO/1.
	QueuesPerPort int
	Scheduler     switchsim.Scheduler
	// ReadRateEntriesPerSec models the control-plane I/O budget (0 = inf).
	ReadRateEntriesPerSec float64
	// DPTriggerDepth, if > 0, fires a data-plane query for packets whose
	// enqueue-time depth (cells) is at least this value.
	DPTriggerDepth int
	// MaxCheckpoints caps checkpoint history (0 = unlimited).
	MaxCheckpoints int
	// Baselines attaches HashPipe and FlowRadar runners reset at
	// PrintQueue's poll period.
	Baselines bool
	HP        hashpipe.Config
	FR        flowradar.Config
}

// Run is a finished single-port experiment: the PrintQueue system, the
// ground truth, and optional baselines, all fed the same dequeue stream.
type Run struct {
	Port int
	Sys  *control.System
	GT   *groundtruth.Collector
	HP   *hashpipe.Runner
	FR   *flowradar.Runner
	Sw   *switchsim.Switch
}

// Execute replays a packet schedule through a one-port switch with
// everything attached, then finalizes all consumers.
func Execute(pkts []*pktrec.Packet, cfg RunConfig) (*Run, error) {
	if len(pkts) == 0 {
		return nil, fmt.Errorf("experiments: empty packet schedule")
	}
	if cfg.QueuesPerPort <= 0 {
		cfg.QueuesPerPort = 1
	}
	port := pkts[0].Port
	sw, err := switchsim.NewSwitch(port+1, switchsim.PortConfig{
		LinkBps:     cfg.LinkBps,
		BufferCells: cfg.BufferCells,
		Queues:      cfg.QueuesPerPort,
		Scheduler:   cfg.Scheduler,
	})
	if err != nil {
		return nil, err
	}
	ctrlCfg := control.Config{
		TW:                    cfg.TW,
		QM:                    cfg.QM,
		Ports:                 []int{port},
		QueuesPerPort:         cfg.QueuesPerPort,
		ReadRateEntriesPerSec: cfg.ReadRateEntriesPerSec,
		MaxCheckpoints:        cfg.MaxCheckpoints,
	}
	if cfg.DPTriggerDepth > 0 {
		th := cfg.DPTriggerDepth
		ctrlCfg.DPTrigger = func(p *pktrec.Packet) bool { return p.Meta.EnqQdepth >= th }
	}
	sys, err := control.New(ctrlCfg)
	if err != nil {
		return nil, err
	}
	run := &Run{Port: port, Sys: sys, GT: groundtruth.NewCollector(), Sw: sw}
	p := sw.Port(port)
	p.AddEgressHook(run.GT)
	p.AddEgressHook(switchsim.EgressFunc(sys.OnDequeue))
	if cfg.Baselines {
		period := ctrlCfg.TW.SetPeriod()
		run.HP, err = hashpipe.NewRunner(cfg.HP, period)
		if err != nil {
			return nil, err
		}
		run.FR, err = flowradar.NewRunner(cfg.FR, period)
		if err != nil {
			return nil, err
		}
		p.AddEgressHook(switchsim.EgressFunc(func(pk *pktrec.Packet) {
			t := pk.Meta.DeqTimestamp()
			run.HP.Observe(pk.Flow, t)
			run.FR.Observe(pk.Flow, t)
		}))
	}
	for _, pk := range pkts {
		sw.Inject(pk)
	}
	sw.Flush()
	sys.Finalize(p.Now() + 1)
	if run.HP != nil {
		run.HP.Finalize()
	}
	if run.FR != nil {
		run.FR.Finalize()
	}
	return run, nil
}

// WorkloadPreset bundles the paper's per-trace parameters (§7.1: m0=10 and
// alpha=1 for WS/DM, m0=6 and alpha=2 for UW; T=4 and k=12 for all).
type WorkloadPreset struct {
	Workload trace.Workload
	TW       timewindow.Config
	QM       qmonitor.Config
	LinkBps  uint64
	// Trace shaping tuned so victims populate all queue-depth buckets.
	Gen trace.Config
}

// Preset returns the paper's configuration for a workload. packets bounds
// the trace length; seed makes it reproducible.
func Preset(w trace.Workload, packets int, seed uint64) WorkloadPreset {
	const linkBps = 10e9
	p := WorkloadPreset{
		Workload: w,
		LinkBps:  linkBps,
		QM:       qmonitor.Config{MaxDepthCells: 32768, GranuleCells: 2},
		Gen: trace.Config{
			Workload: w,
			Seed:     seed,
			LinkBps:  linkBps,
			Packets:  packets,
		},
	}
	switch w {
	case trace.UW:
		// ~100 B packets: min-packet tx delay ~80 ns at 10 Gbps; m0 = 6.
		p.TW = timewindow.Config{M0: 6, K: 12, Alpha: 2, T: 4, MinPktTxDelayNs: 80}
		p.Gen.Episodic = true
		p.Gen.CalmLoad = 0.9
		p.Gen.BurstLoad = 3.2
		p.Gen.MeanCalmNs = 100e3
		p.Gen.MeanBurstNs = 150e3
		p.Gen.FlowArrivalRate = 30000
	case trace.WS, trace.DM:
		// near-MTU packets: tx delay ~1200 ns at 10 Gbps; m0 = 10.
		p.TW = timewindow.Config{M0: 10, K: 12, Alpha: 1, T: 4, MinPktTxDelayNs: 1200}
		p.QM.GranuleCells = 19 // one MTU packet
		p.Gen.Episodic = true
		p.Gen.CalmLoad = 0.9
		p.Gen.BurstLoad = 2.2
		p.Gen.MeanCalmNs = 500e3
		p.Gen.MeanBurstNs = 1e6
		p.Gen.FlowArrivalRate = 4000
		// Near-MTU workloads keep tens of flows in flight (senders blast
		// responses back-to-back); per-flow packet counts in a query
		// interval then have the concentration the recovery relies on.
		p.Gen.MaxActiveFlows = 32
	}
	return p
}

// RunConfigFor converts a preset into a RunConfig with a deep buffer and
// baseline comparators matching the paper's resource parity (HashPipe and
// FlowRadar: 4096 entries x 5 stages vs PrintQueue 4096 cells x 4 windows).
func (p WorkloadPreset) RunConfigFor(baselines bool) RunConfig {
	return RunConfig{
		LinkBps:     p.LinkBps,
		BufferCells: 40000,
		TW:          p.TW,
		QM:          p.QM,
		Baselines:   baselines,
		HP:          hashpipe.Config{Stages: 5, SlotsPerStage: 4096, Seed: 11},
		FR:          flowradar.Config{Cells: 4096 * 4, KHash: 3, Seed: 13},
	}
}

// DepthBuckets are the paper's queue-depth groups, in cells.
var DepthBuckets = []struct {
	Label  string
	Lo, Hi int // Hi == 0 means unbounded
}{
	{"1-2", 1000, 2000},
	{"2-5", 2000, 5000},
	{"5-10", 5000, 10000},
	{"10-15", 10000, 15000},
	{"15-20", 15000, 20000},
	{">20", 20000, 0},
}
