package experiments

import (
	"testing"

	"printqueue/internal/groundtruth"
	"printqueue/internal/metrics"
	"printqueue/internal/trace"
)

// TestSmokeUW runs a short UW trace end to end and checks that asynchronous
// queries for victims' direct culprits recover the ground truth reasonably.
func TestSmokeUW(t *testing.T) {
	p := Preset(trace.UW, 200000, 1)
	pkts, err := trace.Generate(p.Gen)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) < 100000 {
		t.Fatalf("generator produced only %d packets", len(pkts))
	}
	run, err := Execute(pkts, p.RunConfigFor(false))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("packets dequeued: %d, dropped: %d, max depth: %d cells, checkpoints: %d",
		run.GT.Len(), run.Sw.Port(run.Port).Stats().Dropped, run.GT.MaxDepth(), run.Sys.Stats().Checkpoints)
	for _, b := range DepthBuckets {
		n := len(run.GT.SampleVictims(groundtruth.DepthBucket(b.Lo, b.Hi), 0))
		t.Logf("bucket %-6s: %d packets", b.Label, n)
	}
	if run.GT.MaxDepth() < 2000 {
		t.Fatalf("workload never built meaningful queues (max depth %d cells)", run.GT.MaxDepth())
	}
	victims := run.GT.SampleVictims(groundtruth.DepthBucket(1000, 0), 50)
	if len(victims) == 0 {
		t.Fatal("no victims with queue depth >= 1000 cells")
	}
	var ps, rs metrics.Sample
	for _, vi := range victims {
		v := run.GT.Record(vi)
		est, err := run.Sys.QueryInterval(run.Port, v.EnqTimestamp, v.DeqTimestamp())
		if err != nil {
			t.Fatal(err)
		}
		truth := run.GT.DirectTruth(vi)
		p, r := metrics.PrecisionRecall(est, truth)
		ps.Add(p)
		rs.Add(r)
	}
	t.Logf("victims=%d mean precision=%.3f mean recall=%.3f", len(victims), ps.Mean(), rs.Mean())
	// Paper Table 2 reports 0.684/0.634 for UW asynchronous queries; allow
	// generous slack for the synthetic trace.
	if ps.Mean() < 0.5 || rs.Mean() < 0.35 {
		t.Errorf("accuracy too low: precision %.3f recall %.3f", ps.Mean(), rs.Mean())
	}
}
