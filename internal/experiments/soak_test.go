package experiments

import (
	"testing"

	"printqueue/internal/groundtruth"
	"printqueue/internal/metrics"
	"printqueue/internal/trace"
)

// TestSoak replays a multi-million-packet UW trace — several dozen set
// periods, hundreds of congestion episodes — with a bounded checkpoint
// history, and verifies the system stays healthy end to end: checkpoints
// chain without gaps, data-plane queries keep firing, and accuracy holds
// for recent victims. Skipped under -short.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const packets = 3000000
	preset := Preset(trace.UW, packets, 99)
	pkts, err := trace.Generate(preset.Gen)
	if err != nil {
		t.Fatal(err)
	}
	cfg := preset.RunConfigFor(false)
	cfg.DPTriggerDepth = 2000
	cfg.ReadRateEntriesPerSec = 50e6
	cfg.MaxCheckpoints = 128
	run, err := Execute(pkts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := run.Sys.Stats()
	t.Logf("packets=%d checkpoints=%d specials=%d suppressed=%d entriesRead=%d",
		st.PacketsObserved, st.Checkpoints, st.SpecialFreezes, st.DPSuppressed, st.EntriesRead)
	if st.PacketsObserved < packets*9/10 {
		t.Fatalf("observed %d of %d packets", st.PacketsObserved, packets)
	}
	// Under sustained deep congestion the data-plane freezes fire so often
	// that they substitute for the periodic poll (each freeze restarts the
	// poll timer); coverage is what matters, and it chains across both
	// kinds.
	if st.Checkpoints+st.SpecialFreezes < 10 {
		t.Fatalf("only %d freezes over a long run", st.Checkpoints+st.SpecialFreezes)
	}
	if st.SpecialFreezes == 0 {
		t.Fatal("no data-plane queries over hundreds of episodes")
	}
	cps := run.Sys.Checkpoints(run.Port)
	if len(cps) > cfg.MaxCheckpoints {
		t.Fatalf("history %d exceeds cap %d", len(cps), cfg.MaxCheckpoints)
	}
	for i := 1; i < len(cps); i++ {
		if cps[i].PrevFreeze != cps[i-1].FreezeTime {
			t.Fatalf("checkpoint chain gap at %d", i)
		}
	}
	// Recent victims (still inside the retained history) answer well.
	victims := run.GT.SampleVictims(groundtruth.DepthBucket(2000, 0), 0)
	if len(victims) == 0 {
		t.Fatal("no victims")
	}
	recent := victims[len(victims)-40:]
	var ps, rs metrics.Sample
	for _, vi := range recent {
		v := run.GT.Record(vi)
		est, err := run.Sys.QueryInterval(run.Port, v.EnqTimestamp, v.DeqTimestamp())
		if err != nil {
			t.Fatal(err)
		}
		p, r := metrics.PrecisionRecall(est, run.GT.DirectTruth(vi))
		ps.Add(p)
		rs.Add(r)
	}
	t.Logf("recent victims: precision %.3f recall %.3f", ps.Mean(), rs.Mean())
	if ps.Mean() < 0.6 || rs.Mean() < 0.5 {
		t.Fatalf("late-run accuracy degraded: %.3f/%.3f", ps.Mean(), rs.Mean())
	}
}
