package experiments

import (
	"fmt"

	"printqueue/internal/core/control"
	"printqueue/internal/core/qmonitor"
	"printqueue/internal/flow"
	"printqueue/internal/groundtruth"
	"printqueue/internal/pktrec"
	"printqueue/internal/trace"
)

// Fig16DepthSample is one point of Figure 16(a): queue depth (cells) at an
// enqueue timestamp.
type Fig16DepthSample struct {
	EnqTS uint64
	Depth int
}

// Fig16Shares is the composition of one culprit class among the case
// study's three principals, as packet proportions (Figure 16(b)).
type Fig16Shares struct {
	Burst      float64
	Background float64
	NewTCP     float64
	Other      float64
}

// Fig16Result is the complete case study output.
type Fig16Result struct {
	Flows trace.CaseStudyFlows
	// Depth is the downsampled queue-depth series.
	Depth []Fig16DepthSample
	// BurstEndNs and CongestionEndNs quantify the paper's headline: the
	// burst lasts ~5 ms but its queuing persists far longer.
	BurstDurationNs      uint64
	CongestionDurationNs uint64
	// Victim is the diagnosed new-TCP packet.
	VictimEnq, VictimDeq uint64
	VictimDepth          int
	// The three culprit classes' composition.
	Direct, Indirect, Original Fig16Shares
	// OriginalBurst and OriginalBackground are the raw original-culprit
	// counts (the paper reports 5597:6096).
	OriginalBurst, OriginalBackground float64
}

// classify buckets counts into the case study principals.
func classify(c flow.Counts, fs trace.CaseStudyFlows) Fig16Shares {
	total := c.Total()
	if total == 0 {
		return Fig16Shares{}
	}
	var s Fig16Shares
	for k, n := range c {
		switch k {
		case fs.Burst:
			s.Burst += n
		case fs.Background:
			s.Background += n
		case fs.NewTCP:
			s.NewTCP += n
		default:
			s.Other += n
		}
	}
	s.Burst = s.Burst / total * 100
	s.Background = s.Background / total * 100
	s.NewTCP = s.NewTCP / total * 100
	s.Other = s.Other / total * 100
	return s
}

// Fig16 reproduces the §7.2 queue-monitor case study at the given time
// scale (1.0 = the paper's full 500 ms / 10000-datagram run). It diagnoses
// a high-delay packet of the late TCP flow and reports the composition of
// its direct, indirect, and original culprits.
func Fig16(scale float64) (*Fig16Result, error) {
	cfg := trace.DefaultCaseStudy(scale)
	pkts, fs, err := trace.CaseStudy(cfg)
	if err != nil {
		return nil, err
	}
	preset := Preset(trace.WS, 0, cfg.Seed) // MTU-class parameters
	run, err := Execute(pkts, RunConfig{
		LinkBps:     cfg.LinkBps,
		BufferCells: 120000,
		TW:          preset.TW,
		QM:          qmonitor.Config{MaxDepthCells: 131072, GranuleCells: 4},
		// Data-plane freezes during the congestion give the queue-monitor
		// query a snapshot near the diagnosis instant (the paper triggers
		// its case-study query mid-regime, Figure 16's star).
		DPTriggerDepth:        400,
		ReadRateEntriesPerSec: 50e6,
	})
	if err != nil {
		return nil, err
	}
	return fig16Analyze(run.GT, run.Sys, run.Port, fs)
}

// fig16Analyze derives the case-study outputs from a finished run.
func fig16Analyze(gt *groundtruth.Collector, sys *control.System, port int, fs trace.CaseStudyFlows) (*Fig16Result, error) {
	res := &Fig16Result{Flows: fs}

	// (a) depth series, downsampled to ~2000 points.
	n := gt.Len()
	stride := n / 2000
	if stride == 0 {
		stride = 1
	}
	for i := 0; i < n; i += stride {
		r := gt.Record(i)
		res.Depth = append(res.Depth, Fig16DepthSample{EnqTS: r.EnqTimestamp, Depth: int(r.EnqQdepth)})
	}

	// Burst duration: first to last burst-flow arrival.
	var burstStart, burstEnd uint64
	for i := 0; i < n; i++ {
		r := gt.Record(i)
		if r.Flow == fs.Burst {
			if burstStart == 0 {
				burstStart = r.EnqTimestamp
			}
			burstEnd = r.EnqTimestamp
		}
	}
	res.BurstDurationNs = burstEnd - burstStart

	// Congestion duration: from burst start until the queue first drains
	// back to (near) empty afterwards.
	congEnd := burstEnd
	for i := 0; i < n; i++ {
		r := gt.Record(i)
		if r.EnqTimestamp > burstStart && int(r.EnqQdepth) <= pktrec.Cells(int(r.Bytes)) {
			congEnd = r.EnqTimestamp
			if r.EnqTimestamp > burstEnd {
				break
			}
		}
	}
	if congEnd > burstStart {
		res.CongestionDurationNs = congEnd - burstStart
	}

	// Victim: the new TCP flow's packet with the deepest queue.
	victims := gt.SampleVictims(groundtruth.FlowIs(fs.NewTCP), 0)
	if len(victims) == 0 {
		return nil, fmt.Errorf("fig16: new TCP flow never dequeued")
	}
	vi := victims[0]
	for _, i := range victims {
		if gt.Record(i).EnqQdepth > gt.Record(vi).EnqQdepth {
			vi = i
		}
	}
	v := gt.Record(vi)
	res.VictimEnq, res.VictimDeq = v.EnqTimestamp, v.DeqTimestamp()
	res.VictimDepth = int(v.EnqQdepth)

	// Direct culprits: time-window query over the victim's residence.
	direct, err := sys.QueryInterval(port, v.EnqTimestamp, v.DeqTimestamp())
	if err != nil {
		return nil, err
	}
	res.Direct = classify(direct, fs)

	// Indirect culprits: the rest of the congestion regime.
	regime := gt.RegimeStart(vi)
	if regime < v.EnqTimestamp {
		indirect, err := sys.QueryInterval(port, regime, v.EnqTimestamp)
		if err != nil {
			return nil, err
		}
		res.Indirect = classify(indirect, fs)
	}

	// Original culprits: queue-monitor query at the victim's enqueue.
	culprits, err := sys.QueryOriginal(port, 0, v.EnqTimestamp)
	if err != nil {
		return nil, err
	}
	orig := qmonitor.FlowCounts(culprits)
	res.Original = classify(orig, fs)
	res.OriginalBurst = orig[fs.Burst]
	res.OriginalBackground = orig[fs.Background]
	return res, nil
}
