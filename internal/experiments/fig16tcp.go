package experiments

import (
	"printqueue/internal/core/control"
	"printqueue/internal/core/qmonitor"
	"printqueue/internal/groundtruth"
	"printqueue/internal/pktrec"
	"printqueue/internal/switchsim"
	"printqueue/internal/tcpsim"
	"printqueue/internal/trace"
)

// Fig16TCP is the case study with closed-loop senders: the background and
// the late flow are TCP Reno-style sources (application-limited, as the
// paper's "limited to ~90% of the link capacity" background) whose windows
// react to the burst's drops — the mechanism the paper's testbed actually
// exhibited, versus Fig16's open-loop pacing. The diagnosis itself is
// identical; only the traffic substrate changes.
func Fig16TCP(scale float64) (*Fig16Result, error) {
	if scale <= 0 {
		scale = 1
	}
	cfg := trace.DefaultCaseStudy(scale)

	sw, err := switchsim.NewSwitch(1, switchsim.PortConfig{
		LinkBps:     cfg.LinkBps,
		BufferCells: 120000,
	})
	if err != nil {
		return nil, err
	}
	driver := tcpsim.NewDriver(sw, 0)

	preset := Preset(trace.WS, 0, cfg.Seed) // MTU-class time windows
	sys, err := control.New(control.Config{
		TW:    preset.TW,
		QM:    qmonitor.Config{MaxDepthCells: 131072, GranuleCells: 4},
		Ports: []int{0},
		// Data-plane freezes mid-regime, as in Fig16.
		DPTrigger:             control.DepthTrigger(400),
		ReadRateEntriesPerSec: 50e6,
	})
	if err != nil {
		return nil, err
	}
	gt := groundtruth.NewCollector()
	sw.Port(0).AddEgressHook(gt)
	sw.Port(0).AddEgressHook(switchsim.EgressFunc(sys.OnDequeue))

	pkts, fs, err := trace.CaseStudy(cfg)
	if err != nil {
		return nil, err
	}
	// Keep only the burst's open-loop datagrams from the schedule; the TCP
	// principals become closed-loop senders.
	var burst []*pktrec.Packet
	for _, p := range pkts {
		if p.Flow == fs.Burst {
			burst = append(burst, p)
		}
	}
	driver.AddSchedule(burst)
	const rtt = 200e3 // 200 us propagation RTT
	if err := driver.AddSender(tcpsim.SenderConfig{
		Flow:       fs.Background,
		RTTNs:      rtt,
		MaxRateBps: cfg.BackgroundBps,
		// Let slow start reach the application's pacing rate (BDP at
		// 9.9 Gbps x 200 us is ~165 packets; the queue adds several
		// hundred more).
		SSThresh: 2048,
	}); err != nil {
		return nil, err
	}
	if err := driver.AddSender(tcpsim.SenderConfig{
		Flow:       fs.NewTCP,
		RTTNs:      rtt,
		StartNs:    cfg.NewTCPStartNs,
		MaxRateBps: cfg.NewTCPBps,
		SSThresh:   2048,
	}); err != nil {
		return nil, err
	}

	driver.Run(cfg.DurationNs)
	sw.Flush()
	sys.Finalize(sw.Port(0).Now() + 1)
	return fig16Analyze(gt, sys, 0, fs)
}
