package experiments

import (
	"fmt"

	"printqueue/internal/groundtruth"
	"printqueue/internal/trace"
)

// Fig11Variant is one parameter set of Figure 11 (all under UW traces).
type Fig11Variant struct {
	Alpha uint
	K     uint
	T     int
}

func (v Fig11Variant) String() string { return fmt.Sprintf("a=%d k=%d T=%d", v.Alpha, v.K, v.T) }

// Fig11Variants are the paper's three subgraphs.
var Fig11Variants = []Fig11Variant{
	{Alpha: 2, K: 12, T: 4},
	{Alpha: 2, K: 12, T: 5},
	{Alpha: 3, K: 12, T: 4},
}

// Fig11Row is one bucket's median accuracy for PrintQueue and the
// baselines.
type Fig11Row struct {
	Bucket                string
	Victims               int
	PQPrecision, PQRecall float64
	HPPrecision, HPRecall float64
	FRPrecision, FRRecall float64
}

// Fig11Result is one subgraph.
type Fig11Result struct {
	Variant Fig11Variant
	Rows    []Fig11Row
}

// Fig11 reproduces "PrintQueue versus related works with different
// parameters under UW traces": median per-victim accuracy by queue-depth
// bucket for one (alpha, k, T) variant.
func Fig11(v Fig11Variant, packets int, seed uint64, victimsPerBucket int) (*Fig11Result, error) {
	preset := Preset(trace.UW, packets, seed)
	preset.TW.Alpha = v.Alpha
	preset.TW.K = v.K
	preset.TW.T = v.T
	pkts, err := trace.Generate(preset.Gen)
	if err != nil {
		return nil, err
	}
	run, err := Execute(pkts, preset.RunConfigFor(true))
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{Variant: v}
	for _, b := range DepthBuckets {
		victims := run.GT.SampleVictims(groundtruth.DepthBucket(b.Lo, b.Hi), victimsPerBucket)
		pqP, pqR, err := evalVictimsPQ(run, victims)
		if err != nil {
			return nil, err
		}
		hpP, hpR := evalVictimsFn(run, victims, run.HP.Query)
		frP, frR := evalVictimsFn(run, victims, run.FR.Query)
		res.Rows = append(res.Rows, Fig11Row{
			Bucket:      b.Label,
			Victims:     pqP.N(),
			PQPrecision: pqP.Median(), PQRecall: pqR.Median(),
			HPPrecision: hpP.Median(), HPRecall: hpR.Median(),
			FRPrecision: frP.Median(), FRRecall: frR.Median(),
		})
	}
	return res, nil
}
