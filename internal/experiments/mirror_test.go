package experiments

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"printqueue/internal/core/control"
	"printqueue/internal/fleet"
	"printqueue/internal/pktrec"
)

// serveChainBoth exposes every hop of the chain over TCP once and
// registers the same switches with two collectors: a plain fan-out
// collector and a mirror-mode collector fed by checkpoint streams. The
// chain must have been executed with HistDir set, so the mirrors have a
// segment log to replay.
func serveChainBoth(t *testing.T, run *ChainRun) (plain, mirrored *fleet.Collector, hops []fleet.HopRef) {
	t.Helper()
	plain = fleet.New(fleet.Options{})
	t.Cleanup(func() { plain.Close() })
	mirrored = fleet.New(fleet.Options{Mirror: true, MirrorDir: t.TempDir()})
	t.Cleanup(func() { mirrored.Close() })
	hops = make([]fleet.HopRef, len(run.Sys))
	for k, sys := range run.Sys {
		qs := control.NewQueryServer(sys)
		qs.Start(2)
		t.Cleanup(qs.Stop)
		srv, err := control.ServeQueries("127.0.0.1:0", qs)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		id := fmt.Sprintf("sw%d", k)
		info := fleet.SwitchInfo{ID: id, Hop: k, Addr: srv.Addr().String()}
		if err := plain.Register(info); err != nil {
			t.Fatal(err)
		}
		if err := mirrored.Register(info); err != nil {
			t.Fatal(err)
		}
		hops[k] = fleet.HopRef{SwitchID: id, Port: run.Port}
	}
	return plain, mirrored, hops
}

// chainMinFreeze is the largest interval end every hop's mirror can cover
// with zero lag: the smallest finalize freeze across hops.
func chainMinFreeze(run *ChainRun) uint64 {
	min := ^uint64(0)
	for k := range run.Sys {
		if f := run.Chain.Switch(k).Port(run.Port).Now() + 1; f < min {
			min = f
		}
	}
	return min
}

// waitChainMirrorsWarm polls a full-span path query until every hop is
// served from its mirror — externally observable via HopResult.Mirrored,
// no reaching into collector internals.
func waitChainMirrorsWarm(t *testing.T, c *fleet.Collector, hops []fleet.HopRef, end uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		results := c.QueryPath(hops, 0, end)
		warm := true
		for _, res := range results {
			if res.Err != nil || !res.Mirrored {
				warm = false
				break
			}
		}
		if warm {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("mirrors never warmed to %d: %+v", end, results)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFleetChainMirrorDifferential is the tentpole's acceptance test: on a
// 3-hop simulated chain with cross-traffic at the middle hop, a warm
// mirror-mode collector must answer path queries and diagnoses
// bit-identically to the plain fan-out collector, over seeded random
// intervals that land in the hot tier, the cold tier, and straddle both
// (the hops keep only a 4-checkpoint hot ring, so most history is
// cold-only).
func TestFleetChainMirrorDifferential(t *testing.T) {
	cfg := chainRunConfig(3)
	cfg.MaxCheckpoints = 4 // shove most checkpoints into the cold tier
	cfg.HistDir = t.TempDir()
	run, err := ExecuteChain(chainSchedule(), [][]pktrec.Packet{1: crossSchedule()}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(run.Close)
	plain, mirrored, hops := serveChainBoth(t, run)
	minFreeze := chainMinFreeze(run)
	waitChainMirrorsWarm(t, mirrored, hops, minFreeze)

	rng := rand.New(rand.NewSource(7))
	mirroredServed := 0
	for trial := 0; trial < 30; trial++ {
		start := uint64(rng.Int63n(int64(minFreeze)))
		end := start + 1 + uint64(rng.Int63n(int64(minFreeze-start)))
		want := plain.QueryPath(hops, start, end)
		got := mirrored.QueryPath(hops, start, end)
		for k := range hops {
			if want[k].Err != nil || got[k].Err != nil {
				t.Fatalf("[%d,%d) hop %d: plain err=%v mirrored err=%v", start, end, k, want[k].Err, got[k].Err)
			}
			if !reflect.DeepEqual(got[k].Counts, want[k].Counts) {
				t.Fatalf("[%d,%d) hop %d: mirrored counts diverge\nmirrored: %v\nplain:    %v",
					start, end, k, got[k].Counts, want[k].Counts)
			}
			if got[k].Mirrored {
				mirroredServed++
				if got[k].Stale {
					t.Fatalf("[%d,%d) hop %d: fully covered answer annotated stale", start, end, k)
				}
			}
		}
	}
	if mirroredServed == 0 {
		t.Fatal("no trial was served from a mirror; the fast path never engaged")
	}

	// Past-the-cover intervals: the strict staleness default must fall back
	// to the network, never serve silently lagged data.
	res := mirrored.QueryPath(hops, 0, minFreeze+1000)
	for k, r := range res {
		if r.Err != nil {
			t.Fatalf("lagged query hop %d: %v", k, r.Err)
		}
		if r.Mirrored && r.Hop == hopWithMinFreeze(run) {
			t.Fatalf("hop %d served a lagged interval under strict staleness: %+v", k, r)
		}
	}

	// Full diagnosis differential: ranked culprits and per-hop counts must
	// match exactly (Latency/Mirrored annotations aside).
	dPlain, err := plain.Diagnose("victim", hops, 0, minFreeze, 3)
	if err != nil {
		t.Fatal(err)
	}
	dMir, err := mirrored.Diagnose("victim", hops, 0, minFreeze, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dPlain.Partial || dMir.Partial {
		t.Fatalf("partial diagnosis: plain=%v mirrored=%v", dPlain.FailedHops(), dMir.FailedHops())
	}
	for k := range dPlain.Hops {
		if !reflect.DeepEqual(dMir.Hops[k].Counts, dPlain.Hops[k].Counts) {
			t.Fatalf("hop %d: diagnosis counts diverge", k)
		}
		if !reflect.DeepEqual(dMir.Hops[k].Culprits, dPlain.Hops[k].Culprits) {
			t.Fatalf("hop %d: culprit ranking diverges\nmirrored: %+v\nplain:    %+v",
				k, dMir.Hops[k].Culprits, dPlain.Hops[k].Culprits)
		}
		if !dMir.Hops[k].Mirrored {
			t.Fatalf("hop %d of the mirrored diagnosis went over the network", k)
		}
	}
}

// hopWithMinFreeze returns the hop index whose finalize freeze is the
// chain minimum — the hop guaranteed to lag a query ending past it.
func hopWithMinFreeze(run *ChainRun) int {
	best, min := 0, ^uint64(0)
	for k := range run.Sys {
		if f := run.Chain.Switch(k).Port(run.Port).Now() + 1; f < min {
			min, best = f, k
		}
	}
	return best
}
