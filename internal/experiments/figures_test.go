package experiments

import (
	"testing"

	"printqueue/internal/trace"
)

// The drivers run here at reduced scale; the benchmarks and
// cmd/experiments run them at full scale. These tests assert the paper's
// qualitative shapes, not absolute numbers.

func TestFig9Shape(t *testing.T) {
	res, err := Fig9(trace.UW, 150000, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(DepthBuckets) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var sawAQ, sawDQ bool
	for _, r := range res.Rows {
		if r.AQVictims > 0 {
			sawAQ = true
			if r.AQPrecision < 0.5 || r.AQRecall < 0.3 {
				t.Errorf("bucket %s AQ accuracy %.3f/%.3f implausibly low", r.Bucket, r.AQPrecision, r.AQRecall)
			}
		}
		if r.DQVictims > 0 {
			sawDQ = true
			// The paper: data-plane queries are consistently high accuracy.
			if r.DQPrecision < 0.7 {
				t.Errorf("bucket %s DQ precision %.3f too low", r.Bucket, r.DQPrecision)
			}
		}
	}
	if !sawAQ || !sawDQ {
		t.Fatalf("missing samples: AQ=%v DQ=%v", sawAQ, sawDQ)
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := Table2(120000, 1, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The paper's headline: PrintQueue beats both baselines on
		// precision under every trace.
		if r.PQPrecision <= r.HPPrecision || r.PQPrecision <= r.FRPrecision {
			t.Errorf("%s: PQ precision %.3f not above HP %.3f / FR %.3f",
				r.Trace, r.PQPrecision, r.HPPrecision, r.FRPrecision)
		}
		if r.Victims == 0 {
			t.Errorf("%s: no victims sampled", r.Trace)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	bands, err := Fig10(120000, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(bands) != len(Fig10Bands) {
		t.Fatalf("bands = %d", len(bands))
	}
	for _, b := range bands {
		if len(b.PQPrec) == 0 {
			t.Errorf("band %s has no PQ samples", b.Band)
			continue
		}
		// Values are sorted (CDF-ready) and within [0,1].
		for i := 1; i < len(b.PQPrec); i++ {
			if b.PQPrec[i] < b.PQPrec[i-1] {
				t.Fatalf("band %s PQ precision not sorted", b.Band)
			}
		}
		for _, v := range b.PQRec {
			if v < 0 || v > 1 {
				t.Fatalf("band %s recall %v out of range", b.Band, v)
			}
		}
	}
}

func TestFig11Shape(t *testing.T) {
	res, err := Fig11(Fig11Variant{Alpha: 3, K: 12, T: 4}, 120000, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Variant.Alpha != 3 || len(res.Rows) != len(DepthBuckets) {
		t.Fatalf("result shape wrong: %+v", res.Variant)
	}
	// At large query intervals PrintQueue outperforms the baselines
	// (paper: "across all evaluated parameter sets"). Use the deepest
	// bucket that actually collected victims at this reduced scale.
	var last *Fig11Row
	for i := range res.Rows {
		if res.Rows[i].Victims >= 5 {
			last = &res.Rows[i]
		}
	}
	if last == nil {
		t.Fatal("no bucket collected victims")
	}
	if last.PQPrecision <= last.HPPrecision {
		t.Errorf("bucket %s: PQ %.3f not above HP %.3f", last.Bucket, last.PQPrecision, last.HPPrecision)
	}
}

func TestFig12Shape(t *testing.T) {
	rows, err := Fig12(200000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5*len(Fig12Ks) {
		t.Fatalf("rows = %d, want %d", len(rows), 5*len(Fig12Ks))
	}
	// Window 0 is uncompressed: its all-flows precision must beat the
	// deepest window's.
	byWindowK := map[[2]int]Fig12Row{}
	for _, r := range rows {
		byWindowK[[2]int{r.Window, r.K}] = r
	}
	w0 := byWindowK[[2]int{0, 0}]
	w4 := byWindowK[[2]int{4, 0}]
	if w0.Precision <= w4.Precision {
		t.Errorf("window 0 precision %.3f not above window 4's %.3f", w0.Precision, w4.Precision)
	}
	if w0.Precision < 0.9 {
		t.Errorf("window 0 (uncompressed) precision %.3f, want near 1", w0.Precision)
	}
}

func TestFig13Shape(t *testing.T) {
	rows, err := Fig13(100000, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig13Configs) {
		t.Fatalf("rows = %d", len(rows))
	}
	byLabel := map[string]Fig13Row{}
	for _, r := range rows {
		byLabel[r.Config.Label()] = r
		if r.MBps <= 0 {
			t.Errorf("%s: zero overhead", r.Config.Label())
		}
	}
	// Larger alpha compresses more aggressively: lower polling bandwidth
	// (paper: "with larger alpha ... reducing the I/O requirements").
	if byLabel["3_12_4"].MBps >= byLabel["1_12_4"].MBps {
		t.Errorf("alpha=3 overhead %.2f not below alpha=1's %.2f",
			byLabel["3_12_4"].MBps, byLabel["1_12_4"].MBps)
	}
}

func TestFig14Shape(t *testing.T) {
	a := Fig14a()
	if len(a) == 0 {
		t.Fatal("no fig14a rows")
	}
	// Ratio grows with duration for fixed alpha.
	var prev float64
	for _, r := range a {
		if r.Alpha == 1 {
			if r.Ratio < prev {
				t.Fatalf("ratio not monotone for alpha=1 at 2^%d", log2(r.DurationNs))
			}
			prev = r.Ratio
		}
	}
	// The longest durations show the paper's three-orders-of-magnitude
	// separation (for the most aggressive compression).
	var maxRatio float64
	for _, r := range a {
		if r.Ratio > maxRatio {
			maxRatio = r.Ratio
		}
	}
	if maxRatio < 1000 {
		t.Errorf("max ratio %.1f, want >= 1000", maxRatio)
	}

	b := Fig14b()
	if len(b) != len(Fig14bConfigs) {
		t.Fatalf("fig14b rows = %d", len(b))
	}
	// SRAM grows with k and with T.
	byKT := map[[2]int]Fig14bRow{}
	for _, r := range b {
		byKT[[2]int{int(r.K), r.T}] = r
	}
	if byKT[[2]int{12, 5}].SRAMBytes <= byKT[[2]int{9, 5}].SRAMBytes {
		t.Error("SRAM not increasing in k")
	}
	if byKT[[2]int{12, 5}].SRAMBytes <= byKT[[2]int{12, 2}].SRAMBytes {
		t.Error("SRAM not increasing in T")
	}
}

func log2(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

func TestFig15Shape(t *testing.T) {
	rows, err := Fig15(60000, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig15Sweep) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].SRAMPercent < rows[i-1].SRAMPercent {
			// SRAM may stay flat when the port count doubles into the
			// same partition budget with a smaller k, but it must never
			// shrink as ports increase at the same (alpha, k).
			if rows[i].K == rows[i-1].K && rows[i].Alpha == rows[i-1].Alpha {
				t.Errorf("ports %d SRAM %.2f%% below ports %d's %.2f%%",
					rows[i].Ports, rows[i].SRAMPercent, rows[i-1].Ports, rows[i-1].SRAMPercent)
			}
		}
	}
}

func TestFig16Shape(t *testing.T) {
	r, err := Fig16(0.05)
	if err != nil {
		t.Fatal(err)
	}
	// The headline: congestion outlives the burst by a large factor.
	if r.CongestionDurationNs < 5*r.BurstDurationNs {
		t.Errorf("congestion %.2fms only %.1fx the burst %.2fms",
			float64(r.CongestionDurationNs)/1e6,
			float64(r.CongestionDurationNs)/float64(r.BurstDurationNs),
			float64(r.BurstDurationNs)/1e6)
	}
	// Direct culprits exclude the burst; original culprits implicate it
	// prominently.
	if r.Direct.Burst > 5 {
		t.Errorf("direct culprits contain %.1f%% burst, want ~0", r.Direct.Burst)
	}
	if r.Original.Burst < 20 {
		t.Errorf("original culprits contain only %.1f%% burst", r.Original.Burst)
	}
	if r.OriginalBurst == 0 || r.OriginalBackground == 0 {
		t.Errorf("original counts %v:%v; both principals should appear",
			r.OriginalBurst, r.OriginalBackground)
	}
	if len(r.Depth) == 0 {
		t.Error("no depth series")
	}
}

// TestFig16TCPShape runs the closed-loop variant and checks it reproduces
// the same qualitative diagnosis as the open-loop case study. Scale 0.1 is
// the smallest at which the scenario is meaningful: TCP slow start needs
// ~1 ms (5 RTTs) to reach the background's rate, and the burst must arrive
// after that ramp.
func TestFig16TCPShape(t *testing.T) {
	r, err := Fig16TCP(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if r.CongestionDurationNs < 5*r.BurstDurationNs {
		t.Errorf("congestion only %.1fx the burst",
			float64(r.CongestionDurationNs)/float64(r.BurstDurationNs))
	}
	if r.Direct.Burst > 5 {
		t.Errorf("direct culprits contain %.1f%% burst, want ~0", r.Direct.Burst)
	}
	if r.Original.Burst < 20 {
		t.Errorf("original culprits contain only %.1f%% burst", r.Original.Burst)
	}
}

// TestConQuestComparison quantifies the §8 contrast: ConQuest answers the
// victim's direct-culprit question at enqueue time, but an asynchronous
// query after its snapshots rotate finds nothing, while PrintQueue still
// answers.
func TestConQuestComparison(t *testing.T) {
	res, err := ConQuestComparison(150000, 1, 40, 20e6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Victims == 0 {
		t.Fatal("no victims")
	}
	t.Logf("online %.3f/%.3f async %.3f/%.3f PQ %.3f/%.3f",
		res.OnlinePrecision, res.OnlineRecall,
		res.AsyncPrecision, res.AsyncRecall,
		res.PQPrecision, res.PQRecall)
	if res.OnlineRecall < 0.5 {
		t.Errorf("ConQuest online recall %.3f; should answer enqueue-time queries well", res.OnlineRecall)
	}
	if res.AsyncRecall > 0.1 {
		t.Errorf("ConQuest async recall %.3f; snapshots should have aged out", res.AsyncRecall)
	}
	if res.PQRecall < 0.4 {
		t.Errorf("PrintQueue async recall %.3f; should answer after the fact", res.PQRecall)
	}
}
