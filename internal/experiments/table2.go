package experiments

import (
	"printqueue/internal/groundtruth"
	"printqueue/internal/trace"
)

// Table2Row is one trace row of Table 2: average precision/recall of
// PrintQueue (asynchronous queries), HashPipe, and FlowRadar.
type Table2Row struct {
	Trace                 trace.Workload
	PQPrecision, PQRecall float64
	HPPrecision, HPRecall float64
	FRPrecision, FRRecall float64
	Victims               int
}

// Table2 reproduces "Average precision/recall of PrintQueue, HashPipe, and
// FlowRadar under different traces". Baselines are reset at PrintQueue's
// set period and prorated over the query interval, and PrintQueue answers
// with asynchronous queries only — both exactly as the paper's fair
// comparison specifies (§7.1).
func Table2(packets int, seed uint64, victims int) ([]Table2Row, error) {
	var rows []Table2Row
	for _, w := range []trace.Workload{trace.UW, trace.WS, trace.DM} {
		preset := Preset(w, packets, seed)
		pkts, err := trace.Generate(preset.Gen)
		if err != nil {
			return nil, err
		}
		run, err := Execute(pkts, preset.RunConfigFor(true))
		if err != nil {
			return nil, err
		}
		// Victims across all congested depths, as in the paper's averages.
		vs := run.GT.SampleVictims(groundtruth.DepthBucket(1000, 0), victims)
		pqP, pqR, err := evalVictimsPQ(run, vs)
		if err != nil {
			return nil, err
		}
		hpP, hpR := evalVictimsFn(run, vs, run.HP.Query)
		frP, frR := evalVictimsFn(run, vs, run.FR.Query)
		rows = append(rows, Table2Row{
			Trace:       w,
			PQPrecision: pqP.Mean(), PQRecall: pqR.Mean(),
			HPPrecision: hpP.Mean(), HPRecall: hpR.Mean(),
			FRPrecision: frP.Mean(), FRRecall: frR.Mean(),
			Victims: pqP.N(),
		})
	}
	return rows, nil
}
