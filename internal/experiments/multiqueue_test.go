package experiments

import (
	"testing"

	"printqueue/internal/core/qmonitor"
	"printqueue/internal/flow"
	"printqueue/internal/pktrec"
	"printqueue/internal/switchsim"
	"printqueue/internal/trace"
)

// TestPerQueueMonitors exercises §5's "multiple queues are tracked
// individually": under strict priority with two classes, each class's
// queue monitor implicates only that class's flows.
func TestPerQueueMonitors(t *testing.T) {
	hi := flow.Key{SrcIP: [4]byte{10, 3, 0, 1}, DstIP: [4]byte{10, 3, 1, 1}, SrcPort: 1, DstPort: 80, Proto: flow.ProtoUDP}
	lo := flow.Key{SrcIP: [4]byte{10, 3, 0, 2}, DstIP: [4]byte{10, 3, 1, 1}, SrcPort: 2, DstPort: 80, Proto: flow.ProtoTCP}

	// Two saturating flows, one per class, on a 10 Gbps port.
	pkts, err := trace.Schedule(0, 1,
		trace.PacedFlow{Flow: hi, RateBps: 6e9, PacketBytes: 1500, EndNs: 4e6, Queue: 0},
		trace.PacedFlow{Flow: lo, RateBps: 6e9, PacketBytes: 1500, EndNs: 4e6, Queue: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	run, err := Execute(pkts, RunConfig{
		LinkBps:       10e9,
		BufferCells:   200000,
		TW:            Preset(trace.WS, 0, 1).TW,
		QM:            qmonitor.Config{MaxDepthCells: 262144, GranuleCells: 19},
		QueuesPerPort: 2,
		Scheduler:     switchsim.StrictPriority,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The low-priority class is starved: its queue grows while the
	// high-priority class drains promptly.
	var peakLo uint32
	for i := 0; i < run.GT.Len(); i++ {
		r := run.GT.Record(i)
		if r.Flow == lo && r.EnqQdepth > peakLo {
			peakLo = r.EnqQdepth
		}
	}
	if peakLo < 1000 {
		t.Fatalf("low-priority queue never built up (peak %d cells)", peakLo)
	}
	// Query each queue's original culprits mid-run.
	mid := pkts[len(pkts)/2].Arrival
	for q, want := range map[int]flow.Key{0: hi, 1: lo} {
		culprits, err := run.Sys.QueryOriginal(run.Port, q, mid)
		if err != nil {
			t.Fatal(err)
		}
		counts := qmonitor.FlowCounts(culprits)
		if counts[want] == 0 {
			t.Fatalf("queue %d monitor missed its own flow %v: %v", q, want, counts)
		}
		other := hi
		if want == hi {
			other = lo
		}
		if counts[other] != 0 {
			t.Fatalf("queue %d monitor leaked flow %v: %v", q, other, counts)
		}
	}
}

// TestExecuteValidation covers the runner's error paths.
func TestExecuteValidation(t *testing.T) {
	if _, err := Execute(nil, RunConfig{}); err == nil {
		t.Fatal("empty schedule accepted")
	}
	pkts := []*pktrec.Packet{{Flow: flow.Key{SrcPort: 1, Proto: flow.ProtoTCP}, Bytes: 100, Arrival: 1}}
	if _, err := Execute(pkts, RunConfig{}); err == nil {
		t.Fatal("zero link rate accepted")
	}
	cfg := Preset(trace.UW, 10, 1).RunConfigFor(false)
	cfg.TW.T = 0
	if _, err := Execute(pkts, cfg); err == nil {
		t.Fatal("bad TW config accepted")
	}
}
