package experiments

import (
	"testing"

	"printqueue/internal/switchsim"
)

// TestSchedulerAgnosticism validates the §2/§4 claim: direct-culprit
// accuracy is comparable under FIFO, strict priority, DRR, and PIFO.
func TestSchedulerAgnosticism(t *testing.T) {
	rows, err := SchedulerAgnosticism(100000, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	seen := map[switchsim.Scheduler]bool{}
	for _, r := range rows {
		t.Logf("%-16v precision=%.3f recall=%.3f victims=%d maxDepth=%d",
			r.Scheduler, r.Precision, r.Recall, r.Victims, r.MaxDepth)
		seen[r.Scheduler] = true
		if r.Victims == 0 {
			t.Fatalf("%v: no victims", r.Scheduler)
		}
		// The mechanism must stay functional under every discipline.
		// Absolute accuracy legitimately varies: priority disciplines
		// starve low-priority victims into much longer queuing intervals
		// than FIFO produces, which shifts the victim population toward
		// harder (older, deeper-window) queries.
		if r.Precision < 0.5 || r.Recall < 0.3 {
			t.Errorf("%v accuracy %.3f/%.3f implausibly low", r.Scheduler, r.Precision, r.Recall)
		}
	}
	for _, s := range []switchsim.Scheduler{switchsim.FIFO, switchsim.StrictPriority, switchsim.DRR, switchsim.PIFO} {
		if !seen[s] {
			t.Errorf("missing scheduler %v", s)
		}
	}
}
