package experiments

import (
	"fmt"
	"path/filepath"
	"sort"

	"printqueue/internal/core/control"
	"printqueue/internal/core/histstore"
	"printqueue/internal/core/qmonitor"
	"printqueue/internal/core/timewindow"
	"printqueue/internal/fleet"
	"printqueue/internal/flow"
	"printqueue/internal/groundtruth"
	"printqueue/internal/pktrec"
	"printqueue/internal/switchsim"
)

// ChainRunConfig wires one multi-hop path experiment: a chain of
// monitored switches, each carrying its own PrintQueue System and
// ground-truth collector, so cross-switch attribution can be scored
// against what each hop actually queued.
type ChainRunConfig struct {
	// Hops is the path length (>= 1).
	Hops int
	// LinkBps is the per-hop line rate; one entry per hop, or a single
	// entry replicated (an underprovisioned middle hop stages the paper's
	// cross-switch congestion scenario).
	LinkBps []uint64
	// BufferCells caps each hop's queue.
	BufferCells int
	// LinkDelayNs is the inter-hop propagation delay.
	LinkDelayNs uint64
	TW          timewindow.Config
	QM          qmonitor.Config
	// MaxCheckpoints bounds each hop's hot checkpoint history (0 =
	// unlimited).
	MaxCheckpoints int
	// HistDir, when set, gives every hop a durable checkpoint history
	// under HistDir/hop<k> — the segment log that checkpoint streaming
	// replays from, so fleet mirrors can warm up against the chain.
	HistDir string
}

// ChainRun is an executed multi-hop experiment: per hop, the monitored
// switch, its PrintQueue System, and its ground truth.
type ChainRun struct {
	Chain *switchsim.Chain
	Sys   []*control.System
	GT    []*groundtruth.Collector
	Port  int
}

// Close releases every hop's System.
func (r *ChainRun) Close() {
	for _, s := range r.Sys {
		s.Close()
	}
}

// ExecuteChain replays a packet schedule down a monitored chain, with
// optional hop-local cross-traffic (inject[k] enters the path at hop k),
// then finalizes every hop's System. All packets must target one port.
func ExecuteChain(pkts []pktrec.Packet, inject [][]pktrec.Packet, cfg ChainRunConfig) (*ChainRun, error) {
	if len(pkts) == 0 {
		return nil, fmt.Errorf("experiments: empty packet schedule")
	}
	if cfg.Hops < 1 {
		return nil, fmt.Errorf("experiments: chain needs at least one hop")
	}
	if len(cfg.LinkBps) != 1 && len(cfg.LinkBps) != cfg.Hops {
		return nil, fmt.Errorf("experiments: %d link rates for %d hops", len(cfg.LinkBps), cfg.Hops)
	}
	port := pkts[0].Port
	perHop := make([]switchsim.PortConfig, cfg.Hops)
	for k := range perHop {
		bps := cfg.LinkBps[0]
		if len(cfg.LinkBps) == cfg.Hops {
			bps = cfg.LinkBps[k]
		}
		perHop[k] = switchsim.PortConfig{LinkBps: bps, BufferCells: cfg.BufferCells}
	}
	chain, err := switchsim.NewChain(switchsim.ChainConfig{
		Hops:        cfg.Hops,
		Ports:       port + 1,
		PerHop:      perHop,
		LinkDelayNs: cfg.LinkDelayNs,
	})
	if err != nil {
		return nil, err
	}
	run := &ChainRun{Chain: chain, Port: port}
	for k := 0; k < cfg.Hops; k++ {
		hopCfg := control.Config{
			TW:             cfg.TW,
			QM:             cfg.QM,
			Ports:          []int{port},
			MaxCheckpoints: cfg.MaxCheckpoints,
		}
		if cfg.HistDir != "" {
			hopCfg.History = &histstore.Options{Dir: filepath.Join(cfg.HistDir, fmt.Sprintf("hop%d", k))}
		}
		sys, err := control.New(hopCfg)
		if err != nil {
			run.Close()
			return nil, err
		}
		gt := groundtruth.NewCollector()
		p := chain.Switch(k).Port(port)
		p.AddEgressHook(gt)
		p.AddEgressHook(switchsim.EgressFunc(sys.OnDequeue))
		run.Sys = append(run.Sys, sys)
		run.GT = append(run.GT, gt)
	}
	chain.Run(pkts, inject)
	for k := 0; k < cfg.Hops; k++ {
		run.Sys[k].Finalize(chain.Switch(k).Port(port).Now() + 1)
	}
	return run, nil
}

// AttributionScore grades one hop of a path diagnosis against that hop's
// ground truth.
type AttributionScore struct {
	Hop int
	// Precision: fraction of reported culprits that are in the hop's
	// ground-truth top-k; Recall: fraction of the ground-truth top-k the
	// report recovered.
	Precision, Recall float64
	// Reported and Truth are the compared set sizes.
	Reported, Truth int
	// Err carries the hop's query failure, if any (scores are zero).
	Err error
}

// ScoreChainAttribution compares a fleet path diagnosis against the
// chain's per-hop ground truth over the diagnosis interval: hop i's
// reported culprits versus the flows ground truth ranks heaviest through
// that hop. Failed hops score zero with their error attached.
func ScoreChainAttribution(run *ChainRun, d *fleet.PathDiagnosis, k int) []AttributionScore {
	out := make([]AttributionScore, len(d.Hops))
	for i := range d.Hops {
		hd := &d.Hops[i]
		out[i] = AttributionScore{Hop: hd.Hop, Err: hd.Err}
		if hd.Err != nil || i >= len(run.GT) {
			continue
		}
		truth := run.GT[i].CountsInInterval(d.Start, d.End).TopK(k)
		truthSet := make(map[flow.Key]bool, len(truth))
		for _, e := range truth {
			truthSet[e.Flow] = true
		}
		hits := 0
		for _, cu := range hd.Culprits {
			if truthSet[cu.Flow] {
				hits++
			}
		}
		out[i].Reported = len(hd.Culprits)
		out[i].Truth = len(truth)
		if out[i].Reported > 0 {
			out[i].Precision = float64(hits) / float64(out[i].Reported)
		}
		if out[i].Truth > 0 {
			out[i].Recall = float64(hits) / float64(out[i].Truth)
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Hop < out[b].Hop })
	return out
}
