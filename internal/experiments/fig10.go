package experiments

import (
	"printqueue/internal/groundtruth"
	"printqueue/internal/trace"
)

// Fig10Band is one queue-depth band of Figure 10: the per-victim precision
// and recall values (sorted ascending, i.e. the CDF x-samples) for
// PrintQueue, HashPipe, and FlowRadar under the UW trace.
type Fig10Band struct {
	Band          string
	PQPrec, PQRec []float64
	HPPrec, HPRec []float64
	FRPrec, FRRec []float64
}

// Fig10Bands are the figure's three occupancy bands, in cells.
var Fig10Bands = []struct {
	Label  string
	Lo, Hi int
}{
	{"1k-5k", 1000, 5000},
	{"5k-15k", 5000, 15000},
	{">15k", 15000, 0},
}

// Fig10 reproduces "PrintQueue versus HashPipe and FlowRadar with different
// queue-depth-based query intervals under UW traces": per-victim accuracy
// CDFs in three occupancy bands, at the paper's resource parity
// (PrintQueue 4096x4, baselines 4096x5).
func Fig10(packets int, seed uint64, victimsPerBand int) ([]Fig10Band, error) {
	preset := Preset(trace.UW, packets, seed)
	pkts, err := trace.Generate(preset.Gen)
	if err != nil {
		return nil, err
	}
	run, err := Execute(pkts, preset.RunConfigFor(true))
	if err != nil {
		return nil, err
	}
	var out []Fig10Band
	for _, b := range Fig10Bands {
		victims := run.GT.SampleVictims(groundtruth.DepthBucket(b.Lo, b.Hi), victimsPerBand)
		pqP, pqR, err := evalVictimsPQ(run, victims)
		if err != nil {
			return nil, err
		}
		hpP, hpR := evalVictimsFn(run, victims, run.HP.Query)
		frP, frR := evalVictimsFn(run, victims, run.FR.Query)
		out = append(out, Fig10Band{
			Band:   b.Label,
			PQPrec: sortedSamples(&pqP), PQRec: sortedSamples(&pqR),
			HPPrec: sortedSamples(&hpP), HPRec: sortedSamples(&hpR),
			FRPrec: sortedSamples(&frP), FRRec: sortedSamples(&frR),
		})
	}
	return out, nil
}
