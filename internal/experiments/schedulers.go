package experiments

import (
	"printqueue/internal/groundtruth"
	"printqueue/internal/pktrec"
	"printqueue/internal/switchsim"
	"printqueue/internal/trace"
)

// SchedulerRow is one scheduling discipline's direct-culprit accuracy.
type SchedulerRow struct {
	Scheduler switchsim.Scheduler
	Precision float64
	Recall    float64
	Victims   int
	MaxDepth  int
}

// SchedulerAgnosticism is an extension experiment the paper motivates but
// does not run: §2 defines direct culprits "independent of the packet
// scheduling algorithm" and §4 claims the time windows "are compatible
// with non-FIFO queuing policies". Here the same two-class workload runs
// under FIFO, strict priority, DRR, and PIFO, and the direct-culprit
// accuracy is measured for each — it should be comparable across all four,
// because the time windows only consume dequeue timestamps.
func SchedulerAgnosticism(packets int, seed uint64, victims int) ([]SchedulerRow, error) {
	preset := Preset(trace.WS, packets, seed)
	pkts, err := trace.Generate(preset.Gen)
	if err != nil {
		return nil, err
	}
	// Assign half the flows to the low-priority class so non-FIFO
	// disciplines actually reorder.
	for _, p := range pkts {
		if p.Flow.SrcIP[3]%2 == 0 {
			p.Queue = 1
		}
	}
	var rows []SchedulerRow
	for _, sched := range []switchsim.Scheduler{
		switchsim.FIFO, switchsim.StrictPriority, switchsim.DRR, switchsim.PIFO,
	} {
		// Re-materialize the schedule (Execute mutates packet metadata).
		run, err := Execute(clonePackets(pkts), RunConfig{
			LinkBps:       preset.LinkBps,
			BufferCells:   40000,
			TW:            preset.TW,
			QM:            preset.QM,
			QueuesPerPort: 2,
			Scheduler:     sched,
		})
		if err != nil {
			return nil, err
		}
		vs := run.GT.SampleVictims(groundtruth.DepthBucket(1000, 0), victims)
		p, r, err := evalVictimsPQ(run, vs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SchedulerRow{
			Scheduler: sched,
			Precision: p.Mean(),
			Recall:    r.Mean(),
			Victims:   p.N(),
			MaxDepth:  run.GT.MaxDepth(),
		})
	}
	return rows, nil
}

// clonePackets deep-copies a schedule so each run gets fresh metadata.
func clonePackets(pkts []*pktrec.Packet) []*pktrec.Packet {
	out := make([]*pktrec.Packet, len(pkts))
	for i, p := range pkts {
		cp := *p
		out[i] = &cp
	}
	return out
}
