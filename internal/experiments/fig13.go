package experiments

import (
	"fmt"

	"printqueue/internal/groundtruth"
	"printqueue/internal/overhead"
	"printqueue/internal/trace"
)

// Fig13Config is one alpha_k_T point of Figure 13.
type Fig13Config struct {
	Alpha uint
	K     uint
	T     int
}

func (c Fig13Config) Label() string { return fmt.Sprintf("%d_%d_%d", c.Alpha, c.K, c.T) }

// Fig13Configs are the configurations the paper plots.
var Fig13Configs = []Fig13Config{
	{1, 12, 4},
	{2, 12, 4},
	{3, 12, 4},
	{1, 12, 5},
	{2, 12, 5},
	{2, 11, 4},
}

// Fig13Row is one point: the control-plane storage overhead of periodic
// polling versus the measured accuracy, plus feasibility under the modelled
// data-exchange limit.
type Fig13Row struct {
	Config    Fig13Config
	MBps      float64
	Precision float64
	Recall    float64
	Feasible  bool
}

// Fig13 reproduces "Storage versus accuracy with alpha, k, T under UW
// traces": for each configuration, the polling bandwidth (snapshot bytes
// per set period) and the mean asynchronous-query accuracy over sampled
// victims.
func Fig13(packets int, seed uint64, victims int) ([]Fig13Row, error) {
	var rows []Fig13Row
	for _, c := range Fig13Configs {
		preset := Preset(trace.UW, packets, seed)
		preset.TW.Alpha = c.Alpha
		preset.TW.K = c.K
		preset.TW.T = c.T
		pkts, err := trace.Generate(preset.Gen)
		if err != nil {
			return nil, err
		}
		run, err := Execute(pkts, preset.RunConfigFor(false))
		if err != nil {
			return nil, err
		}
		vs := run.GT.SampleVictims(groundtruth.DepthBucket(1000, 0), victims)
		p, r, err := evalVictimsPQ(run, vs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig13Row{
			Config:    c,
			MBps:      overhead.ControlPlaneMBps(preset.TW, preset.QM, 1),
			Precision: p.Mean(),
			Recall:    r.Mean(),
			Feasible:  overhead.Feasible(preset.TW, preset.QM, 1),
		})
	}
	return rows, nil
}
