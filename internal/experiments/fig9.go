package experiments

import (
	"sort"

	"printqueue/internal/flow"
	"printqueue/internal/groundtruth"
	"printqueue/internal/metrics"
	"printqueue/internal/trace"
)

// Fig9Row is one queue-depth bucket of Figure 9: precision and recall of
// asynchronous (AQ) and data-plane (DQ) queries for victims in the bucket.
type Fig9Row struct {
	Bucket                string
	AQPrecision, AQRecall float64
	DQPrecision, DQRecall float64
	AQVictims, DQVictims  int
}

// Fig9Result is the figure for one workload.
type Fig9Result struct {
	Workload trace.Workload
	Rows     []Fig9Row
}

// Fig9 reproduces "Precision and recall versus queue depth" for one
// workload: it replays the trace once with a data-plane trigger at 1000
// cells, evaluates the triggered DQ results, and separately samples victims
// per depth bucket for asynchronous queries of their direct culprits.
func Fig9(w trace.Workload, packets int, seed uint64, victimsPerBucket int) (*Fig9Result, error) {
	preset := Preset(w, packets, seed)
	pkts, err := trace.Generate(preset.Gen)
	if err != nil {
		return nil, err
	}
	cfg := preset.RunConfigFor(false)
	cfg.DPTriggerDepth = 1000
	// A finite control-plane read rate spaces data-plane queries out, as
	// the paper's PCIe-limited front end does.
	cfg.ReadRateEntriesPerSec = 100e6
	run, err := Execute(pkts, cfg)
	if err != nil {
		return nil, err
	}

	res := &Fig9Result{Workload: w}
	dqs := run.Sys.DPQueries(run.Port)
	for _, b := range DepthBuckets {
		row := Fig9Row{Bucket: b.Label}

		// Asynchronous queries: sampled victims, direct-culprit interval.
		victims := run.GT.SampleVictims(groundtruth.DepthBucket(b.Lo, b.Hi), victimsPerBucket)
		var ap, ar metrics.Sample
		for _, vi := range victims {
			v := run.GT.Record(vi)
			est, err := run.Sys.QueryInterval(run.Port, v.EnqTimestamp, v.DeqTimestamp())
			if err != nil {
				return nil, err
			}
			p, r := metrics.PrecisionRecall(est, run.GT.DirectTruth(vi))
			ap.Add(p)
			ar.Add(r)
		}
		row.AQPrecision, row.AQRecall, row.AQVictims = ap.Mean(), ar.Mean(), ap.N()

		// Data-plane queries: triggered during the run; classify by the
		// triggering packet's enqueue-time depth.
		var dp, dr metrics.Sample
		for _, dq := range dqs {
			if dq.EnqQdepth < b.Lo || (b.Hi != 0 && dq.EnqQdepth >= b.Hi) {
				continue
			}
			if dp.N() >= victimsPerBucket && victimsPerBucket > 0 {
				break
			}
			vi, ok := run.GT.FindByDeq(dq.DeqTS, dq.Victim)
			if !ok {
				continue
			}
			p, r := metrics.PrecisionRecall(dq.Result, run.GT.DirectTruth(vi))
			dp.Add(p)
			dr.Add(r)
		}
		row.DQPrecision, row.DQRecall, row.DQVictims = dp.Mean(), dr.Mean(), dp.N()
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// evalVictimsPQ runs asynchronous direct-culprit queries for the given
// victims and returns per-victim precision/recall samples.
func evalVictimsPQ(run *Run, victims []int) (p, r metrics.Sample, err error) {
	for _, vi := range victims {
		v := run.GT.Record(vi)
		est, qerr := run.Sys.QueryInterval(run.Port, v.EnqTimestamp, v.DeqTimestamp())
		if qerr != nil {
			return p, r, qerr
		}
		pp, rr := metrics.PrecisionRecall(est, run.GT.DirectTruth(vi))
		p.Add(pp)
		r.Add(rr)
	}
	return p, r, nil
}

// evalVictimsFn evaluates an arbitrary interval estimator (HashPipe,
// FlowRadar, ablations) against the same victims.
func evalVictimsFn(run *Run, victims []int, query func(start, end uint64) flow.Counts) (p, r metrics.Sample) {
	for _, vi := range victims {
		v := run.GT.Record(vi)
		est := query(v.EnqTimestamp, v.DeqTimestamp())
		pp, rr := metrics.PrecisionRecall(est, run.GT.DirectTruth(vi))
		p.Add(pp)
		r.Add(rr)
	}
	return p, r
}

// sortedSamples returns the sample's values ascending (CDF x-values).
func sortedSamples(s *metrics.Sample) []float64 {
	vals := append([]float64(nil), s.Values()...)
	sort.Float64s(vals)
	return vals
}
