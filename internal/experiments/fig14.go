package experiments

import (
	"printqueue/internal/baseline/linearstore"
	"printqueue/internal/core/timewindow"
	"printqueue/internal/overhead"
)

// Fig14aRow is one point of Figure 14(a): the ratio of linear-storage bytes
// (NetSight/BurstRadar class: one record per packet) to PrintQueue's
// exponential-storage bytes, for a monitored duration.
type Fig14aRow struct {
	Alpha      uint
	DurationNs uint64
	Ratio      float64
}

// Fig14a sweeps durations for alpha in {1, 2, 3} with m0=6, k=12 and a
// UW-like packet rate (12.5 Mpps at 10 Gbps line rate, 100 B packets).
// The paper's x-axis runs 2^18..2^22 ns; we extend to 2^34 (~17 s) to show
// the three-orders-of-magnitude separation the paper reports.
func Fig14a() []Fig14aRow {
	const pps = 12.5e6
	var rows []Fig14aRow
	for _, alpha := range []uint{1, 2, 3} {
		cfg := timewindow.Config{M0: 6, K: 12, Alpha: alpha, T: 8, MinPktTxDelayNs: 80}
		for e := 18; e <= 34; e += 2 {
			d := uint64(1) << e
			rows = append(rows, Fig14aRow{
				Alpha:      alpha,
				DurationNs: d,
				Ratio:      linearstore.Ratio(cfg, d, pps, overhead.TWCellBytes),
			})
		}
	}
	return rows
}

// Fig14bRow is one bar of Figure 14(b): data-plane SRAM utilisation of the
// time windows for a (k, T) configuration on a single port.
type Fig14bRow struct {
	K           uint
	T           int
	SRAMBytes   int
	Utilization float64 // percent of the modelled SRAM budget
}

// Fig14bConfigs are the paper's k_T bars: 9_5 .. 12_5 and 12_4 .. 12_2.
var Fig14bConfigs = []struct {
	K uint
	T int
}{
	{9, 5}, {10, 5}, {11, 5}, {12, 5}, {12, 4}, {12, 3}, {12, 2},
}

// Fig14b computes the SRAM usage rows. Alpha does not affect resource
// consumption (§7.1), so it is fixed at 1.
func Fig14b() []Fig14bRow {
	var rows []Fig14bRow
	for _, c := range Fig14bConfigs {
		cfg := timewindow.Config{M0: 6, K: c.K, Alpha: 1, T: c.T, MinPktTxDelayNs: 80}
		bytes := overhead.TimeWindowSRAMBytes(cfg, 1)
		rows = append(rows, Fig14bRow{
			K:           c.K,
			T:           c.T,
			SRAMBytes:   bytes,
			Utilization: overhead.SRAMUtilization(bytes),
		})
	}
	return rows
}
