package histstore

import (
	"encoding/binary"
	"fmt"
	"math"

	"printqueue/internal/core/qmonitor"
	"printqueue/internal/core/timewindow"
	"printqueue/internal/flow"
)

// This file implements the compact binary checkpoint codec: a lossless,
// self-describing encoding of one frozen register read (time windows + queue
// monitors). Two structural facts make the encoding small:
//
//   - cell timestamps are near-monotonic: within one window, the cycle IDs
//     of consecutive valid cells differ by 0 or ±1 (the ring buffer is
//     written in time order), so cycle IDs compress to zigzag varint deltas
//     against the previous cell, almost always one byte;
//   - consecutive checkpoints — and the cells within one — share most of
//     their flows, so flow keys are interned into a per-record dictionary
//     and cells refer to them by small varint index.
//
// Invalid cells are run-length skipped, valid runs are batched, and the
// queue-monitor staircase stores sequence numbers as deltas in level order.
// The result is typically 4-20x smaller than the resident register copy
// (see Record.MemBytes) while round-tripping bit-exactly: a decoded record
// filters, indexes, and accumulates identically to the original.

// codecVersion is the record payload format version.
const codecVersion = 1

// Record is one checkpoint as the store sees it: the port it was frozen on,
// its coverage interval (PrevFreeze, FreezeTime], and the frozen snapshots.
// It is the neutral form exchanged with the control plane, which owns the
// richer Checkpoint type.
type Record struct {
	Port       int
	FreezeTime uint64
	PrevFreeze uint64
	Special    bool

	TW *timewindow.Snapshot
	QM []*qmonitor.Snapshot
}

// MemBytes estimates the in-memory footprint of the record's snapshots —
// the baseline the encoded size is compared against.
func (r *Record) MemBytes() int64 {
	n := int64(64) // record header + slice
	if r.TW != nil {
		n += r.TW.MemBytes()
	}
	for _, qm := range r.QM {
		if qm != nil {
			n += qm.MemBytes()
		}
	}
	return n
}

const recFlagSpecial = 1 << 0

// appendUvarint / appendZigzag are the primitive writers.
func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func appendZigzag(b []byte, v int64) []byte { return binary.AppendVarint(b, v) }

// reader is a cursor over an encoded payload with sticky error handling, so
// the decode path stays linear instead of error-checking every varint.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("histstore: truncated uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) zigzag() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("histstore: truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("histstore: truncated byte at offset %d", r.off)
		return 0
	}
	b := r.b[r.off]
	r.off++
	return b
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.fail("histstore: truncated %d-byte field at offset %d", n, r.off)
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

// flowDict interns flow keys during encode, assigning dense ids in
// first-seen order so cell references stay one varint byte for the common
// case of < 128 distinct flows per checkpoint.
type flowDict struct {
	ids   map[flow.Key]uint64
	flows []flow.Key
}

func (d *flowDict) id(k flow.Key) uint64 {
	if id, ok := d.ids[k]; ok {
		return id
	}
	id := uint64(len(d.flows))
	d.ids[k] = id
	d.flows = append(d.flows, k)
	return id
}

// EncodeRecord appends the compact encoding of rec to dst and returns the
// extended slice. The encoding is deterministic: the same record always
// produces the same bytes.
func EncodeRecord(dst []byte, rec *Record) ([]byte, error) {
	if rec.TW == nil {
		return dst, fmt.Errorf("histstore: record without time-window snapshot")
	}
	dst = append(dst, codecVersion)
	var flags byte
	if rec.Special {
		flags |= recFlagSpecial
	}
	dst = append(dst, flags)
	dst = appendUvarint(dst, uint64(rec.Port))
	dst = appendUvarint(dst, rec.FreezeTime)
	dst = appendUvarint(dst, rec.FreezeTime-rec.PrevFreeze)

	cfg := rec.TW.Config()
	dst = appendUvarint(dst, uint64(cfg.M0))
	dst = appendUvarint(dst, uint64(cfg.K))
	dst = appendUvarint(dst, uint64(cfg.Alpha))
	dst = appendUvarint(dst, uint64(cfg.T))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(cfg.MinPktTxDelayNs))

	// Two passes over the windows: intern every flow first so the
	// dictionary precedes the cell streams, then emit the streams.
	dict := &flowDict{ids: make(map[flow.Key]uint64, 64)}
	windows := rec.TW.Windows()
	for _, w := range windows {
		for i := range w {
			if w[i].Valid {
				dict.id(w[i].Flow)
			}
		}
	}
	for _, qm := range rec.QM {
		if qm == nil {
			continue
		}
		for _, e := range qm.Entries() {
			if e.Up.Valid {
				dict.id(e.Up.Flow)
			}
			if e.Down.Valid {
				dict.id(e.Down.Flow)
			}
		}
	}
	dst = appendUvarint(dst, uint64(len(dict.flows)))
	for _, k := range dict.flows {
		dst = k.AppendBinary(dst)
	}

	for _, w := range windows {
		dst = encodeWindow(dst, w, dict)
	}

	dst = appendUvarint(dst, uint64(len(rec.QM)))
	for _, qm := range rec.QM {
		var err error
		dst, err = encodeMonitor(dst, qm, dict)
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// encodeWindow emits one window's cells: the valid-cell count, the base
// cycle, then (skip, run) pairs where each run's cells carry a flow id and a
// zigzag cycle delta against the previous valid cell.
func encodeWindow(dst []byte, w []timewindow.Cell, dict *flowDict) []byte {
	nValid := 0
	for i := range w {
		if w[i].Valid {
			nValid++
		}
	}
	dst = appendUvarint(dst, uint64(nValid))
	if nValid == 0 {
		return dst
	}
	first := 0
	for !w[first].Valid {
		first++
	}
	base := w[first].CycleID
	dst = appendUvarint(dst, base)
	pred := base
	i := 0
	for i < len(w) {
		// Skip the invalid gap.
		skip := 0
		for i < len(w) && !w[i].Valid {
			i++
			skip++
		}
		if i >= len(w) {
			break
		}
		run := 0
		for i+run < len(w) && w[i+run].Valid {
			run++
		}
		dst = appendUvarint(dst, uint64(skip))
		dst = appendUvarint(dst, uint64(run))
		for j := i; j < i+run; j++ {
			dst = appendUvarint(dst, dict.id(w[j].Flow))
			dst = appendZigzag(dst, int64(w[j].CycleID)-int64(pred))
			pred = w[j].CycleID
		}
		i += run
	}
	return dst
}

// encodeMonitor emits one queue monitor snapshot: config, top pointer, and
// the occupied entries as (skip, halves) pairs with sequence numbers
// delta-encoded in level order (the staircase makes them near-monotonic).
func encodeMonitor(dst []byte, qm *qmonitor.Snapshot, dict *flowDict) ([]byte, error) {
	if qm == nil {
		return dst, fmt.Errorf("histstore: record with nil queue-monitor snapshot")
	}
	cfg := qm.Config()
	dst = appendUvarint(dst, uint64(cfg.MaxDepthCells))
	dst = appendUvarint(dst, uint64(cfg.GranuleCells))
	dst = appendUvarint(dst, uint64(qm.Top()))
	entries := qm.Entries()
	nOcc := 0
	for i := range entries {
		if entries[i].Up.Valid || entries[i].Down.Valid {
			nOcc++
		}
	}
	dst = appendUvarint(dst, uint64(nOcc))
	var predSeq uint64
	skip := 0
	for i := range entries {
		e := entries[i]
		if !e.Up.Valid && !e.Down.Valid {
			skip++
			continue
		}
		dst = appendUvarint(dst, uint64(skip))
		skip = 0
		var halves byte
		if e.Up.Valid {
			halves |= 1
		}
		if e.Down.Valid {
			halves |= 2
		}
		dst = append(dst, halves)
		if e.Up.Valid {
			dst = appendUvarint(dst, dict.id(e.Up.Flow))
			dst = appendZigzag(dst, int64(e.Up.Seq)-int64(predSeq))
			predSeq = e.Up.Seq
		}
		if e.Down.Valid {
			dst = appendUvarint(dst, dict.id(e.Down.Flow))
			dst = appendZigzag(dst, int64(e.Down.Seq)-int64(predSeq))
			predSeq = e.Down.Seq
		}
	}
	return dst, nil
}

// DecodeRecord decodes a payload produced by EncodeRecord. The returned
// record owns freshly allocated snapshots; the input buffer may be reused.
func DecodeRecord(b []byte) (*Record, error) {
	r := &reader{b: b}
	if v := r.byte(); r.err == nil && v != codecVersion {
		return nil, fmt.Errorf("histstore: unknown record version %d", v)
	}
	flags := r.byte()
	rec := &Record{Special: flags&recFlagSpecial != 0}
	rec.Port = int(r.uvarint())
	rec.FreezeTime = r.uvarint()
	rec.PrevFreeze = rec.FreezeTime - r.uvarint()

	var cfg timewindow.Config
	cfg.M0 = uint(r.uvarint())
	cfg.K = uint(r.uvarint())
	cfg.Alpha = uint(r.uvarint())
	cfg.T = int(r.uvarint())
	if raw := r.bytes(8); raw != nil {
		cfg.MinPktTxDelayNs = math.Float64frombits(binary.LittleEndian.Uint64(raw))
	}
	if r.err != nil {
		return nil, r.err
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("histstore: bad window config in record: %w", err)
	}

	nFlows := r.uvarint()
	if r.err == nil && nFlows > uint64(len(b)/flow.KeyWireSize+1) {
		return nil, fmt.Errorf("histstore: flow dictionary of %d entries exceeds payload", nFlows)
	}
	flows := make([]flow.Key, nFlows)
	for i := range flows {
		raw := r.bytes(flow.KeyWireSize)
		if r.err != nil {
			return nil, r.err
		}
		k, _, err := flow.DecodeKey(raw)
		if err != nil {
			return nil, err
		}
		flows[i] = k
	}

	cells := cfg.Cells()
	flat := make([]timewindow.Cell, cfg.T*cells)
	windows := make([][]timewindow.Cell, cfg.T)
	for i := range windows {
		w := flat[i*cells : (i+1)*cells : (i+1)*cells]
		if err := decodeWindow(r, w, flows); err != nil {
			return nil, err
		}
		windows[i] = w
	}
	tw, err := timewindow.NewSnapshot(cfg, windows)
	if err != nil {
		return nil, err
	}
	rec.TW = tw

	nQueues := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if nQueues > uint64(len(b)) {
		return nil, fmt.Errorf("histstore: %d queue monitors exceeds payload", nQueues)
	}
	rec.QM = make([]*qmonitor.Snapshot, nQueues)
	for q := range rec.QM {
		qm, err := decodeMonitor(r, flows)
		if err != nil {
			return nil, err
		}
		rec.QM[q] = qm
	}
	if r.err != nil {
		return nil, r.err
	}
	return rec, nil
}

func decodeWindow(r *reader, w []timewindow.Cell, flows []flow.Key) error {
	nValid := r.uvarint()
	if r.err != nil {
		return r.err
	}
	if nValid == 0 {
		return nil
	}
	if nValid > uint64(len(w)) {
		return fmt.Errorf("histstore: window claims %d valid cells of %d", nValid, len(w))
	}
	pred := r.uvarint()
	i := 0
	var decoded uint64
	for decoded < nValid {
		skip := r.uvarint()
		run := r.uvarint()
		if r.err != nil {
			return r.err
		}
		if skip > uint64(len(w)-i) || run == 0 || run > uint64(len(w)-i)-skip || decoded+run > nValid {
			return fmt.Errorf("histstore: window run (skip %d, run %d) overflows at cell %d", skip, run, i)
		}
		i += int(skip)
		for j := 0; j < int(run); j++ {
			id := r.uvarint()
			delta := r.zigzag()
			if r.err != nil {
				return r.err
			}
			if id >= uint64(len(flows)) {
				return fmt.Errorf("histstore: cell flow id %d out of dictionary (%d flows)", id, len(flows))
			}
			cycle := uint64(int64(pred) + delta)
			w[i] = timewindow.Cell{Flow: flows[id], CycleID: cycle, Valid: true}
			pred = cycle
			i++
		}
		decoded += run
	}
	return nil
}

func decodeMonitor(r *reader, flows []flow.Key) (*qmonitor.Snapshot, error) {
	var cfg qmonitor.Config
	cfg.MaxDepthCells = int(r.uvarint())
	cfg.GranuleCells = int(r.uvarint())
	top := int(r.uvarint())
	nOcc := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("histstore: bad monitor config in record: %w", err)
	}
	entries := make([]qmonitor.Entry, cfg.Entries())
	if nOcc > uint64(len(entries)) {
		return nil, fmt.Errorf("histstore: monitor claims %d occupied of %d entries", nOcc, len(entries))
	}
	i := 0
	var predSeq uint64
	for n := uint64(0); n < nOcc; n++ {
		skip := r.uvarint()
		halves := r.byte()
		if r.err != nil {
			return nil, r.err
		}
		if skip > uint64(len(entries)-i-1) || halves == 0 || halves > 3 {
			return nil, fmt.Errorf("histstore: monitor entry (skip %d, halves %#x) overflows at level %d", skip, halves, i)
		}
		i += int(skip)
		var e qmonitor.Entry
		if halves&1 != 0 {
			h, err := decodeHalf(r, flows, &predSeq)
			if err != nil {
				return nil, err
			}
			e.Up = h
		}
		if halves&2 != 0 {
			h, err := decodeHalf(r, flows, &predSeq)
			if err != nil {
				return nil, err
			}
			e.Down = h
		}
		entries[i] = e
		i++
	}
	return qmonitor.NewSnapshot(cfg, entries, top)
}

func decodeHalf(r *reader, flows []flow.Key, predSeq *uint64) (qmonitor.Half, error) {
	id := r.uvarint()
	delta := r.zigzag()
	if r.err != nil {
		return qmonitor.Half{}, r.err
	}
	if id >= uint64(len(flows)) {
		return qmonitor.Half{}, fmt.Errorf("histstore: monitor flow id %d out of dictionary (%d flows)", id, len(flows))
	}
	seq := uint64(int64(*predSeq) + delta)
	*predSeq = seq
	return qmonitor.Half{Flow: flows[id], Seq: seq, Valid: true}, nil
}
