package histstore

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// crashedStore writes n records into a single unsealed segment and then
// simulates a crash mid-write by cutting the file at cut bytes (no seal, no
// trailer). It returns the directory, the encoded frame boundaries
// (offset of each record's frame start, plus the final end), and the final
// freeze time.
func crashedStore(t *testing.T, n int) (dir string, bounds []int64, end uint64) {
	t.Helper()
	dir = t.TempDir()
	st := openTestStore(t, dir, Options{})
	prev := uint64(1000)
	for i := 0; i < n; i++ {
		bounds = append(bounds, st.activeSeg.recordEnd)
		freeze := prev + 100
		if err := st.Append(smallRecord(t, 0, prev, freeze)); err != nil {
			t.Fatal(err)
		}
		prev = freeze
	}
	bounds = append(bounds, st.activeSeg.recordEnd)
	// Crash: release the fd without sealing. The file keeps every frame but
	// has no footer or trailer.
	st.active.Close()
	st.cache.drop()
	return dir, bounds, prev
}

// TestRecoveryUnsealedSegment: a crash that loses only the seal (all frames
// intact) must recover every record with no truncation.
func TestRecoveryUnsealedSegment(t *testing.T) {
	dir, _, end := crashedStore(t, 10)
	st := openTestStore(t, dir, Options{})
	defer st.Close()
	stats := st.Stats()
	if stats.RecoveredRecords != 10 || stats.TruncatedBytes != 0 {
		t.Fatalf("recovered=%d truncated=%d, want 10/0", stats.RecoveredRecords, stats.TruncatedBytes)
	}
	cps, err := st.Covering(0, 1000, end)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 10 {
		t.Fatalf("found %d checkpoints after recovery, want 10", len(cps))
	}
	// The recovered segment is the active one again: appends must continue.
	if err := st.Append(smallRecord(t, 0, end, end+100)); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryTornTail cuts the crashed segment at every kind of position —
// mid-length-prefix, mid-payload, mid-checksum — with a deterministic seed,
// and requires: the torn tail is detected and truncated, every frame before
// the cut survives bit-exact, and the store keeps working.
func TestRecoveryTornTail(t *testing.T) {
	const records = 8
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 12; trial++ {
		dir, bounds, _ := crashedStore(t, records)
		path := segPath(dir, 1)

		// Cut strictly inside record k's frame: everything before k survives,
		// k itself is torn away.
		k := 1 + rng.Intn(records-1)
		lo, hi := bounds[k], bounds[k+1]
		cut := lo + 1 + rng.Int63n(hi-lo-1)
		if err := os.Truncate(path, cut); err != nil {
			t.Fatal(err)
		}

		st := openTestStore(t, dir, Options{})
		stats := st.Stats()
		if stats.RecoveredRecords != k {
			t.Fatalf("trial %d (cut %d in frame %d): recovered %d records, want %d",
				trial, cut, k, stats.RecoveredRecords, k)
		}
		if stats.TruncatedBytes != cut-lo {
			t.Fatalf("trial %d: truncated %d bytes, want %d", trial, stats.TruncatedBytes, cut-lo)
		}
		// The intact prefix answers queries.
		endOK := uint64(1000 + k*100)
		cps, err := st.Covering(0, 1000, endOK)
		if err != nil {
			t.Fatal(err)
		}
		if len(cps) != k {
			t.Fatalf("trial %d: %d checkpoints after torn-tail recovery, want %d", trial, len(cps), k)
		}
		// The file itself was truncated back to the last good frame.
		if fi, err := os.Stat(path); err != nil || fi.Size() != lo {
			t.Fatalf("trial %d: file size %d after recovery, want %d", trial, fi.Size(), lo)
		}
		// New appends land where the tear was removed.
		if err := st.Append(smallRecord(t, 0, endOK, endOK+100)); err != nil {
			t.Fatal(err)
		}
		cps, err = st.Covering(0, endOK, endOK+100)
		if err != nil {
			t.Fatal(err)
		}
		if len(cps) != 1 {
			t.Fatalf("trial %d: append after recovery not visible", trial)
		}
		st.Close()
	}
}

// TestRecoveryCorruptPayload flips a byte inside an early frame: the CRC
// must catch it, and recovery keeps only the frames before the corruption.
func TestRecoveryCorruptPayload(t *testing.T) {
	const records = 6
	dir, bounds, _ := crashedStore(t, records)
	path := segPath(dir, 1)

	// Corrupt a byte in the middle of record 3's frame.
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	pos := (bounds[3] + bounds[4]) / 2
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, pos); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xFF
	if _, err := f.WriteAt(buf, pos); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st := openTestStore(t, dir, Options{})
	defer st.Close()
	stats := st.Stats()
	if stats.RecoveredRecords != 3 {
		t.Fatalf("recovered %d records past a corrupt frame, want 3", stats.RecoveredRecords)
	}
	if stats.TruncatedBytes == 0 {
		t.Fatal("corruption recovery reported zero truncated bytes")
	}
	cps, err := st.Covering(0, 1000, 1300)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 3 {
		t.Fatalf("intact prefix has %d checkpoints, want 3", len(cps))
	}
}

// TestRecoveryMultiSegmentCrash: older full segments exist but the crash
// leaves TWO unsealed segments (e.g. seal of the previous active also never
// hit disk). Recovery must seal the older one in place and resume the newest.
func TestRecoveryMultiSegmentCrash(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, Options{SegmentBytes: 8 << 10})
	end := appendChain(t, st, 0, 40, 1000)
	// Crash without Close.
	st.active.Close()

	// Strip the trailer from the newest *sealed* segment to simulate a seal
	// that never reached disk.
	names, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(names) < 3 {
		t.Fatalf("want >= 3 segments, got %d (%v)", len(names), err)
	}
	victim := names[len(names)-2]
	fi, err := os.Stat(victim)
	if err != nil {
		t.Fatal(err)
	}
	// Remove trailer + a few footer bytes so openSealed rejects it.
	if err := os.Truncate(victim, fi.Size()-segTrailerSize-3); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir, Options{SegmentBytes: 8 << 10})
	defer st2.Close()
	if st2.Stats().RecoveredRecords == 0 {
		t.Fatal("no records recovered from the unsealed segments")
	}
	cps, err := st2.Covering(0, 1000, end)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 40 {
		t.Fatalf("found %d of 40 checkpoints after multi-segment recovery", len(cps))
	}
	// The older recovered segment must now be sealed on disk.
	seq, ok := parseSegSeq(filepath.Base(victim))
	if !ok {
		t.Fatalf("bad segment name %q", victim)
	}
	if _, sealed, err := openSealed(victim, seq); err != nil || !sealed {
		t.Fatalf("victim segment not re-sealed by recovery: sealed=%v err=%v", sealed, err)
	}
}

// TestRecoveryGarbageHeader: a segment whose header is trash recovers to
// zero records (fully truncated) rather than failing the open.
func TestRecoveryGarbageHeader(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(segPath(dir, 1), []byte("this is not a segment at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	st := openTestStore(t, dir, Options{})
	defer st.Close()
	if st.Stats().TruncatedBytes == 0 {
		t.Fatal("garbage segment reported no truncation")
	}
	if err := st.Append(smallRecord(t, 0, 1000, 1100)); err != nil {
		t.Fatal(err)
	}
}
