package histstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// On-disk layout. A history directory holds numbered segment files
// (00000001.seg, 00000002.seg, ...). Each segment is:
//
//	header   8 bytes: "PQHS", format version, 3 reserved zero bytes
//	records  repeated: [uvarint payloadLen][payload][crc32c(payload) LE]
//	footer   (sealed only) record index: uvarint count, then per record
//	         uvarint port, uvarint offsetDelta, uvarint payloadLen,
//	         uvarint freezeTime, uvarint freezeTime-prevFreeze, flags byte
//	trailer  (sealed only) fixed 40 bytes:
//	         minPrev u64 | maxFreeze u64 | count u32 | footerLen u32 |
//	         footerCRC u32 | recordEnd u64(lower 4)+magic? — see below
//
// The trailer lets Open learn a sealed segment's time bounds with one
// 40-byte read; the footer (the per-record index) is only parsed the first
// time a query touches the segment — the "lazy cold-segment index".
//
// The active (last) segment has no footer. On startup it is scanned record
// by record; the first record whose length or checksum fails marks a torn
// tail from a crash mid-write, and the file is truncated back to the last
// intact record.

const (
	segVersion    = 1
	segHeaderSize = 8

	// trailer: minPrev(8) maxFreeze(8) count(4) footerLen(4) footerCRC(4)
	// reserved(4) magic(8)
	segTrailerSize = 40
)

var (
	segHeader       = [segHeaderSize]byte{'P', 'Q', 'H', 'S', segVersion, 0, 0, 0}
	segTrailerMagic = [8]byte{'P', 'Q', 'H', 'T', 'R', 'L', 'R', segVersion}

	crcTable = crc32.MakeTable(crc32.Castagnoli)
)

// indexEntry locates one encoded checkpoint inside a segment.
type indexEntry struct {
	port       int
	freezeTime uint64
	prevFreeze uint64
	offset     int64 // file offset of the record's length varint
	payloadLen uint32
	flags      byte
}

// segment is the in-memory handle for one segment file. For sealed
// segments, index is nil until loadIndex is called.
type segment struct {
	seq       uint64
	path      string
	sealed    bool
	fileSize  int64 // total file size on disk
	recordEnd int64 // end of the record area (== start of footer when sealed)
	count     int
	minPrev   uint64 // min PrevFreeze over records; ^0 when empty
	maxFreeze uint64 // max FreezeTime over records; 0 when empty
	index     []indexEntry
}

func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%08d.seg", seq))
}

func parseSegSeq(name string) (uint64, bool) {
	if !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(name, ".seg"), 10, 64)
	if err != nil || seq == 0 {
		return 0, false
	}
	return seq, true
}

// listSegments returns the segment sequence numbers present in dir,
// ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSegSeq(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// appendFrame writes one framed record (length, payload, checksum) and
// returns the frame's total size. The caller holds the store lock and
// tracks offsets.
func appendFrame(f *os.File, payload []byte) (int, error) {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.Checksum(payload, crcTable))
	if _, err := f.Write(hdr[:n]); err != nil {
		return 0, err
	}
	if _, err := f.Write(payload); err != nil {
		return 0, err
	}
	if _, err := f.Write(sum[:]); err != nil {
		return 0, err
	}
	return n + len(payload) + 4, nil
}

// readFrame reads the framed record at off via ReadAt (safe concurrently
// with appends beyond limit) and returns the verified payload.
func readFrame(f io.ReaderAt, off, limit int64) ([]byte, error) {
	var hdr [binary.MaxVarintLen64]byte
	hn := int64(len(hdr))
	if off+hn > limit {
		hn = limit - off
	}
	if hn <= 0 {
		return nil, fmt.Errorf("histstore: record offset %d beyond segment end %d", off, limit)
	}
	if _, err := f.ReadAt(hdr[:hn], off); err != nil && err != io.EOF {
		return nil, err
	}
	plen, n := binary.Uvarint(hdr[:hn])
	if n <= 0 {
		return nil, fmt.Errorf("histstore: bad record length at offset %d", off)
	}
	body := int64(plen) + 4
	if off+int64(n)+body > limit {
		return nil, fmt.Errorf("histstore: record at offset %d overruns segment end", off)
	}
	buf := make([]byte, body)
	if _, err := f.ReadAt(buf, off+int64(n)); err != nil {
		return nil, err
	}
	payload := buf[:plen]
	want := binary.LittleEndian.Uint32(buf[plen:])
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, fmt.Errorf("histstore: record checksum mismatch at offset %d (got %08x want %08x)", off, got, want)
	}
	return payload, nil
}

// encodeFooter serializes the record index of a segment being sealed.
func encodeFooter(index []indexEntry) []byte {
	b := binary.AppendUvarint(nil, uint64(len(index)))
	var prevOff int64
	for _, e := range index {
		b = binary.AppendUvarint(b, uint64(e.port))
		b = binary.AppendUvarint(b, uint64(e.offset-prevOff))
		prevOff = e.offset
		b = binary.AppendUvarint(b, uint64(e.payloadLen))
		b = binary.AppendUvarint(b, e.freezeTime)
		b = binary.AppendUvarint(b, e.freezeTime-e.prevFreeze)
		b = append(b, e.flags)
	}
	return b
}

func decodeFooter(b []byte) ([]indexEntry, error) {
	r := &reader{b: b}
	count := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if count > uint64(len(b)) {
		return nil, fmt.Errorf("histstore: footer claims %d records in %d bytes", count, len(b))
	}
	index := make([]indexEntry, count)
	var off int64
	for i := range index {
		e := &index[i]
		e.port = int(r.uvarint())
		off += int64(r.uvarint())
		e.offset = off
		e.payloadLen = uint32(r.uvarint())
		e.freezeTime = r.uvarint()
		e.prevFreeze = e.freezeTime - r.uvarint()
		e.flags = r.byte()
	}
	if r.err != nil {
		return nil, r.err
	}
	return index, nil
}

// seal writes the footer and trailer for the active segment and marks it
// sealed. The file is fsynced: a sealed segment is durable in full.
func (s *segment) seal(f *os.File) error {
	footer := encodeFooter(s.index)
	if _, err := f.Write(footer); err != nil {
		return err
	}
	var tr [segTrailerSize]byte
	binary.LittleEndian.PutUint64(tr[0:], s.minPrev)
	binary.LittleEndian.PutUint64(tr[8:], s.maxFreeze)
	binary.LittleEndian.PutUint32(tr[16:], uint32(s.count))
	binary.LittleEndian.PutUint32(tr[20:], uint32(len(footer)))
	binary.LittleEndian.PutUint32(tr[24:], crc32.Checksum(footer, crcTable))
	copy(tr[32:], segTrailerMagic[:])
	if _, err := f.Write(tr[:]); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	s.sealed = true
	s.fileSize = s.recordEnd + int64(len(footer)) + segTrailerSize
	return nil
}

// openSealed reads a sealed segment's trailer and returns its metadata
// without loading the per-record index. ok is false when the file has no
// valid trailer (it is the active segment, or it was torn mid-seal) — the
// caller then recovers it with recoverScan.
func openSealed(path string, seq uint64) (seg *segment, ok bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	size := fi.Size()
	if size < segHeaderSize+segTrailerSize {
		return nil, false, nil
	}
	var tr [segTrailerSize]byte
	if _, err := f.ReadAt(tr[:], size-segTrailerSize); err != nil {
		return nil, false, err
	}
	if [8]byte(tr[32:40]) != segTrailerMagic {
		return nil, false, nil
	}
	footerLen := int64(binary.LittleEndian.Uint32(tr[20:]))
	recordEnd := size - segTrailerSize - footerLen
	if recordEnd < segHeaderSize {
		return nil, false, nil
	}
	// The footer CRC is validated lazily, when the index is first needed.
	return &segment{
		seq:       seq,
		path:      path,
		sealed:    true,
		fileSize:  size,
		recordEnd: recordEnd,
		count:     int(binary.LittleEndian.Uint32(tr[16:])),
		minPrev:   binary.LittleEndian.Uint64(tr[0:]),
		maxFreeze: binary.LittleEndian.Uint64(tr[8:]),
	}, true, nil
}

// loadIndex reads and verifies a sealed segment's footer, populating
// s.index. Called lazily under the store lock on first query touch.
func (s *segment) loadIndex() error {
	f, err := os.Open(s.path)
	if err != nil {
		return err
	}
	defer f.Close()
	footerLen := s.fileSize - segTrailerSize - s.recordEnd
	footer := make([]byte, footerLen)
	if _, err := f.ReadAt(footer, s.recordEnd); err != nil {
		return err
	}
	var tr [segTrailerSize]byte
	if _, err := f.ReadAt(tr[:], s.fileSize-segTrailerSize); err != nil {
		return err
	}
	want := binary.LittleEndian.Uint32(tr[24:])
	if got := crc32.Checksum(footer, crcTable); got != want {
		return fmt.Errorf("histstore: %s footer checksum mismatch (got %08x want %08x)", s.path, got, want)
	}
	index, err := decodeFooter(footer)
	if err != nil {
		return err
	}
	if len(index) != s.count {
		return fmt.Errorf("histstore: %s footer has %d records, trailer says %d", s.path, len(index), s.count)
	}
	s.index = index
	return nil
}

// recoverScan walks an unsealed (or torn) segment record by record,
// rebuilding the index and detecting a torn tail: the first record with a
// bad length or checksum ends the intact prefix. It returns the segment
// with the in-memory index populated and the number of bytes past the
// intact prefix (0 when the file is clean).
func recoverScan(path string, seq uint64) (*segment, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	size := fi.Size()
	seg := &segment{seq: seq, path: path, minPrev: ^uint64(0)}
	if size < segHeaderSize {
		// Torn before the header finished; treat the whole file as tail.
		seg.recordEnd = segHeaderSize
		seg.fileSize = segHeaderSize
		return seg, size, nil
	}
	var hdr [segHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, 0, err
	}
	if hdr != segHeader {
		// Garbage where the header should be: nothing is salvageable. The
		// caller recreates the file as an empty segment.
		seg.recordEnd = segHeaderSize
		seg.fileSize = segHeaderSize
		return seg, size, nil
	}
	off := int64(segHeaderSize)
	for off < size {
		payload, err := readFrame(f, off, size)
		if err != nil {
			// Torn tail: keep the intact prefix [0, off).
			break
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			// The frame checksum passed but the payload is not a valid
			// record — corruption, not a torn append. Stop here too.
			break
		}
		var hlen [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(hlen[:], uint64(len(payload)))
		seg.index = append(seg.index, indexEntry{
			port:       rec.Port,
			freezeTime: rec.FreezeTime,
			prevFreeze: rec.PrevFreeze,
			offset:     off,
			payloadLen: uint32(len(payload)),
			flags:      recFlags(rec),
		})
		seg.noteRecord(rec.FreezeTime, rec.PrevFreeze)
		off += int64(n) + int64(len(payload)) + 4
	}
	seg.recordEnd = off
	seg.fileSize = off
	return seg, size - off, nil
}

func recFlags(rec *Record) byte {
	var fl byte
	if rec.Special {
		fl |= recFlagSpecial
	}
	return fl
}

func (s *segment) noteRecord(freeze, prev uint64) {
	s.count++
	if prev < s.minPrev {
		s.minPrev = prev
	}
	if freeze > s.maxFreeze {
		s.maxFreeze = freeze
	}
}

// overlaps reports whether any record in the segment can cover part of the
// query interval [start, end): coverage is (PrevFreeze, FreezeTime], so a
// record matters iff freezeTime > start && prevFreeze < end, and the
// segment-level bounds give the conservative test.
func (s *segment) overlaps(start, end uint64) bool {
	return s.count > 0 && s.maxFreeze > start && s.minPrev < end
}
