package histstore

import (
	"math/rand"
	"reflect"
	"testing"

	"printqueue/internal/core/qmonitor"
	"printqueue/internal/core/timewindow"
	"printqueue/internal/flow"
)

func twConfig() timewindow.Config {
	return timewindow.Config{M0: 3, K: 6, Alpha: 1, T: 3, MinPktTxDelayNs: 10}
}

func qmConfig() qmonitor.Config {
	return qmonitor.Config{MaxDepthCells: 1024, GranuleCells: 4}
}

func testKey(n int) flow.Key {
	return flow.Key{
		SrcIP: [4]byte{10, byte(n >> 8), 0, byte(n)}, DstIP: [4]byte{10, 128, 0, 1},
		SrcPort: uint16(33000 + n), DstPort: 80, Proto: flow.ProtoTCP,
	}
}

// buildRecord drives live register structures with a seeded trace and
// snapshots them, so encoded records look like real checkpoints (mostly
// monotone cycle ids, shared flows, sparse monitors).
func buildRecord(t *testing.T, seed int64, packets int) *Record {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tw, err := timewindow.New(twConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	qm, err := qmonitor.New(qmConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := uint64(1000)
	depth := 0
	for i := 0; i < packets; i++ {
		ts += uint64(rng.Intn(24) + 1)
		depth += rng.Intn(17) - 8
		if depth < 0 {
			depth = 0
		}
		f := testKey(rng.Intn(40))
		tw.Insert(f, ts)
		qm.Observe(f, depth)
	}
	return &Record{
		Port:       3,
		FreezeTime: ts + 1,
		PrevFreeze: 1000,
		Special:    seed%2 == 0,
		TW:         tw.Snapshot(),
		QM:         []*qmonitor.Snapshot{qm.Snapshot()},
	}
}

// assertRecordsEqual compares two records field by field, down to each raw
// window cell and monitor entry.
func assertRecordsEqual(t *testing.T, want, got *Record) {
	t.Helper()
	if got.Port != want.Port || got.FreezeTime != want.FreezeTime ||
		got.PrevFreeze != want.PrevFreeze || got.Special != want.Special {
		t.Fatalf("header mismatch: got %+v want %+v",
			[4]any{got.Port, got.FreezeTime, got.PrevFreeze, got.Special},
			[4]any{want.Port, want.FreezeTime, want.PrevFreeze, want.Special})
	}
	if got.TW.Config() != want.TW.Config() {
		t.Fatalf("TW config mismatch: got %+v want %+v", got.TW.Config(), want.TW.Config())
	}
	if !reflect.DeepEqual(got.TW.Windows(), want.TW.Windows()) {
		t.Fatal("window cells differ after round trip")
	}
	if len(got.QM) != len(want.QM) {
		t.Fatalf("QM count %d, want %d", len(got.QM), len(want.QM))
	}
	for q := range want.QM {
		if got.QM[q].Config() != want.QM[q].Config() || got.QM[q].Top() != want.QM[q].Top() {
			t.Fatalf("QM[%d] config/top mismatch", q)
		}
		if !reflect.DeepEqual(got.QM[q].Entries(), want.QM[q].Entries()) {
			t.Fatalf("QM[%d] entries differ after round trip", q)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rec := buildRecord(t, seed, 3000)
		enc, err := EncodeRecord(nil, rec)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		assertRecordsEqual(t, rec, dec)
	}
}

// TestCodecRoundTripQueries proves the stronger property the differential
// tests rely on: a decoded checkpoint answers queries bit-identically to
// the original (filter, index, and accumulate over the same cells).
func TestCodecRoundTripQueries(t *testing.T) {
	rec := buildRecord(t, 7, 5000)
	enc, err := EncodeRecord(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeRecord(enc)
	if err != nil {
		t.Fatal(err)
	}
	f1, f2 := rec.TW.Filter(), dec.TW.Filter()
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		a := uint64(rng.Intn(40000))
		b := a + uint64(rng.Intn(20000))
		if !reflect.DeepEqual(f1.Query(a, b), f2.Query(a, b)) {
			t.Fatalf("query [%d,%d) differs between original and decoded", a, b)
		}
	}
	c1 := rec.QM[0].OriginalCulprits()
	c2 := dec.QM[0].OriginalCulprits()
	if !reflect.DeepEqual(c1, c2) {
		t.Fatal("original culprits differ between original and decoded")
	}
}

// TestCodecEmpty round-trips a checkpoint with untouched registers.
func TestCodecEmpty(t *testing.T) {
	tw, _ := timewindow.New(twConfig(), nil)
	qm, _ := qmonitor.New(qmConfig(), nil)
	rec := &Record{Port: 0, FreezeTime: 10, PrevFreeze: 5,
		TW: tw.Snapshot(), QM: []*qmonitor.Snapshot{qm.Snapshot()}}
	enc, err := EncodeRecord(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeRecord(enc)
	if err != nil {
		t.Fatal(err)
	}
	assertRecordsEqual(t, rec, dec)
}

// TestCodecCompression pins the tentpole's size claim: a busy checkpoint
// encodes at least 4x smaller than its in-memory register copy (typical is
// far better; the floor keeps the test robust to layout drift).
func TestCodecCompression(t *testing.T) {
	rec := buildRecord(t, 3, 20000)
	enc, err := EncodeRecord(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	raw := rec.MemBytes()
	ratio := float64(raw) / float64(len(enc))
	t.Logf("in-memory %d bytes, encoded %d bytes: %.1fx", raw, len(enc), ratio)
	if ratio < 4 {
		t.Fatalf("encoded checkpoint only %.1fx smaller than in-memory form, want >= 4x", ratio)
	}
}

// TestCodecDeterministic: same record, same bytes (the differential and
// recovery tests lean on this).
func TestCodecDeterministic(t *testing.T) {
	rec := buildRecord(t, 5, 2000)
	a, err := EncodeRecord(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeRecord(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("encoding is not deterministic")
	}
}

// TestCodecTruncationRejected: every strict prefix of a valid payload must
// fail to decode (error, never panic, never a silently short record).
func TestCodecTruncationRejected(t *testing.T) {
	rec := buildRecord(t, 11, 1500)
	enc, err := EncodeRecord(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		cut := rng.Intn(len(enc))
		if _, err := DecodeRecord(enc[:cut]); err == nil {
			// A cut can only be decodable if it lands exactly at the end;
			// strict prefixes must fail.
			t.Fatalf("truncated payload (%d of %d bytes) decoded without error", cut, len(enc))
		}
	}
}

// TestCodecCorruptionSafe flips bytes across the payload and requires
// decode to either error out or produce a structurally valid record —
// never panic or hang.
func TestCodecCorruptionSafe(t *testing.T) {
	rec := buildRecord(t, 13, 1500)
	enc, err := EncodeRecord(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4242))
	buf := make([]byte, len(enc))
	for i := 0; i < 500; i++ {
		copy(buf, enc)
		buf[rng.Intn(len(buf))] ^= byte(1 + rng.Intn(255))
		dec, err := DecodeRecord(buf)
		if err != nil {
			continue
		}
		// Survived the flip: the record must still be self-consistent.
		if dec.TW == nil {
			t.Fatal("corrupt decode returned nil snapshot without error")
		}
	}
}

func BenchmarkCheckpointEncode(b *testing.B) {
	rec := buildRecordB(b, 3, 20000)
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = EncodeRecord(buf[:0], rec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkCheckpointDecode(b *testing.B) {
	rec := buildRecordB(b, 3, 20000)
	enc, err := EncodeRecord(nil, rec)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeRecord(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// buildRecordB is buildRecord for benchmarks.
func buildRecordB(b *testing.B, seed int64, packets int) *Record {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	tw, err := timewindow.New(twConfig(), nil)
	if err != nil {
		b.Fatal(err)
	}
	qm, err := qmonitor.New(qmConfig(), nil)
	if err != nil {
		b.Fatal(err)
	}
	ts := uint64(1000)
	depth := 0
	for i := 0; i < packets; i++ {
		ts += uint64(rng.Intn(24) + 1)
		depth += rng.Intn(17) - 8
		if depth < 0 {
			depth = 0
		}
		f := testKey(rng.Intn(40))
		tw.Insert(f, ts)
		qm.Observe(f, depth)
	}
	return &Record{Port: 3, FreezeTime: ts + 1, PrevFreeze: 1000,
		TW: tw.Snapshot(), QM: []*qmonitor.Snapshot{qm.Snapshot()}}
}
