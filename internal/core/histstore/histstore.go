// Package histstore implements the cold tier of the checkpoint history: a
// durable, append-only segment log of compactly encoded checkpoints plus a
// byte-budgeted LRU of decoded ones.
//
// The control plane keeps its newest MaxCheckpoints checkpoints in RAM (the
// hot tier) and appends every retired checkpoint here off the hot path. A
// query that reaches past the hot tier asks the store for the cold
// checkpoints Covering its interval; the store locates them via the
// per-segment time-indexed footers (loaded lazily, on first touch), decodes
// them on miss, and keeps the decoded form — including the lazily built
// Algorithm-3 cell index — in the LRU so repeated narrow queries over deep
// history stay sub-millisecond while resident memory stays bounded.
package histstore

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"printqueue/internal/core/timewindow"
	"printqueue/internal/telemetry"
)

// Options configures a Store.
type Options struct {
	// Dir is the history directory. It is created if absent.
	Dir string
	// SegmentBytes is the record-area size at which the active segment is
	// sealed and a new one started. Default 4 MiB.
	SegmentBytes int64
	// MaxBytes bounds total bytes on disk; oldest sealed segments are
	// removed, whole, while over budget. The active segment is never
	// pruned. 0 = unlimited.
	MaxBytes int64
	// MaxAgeNs bounds retention by trace time: a sealed segment whose
	// newest checkpoint is older than MaxAgeNs before the newest appended
	// freeze time is removed. 0 = unlimited.
	MaxAgeNs uint64
	// FsyncEvery fsyncs the active segment after every N appended records.
	// 0 fsyncs only when a segment is sealed or the store is closed.
	FsyncEvery int
	// CacheBytes is the decoded-checkpoint LRU budget. Default 64 MiB.
	CacheBytes int64
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = 64 << 20
	}
	return o
}

// Stats is a point-in-time summary of the store, surfaced by the ops
// endpoint and the simulator's end-of-run report.
type Stats struct {
	Segments         int   `json:"segments"`
	BytesOnDisk      int64 `json:"bytes_on_disk"`
	CacheBytes       int64 `json:"cache_bytes"`
	Appended         int64 `json:"appended"`
	AppendErrors     int64 `json:"append_errors"`
	EncodedBytes     int64 `json:"encoded_bytes"`
	RawBytes         int64 `json:"raw_bytes"`
	CacheHits        int64 `json:"cache_hits"`
	CacheMisses      int64 `json:"cache_misses"`
	PrunedSegments   int64 `json:"pruned_segments"`
	RecoveredRecords int   `json:"recovered_records"`
	TruncatedBytes   int64 `json:"truncated_bytes"`
}

// Store is the tiered-history cold store. All methods are safe for
// concurrent use.
type Store struct {
	opts Options

	mu        sync.Mutex
	closed    bool
	active    *os.File
	activeSeg *segment
	sealed    []*segment // ascending seq
	nextSeq   uint64
	sinceSync int
	encBuf    []byte

	maxFreezeSeen uint64 // newest freeze time ever appended (age pruning)

	cache *lruCache

	recoveredRecords int
	truncatedBytes   int64

	appended     *telemetry.Counter
	appendErrs   *telemetry.Counter
	decodeErrs   *telemetry.Counter
	encodedBytes *telemetry.Counter
	rawBytes     *telemetry.Counter
	cacheHits    *telemetry.Counter
	cacheMisses  *telemetry.Counter
	prunedSegs   *telemetry.Counter
	indexLoads   *telemetry.Counter
	bytesOnDisk  *telemetry.Gauge
	segments     *telemetry.Gauge
	cacheBytes   *telemetry.Gauge
	historyBytes *telemetry.Gauge
	decodeNs     *telemetry.Histogram
}

// Open opens (or creates) the history directory, recovering from any torn
// tail left by a crash: the last segment is scanned record by record and
// truncated back to its intact prefix. Metrics are registered on reg (which
// must be non-nil; use telemetry.NewRegistry() when running standalone).
func Open(opts Options, reg *telemetry.Registry) (*Store, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("histstore: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		opts:         opts,
		appended:     reg.Counter("printqueue_hist_appended_total", "Checkpoints appended to the history log."),
		appendErrs:   reg.Counter("printqueue_hist_append_errors_total", "Checkpoint appends that failed (encode or I/O)."),
		decodeErrs:   reg.Counter("printqueue_hist_decode_errors_total", "Cold checkpoint records that failed to decode at query time."),
		encodedBytes: reg.Counter("printqueue_hist_encoded_bytes_total", "Total encoded payload bytes appended."),
		rawBytes:     reg.Counter("printqueue_hist_raw_bytes_total", "Total in-memory bytes of the checkpoints appended (compression baseline)."),
		cacheHits:    reg.Counter("printqueue_hist_cache_hits_total", "Cold-tier queries served from the decoded-checkpoint LRU."),
		cacheMisses:  reg.Counter("printqueue_hist_cache_misses_total", "Cold-tier queries that had to decode a checkpoint from disk."),
		prunedSegs:   reg.Counter("printqueue_hist_pruned_segments_total", "Sealed segments removed by size/age retention."),
		indexLoads:   reg.Counter("printqueue_hist_index_loads_total", "Sealed-segment footers loaded lazily on first query touch."),
		bytesOnDisk:  reg.Gauge("printqueue_hist_bytes_on_disk", "Bytes currently on disk across all history segments."),
		segments:     reg.Gauge("printqueue_hist_segments", "History segment files currently on disk."),
		cacheBytes:   reg.Gauge("printqueue_hist_cache_bytes", "Resident bytes of the decoded cold-checkpoint LRU."),
		historyBytes: reg.Gauge("printqueue_history_bytes", "Resident bytes of checkpoint history (hot tier + cold LRU)."),
		decodeNs:     reg.Histogram("printqueue_hist_decode_ns", "Nanoseconds to decode one cold checkpoint from its segment.", telemetry.LatencyBuckets),
	}
	s.cache = newLRUCache(opts.CacheBytes, func(delta int64) {
		s.cacheBytes.Add(delta)
		s.historyBytes.Add(delta)
	})
	if err := s.openDir(); err != nil {
		return nil, err
	}
	return s, nil
}

// openDir scans the directory, classifying each segment as sealed (valid
// trailer) or torn/active (recovered by scan). Every unsealed segment but
// the newest is sealed in place; the newest becomes the active segment.
func (s *Store) openDir() error {
	seqs, err := listSegments(s.opts.Dir)
	if err != nil {
		return err
	}
	var unsealed []*segment
	for _, seq := range seqs {
		path := segPath(s.opts.Dir, seq)
		seg, ok, err := openSealed(path, seq)
		if err != nil {
			return err
		}
		if ok {
			s.sealed = append(s.sealed, seg)
			if seg.maxFreeze > s.maxFreezeSeen {
				s.maxFreezeSeen = seg.maxFreeze
			}
			continue
		}
		seg, torn, err := recoverScan(path, seq)
		if err != nil {
			return err
		}
		if torn > 0 {
			if seg.count == 0 {
				// No salvageable prefix — possibly a torn or garbage header
				// that a plain truncate would zero-extend into an invalid
				// file. Recreate it as an empty segment instead.
				if err := os.WriteFile(path, segHeader[:], 0o644); err != nil {
					return err
				}
			} else if err := os.Truncate(path, seg.fileSize); err != nil {
				return err
			}
			s.truncatedBytes += torn
		}
		s.recoveredRecords += seg.count
		if seg.maxFreeze > s.maxFreezeSeen {
			s.maxFreezeSeen = seg.maxFreeze
		}
		unsealed = append(unsealed, seg)
	}
	// Seal every recovered segment except the newest, which resumes as the
	// active segment.
	for i, seg := range unsealed {
		if i == len(unsealed)-1 && seg.seq > maxSeq(s.sealed) {
			f, err := os.OpenFile(seg.path, os.O_RDWR, 0o644)
			if err != nil {
				return err
			}
			if _, err := f.Seek(seg.recordEnd, 0); err != nil {
				f.Close()
				return err
			}
			s.active = f
			s.activeSeg = seg
			continue
		}
		f, err := os.OpenFile(seg.path, os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Seek(seg.recordEnd, 0); err != nil {
			f.Close()
			return err
		}
		err = seg.seal(f)
		f.Close()
		if err != nil {
			return err
		}
		s.sealed = append(s.sealed, seg)
	}
	sort.Slice(s.sealed, func(i, j int) bool { return s.sealed[i].seq < s.sealed[j].seq })
	if s.activeSeg == nil {
		if err := s.newActiveLocked(); err != nil {
			return err
		}
	}
	s.nextSeq = s.activeSeg.seq + 1
	s.updateDiskGaugesLocked()
	return nil
}

func maxSeq(segs []*segment) uint64 {
	if len(segs) == 0 {
		return 0
	}
	return segs[len(segs)-1].seq
}

func (s *Store) newActiveLocked() error {
	seq := s.nextSeq
	if seq == 0 {
		seq = maxSeq(s.sealed) + 1
	}
	path := segPath(s.opts.Dir, seq)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(segHeader[:]); err != nil {
		f.Close()
		return err
	}
	s.active = f
	s.activeSeg = &segment{
		seq:       seq,
		path:      path,
		minPrev:   ^uint64(0),
		recordEnd: segHeaderSize,
		fileSize:  segHeaderSize,
	}
	s.nextSeq = seq + 1
	return nil
}

// Append encodes rec and appends it to the active segment, sealing and
// rotating first when the segment is full, then applying retention. It is
// called off the ingest hot path (by the snapshotter goroutine or, in the
// synchronous pipeline, under the per-port freeze).
func (s *Store) Append(rec *Record) error {
	return s.AppendWith(rec, nil)
}

// AppendWith is Append with a post-write hook: after the record is framed
// into the active segment, fn (if non-nil) is invoked — still under the
// store lock — with the encoded payload. The checkpoint stream publishes
// through this hook so subscribers reuse the bytes the log write already
// produced: EncodeRecord builds a per-call flow dictionary, so a second
// encode for the stream would put an allocation back on the snapshotter
// path. fn must copy whatever it keeps; the buffer is reused by the next
// append.
func (s *Store) AppendWith(rec *Record, fn func(payload []byte)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("histstore: store is closed")
	}
	payload, err := EncodeRecord(s.encBuf[:0], rec)
	s.encBuf = payload[:0]
	if err != nil {
		s.appendErrs.Inc()
		return err
	}
	if err := s.appendPayloadLocked(payload, rec.Port, rec.FreezeTime, rec.PrevFreeze, recFlags(rec)); err != nil {
		return err
	}
	s.rawBytes.Add(rec.MemBytes())
	if fn != nil {
		fn(payload)
	}
	return nil
}

// AppendEncoded appends an already-encoded record payload under the given
// indexed metadata, skipping the encode entirely. This is the mirror-side
// ingest path: the fleet collector receives checkpoint frames carrying the
// switch's encoded payload plus its metadata, so replicating the log costs
// one frame write and zero codec work. The raw-bytes counter is not
// advanced (there is no decoded form to measure), so CompressionRatio on a
// mirror store reads 0.
func (s *Store) AppendEncoded(payload []byte, port int, freezeTime, prevFreeze uint64, special bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("histstore: store is closed")
	}
	var flags byte
	if special {
		flags = recFlagSpecial
	}
	return s.appendPayloadLocked(payload, port, freezeTime, prevFreeze, flags)
}

// appendPayloadLocked frames one encoded record into the active segment:
// rotate when full, write, index, advance retention bookkeeping, fsync per
// policy. Shared by the encode (AppendWith) and pre-encoded
// (AppendEncoded) paths.
func (s *Store) appendPayloadLocked(payload []byte, port int, freezeTime, prevFreeze uint64, flags byte) error {
	if s.activeSeg.count > 0 &&
		s.activeSeg.recordEnd+int64(len(payload))+8 > s.opts.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			s.appendErrs.Inc()
			return err
		}
	}
	off := s.activeSeg.recordEnd
	n, err := appendFrame(s.active, payload)
	if err != nil {
		// The segment may now hold a torn record; resync the in-memory end
		// to what was actually written is not knowable, so seal off at the
		// last known-good offset by truncating back.
		s.appendErrs.Inc()
		if terr := s.active.Truncate(off); terr == nil {
			s.active.Seek(off, 0)
		}
		return err
	}
	s.activeSeg.index = append(s.activeSeg.index, indexEntry{
		port:       port,
		freezeTime: freezeTime,
		prevFreeze: prevFreeze,
		offset:     off,
		payloadLen: uint32(len(payload)),
		flags:      flags,
	})
	s.activeSeg.noteRecord(freezeTime, prevFreeze)
	s.activeSeg.recordEnd += int64(n)
	s.activeSeg.fileSize = s.activeSeg.recordEnd
	if freezeTime > s.maxFreezeSeen {
		s.maxFreezeSeen = freezeTime
	}
	s.appended.Inc()
	s.encodedBytes.Add(int64(len(payload)))
	if s.opts.FsyncEvery > 0 {
		s.sinceSync++
		if s.sinceSync >= s.opts.FsyncEvery {
			s.sinceSync = 0
			if err := s.active.Sync(); err != nil {
				s.appendErrs.Inc()
				return err
			}
		}
	}
	s.updateDiskGaugesLocked()
	return nil
}

// rotateLocked seals the active segment, starts a fresh one, and applies
// size/age retention to the sealed set.
func (s *Store) rotateLocked() error {
	if err := s.activeSeg.seal(s.active); err != nil {
		return err
	}
	if err := s.active.Close(); err != nil {
		return err
	}
	s.sealed = append(s.sealed, s.activeSeg)
	s.active, s.activeSeg = nil, nil
	if err := s.newActiveLocked(); err != nil {
		return err
	}
	s.pruneLocked()
	return nil
}

// pruneLocked removes sealed segments that fall outside the size or age
// budget, oldest first. The active segment is never pruned.
func (s *Store) pruneLocked() {
	for len(s.sealed) > 0 {
		oldest := s.sealed[0]
		drop := false
		if s.opts.MaxBytes > 0 && s.totalBytesLocked() > s.opts.MaxBytes {
			drop = true
		}
		if !drop && s.opts.MaxAgeNs > 0 && s.maxFreezeSeen > s.opts.MaxAgeNs &&
			oldest.maxFreeze < s.maxFreezeSeen-s.opts.MaxAgeNs {
			drop = true
		}
		if !drop {
			break
		}
		os.Remove(oldest.path)
		s.sealed = s.sealed[1:]
		s.cache.dropSegment(oldest.seq)
		s.prunedSegs.Inc()
	}
	s.updateDiskGaugesLocked()
}

func (s *Store) totalBytesLocked() int64 {
	var n int64
	for _, seg := range s.sealed {
		n += seg.fileSize
	}
	if s.activeSeg != nil {
		n += s.activeSeg.fileSize
	}
	return n
}

func (s *Store) updateDiskGaugesLocked() {
	s.bytesOnDisk.Set(s.totalBytesLocked())
	n := int64(len(s.sealed))
	if s.activeSeg != nil {
		n++
	}
	s.segments.Set(n)
}

// ColdCheckpoint is one checkpoint served from the cold tier. Coverage and
// snapshots come from the decoded Record; Filtered builds (or reuses) the
// cached query index.
type ColdCheckpoint struct {
	store *Store
	cp    *cachedCheckpoint
}

// Record returns the decoded checkpoint.
func (c *ColdCheckpoint) Record() *Record { return c.cp.rec }

// Filtered returns the checkpoint's filtered, indexed time-window form,
// built lazily and charged to the store's cache budget.
func (c *ColdCheckpoint) Filtered() *timewindow.Filtered {
	return c.cp.Filtered(c.store.cache.grow)
}

// Covering returns the cold checkpoints for port whose coverage interval
// (PrevFreeze, FreezeTime] overlaps the query interval [start, end), in
// ascending freeze-time order. Sealed-segment indexes are loaded lazily on
// first touch; records are decoded on cache miss and retained in the LRU.
func (s *Store) Covering(port int, start, end uint64) ([]*ColdCheckpoint, error) {
	if end <= start {
		return nil, nil
	}
	type locator struct {
		seg   uint64
		path  string
		limit int64
		entry indexEntry
	}
	var locs []locator

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("histstore: store is closed")
	}
	segs := make([]*segment, 0, len(s.sealed)+1)
	segs = append(segs, s.sealed...)
	if s.activeSeg != nil {
		segs = append(segs, s.activeSeg)
	}
	for _, seg := range segs {
		if !seg.overlaps(start, end) {
			continue
		}
		if seg.index == nil {
			if err := seg.loadIndex(); err != nil {
				s.mu.Unlock()
				return nil, err
			}
			s.indexLoads.Inc()
		}
		for _, e := range seg.index {
			if e.port == port && e.freezeTime > start && e.prevFreeze < end {
				locs = append(locs, locator{seg: seg.seq, path: seg.path, limit: seg.recordEnd, entry: e})
			}
		}
	}
	s.mu.Unlock()

	out := make([]*ColdCheckpoint, 0, len(locs))
	for _, l := range locs {
		key := cacheKey{seg: l.seg, off: l.entry.offset}
		if cp, ok := s.cache.get(key); ok {
			s.cacheHits.Inc()
			out = append(out, &ColdCheckpoint{store: s, cp: cp})
			continue
		}
		s.cacheMisses.Inc()
		cp, err := s.decodeAt(key, l.path, l.entry.offset, l.limit)
		if err != nil {
			if os.IsNotExist(err) {
				// Segment pruned between index snapshot and read: the data
				// aged out of retention mid-query; skip it.
				continue
			}
			s.decodeErrs.Inc()
			return nil, err
		}
		out = append(out, &ColdCheckpoint{store: s, cp: cp})
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].cp.rec.FreezeTime < out[j].cp.rec.FreezeTime
	})
	return out, nil
}

// ReplaySince streams every stored record whose FreezeTime is strictly
// greater than since to fn, in append order (segment sequence, then
// intra-segment offset), passing the raw encoded payload and the indexed
// metadata. The payload is only valid for the duration of the call; fn
// must copy what it keeps. fn returning an error stops the replay and
// propagates. Reads happen outside the store lock, so appends proceed
// concurrently; records appended after the locator snapshot was taken are
// not replayed (a live subscription catches them instead). A segment
// pruned mid-replay is skipped, like in Covering: its data aged out of
// retention.
func (s *Store) ReplaySince(since uint64, fn func(payload []byte, port int, freezeTime, prevFreeze uint64, special bool) error) error {
	type locator struct {
		path  string
		limit int64
		entry indexEntry
	}
	var locs []locator

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("histstore: store is closed")
	}
	segs := make([]*segment, 0, len(s.sealed)+1)
	segs = append(segs, s.sealed...)
	if s.activeSeg != nil {
		segs = append(segs, s.activeSeg)
	}
	for _, seg := range segs {
		if seg.count > 0 && seg.maxFreeze <= since {
			continue
		}
		if seg.index == nil {
			if err := seg.loadIndex(); err != nil {
				s.mu.Unlock()
				return err
			}
			s.indexLoads.Inc()
		}
		for _, e := range seg.index {
			if e.freezeTime > since {
				locs = append(locs, locator{path: seg.path, limit: seg.recordEnd, entry: e})
			}
		}
	}
	s.mu.Unlock()

	var f *os.File
	var open string
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	for _, l := range locs {
		if f == nil || open != l.path {
			if f != nil {
				f.Close()
				f = nil
			}
			var err error
			f, err = os.Open(l.path)
			if err != nil {
				if os.IsNotExist(err) {
					continue
				}
				return err
			}
			open = l.path
		}
		payload, err := readFrame(f, l.entry.offset, l.limit)
		if err != nil {
			return err
		}
		if err := fn(payload, l.entry.port, l.entry.freezeTime, l.entry.prevFreeze,
			l.entry.flags&recFlagSpecial != 0); err != nil {
			return err
		}
	}
	return nil
}

// decodeAt reads and decodes the record at the given location, inserting it
// into the LRU. A racing decode of the same record is deduplicated: the
// first insert wins.
func (s *Store) decodeAt(key cacheKey, path string, off, limit int64) (*cachedCheckpoint, error) {
	t0 := time.Now()
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	payload, err := readFrame(f, off, limit)
	f.Close()
	if err != nil {
		return nil, err
	}
	rec, err := DecodeRecord(payload)
	if err != nil {
		return nil, err
	}
	s.decodeNs.Observe(uint64(time.Since(t0).Nanoseconds()))
	cp := &cachedCheckpoint{key: key, rec: rec, bytes: rec.MemBytes()}
	return s.cache.put(key, cp), nil
}

// Stats returns a point-in-time summary.
// DropCache discards every decoded checkpoint in the LRU, forcing the next
// cold query to decode from disk again. Benchmarking and memory-pressure
// aid; concurrent queries simply re-decode.
func (s *Store) DropCache() { s.cache.drop() }

func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		BytesOnDisk:      s.totalBytesLocked(),
		RecoveredRecords: s.recoveredRecords,
		TruncatedBytes:   s.truncatedBytes,
	}
	st.Segments = len(s.sealed)
	if s.activeSeg != nil {
		st.Segments++
	}
	s.mu.Unlock()
	st.CacheBytes = s.cache.residentBytes()
	st.Appended = s.appended.Load()
	st.AppendErrors = s.appendErrs.Load()
	st.EncodedBytes = s.encodedBytes.Load()
	st.RawBytes = s.rawBytes.Load()
	st.CacheHits = s.cacheHits.Load()
	st.CacheMisses = s.cacheMisses.Load()
	st.PrunedSegments = s.prunedSegs.Load()
	return st
}

// Close seals the active segment (or removes it when empty) and drops the
// cache. The store cannot be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.active != nil {
		if s.activeSeg.count > 0 {
			if e := s.activeSeg.seal(s.active); e != nil && err == nil {
				err = e
			}
			s.sealed = append(s.sealed, s.activeSeg)
		} else {
			os.Remove(s.activeSeg.path)
		}
		if e := s.active.Close(); e != nil && err == nil {
			err = e
		}
		s.active, s.activeSeg = nil, nil
	}
	s.updateDiskGaugesLocked()
	s.cache.drop()
	return err
}
