package histstore

import (
	"container/list"
	"sync"

	"printqueue/internal/core/timewindow"
)

// cacheKey identifies one decoded checkpoint: the segment it lives in and
// its record offset there.
type cacheKey struct {
	seg uint64
	off int64
}

// cachedCheckpoint is one decoded cold checkpoint resident in the LRU. The
// query-time cell index (the Algorithm-3 Filtered form) is built lazily on
// first accumulate and its bytes are charged to the cache retroactively, so
// checkpoints that are only decoded for their queue monitors stay cheap.
type cachedCheckpoint struct {
	key cacheKey
	rec *Record

	filterOnce sync.Once
	filtered   *timewindow.Filtered

	bytes int64 // current charge against the cache budget
}

// Filtered returns the checkpoint's filtered/indexed time-window form,
// building it on first use and charging its footprint to the cache.
func (c *cachedCheckpoint) Filtered(onGrow func(*cachedCheckpoint, int64)) *timewindow.Filtered {
	c.filterOnce.Do(func() {
		c.filtered = c.rec.TW.Filter()
		if onGrow != nil {
			onGrow(c, c.filtered.MemBytes())
		}
	})
	return c.filtered
}

// lruCache is a byte-budgeted LRU of decoded cold checkpoints. It reports
// its resident bytes to two gauges: the store's own cache gauge and the
// shared printqueue_history_bytes gauge (which the control plane's hot tier
// also contributes to).
type lruCache struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	order   *list.List // front = most recent; values are *lruEntry
	entries map[cacheKey]*list.Element

	onBytes func(delta int64) // gauge mirror, called outside the hot loop
}

type lruEntry struct {
	key cacheKey
	cp  *cachedCheckpoint
}

func newLRUCache(budget int64, onBytes func(int64)) *lruCache {
	return &lruCache{
		budget:  budget,
		order:   list.New(),
		entries: make(map[cacheKey]*list.Element),
		onBytes: onBytes,
	}
}

// get returns the cached checkpoint for key, marking it most recently used.
func (c *lruCache) get(key cacheKey) (*cachedCheckpoint, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).cp, true
}

// put inserts a freshly decoded checkpoint, evicting least-recently-used
// entries until the budget holds. If key is already present (a racing
// decode), the existing entry wins and the new one is discarded.
func (c *lruCache) put(key cacheKey, cp *cachedCheckpoint) *cachedCheckpoint {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		existing := el.Value.(*lruEntry).cp
		c.mu.Unlock()
		return existing
	}
	el := c.order.PushFront(&lruEntry{key: key, cp: cp})
	c.entries[key] = el
	delta := cp.bytes + c.evictLocked(cp.bytes)
	c.mu.Unlock()
	if c.onBytes != nil && delta != 0 {
		c.onBytes(delta)
	}
	return cp
}

// grow charges extra bytes to an entry (its lazily built index) and evicts
// to stay within budget. If the entry has already been evicted — the index
// was built after a racing eviction — the charge is skipped: its bytes are
// no longer counted in the pool.
func (c *lruCache) grow(cp *cachedCheckpoint, extra int64) {
	c.mu.Lock()
	el, live := c.entries[cp.key]
	if !live || el.Value.(*lruEntry).cp != cp {
		c.mu.Unlock()
		return
	}
	cp.bytes += extra
	delta := extra + c.evictLocked(extra)
	c.mu.Unlock()
	if c.onBytes != nil && delta != 0 {
		c.onBytes(delta)
	}
}

// evictLocked frees least-recently-used entries until bytes+incoming fits
// the budget, returning the (negative) byte delta of what was evicted. At
// least one entry is always retained so a single oversized checkpoint can
// still be queried.
func (c *lruCache) evictLocked(incoming int64) int64 {
	var delta int64
	for c.bytes+incoming > c.budget && c.order.Len() > 1 {
		el := c.order.Back()
		if el == nil {
			break
		}
		ent := el.Value.(*lruEntry)
		c.order.Remove(el)
		delete(c.entries, ent.key)
		c.bytes -= ent.cp.bytes
		delta -= ent.cp.bytes
	}
	c.bytes += incoming
	return delta
}

// dropSegment removes every cached checkpoint belonging to a pruned
// segment.
func (c *lruCache) dropSegment(seg uint64) {
	c.mu.Lock()
	var delta int64
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*lruEntry)
		if ent.key.seg == seg {
			c.order.Remove(el)
			delete(c.entries, ent.key)
			c.bytes -= ent.cp.bytes
			delta -= ent.cp.bytes
		}
		el = next
	}
	c.mu.Unlock()
	if c.onBytes != nil && delta != 0 {
		c.onBytes(delta)
	}
}

// drop empties the cache (store close).
func (c *lruCache) drop() {
	c.mu.Lock()
	delta := -c.bytes
	c.bytes = 0
	c.order.Init()
	c.entries = make(map[cacheKey]*list.Element)
	c.mu.Unlock()
	if c.onBytes != nil && delta != 0 {
		c.onBytes(delta)
	}
}

func (c *lruCache) residentBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
