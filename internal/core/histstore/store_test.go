package histstore

import (
	"os"
	"path/filepath"
	"testing"

	"printqueue/internal/telemetry"
)

// smallRecord builds a compact record with distinct coverage
// (PrevFreeze, FreezeTime] so tests can target individual checkpoints.
func smallRecord(t *testing.T, port int, prev, freeze uint64) *Record {
	t.Helper()
	rec := buildRecord(t, int64(freeze), 200)
	rec.Port = port
	rec.PrevFreeze = prev
	rec.FreezeTime = freeze
	rec.Special = false
	return rec
}

func openTestStore(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	opts.Dir = dir
	st, err := Open(opts, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// appendChain appends n chained checkpoints (each covering 100 ns) for port
// and returns the final freeze time.
func appendChain(t *testing.T, st *Store, port, n int, startAt uint64) uint64 {
	t.Helper()
	prev := startAt
	for i := 0; i < n; i++ {
		freeze := prev + 100
		if err := st.Append(smallRecord(t, port, prev, freeze)); err != nil {
			t.Fatal(err)
		}
		prev = freeze
	}
	return prev
}

func TestStoreAppendAndCovering(t *testing.T) {
	st := openTestStore(t, t.TempDir(), Options{})
	defer st.Close()
	end := appendChain(t, st, 3, 10, 1000)

	// Full span: all 10 checkpoints, ascending by freeze time.
	cps, err := st.Covering(3, 1000, end)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 10 {
		t.Fatalf("got %d checkpoints, want 10", len(cps))
	}
	for i, cp := range cps {
		want := uint64(1000 + (i+1)*100)
		if cp.Record().FreezeTime != want {
			t.Fatalf("checkpoint %d: freeze %d, want %d", i, cp.Record().FreezeTime, want)
		}
	}

	// Narrow interval inside one checkpoint's coverage.
	cps, err = st.Covering(3, 1310, 1350)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 1 || cps[0].Record().FreezeTime != 1400 {
		t.Fatalf("narrow query: got %d checkpoints (freeze %v), want the 1400 checkpoint",
			len(cps), func() any {
				if len(cps) > 0 {
					return cps[0].Record().FreezeTime
				}
				return nil
			}())
	}

	// Boundary semantics are half-open like the hot tier: a checkpoint covers
	// (PrevFreeze, FreezeTime], so start == FreezeTime excludes it and
	// end == PrevFreeze excludes it too.
	cps, err = st.Covering(3, 1400, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 1 || cps[0].Record().FreezeTime != 1500 {
		t.Fatalf("boundary query returned %d checkpoints, want exactly the 1500 one", len(cps))
	}

	// Wrong port: nothing.
	if cps, _ := st.Covering(7, 1000, end); len(cps) != 0 {
		t.Fatalf("port 7 query returned %d checkpoints, want 0", len(cps))
	}
}

func TestStoreRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force many rotations.
	st := openTestStore(t, dir, Options{SegmentBytes: 8 << 10})
	end := appendChain(t, st, 0, 40, 1000)
	stats := st.Stats()
	if stats.Segments < 3 {
		t.Fatalf("only %d segments after 40 appends with 8 KiB segments, expected rotation", stats.Segments)
	}
	if stats.Appended != 40 {
		t.Fatalf("appended %d, want 40", stats.Appended)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: every record must still be reachable, no recovery needed.
	st2 := openTestStore(t, dir, Options{SegmentBytes: 8 << 10})
	defer st2.Close()
	if st2.Stats().RecoveredRecords != 0 || st2.Stats().TruncatedBytes != 0 {
		t.Fatalf("clean reopen reported recovery: %+v", st2.Stats())
	}
	cps, err := st2.Covering(0, 1000, end)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 40 {
		t.Fatalf("reopened store found %d checkpoints, want 40", len(cps))
	}
	for i := 1; i < len(cps); i++ {
		if cps[i].Record().FreezeTime <= cps[i-1].Record().FreezeTime {
			t.Fatal("checkpoints not ascending after reopen across segments")
		}
	}
}

func TestStoreCacheHitMiss(t *testing.T) {
	st := openTestStore(t, t.TempDir(), Options{})
	defer st.Close()
	end := appendChain(t, st, 1, 6, 1000)

	// First pass decodes every checkpoint from disk (all misses).
	if _, err := st.Covering(1, 1000, end); err != nil {
		t.Fatal(err)
	}
	first := st.Stats()
	if first.CacheMisses != 6 || first.CacheHits != 0 {
		t.Fatalf("first pass: hits=%d misses=%d, want 0/6", first.CacheHits, first.CacheMisses)
	}
	if _, err := st.Covering(1, 1000, end); err != nil {
		t.Fatal(err)
	}
	second := st.Stats()
	if second.CacheHits != 6 || second.CacheMisses != 6 {
		t.Fatalf("second pass: hits=%d misses=%d, want 6/6", second.CacheHits, second.CacheMisses)
	}
	if second.CacheBytes <= 0 {
		t.Fatal("cache holds entries but CacheBytes is zero")
	}
}

func TestStoreCacheBudgetEviction(t *testing.T) {
	// A punitive 1-byte budget: every decoded checkpoint exceeds it, but the
	// cache must still retain one entry (so a query making progress can reuse
	// its own decode) and never grow beyond that.
	st := openTestStore(t, t.TempDir(), Options{CacheBytes: 1})
	defer st.Close()
	end := appendChain(t, st, 1, 8, 1000)
	if _, err := st.Covering(1, 1000, end); err != nil {
		t.Fatal(err)
	}
	if n := len(st.cache.entries); n > 1 {
		t.Fatalf("1-byte budget retained %d cache entries, want <= 1", n)
	}
	// Second pass decodes again (evicted), still correct.
	cps, err := st.Covering(1, 1000, end)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 8 {
		t.Fatalf("got %d checkpoints under eviction pressure, want 8", len(cps))
	}
}

func TestStorePruneMaxBytes(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, Options{SegmentBytes: 8 << 10, MaxBytes: 24 << 10})
	appendChain(t, st, 0, 60, 1000)
	stats := st.Stats()
	if stats.PrunedSegments == 0 {
		t.Fatal("MaxBytes never pruned a segment")
	}
	if stats.BytesOnDisk > 40<<10 {
		t.Fatalf("bytes on disk %d way above budget, prune not keeping up", stats.BytesOnDisk)
	}
	// Pruned segments must be gone from disk too.
	names, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != stats.Segments {
		t.Fatalf("%d .seg files on disk but stats say %d segments", len(names), stats.Segments)
	}
	// Queries over pruned history return what's left, no error.
	if _, err := st.Covering(0, 1000, 7000); err != nil {
		t.Fatal(err)
	}
	st.Close()
}

func TestStorePruneMaxAge(t *testing.T) {
	st := openTestStore(t, t.TempDir(), Options{SegmentBytes: 8 << 10, MaxAgeNs: 800})
	end := appendChain(t, st, 0, 60, 1000)
	stats := st.Stats()
	if stats.PrunedSegments == 0 {
		t.Fatal("MaxAgeNs never pruned a segment")
	}
	// Recent history must survive: the last 800 ns (8 checkpoints) minus
	// whatever shares a segment with older data.
	cps, err := st.Covering(0, end-400, end)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 4 {
		t.Fatalf("recent history damaged by age pruning: got %d checkpoints, want 4", len(cps))
	}
	st.Close()
}

func TestStoreCloseSealsActive(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, Options{})
	appendChain(t, st, 0, 3, 1000)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// The only segment should now carry a valid trailer: openSealed must
	// accept it without a recovery scan.
	seg, ok, err := openSealed(segPath(dir, 1), 1)
	if err != nil || !ok {
		t.Fatalf("active segment not sealed at Close: ok=%v err=%v", ok, err)
	}
	if seg.count != 3 {
		t.Fatalf("sealed trailer says %d records, want 3", seg.count)
	}
}

func TestStoreCloseRemovesEmptyActive(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, Options{})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(names) != 0 {
		t.Fatalf("empty store left %d segment files behind", len(names))
	}
}

func TestStoreEncodedSmallerThanRaw(t *testing.T) {
	st := openTestStore(t, t.TempDir(), Options{})
	defer st.Close()
	rec := buildRecord(t, 21, 20000)
	if err := st.Append(rec); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.EncodedBytes*4 > stats.RawBytes {
		t.Fatalf("encoded %d vs raw %d: less than 4x smaller", stats.EncodedBytes, stats.RawBytes)
	}
}

func TestStoreLazyIndexLoad(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, Options{SegmentBytes: 8 << 10})
	end := appendChain(t, st, 0, 40, 1000)
	st.Close()

	// Reopen: sealed segments must not load their footers until queried.
	st2 := openTestStore(t, dir, Options{SegmentBytes: 8 << 10})
	defer st2.Close()
	st2.mu.Lock()
	for _, seg := range st2.sealed {
		if seg.index != nil {
			st2.mu.Unlock()
			t.Fatal("sealed segment loaded its index eagerly at open")
		}
	}
	nSealed := len(st2.sealed)
	st2.mu.Unlock()
	if nSealed < 2 {
		t.Fatalf("want >= 2 sealed segments for a meaningful lazy-load test, got %d", nSealed)
	}

	// A query near the end must only fault in the overlapping segments.
	if _, err := st2.Covering(0, end-150, end); err != nil {
		t.Fatal(err)
	}
	loaded := 0
	st2.mu.Lock()
	for _, seg := range st2.sealed {
		if seg.index != nil {
			loaded++
		}
	}
	st2.mu.Unlock()
	if loaded == 0 || loaded >= nSealed {
		t.Fatalf("narrow query loaded %d of %d sealed indexes, want some but not all", loaded, nSealed)
	}
}

func TestStoreOpenIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	st := openTestStore(t, dir, Options{})
	defer st.Close()
	appendChain(t, st, 0, 2, 1000)
	if st.Stats().Appended != 2 {
		t.Fatal("store failed to operate alongside foreign files")
	}
}
