// Package qmonitor implements PrintQueue's queue monitor (paper §5): a
// sparse stack, indexed by queue depth, that retains the packets whose
// arrivals brought the queue to its current level — the "original culprits"
// of the congestion regime.
//
// Conceptually the monitor is a register array with one entry per
// buffer-allocation granule of queue depth, plus a stack-top register.
// Whenever a packet changes the observed depth from l1 to l2, its flow ID
// and a monotonically increasing sequence number are written to entry l2 —
// into the entry's upper half for increases, lower half for decreases — and
// the top pointer moves to l2. Stale entries left under the top by earlier,
// higher peaks are removed at query time by the sequence-number staircase
// walk (Filter).
package qmonitor

import (
	"fmt"
	"unsafe"

	"printqueue/internal/flow"
)

// Config parameterizes a queue monitor.
type Config struct {
	// MaxDepthCells is the maximum queue depth to track, in 80-byte cells.
	// Depths beyond it are clamped to the last entry.
	MaxDepthCells int
	// GranuleCells is the buffer-allocation granularity: one register entry
	// covers this many cells of depth. Must divide the array into at least
	// two entries.
	GranuleCells int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MaxDepthCells <= 0 {
		return fmt.Errorf("qmonitor: MaxDepthCells must be > 0, got %d", c.MaxDepthCells)
	}
	if c.GranuleCells <= 0 {
		return fmt.Errorf("qmonitor: GranuleCells must be > 0, got %d", c.GranuleCells)
	}
	if c.Entries() < 2 {
		return fmt.Errorf("qmonitor: fewer than 2 entries (max depth %d, granule %d)", c.MaxDepthCells, c.GranuleCells)
	}
	return nil
}

// Entries returns the register array length: max depth divided by the
// granule, plus the zero level.
func (c Config) Entries() int { return c.MaxDepthCells/c.GranuleCells + 1 }

// Level converts a depth in cells to a register level.
func (c Config) Level(depthCells int) int {
	if depthCells < 0 {
		depthCells = 0
	}
	l := depthCells / c.GranuleCells
	if max := c.Entries() - 1; l > max {
		l = max
	}
	return l
}

// Half is one half of a register entry: the record of the packet that most
// recently moved the queue depth to this level in the given direction.
type Half struct {
	Flow  flow.Key
	Seq   uint64
	Valid bool
}

// Entry is one register entry: the upper half records depth increases
// landing at this level, the lower half records decreases.
type Entry struct {
	Up   Half
	Down Half
}

// Monitor is one register set of the queue monitor. As with the time
// windows, storage may be supplied externally (a register-file partition)
// or allocated privately.
type Monitor struct {
	cfg     Config
	entries []Entry
	top     int    // stack-top pointer: latest observed level
	seq     uint64 // monotonically increasing sequence number
	primed  bool   // whether any packet has been observed
}

// New builds a monitor over the given storage (len == cfg.Entries()), or
// private storage if nil.
func New(cfg Config, storage []Entry) (*Monitor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if storage == nil {
		storage = make([]Entry, cfg.Entries())
	}
	if len(storage) != cfg.Entries() {
		return nil, fmt.Errorf("qmonitor: storage length %d, want %d", len(storage), cfg.Entries())
	}
	return &Monitor{cfg: cfg, entries: storage}, nil
}

// Config returns the monitor's configuration.
func (m *Monitor) Config() Config { return m.cfg }

// Top returns the current stack-top level.
func (m *Monitor) Top() int { return m.top }

// Seq returns the current sequence counter.
func (m *Monitor) Seq() uint64 { return m.seq }

// Adopt seeds the monitor's top/seq state from another register set. The
// control plane uses it when flipping sets so the sequence numbers stay
// globally monotonic and the staircase filter keeps working across flips.
func (m *Monitor) Adopt(top int, seq uint64) {
	m.top = top
	m.seq = seq
	m.primed = true
}

// Observe processes one packet in egress order with the queue depth (in
// cells) it saw at enqueue. If the depth level changed relative to the
// previous packet, the packet's flow is recorded at the new level with the
// next sequence number and the top pointer is updated.
func (m *Monitor) Observe(f flow.Key, enqDepthCells int) {
	l2 := m.cfg.Level(enqDepthCells)
	if m.primed && l2 == m.top {
		return
	}
	rising := !m.primed || l2 > m.top
	m.primed = true
	m.seq++
	if rising {
		m.entries[l2].Up = Half{Flow: f, Seq: m.seq, Valid: true}
	} else {
		m.entries[l2].Down = Half{Flow: f, Seq: m.seq, Valid: true}
	}
	m.top = l2
}

// Snapshot copies the register state for query execution.
func (m *Monitor) Snapshot() *Snapshot {
	entries := make([]Entry, len(m.entries))
	copy(entries, m.entries)
	return &Snapshot{cfg: m.cfg, entries: entries, top: m.top}
}

// EntriesPerSnapshot returns the register entries read per snapshot (the
// array plus the top-pointer register).
func (c Config) EntriesPerSnapshot() int { return c.Entries() + 1 }

// Snapshot is a frozen copy of a queue monitor register set.
type Snapshot struct {
	cfg     Config
	entries []Entry
	top     int
}

// Config returns the snapshot's configuration.
func (s *Snapshot) Config() Config { return s.cfg }

// Top returns the snapshot's stack-top level.
func (s *Snapshot) Top() int { return s.top }

// Entries exposes the snapshot's raw register entries, indexed by level.
// The caller must treat them as read-only; the checkpoint codec walks them
// to build its compact on-disk encoding.
func (s *Snapshot) Entries() []Entry { return s.entries }

// NewSnapshot reconstitutes a Snapshot from decoded register contents — the
// inverse of Entries(), used by the on-disk checkpoint codec. The entries
// slice is adopted, not copied, and must hold exactly cfg.Entries() entries.
// A snapshot rebuilt this way is bit-identical to the one it was encoded
// from: Merge, OriginalCulprits, and the staircase filter see the same state.
func NewSnapshot(cfg Config, entries []Entry, top int) (*Snapshot, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(entries) != cfg.Entries() {
		return nil, fmt.Errorf("qmonitor: snapshot length %d, want %d", len(entries), cfg.Entries())
	}
	if top < 0 || top >= len(entries) {
		return nil, fmt.Errorf("qmonitor: snapshot top %d out of range [0,%d)", top, len(entries))
	}
	return &Snapshot{cfg: cfg, entries: entries, top: top}, nil
}

// entryMemBytes is the in-memory footprint of one register entry, used by
// the MemBytes estimate.
var entryMemBytes = int64(unsafe.Sizeof(Entry{}))

// MemBytes estimates the resident size of the snapshot — the register copy
// plus its slice header — for the history byte budget and the on-disk
// compression ratio.
func (s *Snapshot) MemBytes() int64 {
	return int64(len(s.entries))*entryMemBytes + 24
}

// Culprit is one original culprit: the packet whose arrival raised the
// queue to Level.
type Culprit struct {
	Flow  flow.Key
	Level int
	Seq   uint64
}

// OriginalCulprits walks the array from level 0 to the top pointer,
// tracking the largest sequence number seen so far (over both halves);
// an increase entry survives only if its sequence number exceeds every
// sequence number at lower levels. The surviving entries are exactly the
// packets that built the queue to its current level — stale records from
// earlier, higher peaks are discarded (paper §5 and §6.3).
func (s *Snapshot) OriginalCulprits() []Culprit {
	var out []Culprit
	var maxSeq uint64
	for level := 0; level <= s.top && level < len(s.entries); level++ {
		e := s.entries[level]
		if e.Up.Valid && e.Up.Seq > maxSeq {
			out = append(out, Culprit{Flow: e.Up.Flow, Level: level, Seq: e.Up.Seq})
			maxSeq = e.Up.Seq
		}
		if e.Down.Valid && e.Down.Seq > maxSeq {
			maxSeq = e.Down.Seq
		}
	}
	return out
}

// OriginalCulpritsNoFilter is the ablation variant that returns every valid
// increase entry at or below the top pointer, without the sequence-number
// staircase. Stale peaks then wrongly implicate long-gone packets.
func (s *Snapshot) OriginalCulpritsNoFilter() []Culprit {
	var out []Culprit
	for level := 0; level <= s.top && level < len(s.entries); level++ {
		if e := s.entries[level]; e.Up.Valid {
			out = append(out, Culprit{Flow: e.Up.Flow, Level: level, Seq: e.Up.Seq})
		}
	}
	return out
}

// FlowCounts aggregates culprits per flow, the paper's reporting format.
func FlowCounts(culprits []Culprit) flow.Counts {
	c := make(flow.Counts, len(culprits))
	for _, cu := range culprits {
		c.Add(cu.Flow, 1)
	}
	return c
}

// Merge combines two snapshots of the same configuration by keeping, per
// level and half, the record with the larger sequence number, and the later
// top pointer (by the monitor's global sequence ordering). The control
// plane merges the current and previous checkpoints so original culprits
// recorded before a register-set flip are not lost.
func Merge(a, b *Snapshot) *Snapshot {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.cfg != b.cfg {
		panic("qmonitor: merging snapshots with different configs")
	}
	out := &Snapshot{cfg: a.cfg, entries: make([]Entry, len(a.entries))}
	for i := range out.entries {
		ea, eb := a.entries[i], b.entries[i]
		out.entries[i].Up = newerHalf(ea.Up, eb.Up)
		out.entries[i].Down = newerHalf(ea.Down, eb.Down)
	}
	// The snapshot with the larger maximum sequence number is the more
	// recent one; its top pointer reflects the current queue level.
	if maxSeq(b) >= maxSeq(a) {
		out.top = b.top
	} else {
		out.top = a.top
	}
	return out
}

func newerHalf(a, b Half) Half {
	switch {
	case !a.Valid:
		return b
	case !b.Valid:
		return a
	case b.Seq > a.Seq:
		return b
	default:
		return a
	}
}

func maxSeq(s *Snapshot) uint64 {
	var m uint64
	for _, e := range s.entries {
		if e.Up.Valid && e.Up.Seq > m {
			m = e.Up.Seq
		}
		if e.Down.Valid && e.Down.Seq > m {
			m = e.Down.Seq
		}
	}
	return m
}
