package qmonitor

import (
	"math/rand/v2"
	"testing"

	"printqueue/internal/flow"
)

func fkey(c byte) flow.Key {
	return flow.Key{
		SrcIP:   [4]byte{10, 0, 0, c},
		DstIP:   [4]byte{10, 0, 1, 1},
		SrcPort: 1000,
		DstPort: 80,
		Proto:   flow.ProtoTCP,
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		cfg Config
		ok  bool
	}{
		{Config{MaxDepthCells: 32768, GranuleCells: 2}, true},
		{Config{MaxDepthCells: 0, GranuleCells: 2}, false},
		{Config{MaxDepthCells: 100, GranuleCells: 0}, false},
		{Config{MaxDepthCells: 1, GranuleCells: 2}, false}, // < 2 entries
	}
	for _, tt := range tests {
		if err := tt.cfg.Validate(); (err == nil) != tt.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", tt.cfg, err, tt.ok)
		}
	}
}

func TestLevel(t *testing.T) {
	c := Config{MaxDepthCells: 100, GranuleCells: 10}
	if got := c.Entries(); got != 11 {
		t.Fatalf("Entries = %d, want 11", got)
	}
	tests := []struct{ depth, want int }{
		{-5, 0}, {0, 0}, {9, 0}, {10, 1}, {99, 9}, {100, 10}, {5000, 10},
	}
	for _, tt := range tests {
		if got := c.Level(tt.depth); got != tt.want {
			t.Errorf("Level(%d) = %d, want %d", tt.depth, got, tt.want)
		}
	}
}

func mon(t *testing.T) *Monitor {
	t.Helper()
	m, err := New(Config{MaxDepthCells: 100, GranuleCells: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFigure7 reproduces the paper's queue-monitor example: packet A brings
// the queue to 2, B to 5, the queue drains back to 2 (observed by C), and D
// brings it to 7. The filtered original culprits are A and D; B's entry at
// level 5 is stale.
func TestFigure7(t *testing.T) {
	m, err := New(Config{MaxDepthCells: 10, GranuleCells: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	A, B, C, D := fkey('A'), fkey('B'), fkey('C'), fkey('D')
	m.Observe(A, 2) // rise to 2
	m.Observe(B, 5) // rise to 5
	m.Observe(C, 2) // drain back to 2
	m.Observe(D, 7) // rise to 7
	snap := m.Snapshot()
	if snap.Top() != 7 {
		t.Fatalf("top = %d, want 7", snap.Top())
	}
	culprits := snap.OriginalCulprits()
	counts := FlowCounts(culprits)
	if len(counts) != 2 || counts[A] != 1 || counts[D] != 1 {
		t.Fatalf("culprits = %v, want {A, D}", counts)
	}
	// The unfiltered ablation wrongly includes B's stale peak.
	noFilter := FlowCounts(snap.OriginalCulpritsNoFilter())
	if noFilter[B] != 1 {
		t.Fatalf("no-filter ablation = %v, want B included", noFilter)
	}
}

func TestEqualLevelIgnored(t *testing.T) {
	m := mon(t)
	m.Observe(fkey('A'), 30)
	seq := m.Seq()
	m.Observe(fkey('B'), 35) // same level (3): no update
	if m.Seq() != seq {
		t.Fatal("equal-level observation advanced the sequence counter")
	}
	counts := FlowCounts(m.Snapshot().OriginalCulprits())
	if counts[fkey('A')] != 1 || counts[fkey('B')] != 0 {
		t.Fatalf("counts = %v, want only A", counts)
	}
}

func TestFirstObservationPrimes(t *testing.T) {
	m := mon(t)
	// The first packet ever observed is recorded even at level 0.
	m.Observe(fkey('A'), 5)
	if m.Top() != 0 {
		t.Fatalf("top = %d, want 0", m.Top())
	}
	culprits := m.Snapshot().OriginalCulprits()
	if len(culprits) != 1 || culprits[0].Flow != fkey('A') {
		t.Fatalf("culprits = %v, want A at level 0", culprits)
	}
}

func TestDrainRiseDrainRise(t *testing.T) {
	m := mon(t)
	A, B, C, D := fkey('A'), fkey('B'), fkey('C'), fkey('D')
	m.Observe(A, 20)  // level 2
	m.Observe(B, 100) // level 10
	m.Observe(C, 40)  // drain to level 4
	m.Observe(D, 70)  // rise to level 7
	counts := FlowCounts(m.Snapshot().OriginalCulprits())
	// A (level 2) still culpable; B's level-10 record is above top; D
	// explains 7. B wrote only at level 10, so levels 3..4 have no entry.
	if counts[A] != 1 || counts[D] != 1 || counts[B] != 0 {
		t.Fatalf("counts = %v, want A and D", counts)
	}
}

func TestAdoptContinuity(t *testing.T) {
	// Split observations across two register sets, as the control plane's
	// periodic flip does, and check the merged snapshot equals the
	// single-set result.
	single := mon(t)
	a := mon(t)
	b := mon(t)
	obs := []struct {
		f     flow.Key
		depth int
	}{
		{fkey('A'), 20}, {fkey('B'), 50}, {fkey('C'), 30}, {fkey('D'), 80}, {fkey('E'), 60}, {fkey('F'), 90},
	}
	for _, o := range obs {
		single.Observe(o.f, o.depth)
	}
	for _, o := range obs[:3] {
		a.Observe(o.f, o.depth)
	}
	b.Adopt(a.Top(), a.Seq())
	for _, o := range obs[3:] {
		b.Observe(o.f, o.depth)
	}
	want := FlowCounts(single.Snapshot().OriginalCulprits())
	got := FlowCounts(Merge(a.Snapshot(), b.Snapshot()).OriginalCulprits())
	if len(want) != len(got) {
		t.Fatalf("merged %v, single-set %v", got, want)
	}
	for f, n := range want {
		if got[f] != n {
			t.Fatalf("merged %v, single-set %v", got, want)
		}
	}
}

func TestMergeNil(t *testing.T) {
	m := mon(t)
	m.Observe(fkey('A'), 20)
	s := m.Snapshot()
	if Merge(nil, s) != s || Merge(s, nil) != s {
		t.Fatal("merge with nil should return the other snapshot")
	}
}

// TestStaircaseInvariant property-checks the filter: surviving culprits
// have strictly increasing levels AND strictly increasing sequence numbers,
// and the count never exceeds top+1.
func TestStaircaseInvariant(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	for trial := 0; trial < 200; trial++ {
		m, err := New(Config{MaxDepthCells: 64, GranuleCells: 1}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			m.Observe(fkey(byte(rng.IntN(26))+'A'), rng.IntN(64))
		}
		snap := m.Snapshot()
		culprits := snap.OriginalCulprits()
		if len(culprits) > snap.Top()+1 {
			t.Fatalf("%d culprits for top %d", len(culprits), snap.Top())
		}
		for i := 1; i < len(culprits); i++ {
			if culprits[i].Level <= culprits[i-1].Level {
				t.Fatalf("levels not increasing: %v", culprits)
			}
			if culprits[i].Seq <= culprits[i-1].Seq {
				t.Fatalf("seqs not increasing: %v", culprits)
			}
		}
	}
}

func TestStorageValidation(t *testing.T) {
	cfg := Config{MaxDepthCells: 100, GranuleCells: 10}
	if _, err := New(cfg, make([]Entry, 5)); err == nil {
		t.Fatal("wrong storage length accepted")
	}
	if _, err := New(cfg, make([]Entry, cfg.Entries())); err != nil {
		t.Fatalf("exact storage rejected: %v", err)
	}
}

func TestEntriesPerSnapshot(t *testing.T) {
	cfg := Config{MaxDepthCells: 100, GranuleCells: 10}
	if got := cfg.EntriesPerSnapshot(); got != 12 { // 11 entries + top
		t.Fatalf("EntriesPerSnapshot = %d, want 12", got)
	}
}
