package control

// This file holds the checkpoint-history containers and the cold-tier query
// glue: the O(1) retirement ring for the hot (in-RAM) tier, and the bridge
// from interval queries to the durable histstore segment log.

import (
	"sort"

	"printqueue/internal/core/histstore"
	"printqueue/internal/core/timewindow"
)

// cpRing is a growable ring buffer of checkpoints ordered oldest to newest.
// While the history is unbounded (max == 0) it doubles like a slice; once
// it reaches the configured bound, every push overwrites the oldest slot in
// place, so steady-state retirement does no copying and recycles no memory
// beyond the evicted checkpoint itself.
type cpRing struct {
	buf  []*Checkpoint
	head int // index of the oldest checkpoint
	n    int
}

// push appends cp. When the ring already holds max checkpoints (max > 0),
// the oldest is overwritten in place and returned.
func (r *cpRing) push(cp *Checkpoint, max int) (evicted *Checkpoint) {
	if max > 0 && r.n >= max {
		evicted = r.buf[r.head]
		r.buf[r.head] = cp
		r.head = r.next(r.head)
		return evicted
	}
	if r.n == len(r.buf) {
		r.grow(max)
	}
	r.buf[(r.head+r.n)%len(r.buf)] = cp
	r.n++
	return nil
}

// grow reallocates to double capacity (bounded by max when set),
// straightening the ring so head returns to 0.
func (r *cpRing) grow(max int) {
	newCap := len(r.buf) * 2
	if newCap < 8 {
		newCap = 8
	}
	if max > 0 && newCap > max {
		newCap = max
	}
	buf := make([]*Checkpoint, newCap)
	for i := 0; i < r.n; i++ {
		buf[i] = r.at(i)
	}
	r.buf = buf
	r.head = 0
}

func (r *cpRing) next(i int) int {
	if i++; i == len(r.buf) {
		return 0
	}
	return i
}

// at returns the i-th oldest checkpoint.
func (r *cpRing) at(i int) *Checkpoint { return r.buf[(r.head+i)%len(r.buf)] }

func (r *cpRing) len() int { return r.n }

// slice copies the ring, oldest first, into a fresh slice.
func (r *cpRing) slice() []*Checkpoint {
	out := make([]*Checkpoint, r.n)
	for i := range out {
		out[i] = r.at(i)
	}
	return out
}

// pruneCopy is pruneCheckpoints over the ring: it binary-searches the
// logical (oldest-first) order for the run overlapping [start, end) —
// relying on the same monotone FreezeTime/PrevFreeze invariants — and
// copies only that run.
func (r *cpRing) pruneCopy(start, end uint64) []*Checkpoint {
	lo := sort.Search(r.n, func(i int) bool { return r.at(i).FreezeTime > start })
	hi := sort.Search(r.n, func(i int) bool { return r.at(i).PrevFreeze >= end })
	if hi < lo {
		hi = lo
	}
	out := make([]*Checkpoint, hi-lo)
	for i := range out {
		out[i] = r.at(lo + i)
	}
	return out
}

// coldRun fetches the cold-tier checkpoints for a query over [start, end)
// whose hot tier starts covering at hotStart. The tiers partition trace
// time exactly at hotStart — every checkpoint at or below it has been
// retired into the log, every one above it is in RAM — so the cold
// contribution is clamped to [start, min(end, hotStart)) and nothing is
// counted twice. Returns nil when the store is absent, the interval is
// fully hot, or the store errors (queries degrade to hot-only rather than
// fail; decode errors are counted by the store).
func (s *System) coldRun(port int, start, end, hotStart uint64) ([]*histstore.ColdCheckpoint, uint64) {
	coldEnd := end
	if hotStart < coldEnd {
		coldEnd = hotStart
	}
	if s.hist == nil || coldEnd <= start {
		return nil, coldEnd
	}
	cold, err := s.hist.Covering(port, start, coldEnd)
	if err != nil {
		return nil, coldEnd
	}
	s.qpath.coldCheckpoints.Add(int64(len(cold)))
	return cold, coldEnd
}

// accumulateCold folds the cold checkpoints' clamped coverages into acc,
// mirroring accumulateRun for the hot tier; coldEnd caps every coverage at
// the hot tier's start. Integer accumulation makes the tier split
// commutative: the merged result is bit-identical to a query over a pure
// in-RAM history holding the same checkpoints.
func accumulateCold(acc *timewindow.Accumulator, cold []*histstore.ColdCheckpoint, start, coldEnd uint64) int {
	visited := 0
	for _, cc := range cold {
		rec := cc.Record()
		lo, hi := start, coldEnd
		if rec.PrevFreeze > lo {
			lo = rec.PrevFreeze
		}
		if rec.FreezeTime < hi {
			hi = rec.FreezeTime
		}
		if hi <= lo {
			continue
		}
		visited += cc.Filtered().AccumulateInto(acc, lo, hi)
	}
	return visited
}

// HistoryStats returns the durable history store's statistics; ok is false
// when the tiered history is disabled.
func (s *System) HistoryStats() (histstore.Stats, bool) {
	if s.hist == nil {
		return histstore.Stats{}, false
	}
	return s.hist.Stats(), true
}

// HistoryBytes returns the resident bytes of checkpoint history across the
// hot tier and the cold-tier LRU (the printqueue_history_bytes gauge).
func (s *System) HistoryBytes() int64 { return s.histBytes.Load() }

// Close releases the system's durable resources: it seals and closes the
// history store (if enabled). The in-RAM system remains queryable. Callers
// running a Pipeline must close it first.
func (s *System) Close() error {
	if s.hist == nil {
		return nil
	}
	return s.hist.Close()
}
