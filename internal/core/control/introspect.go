package control

import "printqueue/internal/core/histstore"

// This file builds the /debug/pipeline introspection snapshot: a JSON-able
// view of the deployment's shape (ports, shard assignment, ring state) and
// live accounting, for operators who want structure rather than the flat
// /metrics samples.

// Introspection is a point-in-time view of a System. All numbers are read
// from atomics or under the per-port history locks; it is safe to build
// while traffic flows.
type Introspection struct {
	PollPeriodNs  uint64     `json:"poll_period_ns"`
	QueuesPerPort int        `json:"queues_per_port"`
	Ports         []PortInfo `json:"ports"`
	// Pipeline is nil while the system ingests synchronously.
	Pipeline *PipelineInfo `json:"pipeline,omitempty"`
	// History is nil unless the tiered checkpoint history is enabled.
	History *HistoryInfo `json:"history,omitempty"`
	Stats   Stats        `json:"stats"`
}

// HistoryInfo is the durable history store's state plus the resident bytes
// of checkpoint history across both tiers.
type HistoryInfo struct {
	histstore.Stats
	ResidentBytes int64 `json:"resident_bytes"`
}

// PortInfo is one activated port's accounting.
type PortInfo struct {
	Port        int   `json:"port"`
	Packets     int64 `json:"packets"`
	Checkpoints int   `json:"checkpoints"`
	DPQueries   int   `json:"dp_queries"`
}

// PipelineInfo describes an open ingestion pipeline.
type PipelineInfo struct {
	Shards    int         `json:"shards"`
	BatchSize int         `json:"batch_size"`
	RingDepth int         `json:"ring_depth"`
	PerShard  []ShardInfo `json:"per_shard"`
}

// ShardInfo is one shard worker's queue state and throughput counters.
type ShardInfo struct {
	Shard             int   `json:"shard"`
	Ports             []int `json:"ports"`
	RingLen           int64 `json:"ring_len"`
	RingCap           int   `json:"ring_cap"`
	RingHighWatermark int64 `json:"ring_high_watermark"`
	Batches           int64 `json:"batches"`
	Packets           int64 `json:"packets"`
	BackpressureNs    int64 `json:"backpressure_ns"`
}

// Introspect assembles the current snapshot.
func (s *System) Introspect() Introspection {
	in := Introspection{
		PollPeriodNs:  s.cfg.PollPeriodNs,
		QueuesPerPort: s.cfg.QueuesPerPort,
		Stats:         s.Stats(),
	}
	for _, port := range s.cfg.Ports {
		ps := s.ports[port]
		ps.mu.RLock()
		ncp, ndq := ps.checkpoints.len(), len(ps.dpQueries)
		ps.mu.RUnlock()
		in.Ports = append(in.Ports, PortInfo{
			Port:        port,
			Packets:     ps.packets.Load(),
			Checkpoints: ncp,
			DPQueries:   ndq,
		})
	}
	if st, ok := s.HistoryStats(); ok {
		in.History = &HistoryInfo{Stats: st, ResidentBytes: s.HistoryBytes()}
	}
	if pl := s.pipe.Load(); pl != nil {
		pi := &PipelineInfo{
			Shards:    pl.cfg.Shards,
			BatchSize: pl.cfg.BatchSize,
			RingDepth: pl.cfg.RingDepth,
		}
		portsOf := make([][]int, pl.cfg.Shards)
		for rank, port := range s.cfg.Ports {
			sh := rank % pl.cfg.Shards
			portsOf[sh] = append(portsOf[sh], port)
		}
		for i, sh := range pl.shards {
			pi.PerShard = append(pi.PerShard, ShardInfo{
				Shard:             i,
				Ports:             portsOf[i],
				RingLen:           sh.ring.len(),
				RingCap:           len(sh.ring.buf),
				RingHighWatermark: sh.highWater.Load(),
				Batches:           sh.batches.Load(),
				Packets:           sh.packets.Load(),
				BackpressureNs:    sh.backpressureNs.Load(),
			})
		}
		in.Pipeline = pi
	}
	return in
}
