package control

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/bits"
	"strconv"
	"strings"
	"sync"

	"printqueue/internal/tracing"
)

// Wire protocol v2: a length-prefixed binary framing for the query plane.
//
// The v1 protocol (newline-delimited JSON, one outstanding request per
// connection) pays a full serialize/RTT/parse round trip per query, so a
// narrow diagnosis query that takes ~1µs to *compute* costs tens of
// microseconds to *deliver*. v2 frames allow true multiplexing — many
// requests in flight over one connection, answered in completion order —
// plus a batch op that carries many queries in a single frame.
//
// Frame layout (both directions):
//
//	+-------+------+----------------+-----------------+
//	| magic |  op  | payload length |     payload     |
//	| 0xB1  | 1 B  |  uint32 BE     | length bytes    |
//	+-------+------+----------------+-----------------+
//
// The magic byte 0xB1 can never begin a JSON request (which starts with
// '{' or whitespace), so a server can sniff the first byte of a connection
// and fall back to the v1 JSON line protocol — the negotiated-fallback
// path old clients keep using.
//
// Payloads are varint-packed:
//
//	opQuery:      id, kind(1B), port, queue, start, end
//	opBatch:      id, n, then n × (kind(1B), port, queue, start, end)
//	opReply:      id, status(1B); status 1 → errlen, error bytes
//	                              status 0 → counts (below)
//	opBatchReply: id, n, then n × reply body (status + error/counts)
//
// Count maps encode as n × (keylen, key bytes, countbits) where countbits
// is ReverseBytes64(Float64bits(v)) varint-packed: typical counts are
// small integers or low-precision fractions whose mantissa tail is zero,
// so the byte-reversed bit pattern is tiny and the varint stays 1–3 bytes
// instead of a fixed 8. Keys are copied straight from the flow-string map
// key into the frame — no map → JSON round trip, no per-key allocation.
const (
	frameMagic byte = 0xB1

	opQuery      byte = 0x01
	opBatch      byte = 0x02
	opReply      byte = 0x81
	opBatchReply byte = 0x82

	// Traced variants (PR 7). A traced request carries the client's
	// 64-bit trace id after the request id; a traced reply carries the
	// server-side span list before the reply body. Untraced frames stay
	// byte-identical to v2, so tracing-off costs nothing on the wire and
	// old peers are unaffected (they simply never send the traced ops).
	opQueryT      byte = 0x11
	opBatchT      byte = 0x12
	opReplyT      byte = 0x91
	opBatchReplyT byte = 0x92

	// frameHeaderLen is magic + op + uint32 payload length.
	frameHeaderLen = 6

	// maxFramePayload bounds one frame's payload; a reply carrying every
	// flow of a huge history fits well under it, and a torn or hostile
	// length field cannot make a peer allocate unbounded memory.
	maxFramePayload = 1 << 24

	// maxBatch bounds the query count in one batch frame.
	maxBatch = 1 << 16

	// maxWireSpans bounds the span count in one traced reply so hostile
	// input cannot force a huge allocation.
	maxWireSpans = 1 << 10
)

// Frame-level decode errors. They mean the stream itself can no longer be
// trusted — unlike an application error, which travels inside a reply —
// so both peers treat them as poison: the server drops the connection, the
// client fails pending requests and redials.
var (
	errBadMagic  = errors.New("control: bad frame magic")
	errFrameSize = errors.New("control: frame exceeds size limit")
	errTruncated = errors.New("control: truncated frame payload")
)

// isFrameErr reports whether err is a protocol-level decode failure (as
// opposed to an I/O error).
func isFrameErr(err error) bool {
	return errors.Is(err, errBadMagic) || errors.Is(err, errFrameSize) || errors.Is(err, errTruncated)
}

// wireBufPool recycles frame encode buffers and per-connection scratch.
// Entries are pointers so Put does not allocate a box per call.
var wireBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

func getBuf() []byte {
	return (*wireBufPool.Get().(*[]byte))[:0]
}

func putBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxFramePayload {
		return // don't pin giant one-off buffers in the pool
	}
	b = b[:0]
	wireBufPool.Put(&b)
}

// readerPool recycles per-connection bufio.Readers so accepting (or
// redialing) a connection stops allocating a fresh 4 KiB buffer each time.
var readerPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(nilReader, 4096) },
}

// nilReader detaches a pooled bufio.Reader from its connection so the pool
// does not pin closed conns.
var nilReader = strings.NewReader("")

func getReader(r io.Reader) *bufio.Reader {
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(r)
	return br
}

func putReader(br *bufio.Reader) {
	br.Reset(nilReader)
	readerPool.Put(br)
}

// beginFrame appends a frame header with a zero length placeholder and
// returns the payload start offset for endFrame to patch.
func beginFrame(b []byte, op byte) ([]byte, int) {
	b = append(b, frameMagic, op, 0, 0, 0, 0)
	return b, len(b)
}

// endFrame patches the payload length of the frame opened at payloadStart.
func endFrame(b []byte, payloadStart int) []byte {
	binary.BigEndian.PutUint32(b[payloadStart-4:payloadStart], uint32(len(b)-payloadStart))
	return b
}

// readFrame reads one frame, reusing scratch's capacity for the payload.
// The returned payload is only valid until the next readFrame on the same
// scratch; callers must fully decode before reading again.
func readFrame(br *bufio.Reader, scratch []byte, maxPayload int) (op byte, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, scratch, err
	}
	if hdr[0] != frameMagic {
		return 0, scratch, errBadMagic
	}
	n := int(binary.BigEndian.Uint32(hdr[2:frameHeaderLen]))
	if n > maxPayload {
		return 0, scratch, fmt.Errorf("%w: %d bytes", errFrameSize, n)
	}
	if cap(scratch) < n {
		scratch = make([]byte, n)
	}
	payload = scratch[:n]
	if _, err := io.ReadFull(br, payload); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return 0, payload, err
	}
	return hdr[1], payload, nil
}

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// uvarint decodes one varint from p, returning the remainder.
func uvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, errTruncated
	}
	return v, p[n:], nil
}

// uvarintInt decodes a varint that must fit a non-negative int32-ranged
// int (ports, queues, counts) so hostile input cannot wrap negative.
func uvarintInt(p []byte) (int, []byte, error) {
	v, rest, err := uvarint(p)
	if err != nil {
		return 0, nil, err
	}
	if v > math.MaxInt32 {
		return 0, nil, errTruncated
	}
	return int(v), rest, nil
}

// countBits maps a float64 count to its varint-friendly wire form and back:
// byte-reversing the IEEE bits moves the (usually zero) mantissa tail into
// the high bits, so whole and low-precision counts varint-pack in a byte
// or three.
func countBits(v float64) uint64             { return bits.ReverseBytes64(math.Float64bits(v)) }
func countFromBits(u uint64) float64         { return math.Float64frombits(bits.ReverseBytes64(u)) }
func appendCount(b []byte, v float64) []byte { return appendUvarint(b, countBits(v)) }

// appendCounts encodes a count map as n × (keylen, key, countbits).
func appendCounts(b []byte, counts map[string]float64) []byte {
	b = appendUvarint(b, uint64(len(counts)))
	for k, v := range counts {
		b = appendUvarint(b, uint64(len(k)))
		b = append(b, k...)
		b = appendCount(b, v)
	}
	return b
}

// decodeCounts decodes a count map, returning the remainder of p.
func decodeCounts(p []byte) (map[string]float64, []byte, error) {
	n, p, err := uvarintInt(p)
	if err != nil {
		return nil, nil, err
	}
	m := make(map[string]float64, n)
	for i := 0; i < n; i++ {
		var klen int
		klen, p, err = uvarintInt(p)
		if err != nil {
			return nil, nil, err
		}
		if klen > len(p) {
			return nil, nil, errTruncated
		}
		key := string(p[:klen])
		p = p[klen:]
		var u uint64
		u, p, err = uvarint(p)
		if err != nil {
			return nil, nil, err
		}
		m[key] = countFromBits(u)
	}
	return m, p, nil
}

// BatchQuery is one query inside a batch frame (and the internal form of a
// single binary query). For OriginalQuery the instant goes in Start.
type BatchQuery struct {
	Kind        QueryKind
	Port, Queue int
	Start, End  uint64
}

// BatchResult is one query's answer inside a batch reply.
type BatchResult struct {
	Counts map[string]float64
	Err    error
}

// appendQueryBody encodes one query tuple (shared by opQuery and opBatch).
func appendQueryBody(b []byte, q BatchQuery) []byte {
	b = append(b, byte(q.Kind))
	b = appendUvarint(b, uint64(q.Port))
	b = appendUvarint(b, uint64(q.Queue))
	b = appendUvarint(b, q.Start)
	b = appendUvarint(b, q.End)
	return b
}

// decodeQueryBody decodes one query tuple, returning the remainder.
func decodeQueryBody(p []byte) (BatchQuery, []byte, error) {
	var q BatchQuery
	if len(p) < 1 {
		return q, nil, errTruncated
	}
	kind := p[0]
	if kind > byte(OriginalQuery) {
		return q, nil, fmt.Errorf("%w: unknown query kind %d", errTruncated, kind)
	}
	q.Kind = QueryKind(kind)
	p = p[1:]
	var err error
	if q.Port, p, err = uvarintInt(p); err != nil {
		return q, nil, err
	}
	if q.Queue, p, err = uvarintInt(p); err != nil {
		return q, nil, err
	}
	if q.Start, p, err = uvarint(p); err != nil {
		return q, nil, err
	}
	if q.End, p, err = uvarint(p); err != nil {
		return q, nil, err
	}
	return q, p, nil
}

// appendQueryFrame encodes a single-query request frame.
func appendQueryFrame(b []byte, id uint64, q BatchQuery) []byte {
	b, at := beginFrame(b, opQuery)
	b = appendUvarint(b, id)
	b = appendQueryBody(b, q)
	return endFrame(b, at)
}

// decodeQueryRequest decodes an opQuery payload.
func decodeQueryRequest(p []byte) (id uint64, q BatchQuery, err error) {
	if id, p, err = uvarint(p); err != nil {
		return 0, q, err
	}
	if q, p, err = decodeQueryBody(p); err != nil {
		return 0, q, err
	}
	if len(p) != 0 {
		return 0, q, errTruncated
	}
	return id, q, nil
}

// appendBatchFrame encodes a batch request frame: many queries, one id,
// one round trip.
func appendBatchFrame(b []byte, id uint64, qs []BatchQuery) []byte {
	b, at := beginFrame(b, opBatch)
	b = appendUvarint(b, id)
	b = appendUvarint(b, uint64(len(qs)))
	for _, q := range qs {
		b = appendQueryBody(b, q)
	}
	return endFrame(b, at)
}

// decodeBatchRequest decodes an opBatch payload.
func decodeBatchRequest(p []byte) (id uint64, qs []BatchQuery, err error) {
	if id, p, err = uvarint(p); err != nil {
		return 0, nil, err
	}
	n, p, err := uvarintInt(p)
	if err != nil {
		return 0, nil, err
	}
	if n > maxBatch {
		return 0, nil, fmt.Errorf("%w: batch of %d queries", errFrameSize, n)
	}
	qs = make([]BatchQuery, n)
	for i := range qs {
		if qs[i], p, err = decodeQueryBody(p); err != nil {
			return 0, nil, err
		}
	}
	if len(p) != 0 {
		return 0, nil, errTruncated
	}
	return id, qs, nil
}

// appendReplyBody encodes one reply body: status byte, then error string
// or counts.
func appendReplyBody(b []byte, resp NetResponse) []byte {
	if resp.Error != "" {
		b = append(b, 1)
		b = appendUvarint(b, uint64(len(resp.Error)))
		b = append(b, resp.Error...)
		return b
	}
	b = append(b, 0)
	return appendCounts(b, resp.Counts)
}

// decodeReplyBody decodes one reply body, returning the remainder. An
// error reply comes back with a non-nil Err and nil Counts; an ok reply
// always has a non-nil (possibly empty) Counts map, matching the JSON
// client's normalization.
func decodeReplyBody(p []byte) (BatchResult, []byte, error) {
	var r BatchResult
	if len(p) < 1 {
		return r, nil, errTruncated
	}
	status := p[0]
	p = p[1:]
	switch status {
	case 0:
		var err error
		if r.Counts, p, err = decodeCounts(p); err != nil {
			return r, nil, err
		}
	case 1:
		elen, p2, err := uvarintInt(p)
		if err != nil {
			return r, nil, err
		}
		if elen > len(p2) {
			return r, nil, errTruncated
		}
		msg := string(p2[:elen])
		p = p2[elen:]
		if msg == ErrOverloaded.Error() {
			r.Err = ErrOverloaded
		} else {
			r.Err = errors.New(msg)
		}
	default:
		return r, nil, fmt.Errorf("%w: unknown reply status %d", errTruncated, status)
	}
	return r, p, nil
}

// appendReplyFrame encodes a single-query reply frame.
func appendReplyFrame(b []byte, id uint64, resp NetResponse) []byte {
	b, at := beginFrame(b, opReply)
	b = appendUvarint(b, id)
	b = appendReplyBody(b, resp)
	return endFrame(b, at)
}

// decodeReply decodes an opReply payload.
func decodeReply(p []byte) (id uint64, r BatchResult, err error) {
	if id, p, err = uvarint(p); err != nil {
		return 0, r, err
	}
	if r, p, err = decodeReplyBody(p); err != nil {
		return 0, r, err
	}
	if len(p) != 0 {
		return 0, r, errTruncated
	}
	return id, r, nil
}

// appendBatchReplyFrame encodes a batch reply frame: one body per query,
// in request order.
func appendBatchReplyFrame(b []byte, id uint64, resps []NetResponse) []byte {
	b, at := beginFrame(b, opBatchReply)
	b = appendUvarint(b, id)
	b = appendUvarint(b, uint64(len(resps)))
	for _, resp := range resps {
		b = appendReplyBody(b, resp)
	}
	return endFrame(b, at)
}

// decodeBatchReply decodes an opBatchReply payload.
func decodeBatchReply(p []byte) (id uint64, rs []BatchResult, err error) {
	if id, p, err = uvarint(p); err != nil {
		return 0, nil, err
	}
	n, p, err := uvarintInt(p)
	if err != nil {
		return 0, nil, err
	}
	if n > maxBatch {
		return 0, nil, fmt.Errorf("%w: batch reply of %d results", errFrameSize, n)
	}
	rs = make([]BatchResult, n)
	for i := range rs {
		if rs[i], p, err = decodeReplyBody(p); err != nil {
			return 0, nil, err
		}
	}
	if len(p) != 0 {
		return 0, nil, errTruncated
	}
	return id, rs, nil
}

// --- Traced frames ---
//
// Span lists encode as n × (namelen, name bytes, startNs, durNs), all
// varint-packed. Src is implied: spans on a reply were recorded by the
// server, so the decoder stamps tracing.SrcServer. Traced frames are
// only emitted for sampled queries, so their (small) per-span
// allocations never touch the untraced hot path.

// appendSpans encodes a span list.
func appendSpans(b []byte, spans []tracing.Span) []byte {
	if len(spans) > maxWireSpans {
		spans = spans[:maxWireSpans]
	}
	b = appendUvarint(b, uint64(len(spans)))
	for _, sp := range spans {
		b = appendUvarint(b, uint64(len(sp.Name)))
		b = append(b, sp.Name...)
		b = appendUvarint(b, sp.Start)
		b = appendUvarint(b, sp.Dur)
	}
	return b
}

// decodeSpans decodes a span list, stamping src on each span.
func decodeSpans(p []byte, src string) ([]tracing.Span, []byte, error) {
	n, p, err := uvarintInt(p)
	if err != nil {
		return nil, nil, err
	}
	if n > maxWireSpans {
		return nil, nil, fmt.Errorf("%w: %d spans", errFrameSize, n)
	}
	spans := make([]tracing.Span, n)
	for i := range spans {
		var nlen int
		nlen, p, err = uvarintInt(p)
		if err != nil {
			return nil, nil, err
		}
		if nlen > len(p) {
			return nil, nil, errTruncated
		}
		spans[i].Name = string(p[:nlen])
		spans[i].Src = src
		p = p[nlen:]
		if spans[i].Start, p, err = uvarint(p); err != nil {
			return nil, nil, err
		}
		if spans[i].Dur, p, err = uvarint(p); err != nil {
			return nil, nil, err
		}
	}
	return spans, p, nil
}

// appendQueryTFrame encodes a traced single-query request frame:
// id, traceID, query body.
func appendQueryTFrame(b []byte, id, traceID uint64, q BatchQuery) []byte {
	b, at := beginFrame(b, opQueryT)
	b = appendUvarint(b, id)
	b = appendUvarint(b, traceID)
	b = appendQueryBody(b, q)
	return endFrame(b, at)
}

// decodeQueryRequestT decodes an opQueryT payload.
func decodeQueryRequestT(p []byte) (id, traceID uint64, q BatchQuery, err error) {
	if id, p, err = uvarint(p); err != nil {
		return 0, 0, q, err
	}
	if traceID, p, err = uvarint(p); err != nil {
		return 0, 0, q, err
	}
	if q, p, err = decodeQueryBody(p); err != nil {
		return 0, 0, q, err
	}
	if len(p) != 0 {
		return 0, 0, q, errTruncated
	}
	return id, traceID, q, nil
}

// appendBatchTFrame encodes a traced batch request frame.
func appendBatchTFrame(b []byte, id, traceID uint64, qs []BatchQuery) []byte {
	b, at := beginFrame(b, opBatchT)
	b = appendUvarint(b, id)
	b = appendUvarint(b, traceID)
	b = appendUvarint(b, uint64(len(qs)))
	for _, q := range qs {
		b = appendQueryBody(b, q)
	}
	return endFrame(b, at)
}

// decodeBatchRequestT decodes an opBatchT payload.
func decodeBatchRequestT(p []byte) (id, traceID uint64, qs []BatchQuery, err error) {
	if id, p, err = uvarint(p); err != nil {
		return 0, 0, nil, err
	}
	if traceID, p, err = uvarint(p); err != nil {
		return 0, 0, nil, err
	}
	n, p, err := uvarintInt(p)
	if err != nil {
		return 0, 0, nil, err
	}
	if n > maxBatch {
		return 0, 0, nil, fmt.Errorf("%w: batch of %d queries", errFrameSize, n)
	}
	qs = make([]BatchQuery, n)
	for i := range qs {
		if qs[i], p, err = decodeQueryBody(p); err != nil {
			return 0, 0, nil, err
		}
	}
	if len(p) != 0 {
		return 0, 0, nil, errTruncated
	}
	return id, traceID, qs, nil
}

// appendReplyTFrame encodes a traced single-query reply frame:
// id, spans, reply body.
func appendReplyTFrame(b []byte, id uint64, resp NetResponse, spans []tracing.Span) []byte {
	b, at := beginFrame(b, opReplyT)
	b = appendUvarint(b, id)
	b = appendSpans(b, spans)
	b = appendReplyBody(b, resp)
	return endFrame(b, at)
}

// decodeReplyT decodes an opReplyT payload.
func decodeReplyT(p []byte) (id uint64, r BatchResult, spans []tracing.Span, err error) {
	if id, p, err = uvarint(p); err != nil {
		return 0, r, nil, err
	}
	if spans, p, err = decodeSpans(p, tracing.SrcServer); err != nil {
		return 0, r, nil, err
	}
	if r, p, err = decodeReplyBody(p); err != nil {
		return 0, r, nil, err
	}
	if len(p) != 0 {
		return 0, r, nil, errTruncated
	}
	return id, r, spans, nil
}

// appendBatchReplyTFrame encodes a traced batch reply frame:
// id, spans, n, reply bodies.
func appendBatchReplyTFrame(b []byte, id uint64, resps []NetResponse, spans []tracing.Span) []byte {
	b, at := beginFrame(b, opBatchReplyT)
	b = appendUvarint(b, id)
	b = appendSpans(b, spans)
	b = appendUvarint(b, uint64(len(resps)))
	for _, resp := range resps {
		b = appendReplyBody(b, resp)
	}
	return endFrame(b, at)
}

// decodeBatchReplyT decodes an opBatchReplyT payload.
func decodeBatchReplyT(p []byte) (id uint64, rs []BatchResult, spans []tracing.Span, err error) {
	if id, p, err = uvarint(p); err != nil {
		return 0, nil, nil, err
	}
	if spans, p, err = decodeSpans(p, tracing.SrcServer); err != nil {
		return 0, nil, nil, err
	}
	n, p, err := uvarintInt(p)
	if err != nil {
		return 0, nil, nil, err
	}
	if n > maxBatch {
		return 0, nil, nil, fmt.Errorf("%w: batch reply of %d results", errFrameSize, n)
	}
	rs = make([]BatchResult, n)
	for i := range rs {
		if rs[i], p, err = decodeReplyBody(p); err != nil {
			return 0, nil, nil, err
		}
	}
	if len(p) != 0 {
		return 0, nil, nil, errTruncated
	}
	return id, rs, spans, nil
}

// --- JSON fallback encode ---
//
// The v1 line protocol stays on the same listener, but its responses no
// longer pay json.Marshal's fresh allocation per reply: the server encodes
// into a pooled buffer with the append-style helpers below. The output is
// plain JSON any v1 client decodes; floats use the shortest representation
// that round-trips the exact bit pattern, so JSON and binary codecs return
// bit-equal counts.

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a quoted JSON string, escaping quotes,
// backslashes, and control characters (flow strings are plain ASCII, but
// the error path may carry arbitrary bytes).
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c < 0x20:
			b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}

// appendJSONResponse appends a NetResponse with the same omitempty shape
// json.Marshal produced.
func appendJSONResponse(b []byte, resp NetResponse) []byte {
	b = append(b, '{')
	first := true
	if resp.ID != 0 {
		b = append(b, `"id":`...)
		b = strconv.AppendUint(b, resp.ID, 10)
		first = false
	}
	if len(resp.Counts) > 0 {
		if !first {
			b = append(b, ',')
		}
		b = append(b, `"counts":{`...)
		firstKey := true
		for k, v := range resp.Counts {
			if !firstKey {
				b = append(b, ',')
			}
			b = appendJSONString(b, k)
			b = append(b, ':')
			b = strconv.AppendFloat(b, v, 'g', -1, 64)
			firstKey = false
		}
		b = append(b, '}')
		first = false
	}
	if resp.Error != "" {
		if !first {
			b = append(b, ',')
		}
		b = append(b, `"error":`...)
		b = appendJSONString(b, resp.Error)
		first = false
	}
	if len(resp.Spans) > 0 {
		if !first {
			b = append(b, ',')
		}
		b = append(b, `"spans":[`...)
		for i, sp := range resp.Spans {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, `{"name":`...)
			b = appendJSONString(b, sp.Name)
			if sp.Src != "" {
				b = append(b, `,"src":`...)
				b = appendJSONString(b, sp.Src)
			}
			b = append(b, `,"start":`...)
			b = strconv.AppendUint(b, sp.Start, 10)
			b = append(b, `,"dur":`...)
			b = strconv.AppendUint(b, sp.Dur, 10)
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	return append(b, '}')
}

// appendJSONRequest appends a NetRequest with the same omitempty shape
// json.Marshal produced, so the client's reused encode buffer speaks the
// exact v1 wire format.
func appendJSONRequest(b []byte, req NetRequest) []byte {
	b = append(b, '{')
	if req.ID != 0 {
		b = append(b, `"id":`...)
		b = strconv.AppendUint(b, req.ID, 10)
		b = append(b, ',')
	}
	b = append(b, `"kind":`...)
	b = appendJSONString(b, req.Kind)
	b = append(b, `,"port":`...)
	b = strconv.AppendInt(b, int64(req.Port), 10)
	if req.Queue != 0 {
		b = append(b, `,"queue":`...)
		b = strconv.AppendInt(b, int64(req.Queue), 10)
	}
	if req.Start != 0 {
		b = append(b, `,"start":`...)
		b = strconv.AppendUint(b, req.Start, 10)
	}
	if req.End != 0 {
		b = append(b, `,"end":`...)
		b = strconv.AppendUint(b, req.End, 10)
	}
	if req.At != 0 {
		b = append(b, `,"at":`...)
		b = strconv.AppendUint(b, req.At, 10)
	}
	if req.Trace != 0 {
		b = append(b, `,"trace":`...)
		b = strconv.AppendUint(b, req.Trace, 10)
	}
	return append(b, '}')
}
