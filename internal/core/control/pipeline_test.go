package control

import (
	"math/rand/v2"
	"reflect"
	"sync"
	"testing"
	"time"

	"printqueue/internal/pktrec"
)

// genMultiPortTrace produces a deterministic multi-port stream in per-port
// dequeue order (globally interleaved), with enough depth variation to
// exercise the queue monitor and the DP trigger.
func genMultiPortTrace(ports []int, queues, n int, seed uint64) []*pktrec.Packet {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e37))
	ts := make(map[int]uint64, len(ports))
	for _, p := range ports {
		ts[p] = 1000
	}
	out := make([]*pktrec.Packet, 0, n)
	for i := 0; i < n; i++ {
		port := ports[rng.IntN(len(ports))]
		ts[port] += uint64(5 + rng.IntN(40))
		deq := ts[port]
		delta := uint64(10 + rng.IntN(200))
		out = append(out, &pktrec.Packet{
			Flow:  fkey(byte(rng.IntN(12))),
			Port:  port,
			Queue: rng.IntN(queues),
			Meta: pktrec.Metadata{
				EnqTimestamp: deq - delta,
				DeqTimedelta: delta,
				EnqQdepth:    rng.IntN(300),
			},
		})
	}
	return out
}

// TestPipelineSerialEquivalence feeds the same multi-port trace through the
// sharded pipeline and through direct serial OnDequeue calls and requires
// identical QueryInterval and QueryOriginal reports per port, identical
// checkpoint chains, and identical deterministic counters.
func TestPipelineSerialEquivalence(t *testing.T) {
	ports := []int{0, 2, 3, 5}
	const queues = 2
	mk := func() *System {
		cfg := testConfig(ports...)
		cfg.QueuesPerPort = queues
		cfg.PollPeriodNs = 1500
		cfg.DPTrigger = func(p *pktrec.Packet) bool { return p.Meta.EnqQdepth >= 295 }
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	serial, piped := mk(), mk()
	pl, err := NewPipeline(piped, PipelineConfig{Shards: 3, BatchSize: 16, RingDepth: 4})
	if err != nil {
		t.Fatal(err)
	}

	pkts := genMultiPortTrace(ports, queues, 20000, 7)
	var last uint64
	for _, p := range pkts {
		serial.OnDequeue(p)
		pl.Ingest(p)
		if d := p.Meta.DeqTimestamp(); d > last {
			last = d
		}
	}
	pl.Close()
	serial.Finalize(last + 1)
	piped.Finalize(last + 1)

	ss, sp := serial.Stats(), piped.Stats()
	if ss.PacketsObserved != sp.PacketsObserved || ss.Checkpoints != sp.Checkpoints ||
		ss.EntriesRead != sp.EntriesRead || ss.SpecialFreezes != sp.SpecialFreezes {
		t.Fatalf("stats diverge: serial %+v pipeline %+v", ss, sp)
	}

	for _, port := range ports {
		scp, pcp := serial.Checkpoints(port), piped.Checkpoints(port)
		if len(scp) != len(pcp) {
			t.Fatalf("port %d: %d serial checkpoints, %d pipelined", port, len(scp), len(pcp))
		}
		for i := range scp {
			if scp[i].FreezeTime != pcp[i].FreezeTime || scp[i].PrevFreeze != pcp[i].PrevFreeze ||
				scp[i].Special != pcp[i].Special {
				t.Fatalf("port %d checkpoint %d differs: serial %+v pipelined %+v",
					port, i, scp[i], pcp[i])
			}
		}

		// Full-range and sub-range interval queries must match exactly.
		for _, iv := range [][2]uint64{{1000, last + 1}, {2000, last / 2}, {last / 3, 2 * last / 3}} {
			if iv[1] <= iv[0] {
				continue
			}
			a, err := serial.QueryInterval(port, iv[0], iv[1])
			if err != nil {
				t.Fatal(err)
			}
			b, err := piped.QueryInterval(port, iv[0], iv[1])
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("port %d interval %v: serial %v != pipelined %v", port, iv, a, b)
			}
		}

		for q := 0; q < queues; q++ {
			for _, at := range []uint64{last / 2, last} {
				a, err := serial.QueryOriginal(port, q, at)
				if err != nil {
					t.Fatal(err)
				}
				b, err := piped.QueryOriginal(port, q, at)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("port %d queue %d original@%d: serial %v != pipelined %v",
						port, q, at, a, b)
				}
			}
		}

		// Data-plane queries triggered at the same packets with the same
		// culprit reports.
		sd, pd := serial.DPQueries(port), piped.DPQueries(port)
		if len(sd) != len(pd) {
			t.Fatalf("port %d: %d serial DP queries, %d pipelined", port, len(sd), len(pd))
		}
		for i := range sd {
			if sd[i].Victim != pd[i].Victim || sd[i].FreezeTime != pd[i].FreezeTime {
				t.Fatalf("port %d DP query %d differs: %+v vs %+v", port, i, sd[i], pd[i])
			}
			if !reflect.DeepEqual(sd[i].Result, pd[i].Result) {
				t.Fatalf("port %d DP query %d results differ", port, i)
			}
		}
	}
}

// TestPipelineConcurrentQueries exercises Stats and asynchronous queries
// while the pipeline is actively ingesting — the combination the atomic
// counters and checkpoint locking exist for (run under -race).
func TestPipelineConcurrentQueries(t *testing.T) {
	ports := []int{0, 1}
	cfg := testConfig(ports...)
	cfg.PollPeriodNs = 800
	cfg.MaxCheckpoints = 8
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPipeline(sys, PipelineConfig{Shards: 2, BatchSize: 8, RingDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = sys.Stats()
			_, _ = sys.QueryInterval(0, 1000, 1e9)
			_, _ = sys.QueryOriginal(1, 0, 5e5)
			_ = sys.Checkpoints(0)
		}
	}()
	for _, p := range genMultiPortTrace(ports, 1, 30000, 11) {
		pl.Ingest(p)
	}
	pl.Close()
	close(stop)
	wg.Wait()
	if got := sys.Stats().PacketsObserved; got != 30000 {
		t.Fatalf("observed %d packets, want 30000", got)
	}
}

// TestPipelineRejectsSecond verifies the one-pipeline-per-system guard and
// that Close returns the system to a state where a new pipeline can start.
func TestPipelineRejectsSecond(t *testing.T) {
	sys, err := New(testConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPipeline(sys, PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPipeline(sys, PipelineConfig{}); err == nil {
		t.Fatal("second pipeline accepted while the first is open")
	}
	pl.Close()
	pl.Close() // idempotent
	pl2, err := NewPipeline(sys, PipelineConfig{})
	if err != nil {
		t.Fatalf("pipeline after Close rejected: %v", err)
	}
	pl2.Close()
}

// TestBackpressureAccounting verifies that a flip targeting a register set
// whose frozen read is still in flight blocks until the read retires and
// charges the stall to InfeasibleFlips.
func TestBackpressureAccounting(t *testing.T) {
	sys, err := New(testConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	ps := sys.ports[0]
	ps.markPending(1)
	done := make(chan struct{})
	go func() {
		ps.waitSetFree(1, sys)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("waitSetFree returned while the read was in flight")
	case <-time.After(20 * time.Millisecond):
	}
	ps.clearPending(1)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("waitSetFree did not wake after the read retired")
	}
	if got := sys.Stats().InfeasibleFlips; got != 1 {
		t.Fatalf("InfeasibleFlips = %d, want 1", got)
	}
	// A free set must not block or charge anything.
	ps.waitSetFree(0, sys)
	if got := sys.Stats().InfeasibleFlips; got != 1 {
		t.Fatalf("free set charged: InfeasibleFlips = %d, want 1", got)
	}
}

// TestSPSCRing checks ordered delivery, blocking backpressure, and close
// semantics of the batch ring.
func TestSPSCRing(t *testing.T) {
	r := newSPSCRing(4)
	const n = 5000
	var got []int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			b, ok := r.pop()
			if !ok {
				return
			}
			got = append(got, int(b.pkts[0].Arrival))
		}
	}()
	for i := 0; i < n; i++ {
		b := &packetBatch{pkts: []pktrec.Packet{{Arrival: uint64(i)}}}
		if _, ok := r.push(b); !ok {
			t.Fatal("push failed on open ring")
		}
	}
	r.close()
	wg.Wait()
	if len(got) != n {
		t.Fatalf("consumer saw %d batches, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("batch %d out of order: got %d", i, v)
		}
	}
	if _, ok := r.push(&packetBatch{}); ok {
		t.Fatal("push succeeded on closed ring")
	}
	if _, ok := r.pop(); ok {
		t.Fatal("pop returned a batch from a drained closed ring")
	}
}

// TestSPSCRingDepthRounding documents the power-of-two sizing.
func TestSPSCRingDepthRounding(t *testing.T) {
	for _, tt := range []struct{ depth, want int }{{1, 1}, {3, 4}, {4, 4}, {5, 8}} {
		if got := len(newSPSCRing(tt.depth).buf); got != tt.want {
			t.Errorf("depth %d: ring size %d, want %d", tt.depth, got, tt.want)
		}
	}
}

// TestPipelineShardAssignment confirms every activated port maps to exactly
// one shard and inactive ports are dropped.
func TestPipelineShardAssignment(t *testing.T) {
	ports := []int{0, 1, 2, 3, 4}
	sys, err := New(testConfig(ports...))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPipeline(sys, PipelineConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Close()
	if len(pl.shards) != 2 {
		t.Fatalf("shards = %d, want 2", len(pl.shards))
	}
	seen := map[*shard]int{}
	for _, port := range ports {
		sh := pl.shardOf[port]
		if sh == nil {
			t.Fatalf("port %d unassigned", port)
		}
		seen[sh]++
	}
	if len(seen) != 2 {
		t.Fatalf("ports landed on %d shards, want 2", len(seen))
	}
	// Packets for a port outside the table are ignored without panicking.
	pl.Ingest(&pktrec.Packet{Port: 99})
	pl.Ingest(&pktrec.Packet{Port: -1})
}

// TestPipelineShardDefaults verifies the Shards default never exceeds the
// port count.
func TestPipelineShardDefaults(t *testing.T) {
	var cfg PipelineConfig
	cfg.normalize(3)
	if cfg.Shards < 1 || cfg.Shards > 3 {
		t.Fatalf("default shards = %d, want in [1,3]", cfg.Shards)
	}
	if cfg.BatchSize != 256 || cfg.RingDepth != 8 || cfg.SnapshotQueue != 6 {
		t.Fatalf("defaults = %+v", cfg)
	}
	cfg = PipelineConfig{Shards: 100}
	cfg.normalize(4)
	if cfg.Shards != 4 {
		t.Fatalf("shards clamped to %d, want 4", cfg.Shards)
	}
}
