package control

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"printqueue/internal/core/histstore"
)

// feedIdentical drives every system with the same deterministic trace
// (fresh packet records per system) and finalizes them all at the same
// instant, returning the horizon timestamp.
func feedIdentical(t *testing.T, systems []*System, packets int) uint64 {
	t.Helper()
	var ts uint64 = 1000
	for i := 0; i < packets; i++ {
		ts += 8
		for _, s := range systems {
			s.OnDequeue(deq(fkey(byte(i%24)), 0, ts-16, ts, 8+i%17))
		}
	}
	for _, s := range systems {
		s.Finalize(ts + 1)
	}
	return ts
}

// TestColdQueryDifferential is the tiering correctness pin: a system with a
// tiny hot tier backed by the segment log must answer interval queries
// bit-identically (exact DeepEqual on the float maps) to a system that kept
// every checkpoint in RAM — including intervals spanning the tier boundary,
// entirely cold intervals, and entirely hot ones.
func TestColdQueryDifferential(t *testing.T) {
	cfgA := testConfig(0)
	cfgA.PollPeriodNs = 256
	ram, err := New(cfgA) // unbounded in-RAM history: the reference
	if err != nil {
		t.Fatal(err)
	}
	cfgB := testConfig(0)
	cfgB.PollPeriodNs = 256
	cfgB.MaxCheckpoints = 3 // nearly everything is evicted to disk
	cfgB.History = &histstore.Options{Dir: t.TempDir()}
	tiered, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	defer tiered.Close()

	horizon := feedIdentical(t, []*System{ram, tiered}, 12000)
	if n := len(ram.Checkpoints(0)); n < 32 {
		t.Fatalf("reference history only %d checkpoints deep, want >= 32", n)
	}
	if n := len(tiered.Checkpoints(0)); n > 3 {
		t.Fatalf("tiered hot history holds %d checkpoints, want <= 3", n)
	}
	st, ok := tiered.HistoryStats()
	if !ok || st.Appended < 32 {
		t.Fatalf("segment log holds %d checkpoints, want >= 32 (enabled=%v)", st.Appended, ok)
	}

	rng := rand.New(rand.NewPCG(7, 11))
	for q := 0; q < 150; q++ {
		var lo, hi uint64
		switch q {
		case 0:
			lo, hi = 0, horizon+1000 // all history (cold + hot + tail)
		case 1:
			lo, hi = 0, 1100 // entirely cold
		case 2:
			lo, hi = horizon-50, horizon+1 // entirely hot
		case 3:
			lo, hi = horizon/2, horizon/2+1 // point query, cold for B
		default:
			lo = rng.Uint64N(horizon)
			hi = lo + 1 + rng.Uint64N(horizon/3)
		}
		want, err := ram.QueryInterval(0, lo, hi)
		if err != nil {
			t.Fatalf("ram query [%d,%d): %v", lo, hi, err)
		}
		got, err := tiered.QueryInterval(0, lo, hi)
		if err != nil {
			t.Fatalf("tiered query [%d,%d): %v", lo, hi, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("interval [%d,%d): tiered %v != ram %v", lo, hi, got, want)
		}
	}
	st, _ = tiered.HistoryStats()
	if st.CacheHits+st.CacheMisses == 0 {
		t.Error("differential queries never touched the cold tier")
	}
}

// TestColdQueryRestart: after a restart (fresh System, same history dir,
// EMPTY hot tier) every query must be answered entirely from the segment
// log, still bit-identical to the in-RAM reference.
func TestColdQueryRestart(t *testing.T) {
	dir := t.TempDir()
	cfgA := testConfig(0)
	cfgA.PollPeriodNs = 256
	ram, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	cfgB := testConfig(0)
	cfgB.PollPeriodNs = 256
	cfgB.MaxCheckpoints = 3
	cfgB.History = &histstore.Options{Dir: dir}
	tiered, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	horizon := feedIdentical(t, []*System{ram, tiered}, 8000)
	if err := tiered.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: same directory, no traffic. All history is cold.
	reborn, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	defer reborn.Close()
	if n := len(reborn.Checkpoints(0)); n != 0 {
		t.Fatalf("restarted system has %d hot checkpoints, want 0", n)
	}

	rng := rand.New(rand.NewPCG(3, 9))
	for q := 0; q < 80; q++ {
		lo := rng.Uint64N(horizon)
		hi := lo + 1 + rng.Uint64N(horizon/2)
		want, err := ram.QueryInterval(0, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		got, err := reborn.QueryInterval(0, lo, hi)
		if err != nil {
			t.Fatalf("restarted query [%d,%d): %v", lo, hi, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("after restart, interval [%d,%d): got %v want %v", lo, hi, got, want)
		}
	}
}

// TestHistoryBytesGauge: the shared gauge tracks hot-tier checkpoint bytes,
// grows when a Filtered index is built, and is refunded by DropFiltered and
// by hot-tier eviction.
func TestHistoryBytesGauge(t *testing.T) {
	cfg := testConfig(0)
	cfg.PollPeriodNs = 256
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buildDeepHistory(t, s, 0, 8)

	base := s.HistoryBytes()
	if base <= 0 {
		t.Fatalf("history bytes gauge is %d with a deep hot tier", base)
	}
	cp := s.Checkpoints(0)[0]
	f := cp.Filtered()
	if f == nil {
		t.Fatal("nil filtered view")
	}
	withIndex := s.HistoryBytes()
	if withIndex != base+f.MemBytes() {
		t.Fatalf("gauge %d after index build, want %d + %d", withIndex, base, f.MemBytes())
	}
	// Memoized: a second call must not double-charge.
	if cp.Filtered() != f {
		t.Fatal("Filtered not memoized")
	}
	if got := s.HistoryBytes(); got != withIndex {
		t.Fatalf("gauge moved to %d on memoized access", got)
	}
	cp.DropFiltered()
	if got := s.HistoryBytes(); got != base {
		t.Fatalf("gauge %d after DropFiltered, want %d", got, base)
	}
	// Dropping twice is a no-op, not a double refund.
	cp.DropFiltered()
	if got := s.HistoryBytes(); got != base {
		t.Fatalf("gauge %d after second DropFiltered, want %d", got, base)
	}
}

// TestHistoryBytesEvictionRefund: with a bounded hot tier, retiring
// checkpoints must refund the evicted checkpoint's bytes so the gauge
// tracks residency, not lifetime total.
func TestHistoryBytesEvictionRefund(t *testing.T) {
	cfg := testConfig(0)
	cfg.PollPeriodNs = 256
	cfg.MaxCheckpoints = 4
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buildDeepHistory(t, s, 0, 4)
	settled := s.HistoryBytes()
	// Keep flowing: the ring stays at 4 entries, so the gauge must stay in
	// the same band (each retire adds one checkpoint and refunds one).
	var ts uint64 = 1_000_000
	for i := 0; i < 40000; i++ {
		ts += 8
		s.OnDequeue(deq(fkey(byte(i%24)), 0, ts-16, ts, 8))
	}
	s.Finalize(ts + 1)
	after := s.HistoryBytes()
	if after > settled*3 {
		t.Fatalf("gauge grew from %d to %d with a bounded hot tier: eviction refund broken", settled, after)
	}
}

// TestCpRingWraparound exercises the ring buffer against a reference slice
// for both bounded (overwrite-in-place) and unbounded (growing) modes.
func TestCpRingWraparound(t *testing.T) {
	for _, max := range []int{0, 1, 3, 4, 7} {
		var ring cpRing
		var ref []*Checkpoint
		var evictedRing, evictedRef []*Checkpoint
		for i := 0; i < 100; i++ {
			cp := &Checkpoint{FreezeTime: uint64(1000 + i*100), PrevFreeze: uint64(1000 + (i-1)*100)}
			if ev := ring.push(cp, max); ev != nil {
				evictedRing = append(evictedRing, ev)
			}
			ref = append(ref, cp)
			if max > 0 && len(ref) > max {
				evictedRef = append(evictedRef, ref[0])
				ref = ref[1:]
			}
			if ring.len() != len(ref) {
				t.Fatalf("max=%d step=%d: len %d, want %d", max, i, ring.len(), len(ref))
			}
			for j := range ref {
				if ring.at(j) != ref[j] {
					t.Fatalf("max=%d step=%d: at(%d) mismatch", max, i, j)
				}
			}
			if !reflect.DeepEqual(ring.slice(), ref) {
				t.Fatalf("max=%d step=%d: slice mismatch", max, i)
			}
		}
		if !reflect.DeepEqual(evictedRing, evictedRef) {
			t.Fatalf("max=%d: evictions diverge: ring %d, ref %d", max, len(evictedRing), len(evictedRef))
		}
	}
}

// TestCpRingPruneCopy checks the binary-searched run extraction against a
// brute-force overlap filter at every wrap state of a bounded ring.
func TestCpRingPruneCopy(t *testing.T) {
	const max = 5
	var ring cpRing
	for i := 0; i < 37; i++ {
		prev := uint64(1000 + i*100)
		ring.push(&Checkpoint{PrevFreeze: prev, FreezeTime: prev + 100}, max)
		for start := uint64(900); start < uint64(1300+i*100); start += 70 {
			end := start + 250
			got := ring.pruneCopy(start, end)
			var want []*Checkpoint
			for _, cp := range ring.slice() {
				if cp.FreezeTime > start && cp.PrevFreeze < end {
					want = append(want, cp)
				}
			}
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("step %d query [%d,%d): got %d checkpoints, want %d", i, start, end, len(got), len(want))
			}
		}
	}
}

// TestColdCheckpointCounter: serving a query from the cold tier increments
// the query-path counter used by ops dashboards.
func TestColdCheckpointCounter(t *testing.T) {
	cfg := testConfig(0)
	cfg.PollPeriodNs = 256
	cfg.MaxCheckpoints = 2
	cfg.History = &histstore.Options{Dir: t.TempDir()}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	feedIdentical(t, []*System{s}, 8000)
	if _, err := s.QueryInterval(0, 0, ^uint64(0)); err != nil {
		t.Fatal(err)
	}
	if got := s.qpath.coldCheckpoints.Load(); got == 0 {
		t.Error("all-history query touched no cold checkpoints")
	}
}
