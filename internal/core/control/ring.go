package control

import (
	"sync/atomic"
	"time"

	"printqueue/internal/pktrec"
)

// packetBatch is a run of dequeued packets bound for one shard worker.
// Packets are stored by value so the producer never allocates per packet
// and batches recycle cleanly through the pipeline's pool.
type packetBatch struct {
	pkts []pktrec.Packet
}

// spscRing is a bounded single-producer/single-consumer ring of packet
// batches — the software stand-in for the per-pipe packet queues feeding
// the Tofino's egress pipelines. The producer is the ingestion goroutine
// (Pipeline.Ingest); the consumer is the shard's worker. head/tail are
// monotonically increasing; the ring is full when tail-head == len(buf).
//
// Both sides park on capacity-1 wake-token channels rather than spinning:
// a token deposited after every push/pop guarantees a blocked peer observes
// the state change, and the single-producer/single-consumer discipline
// makes the lock-free fast path correct.
type spscRing struct {
	buf      []*packetBatch
	mask     uint64
	head     atomic.Uint64 // next slot to pop (consumer-owned)
	tail     atomic.Uint64 // next slot to push (producer-owned)
	closed   atomic.Bool
	notEmpty chan struct{} // wake token for a parked consumer
	notFull  chan struct{} // wake token for a parked producer
}

// newSPSCRing builds a ring holding at least depth batches (rounded up to a
// power of two).
func newSPSCRing(depth int) *spscRing {
	n := 1
	for n < depth {
		n <<= 1
	}
	return &spscRing{
		buf:      make([]*packetBatch, n),
		mask:     uint64(n - 1),
		notEmpty: make(chan struct{}, 1),
		notFull:  make(chan struct{}, 1),
	}
}

// wake deposits a token without blocking; a token already present is enough.
func wake(c chan struct{}) {
	select {
	case c <- struct{}{}:
	default:
	}
}

// push enqueues a batch, blocking while the ring is full (backpressure onto
// the producer). It returns ok=false if the ring was closed, and the
// nanoseconds the producer spent blocked — 0 on the uncontended fast path,
// where no clock is read.
func (r *spscRing) push(b *packetBatch) (waitedNs int64, ok bool) {
	var blockedAt time.Time
	for {
		if r.closed.Load() {
			return waitedNs, false
		}
		t, h := r.tail.Load(), r.head.Load()
		if t-h < uint64(len(r.buf)) {
			r.buf[t&r.mask] = b
			r.tail.Store(t + 1)
			wake(r.notEmpty)
			if !blockedAt.IsZero() {
				waitedNs = time.Since(blockedAt).Nanoseconds()
			}
			return waitedNs, true
		}
		if blockedAt.IsZero() {
			blockedAt = time.Now()
		}
		<-r.notFull
	}
}

// len returns the number of batches currently queued. Racy by nature (both
// ends keep moving); good enough for an occupancy gauge.
func (r *spscRing) len() int64 { return int64(r.tail.Load() - r.head.Load()) }

// pop dequeues the next batch, blocking while the ring is empty. It returns
// ok=false once the ring is closed and drained.
func (r *spscRing) pop() (*packetBatch, bool) {
	for {
		h, t := r.head.Load(), r.tail.Load()
		if h != t {
			b := r.buf[h&r.mask]
			r.buf[h&r.mask] = nil
			r.head.Store(h + 1)
			wake(r.notFull)
			return b, true
		}
		if r.closed.Load() {
			// Recheck: a push may have raced the close.
			if r.head.Load() == r.tail.Load() {
				return nil, false
			}
			continue
		}
		<-r.notEmpty
	}
}

// close marks the ring closed and wakes both sides. Only the producer may
// call it; batches already enqueued are still drained by pop.
func (r *spscRing) close() {
	r.closed.Store(true)
	wake(r.notEmpty)
	wake(r.notFull)
}
