package control

import (
	"fmt"
	"sync"
	"time"

	"printqueue/internal/telemetry"
	"printqueue/internal/tracing"
)

// QueryServer serves asynchronous queries concurrently with a running data
// plane. The paper's analysis program accepts remote requests while the
// switch keeps forwarding; here, any number of goroutines may submit
// requests while OnDequeue is driven — serially by one goroutine, or by the
// sharded ingestion Pipeline's workers. Queries read only the frozen
// checkpoint history (stable copies), never the live registers, so the
// per-packet hot path stays lock-free. Stats is likewise safe to poll at
// any time (the counters are atomic).
type QueryServer struct {
	sys *System
	met queryMetrics

	mu      sync.Mutex
	started bool
	reqs    chan queryRequest
	done    chan struct{}
	wg      sync.WaitGroup
	// sem bounds the extra goroutines interval queries may fan out across:
	// its capacity is the worker count, so a query sharding a deep
	// checkpoint run never exceeds the pool the operator sized. Shards that
	// cannot acquire a slot run inline on the issuing worker.
	sem chan struct{}
}

// queryMetrics instruments the query execution path, per operation.
// Indexed by QueryKind.
type queryMetrics struct {
	latencyNs [2]*telemetry.Histogram
	errors    [2]*telemetry.Counter
	inflight  *telemetry.Gauge
}

func newQueryMetrics(reg *telemetry.Registry) queryMetrics {
	var m queryMetrics
	for kind, op := range [2]string{IntervalQuery: "interval", OriginalQuery: "original"} {
		m.latencyNs[kind] = reg.Histogram("printqueue_query_latency_ns",
			"Query execution latency over the checkpoint history.",
			telemetry.LatencyBuckets, telemetry.L("op", op))
		m.errors[kind] = reg.Counter("printqueue_query_errors_total",
			"Queries that returned an error.", telemetry.L("op", op))
	}
	m.inflight = reg.Gauge("printqueue_query_inflight",
		"Queries currently executing on the query workers.")
	return m
}

// QueryKind distinguishes the two query families of §6.3.
type QueryKind int

const (
	// IntervalQuery asks for per-flow packet counts over a dequeue-time
	// interval (direct/indirect culprits).
	IntervalQuery QueryKind = iota
	// OriginalQuery asks for the original causes of congestion at a time
	// instant.
	OriginalQuery
)

// QueryResult carries one answered query.
type QueryResult struct {
	Kind   QueryKind
	Port   int
	Queue  int
	Start  uint64
	End    uint64
	Counts map[string]float64 // flow string -> packets
	Err    error
}

type queryRequest struct {
	kind       QueryKind
	port       int
	queue      int
	start, end uint64
	resp       chan QueryResult
	// tr joins the request to an end-to-end trace (nil when untraced);
	// submitted is stamped at submit so the worker can record the
	// "server.queue" span (time spent waiting for a worker).
	tr        *tracing.Trace
	submitted time.Time
}

// NewQueryServer builds a server over an existing System, registering the
// query-path metrics in the system's telemetry registry.
func NewQueryServer(sys *System) *QueryServer {
	return &QueryServer{sys: sys, met: newQueryMetrics(sys.telemetry)}
}

// Start launches n worker goroutines. It is idempotent until Stop.
func (q *QueryServer) Start(workers int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.started {
		return
	}
	if workers <= 0 {
		workers = 1
	}
	q.reqs = make(chan queryRequest)
	q.done = make(chan struct{})
	q.sem = make(chan struct{}, workers)
	q.started = true
	for i := 0; i < workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
}

// Stop shuts the workers down, waiting for in-flight queries.
func (q *QueryServer) Stop() {
	q.mu.Lock()
	if !q.started {
		q.mu.Unlock()
		return
	}
	close(q.done)
	q.started = false
	q.mu.Unlock()
	q.wg.Wait()
}

func (q *QueryServer) worker() {
	defer q.wg.Done()
	for {
		select {
		case <-q.done:
			return
		case req := <-q.reqs:
			req.resp <- q.execute(req)
		}
	}
}

func (q *QueryServer) execute(req queryRequest) QueryResult {
	// A request with no remote trace may still be sampled locally, so
	// server-only queries (tests, pqsim, fleet internals) show up in the
	// trace ring too. Traces we open here we also close here; remote
	// traces are closed by the netserver writer after the reply goes out.
	own := false
	if req.tr == nil {
		if t := q.sys.Tracer(); t != nil {
			req.tr = t.Start(kindName(req.kind))
			own = req.tr != nil
		}
	}
	if req.tr != nil && !req.submitted.IsZero() {
		req.tr.Span("server.queue", tracing.SrcServer, req.submitted, time.Since(req.submitted))
	}
	res := QueryResult{
		Kind:  req.kind,
		Port:  req.port,
		Queue: req.queue,
		Start: req.start,
		End:   req.end,
	}
	if req.kind == IntervalQuery || req.kind == OriginalQuery {
		q.met.inflight.Add(1)
		start := time.Now()
		defer func() {
			dur := time.Since(start)
			q.met.latencyNs[req.kind].ObserveEx(uint64(dur.Nanoseconds()), req.tr.ID())
			q.met.inflight.Add(-1)
			if own {
				req.tr.FinishErr(res.Err)
			} else if req.tr == nil {
				// Unsampled but over the slow threshold: promote into the
				// tracer's always-on slowlog.
				q.sys.Tracer().MaybeSlow(kindName(req.kind), start, dur, res.Err)
			}
		}()
	}
	switch req.kind {
	case IntervalQuery:
		sp := req.tr.StartSpan("server.execute", tracing.SrcServer)
		counts, err := q.sys.queryIntervalSharded(req.port, req.start, req.end, q.sem, req.tr)
		if err != nil {
			sp.End()
			res.Err = err
			q.met.errors[req.kind].Inc()
			return res
		}
		res.Counts = make(map[string]float64, len(counts))
		for f, n := range counts {
			res.Counts[f.String()] = n
		}
		sp.End()
	case OriginalQuery:
		sp := req.tr.StartSpan("server.execute", tracing.SrcServer)
		culprits, err := q.sys.queryOriginal(req.port, req.queue, req.start, req.tr)
		if err != nil {
			sp.End()
			res.Err = err
			q.met.errors[req.kind].Inc()
			return res
		}
		res.Counts = make(map[string]float64)
		for _, c := range culprits {
			res.Counts[c.Flow.String()]++
		}
		sp.End()
	default:
		res.Err = fmt.Errorf("control: unknown query kind %d", req.kind)
	}
	return res
}

// submit dispatches a request, failing fast if the server is stopped.
func (q *QueryServer) submit(req queryRequest) QueryResult {
	q.mu.Lock()
	started := q.started
	reqs := q.reqs
	done := q.done
	q.mu.Unlock()
	if !started {
		return QueryResult{Err: fmt.Errorf("control: query server not running")}
	}
	req.resp = make(chan QueryResult, 1)
	select {
	case reqs <- req:
		return <-req.resp
	case <-done:
		return QueryResult{Err: fmt.Errorf("control: query server stopped")}
	}
}

// Interval executes an interval (direct/indirect culprit) query.
func (q *QueryServer) Interval(port int, start, end uint64) QueryResult {
	return q.intervalTraced(port, start, end, nil)
}

// Original executes an original-culprit query at time t.
func (q *QueryServer) Original(port, queue int, t uint64) QueryResult {
	return q.originalTraced(port, queue, t, nil)
}

// intervalTraced is Interval joined to an end-to-end trace (nil = untraced).
func (q *QueryServer) intervalTraced(port int, start, end uint64, tr *tracing.Trace) QueryResult {
	req := queryRequest{kind: IntervalQuery, port: port, start: start, end: end, tr: tr}
	if tr != nil {
		req.submitted = time.Now()
	}
	return q.submit(req)
}

// originalTraced is Original joined to an end-to-end trace (nil = untraced).
func (q *QueryServer) originalTraced(port, queue int, t uint64, tr *tracing.Trace) QueryResult {
	req := queryRequest{kind: OriginalQuery, port: port, queue: queue, start: t, tr: tr}
	if tr != nil {
		req.submitted = time.Now()
	}
	return q.submit(req)
}
