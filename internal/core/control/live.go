package control

import (
	"fmt"
	"sync"
	"time"

	"printqueue/internal/telemetry"
)

// QueryServer serves asynchronous queries concurrently with a running data
// plane. The paper's analysis program accepts remote requests while the
// switch keeps forwarding; here, any number of goroutines may submit
// requests while OnDequeue is driven — serially by one goroutine, or by the
// sharded ingestion Pipeline's workers. Queries read only the frozen
// checkpoint history (stable copies), never the live registers, so the
// per-packet hot path stays lock-free. Stats is likewise safe to poll at
// any time (the counters are atomic).
type QueryServer struct {
	sys *System
	met queryMetrics

	mu      sync.Mutex
	started bool
	reqs    chan queryRequest
	done    chan struct{}
	wg      sync.WaitGroup
	// sem bounds the extra goroutines interval queries may fan out across:
	// its capacity is the worker count, so a query sharding a deep
	// checkpoint run never exceeds the pool the operator sized. Shards that
	// cannot acquire a slot run inline on the issuing worker.
	sem chan struct{}
}

// queryMetrics instruments the query execution path, per operation.
// Indexed by QueryKind.
type queryMetrics struct {
	latencyNs [2]*telemetry.Histogram
	errors    [2]*telemetry.Counter
	inflight  *telemetry.Gauge
}

func newQueryMetrics(reg *telemetry.Registry) queryMetrics {
	var m queryMetrics
	for kind, op := range [2]string{IntervalQuery: "interval", OriginalQuery: "original"} {
		m.latencyNs[kind] = reg.Histogram("printqueue_query_latency_ns",
			"Query execution latency over the checkpoint history.",
			telemetry.LatencyBuckets, telemetry.L("op", op))
		m.errors[kind] = reg.Counter("printqueue_query_errors_total",
			"Queries that returned an error.", telemetry.L("op", op))
	}
	m.inflight = reg.Gauge("printqueue_query_inflight",
		"Queries currently executing on the query workers.")
	return m
}

// QueryKind distinguishes the two query families of §6.3.
type QueryKind int

const (
	// IntervalQuery asks for per-flow packet counts over a dequeue-time
	// interval (direct/indirect culprits).
	IntervalQuery QueryKind = iota
	// OriginalQuery asks for the original causes of congestion at a time
	// instant.
	OriginalQuery
)

// QueryResult carries one answered query.
type QueryResult struct {
	Kind   QueryKind
	Port   int
	Queue  int
	Start  uint64
	End    uint64
	Counts map[string]float64 // flow string -> packets
	Err    error
}

type queryRequest struct {
	kind       QueryKind
	port       int
	queue      int
	start, end uint64
	resp       chan QueryResult
}

// NewQueryServer builds a server over an existing System, registering the
// query-path metrics in the system's telemetry registry.
func NewQueryServer(sys *System) *QueryServer {
	return &QueryServer{sys: sys, met: newQueryMetrics(sys.telemetry)}
}

// Start launches n worker goroutines. It is idempotent until Stop.
func (q *QueryServer) Start(workers int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.started {
		return
	}
	if workers <= 0 {
		workers = 1
	}
	q.reqs = make(chan queryRequest)
	q.done = make(chan struct{})
	q.sem = make(chan struct{}, workers)
	q.started = true
	for i := 0; i < workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
}

// Stop shuts the workers down, waiting for in-flight queries.
func (q *QueryServer) Stop() {
	q.mu.Lock()
	if !q.started {
		q.mu.Unlock()
		return
	}
	close(q.done)
	q.started = false
	q.mu.Unlock()
	q.wg.Wait()
}

func (q *QueryServer) worker() {
	defer q.wg.Done()
	for {
		select {
		case <-q.done:
			return
		case req := <-q.reqs:
			req.resp <- q.execute(req)
		}
	}
}

func (q *QueryServer) execute(req queryRequest) QueryResult {
	if req.kind == IntervalQuery || req.kind == OriginalQuery {
		q.met.inflight.Add(1)
		start := time.Now()
		defer func() {
			q.met.latencyNs[req.kind].Observe(uint64(time.Since(start).Nanoseconds()))
			q.met.inflight.Add(-1)
		}()
	}
	res := QueryResult{
		Kind:  req.kind,
		Port:  req.port,
		Queue: req.queue,
		Start: req.start,
		End:   req.end,
	}
	switch req.kind {
	case IntervalQuery:
		counts, err := q.sys.queryIntervalSharded(req.port, req.start, req.end, q.sem)
		if err != nil {
			res.Err = err
			q.met.errors[req.kind].Inc()
			return res
		}
		res.Counts = make(map[string]float64, len(counts))
		for f, n := range counts {
			res.Counts[f.String()] = n
		}
	case OriginalQuery:
		culprits, err := q.sys.QueryOriginal(req.port, req.queue, req.start)
		if err != nil {
			res.Err = err
			q.met.errors[req.kind].Inc()
			return res
		}
		res.Counts = make(map[string]float64)
		for _, c := range culprits {
			res.Counts[c.Flow.String()]++
		}
	default:
		res.Err = fmt.Errorf("control: unknown query kind %d", req.kind)
	}
	return res
}

// submit dispatches a request, failing fast if the server is stopped.
func (q *QueryServer) submit(req queryRequest) QueryResult {
	q.mu.Lock()
	started := q.started
	reqs := q.reqs
	done := q.done
	q.mu.Unlock()
	if !started {
		return QueryResult{Err: fmt.Errorf("control: query server not running")}
	}
	req.resp = make(chan QueryResult, 1)
	select {
	case reqs <- req:
		return <-req.resp
	case <-done:
		return QueryResult{Err: fmt.Errorf("control: query server stopped")}
	}
}

// Interval executes an interval (direct/indirect culprit) query.
func (q *QueryServer) Interval(port int, start, end uint64) QueryResult {
	return q.submit(queryRequest{kind: IntervalQuery, port: port, start: start, end: end})
}

// Original executes an original-culprit query at time t.
func (q *QueryServer) Original(port, queue int, t uint64) QueryResult {
	return q.submit(queryRequest{kind: OriginalQuery, port: port, queue: queue, start: t})
}
