package control

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"printqueue/internal/faultnet"
	"printqueue/internal/telemetry"
)

// chaosSeed returns the deterministic seed for the fault-injection tests.
// CI pins it via PRINTQUEUE_CHAOS_SEED; the default keeps local runs
// reproducible too.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	if v := os.Getenv("PRINTQUEUE_CHAOS_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("PRINTQUEUE_CHAOS_SEED=%q: %v", v, err)
		}
		return n
	}
	return 1
}

// chaosFixture builds a populated system served through a fault-injecting
// listener. The trace is the netFixture one: ~60 packets dequeued on port 0
// between t=1010 and t=ts, so Interval(0, 1000, ts+1) totals ~60 and any
// interval after ts is empty.
func chaosFixture(t *testing.T, fcfg faultnet.Config, opts ServeOptions) (*NetServer, uint64) {
	t.Helper()
	cfg := testConfig(0)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ts uint64 = 1000
	for i := 0; i < 60; i++ {
		ts += 10
		s.OnDequeue(deq(fkey(byte(i%3)), 0, ts-40, ts, 8))
	}
	s.Finalize(ts + 1)
	qs := NewQueryServer(s)
	qs.Start(2)
	t.Cleanup(qs.Stop)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeQueriesListener(faultnet.Wrap(ln, fcfg), qs, opts)
	t.Cleanup(func() { srv.Close() })
	return srv, ts
}

// legacyRoundTrip does what the pre-fix client did: encode the request with
// no id, read one line, and trust it blindly. It is kept in test form to
// prove the desync bug it suffers from.
func legacyRoundTrip(t *testing.T, conn net.Conn, br *bufio.Reader, req NetRequest, deadline time.Duration) (NetResponse, error) {
	t.Helper()
	if err := conn.SetDeadline(time.Now().Add(deadline)); err != nil {
		t.Fatal(err)
	}
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		return NetResponse{}, err
	}
	line, err := br.ReadBytes('\n')
	if err != nil {
		return NetResponse{}, err
	}
	var resp NetResponse
	if err := json.Unmarshal(line, &resp); err != nil {
		t.Fatal(err)
	}
	return resp, nil
}

// TestChaosDesyncLegacyClient reproduces the framing-desync bug the id
// protocol fixes: the server's first response is delayed past the client's
// read deadline, the old-style client times out but keeps the connection,
// and the next query then reads the previous query's counts as its own.
func TestChaosDesyncLegacyClient(t *testing.T) {
	srv, ts := chaosFixture(t, faultnet.Config{
		Seed: chaosSeed(t), WriteLatency: 300 * time.Millisecond, SlowWrites: 1,
	}, ServeOptions{})
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)

	// Query A covers the whole trace (~60 packets); its response write is
	// delayed 300ms, so the 50ms read deadline expires first.
	_, err = legacyRoundTrip(t, conn, br, NetRequest{Kind: "interval", Port: 0, Start: 1000, End: ts + 1}, 50*time.Millisecond)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("query A error %v, want an I/O timeout", err)
	}

	// Query B covers an interval after the trace: the true answer is zero
	// flows. The legacy client instead receives query A's stale response.
	resp, err := legacyRoundTrip(t, conn, br, NetRequest{Kind: "interval", Port: 0, Start: ts + 100, End: ts + 200}, 2*time.Second)
	if err != nil {
		t.Fatalf("query B: %v", err)
	}
	var total float64
	for _, n := range resp.Counts {
		total += n
	}
	if total < 50 {
		// If this starts failing, the stale-response hazard is gone at the
		// transport level and the legacy reproduction can be retired.
		t.Fatalf("legacy client read %v packets for the empty interval; expected the stale ~60-packet response (bug reproduction)", total)
	}
}

// TestChaosDesyncFixedClient is the same mid-read-timeout injection against
// the fixed client: the timed-out connection is poisoned, the retry redials,
// and the second query returns its own (empty) result — never query A's.
func TestChaosDesyncFixedClient(t *testing.T) {
	srv, ts := chaosFixture(t, faultnet.Config{
		Seed: chaosSeed(t), WriteLatency: 300 * time.Millisecond, SlowWrites: 1,
	}, ServeOptions{})

	reg := telemetry.NewRegistry()
	c, err := DialOpts(srv.Addr().String(), DialOptions{
		Timeout:     50 * time.Millisecond,
		MaxRetries:  4,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
		Timeouts:    reg.Counter("printqueue_query_client_timeouts_total", "t"),
		Retries:     reg.Counter("printqueue_query_client_retries_total", "r"),
		Reconnects:  reg.Counter("printqueue_query_client_reconnects_total", "c"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Query A: first attempt times out mid-read (the response lands 300ms
	// late); the retry runs on a fresh connection and must return A's own
	// counts.
	counts, err := c.Interval(0, 1000, ts+1)
	if err != nil {
		t.Fatalf("query A after retries: %v", err)
	}
	var total float64
	for _, n := range counts {
		total += n
	}
	if total < 50 || total > 70 {
		t.Fatalf("query A total %v, want ~60", total)
	}

	// Query B: empty interval. The fixed client must never surface A's
	// stale response: the result is an empty, non-nil map.
	empty, err := c.Interval(0, ts+100, ts+200)
	if err != nil {
		t.Fatalf("query B: %v", err)
	}
	if empty == nil {
		t.Fatal("empty result is nil; want a non-nil empty map")
	}
	if len(empty) != 0 {
		t.Fatalf("query B returned %d flows, want 0 (stale response leaked)", len(empty))
	}

	if c.Timeouts() == 0 || c.Retries() == 0 || c.Reconnects() == 0 {
		t.Fatalf("resilience counters: timeouts=%d retries=%d reconnects=%d, want all > 0",
			c.Timeouts(), c.Retries(), c.Reconnects())
	}
	for name, got := range map[string]int64{
		"printqueue_query_client_timeouts_total":   c.Timeouts(),
		"printqueue_query_client_retries_total":    c.Retries(),
		"printqueue_query_client_reconnects_total": c.Reconnects(),
	} {
		if reg.Counter(name, "").Load() != got {
			t.Errorf("wired counter %s = %d, want %d", name, reg.Counter(name, "").Load(), got)
		}
	}
}

// TestChaosReconnectAfterIdleClose covers the server's idle deadline and
// the client's redial: the server reclaims an idle connection, and the
// client's next query transparently reconnects.
func TestChaosReconnectAfterIdleClose(t *testing.T) {
	srv, ts := chaosFixture(t, faultnet.Config{}, ServeOptions{IdleTimeout: 50 * time.Millisecond})
	c, err := DialOpts(srv.Addr().String(), DialOptions{
		Timeout: time.Second, MaxRetries: 2, BackoffBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Interval(0, 1000, ts+1); err != nil {
		t.Fatalf("first query: %v", err)
	}
	time.Sleep(300 * time.Millisecond) // server idle deadline reclaims the conn
	counts, err := c.Interval(0, 1000, ts+1)
	if err != nil {
		t.Fatalf("query after idle close: %v", err)
	}
	var total float64
	for _, n := range counts {
		total += n
	}
	if total < 50 || total > 70 {
		t.Fatalf("post-reconnect total %v, want ~60", total)
	}
	if c.Reconnects() == 0 {
		t.Error("no reconnect recorded after the server closed the idle connection")
	}
}

// TestChaosAcceptRetry injects transient accept failures (the EMFILE
// scenario that used to kill the listener forever) and checks the accept
// loop retries through them and keeps serving.
func TestChaosAcceptRetry(t *testing.T) {
	srv, ts := chaosFixture(t, faultnet.Config{AcceptFailures: 3}, ServeOptions{})
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Interval(0, 1000, ts+1); err != nil {
		t.Fatalf("query through a listener that survived accept failures: %v", err)
	}
	if got := srv.acceptRetries.Load(); got != 3 {
		t.Errorf("accept retries = %d, want 3", got)
	}
}

// TestChaosShedOverload drives the load-shedding bound: with the backlog
// artificially saturated the server answers {"error":"overloaded"}
// immediately, a non-retrying client surfaces ErrOverloaded, and a retrying
// client rides through once capacity frees up — without reconnecting, since
// an overload reply leaves the framing intact.
func TestChaosShedOverload(t *testing.T) {
	srv, ts := chaosFixture(t, faultnet.Config{}, ServeOptions{ShedLimit: 1})

	srv.inflight.Add(1) // saturate the backlog
	c, err := DialOpts(srv.Addr().String(), DialOptions{Timeout: time.Second, MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Interval(0, 1000, ts+1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated server returned %v, want ErrOverloaded", err)
	}
	if got := srv.shed.Load(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}

	// A retrying client backs off and succeeds once the backlog drains.
	rc, err := DialOpts(srv.Addr().String(), DialOptions{
		Timeout: time.Second, MaxRetries: 3, BackoffBase: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	go func() {
		time.Sleep(10 * time.Millisecond)
		srv.inflight.Add(-1)
	}()
	if _, err := rc.Interval(0, 1000, ts+1); err != nil {
		t.Fatalf("retrying client did not ride through the overload: %v", err)
	}
	if rc.Retries() == 0 {
		t.Error("no retry recorded across the overload window")
	}
	if rc.Reconnects() != 0 {
		t.Errorf("overload reply caused %d reconnects; the connection should have been reused", rc.Reconnects())
	}
}

// TestChaosFaultMatrix runs the retrying client against each fault family
// with a fixed seed. Chaos may cost round trips (errors after the budget),
// but a successful query must NEVER return another query's data — the
// correctness property the id protocol guarantees.
func TestChaosFaultMatrix(t *testing.T) {
	seed := chaosSeed(t)
	cases := []struct {
		name string
		fcfg faultnet.Config
	}{
		{"drops", faultnet.Config{Seed: seed, DropWrite: 0.3}},
		{"resets", faultnet.Config{Seed: seed, Reset: 0.08}},
		{"partial-writes", faultnet.Config{Seed: seed, PartialWrite: 0.3}},
		{"latency", faultnet.Config{Seed: seed, ReadLatency: 2 * time.Millisecond, WriteLatency: 2 * time.Millisecond}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, ts := chaosFixture(t, tc.fcfg, ServeOptions{})
			c, err := DialOpts(srv.Addr().String(), DialOptions{
				Timeout:     100 * time.Millisecond,
				MaxRetries:  8,
				BackoffBase: time.Millisecond,
				BackoffMax:  10 * time.Millisecond,
				Seed:        seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			successes := 0
			for i := 0; i < 20; i++ {
				// Alternate a full-trace query with an empty-interval one so
				// a stale response would be caught as a wrong total.
				var counts map[string]float64
				var err error
				wantFull := i%2 == 0
				if wantFull {
					counts, err = c.Interval(0, 1000, ts+1)
				} else {
					counts, err = c.Interval(0, ts+100, ts+200)
				}
				if err != nil {
					continue // chaos may exhaust the budget; wrong data may not
				}
				successes++
				var total float64
				for _, n := range counts {
					total += n
				}
				if wantFull && (total < 50 || total > 70) {
					t.Fatalf("query %d: total %v, want ~60 (mismatched response?)", i, total)
				}
				if !wantFull && total != 0 {
					t.Fatalf("query %d: empty interval returned %v packets (stale response)", i, total)
				}
			}
			if successes < 15 {
				t.Fatalf("only %d/20 queries succeeded under %s with an 8-retry budget", successes, tc.name)
			}
			t.Logf("%s: %d/20 ok, timeouts=%d retries=%d reconnects=%d",
				tc.name, successes, c.Timeouts(), c.Retries(), c.Reconnects())
		})
	}
}

// TestChaosConcurrentClientsUnderFaults hammers the server from several
// goroutines while writes drop, under -race: every successful answer must
// be the right one for the interval asked.
func TestChaosConcurrentClientsUnderFaults(t *testing.T) {
	srv, ts := chaosFixture(t, faultnet.Config{Seed: chaosSeed(t), DropWrite: 0.15}, ServeOptions{})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := DialOpts(srv.Addr().String(), DialOptions{
				Timeout:     100 * time.Millisecond,
				MaxRetries:  8,
				BackoffBase: time.Millisecond,
				Seed:        int64(g + 1),
			})
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 10; i++ {
				full := (g+i)%2 == 0
				var counts map[string]float64
				var err error
				if full {
					counts, err = c.Interval(0, 1000, ts+1)
				} else {
					counts, err = c.Interval(0, ts+100, ts+200)
				}
				if err != nil {
					continue
				}
				var total float64
				for _, n := range counts {
					total += n
				}
				if full && (total < 50 || total > 70) {
					t.Errorf("client %d query %d: total %v, want ~60", g, i, total)
				}
				if !full && total != 0 {
					t.Errorf("client %d query %d: stale response (%v packets for empty interval)", g, i, total)
				}
			}
		}(g)
	}
	wg.Wait()
}
