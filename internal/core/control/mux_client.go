package control

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"printqueue/internal/telemetry"
	"printqueue/internal/tracing"
)

// MuxClient is the wire-protocol-v2 client: one TCP connection, many
// requests in flight. Callers from any number of goroutines issue queries
// concurrently; each request is tagged with a monotonically increasing id,
// written as one binary frame, and parked in a per-id pending map until
// the reader goroutine delivers the matching reply — so a connection
// sustains pipelined throughput bounded by the server's execution rate,
// not by round-trip latency.
//
// The resilience model is PR 4's, adapted to multiplexing:
//
//   - Ids make late replies harmless: a reply whose id is no longer
//     pending (its waiter timed out and moved on) is discarded, never
//     surfaced to the wrong caller.
//   - Any transport failure — an I/O error, a torn or undecodable frame —
//     poisons the connection: every pending request fails with a
//     retryable error, the socket is closed, and the next attempt
//     redials. Frames cannot resynchronize mid-stream, so poisoning is
//     the only safe response to a framing fault.
//   - A round-trip timeout also poisons: queries execute in microseconds,
//     so a silent server almost always means a dead or wedged peer, and
//     failing the other pending requests into their own retry loops is
//     cheaper than letting them wait out their full deadlines.
//   - Retries reuse the exponential backoff + jitter machinery, and an
//     overloaded reply stays retryable on the same connection (framing is
//     intact; the server answered).
type MuxClient struct {
	addr        string
	timeout     time.Duration
	maxRetries  int
	backoffBase time.Duration
	backoffMax  time.Duration
	dialer      func(addr string, timeout time.Duration) (net.Conn, error)

	closed atomic.Bool

	// mu guards the connection lifecycle, the id counter, and the pending
	// map. It is held only for bookkeeping — never across I/O — so round
	// trips overlap freely.
	mu      sync.Mutex
	conn    net.Conn
	gen     uint64 // bumped per adopted connection; stale poisons no-op
	broken  bool
	nextID  uint64
	pending map[uint64]chan muxReply

	// wmu serializes frame writes (a frame must hit the wire contiguously).
	wmu sync.Mutex

	jit   *jitterSource
	sleep func(time.Duration) // test hook; time.Sleep

	timeouts, retries, reconnects      atomic.Int64
	inflight                           atomic.Int64
	timeoutCtr, retryCtr, reconnectCtr *telemetry.Counter

	// tracer samples round trips into end-to-end traces (nil = off). A
	// sampled query is sent as a traced frame carrying the trace id, and the
	// reply's server-side spans are folded into the client trace.
	tracer *tracing.Tracer
}

// muxReply is what the reader goroutine delivers to a waiting round trip.
type muxReply struct {
	result BatchResult    // single-query replies
	batch  []BatchResult  // batch replies
	spans  []tracing.Span // server-side spans from a traced reply
	err    error          // transport-level failure (the connection died)
}

// muxTimeoutError is the round-trip deadline failure; it satisfies
// net.Error so the shared retryable/noteTimeout logic treats it like any
// other I/O timeout.
type muxTimeoutError struct{}

func (muxTimeoutError) Error() string   { return "control: mux round trip timed out" }
func (muxTimeoutError) Timeout() bool   { return true }
func (muxTimeoutError) Temporary() bool { return true }

var errMuxTimeout net.Error = muxTimeoutError{}

// errPoisoned is delivered to pending round trips when a concurrent
// failure poisons the connection out from under them. It wraps errDesync
// so it is retryable, without being counted as those waiters' own timeout.
var errPoisoned = fmt.Errorf("%w: connection poisoned by a concurrent failure", errDesync)

// DialMux connects a multiplexed binary-protocol client with default
// options.
func DialMux(addr string) (*MuxClient, error) {
	return DialMuxOpts(addr, DialOptions{})
}

// DialMuxOpts connects a MuxClient with explicit options. Like DialOpts,
// the initial dial is not retried; the retry budget applies per round trip.
func DialMuxOpts(addr string, opts DialOptions) (*MuxClient, error) {
	timeout, maxRetries, backoffBase, backoffMax, seed, dialer := opts.resolved()
	c := &MuxClient{
		addr:         addr,
		timeout:      timeout,
		maxRetries:   maxRetries,
		backoffBase:  backoffBase,
		backoffMax:   backoffMax,
		dialer:       dialer,
		pending:      make(map[uint64]chan muxReply),
		jit:          newJitterSource(seed),
		sleep:        time.Sleep,
		timeoutCtr:   opts.Timeouts,
		retryCtr:     opts.Retries,
		reconnectCtr: opts.Reconnects,
		tracer:       opts.Tracer,
	}
	conn, err := dialer(addr, max(timeout, 0))
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.adoptLocked(conn)
	c.mu.Unlock()
	return c, nil
}

// adoptLocked installs a fresh connection and starts its reader goroutine.
// Caller holds mu.
func (c *MuxClient) adoptLocked(conn net.Conn) {
	c.conn = conn
	c.gen++
	c.broken = false
	go c.readLoop(conn, c.gen)
}

// Close closes the connection and fails every pending round trip.
// Subsequent queries fail with net.ErrClosed instead of redialing.
func (c *MuxClient) Close() error {
	c.closed.Store(true)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failPendingLocked(net.ErrClosed)
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	c.broken = true
	return err
}

// Timeouts returns how many round trips have hit their deadline.
func (c *MuxClient) Timeouts() int64 { return c.timeouts.Load() }

// Retries returns how many round-trip attempts were retries.
func (c *MuxClient) Retries() int64 { return c.retries.Load() }

// Reconnects returns how many times the client redialed after poisoning a
// connection — the per-connection redial count PR 4 surfaces on the JSON
// client as well.
func (c *MuxClient) Reconnects() int64 { return c.reconnects.Load() }

// InFlight returns how many round trips are currently outstanding.
func (c *MuxClient) InFlight() int64 { return c.inflight.Load() }

// readLoop drains reply frames for one connection generation, delivering
// each to its pending waiter. Any read or decode failure poisons the
// connection.
func (c *MuxClient) readLoop(conn net.Conn, gen uint64) {
	br := getReader(conn)
	defer putReader(br)
	scratch := getBuf()
	defer func() { putBuf(scratch) }()
	for {
		op, payload, err := readFrame(br, scratch, maxFramePayload)
		scratch = payload[:0]
		if err != nil {
			c.poison(gen, err)
			return
		}
		var id uint64
		var reply muxReply
		switch op {
		case opReply:
			var r BatchResult
			id, r, err = decodeReply(payload)
			reply = muxReply{result: r}
		case opBatchReply:
			var rs []BatchResult
			id, rs, err = decodeBatchReply(payload)
			reply = muxReply{batch: rs}
		case opReplyT:
			var r BatchResult
			var sp []tracing.Span
			id, r, sp, err = decodeReplyT(payload)
			reply = muxReply{result: r, spans: sp}
		case opBatchReplyT:
			var rs []BatchResult
			var sp []tracing.Span
			id, rs, sp, err = decodeBatchReplyT(payload)
			reply = muxReply{batch: rs, spans: sp}
		default:
			err = errBadMagic
		}
		if err != nil {
			c.poison(gen, err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[id]
		if ok {
			delete(c.pending, id)
		}
		c.mu.Unlock()
		if ok {
			ch <- reply // buffered; a late reply with no waiter is discarded
		}
	}
}

// poison fails every pending round trip of generation gen and closes the
// connection. A stale generation (the client already redialed) is a no-op,
// so an old reader unwinding cannot kill a fresh connection.
func (c *MuxClient) poison(gen uint64, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		return
	}
	c.broken = true
	if c.conn != nil {
		c.conn.Close()
	}
	c.failPendingLocked(err)
}

func (c *MuxClient) failPendingLocked(err error) {
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- muxReply{err: err}
	}
}

// register ensures a live connection and parks a new id in the pending
// map, returning the connection to write to and its generation.
func (c *MuxClient) register() (conn net.Conn, gen, id uint64, ch chan muxReply, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return nil, 0, 0, nil, net.ErrClosed
	}
	if c.conn == nil || c.broken {
		if c.conn != nil {
			c.conn.Close()
		}
		conn, err := c.dialer(c.addr, max(c.timeout, 0))
		if err != nil {
			return nil, 0, 0, nil, err
		}
		c.adoptLocked(conn)
		c.reconnects.Add(1)
		if c.reconnectCtr != nil {
			c.reconnectCtr.Inc()
		}
	}
	c.nextID++
	id = c.nextID
	ch = make(chan muxReply, 1)
	c.pending[id] = ch
	return c.conn, c.gen, id, ch, nil
}

// unregister abandons a pending id (deadline expired). The eventual reply,
// if any, is discarded by the reader.
func (c *MuxClient) unregister(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// writeFrame writes one frame under the write deadline, serialized against
// concurrent senders, and recycles buf.
func (c *MuxClient) writeFrame(conn net.Conn, buf []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	defer putBuf(buf)
	if c.timeout > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(c.timeout)); err != nil {
			return err
		}
	}
	_, err := conn.Write(buf)
	return err
}

// await blocks for the reply or the round-trip deadline. On deadline it
// poisons the connection (see the type comment) and reports errMuxTimeout.
func (c *MuxClient) await(gen, id uint64, ch chan muxReply) (muxReply, error) {
	var timeoutC <-chan time.Time
	if c.timeout > 0 {
		timer := time.NewTimer(c.timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	select {
	case r := <-ch:
		if r.err != nil {
			return r, c.noteTimeout(r.err)
		}
		return r, nil
	case <-timeoutC:
		c.unregister(id)
		c.timeouts.Add(1)
		if c.timeoutCtr != nil {
			c.timeoutCtr.Inc()
		}
		c.poison(gen, errPoisoned)
		return muxReply{}, errMuxTimeout
	}
}

// noteTimeout mirrors QueryClient.noteTimeout for transport errors
// delivered through the pending map.
func (c *MuxClient) noteTimeout(err error) error {
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		c.timeouts.Add(1)
		if c.timeoutCtr != nil {
			c.timeoutCtr.Inc()
		}
	}
	return err
}

// backoff mirrors QueryClient.backoff; the jitter source is lock-free
// because mux round trips retry from many goroutines at once.
func (c *MuxClient) backoff(attempt int) time.Duration {
	return backoffDur(c.backoffBase, c.backoffMax, attempt, c.jit)
}

// roundTrip performs one query with the retry budget. encode builds the
// request frame for a given id; decode extracts the caller's answer from
// the delivered reply. When tr is non-nil the attempt's encode, write, and
// await phases are recorded as client spans and the reply's server spans
// are folded in (retried attempts each leave their own spans, so a trace
// shows every wire attempt the query cost).
func (c *MuxClient) roundTrip(tr *tracing.Trace, encode func(b []byte, id uint64) []byte, decode func(muxReply) (muxReply, error)) (muxReply, error) {
	c.inflight.Add(1)
	defer c.inflight.Add(-1)
	var lastErr error
	for attempt := 0; attempt <= c.maxRetries; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			if c.retryCtr != nil {
				c.retryCtr.Inc()
			}
			if d := c.backoff(attempt); d > 0 {
				c.sleep(d)
			}
		}
		if c.closed.Load() {
			return muxReply{}, net.ErrClosed
		}
		conn, gen, id, ch, err := c.register()
		if err != nil {
			lastErr = err
			if !retryable(err) {
				return muxReply{}, err
			}
			continue
		}
		spE := tr.StartSpan("client.encode", tracing.SrcClient)
		buf := encode(getBuf(), id)
		spE.End()
		spW := tr.StartSpan("client.write", tracing.SrcClient)
		err = c.writeFrame(conn, buf)
		spW.End()
		if err != nil {
			c.unregister(id)
			c.poison(gen, err)
			lastErr = c.noteTimeout(err)
			if !retryable(err) {
				return muxReply{}, err
			}
			continue
		}
		spA := tr.StartSpan("client.await", tracing.SrcClient)
		reply, err := c.await(gen, id, ch)
		spA.End()
		if err == nil {
			tr.AddSpans(reply.spans)
			reply, err = decode(reply)
			if err == nil {
				return reply, nil
			}
		}
		lastErr = err
		if !retryable(err) {
			return muxReply{}, err
		}
	}
	return muxReply{}, lastErr
}

// query runs one single-query round trip. Sampled queries go out as traced
// frames (opQueryT) carrying the trace id; unsampled ones stay on the
// byte-identical untraced path and only feed the slow-query log.
func (c *MuxClient) query(q BatchQuery) (map[string]float64, error) {
	var (
		tr *tracing.Trace
		t0 time.Time
	)
	name := kindName(q.Kind)
	if c.tracer != nil {
		t0 = time.Now()
		tr = c.tracer.Start(name)
	}
	counts, err := c.queryTraced(q, tr)
	if tr != nil {
		tr.FinishErr(err)
	} else if c.tracer != nil {
		c.tracer.MaybeSlow(name, t0, time.Since(t0), err)
	}
	return counts, err
}

// queryTraced runs one single-query round trip recording into tr, a
// caller-owned trace that is NOT finished here — callers that fan one
// logical operation out to many switches (the fleet collector) pass the
// same trace to every leg so the per-hop client spans and each hop's
// server-side spans all join under one id. tr may be nil (untraced).
func (c *MuxClient) queryTraced(q BatchQuery, tr *tracing.Trace) (map[string]float64, error) {
	encode := func(b []byte, id uint64) []byte { return appendQueryFrame(b, id, q) }
	if tr != nil {
		encode = func(b []byte, id uint64) []byte { return appendQueryTFrame(b, id, tr.ID(), q) }
	}
	reply, err := c.roundTrip(tr, encode,
		func(r muxReply) (muxReply, error) {
			if r.result.Err != nil {
				// Application errors (unknown port, empty interval) come
				// back as-is; ErrOverloaded stays retryable like PR 4.
				return muxReply{}, r.result.Err
			}
			return r, nil
		},
	)
	if err != nil {
		return nil, err
	}
	counts := reply.result.Counts
	if counts == nil {
		counts = make(map[string]float64)
	}
	return counts, nil
}

// Interval queries per-flow packet counts over [start, end) on a port.
func (c *MuxClient) Interval(port int, start, end uint64) (map[string]float64, error) {
	return c.query(BatchQuery{Kind: IntervalQuery, Port: port, Start: start, End: end})
}

// IntervalTraced is Interval recording into a caller-owned trace (nil =
// untraced). The trace's id travels on the wire so the server's spans fold
// into it; the caller finishes the trace — this lets one fleet-level trace
// absorb every hop's round trip.
func (c *MuxClient) IntervalTraced(port int, start, end uint64, tr *tracing.Trace) (map[string]float64, error) {
	return c.queryTraced(BatchQuery{Kind: IntervalQuery, Port: port, Start: start, End: end}, tr)
}

// Original queries the original culprits at time t on a port/queue.
func (c *MuxClient) Original(port, queue int, t uint64) (map[string]float64, error) {
	return c.query(BatchQuery{Kind: OriginalQuery, Port: port, Queue: queue, Start: t})
}

// Batch sends many queries in a single frame and returns their answers in
// request order, one frame back. Transport failures (and whole-batch
// overload) are retried under the usual budget; per-query application
// errors come back in the matching BatchResult. An all-overloaded reply is
// treated as a whole-batch shed and retried.
func (c *MuxClient) Batch(queries []BatchQuery) ([]BatchResult, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	if len(queries) > maxBatch {
		return nil, errFrameSize
	}
	var (
		tr *tracing.Trace
		t0 time.Time
	)
	if c.tracer != nil {
		t0 = time.Now()
		tr = c.tracer.Start("batch")
	}
	encode := func(b []byte, id uint64) []byte { return appendBatchFrame(b, id, queries) }
	if tr != nil {
		encode = func(b []byte, id uint64) []byte { return appendBatchTFrame(b, id, tr.ID(), queries) }
	}
	reply, err := c.roundTrip(tr, encode,
		func(r muxReply) (muxReply, error) {
			if len(r.batch) != len(queries) {
				return muxReply{}, errTruncated // poisoned by the reader already if torn; defensive
			}
			shed := true
			for i := range r.batch {
				if r.batch[i].Err != ErrOverloaded {
					shed = false
					break
				}
			}
			if shed {
				return muxReply{}, ErrOverloaded
			}
			return r, nil
		},
	)
	if tr != nil {
		tr.FinishErr(err)
	} else if c.tracer != nil {
		c.tracer.MaybeSlow("batch", t0, time.Since(t0), err)
	}
	if err != nil {
		return nil, err
	}
	for i := range reply.batch {
		if reply.batch[i].Counts == nil && reply.batch[i].Err == nil {
			reply.batch[i].Counts = make(map[string]float64)
		}
	}
	return reply.batch, nil
}
