// Package control implements PrintQueue's control-plane analysis program
// (paper §6): per-port activation with partitioned register arrays, frozen
// periodic register reads with double buffering, on-demand data-plane
// queries served from a third ("special") register set, and query execution
// against the checkpointed state.
package control

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"printqueue/internal/core/histstore"
	"printqueue/internal/core/qmonitor"
	"printqueue/internal/core/registers"
	"printqueue/internal/core/timewindow"
	"printqueue/internal/flow"
	"printqueue/internal/pktrec"
	"printqueue/internal/telemetry"
	"printqueue/internal/tracing"
)

// Config configures a PrintQueue deployment on one switch.
type Config struct {
	// TW configures the time windows of every activated port.
	TW timewindow.Config
	// QM configures the queue monitor of every activated port/queue.
	QM qmonitor.Config
	// Ports lists the egress ports PrintQueue is activated on. As in the
	// paper, the count is rounded up to a power of two to size the register
	// partitions.
	Ports []int
	// QueuesPerPort is the number of priority classes tracked per port by
	// the queue monitor (the time windows are scheduling-agnostic and need
	// only one instance per port). Default 1.
	QueuesPerPort int
	// PollPeriodNs overrides the periodic checkpoint interval. Default (0)
	// is the set period of the time windows, the paper's upper bound for
	// loss-free polling.
	PollPeriodNs uint64
	// ReadRateEntriesPerSec models the control plane's register read
	// throughput (analysis-program I/O + PCIe). 0 means unlimited. When a
	// checkpoint read would take longer than the poll period, the flip is
	// counted as infeasible — the regime above the paper's Figure-13
	// "data exchange limit" line.
	ReadRateEntriesPerSec float64
	// DPTrigger, if non-nil, is evaluated for every dequeued packet; when
	// it returns true (and no data-plane query is in flight) the packet
	// triggers an on-demand freeze and query of its own queuing interval.
	DPTrigger func(p *pktrec.Packet) bool
	// MaxCheckpoints bounds the retained checkpoint history per port
	// (0 = unlimited). Older checkpoints are discarded FIFO.
	MaxCheckpoints int
	// History, when non-nil, enables the tiered checkpoint history: every
	// retired checkpoint is also appended — compactly encoded — to a
	// durable segment log, and interval queries that reach past the in-RAM
	// (hot) tier are answered from the log's cold tier. See histstore.
	History *histstore.Options
	// QueryPath selects the interval-query implementation. The default
	// (QueryPathIndexed) prunes the checkpoint run by coverage and
	// binary-searches each checkpoint's sorted cell index; QueryPathScan is
	// the reference linear scan retained for ablation and differential
	// testing. Results are bit-identical between the two.
	QueryPath QueryPath
}

// QueryPath selects how interval queries walk the checkpoint history.
type QueryPath int

const (
	// QueryPathIndexed binary-searches the overlapping checkpoint run and,
	// within each checkpoint, the overlapping cell range per window.
	QueryPathIndexed QueryPath = iota
	// QueryPathScan visits every cell of every window of every retained
	// checkpoint — the pre-index behavior, kept as the reference
	// implementation.
	QueryPathScan
)

func (c *Config) normalize() error {
	if err := c.TW.Validate(); err != nil {
		return err
	}
	if err := c.QM.Validate(); err != nil {
		return err
	}
	if len(c.Ports) == 0 {
		return fmt.Errorf("control: no ports activated")
	}
	seen := make(map[int]bool, len(c.Ports))
	for _, p := range c.Ports {
		if p < 0 {
			return fmt.Errorf("control: negative port %d", p)
		}
		if seen[p] {
			return fmt.Errorf("control: duplicate port %d", p)
		}
		seen[p] = true
	}
	if c.QueuesPerPort <= 0 {
		c.QueuesPerPort = 1
	}
	if c.PollPeriodNs == 0 {
		c.PollPeriodNs = c.TW.SetPeriod()
	}
	return nil
}

// setSel identifies one register set by its two selector bits (Figure 8).
type setSel struct{ dp, flip bool }

func (s setSel) index() int {
	i := 0
	if s.flip {
		i |= 1
	}
	if s.dp {
		i |= 2
	}
	return i
}

// toggleFlip returns the selector with the periodic (second-highest) bit
// flipped.
func (s setSel) toggleFlip() setSel { return setSel{dp: s.dp, flip: !s.flip} }

// toggleDP returns the selector with the data-plane-query (highest) bit
// flipped.
func (s setSel) toggleDP() setSel { return setSel{dp: !s.dp, flip: s.flip} }

// Checkpoint is one frozen read of a port's register state.
type Checkpoint struct {
	// FreezeTime is when the registers were frozen; the checkpoint covers
	// dequeues in (PrevFreeze, FreezeTime].
	FreezeTime uint64
	PrevFreeze uint64
	// Special marks checkpoints produced by a data-plane query freeze
	// rather than the periodic poll.
	Special bool

	TW *timewindow.Snapshot
	QM []*qmonitor.Snapshot // one per queue

	// filtered is the lazily built Algorithm-3 result. It is droppable:
	// when the checkpoint falls out of the hot tier its index can be
	// released (DropFiltered) and rebuilt on demand if the checkpoint is
	// ever queried again, so evicted history stops pinning query indexes.
	filtered atomic.Pointer[timewindow.Filtered]
	// indexNs, when set (by snapshotSet), receives the one-time cost of the
	// Algorithm-3 filter plus cell-index build.
	indexNs *telemetry.Histogram
	// histBytes, when set, tracks the filtered form's resident bytes in the
	// shared printqueue_history_bytes gauge.
	histBytes *telemetry.Gauge
}

// Filtered returns the checkpoint's time windows with Algorithm 3 applied
// and the per-window cell index built, computing both on first use. It is
// safe for concurrent use, so query goroutines may share checkpoints. Two
// racing first uses may both build; the CAS winner's result is kept and
// charged to the history gauge.
func (c *Checkpoint) Filtered() *timewindow.Filtered {
	if f := c.filtered.Load(); f != nil {
		return f
	}
	start := time.Now()
	f := c.TW.Filter()
	if c.filtered.CompareAndSwap(nil, f) {
		if c.indexNs != nil {
			c.indexNs.Observe(uint64(time.Since(start).Nanoseconds()))
		}
		if c.histBytes != nil {
			c.histBytes.Add(f.MemBytes())
		}
		return f
	}
	return c.Filtered()
}

// DropFiltered releases the memoized filtered form (if built), refunding
// its bytes. Queries holding the old pointer keep working; a later
// Filtered() call rebuilds.
func (c *Checkpoint) DropFiltered() {
	if f := c.filtered.Swap(nil); f != nil && c.histBytes != nil {
		c.histBytes.Add(-f.MemBytes())
	}
}

// memBytes is the checkpoint's raw register-copy footprint (excluding the
// separately tracked filtered form).
func (c *Checkpoint) memBytes() int64 {
	n := int64(0)
	if c.TW != nil {
		n += c.TW.MemBytes()
	}
	for _, qm := range c.QM {
		if qm != nil {
			n += qm.MemBytes()
		}
	}
	return n
}

// DPQuery is the record of one data-plane-triggered query.
type DPQuery struct {
	Port        int
	Queue       int
	Victim      flow.Key
	EnqTS       uint64
	DeqTS       uint64
	EnqQdepth   int
	FreezeTime  uint64
	Result      flow.Counts
	Checkpoint  *Checkpoint
	ReadLatency uint64 // ns the special-register read occupied the front end
}

// Stats aggregates control-plane accounting across ports.
type Stats struct {
	Checkpoints     int   // periodic freezes taken
	SpecialFreezes  int   // data-plane query freezes
	EntriesRead     int64 // register entries copied to the control plane
	InfeasibleFlips int   // freezes whose read exceeded the poll period or overran the snapshotter
	DPSuppressed    int   // data-plane triggers ignored because a read was in flight
	PacketsObserved int64
}

// statsCounters is the live, atomically updated form of Stats, registered
// in the telemetry registry so Stats() and /metrics read the same source.
// The counters are touched from sharded ingestion workers and the
// background snapshot goroutine concurrently, and read by Stats() — or a
// scrape — at any time.
type statsCounters struct {
	checkpoints     *telemetry.Counter
	specialFreezes  *telemetry.Counter
	entriesRead     *telemetry.Counter
	infeasibleFlips *telemetry.Counter
	dpSuppressed    *telemetry.Counter
	// freezeRetireNs is the freeze-to-retire latency of checkpoint reads:
	// from the flip that froze a register set to the checkpoint joining the
	// query-visible history. Under a Pipeline this spans the snapshot queue
	// plus the background register copy; in synchronous mode it is the
	// inline copy alone.
	freezeRetireNs *telemetry.Histogram
}

// register binds the counters into a registry under their exported names.
func (sc *statsCounters) register(reg *telemetry.Registry) {
	sc.checkpoints = reg.Counter("printqueue_checkpoints_total",
		"Periodic register freezes taken across all ports.")
	sc.specialFreezes = reg.Counter("printqueue_special_freezes_total",
		"Register freezes triggered by data-plane queries.")
	sc.entriesRead = reg.Counter("printqueue_checkpoint_entries_read_total",
		"Register entries copied to the control plane by checkpoint reads.")
	sc.infeasibleFlips = reg.Counter("printqueue_infeasible_flips_total",
		"Freezes whose read exceeded the poll period or stalled on the snapshotter.")
	sc.dpSuppressed = reg.Counter("printqueue_dp_suppressed_total",
		"Data-plane query triggers ignored because a special read was in flight.")
	sc.freezeRetireNs = reg.Histogram("printqueue_checkpoint_freeze_to_retire_ns",
		"Latency from freezing a register set to its checkpoint retiring into the history.",
		telemetry.LatencyBuckets)
}

// queryPathCounters instruments the interval-query execution path: how much
// of the checkpoint history pruning eliminated, how many index cells the
// surviving run touched, the one-time index build cost, and how often a
// query fanned out across the worker pool.
type queryPathCounters struct {
	checkpointsScanned *telemetry.Counter
	checkpointsPruned  *telemetry.Counter
	cellsVisited       *telemetry.Counter
	indexBuildNs       *telemetry.Histogram
	parallelFanouts    *telemetry.Counter
	coldCheckpoints    *telemetry.Counter
}

func (qc *queryPathCounters) register(reg *telemetry.Registry) {
	qc.checkpointsScanned = reg.Counter("printqueue_query_checkpoints_scanned_total",
		"Checkpoints an interval query actually executed against.")
	qc.checkpointsPruned = reg.Counter("printqueue_query_checkpoints_pruned_total",
		"Checkpoints skipped by the coverage binary search without being touched.")
	qc.cellsVisited = reg.Counter("printqueue_query_cells_visited_total",
		"Time-window cells visited by interval queries (index hits, or full walks on the scan path).")
	qc.indexBuildNs = reg.Histogram("printqueue_query_index_build_ns",
		"One-time cost of filtering a checkpoint and building its sorted cell index.",
		telemetry.LatencyBuckets)
	qc.parallelFanouts = reg.Counter("printqueue_query_parallel_fanouts_total",
		"Interval queries whose checkpoint run was sharded across query workers.")
	qc.coldCheckpoints = reg.Counter("printqueue_query_cold_checkpoints_total",
		"Checkpoints served from the cold (on-disk) history tier by interval queries.")
}

type portState struct {
	id     int
	prefix int // rank among activated ports; the q-bit register prefix
	// subject is the precomputed event-log subject ("port=N"), so
	// recording an event never formats on a data-plane goroutine.
	subject string

	// mu guards the checkpoint and data-plane query histories, which the
	// per-port ingestion goroutine and the snapshot goroutine append to and
	// any number of query goroutines read. The per-packet hot path takes no
	// lock.
	mu sync.RWMutex

	tw [4]*timewindow.Windows // by setSel.index()
	qm [][4]*qmonitor.Monitor // [queue][set]

	writeSel      setSel
	lastFlip      uint64
	started       bool
	dpLockedUntil uint64

	// packets counts dequeues observed on this port. Per-port so that each
	// ingestion worker increments an uncontended counter; Stats() sums them
	// and /metrics exports them as printqueue_port_packets_total{port=...}.
	packets *telemetry.Counter

	// Pending-snapshot bookkeeping for off-hot-path checkpointing: flip
	// hands the frozen set to the snapshot goroutine and must not write
	// into a set whose read is still in flight (the paper's double-buffer
	// invariant). pendCond is signalled when a snapshot retires.
	pendMu     sync.Mutex
	pendCond   *sync.Cond
	pendingSet [4]bool
	pendingN   int

	checkpoints cpRing
	dpQueries   []*DPQuery
	// histGen is bumped (under mu) whenever the history's front is trimmed,
	// invalidating caches keyed on checkpoint indices.
	histGen uint64

	// prefixMu guards the memoized qmonitor.Merge prefixes used by
	// QueryOriginal: qmPrefix[queue][i] is the merge of checkpoints[0..i]'s
	// queue-q snapshots, valid while prefixGen matches histGen. Appends
	// extend the cache; front trims reset it via the generation check.
	prefixMu  sync.Mutex
	prefixGen uint64
	qmPrefix  [][]*qmonitor.Snapshot
}

// System is the per-switch PrintQueue instance: the data-plane structures
// for every activated port plus the analysis program's state.
type System struct {
	cfg    Config
	layout registers.Layout
	// twFiles[i] backs window i across all ports and register sets.
	twFiles []*registers.File[timewindow.Cell]
	qmFile  *registers.File[qmonitor.Entry]
	ports   map[int]*portState
	// portTab is a dense port-id -> state table so the per-packet hot path
	// avoids a map lookup (the ingress flow-table match, in hardware terms).
	portTab []*portState
	stats   statsCounters
	qpath   queryPathCounters
	// twCoeff caches cfg.TW.Coefficients() so query accumulators do not
	// recompute the recursion per query.
	twCoeff []float64
	// telemetry is the system's metric registry: the stats counters, the
	// pipeline/snapshotter instrumentation, and the query-path metrics all
	// register here, and the ops server scrapes it.
	telemetry *telemetry.Registry
	// snap, when non-nil, is the background checkpoint goroutine: flips
	// hand frozen register sets to it instead of copying them inline on
	// the packet path. It is installed by Pipeline and must only change
	// while no ingestion workers are running.
	snap *snapshotter
	// pipe tracks the open Pipeline (if any) for introspection endpoints;
	// unlike snap it may be read concurrently from HTTP handlers.
	pipe atomic.Pointer[Pipeline]
	// pipeEver records that a pipeline was ever attached, so readiness
	// can distinguish "never had a pipeline" (fine) from
	// "pipeline stopped" (degraded).
	pipeEver atomic.Bool
	// tracer and events are the optional observability planes installed
	// by EnableTracing; nil (the default) keeps every trace/event hook a
	// single atomic load + nil test.
	tracer atomic.Pointer[tracing.Tracer]
	events atomic.Pointer[tracing.EventLog]
	// hist is the durable cold tier of the checkpoint history (nil unless
	// Config.History is set); histBytes is the shared resident-bytes gauge
	// covering the hot tier plus the cold tier's decode LRU.
	hist      *histstore.Store
	histBytes *telemetry.Gauge
	// stream fans retired checkpoints out to live subscribers (the fleet
	// collector's mirrors). With no subscriber it costs one atomic load
	// per retire.
	stream streamHub
}

// New builds a System. Register arrays are allocated for r(#ports)
// partitions exactly as §6.1 describes.
func New(cfg Config) (*System, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	qmSlots := len(cfg.Ports) * cfg.QueuesPerPort
	s := &System{
		cfg:       cfg,
		layout:    registers.Layout{PortBits: registers.PortBitsFor(len(cfg.Ports)), IndexBits: int(cfg.TW.K)},
		ports:     make(map[int]*portState, len(cfg.Ports)),
		telemetry: telemetry.NewRegistry(),
	}
	s.stats.register(s.telemetry)
	s.qpath.register(s.telemetry)
	s.histBytes = s.telemetry.Gauge("printqueue_history_bytes",
		"Resident bytes of checkpoint history (hot tier + cold LRU).")
	if cfg.History != nil {
		hist, err := histstore.Open(*cfg.History, s.telemetry)
		if err != nil {
			return nil, err
		}
		s.hist = hist
	}
	s.twCoeff = cfg.TW.Coefficients()
	s.twFiles = make([]*registers.File[timewindow.Cell], cfg.TW.T)
	for i := range s.twFiles {
		s.twFiles[i] = registers.NewFile[timewindow.Cell](s.layout)
	}
	qmLayout := registers.Layout{
		PortBits:  registers.PortBitsFor(qmSlots),
		IndexBits: bitsFor(cfg.QM.Entries()),
	}
	s.qmFile = registers.NewFile[qmonitor.Entry](qmLayout)

	maxPort := 0
	for _, port := range cfg.Ports {
		if port > maxPort {
			maxPort = port
		}
	}
	s.portTab = make([]*portState, maxPort+1)

	for rank, port := range cfg.Ports {
		ps := &portState{id: port, prefix: rank, subject: "port=" + strconv.Itoa(port)}
		ps.pendCond = sync.NewCond(&ps.pendMu)
		ps.packets = s.telemetry.Counter("printqueue_port_packets_total",
			"Dequeued packets observed per activated port.",
			telemetry.L("port", strconv.Itoa(port)))
		for _, sel := range allSets() {
			storage := make([][]timewindow.Cell, cfg.TW.T)
			for i := range storage {
				storage[i] = s.twFiles[i].View(sel.dp, sel.flip, rank)
			}
			w, err := timewindow.New(cfg.TW, storage)
			if err != nil {
				return nil, err
			}
			ps.tw[sel.index()] = w
		}
		ps.qm = make([][4]*qmonitor.Monitor, cfg.QueuesPerPort)
		for q := 0; q < cfg.QueuesPerPort; q++ {
			for _, sel := range allSets() {
				view := s.qmFile.View(sel.dp, sel.flip, rank*cfg.QueuesPerPort+q)
				m, err := qmonitor.New(cfg.QM, view[:cfg.QM.Entries()])
				if err != nil {
					return nil, err
				}
				ps.qm[q][sel.index()] = m
			}
		}
		s.ports[port] = ps
		s.portTab[port] = ps
	}
	return s, nil
}

func allSets() [4]setSel {
	return [4]setSel{
		{dp: false, flip: false},
		{dp: false, flip: true},
		{dp: true, flip: false},
		{dp: true, flip: true},
	}
}

func bitsFor(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

// Config returns the system configuration (after normalization).
func (s *System) Config() Config { return s.cfg }

// Telemetry returns the system's metric registry. Components layered on
// the system (pipelines, query servers, ops endpoints) register and scrape
// their instrumentation here, so one /metrics page covers the deployment.
func (s *System) Telemetry() *telemetry.Registry { return s.telemetry }

// TraceOptions configures System.EnableTracing. Zero fields take the
// tracing package defaults (sampling stays off unless SampleEvery > 0,
// but the slow path and remote trace ids are always honored).
type TraceOptions struct {
	// SampleEvery samples 1-in-N locally issued queries. 0 disables
	// proactive sampling; remote trace ids and the slow path still work.
	SampleEvery int
	// SlowNs is the always-on slowlog threshold (0 = 10ms).
	SlowNs uint64
	// RingSize / SlowRingSize / MaxSpans bound the trace rings.
	RingSize     int
	SlowRingSize int
	MaxSpans     int
	// EventRing bounds the data-plane event ring (0 = 512).
	EventRing int
}

// EnableTracing installs the tracing and event planes on the system and
// registers their metrics. Safe to call while traffic flows (the planes
// are swapped in atomically); calling again replaces the rings but
// reuses the registered counters.
func (s *System) EnableTracing(o TraceOptions) (*tracing.Tracer, *tracing.EventLog) {
	tr := tracing.New(tracing.Config{
		SampleEvery:  o.SampleEvery,
		SlowNs:       o.SlowNs,
		RingSize:     o.RingSize,
		SlowRingSize: o.SlowRingSize,
		MaxSpans:     o.MaxSpans,
		Started: s.telemetry.Counter("printqueue_traces_started_total",
			"Traces opened (sampled, forced by a remote id, or slowlog promotions)."),
		Finished: s.telemetry.Counter("printqueue_traces_finished_total",
			"Traces closed; equals started when every trace is orphan-closed."),
		Slow: s.telemetry.Counter("printqueue_traces_slow_total",
			"Traces that crossed the slow-query threshold into the slowlog."),
		SpansDropped: s.telemetry.Counter("printqueue_trace_spans_dropped_total",
			"Spans dropped because a trace hit its span bound."),
	})
	ev := tracing.NewEventLog(o.EventRing)
	for k := 0; k < tracing.NumEventKinds; k++ {
		kind := tracing.EventKind(k)
		ev.SetCounter(kind, s.telemetry.Counter("printqueue_events_total",
			"Data-plane trigger events recorded in the event ring.",
			telemetry.L("kind", kind.String())))
	}
	s.tracer.Store(tr)
	s.events.Store(ev)
	return tr, ev
}

// Tracer returns the installed tracer, or nil when tracing is disabled.
// The nil tracer is safe to use: every method no-ops.
func (s *System) Tracer() *tracing.Tracer { return s.tracer.Load() }

// Events returns the installed event log, or nil when disabled (Record
// on a nil log is a no-op).
func (s *System) Events() *tracing.EventLog { return s.events.Load() }

// Degraded reports readiness problems: an empty slice means the system
// can serve. Today the one system-level condition is a pipeline that was
// attached and then stopped — ingestion is over, so the instance should
// be rotated out of serving before its history goes stale.
func (s *System) Degraded() []string {
	var reasons []string
	if s.pipeEver.Load() && s.pipe.Load() == nil {
		reasons = append(reasons, "pipeline-stopped")
	}
	return reasons
}

// Stats returns a snapshot of the control-plane counters. The counters are
// atomic (and shared with the telemetry registry, so /metrics shows the
// same values), making this safe to call from any goroutine while traffic
// is flowing — through the sharded ingestion pipeline or direct OnDequeue
// calls alike.
func (s *System) Stats() Stats {
	st := Stats{
		Checkpoints:     int(s.stats.checkpoints.Load()),
		SpecialFreezes:  int(s.stats.specialFreezes.Load()),
		EntriesRead:     s.stats.entriesRead.Load(),
		InfeasibleFlips: int(s.stats.infeasibleFlips.Load()),
		DPSuppressed:    int(s.stats.dpSuppressed.Load()),
	}
	for _, ps := range s.ports {
		st.PacketsObserved += ps.packets.Load()
	}
	return st
}

// Layout returns the time-window register layout (for SRAM accounting).
func (s *System) Layout() registers.Layout { return s.layout }

// entriesPerCheckpoint is the register entries copied per frozen read.
func (s *System) entriesPerCheckpoint() int {
	return s.cfg.TW.EntriesPerSnapshot() + s.cfg.QueuesPerPort*s.cfg.QM.EntriesPerSnapshot()
}

// readLatencyNs returns how long one checkpoint read occupies the control
// plane under the configured I/O budget.
func (s *System) readLatencyNs() uint64 {
	if s.cfg.ReadRateEntriesPerSec <= 0 {
		return 0
	}
	return uint64(float64(s.entriesPerCheckpoint()) / s.cfg.ReadRateEntriesPerSec * 1e9)
}

// OnDequeue is the egress-pipeline entry point: it is called for every
// packet leaving an activated port, in dequeue order, with metadata filled
// in. It updates the active register set, performs due periodic flips, and
// evaluates the data-plane query trigger. Packets for ports without
// PrintQueue are ignored (the ingress flow table found no match).
func (s *System) OnDequeue(p *pktrec.Packet) {
	if p.Port < 0 || p.Port >= len(s.portTab) {
		return
	}
	ps := s.portTab[p.Port]
	if ps == nil {
		return
	}
	now := p.Meta.DeqTimestamp()
	if !ps.started {
		ps.started = true
		ps.lastFlip = now
	} else if now-ps.lastFlip >= s.cfg.PollPeriodNs {
		s.flip(ps, now)
	}
	ps.packets.Add(1)

	ps.tw[ps.writeSel.index()].Insert(p.Flow, now)
	queue := p.Queue
	if queue < 0 || queue >= s.cfg.QueuesPerPort {
		queue = s.cfg.QueuesPerPort - 1
	}
	ps.qm[queue][ps.writeSel.index()].Observe(p.Flow, p.Meta.EnqQdepth)

	if s.cfg.DPTrigger != nil && s.cfg.DPTrigger(p) {
		if now < ps.dpLockedUntil {
			s.stats.dpSuppressed.Add(1)
		} else {
			s.dataPlaneQuery(ps, p, queue, now)
		}
	}
}

// snapshotSet copies register set sel of a port into a checkpoint and
// charges the read cost. In synchronous mode it runs on the caller; under a
// Pipeline it runs on the background snapshot goroutine, off the packet
// path — the software analogue of the paper's asynchronous PCIe register
// reads.
func (s *System) snapshotSet(ps *portState, sel int, freezeTime, prevFreeze uint64, special bool) *Checkpoint {
	cp := &Checkpoint{
		FreezeTime: freezeTime,
		PrevFreeze: prevFreeze,
		Special:    special,
		TW:         ps.tw[sel].Snapshot(),
		QM:         make([]*qmonitor.Snapshot, s.cfg.QueuesPerPort),
		indexNs:    s.qpath.indexBuildNs,
		histBytes:  s.histBytes,
	}
	for q := range cp.QM {
		cp.QM[q] = ps.qm[q][sel].Snapshot()
	}
	s.stats.entriesRead.Add(int64(s.entriesPerCheckpoint()))
	return cp
}

// retire appends a checkpoint, enforcing the history bound, and returns
// the checkpoint evicted to make room (nil when none). With a bounded
// history the ring overwrites its oldest slot in place, so steady-state
// retirement is O(1) — no per-checkpoint slice re-copy. Trimming the front
// shifts checkpoint indices, so it bumps the history generation and thereby
// invalidates the QueryOriginal prefix cache.
func (ps *portState) retire(cp *Checkpoint, max int) *Checkpoint {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	evicted := ps.checkpoints.push(cp, max)
	if evicted != nil {
		ps.histGen++
	}
	return evicted
}

// retireCheckpoint is the full retirement path: ring insert, hot-tier byte
// accounting, the evicted checkpoint's index drop, and the durable-log
// append (when the tiered history is enabled). Callers must invoke it off
// the per-packet hot path (it is: flips and DP freezes only).
func (s *System) retireCheckpoint(ps *portState, cp *Checkpoint) {
	evicted := ps.retire(cp, s.cfg.MaxCheckpoints)
	s.histBytes.Add(cp.memBytes())
	if evicted != nil {
		s.histBytes.Add(-evicted.memBytes())
		evicted.DropFiltered()
	}
	streaming := s.stream.active()
	if s.hist != nil {
		rec := &histstore.Record{
			Port:       ps.id,
			FreezeTime: cp.FreezeTime,
			PrevFreeze: cp.PrevFreeze,
			Special:    cp.Special,
			TW:         cp.TW,
			QM:         cp.QM,
		}
		// Append failures are counted by the store's own error counter; the
		// hot tier keeps serving, so ingestion never stops on a disk fault.
		if streaming {
			// Publish to subscribers through the append hook so the stream
			// reuses the bytes the log write already encoded — the encoder
			// builds a flow dictionary per call, so a second encode would
			// put allocations back on the snapshotter path.
			_ = s.hist.AppendWith(rec, func(payload []byte) {
				s.stream.publish(ps.id, cp.FreezeTime, cp.PrevFreeze, cp.Special, payload)
			})
		} else {
			_ = s.hist.Append(rec)
		}
		return
	}
	if streaming {
		// No durable log, but live subscribers: encode solely for the
		// stream. Catch-up replay is unavailable on such a switch (nothing
		// to replay from), so gaps heal only as new checkpoints arrive.
		buf := getBuf()
		payload, err := histstore.EncodeRecord(buf[:0], &histstore.Record{
			Port:       ps.id,
			FreezeTime: cp.FreezeTime,
			PrevFreeze: cp.PrevFreeze,
			Special:    cp.Special,
			TW:         cp.TW,
			QM:         cp.QM,
		})
		if err == nil {
			s.stream.publish(ps.id, cp.FreezeTime, cp.PrevFreeze, cp.Special, payload)
			putBuf(payload)
		} else {
			putBuf(buf)
		}
	}
}

// snapshotCheckpoints returns a stable view of the checkpoint history.
func (ps *portState) snapshotCheckpoints() []*Checkpoint {
	cps, _ := ps.snapshotCheckpointsGen()
	return cps
}

// snapshotCheckpointsGen additionally returns the history generation the
// copy was taken at.
func (ps *portState) snapshotCheckpointsGen() ([]*Checkpoint, uint64) {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	return ps.checkpoints.slice(), ps.histGen
}

// snapshotRun binary-searches the history for the run of checkpoints whose
// coverage overlaps [start, end) and copies only that run — pruning before
// the copy, so a narrow query over a deep history never materializes the
// whole checkpoint list. Also returns the total history length for the
// pruning counters and the hot tier's coverage start (the oldest retained
// checkpoint's PrevFreeze; ^uint64(0) when the history is empty), which the
// cold tier uses to avoid double counting.
func (ps *portState) snapshotRun(start, end uint64) (run []*Checkpoint, total int, hotStart uint64) {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	hotStart = ^uint64(0)
	if ps.checkpoints.len() > 0 {
		hotStart = ps.checkpoints.at(0).PrevFreeze
	}
	return ps.checkpoints.pruneCopy(start, end), ps.checkpoints.len(), hotStart
}

// markPending records that register set sel has a frozen read in flight.
func (ps *portState) markPending(sel int) {
	ps.pendMu.Lock()
	ps.pendingSet[sel] = true
	ps.pendingN++
	ps.pendMu.Unlock()
}

// clearPending retires set sel's frozen read and wakes any flip blocked on
// it.
func (ps *portState) clearPending(sel int) {
	ps.pendMu.Lock()
	ps.pendingSet[sel] = false
	ps.pendingN--
	ps.pendCond.Broadcast()
	ps.pendMu.Unlock()
}

// waitSetFree blocks until set sel has no frozen read in flight. Having to
// wait at all means the snapshotter fell a full poll period behind — the
// backpressure regime — so the stall is charged to InfeasibleFlips and
// recorded as a freeze-stall event (the stall duration in ns).
func (ps *portState) waitSetFree(sel int, s *System) {
	ps.pendMu.Lock()
	if ps.pendingSet[sel] {
		s.stats.infeasibleFlips.Add(1)
		start := time.Now()
		for ps.pendingSet[sel] {
			ps.pendCond.Wait()
		}
		ps.pendMu.Unlock()
		s.Events().Record(tracing.EventFreezeStall, ps.subject, time.Since(start).Nanoseconds(), 0)
		return
	}
	ps.pendMu.Unlock()
}

// drainPending blocks until every in-flight frozen read of this port has
// retired, so the checkpoint history is complete up to the last flip.
func (ps *portState) drainPending() {
	ps.pendMu.Lock()
	for ps.pendingN > 0 {
		ps.pendCond.Wait()
	}
	ps.pendMu.Unlock()
}

// flip performs one periodic frozen read: checkpoint the active set, then
// direct subsequent updates to the other periodic set (second-highest index
// bit toggled), seeding the queue monitor's top/seq continuity.
//
// With a background snapshotter installed (pipelined mode), the packet path
// only toggles the write selector and hands the now-idle set to the
// snapshot goroutine; the full-set register copy happens off the hot path.
// If the set about to become the write target still has a read in flight —
// the snapshotter is more than one poll period behind — the flip blocks
// until the read retires and the stall is charged to InfeasibleFlips,
// mirroring the paper's Figure-13 data-exchange limit.
func (s *System) flip(ps *portState, now uint64) {
	oldSel := ps.writeSel.index()
	prevFreeze := ps.lastFlip
	s.stats.checkpoints.Add(1)
	if lat := s.readLatencyNs(); lat > s.cfg.PollPeriodNs {
		s.stats.infeasibleFlips.Add(1)
	}
	newSel := ps.writeSel.toggleFlip()
	if sn := s.snap; sn != nil {
		ps.waitSetFree(newSel.index(), s)
		ps.markPending(oldSel)
		sn.enqueue(snapJob{ps: ps, sel: oldSel, freezeTime: now, prevFreeze: prevFreeze, frozenAt: time.Now()})
	} else {
		start := time.Now()
		cp := s.snapshotSet(ps, oldSel, now, prevFreeze, false)
		s.retireCheckpoint(ps, cp)
		s.stats.freezeRetireNs.Observe(uint64(time.Since(start).Nanoseconds()))
	}
	ps.writeSel = newSel
	ni := newSel.index()
	for q := 0; q < s.cfg.QueuesPerPort; q++ {
		ps.qm[q][ni].Adopt(ps.qm[q][oldSel].Top(), ps.qm[q][oldSel].Seq())
	}
	ps.lastFlip = now
}

// dataPlaneQuery performs the §6.2 on-demand read: freeze the current data
// into the "special" set position, direct updates to the set with the
// highest-order bit flipped, lock further data-plane queries until the
// special read completes, and execute the victim's own queuing interval as
// the query.
func (s *System) dataPlaneQuery(ps *portState, p *pktrec.Packet, queue int, now uint64) {
	// Under a Pipeline, periodic checkpoints may still be in flight on the
	// snapshot goroutine. The special read is prioritized on hardware but
	// the query below walks the whole checkpoint chain, so drain pending
	// reads first: the history stays ordered by freeze time and the query
	// sees the same chain the serial path would.
	if s.snap != nil {
		ps.drainPending()
	}
	start := time.Now()
	cp := s.snapshotSet(ps, ps.writeSel.index(), now, ps.lastFlip, true)
	s.retireCheckpoint(ps, cp)
	s.stats.freezeRetireNs.Observe(uint64(time.Since(start).Nanoseconds()))
	s.stats.specialFreezes.Add(1)
	oldSel := ps.writeSel.index()
	ps.writeSel = ps.writeSel.toggleDP()
	newSel := ps.writeSel.index()
	for q := 0; q < s.cfg.QueuesPerPort; q++ {
		ps.qm[q][newSel].Adopt(ps.qm[q][oldSel].Top(), ps.qm[q][oldSel].Seq())
	}
	ps.lastFlip = now
	lat := s.readLatencyNs()
	ps.dpLockedUntil = now + lat

	dq := &DPQuery{
		Port:        ps.id,
		Queue:       queue,
		Victim:      p.Flow,
		EnqTS:       p.Meta.EnqTimestamp,
		DeqTS:       p.Meta.DeqTimestamp(),
		EnqQdepth:   p.Meta.EnqQdepth,
		FreezeTime:  now,
		Checkpoint:  cp,
		ReadLatency: lat,
	}
	// The victim's queuing interval can reach past the just-frozen special
	// set into earlier register sets (a deep queue holds more history than
	// one set accumulated since its last rotation), so the query runs over
	// the whole disjoint-coverage checkpoint chain ending at the special
	// freeze. The recency advantage of the data-plane query is preserved:
	// the newest, least-compressed data is in the special set.
	dq.Result = s.queryCheckpoints(ps.snapshotCheckpoints(), dq.EnqTS, dq.DeqTS)
	ps.mu.Lock()
	ps.dpQueries = append(ps.dpQueries, dq)
	ps.mu.Unlock()
}

// FinalizePort forces a final checkpoint of a port's live registers at the
// given time, so post-run asynchronous queries can reach the most recent
// traffic. Typically called once after the simulation drains (and, under a
// Pipeline, after the pipeline is closed).
func (s *System) FinalizePort(port int, now uint64) error {
	ps, ok := s.ports[port]
	if !ok {
		return fmt.Errorf("control: port %d not activated", port)
	}
	s.flip(ps, now)
	if s.snap != nil {
		ps.drainPending()
	}
	return nil
}

// Finalize checkpoints every activated port at the given time.
func (s *System) Finalize(now uint64) {
	for _, port := range s.cfg.Ports {
		_ = s.FinalizePort(port, now)
	}
}

// Checkpoints returns the retained checkpoint history of a port, oldest
// first. The returned slice is a stable copy; it is safe to use while the
// data plane keeps running.
func (s *System) Checkpoints(port int) []*Checkpoint {
	if ps, ok := s.ports[port]; ok {
		return ps.snapshotCheckpoints()
	}
	return nil
}

// DPQueries returns the data-plane queries executed on a port, oldest
// first, as a stable copy.
func (s *System) DPQueries(port int) []*DPQuery {
	ps, ok := s.ports[port]
	if !ok {
		return nil
	}
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	out := make([]*DPQuery, len(ps.dpQueries))
	copy(out, ps.dpQueries)
	return out
}

// QueryInterval executes an asynchronous time-window query: estimate the
// per-flow packet counts dequeued on the port during [start, end). The
// interval is split across the periodic checkpoints covering it (§6.3) and
// the per-checkpoint results are aggregated. With tracing enabled, the
// query may be sampled into a local trace; unsampled slow queries still
// reach the slowlog.
func (s *System) QueryInterval(port int, start, end uint64) (flow.Counts, error) {
	t := s.Tracer()
	if t == nil {
		return s.queryIntervalSharded(port, start, end, nil, nil)
	}
	t0 := time.Now()
	tr := t.Start("interval")
	counts, err := s.queryIntervalSharded(port, start, end, nil, tr)
	if tr != nil {
		tr.FinishErr(err)
	} else {
		t.MaybeSlow("interval", t0, time.Since(t0), err)
	}
	return counts, err
}

// queryIntervalSharded is QueryInterval with optional parallel fan-out:
// when sem (a semaphore whose capacity is the query-worker count) is
// non-nil and the pruned checkpoint run is long, the run is split into
// contiguous shards accumulated concurrently and merged in shard order.
// Shards that cannot acquire a slot run inline on the caller, so fan-out
// never blocks on a busy pool. Because the shards produce exact integer
// accumulators, the result is bit-identical to the serial (and scan) path
// for any sharding. tr (nil = untraced) collects per-stage spans: one
// "server.shard" span per fan-out chunk (recorded concurrently by the
// workers) and a "server.merge" span for the shard merge, or a single
// "server.accumulate" span on the serial path.
func (s *System) queryIntervalSharded(port int, start, end uint64, sem chan struct{}, tr *tracing.Trace) (flow.Counts, error) {
	ps, ok := s.ports[port]
	if !ok {
		return nil, fmt.Errorf("control: port %d not activated", port)
	}
	if end <= start {
		return nil, fmt.Errorf("control: empty query interval [%d, %d)", start, end)
	}
	if s.cfg.QueryPath == QueryPathScan {
		// The scan path walks the whole hot history linearly, but the cold
		// tier still serves the part of the interval below the oldest
		// retained checkpoint — otherwise a bounded hot tier would silently
		// shrink scan answers and break the documented bit-identity with
		// the indexed path.
		sp := tr.StartSpan("server.accumulate", tracing.SrcServer)
		cps := ps.snapshotCheckpoints()
		hotStart := ^uint64(0)
		if len(cps) > 0 {
			hotStart = cps[0].PrevFreeze
		}
		cold, coldEnd := s.coldRun(port, start, end, hotStart)
		acc := timewindow.NewAccumulator(s.cfg.TW.T, s.twCoeff)
		s.qpath.checkpointsScanned.Add(int64(len(cps)))
		visited := accumulateRun(acc, cps, start, end, true)
		visited += accumulateCold(acc, cold, start, coldEnd)
		s.qpath.cellsVisited.Add(int64(visited))
		counts := acc.Counts()
		sp.End()
		return counts, nil
	}
	run, histLen, hotStart := ps.snapshotRun(start, end)
	s.qpath.checkpointsPruned.Add(int64(histLen - len(run)))
	s.qpath.checkpointsScanned.Add(int64(len(run)))
	// The cold tier serves the part of the interval below the hot tier's
	// coverage (checkpoints already evicted from RAM but retained in the
	// segment log). It accumulates into the same exact integer form, so
	// merging tiers is bit-identical to a single deep in-RAM history.
	cold, coldEnd := s.coldRun(port, start, end, hotStart)
	shards := 0
	if sem != nil {
		shards = cap(sem)
	}
	if shards > len(run) {
		shards = len(run)
	}
	if len(run) < parallelMinRun || shards < 2 {
		sp := tr.StartSpan("server.accumulate", tracing.SrcServer)
		acc := timewindow.NewAccumulator(s.cfg.TW.T, s.twCoeff)
		visited := accumulateRun(acc, run, start, end, false)
		visited += accumulateCold(acc, cold, start, coldEnd)
		s.qpath.cellsVisited.Add(int64(visited))
		counts := acc.Counts()
		sp.End()
		return counts, nil
	}
	accs := make([]*timewindow.Accumulator, shards)
	cells := make([]int, shards)
	var wg sync.WaitGroup
	spawned := 0
	for c := 0; c < shards; c++ {
		chunk := run[c*len(run)/shards : (c+1)*len(run)/shards]
		work := func(c int, chunk []*Checkpoint) {
			sp := tr.StartSpan("server.shard", tracing.SrcServer)
			acc := timewindow.NewAccumulator(s.cfg.TW.T, s.twCoeff)
			cells[c] = accumulateRun(acc, chunk, start, end, false)
			accs[c] = acc
			sp.End()
		}
		if c == shards-1 {
			// The caller always takes the last shard itself: progress is
			// guaranteed even when every pool slot is busy.
			work(c, chunk)
			break
		}
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			spawned++
			go func(c int, chunk []*Checkpoint) {
				defer func() { <-sem; wg.Done() }()
				work(c, chunk)
			}(c, chunk)
		default:
			work(c, chunk)
		}
	}
	wg.Wait()
	if spawned > 0 {
		s.qpath.parallelFanouts.Inc()
	}
	spM := tr.StartSpan("server.merge", tracing.SrcServer)
	total := accs[0]
	visited := cells[0]
	for c := 1; c < shards; c++ {
		total.Merge(accs[c])
		visited += cells[c]
	}
	visited += accumulateCold(total, cold, start, coldEnd)
	s.qpath.cellsVisited.Add(int64(visited))
	counts := total.Counts()
	spM.End()
	return counts, nil
}

// parallelMinRun is the smallest pruned checkpoint run worth sharding
// across query workers; below it goroutine handoff costs more than the
// accumulation it parallelizes.
const parallelMinRun = 8

// queryCheckpoints splits [start, end) across the checkpoints' disjoint
// coverages and aggregates the per-checkpoint estimates. Both periodic and
// special checkpoints contribute: "the time periods covered by the
// periodically polled registers and special registers do not overlap,
// because [a] packet at any time point would belong to only one register
// set" (§6.2). PrevFreeze chaining keeps the coverages disjoint.
//
// On the default indexed path the disjoint, sorted coverages are
// binary-searched for the overlapping run; the scan path walks the whole
// history. The two are bit-identical (shared integer accumulator).
func (s *System) queryCheckpoints(cps []*Checkpoint, start, end uint64) flow.Counts {
	acc := timewindow.NewAccumulator(s.cfg.TW.T, s.twCoeff)
	run := cps
	scan := s.cfg.QueryPath == QueryPathScan
	if !scan {
		run = pruneCheckpoints(cps, start, end)
		s.qpath.checkpointsPruned.Add(int64(len(cps) - len(run)))
	}
	s.qpath.checkpointsScanned.Add(int64(len(run)))
	s.qpath.cellsVisited.Add(int64(accumulateRun(acc, run, start, end, scan)))
	return acc.Counts()
}

// accumulateRun folds a checkpoint run's clamped coverages into acc,
// returning the cells visited.
func accumulateRun(acc *timewindow.Accumulator, run []*Checkpoint, start, end uint64, scan bool) int {
	visited := 0
	for _, cp := range run {
		lo, hi := start, end
		if cp.PrevFreeze > lo {
			lo = cp.PrevFreeze
		}
		if cp.FreezeTime < hi {
			hi = cp.FreezeTime
		}
		if hi <= lo {
			continue
		}
		if scan {
			visited += cp.Filtered().AccumulateScanInto(acc, lo, hi)
		} else {
			visited += cp.Filtered().AccumulateInto(acc, lo, hi)
		}
	}
	return visited
}

// pruneCheckpoints binary-searches the contiguous run of checkpoints whose
// coverage (PrevFreeze, FreezeTime] overlaps [start, end). It relies on the
// history invariants the retire path maintains: FreezeTime strictly
// ascending and PrevFreeze chained to the predecessor's FreezeTime, so both
// fields are monotone. Checkpoints outside the run contribute nothing (the
// clamp in accumulateRun would reject them), so pruning is lossless.
func pruneCheckpoints(cps []*Checkpoint, start, end uint64) []*Checkpoint {
	lo := sort.Search(len(cps), func(i int) bool { return cps[i].FreezeTime > start })
	hi := sort.Search(len(cps), func(i int) bool { return cps[i].PrevFreeze >= end })
	if hi < lo {
		hi = lo
	}
	return cps[lo:hi]
}

// QueryOriginal executes a queue-monitor query: the original causes of
// congestion at the time instant closest to t, for the given port and
// priority queue. The checkpoint nearest to t is merged with its
// predecessor so buildup recorded before a register flip is retained.
// With tracing enabled, the query may be sampled into a local trace.
func (s *System) QueryOriginal(port, queue int, t uint64) ([]qmonitor.Culprit, error) {
	tracer := s.Tracer()
	if tracer == nil {
		return s.queryOriginal(port, queue, t, nil)
	}
	t0 := time.Now()
	tr := tracer.Start("original")
	culprits, err := s.queryOriginal(port, queue, t, tr)
	if tr != nil {
		tr.FinishErr(err)
	} else {
		tracer.MaybeSlow("original", t0, time.Since(t0), err)
	}
	return culprits, err
}

// queryOriginal is QueryOriginal's traced core.
func (s *System) queryOriginal(port, queue int, t uint64, tr *tracing.Trace) ([]qmonitor.Culprit, error) {
	ps, ok := s.ports[port]
	if !ok {
		return nil, fmt.Errorf("control: port %d not activated", port)
	}
	if queue < 0 || queue >= s.cfg.QueuesPerPort {
		return nil, fmt.Errorf("control: queue %d out of range", queue)
	}
	cps, gen := ps.snapshotCheckpointsGen()
	if len(cps) == 0 {
		return nil, fmt.Errorf("control: no checkpoints for port %d", port)
	}
	idx := nearestCheckpoint(cps, t)
	// Register-set rotation scatters the staircase across sets: a level
	// written while set A was active is absent from set B's snapshot.
	// Sequence numbers are globally monotonic, so merging every checkpoint
	// up to the chosen one (keeping the highest-sequence record per level
	// and half) reconstructs the monitor's exact state at that freeze.
	// The running merge prefix is memoized per queue, so repeated queries
	// extend it incrementally instead of re-merging from checkpoint 0.
	sp := tr.StartSpan("server.accumulate", tracing.SrcServer)
	culprits := ps.prefixSnapshot(cps, gen, queue, idx, s.cfg.QueuesPerPort).OriginalCulprits()
	sp.End()
	return culprits, nil
}

// prefixSnapshot returns Merge(cps[0..idx]) for the given queue, served
// from (and extending) the port's prefix cache. The cache is keyed on the
// history generation: at a given generation the history only grows at the
// tail, so cached prefixes stay valid and longer ones are appended on
// demand. A front trim bumps the generation and the cache resets lazily. A
// caller holding a history copy older than the cache computes its answer
// without caching, so stale indices never poison the shared prefixes.
// Merged snapshots are immutable and may be shared across queries.
func (ps *portState) prefixSnapshot(cps []*Checkpoint, gen uint64, queue, idx, queues int) *qmonitor.Snapshot {
	ps.prefixMu.Lock()
	if ps.prefixGen > gen {
		// Cache is ahead of this caller's history copy: answer from the
		// copy directly.
		ps.prefixMu.Unlock()
		snap := cps[0].QM[queue]
		for i := 1; i <= idx; i++ {
			snap = qmonitor.Merge(snap, cps[i].QM[queue])
		}
		return snap
	}
	if ps.qmPrefix == nil {
		ps.qmPrefix = make([][]*qmonitor.Snapshot, queues)
	}
	if ps.prefixGen != gen {
		for q := range ps.qmPrefix {
			ps.qmPrefix[q] = ps.qmPrefix[q][:0]
		}
		ps.prefixGen = gen
	}
	pfx := ps.qmPrefix[queue]
	if len(pfx) == 0 {
		pfx = append(pfx, cps[0].QM[queue])
	}
	for i := len(pfx); i <= idx; i++ {
		pfx = append(pfx, qmonitor.Merge(pfx[i-1], cps[i].QM[queue]))
	}
	ps.qmPrefix[queue] = pfx
	snap := pfx[idx]
	ps.prefixMu.Unlock()
	return snap
}

// nearestCheckpoint returns the index of the checkpoint whose freeze time
// is closest to t.
func nearestCheckpoint(cps []*Checkpoint, t uint64) int {
	i := sort.Search(len(cps), func(i int) bool { return cps[i].FreezeTime >= t })
	if i == len(cps) {
		return len(cps) - 1
	}
	if i == 0 {
		return 0
	}
	if cps[i].FreezeTime-t < t-cps[i-1].FreezeTime {
		return i
	}
	return i - 1
}
