package control

// Checkpoint streaming (wire v2 subscription ops). A subscriber sends one
// opSubscribe frame on a fresh binary connection and the server turns the
// connection into a push stream: every checkpoint the switch retires is
// encoded once (by the histstore append the snapshotter already pays for)
// and framed to the subscriber with its indexed metadata up front, so the
// mirror on the other end replicates the segment log without decoding a
// single record. Frames carry pusher-assigned sequence numbers; a bounded
// per-subscriber queue drops oldest under collector backpressure and the
// pusher emits an explicit resync marker so the mirror knows to re-replay
// the gap from the switch's segment log — the snapshotter itself never
// blocks on a slow collector.
//
// Frame layouts (inside the standard magic|op|len envelope of wire.go):
//
//	opSubscribe      0x21: since uvarint — replay stored records with
//	                       FreezeTime > since, then stream live.
//	opCheckpointPush 0xA1: seq uvarint | port uvarint | freezeTime uvarint |
//	                       freezeTime-prevFreeze uvarint | flags byte |
//	                       encoded record payload (rest of frame).
//	opStreamResync   0xA2: dropped uvarint — records were dropped before
//	                       the frames that follow; resubscribe to heal.

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

const (
	opSubscribe      byte = 0x21
	opCheckpointPush byte = 0xA1
	opStreamResync   byte = 0xA2
)

// Checkpoint-push frame flags.
const (
	// pushFlagSpecial marks a special (queue-monitor stack) checkpoint.
	pushFlagSpecial byte = 1 << 0
	// pushFlagReplay marks frames produced by the catch-up replay from the
	// segment log rather than a live retire.
	pushFlagReplay byte = 1 << 1
)

// streamQueueCap bounds each subscriber's pending-frame ring. At the PR 8
// codec's 15-20x compression a full ring is a few MB of encoded
// checkpoints — enough to ride out collector GC pauses, small enough that
// a stalled collector costs the switch bounded memory.
const streamQueueCap = 256

// appendSubscribeFrame encodes an opSubscribe request.
func appendSubscribeFrame(b []byte, since uint64) []byte {
	b, start := beginFrame(b, opSubscribe)
	b = appendUvarint(b, since)
	return endFrame(b, start)
}

func decodeSubscribe(p []byte) (since uint64, err error) {
	since, p, err = uvarint(p)
	if err != nil {
		return 0, err
	}
	if len(p) != 0 {
		return 0, errTruncated
	}
	return since, nil
}

// appendCheckpointFrame encodes one opCheckpointPush frame around an
// already-encoded record payload. The metadata mirrors the histstore
// index entry so the receiver can replicate the log without decoding.
func appendCheckpointFrame(b []byte, seq uint64, port int, freezeTime, prevFreeze uint64, flags byte, payload []byte) []byte {
	b, start := beginFrame(b, opCheckpointPush)
	b = appendUvarint(b, seq)
	b = appendUvarint(b, uint64(port))
	b = appendUvarint(b, freezeTime)
	b = appendUvarint(b, freezeTime-prevFreeze)
	b = append(b, flags)
	b = append(b, payload...)
	return endFrame(b, start)
}

// CheckpointFrame is one decoded push frame. Payload aliases the decode
// input (the stream's scratch buffer): it is valid until the next Next
// call and must be copied to be retained.
type CheckpointFrame struct {
	Seq        uint64
	Port       int
	FreezeTime uint64
	PrevFreeze uint64
	Special    bool
	Replay     bool
	Payload    []byte
}

func decodeCheckpointFrame(p []byte) (f CheckpointFrame, err error) {
	if f.Seq, p, err = uvarint(p); err != nil {
		return f, err
	}
	if f.Port, p, err = uvarintInt(p); err != nil {
		return f, err
	}
	if f.FreezeTime, p, err = uvarint(p); err != nil {
		return f, err
	}
	var dPrev uint64
	if dPrev, p, err = uvarint(p); err != nil {
		return f, err
	}
	if dPrev > f.FreezeTime {
		return f, fmt.Errorf("%w: prev-freeze delta %d past freeze time %d", errTruncated, dPrev, f.FreezeTime)
	}
	f.PrevFreeze = f.FreezeTime - dPrev
	if len(p) < 1 {
		return f, errTruncated
	}
	flags := p[0]
	f.Special = flags&pushFlagSpecial != 0
	f.Replay = flags&pushFlagReplay != 0
	f.Payload = p[1:]
	return f, nil
}

// appendResyncFrame encodes an opStreamResync marker.
func appendResyncFrame(b []byte, dropped uint64) []byte {
	b, start := beginFrame(b, opStreamResync)
	b = appendUvarint(b, dropped)
	return endFrame(b, start)
}

func decodeResync(p []byte) (dropped uint64, err error) {
	dropped, p, err = uvarint(p)
	if err != nil {
		return 0, err
	}
	if len(p) != 0 {
		return 0, errTruncated
	}
	return dropped, nil
}

// pushRec is one retired checkpoint queued toward a subscriber: the
// indexed metadata plus the encoded payload, copied into a pooled buffer
// at publish time so the histstore can reuse its encode buffer.
type pushRec struct {
	port       int
	freezeTime uint64
	prevFreeze uint64
	flags      byte
	buf        []byte
}

// streamSub is one subscriber's bounded pending queue: a fixed ring with
// drop-oldest overflow. publish (the snapshotter side) never blocks; the
// pusher goroutine drains and accounts drops into resync markers.
type streamSub struct {
	mu      sync.Mutex
	ring    [streamQueueCap]pushRec
	head    int
	n       int
	dropped uint64
	wake    chan struct{}
}

// push enqueues one record, evicting the oldest when full.
func (ss *streamSub) push(rec pushRec) {
	ss.mu.Lock()
	if ss.n == streamQueueCap {
		old := &ss.ring[ss.head]
		putBuf(old.buf)
		old.buf = nil
		ss.head = (ss.head + 1) % streamQueueCap
		ss.n--
		ss.dropped++
	}
	ss.ring[(ss.head+ss.n)%streamQueueCap] = rec
	ss.n++
	ss.mu.Unlock()
	select {
	case ss.wake <- struct{}{}:
	default:
	}
}

// pop dequeues the oldest pending record, also returning (and resetting)
// the count of records dropped before it so the pusher can emit a resync
// marker first.
func (ss *streamSub) pop() (rec pushRec, dropped uint64, ok bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	dropped = ss.dropped
	ss.dropped = 0
	if ss.n == 0 {
		return pushRec{}, dropped, false
	}
	rec = ss.ring[ss.head]
	ss.ring[ss.head].buf = nil
	ss.head = (ss.head + 1) % streamQueueCap
	ss.n--
	return rec, dropped, true
}

// drain recycles every queued buffer (subscriber teardown).
func (ss *streamSub) drain() {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	for ss.n > 0 {
		putBuf(ss.ring[ss.head].buf)
		ss.ring[ss.head].buf = nil
		ss.head = (ss.head + 1) % streamQueueCap
		ss.n--
	}
}

// streamHub fans retired checkpoints out to the active subscribers. The
// no-subscriber fast path is one atomic load, so systems that never
// stream pay nothing on the snapshotter path.
type streamHub struct {
	mu   sync.Mutex
	subs map[*streamSub]struct{}
	n    atomic.Int32
}

func (h *streamHub) active() bool { return h.n.Load() > 0 }

func (h *streamHub) subscribe() *streamSub {
	ss := &streamSub{wake: make(chan struct{}, 1)}
	h.mu.Lock()
	if h.subs == nil {
		h.subs = make(map[*streamSub]struct{})
	}
	h.subs[ss] = struct{}{}
	h.n.Store(int32(len(h.subs)))
	h.mu.Unlock()
	return ss
}

func (h *streamHub) unsubscribe(ss *streamSub) {
	h.mu.Lock()
	delete(h.subs, ss)
	h.n.Store(int32(len(h.subs)))
	h.mu.Unlock()
	ss.drain()
}

// publish copies the encoded payload into a pooled buffer per subscriber
// and enqueues it. Called under the histstore append lock via AppendWith;
// it never blocks (bounded ring, drop-oldest), so a stalled collector
// costs the snapshotter one memcpy per retire and nothing more.
func (h *streamHub) publish(port int, freezeTime, prevFreeze uint64, special bool, payload []byte) {
	if !h.active() {
		return
	}
	var flags byte
	if special {
		flags |= pushFlagSpecial
	}
	h.mu.Lock()
	for ss := range h.subs {
		buf := append(getBuf(), payload...)
		ss.push(pushRec{port: port, freezeTime: freezeTime, prevFreeze: prevFreeze, flags: flags, buf: buf})
	}
	h.mu.Unlock()
}

// ErrStreamResync reports that the server dropped checkpoint frames under
// backpressure (or the stream observed a sequence gap): the subscriber's
// view has a hole and it must resubscribe from its last covered freeze
// time to replay the gap from the switch's segment log.
var ErrStreamResync = errors.New("control: checkpoint stream dropped frames; resubscribe to replay the gap")

// CheckpointStream is a subscription to one switch's retired-checkpoint
// feed. It is a dedicated single-purpose connection — the mux client's
// request/response pairing has no slot for server-initiated frames — and
// imposes no read deadline: a healthy stream may be silent for as long as
// the switch goes without retiring a checkpoint.
type CheckpointStream struct {
	conn    net.Conn
	br      *bufio.Reader
	scratch []byte
	lastSeq uint64
	closed  atomic.Bool
}

// DialCheckpoints opens a checkpoint subscription to addr, replaying
// stored records with FreezeTime > since before live frames. since = 0
// replays the switch's whole retained history. Dial and write honor
// opts.Timeout and opts.Dialer; the retry/backoff fields are unused (the
// mirror owns its own reconnect policy).
func DialCheckpoints(addr string, since uint64, opts DialOptions) (*CheckpointStream, error) {
	timeout, _, _, _, _, dialer := opts.resolved()
	conn, err := dialer(addr, timeout)
	if err != nil {
		return nil, err
	}
	buf := appendSubscribeFrame(getBuf(), since)
	conn.SetWriteDeadline(time.Now().Add(timeout))
	_, werr := conn.Write(buf)
	conn.SetWriteDeadline(time.Time{})
	putBuf(buf)
	if werr != nil {
		conn.Close()
		return nil, werr
	}
	// The reader and scratch buffer are deliberately not pooled: Close may
	// race a blocked Next (that is how the mirror's stop path unblocks the
	// streamer), so recycling them could hand a buffer to another
	// connection while a read still references it.
	return &CheckpointStream{
		conn:    conn,
		br:      bufio.NewReaderSize(conn, 64<<10),
		scratch: make([]byte, 0, 4096),
	}, nil
}

// Next blocks for the next pushed checkpoint frame. It returns
// ErrStreamResync when the server signals dropped frames or a sequence
// discontinuity is observed; the caller should Close and redial with
// since set to its last covered freeze time. The returned frame's Payload
// is valid only until the next call.
func (st *CheckpointStream) Next() (CheckpointFrame, error) {
	op, payload, err := readFrame(st.br, st.scratch, maxFramePayload)
	st.scratch = payload[:0]
	if err != nil {
		if st.closed.Load() {
			return CheckpointFrame{}, net.ErrClosed
		}
		return CheckpointFrame{}, err
	}
	switch op {
	case opCheckpointPush:
		f, err := decodeCheckpointFrame(payload)
		if err != nil {
			return CheckpointFrame{}, err
		}
		if st.lastSeq != 0 && f.Seq != st.lastSeq+1 {
			st.lastSeq = f.Seq
			return CheckpointFrame{}, ErrStreamResync
		}
		st.lastSeq = f.Seq
		return f, nil
	case opStreamResync:
		if _, err := decodeResync(payload); err != nil {
			return CheckpointFrame{}, err
		}
		st.lastSeq = 0
		return CheckpointFrame{}, ErrStreamResync
	default:
		return CheckpointFrame{}, fmt.Errorf("%w: unexpected op 0x%02x on checkpoint stream", errBadMagic, op)
	}
}

// Close tears the subscription down. Safe to call concurrently with a
// blocked Next, which then returns net.ErrClosed.
func (st *CheckpointStream) Close() error {
	st.closed.Store(true)
	return st.conn.Close()
}
