package control

// This file holds the retry-backoff machinery shared by the JSON
// QueryClient and the binary MuxClient. Two historical bugs live here,
// fixed together:
//
//   - The exponential doubling had no shift clamp: with a large enough
//     BackoffMax (or attempt count) `d *= 2` overflowed time.Duration to a
//     negative value, which the callers interpreted as "no sleep" — a
//     failing server got hammered by a hot retry loop exactly when it
//     needed breathing room. The doubling now saturates at the cap before
//     the multiply can overflow.
//   - The jitter PRNG was a *math/rand.Rand shared by every in-flight
//     round trip. The mux client retries from many goroutines at once, so
//     concurrent retries raced on its internal state (caught by -race) or
//     contended on a guarding mutex. jitterSource is a lock-free atomic
//     splitmix64 stream: one atomic add per draw, no locks, and still
//     deterministic for a given seed so chaos tests stay reproducible.

import (
	"sync/atomic"
	"time"
)

// jitterSource is a lock-free deterministic PRNG for retry jitter. Each
// draw advances an atomic counter and mixes it through splitmix64, so any
// number of goroutines can draw concurrently without synchronizing on
// anything wider than one atomic add. For a fixed seed the set of values
// drawn is a fixed sequence (interleaving only permutes which retry gets
// which value), which keeps seeded chaos runs reproducible.
type jitterSource struct {
	state atomic.Uint64
}

func newJitterSource(seed int64) *jitterSource {
	j := &jitterSource{}
	j.state.Store(uint64(seed))
	return j
}

// Int63n returns a value uniform-ish in [0, n). n <= 0 returns 0 instead
// of panicking (math/rand.Int63n panics), so a degenerate backoff window
// can never take the retry loop down.
func (j *jitterSource) Int63n(n int64) int64 {
	if n <= 0 {
		return 0
	}
	x := j.state.Add(0x9e3779b97f4a7c15)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x % uint64(n))
}

// backoffDur returns the jittered exponential backoff before retry
// attempt n (n >= 1): base doubled per retry, saturating at maxD, jittered
// uniformly in [d/2, d]. The doubling is shift-clamped — once d exceeds
// maxD/2 the next double would pass the cap (or overflow time.Duration
// when maxD is near MaxInt64), so d snaps to maxD instead of multiplying.
// A maxD below base (including the previously-panicking negative case) is
// clamped up to base.
func backoffDur(base, maxD time.Duration, attempt int, j *jitterSource) time.Duration {
	if base <= 0 {
		return 0
	}
	if maxD < base {
		maxD = base
	}
	d := base
	for i := 1; i < attempt; i++ {
		if d > maxD/2 {
			d = maxD
			break
		}
		d *= 2
	}
	if d > maxD {
		d = maxD
	}
	half := d / 2
	return half + time.Duration(j.Int63n(int64(half)+1))
}
