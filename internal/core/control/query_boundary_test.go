package control

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"printqueue/internal/core/histstore"
)

// newTieredPathPair builds two identically-fed systems with a tiny hot tier
// backed by the segment log, differing only in QueryPath, and returns them
// with the feed horizon and the hot tier's coverage start (the hot/cold
// partition point).
func newTieredPathPair(t *testing.T) (indexed, scan *System, horizon, hotStart uint64) {
	t.Helper()
	build := func(qp QueryPath) *System {
		cfg := testConfig(0)
		cfg.PollPeriodNs = 256
		cfg.MaxCheckpoints = 3 // nearly everything is evicted to the cold tier
		cfg.History = &histstore.Options{Dir: t.TempDir()}
		cfg.QueryPath = qp
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}
	indexed = build(QueryPathIndexed)
	scan = build(QueryPathScan)
	horizon = feedIdentical(t, []*System{indexed, scan}, 8000)
	cps := scan.Checkpoints(0)
	if len(cps) == 0 {
		t.Fatal("no hot checkpoints after feed")
	}
	hotStart = cps[0].PrevFreeze
	if hotStart < 2000 {
		t.Fatalf("hot tier starts at %d; history never evicted to the cold tier", hotStart)
	}
	return indexed, scan, horizon, hotStart
}

// TestQueryPathBoundaryDifferential pins the scan path against the indexed
// path across the hot/cold partition: before the fix, QueryPathScan ignored
// the segment log entirely, so any interval reaching below the oldest hot
// checkpoint silently lost the cold contribution and broke the documented
// bit-identity between the two paths.
func TestQueryPathBoundaryDifferential(t *testing.T) {
	indexed, scan, horizon, hotStart := newTieredPathPair(t)
	cases := []struct {
		name   string
		lo, hi uint64
	}{
		{"full-history", 0, horizon + 1000},
		{"cold-only", 0, hotStart / 2},
		{"straddle", hotStart - 300, hotStart + 300},
		{"ends-at-boundary", hotStart - 500, hotStart},
		{"starts-at-boundary", hotStart, hotStart + 500},
		{"hot-only", horizon - 50, horizon + 1},
		{"beyond-horizon", horizon + 100, horizon + 200},
	}
	check := func(name string, lo, hi uint64) {
		t.Helper()
		want, err := indexed.QueryInterval(0, lo, hi)
		if err != nil {
			t.Fatalf("%s: indexed query [%d,%d): %v", name, lo, hi, err)
		}
		got, err := scan.QueryInterval(0, lo, hi)
		if err != nil {
			t.Fatalf("%s: scan query [%d,%d): %v", name, lo, hi, err)
		}
		if want == nil || got == nil {
			t.Fatalf("%s: nil counts (indexed=%v scan=%v); empty results must be non-nil", name, want, got)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: interval [%d,%d): scan %v != indexed %v", name, lo, hi, got, want)
		}
	}
	for _, c := range cases {
		check(c.name, c.lo, c.hi)
	}
	rng := rand.New(rand.NewPCG(5, 13))
	for q := 0; q < 120; q++ {
		lo := rng.Uint64N(horizon)
		check("random", lo, lo+1+rng.Uint64N(horizon/2))
	}
}

// TestQueryPathDegenerateIntervals: reversed (start > end) and empty
// (start == end) intervals must fail identically on both query paths —
// same error, no partial answer — whether they sit in the hot tier, the
// cold tier, or exactly on the partition boundary.
func TestQueryPathDegenerateIntervals(t *testing.T) {
	indexed, scan, horizon, hotStart := newTieredPathPair(t)
	cases := [][2]uint64{
		{10, 10},                       // empty, cold
		{hotStart, hotStart},           // empty, on the boundary
		{horizon, horizon},             // empty, hot
		{0, 0},                         // empty at origin
		{500, 100},                     // reversed, cold
		{hotStart + 10, hotStart - 10}, // reversed across the boundary
		{horizon + 5, horizon},         // reversed, hot
		{^uint64(0), 0},                // reversed, extreme
	}
	for _, c := range cases {
		ci, errI := indexed.QueryInterval(0, c[0], c[1])
		cs, errS := scan.QueryInterval(0, c[0], c[1])
		if errI == nil || errS == nil {
			t.Fatalf("degenerate interval [%d,%d) accepted: indexed err=%v scan err=%v", c[0], c[1], errI, errS)
		}
		if errI.Error() != errS.Error() {
			t.Fatalf("interval [%d,%d): divergent errors: indexed %q, scan %q", c[0], c[1], errI, errS)
		}
		if ci != nil || cs != nil {
			t.Fatalf("interval [%d,%d): counts returned alongside error", c[0], c[1])
		}
	}
}
