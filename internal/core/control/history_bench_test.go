package control

import (
	"os"
	"sync"
	"testing"

	"printqueue/internal/core/histstore"
)

// benchColdHistory builds one tiered system shared by the cold-query
// benchmarks: a 3-checkpoint hot ring with a deep segment-log history, fed
// by a paper-style bursty trace.
var benchColdHistory struct {
	once sync.Once
	sys  *System
	end  uint64
}

func benchColdSystem(b *testing.B) (*System, uint64) {
	b.Helper()
	benchColdHistory.once.Do(func() {
		// Not b.TempDir(): the system outlives the first benchmark that
		// builds it, and the segment files must stay readable.
		dir, err := os.MkdirTemp("", "pq-coldbench-")
		if err != nil {
			panic(err)
		}
		cfg := testConfig(0)
		cfg.PollPeriodNs = 1024
		cfg.MaxCheckpoints = 3
		cfg.History = &histstore.Options{Dir: dir}
		s, err := New(cfg)
		if err != nil {
			panic(err)
		}
		var ts uint64 = 1000
		for i := 0; i < 120000; i++ {
			ts += 8
			s.OnDequeue(deq(fkey(byte(i%24)), 0, ts-16, ts, 8+i%17))
		}
		s.Finalize(ts + 1)
		benchColdHistory.sys = s
		benchColdHistory.end = ts
	})
	return benchColdHistory.sys, benchColdHistory.end
}

// BenchmarkColdQuery measures interval queries that the hot tier cannot
// answer (the interval lies entirely below the in-RAM ring), in three
// regimes:
//
//	narrow/warm — a short cold interval with the LRU already holding the
//	              decoded checkpoint: the steady state of an operator
//	              re-examining an incident window. The PR's acceptance
//	              floor is < 1 ms here.
//	narrow/cold — the same query against a dropped cache: pays segment
//	              read + decode + one lazy index build.
//	wide/warm   — all of history, every checkpoint resident.
func BenchmarkColdQuery(b *testing.B) {
	s, end := benchColdSystem(b)
	mid := end / 2
	cases := []struct {
		name    string
		lo, hi  uint64
		dropLRU bool
	}{
		{"narrow/warm", mid, mid + 512, false},
		{"narrow/cold", mid, mid + 512, true},
		{"wide/warm", 0, end + 1, false},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			// Prime (or flush) the decoded-checkpoint LRU.
			if _, err := s.QueryInterval(0, c.lo, c.hi); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if c.dropLRU {
					b.StopTimer()
					s.hist.DropCache()
					b.StartTimer()
				}
				if _, err := s.QueryInterval(0, c.lo, c.hi); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
