package control

import (
	"strings"
	"testing"
	"time"

	"printqueue/internal/faultnet"
	"printqueue/internal/tracing"
)

// waitTraceParity polls until the tracer has closed every trace it opened
// (server-side closure runs on the connection writer, asynchronously to
// the client's round trip).
func waitTraceParity(t *testing.T, tr *tracing.Tracer, what string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if tr.Started() == tr.Finished() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: %d traces started, only %d finished (orphans leaked)",
				what, tr.Started(), tr.Finished())
		}
		time.Sleep(time.Millisecond)
	}
}

// spanNames collects the distinct span names of a trace.
func spanNames(tr *tracing.Trace) map[string]string {
	names := make(map[string]string)
	for _, sp := range tr.Spans() {
		names[sp.Name] = sp.Src
	}
	return names
}

// TestEndToEndTraceBinaryMux is the tentpole acceptance test: one query
// over the binary mux protocol yields ONE joined trace holding at least six
// named stages spanning both sides of the wire.
func TestEndToEndTraceBinaryMux(t *testing.T) {
	srv, ts := netFixture(t)
	tracer := tracing.New(tracing.Config{SampleEvery: 1})
	c, err := DialMuxOpts(srv.Addr().String(), DialOptions{Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	counts, err := c.Interval(0, 1000, ts+1)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) == 0 {
		t.Fatal("traced query returned no counts")
	}
	waitTraceParity(t, tracer, "client")

	traces := tracer.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if !tr.Finished() {
		t.Fatal("trace not finished")
	}
	if tr.Err() != "" {
		t.Fatalf("trace recorded error %q", tr.Err())
	}
	if tr.Name() != "interval" {
		t.Fatalf("trace name = %q, want interval", tr.Name())
	}
	names := spanNames(tr)
	for _, want := range []string{
		"client.encode", "client.write", "client.await",
		"server.dispatch", "server.queue", "server.execute",
	} {
		if _, ok := names[want]; !ok {
			t.Errorf("trace missing stage %q (have %v)", want, names)
		}
	}
	if len(names) < 6 {
		t.Fatalf("trace has %d named stages, want >= 6: %v", len(names), names)
	}
	var clientSide, serverSide bool
	for _, src := range names {
		clientSide = clientSide || src == tracing.SrcClient
		serverSide = serverSide || src == tracing.SrcServer
	}
	if !clientSide || !serverSide {
		t.Fatalf("trace does not span both sides: client=%v server=%v (%v)", clientSide, serverSide, names)
	}
	if out := tracing.FormatTree(tr); !strings.Contains(out, "server.execute") {
		t.Fatalf("FormatTree lost the server stages:\n%s", out)
	}
}

// TestEndToEndTraceBatch checks the batch op joins per-query server spans
// into one "batch" trace.
func TestEndToEndTraceBatch(t *testing.T) {
	srv, ts := netFixture(t)
	tracer := tracing.New(tracing.Config{SampleEvery: 1})
	c, err := DialMuxOpts(srv.Addr().String(), DialOptions{Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rs, err := c.Batch([]BatchQuery{
		{Kind: IntervalQuery, Port: 0, Start: 1000, End: ts + 1},
		{Kind: OriginalQuery, Port: 0, Queue: 0, Start: ts},
	})
	if err != nil || len(rs) != 2 {
		t.Fatalf("batch: %v (%d results)", err, len(rs))
	}
	waitTraceParity(t, tracer, "client")
	traces := tracer.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Name() != "batch" {
		t.Fatalf("trace name = %q, want batch", tr.Name())
	}
	names := spanNames(tr)
	if _, ok := names["server.execute"]; !ok {
		t.Fatalf("batch trace missing server.execute: %v", names)
	}
	// Two queries executed under one batch trace: server.execute twice.
	var execs int
	for _, sp := range tr.Spans() {
		if sp.Name == "server.execute" {
			execs++
		}
	}
	if execs != 2 {
		t.Fatalf("batch trace has %d server.execute spans, want 2", execs)
	}
}

// TestEndToEndTraceJSONFallback checks the JSON wire carries the trace id
// out and the server spans back, like the binary path.
func TestEndToEndTraceJSONFallback(t *testing.T) {
	srv, ts := netFixture(t)
	tracer := tracing.New(tracing.Config{SampleEvery: 1})
	c, err := DialOpts(srv.Addr().String(), DialOptions{Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Interval(0, 1000, ts+1); err != nil {
		t.Fatal(err)
	}
	waitTraceParity(t, tracer, "client")
	traces := tracer.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	names := spanNames(traces[0])
	for _, want := range []string{"client.encode", "client.write", "client.await", "server.execute"} {
		if _, ok := names[want]; !ok {
			t.Errorf("JSON trace missing stage %q (have %v)", want, names)
		}
	}
}

// TestServerTraceRingJoinsRemote verifies that when the server system has
// tracing enabled, a remote traced query lands in the SERVER's trace ring
// under the client's trace id, with the server.write span (which cannot
// travel in the reply it measures) recorded there.
func TestServerTraceRingJoinsRemote(t *testing.T) {
	cfg := testConfig(0)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ts uint64 = 1000
	for i := 0; i < 60; i++ {
		ts += 10
		s.OnDequeue(deq(fkey(byte(i%3)), 0, ts-40, ts, 8))
	}
	s.Finalize(ts + 1)
	serverTracer, _ := s.EnableTracing(TraceOptions{})
	qs := NewQueryServer(s)
	qs.Start(2)
	defer qs.Stop()
	srv, err := ServeQueriesOpts("127.0.0.1:0", qs, ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	clientTracer := tracing.New(tracing.Config{SampleEvery: 1})
	c, err := DialMuxOpts(srv.Addr().String(), DialOptions{Tracer: clientTracer})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Interval(0, 1000, ts+1); err != nil {
		t.Fatal(err)
	}
	waitTraceParity(t, clientTracer, "client")
	waitTraceParity(t, serverTracer, "server")

	clientTraces := clientTracer.Traces()
	if len(clientTraces) != 1 {
		t.Fatalf("client has %d traces, want 1", len(clientTraces))
	}
	id := clientTraces[0].ID()
	st := serverTracer.Find(id)
	if st == nil {
		t.Fatalf("server ring has no trace %s", tracing.FormatID(id))
	}
	if !st.Finished() {
		t.Fatal("server-side trace not finished")
	}
	if _, ok := spanNames(st)["server.write"]; !ok {
		t.Fatalf("server-side trace missing server.write: %v", spanNames(st))
	}
}

// TestWireDifferentialJSONBinaryTraced reruns the JSON/binary differential
// stream with tracing forced on for both clients and the server: results
// must stay bit-equal — tracing must never perturb answers.
func TestWireDifferentialJSONBinaryTraced(t *testing.T) {
	srv, ts := netFixture(t)
	srv.qs.sys.EnableTracing(TraceOptions{SampleEvery: 1})
	jt := tracing.New(tracing.Config{SampleEvery: 1})
	bt := tracing.New(tracing.Config{SampleEvery: 1})
	jc, err := DialOpts(srv.Addr().String(), DialOptions{Tracer: jt})
	if err != nil {
		t.Fatal(err)
	}
	defer jc.Close()
	bc, err := DialMuxOpts(srv.Addr().String(), DialOptions{Tracer: bt})
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	runWireDifferential(t, ts, jc, bc)
	if jt.Started() == 0 || bt.Started() == 0 {
		t.Fatalf("tracing was not exercised: json=%d binary=%d", jt.Started(), bt.Started())
	}
}

// TestChaosTracesWellFormed runs traced clients through the fault matrix:
// torn frames, resets, and retries must still leave every opened trace
// closed (orphan-closure), on the client and the server.
func TestChaosTracesWellFormed(t *testing.T) {
	seed := chaosSeed(t)
	cases := []struct {
		name string
		fcfg faultnet.Config
	}{
		{"drops", faultnet.Config{Seed: seed, DropWrite: 0.3}},
		{"resets", faultnet.Config{Seed: seed, Reset: 0.08}},
		{"partial-writes", faultnet.Config{Seed: seed, PartialWrite: 0.3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, ts := chaosFixture(t, tc.fcfg, ServeOptions{})
			serverTracer, _ := srv.qs.sys.EnableTracing(TraceOptions{})
			tracer := tracing.New(tracing.Config{SampleEvery: 1, RingSize: 1024})
			c, err := DialMuxOpts(srv.Addr().String(), DialOptions{
				Timeout:     100 * time.Millisecond,
				MaxRetries:  8,
				BackoffBase: time.Millisecond,
				BackoffMax:  10 * time.Millisecond,
				Seed:        seed,
				Tracer:      tracer,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			successes := 0
			for i := 0; i < 20; i++ {
				if _, err := c.Interval(0, 1000, ts+1); err == nil {
					successes++
				}
			}
			if successes == 0 {
				t.Fatal("no query survived the fault injection")
			}
			// Every client trace must be closed the moment its query
			// returns; the server closes via its writer, asynchronously.
			waitTraceParity(t, tracer, "client")
			waitTraceParity(t, serverTracer, "server")
			for _, tr := range tracer.Traces() {
				if !tr.Finished() {
					t.Fatalf("unfinished trace %s in ring", tracing.FormatID(tr.ID()))
				}
			}
			t.Logf("%s: %d/20 ok, client traces=%d server traces=%d",
				tc.name, successes, tracer.Finished(), serverTracer.Finished())
		})
	}
}

// TestTraceMetricsParity extends the metrics-parity guarantee to the
// tracing plane: the trace lifecycle counters and per-kind event counters
// must appear in /metrics with the values their accessors report, and
// every registered family must appear in the exposition (registry audit).
func TestTraceMetricsParity(t *testing.T) {
	cfg := testConfig(0)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ts uint64 = 1000
	for i := 0; i < 60; i++ {
		ts += 10
		sys.OnDequeue(deq(fkey(byte(i%3)), 0, ts-40, ts, 8))
	}
	sys.Finalize(ts + 1)
	tracer, events := sys.EnableTracing(TraceOptions{SampleEvery: 1})
	if _, err := sys.QueryInterval(0, 1000, ts+1); err != nil {
		t.Fatal(err)
	}
	events.Record(tracing.EventShed, "test", 1, 0)

	out := scrape(t, sys)
	for _, line := range []string{
		"printqueue_traces_started_total " + itoa(tracer.Started()),
		"printqueue_traces_finished_total " + itoa(tracer.Finished()),
		"printqueue_traces_slow_total " + itoa(tracer.SlowCount()),
		"printqueue_trace_spans_dropped_total " + itoa(tracer.SpansDropped()),
		`printqueue_events_total{kind="shed"} 1`,
		`printqueue_events_total{kind="backpressure"} 0`,
		`printqueue_events_total{kind="ring_high_watermark"} 0`,
		`printqueue_events_total{kind="freeze_stall"} 0`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("/metrics missing %q", line)
		}
	}
	if tracer.Started() == 0 || tracer.Finished() == 0 {
		t.Fatal("local sampling did not trace the query")
	}
	// Registry audit: every registered family renders in the exposition.
	for _, name := range sys.Telemetry().Names() {
		if !strings.Contains(out, "\n"+name) && !strings.Contains(out, name+" ") &&
			!strings.Contains(out, name+"{") && !strings.Contains(out, name+"_bucket") {
			t.Errorf("registered metric %q absent from /metrics", name)
		}
	}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestTracingDisabledZeroOverheadPaths pins the disabled-tracing fast
// paths at zero allocations: the untraced wire encoders are unchanged, the
// nil tracer/trace receivers are free, and a nil event log Record no-ops.
func TestTracingDisabledZeroOverheadPaths(t *testing.T) {
	q := BatchQuery{Kind: IntervalQuery, Port: 1, Start: 5, End: 9}
	buf := make([]byte, 0, 256)
	if n := testing.AllocsPerRun(200, func() {
		buf = appendQueryFrame(buf[:0], 7, q)
	}); n > 0 {
		t.Errorf("appendQueryFrame allocates %.1f/op with tracing disabled, want 0", n)
	}
	var tracer *tracing.Tracer
	var trace *tracing.Trace
	var log *tracing.EventLog
	if n := testing.AllocsPerRun(200, func() {
		tr := tracer.Start("interval")
		sp := tr.StartSpan("x", tracing.SrcClient)
		sp.End()
		tr.FinishErr(nil)
		trace.AddSpans(nil)
		tracer.MaybeSlow("interval", time.Time{}, 0, nil)
		log.Record(tracing.EventShed, "s", 1, 0)
	}); n > 0 {
		t.Errorf("nil tracing receivers allocate %.1f/op, want 0", n)
	}
}
