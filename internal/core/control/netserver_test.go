package control

import (
	"bufio"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// netFixture builds a populated system with a running query + net server.
func netFixture(t *testing.T) (*NetServer, uint64) {
	t.Helper()
	cfg := testConfig(0)
	s, _ := New(cfg)
	var ts uint64 = 1000
	for i := 0; i < 60; i++ {
		ts += 10
		s.OnDequeue(deq(fkey(byte(i%3)), 0, ts-40, ts, 8))
	}
	s.Finalize(ts + 1)
	qs := NewQueryServer(s)
	qs.Start(2)
	t.Cleanup(qs.Stop)
	srv, err := ServeQueries("127.0.0.1:0", qs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, ts
}

func TestNetServerRoundTrip(t *testing.T) {
	srv, ts := netFixture(t)
	client, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	counts, err := client.Interval(0, 1000, ts+1)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, n := range counts {
		total += n
	}
	if total < 50 || total > 70 {
		t.Fatalf("remote interval total %v, want ~60", total)
	}

	orig, err := client.Original(0, 0, ts)
	if err != nil {
		t.Fatal(err)
	}
	if len(orig) == 0 {
		t.Fatal("remote original query returned nothing")
	}

	// An interval with no traffic must come back as a non-nil empty map, so
	// callers can distinguish "no culprits" from a failed query.
	empty, err := client.Interval(0, ts+100, ts+200)
	if err != nil {
		t.Fatalf("empty-interval query: %v", err)
	}
	if empty == nil {
		t.Fatal("empty result is nil; want a non-nil empty map")
	}
	if len(empty) != 0 {
		t.Fatalf("empty-interval query returned %d flows, want 0", len(empty))
	}

	// Errors travel back as errors.
	if _, err := client.Interval(9, 0, 1); err == nil {
		t.Fatal("remote unknown-port query succeeded")
	}
	if _, err := client.Interval(0, 5, 5); err == nil {
		t.Fatal("remote empty interval succeeded")
	}
}

// TestNetServerOverlongLine sends a request line beyond the 64 KiB cap: the
// server must answer with a bad-request error, count it, and keep the
// connection serving (the old bufio.Scanner path dropped it silently).
func TestNetServerOverlongLine(t *testing.T) {
	srv, ts := netFixture(t)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)

	big := make([]byte, 80*1024)
	for i := range big {
		big[i] = 'x'
	}
	big[len(big)-1] = '\n'
	if _, err := conn.Write(big); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("no reply to the over-long line: %v", err)
	}
	if !strings.Contains(resp, "bad request") {
		t.Fatalf("over-long line got %q, want a bad-request error", resp)
	}
	if got := srv.badRequests.Load(); got != 1 {
		t.Errorf("badRequests = %d after over-long line, want 1", got)
	}

	// The connection survives: a well-formed request still gets answered.
	if _, err := conn.Write([]byte(`{"kind":"interval","port":0,"start":1000,"end":` + strconv.FormatUint(ts+1, 10) + "}\n")); err != nil {
		t.Fatal(err)
	}
	resp, err = br.ReadString('\n')
	if err != nil {
		t.Fatalf("request after over-long line got no reply: %v", err)
	}
	if !strings.Contains(resp, "counts") {
		t.Fatalf("request after over-long line got %q, want counts", resp)
	}
}

func TestNetServerMalformedInput(t *testing.T) {
	srv, _ := netFixture(t)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	for _, line := range []string{"not json", `{"kind":"bogus"}`, ""} {
		if _, err := conn.Write([]byte(line + "\n")); err != nil {
			t.Fatal(err)
		}
		if line == "" {
			continue // blank lines are skipped, no response
		}
		resp, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(resp, "error") {
			t.Fatalf("malformed input got %q, want an error response", resp)
		}
	}
}

func TestNetServerConcurrentClients(t *testing.T) {
	srv, ts := netFixture(t)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := Dial(srv.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer client.Close()
			for i := 0; i < 50; i++ {
				if _, err := client.Interval(0, 1000, ts+1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestNetServerClose(t *testing.T) {
	srv, _ := netFixture(t)
	addr := srv.Addr().String()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := net.Dial("tcp", addr); err == nil {
		// A new listener may have grabbed the port; tolerate connection
		// but expect no response server-side. Just ensure no panic.
		t.Log("port rebound by another listener; skipping strict check")
	}
}
