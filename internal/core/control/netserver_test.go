package control

import (
	"bufio"
	"net"
	"strings"
	"sync"
	"testing"
)

// netFixture builds a populated system with a running query + net server.
func netFixture(t *testing.T) (*NetServer, uint64) {
	t.Helper()
	cfg := testConfig(0)
	s, _ := New(cfg)
	var ts uint64 = 1000
	for i := 0; i < 60; i++ {
		ts += 10
		s.OnDequeue(deq(fkey(byte(i%3)), 0, ts-40, ts, 8))
	}
	s.Finalize(ts + 1)
	qs := NewQueryServer(s)
	qs.Start(2)
	t.Cleanup(qs.Stop)
	srv, err := ServeQueries("127.0.0.1:0", qs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, ts
}

func TestNetServerRoundTrip(t *testing.T) {
	srv, ts := netFixture(t)
	client, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	counts, err := client.Interval(0, 1000, ts+1)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, n := range counts {
		total += n
	}
	if total < 50 || total > 70 {
		t.Fatalf("remote interval total %v, want ~60", total)
	}

	orig, err := client.Original(0, 0, ts)
	if err != nil {
		t.Fatal(err)
	}
	if len(orig) == 0 {
		t.Fatal("remote original query returned nothing")
	}

	// Errors travel back as errors.
	if _, err := client.Interval(9, 0, 1); err == nil {
		t.Fatal("remote unknown-port query succeeded")
	}
	if _, err := client.Interval(0, 5, 5); err == nil {
		t.Fatal("remote empty interval succeeded")
	}
}

func TestNetServerMalformedInput(t *testing.T) {
	srv, _ := netFixture(t)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	for _, line := range []string{"not json", `{"kind":"bogus"}`, ""} {
		if _, err := conn.Write([]byte(line + "\n")); err != nil {
			t.Fatal(err)
		}
		if line == "" {
			continue // blank lines are skipped, no response
		}
		resp, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(resp, "error") {
			t.Fatalf("malformed input got %q, want an error response", resp)
		}
	}
}

func TestNetServerConcurrentClients(t *testing.T) {
	srv, ts := netFixture(t)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := Dial(srv.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer client.Close()
			for i := 0; i < 50; i++ {
				if _, err := client.Interval(0, 1000, ts+1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestNetServerClose(t *testing.T) {
	srv, _ := netFixture(t)
	addr := srv.Addr().String()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := net.Dial("tcp", addr); err == nil {
		// A new listener may have grabbed the port; tolerate connection
		// but expect no response server-side. Just ensure no panic.
		t.Log("port rebound by another listener; skipping strict check")
	}
}
