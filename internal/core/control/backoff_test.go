package control

import (
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"printqueue/internal/faultnet"
)

// TestBackoffOverflowClamp pins the shift-clamp fix: before it, enough
// doublings (or a cap near MaxInt64) overflowed time.Duration negative,
// which the retry loop read as "no sleep" — a hot retry loop against an
// already-failing server. Every attempt count must now stay in (0, cap].
func TestBackoffOverflowClamp(t *testing.T) {
	j := newJitterSource(1)
	huge := time.Duration(math.MaxInt64)
	for attempt := 1; attempt <= 200; attempt++ {
		d := backoffDur(DefaultBackoffBase, huge, attempt, j)
		if d <= 0 {
			t.Fatalf("attempt %d with cap MaxInt64: backoff %v, want > 0 (overflowed)", attempt, d)
		}
	}
	for attempt := 1; attempt <= 200; attempt++ {
		d := backoffDur(DefaultBackoffBase, DefaultBackoffMax, attempt, j)
		if d <= 0 || d > DefaultBackoffMax {
			t.Fatalf("attempt %d: backoff %v outside (0, %v]", attempt, d, DefaultBackoffMax)
		}
	}
	// Saturation: far past the doubling range the backoff must sit in the
	// jitter window of the cap, [max/2, max].
	if d := backoffDur(time.Millisecond, time.Second, 1000, j); d < 500*time.Millisecond || d > time.Second {
		t.Fatalf("saturated backoff %v outside [500ms, 1s]", d)
	}
	// A cap below base (the previously-panicking degenerate config) clamps
	// up to base instead of inverting the window.
	if d := backoffDur(20*time.Millisecond, -time.Second, 5, j); d < 10*time.Millisecond || d > 20*time.Millisecond {
		t.Fatalf("negative-cap backoff %v outside [10ms, 20ms]", d)
	}
	if d := backoffDur(0, time.Second, 3, j); d != 0 {
		t.Fatalf("disabled backoff slept %v", d)
	}
}

// TestClientBackoffOverflow drives the same overflow through both clients'
// backoff methods, as a caller with a huge BackoffMax would.
func TestClientBackoffOverflow(t *testing.T) {
	huge := time.Duration(math.MaxInt64)
	mc := &MuxClient{backoffBase: DefaultBackoffBase, backoffMax: huge, jit: newJitterSource(1)}
	qc := &QueryClient{backoffBase: DefaultBackoffBase, backoffMax: huge, jit: newJitterSource(1)}
	for attempt := 1; attempt <= 128; attempt++ {
		if d := mc.backoff(attempt); d <= 0 {
			t.Fatalf("MuxClient attempt %d: backoff %v, want > 0", attempt, d)
		}
		if d := qc.backoff(attempt); d <= 0 {
			t.Fatalf("QueryClient attempt %d: backoff %v, want > 0", attempt, d)
		}
	}
}

// TestJitterSourceParallel hammers one jitter source from many goroutines;
// -race proves draws need no external locking (the bug: a shared
// math/rand.Rand raced when concurrent mux round trips retried at once).
func TestJitterSourceParallel(t *testing.T) {
	j := newJitterSource(7)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if v := j.Int63n(1000); v < 0 || v >= 1000 {
					t.Errorf("Int63n(1000) = %d out of range", v)
					return
				}
			}
		}()
	}
	wg.Wait()
	if j.Int63n(0) != 0 || j.Int63n(-5) != 0 {
		t.Fatal("Int63n(n<=0) must return 0, not panic")
	}
}

// TestChaosParallelRetryJitter forces many concurrent mux round trips into
// their retry loops through a fault-injecting listener that resets
// connections, so backoff jitter is drawn from many goroutines at once.
// Under -race this fails on the old shared-*rand.Rand implementation.
func TestChaosParallelRetryJitter(t *testing.T) {
	srv, ts := chaosFixture(t, faultnet.Config{
		Seed:  chaosSeed(t),
		Reset: 0.3,
	}, ServeOptions{})
	c, err := DialMuxOpts(srv.Addr().String(), DialOptions{
		Timeout:     500 * time.Millisecond,
		MaxRetries:  6,
		BackoffBase: time.Microsecond, // keep the test fast; jitter still drawn per retry
		BackoffMax:  time.Millisecond,
		Seed:        chaosSeed(t),
	})
	if err != nil {
		// The initial dial itself may be reset by the fault config; retry a
		// few times — the faults are probabilistic per connection.
		for i := 0; i < 20 && err != nil; i++ {
			c, err = DialMuxOpts(srv.Addr().String(), DialOptions{
				Timeout: 500 * time.Millisecond, MaxRetries: 6,
				BackoffBase: time.Microsecond, BackoffMax: time.Millisecond,
				Seed: chaosSeed(t) + int64(i),
			})
		}
		if err != nil {
			t.Fatalf("dial never survived the fault injector: %v", err)
		}
	}
	defer c.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				// Errors are fine — the point is concurrent retries racing
				// on the jitter source; correctness of answers is covered
				// by the other chaos tests.
				counts, err := c.Interval(0, 1000, ts+1)
				if err == nil && len(counts) == 0 {
					t.Error("successful query returned no counts")
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Retries() == 0 {
		t.Fatal("fault injector produced no retries; the test exercised nothing")
	}
}

// TestDialOptionsNegativeBackoffMax pins that a pathological negative
// BackoffMax cannot panic the jitter draw (the old code fed rand.Int63n a
// non-positive bound) and still produces a sane sleep.
func TestDialOptionsNegativeBackoffMax(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close() // every round trip fails -> client retries
		}
	}()
	c, err := DialMuxOpts(ln.Addr().String(), DialOptions{
		Timeout:     200 * time.Millisecond,
		MaxRetries:  3,
		BackoffBase: time.Microsecond,
		BackoffMax:  -time.Second,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	slept := make(chan time.Duration, 16)
	c.sleep = func(d time.Duration) { slept <- d }
	if _, err := c.Interval(0, 0, 10); err == nil {
		t.Fatal("query against a closing server succeeded")
	}
	close(slept)
	n := 0
	for d := range slept {
		n++
		if d <= 0 || d > time.Microsecond {
			t.Fatalf("sleep %v outside (0, base] under negative BackoffMax", d)
		}
	}
	if n == 0 {
		t.Fatal("no backoff sleeps recorded")
	}
}
