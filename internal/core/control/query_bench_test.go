package control

import (
	"runtime"
	"sync"
	"testing"

	"printqueue/internal/core/timewindow"
)

// benchHistory lazily builds one deep checkpoint history shared by the
// query benchmarks: 256 paper-scale checkpoints over a 24-flow trace.
// (Deeper histories at k=12 push the live heap past a gigabyte and GC
// marking drowns the measurement.)
var benchHistory struct {
	once sync.Once
	sys  *System
	end  uint64
}

func benchDeepSystem(b *testing.B) (*System, uint64) {
	b.Helper()
	benchHistory.once.Do(func() {
		// The paper's UW-trace windows (m0=6, k=12, alpha=2, T=4): the
		// regime the cell index targets, where a full scan touches T*2^k
		// cells per overlapping checkpoint.
		cfg := testConfig(0)
		cfg.TW = timewindow.Config{M0: 6, K: 12, Alpha: 2, T: 4, MinPktTxDelayNs: 80}
		cfg.PollPeriodNs = cfg.TW.WindowPeriod(0)
		s, err := New(cfg)
		if err != nil {
			panic(err)
		}
		// Bursty traffic: flows send 256-packet trains, so a narrow interval
		// overlaps a handful of flows while the full history holds 24.
		var ts uint64 = 1000
		for len(s.Checkpoints(0)) < 256 {
			ts += 80
			s.OnDequeue(deq(fkey(byte(ts/80/256%24)), 0, ts-160, ts, 8))
		}
		s.Finalize(ts + 1)
		// Pre-build every checkpoint's filter + cell index so both paths
		// measure steady-state query cost, not the lazy one-time build.
		for _, cp := range s.Checkpoints(0) {
			cp.Filtered()
		}
		// Flush the setup's garbage so the first sub-benchmark doesn't pay
		// the trace-construction mark debt.
		runtime.GC()
		benchHistory.sys = s
		benchHistory.end = ts
	})
	return benchHistory.sys, benchHistory.end
}

// BenchmarkQueryInterval measures the interval-query path over a deep
// (256 checkpoint, k=12) history. The narrow case — a recent, short interval,
// the common diagnosis query — is where checkpoint pruning and the cell
// index pay off; the wide case touches every checkpoint on both paths and
// bounds the index's overhead.
func BenchmarkQueryInterval(b *testing.B) {
	s, end := benchDeepSystem(b)
	cases := []struct {
		name     string
		lo, hi   uint64
		path     QueryPath
		pathName string
	}{
		// The narrow interval models a diagnosis query: one victim packet's
		// queuing interval, a few µs against the whole retained history.
		{"narrow/indexed", end - 4096, end, QueryPathIndexed, "indexed"},
		{"narrow/scan", end - 4096, end, QueryPathScan, "scan"},
		{"wide/indexed", 0, end + 1, QueryPathIndexed, "indexed"},
		{"wide/scan", 0, end + 1, QueryPathScan, "scan"},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			s.cfg.QueryPath = c.path
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.QueryInterval(0, c.lo, c.hi); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	s.cfg.QueryPath = QueryPathIndexed
}

// BenchmarkQueryIntervalParallel measures the same wide query through the
// QueryServer fan-out path, where long checkpoint runs shard across the
// worker pool.
func BenchmarkQueryIntervalParallel(b *testing.B) {
	s, end := benchDeepSystem(b)
	s.cfg.QueryPath = QueryPathIndexed
	qs := NewQueryServer(s)
	qs.Start(4)
	defer qs.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := qs.Interval(0, 0, end+1); res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}
