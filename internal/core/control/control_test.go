package control

import (
	"testing"

	"printqueue/internal/core/qmonitor"
	"printqueue/internal/core/timewindow"
	"printqueue/internal/flow"
	"printqueue/internal/pktrec"
)

func fkey(n byte) flow.Key {
	return flow.Key{SrcIP: [4]byte{10, 0, 0, n}, DstIP: [4]byte{10, 0, 1, 1}, SrcPort: 5, DstPort: 80, Proto: flow.ProtoTCP}
}

func testConfig(ports ...int) Config {
	return Config{
		TW:    timewindow.Config{M0: 3, K: 6, Alpha: 1, T: 3, MinPktTxDelayNs: 10},
		QM:    qmonitor.Config{MaxDepthCells: 1024, GranuleCells: 4},
		Ports: ports,
	}
}

// deq builds a dequeued-packet record.
func deq(f flow.Key, port int, enq, deq uint64, depth int) *pktrec.Packet {
	return &pktrec.Packet{
		Flow: f,
		Port: port,
		Meta: pktrec.Metadata{EnqTimestamp: enq, DeqTimedelta: deq - enq, EnqQdepth: depth},
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(testConfig()); err == nil {
		t.Error("no ports accepted")
	}
	if _, err := New(testConfig(1, 1)); err == nil {
		t.Error("duplicate port accepted")
	}
	if _, err := New(testConfig(-1)); err == nil {
		t.Error("negative port accepted")
	}
	cfg := testConfig(0)
	cfg.TW.T = 0
	if _, err := New(cfg); err == nil {
		t.Error("bad TW config accepted")
	}
	cfg = testConfig(0)
	cfg.QM.GranuleCells = 0
	if _, err := New(cfg); err == nil {
		t.Error("bad QM config accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	s, err := New(testConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	got := s.Config()
	if got.QueuesPerPort != 1 {
		t.Errorf("QueuesPerPort = %d, want 1", got.QueuesPerPort)
	}
	if got.PollPeriodNs != got.TW.SetPeriod() {
		t.Errorf("PollPeriodNs = %d, want set period %d", got.PollPeriodNs, got.TW.SetPeriod())
	}
}

func TestIgnoresInactivePorts(t *testing.T) {
	s, _ := New(testConfig(0))
	s.OnDequeue(deq(fkey(1), 7, 10, 20, 4))
	if s.Stats().PacketsObserved != 0 {
		t.Fatal("packet for inactive port observed")
	}
}

func TestQueryRoundTrip(t *testing.T) {
	s, _ := New(testConfig(0))
	// A short burst, all within window 0 (cell period 8 ns).
	var ts uint64 = 1000
	for i := 0; i < 40; i++ {
		ts += 10
		s.OnDequeue(deq(fkey(byte(i%4)), 0, ts-100, ts, 40-i))
	}
	s.Finalize(ts + 1)
	counts, err := s.QueryInterval(0, 1000, ts+1)
	if err != nil {
		t.Fatal(err)
	}
	if got := counts.Total(); got < 35 || got > 45 {
		t.Fatalf("recovered %v packets, want ~40", got)
	}
	for i := 0; i < 4; i++ {
		if n := counts[fkey(byte(i))]; n < 8 || n > 12 {
			t.Fatalf("flow %d count %v, want ~10", i, n)
		}
	}
}

func TestQueryErrors(t *testing.T) {
	s, _ := New(testConfig(0))
	if _, err := s.QueryInterval(9, 0, 10); err == nil {
		t.Error("unknown port accepted")
	}
	if _, err := s.QueryInterval(0, 10, 10); err == nil {
		t.Error("empty interval accepted")
	}
	if _, err := s.QueryOriginal(9, 0, 10); err == nil {
		t.Error("unknown port accepted for original query")
	}
	if _, err := s.QueryOriginal(0, 5, 10); err == nil {
		t.Error("out-of-range queue accepted")
	}
	if _, err := s.QueryOriginal(0, 0, 10); err == nil {
		t.Error("original query without checkpoints succeeded")
	}
}

func TestPeriodicFlips(t *testing.T) {
	cfg := testConfig(0)
	cfg.PollPeriodNs = 1000
	s, _ := New(cfg)
	var ts uint64 = 100
	for i := 0; i < 100; i++ {
		ts += 50
		s.OnDequeue(deq(fkey(1), 0, ts-10, ts, 2))
	}
	// 100 packets over 5000 ns with 1000 ns polls: ~4-5 periodic flips.
	st := s.Stats()
	if st.Checkpoints < 3 || st.Checkpoints > 6 {
		t.Fatalf("checkpoints = %d, want ~4-5", st.Checkpoints)
	}
	if st.EntriesRead == 0 {
		t.Fatal("no read cost accounted")
	}
	// Coverage must chain: each checkpoint's PrevFreeze equals the
	// previous checkpoint's FreezeTime.
	cps := s.Checkpoints(0)
	for i := 1; i < len(cps); i++ {
		if cps[i].PrevFreeze != cps[i-1].FreezeTime {
			t.Fatalf("coverage gap: checkpoint %d prev %d != %d",
				i, cps[i].PrevFreeze, cps[i-1].FreezeTime)
		}
	}
}

// TestQueryAcrossFlips checks that an interval spanning multiple register
// sets aggregates across checkpoints without double counting.
func TestQueryAcrossFlips(t *testing.T) {
	cfg := testConfig(0)
	cfg.PollPeriodNs = 500
	s, _ := New(cfg)
	var ts uint64 = 1000
	for i := 0; i < 200; i++ {
		ts += 10
		s.OnDequeue(deq(fkey(byte(i%2)), 0, ts-50, ts, 4))
	}
	s.Finalize(ts + 1)
	counts, err := s.QueryInterval(0, 1000, ts+1)
	if err != nil {
		t.Fatal(err)
	}
	if got := counts.Total(); got < 180 || got > 220 {
		t.Fatalf("recovered %v packets across flips, want ~200", got)
	}
}

func TestDataPlaneQuery(t *testing.T) {
	cfg := testConfig(0)
	cfg.DPTrigger = func(p *pktrec.Packet) bool { return p.Meta.EnqQdepth >= 100 }
	cfg.ReadRateEntriesPerSec = 1e6 // makes the lock meaningful
	s, _ := New(cfg)
	var ts uint64 = 1000
	for i := 0; i < 50; i++ {
		ts += 10
		depth := 4
		if i == 25 || i == 26 {
			depth = 200 // both trigger; the second lands in the lock window
		}
		s.OnDequeue(deq(fkey(1), 0, ts-50, ts, depth))
	}
	dqs := s.DPQueries(0)
	if len(dqs) != 1 {
		t.Fatalf("dp queries = %d, want 1 (second suppressed by lock)", len(dqs))
	}
	if s.Stats().DPSuppressed != 1 {
		t.Fatalf("suppressed = %d, want 1", s.Stats().DPSuppressed)
	}
	dq := dqs[0]
	if dq.EnqQdepth != 200 || dq.Victim != fkey(1) {
		t.Fatalf("dq = %+v", dq)
	}
	if dq.Result.Total() == 0 {
		t.Fatal("dp query returned no culprits")
	}
	if !dq.Checkpoint.Special {
		t.Fatal("dp checkpoint not marked special")
	}
	if dq.ReadLatency == 0 {
		t.Fatal("read latency not modelled")
	}
}

func TestInfeasibleFlipAccounting(t *testing.T) {
	cfg := testConfig(0)
	cfg.PollPeriodNs = 100
	cfg.ReadRateEntriesPerSec = 1 // absurdly slow reads
	s, _ := New(cfg)
	var ts uint64 = 10
	for i := 0; i < 50; i++ {
		ts += 50
		s.OnDequeue(deq(fkey(1), 0, ts-10, ts, 2))
	}
	if s.Stats().InfeasibleFlips == 0 {
		t.Fatal("infeasible polling not detected")
	}
}

func TestPortIsolation(t *testing.T) {
	s, _ := New(testConfig(0, 1))
	var ts uint64 = 1000
	for i := 0; i < 30; i++ {
		ts += 10
		s.OnDequeue(deq(fkey(1), 0, ts-50, ts, 4))
		s.OnDequeue(deq(fkey(2), 1, ts-50, ts, 4))
	}
	s.Finalize(ts + 1)
	c0, err := s.QueryInterval(0, 1000, ts+1)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := s.QueryInterval(1, 1000, ts+1)
	if err != nil {
		t.Fatal(err)
	}
	if c0[fkey(2)] != 0 || c1[fkey(1)] != 0 {
		t.Fatalf("ports leaked: port0=%v port1=%v", c0, c1)
	}
	if c0[fkey(1)] == 0 || c1[fkey(2)] == 0 {
		t.Fatalf("ports lost their own flows: port0=%v port1=%v", c0, c1)
	}
}

func TestQueryOriginalAcrossFlips(t *testing.T) {
	cfg := testConfig(0)
	cfg.PollPeriodNs = 200
	s, _ := New(cfg)
	var ts uint64 = 100
	// Build the queue monotonically with distinct flows across several
	// poll periods; the staircase spans register sets.
	for i := 0; i < 40; i++ {
		ts += 25
		s.OnDequeue(deq(fkey(byte(i)), 0, ts-10, ts, (i+1)*4))
	}
	s.Finalize(ts + 1)
	culprits, err := s.QueryOriginal(0, 0, ts)
	if err != nil {
		t.Fatal(err)
	}
	if len(culprits) < 35 {
		t.Fatalf("merged staircase has %d culprits, want ~40 (flip lost history?)", len(culprits))
	}
}

func TestMaxCheckpoints(t *testing.T) {
	cfg := testConfig(0)
	cfg.PollPeriodNs = 100
	cfg.MaxCheckpoints = 3
	s, _ := New(cfg)
	var ts uint64 = 10
	for i := 0; i < 200; i++ {
		ts += 50
		s.OnDequeue(deq(fkey(1), 0, ts-10, ts, 2))
	}
	if got := len(s.Checkpoints(0)); got > 3 {
		t.Fatalf("retained %d checkpoints, cap 3", got)
	}
}

func TestNearestCheckpoint(t *testing.T) {
	cps := []*Checkpoint{
		{FreezeTime: 100}, {FreezeTime: 200}, {FreezeTime: 400},
	}
	tests := []struct {
		t    uint64
		want int
	}{
		{0, 0}, {100, 0}, {149, 0}, {151, 1}, {299, 1}, {301, 2}, {1000, 2},
	}
	for _, tt := range tests {
		if got := nearestCheckpoint(cps, tt.t); got != tt.want {
			t.Errorf("nearestCheckpoint(%d) = %d, want %d", tt.t, got, tt.want)
		}
	}
}

func TestSetSelRotation(t *testing.T) {
	s := setSel{}
	if s.index() != 0 {
		t.Fatal("zero selector index != 0")
	}
	if s.toggleFlip().index() != 1 || s.toggleDP().index() != 2 {
		t.Fatal("selector bit positions wrong")
	}
	if s.toggleDP().toggleFlip().index() != 3 {
		t.Fatal("combined selector wrong")
	}
	if s.toggleFlip().toggleFlip() != s {
		t.Fatal("toggleFlip not an involution")
	}
}
