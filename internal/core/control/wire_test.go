package control

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"testing"
)

// roundTripFrame encodes with enc, then reads the frame back through a
// bufio.Reader the way a peer would.
func roundTripFrame(t *testing.T, frame []byte) (op byte, payload []byte) {
	t.Helper()
	br := bufio.NewReader(bytes.NewReader(frame))
	op, payload, err := readFrame(br, nil, maxFramePayload)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	return op, payload
}

func TestWireQueryFrameRoundTrip(t *testing.T) {
	queries := []BatchQuery{
		{Kind: IntervalQuery, Port: 0, Start: 1000, End: 2000},
		{Kind: IntervalQuery, Port: 7, Start: 0, End: 1},
		{Kind: OriginalQuery, Port: 3, Queue: 2, Start: 1500},
		{Kind: OriginalQuery},
	}
	for i, q := range queries {
		frame := appendQueryFrame(nil, uint64(i+1), q)
		op, payload := roundTripFrame(t, frame)
		if op != opQuery {
			t.Fatalf("op = %#x, want opQuery", op)
		}
		id, got, err := decodeQueryRequest(payload)
		if err != nil {
			t.Fatalf("decode query %d: %v", i, err)
		}
		if id != uint64(i+1) || got != q {
			t.Fatalf("query %d round-tripped to id=%d %+v, want id=%d %+v", i, id, got, i+1, q)
		}
	}
}

func TestWireCountsRoundTripBitEqual(t *testing.T) {
	cases := []map[string]float64{
		nil,
		{},
		{"10.0.0.1:80>10.0.0.2:90/tcp": 12.5},
		{"a": 0, "b": 1, "c": 60, "d": 1e9, "e": 0.1, "f": math.MaxFloat64, "g": -3.25},
		{"": 42}, // empty key survives
		{"flow\twith\"specials\\": 7},
	}
	for i, counts := range cases {
		frame := appendReplyFrame(nil, 9, NetResponse{Counts: counts})
		op, payload := roundTripFrame(t, frame)
		if op != opReply {
			t.Fatalf("op = %#x, want opReply", op)
		}
		id, r, err := decodeReply(payload)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if id != 9 || r.Err != nil {
			t.Fatalf("case %d: id=%d err=%v", i, id, r.Err)
		}
		if len(r.Counts) != len(counts) {
			t.Fatalf("case %d: %d keys, want %d", i, len(r.Counts), len(counts))
		}
		for k, v := range counts {
			got, ok := r.Counts[k]
			if !ok {
				t.Fatalf("case %d: key %q lost", i, k)
			}
			if math.Float64bits(got) != math.Float64bits(v) {
				t.Fatalf("case %d: key %q: bits %#x, want %#x", i, k, math.Float64bits(got), math.Float64bits(v))
			}
		}
	}
}

func TestWireErrorReplyRoundTrip(t *testing.T) {
	frame := appendReplyFrame(nil, 3, NetResponse{Error: "control: port 9 not activated"})
	_, payload := roundTripFrame(t, frame)
	id, r, err := decodeReply(payload)
	if err != nil {
		t.Fatal(err)
	}
	if id != 3 || r.Err == nil || r.Err.Error() != "control: port 9 not activated" {
		t.Fatalf("got id=%d err=%v", id, r.Err)
	}

	// The overload sentinel survives the wire as the canonical value, so
	// the client's retry logic can match it with errors.Is.
	frame = appendReplyFrame(nil, 4, NetResponse{Error: ErrOverloaded.Error()})
	_, payload = roundTripFrame(t, frame)
	_, r, err = decodeReply(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(r.Err, ErrOverloaded) {
		t.Fatalf("overload reply decoded to %v, want ErrOverloaded", r.Err)
	}
}

func TestWireBatchRoundTrip(t *testing.T) {
	qs := []BatchQuery{
		{Kind: IntervalQuery, Port: 0, Start: 1, End: 2},
		{Kind: OriginalQuery, Port: 1, Queue: 3, Start: 9},
	}
	frame := appendBatchFrame(nil, 77, qs)
	op, payload := roundTripFrame(t, frame)
	if op != opBatch {
		t.Fatalf("op = %#x, want opBatch", op)
	}
	id, got, err := decodeBatchRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if id != 77 || len(got) != 2 || got[0] != qs[0] || got[1] != qs[1] {
		t.Fatalf("batch round-tripped to id=%d %+v", id, got)
	}

	resps := []NetResponse{
		{Counts: map[string]float64{"x": 1.5}},
		{Error: "nope"},
	}
	frame = appendBatchReplyFrame(nil, 77, resps)
	op, payload = roundTripFrame(t, frame)
	if op != opBatchReply {
		t.Fatalf("op = %#x, want opBatchReply", op)
	}
	id, rs, err := decodeBatchReply(payload)
	if err != nil {
		t.Fatal(err)
	}
	if id != 77 || len(rs) != 2 {
		t.Fatalf("id=%d results=%d", id, len(rs))
	}
	if rs[0].Err != nil || rs[0].Counts["x"] != 1.5 {
		t.Fatalf("result 0 = %+v", rs[0])
	}
	if rs[1].Err == nil || rs[1].Err.Error() != "nope" || rs[1].Counts != nil {
		t.Fatalf("result 1 = %+v", rs[1])
	}
}

// TestWireTruncationNeverPanics feeds every proper prefix of valid frames
// through the decoders: each must fail cleanly, never panic or succeed.
func TestWireTruncationNeverPanics(t *testing.T) {
	frames := [][]byte{
		appendQueryFrame(nil, 123456, BatchQuery{Kind: IntervalQuery, Port: 5, Start: 1 << 40, End: 1<<40 + 9}),
		appendBatchFrame(nil, 7, []BatchQuery{{Kind: OriginalQuery, Port: 1, Queue: 1, Start: 3}}),
		appendReplyFrame(nil, 99, NetResponse{Counts: map[string]float64{"k1": 2.5, "k2": 7}}),
		appendReplyFrame(nil, 99, NetResponse{Error: "boom"}),
		appendBatchReplyFrame(nil, 42, []NetResponse{{Counts: map[string]float64{"a": 1}}, {Error: "e"}}),
	}
	for fi, frame := range frames {
		payload := frame[frameHeaderLen:]
		for cut := 0; cut < len(payload); cut++ {
			p := payload[:cut]
			if _, _, err := decodeQueryRequest(p); err == nil && frame[1] == opQuery && cut < len(payload) {
				t.Fatalf("frame %d: truncated query at %d decoded successfully", fi, cut)
			}
			decodeBatchRequest(p)
			decodeReply(p)
			decodeBatchReply(p)
		}
	}
}

// TestWireBadMagic proves a stream that has lost framing is detected
// immediately rather than misparsed.
func TestWireBadMagic(t *testing.T) {
	br := bufio.NewReader(bytes.NewReader([]byte{0x7B, 0x01, 0, 0, 0, 0}))
	if _, _, err := readFrame(br, nil, maxFramePayload); !errors.Is(err, errBadMagic) {
		t.Fatalf("err = %v, want errBadMagic", err)
	}
	// Oversized length field: rejected before allocating.
	big := []byte{frameMagic, opReply, 0xFF, 0xFF, 0xFF, 0xFF}
	br = bufio.NewReader(bytes.NewReader(big))
	if _, _, err := readFrame(br, nil, maxFramePayload); !errors.Is(err, errFrameSize) {
		t.Fatalf("err = %v, want errFrameSize", err)
	}
}

// TestWireJSONAppendParity checks the hand-rolled pooled JSON encoders
// against encoding/json: every response/request form must decode to the
// same value the marshal-based path produced.
func TestWireJSONAppendParity(t *testing.T) {
	resps := []NetResponse{
		{},
		{ID: 1},
		{ID: 2, Counts: map[string]float64{"10.0.0.1:80>10.0.0.2:90/tcp": 12.5}},
		{ID: 3, Counts: map[string]float64{"a": 1e21, "b": 0.30000000000000004}},
		{Error: "bad request: line exceeds 65536 bytes"},
		{ID: 4, Error: "with \"quotes\" and \\slashes\\ and \x01 control"},
	}
	for i, resp := range resps {
		got := appendJSONResponse(nil, resp)
		var back NetResponse
		if err := json.Unmarshal(got, &back); err != nil {
			t.Fatalf("resp %d: hand-rolled output %q undecodable: %v", i, got, err)
		}
		want, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		var wantBack NetResponse
		if err := json.Unmarshal(want, &wantBack); err != nil {
			t.Fatal(err)
		}
		if back.ID != wantBack.ID || back.Error != wantBack.Error || len(back.Counts) != len(wantBack.Counts) {
			t.Fatalf("resp %d: %q decodes to %+v, json.Marshal %q to %+v", i, got, back, want, wantBack)
		}
		for k, v := range wantBack.Counts {
			if math.Float64bits(back.Counts[k]) != math.Float64bits(v) {
				t.Fatalf("resp %d key %q: %v != %v (not bit-equal)", i, k, back.Counts[k], v)
			}
		}
	}

	reqs := []NetRequest{
		{Kind: "interval", Port: 0, Start: 1000, End: 2000},
		{ID: 9, Kind: "original", Port: 3, Queue: 1, At: 777},
		{ID: 1, Kind: "interval", Port: 2, Start: 0, End: 1},
	}
	for i, req := range reqs {
		got := appendJSONRequest(nil, req)
		var back NetRequest
		if err := json.Unmarshal(got, &back); err != nil {
			t.Fatalf("req %d: %q undecodable: %v", i, got, err)
		}
		if back != req {
			t.Fatalf("req %d: %q decodes to %+v, want %+v", i, got, back, req)
		}
	}
}

// TestWireEncodeAllocs pins the zero-allocation property of the pooled
// encode paths: once a buffer has grown, encoding a reply (binary or JSON)
// into it allocates nothing — the satellite requirement that responses
// stop paying json.Marshal + fresh slices.
func TestWireEncodeAllocs(t *testing.T) {
	resp := NetResponse{ID: 42, Counts: map[string]float64{
		"10.0.0.1:80>10.0.0.2:90/tcp": 12.5,
		"10.0.0.3:81>10.0.0.4:91/udp": 60,
	}}
	buf := make([]byte, 0, 1<<12)
	if n := testing.AllocsPerRun(200, func() {
		buf = appendReplyFrame(buf[:0], 42, resp)
	}); n > 0 {
		t.Errorf("appendReplyFrame allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		buf = appendJSONResponse(buf[:0], resp)
	}); n > 0 {
		t.Errorf("appendJSONResponse allocates %.1f/op, want 0", n)
	}
	req := NetRequest{ID: 7, Kind: "interval", Port: 1, Start: 5, End: 9}
	if n := testing.AllocsPerRun(200, func() {
		buf = appendJSONRequest(buf[:0], req)
	}); n > 0 {
		t.Errorf("appendJSONRequest allocates %.1f/op, want 0", n)
	}
	qs := []BatchQuery{{Kind: IntervalQuery, Port: 1, Start: 5, End: 9}, {Kind: OriginalQuery, Start: 3}}
	if n := testing.AllocsPerRun(200, func() {
		buf = appendBatchFrame(buf[:0], 7, qs)
	}); n > 0 {
		t.Errorf("appendBatchFrame allocates %.1f/op, want 0", n)
	}
}

// TestWireDifferentialJSONBinary drives an identical query stream through
// the v1 JSON client and the v2 binary client (single and batch ops)
// against one server and requires bit-equal counts and matching errors —
// the acceptance gate that the codecs agree.
func TestWireDifferentialJSONBinary(t *testing.T) {
	srv, ts := netFixture(t)
	jc, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer jc.Close()
	bc, err := DialMux(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	runWireDifferential(t, ts, jc, bc)
}

// runWireDifferential drives the shared query stream through a JSON and a
// binary client (also reused with tracing enabled) and requires bit-equal
// answers.
func runWireDifferential(t *testing.T, ts uint64, jc *QueryClient, bc *MuxClient) {
	t.Helper()
	stream := []BatchQuery{
		{Kind: IntervalQuery, Port: 0, Start: 1000, End: ts + 1},       // full trace
		{Kind: IntervalQuery, Port: 0, Start: ts + 100, End: ts + 200}, // empty
		{Kind: OriginalQuery, Port: 0, Queue: 0, Start: ts},            // original culprits
		{Kind: IntervalQuery, Port: 9, Start: 0, End: 1},               // unknown port
		{Kind: IntervalQuery, Port: 0, Start: 5, End: 5},               // empty interval error
		{Kind: OriginalQuery, Port: 0, Queue: 0, Start: 10},            // quiet instant
	}

	run := func(q BatchQuery, do func() (map[string]float64, error)) (map[string]float64, error) {
		t.Helper()
		return do()
	}
	bitEqual := func(i int, jm, bm map[string]float64) {
		t.Helper()
		if len(jm) != len(bm) {
			t.Fatalf("query %d: json %d flows, binary %d flows", i, len(jm), len(bm))
		}
		for k, jv := range jm {
			bv, ok := bm[k]
			if !ok {
				t.Fatalf("query %d: binary lost flow %q", i, k)
			}
			if math.Float64bits(jv) != math.Float64bits(bv) {
				t.Fatalf("query %d flow %q: json bits %#x, binary bits %#x", i, k, math.Float64bits(jv), math.Float64bits(bv))
			}
		}
	}

	var jsonResults []map[string]float64
	var jsonErrs []error
	for i, q := range stream {
		var jm, bm map[string]float64
		var jerr, berr error
		if q.Kind == IntervalQuery {
			jm, jerr = run(q, func() (map[string]float64, error) { return jc.Interval(q.Port, q.Start, q.End) })
			bm, berr = run(q, func() (map[string]float64, error) { return bc.Interval(q.Port, q.Start, q.End) })
		} else {
			jm, jerr = run(q, func() (map[string]float64, error) { return jc.Original(q.Port, q.Queue, q.Start) })
			bm, berr = run(q, func() (map[string]float64, error) { return bc.Original(q.Port, q.Queue, q.Start) })
		}
		jsonResults = append(jsonResults, jm)
		jsonErrs = append(jsonErrs, jerr)
		if (jerr == nil) != (berr == nil) {
			t.Fatalf("query %d: json err %v, binary err %v", i, jerr, berr)
		}
		if jerr != nil {
			if jerr.Error() != berr.Error() {
				t.Fatalf("query %d: json err %q, binary err %q", i, jerr, berr)
			}
			continue
		}
		if (jm == nil) != (bm == nil) {
			t.Fatalf("query %d: nil-ness differs (json %v, binary %v)", i, jm == nil, bm == nil)
		}
		bitEqual(i, jm, bm)
	}

	// The same stream as one batch frame must agree with the per-query
	// JSON answers too.
	batch, err := bc.Batch(stream)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(batch) != len(stream) {
		t.Fatalf("batch returned %d results, want %d", len(batch), len(stream))
	}
	for i, r := range batch {
		if (jsonErrs[i] == nil) != (r.Err == nil) {
			t.Fatalf("batch %d: json err %v, batch err %v", i, jsonErrs[i], r.Err)
		}
		if r.Err != nil {
			if r.Err.Error() != jsonErrs[i].Error() {
				t.Fatalf("batch %d: err %q, want %q", i, r.Err, jsonErrs[i])
			}
			continue
		}
		bitEqual(i, jsonResults[i], r.Counts)
	}
}
