package control

import (
	"errors"
	"sync"
	"testing"
	"time"

	"printqueue/internal/core/histstore"
)

// streamSystem builds a System with a durable history (the stream's
// replay source), feeds it 60 dequeues on port 0 between t=1010 and
// t=1600, and finalizes.
func streamSystem(t *testing.T) (*System, uint64) {
	t.Helper()
	cfg := testConfig(0)
	cfg.History = &histstore.Options{Dir: t.TempDir()}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	var ts uint64 = 1000
	for i := 0; i < 60; i++ {
		ts += 10
		sys.OnDequeue(deq(fkey(byte(i%3)), 0, ts-40, ts, 8+i%9))
	}
	sys.Finalize(ts + 1)
	return sys, ts
}

// serveStream puts a query server with the binary plane in front of sys.
func serveStream(t *testing.T, sys *System) string {
	t.Helper()
	qs := NewQueryServer(sys)
	qs.Start(2)
	t.Cleanup(qs.Stop)
	srv, err := ServeQueries("127.0.0.1:0", qs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr().String()
}

func TestStreamFrameCodec(t *testing.T) {
	// Subscribe round trip.
	sub := appendSubscribeFrame(nil, 12345)
	if sub[0] != frameMagic || sub[1] != opSubscribe {
		t.Fatalf("subscribe frame header = % x", sub[:2])
	}
	since, err := decodeSubscribe(sub[frameHeaderLen:])
	if err != nil || since != 12345 {
		t.Fatalf("decodeSubscribe = %d, %v", since, err)
	}
	if _, err := decodeSubscribe(append(sub[frameHeaderLen:], 0)); !errors.Is(err, errTruncated) {
		t.Fatalf("trailing garbage accepted: %v", err)
	}

	// Checkpoint push round trip, payload aliasing.
	payload := []byte("encoded-record-bytes")
	frame := appendCheckpointFrame(nil, 7, 3, 2000, 1500, pushFlagSpecial|pushFlagReplay, payload)
	f, err := decodeCheckpointFrame(frame[frameHeaderLen:])
	if err != nil {
		t.Fatal(err)
	}
	if f.Seq != 7 || f.Port != 3 || f.FreezeTime != 2000 || f.PrevFreeze != 1500 || !f.Special || !f.Replay {
		t.Fatalf("decoded frame %+v", f)
	}
	if string(f.Payload) != string(payload) {
		t.Fatalf("payload = %q", f.Payload)
	}
	if &f.Payload[0] != &frame[len(frame)-len(payload)] {
		t.Fatal("decoded payload does not alias the frame buffer")
	}
	if _, err := decodeCheckpointFrame(frame[frameHeaderLen : frameHeaderLen+2]); err == nil {
		t.Fatal("truncated checkpoint frame accepted")
	}

	// Resync round trip.
	rs := appendResyncFrame(nil, 42)
	dropped, err := decodeResync(rs[frameHeaderLen:])
	if err != nil || dropped != 42 {
		t.Fatalf("decodeResync = %d, %v", dropped, err)
	}
}

// TestStreamCodecZeroAlloc pins the streaming codec's hot path at zero
// allocations after warmup: the snapshotter-side frame encode reuses its
// buffer, and the mirror-side decode returns payload views.
func TestStreamCodecZeroAlloc(t *testing.T) {
	payload := make([]byte, 512)
	buf := make([]byte, 0, 1024)
	if n := testing.AllocsPerRun(200, func() {
		buf = appendCheckpointFrame(buf[:0], 9, 1, 5000, 4000, pushFlagSpecial, payload)
	}); n > 0 {
		t.Errorf("appendCheckpointFrame allocates %.1f/op, want 0", n)
	}
	frame := appendCheckpointFrame(nil, 9, 1, 5000, 4000, pushFlagSpecial, payload)
	body := frame[frameHeaderLen:]
	if n := testing.AllocsPerRun(200, func() {
		if _, err := decodeCheckpointFrame(body); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("decodeCheckpointFrame allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		buf = appendResyncFrame(buf[:0], 3)
	}); n > 0 {
		t.Errorf("appendResyncFrame allocates %.1f/op, want 0", n)
	}
}

// TestStreamSubDropOldest drives the bounded subscriber queue past
// capacity: the oldest records are evicted, the drop count is surfaced by
// the next pop, and newer records survive in order.
func TestStreamSubDropOldest(t *testing.T) {
	ss := &streamSub{wake: make(chan struct{}, 1)}
	const extra = 10
	for i := 0; i < streamQueueCap+extra; i++ {
		ss.push(pushRec{freezeTime: uint64(i + 1), buf: []byte{}})
	}
	rec, dropped, ok := ss.pop()
	if !ok || dropped != extra {
		t.Fatalf("pop = ok=%v dropped=%d, want ok, %d", ok, dropped, extra)
	}
	if rec.freezeTime != extra+1 {
		t.Fatalf("oldest surviving record = %d, want %d", rec.freezeTime, extra+1)
	}
	prev := rec.freezeTime
	n := 1
	for {
		rec, d, ok := ss.pop()
		if !ok {
			break
		}
		if d != 0 {
			t.Fatalf("drop count %d resurfaced after reset", d)
		}
		if rec.freezeTime != prev+1 {
			t.Fatalf("out-of-order pop: %d after %d", rec.freezeTime, prev)
		}
		prev = rec.freezeTime
		n++
	}
	if n != streamQueueCap {
		t.Fatalf("popped %d records, want %d", n, streamQueueCap)
	}
}

// TestSubscribeReplayAndLive is the end-to-end stream contract: a
// subscriber sees the whole retained history replayed (flagged), then
// live retires as they happen, under one monotonic sequence, with
// metadata matching what the switch's own store indexed.
func TestSubscribeReplayAndLive(t *testing.T) {
	sys, ts := streamSystem(t)
	addr := serveStream(t, sys)

	st, err := DialCheckpoints(addr, 0, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	stats, _ := sys.HistoryStats()
	if stats.Appended == 0 {
		t.Fatal("fixture appended no records")
	}
	var wantSeq uint64
	var lastFreeze uint64
	for wantSeq = 1; ; wantSeq++ {
		f, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if f.Seq != wantSeq {
			t.Fatalf("seq %d, want %d", f.Seq, wantSeq)
		}
		if !f.Replay {
			t.Fatalf("replayed frame %d not flagged Replay", f.Seq)
		}
		if f.Port != 0 || f.FreezeTime <= f.PrevFreeze || len(f.Payload) == 0 {
			t.Fatalf("bad frame metadata: %+v", f)
		}
		if f.FreezeTime <= lastFreeze {
			t.Fatalf("replay out of order: freeze %d after %d", f.FreezeTime, lastFreeze)
		}
		lastFreeze = f.FreezeTime
		if int64(wantSeq) == stats.Appended {
			break
		}
	}
	if lastFreeze != ts+1 {
		t.Fatalf("replay ended at freeze %d, want %d", lastFreeze, ts+1)
	}

	// Live tail: new dequeues retire new checkpoints that arrive unflagged.
	ts2 := ts + 100
	for i := 0; i < 60; i++ {
		ts2 += 10
		sys.OnDequeue(deq(fkey(byte(i%3)), 0, ts2-40, ts2, 8))
	}
	sys.Finalize(ts2 + 1)
	deadline := time.After(5 * time.Second)
	got := make(chan CheckpointFrame, 1)
	go func() {
		f, err := st.Next()
		if err == nil {
			got <- f
		}
	}()
	select {
	case f := <-got:
		if f.Seq != wantSeq+1 {
			t.Fatalf("first live seq %d, want %d", f.Seq, wantSeq+1)
		}
		if f.Replay {
			t.Fatal("live frame flagged as replay")
		}
		if f.FreezeTime <= lastFreeze {
			t.Fatalf("live frame freeze %d not past replay end %d", f.FreezeTime, lastFreeze)
		}
	case <-deadline:
		t.Fatal("no live frame within deadline")
	}
}

// TestSubscribeSince: a subscription with since > 0 replays only records
// strictly newer than the watermark.
func TestSubscribeSince(t *testing.T) {
	sys, ts := streamSystem(t)
	addr := serveStream(t, sys)
	mid := (1000 + ts) / 2

	st, err := DialCheckpoints(addr, mid, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	f, err := st.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.FreezeTime <= mid {
		t.Fatalf("replayed freeze %d not past since %d", f.FreezeTime, mid)
	}
	if f.Seq != 1 {
		t.Fatalf("since-replay restarts sequence at %d, want 1", f.Seq)
	}
}

// TestStreamBackpressureNeverStallsRetire is the backpressure acceptance
// criterion at the hub: with a subscriber that never drains, feeding the
// switch stays non-blocking — the bounded ring drops oldest, the retire
// path never waits, and no freeze stalls are charged.
func TestStreamBackpressureNeverStallsRetire(t *testing.T) {
	sys, ts := streamSystem(t)
	before := sys.Stats().InfeasibleFlips

	// A subscriber that is never drained, straight on the hub.
	sub := sys.stream.subscribe()
	defer sys.stream.unsubscribe(sub)

	start := time.Now()
	ts2 := ts + 100
	var dropped uint64
	for chunk := 0; chunk < 200 && dropped == 0; chunk++ {
		for i := 0; i < 5000; i++ {
			ts2 += 10
			sys.OnDequeue(deq(fkey(byte(i%3)), 0, ts2-40, ts2, 8))
		}
		sub.mu.Lock()
		dropped = sub.dropped
		sub.mu.Unlock()
	}
	sys.Finalize(ts2 + 1)
	elapsed := time.Since(start)
	if elapsed > 30*time.Second {
		t.Fatalf("feed with a stalled subscriber took %v; the stream blocked the retire path", elapsed)
	}
	if got := sys.Stats().InfeasibleFlips; got != before {
		t.Fatalf("InfeasibleFlips rose %d -> %d under a stalled subscriber", before, got)
	}
	sub.mu.Lock()
	n := sub.n
	sub.mu.Unlock()
	if dropped == 0 {
		t.Fatal("no drops recorded; the feed never exceeded the ring")
	}
	if n != streamQueueCap {
		t.Fatalf("stalled subscriber queue holds %d, want full ring %d", n, streamQueueCap)
	}
}

// TestSubscribeStalledConnDoesNotBlockServer: a real subscriber that
// stops reading must not wedge the server — queries on other connections
// keep answering and the switch keeps retiring.
func TestSubscribeStalledConnDoesNotBlockServer(t *testing.T) {
	sys, ts := streamSystem(t)
	addr := serveStream(t, sys)

	st, err := DialCheckpoints(addr, 0, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close() // never reads: the TCP window and then the sub ring absorb the feed

	ts2 := ts + 100
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20000; i++ {
			ts2 += 10
			sys.OnDequeue(deq(fkey(byte(i%3)), 0, ts2-40, ts2, 8))
		}
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("feed blocked behind a stalled subscriber connection")
	}

	// The query plane on a separate connection still answers.
	cl, err := DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	counts, err := cl.Interval(0, 1000, ts+1)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) == 0 {
		t.Fatal("query returned no counts while a subscriber was stalled")
	}
}

// TestSubscribeSecondSubscribeRejected: one subscription per connection;
// a second opSubscribe poisons the stream.
func TestSubscribeSecondSubscribeRejected(t *testing.T) {
	sys, _ := streamSystem(t)
	addr := serveStream(t, sys)
	st, err := DialCheckpoints(addr, 0, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Next(); err != nil {
		t.Fatal(err)
	}
	// Write a second subscribe frame on the raw connection.
	if _, err := st.conn.Write(appendSubscribeFrame(nil, 0)); err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := st.Next(); err != nil {
			if errors.Is(err, ErrStreamResync) {
				continue // drops racing the teardown are fine
			}
			return // connection torn down, as required
		}
	}
}

// TestStreamHubPublishConcurrentUnsubscribe exercises subscribe/publish/
// unsubscribe races under -race.
func TestStreamHubPublishConcurrentUnsubscribe(t *testing.T) {
	var hub streamHub
	payload := make([]byte, 64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			hub.publish(0, uint64(i+1), uint64(i), false, payload)
		}
	}()
	for i := 0; i < 50; i++ {
		sub := hub.subscribe()
		for j := 0; j < 10; j++ {
			sub.pop()
		}
		hub.unsubscribe(sub)
	}
	close(stop)
	wg.Wait()
	if hub.active() {
		t.Fatal("hub still active after every unsubscribe")
	}
}
