package control

import (
	"math/rand/v2"

	"printqueue/internal/flow"
	"printqueue/internal/pktrec"
)

// Trigger decides, in the egress pipeline, whether a dequeued packet should
// initiate a data-plane query of its own queuing interval. The paper's
// §6.2 names three example triggers — "packets with unusually high queuing
// delay, sampled members of a high-priority flow, or a special
// end-host-generated probe" — implemented here, plus combinators.
type Trigger = func(p *pktrec.Packet) bool

// DepthTrigger fires for packets whose enqueue-time queue depth is at least
// cells.
func DepthTrigger(cells int) Trigger {
	return func(p *pktrec.Packet) bool { return p.Meta.EnqQdepth >= cells }
}

// DelayTrigger fires for packets that spent at least delayNs in the queue —
// "packets with unusually high queuing delay".
func DelayTrigger(delayNs uint64) Trigger {
	return func(p *pktrec.Packet) bool { return p.Meta.DeqTimedelta >= delayNs }
}

// FlowSampleTrigger fires for roughly one in n packets of the given flow —
// "sampled members of a high-priority flow". The sampling is hash-based on
// the dequeue timestamp so it needs no per-flow state, as a data-plane
// implementation would.
func FlowSampleTrigger(f flow.Key, n uint64, seed uint64) Trigger {
	if n == 0 {
		n = 1
	}
	return func(p *pktrec.Packet) bool {
		if p.Flow != f {
			return false
		}
		return mixTrigger(p.Meta.DeqTimestamp()^seed)%n == 0
	}
}

// ProbeTrigger fires for end-host-generated probe packets, identified by a
// reserved destination port.
func ProbeTrigger(probePort uint16) Trigger {
	return func(p *pktrec.Packet) bool { return p.Flow.DstPort == probePort }
}

// QueueClassTrigger fires only for packets of the given priority class,
// gating another trigger — e.g. diagnose only high-priority victims.
func QueueClassTrigger(queue int, inner Trigger) Trigger {
	return func(p *pktrec.Packet) bool { return p.Queue == queue && inner(p) }
}

// RandomSampleTrigger fires for roughly one in n packets, uniformly.
func RandomSampleTrigger(n uint64, seed uint64) Trigger {
	if n == 0 {
		n = 1
	}
	rng := rand.New(rand.NewPCG(seed, 0x2545f4914f6cdd1d))
	return func(p *pktrec.Packet) bool { return rng.Uint64N(n) == 0 }
}

// AnyTrigger fires when any of the given triggers fires.
func AnyTrigger(triggers ...Trigger) Trigger {
	return func(p *pktrec.Packet) bool {
		for _, t := range triggers {
			if t(p) {
				return true
			}
		}
		return false
	}
}

// AllTrigger fires when every given trigger fires.
func AllTrigger(triggers ...Trigger) Trigger {
	return func(p *pktrec.Packet) bool {
		for _, t := range triggers {
			if !t(p) {
				return false
			}
		}
		return true
	}
}

// mixTrigger is a SplitMix64-style avalanche for stateless sampling.
func mixTrigger(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
