package control

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
)

// NetServer exposes the analysis program's queries over TCP — the paper's
// Figure-3 "Asynchronous Query" arrow: higher-layer applications send a
// request to the analysis program running on the switch CPU.
//
// The wire protocol is newline-delimited JSON. Request:
//
//	{"kind":"interval","port":0,"start":1000,"end":2000}
//	{"kind":"original","port":0,"queue":0,"at":1500}
//
// Response:
//
//	{"counts":{"10.0.0.1:80>10.0.0.2:90/tcp":12.5,...}}
//	{"error":"control: port 9 not activated"}
//
// One response per request, in order, per connection.
type NetServer struct {
	qs *QueryServer
	ln net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NetRequest is the wire form of a query request.
type NetRequest struct {
	Kind  string `json:"kind"` // "interval" or "original"
	Port  int    `json:"port"`
	Queue int    `json:"queue,omitempty"`
	Start uint64 `json:"start,omitempty"`
	End   uint64 `json:"end,omitempty"`
	At    uint64 `json:"at,omitempty"`
}

// NetResponse is the wire form of a query response.
type NetResponse struct {
	Counts map[string]float64 `json:"counts,omitempty"`
	Error  string             `json:"error,omitempty"`
}

// ServeQueries starts a TCP listener on addr (e.g. "127.0.0.1:0") backed by
// the query server, which must already be started. Close shuts it down.
func ServeQueries(addr string, qs *QueryServer) (*NetServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &NetServer{qs: qs, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address (useful with port 0).
func (s *NetServer) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting, closes open connections, and waits for handler
// goroutines to drain.
func (s *NetServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *NetServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

func (s *NetServer) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	// A query interval/point is ~100 bytes of JSON; a generous line cap
	// guards against hostile input.
	const maxLine = 1 << 16
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 4096), maxLine)
	enc := json.NewEncoder(conn)
	for scanner.Scan() {
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var req NetRequest
		resp := NetResponse{}
		if err := json.Unmarshal(line, &req); err != nil {
			resp.Error = fmt.Sprintf("bad request: %v", err)
		} else {
			resp = s.execute(req)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *NetServer) execute(req NetRequest) NetResponse {
	var res QueryResult
	switch req.Kind {
	case "interval":
		res = s.qs.Interval(req.Port, req.Start, req.End)
	case "original":
		res = s.qs.Original(req.Port, req.Queue, req.At)
	default:
		return NetResponse{Error: fmt.Sprintf("unknown kind %q", req.Kind)}
	}
	if res.Err != nil {
		return NetResponse{Error: res.Err.Error()}
	}
	return NetResponse{Counts: res.Counts}
}

// QueryClient is a minimal client for the NetServer protocol.
type QueryClient struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	enc  *json.Encoder
}

// Dial connects to a NetServer.
func Dial(addr string) (*QueryClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &QueryClient{conn: conn, br: bufio.NewReader(conn), enc: json.NewEncoder(conn)}, nil
}

// Close closes the connection.
func (c *QueryClient) Close() error { return c.conn.Close() }

func (c *QueryClient) roundTrip(req NetRequest) (map[string]float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return nil, err
	}
	line, err := c.br.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	var resp NetResponse
	if err := json.Unmarshal(line, &resp); err != nil {
		return nil, err
	}
	if resp.Error != "" {
		return nil, errors.New(resp.Error)
	}
	return resp.Counts, nil
}

// Interval queries per-flow packet counts over [start, end) on a port.
func (c *QueryClient) Interval(port int, start, end uint64) (map[string]float64, error) {
	return c.roundTrip(NetRequest{Kind: "interval", Port: port, Start: start, End: end})
}

// Original queries the original culprits at time t on a port/queue.
func (c *QueryClient) Original(port, queue int, t uint64) (map[string]float64, error) {
	return c.roundTrip(NetRequest{Kind: "original", Port: port, Queue: queue, At: t})
}
