package control

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"printqueue/internal/telemetry"
)

// NetServer exposes the analysis program's queries over TCP — the paper's
// Figure-3 "Asynchronous Query" arrow: higher-layer applications send a
// request to the analysis program running on the switch CPU.
//
// The wire protocol is newline-delimited JSON. Request:
//
//	{"kind":"interval","port":0,"start":1000,"end":2000}
//	{"kind":"original","port":0,"queue":0,"at":1500}
//
// Response:
//
//	{"counts":{"10.0.0.1:80>10.0.0.2:90/tcp":12.5,...}}
//	{"error":"control: port 9 not activated"}
//
// One response per request, in order, per connection.
type NetServer struct {
	qs *QueryServer
	ln net.Listener

	connections *telemetry.Counter
	requests    *telemetry.Counter
	badRequests *telemetry.Counter

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NetRequest is the wire form of a query request.
type NetRequest struct {
	Kind  string `json:"kind"` // "interval" or "original"
	Port  int    `json:"port"`
	Queue int    `json:"queue,omitempty"`
	Start uint64 `json:"start,omitempty"`
	End   uint64 `json:"end,omitempty"`
	At    uint64 `json:"at,omitempty"`
}

// NetResponse is the wire form of a query response.
type NetResponse struct {
	Counts map[string]float64 `json:"counts,omitempty"`
	Error  string             `json:"error,omitempty"`
}

// ServeQueries starts a TCP listener on addr (e.g. "127.0.0.1:0") backed by
// the query server, which must already be started. Close shuts it down.
func ServeQueries(addr string, qs *QueryServer) (*NetServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	reg := qs.sys.telemetry
	s := &NetServer{
		qs: qs, ln: ln, conns: make(map[net.Conn]struct{}),
		connections: reg.Counter("printqueue_netserver_connections_total",
			"TCP query connections accepted."),
		requests: reg.Counter("printqueue_netserver_requests_total",
			"Query requests received over TCP."),
		badRequests: reg.Counter("printqueue_netserver_bad_requests_total",
			"TCP query requests rejected as malformed."),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address (useful with port 0).
func (s *NetServer) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting, closes open connections, and waits for handler
// goroutines to drain.
func (s *NetServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *NetServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.connections.Inc()
		go s.handle(conn)
	}
}

func (s *NetServer) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	// A query interval/point is ~100 bytes of JSON; a generous line cap
	// guards against hostile input.
	const maxLine = 1 << 16
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 4096), maxLine)
	enc := json.NewEncoder(conn)
	for scanner.Scan() {
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		s.requests.Inc()
		var req NetRequest
		resp := NetResponse{}
		if err := json.Unmarshal(line, &req); err != nil {
			s.badRequests.Inc()
			resp.Error = fmt.Sprintf("bad request: %v", err)
		} else {
			resp = s.execute(req)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *NetServer) execute(req NetRequest) NetResponse {
	var res QueryResult
	switch req.Kind {
	case "interval":
		res = s.qs.Interval(req.Port, req.Start, req.End)
	case "original":
		res = s.qs.Original(req.Port, req.Queue, req.At)
	default:
		s.badRequests.Inc()
		return NetResponse{Error: fmt.Sprintf("unknown kind %q", req.Kind)}
	}
	if res.Err != nil {
		return NetResponse{Error: res.Err.Error()}
	}
	return NetResponse{Counts: res.Counts}
}

// DefaultDialTimeout is the per-round-trip I/O deadline applied when
// DialOptions.Timeout is zero: long enough for any real query, short enough
// that a hung QueryService cannot block a diagnosis forever.
const DefaultDialTimeout = 5 * time.Second

// DialOptions tunes a QueryClient connection.
type DialOptions struct {
	// Timeout is the I/O deadline applied to each round trip (write +
	// read). 0 means DefaultDialTimeout; negative disables deadlines.
	Timeout time.Duration
	// Timeouts, if non-nil, is incremented for every round trip that fails
	// with an I/O timeout — wire it to a telemetry registry's
	// printqueue_query_client_timeouts_total to fold client-side stalls
	// into the query error metrics. The client also counts timeouts
	// internally; see QueryClient.Timeouts.
	Timeouts *telemetry.Counter
}

// QueryClient is a minimal client for the NetServer protocol.
type QueryClient struct {
	mu         sync.Mutex
	conn       net.Conn
	br         *bufio.Reader
	enc        *json.Encoder
	timeout    time.Duration
	timeouts   atomic.Int64
	timeoutCtr *telemetry.Counter
}

// Dial connects to a NetServer with default options.
func Dial(addr string) (*QueryClient, error) {
	return DialOpts(addr, DialOptions{})
}

// DialOpts connects to a NetServer with explicit options.
func DialOpts(addr string, opts DialOptions) (*QueryClient, error) {
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = DefaultDialTimeout
	}
	conn, err := net.DialTimeout("tcp", addr, max(timeout, 0))
	if err != nil {
		return nil, err
	}
	return &QueryClient{
		conn:       conn,
		br:         bufio.NewReader(conn),
		enc:        json.NewEncoder(conn),
		timeout:    timeout,
		timeoutCtr: opts.Timeouts,
	}, nil
}

// Close closes the connection.
func (c *QueryClient) Close() error { return c.conn.Close() }

// Timeouts returns how many round trips have failed with an I/O timeout.
func (c *QueryClient) Timeouts() int64 { return c.timeouts.Load() }

func (c *QueryClient) roundTrip(req NetRequest) (map[string]float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return nil, err
		}
	}
	if err := c.enc.Encode(req); err != nil {
		return nil, c.noteTimeout(err)
	}
	line, err := c.br.ReadBytes('\n')
	if err != nil {
		return nil, c.noteTimeout(err)
	}
	var resp NetResponse
	if err := json.Unmarshal(line, &resp); err != nil {
		return nil, err
	}
	if resp.Error != "" {
		return nil, errors.New(resp.Error)
	}
	return resp.Counts, nil
}

// noteTimeout counts err if it is an I/O timeout, and passes it through.
func (c *QueryClient) noteTimeout(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		c.timeouts.Add(1)
		if c.timeoutCtr != nil {
			c.timeoutCtr.Inc()
		}
	}
	return err
}

// Interval queries per-flow packet counts over [start, end) on a port.
func (c *QueryClient) Interval(port int, start, end uint64) (map[string]float64, error) {
	return c.roundTrip(NetRequest{Kind: "interval", Port: port, Start: start, End: end})
}

// Original queries the original culprits at time t on a port/queue.
func (c *QueryClient) Original(port, queue int, t uint64) (map[string]float64, error) {
	return c.roundTrip(NetRequest{Kind: "original", Port: port, Queue: queue, At: t})
}
