package control

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"printqueue/internal/telemetry"
	"printqueue/internal/tracing"
)

// NetServer exposes the analysis program's queries over TCP — the paper's
// Figure-3 "Asynchronous Query" arrow: higher-layer applications send a
// request to the analysis program running on the switch CPU.
//
// Two wire protocols share the listener, negotiated by the first byte of
// each connection:
//
//   - Wire protocol v2 (first byte 0xB1): length-prefixed binary frames
//     with true multiplexing — many requests in flight per connection,
//     dispatched concurrently to the query workers and answered in
//     completion order, plus a batch op carrying many queries in one
//     frame. See wire.go for the frame layout and MuxClient for the
//     matching client.
//
//   - v1 fallback (anything else): newline-delimited JSON, one response
//     per request, in order. Request:
//
//     {"id":1,"kind":"interval","port":0,"start":1000,"end":2000}
//     {"id":2,"kind":"original","port":0,"queue":0,"at":1500}
//
//     Response:
//
//     {"id":1,"counts":{"10.0.0.1:80>10.0.0.2:90/tcp":12.5,...}}
//     {"id":2,"error":"control: port 9 not activated"}
//
// In both protocols the server echoes the request's id verbatim so a
// client that abandoned an earlier round trip (e.g. after an I/O timeout)
// can never mistake the late response for the answer to a newer query.
type NetServer struct {
	qs   *QueryServer
	ln   net.Listener
	opts ServeOptions

	connections   *telemetry.Counter
	binaryConns   *telemetry.Counter
	requests      *telemetry.Counter
	badRequests   *telemetry.Counter
	shed          *telemetry.Counter
	acceptRetries *telemetry.Counter
	framesRx      *telemetry.Counter
	framesTx      *telemetry.Counter
	bytesRx       *telemetry.Counter
	bytesTx       *telemetry.Counter
	batched       *telemetry.Counter
	inflightGauge *telemetry.Gauge
	connInflight  *telemetry.Gauge

	// inflight counts requests currently submitted to the query server
	// across all connections; the shed bound compares against it.
	inflight atomic.Int64

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NetRequest is the wire form of a query request.
type NetRequest struct {
	// ID tags the request so its response can be matched unambiguously.
	// The server echoes it verbatim; clients use monotonically increasing
	// ids. 0 (legacy clients) is echoed as an omitted field.
	ID    uint64 `json:"id,omitempty"`
	Kind  string `json:"kind"` // "interval" or "original"
	Port  int    `json:"port"`
	Queue int    `json:"queue,omitempty"`
	Start uint64 `json:"start,omitempty"`
	End   uint64 `json:"end,omitempty"`
	At    uint64 `json:"at,omitempty"`
	// Trace, when non-zero, is the client's trace id: the server joins
	// it, records its per-stage spans, and returns them on the response
	// so both halves merge into one trace (the JSON twin of opQueryT).
	Trace uint64 `json:"trace,omitempty"`
}

// NetResponse is the wire form of a query response.
type NetResponse struct {
	// ID echoes the request's id (omitted for id-less legacy requests and
	// for replies to undecodable lines).
	ID     uint64             `json:"id,omitempty"`
	Counts map[string]float64 `json:"counts,omitempty"`
	Error  string             `json:"error,omitempty"`
	// Spans carries the server-side stage spans of a traced request back
	// to the client (only set when the request carried a trace id).
	Spans []tracing.Span `json:"spans,omitempty"`
}

// ErrOverloaded is returned (and sent on the wire as {"error":"overloaded"})
// when the query backlog exceeds the server's shed limit. It is retryable:
// the request was rejected before execution, so a client may back off and
// resend on the same connection.
var ErrOverloaded = errors.New("overloaded")

// Server-side resilience defaults. They bound how long a dead peer can pin
// resources without getting in the way of any real workload.
const (
	// DefaultIdleTimeout is how long a connection may sit between requests
	// before the server reclaims its handler goroutine.
	DefaultIdleTimeout = 2 * time.Minute
	// DefaultWriteTimeout bounds one response write, so a client that
	// stopped reading cannot block a handler forever.
	DefaultWriteTimeout = 10 * time.Second
	// DefaultShedLimit is the request backlog beyond which the server
	// replies {"error":"overloaded"} instead of queueing.
	DefaultShedLimit = 256
)

// ServeOptions tunes a NetServer's graceful-degradation behavior.
type ServeOptions struct {
	// IdleTimeout is the per-connection read deadline while waiting for the
	// next request. 0 means DefaultIdleTimeout; negative disables it.
	IdleTimeout time.Duration
	// WriteTimeout is the deadline for writing one response. 0 means
	// DefaultWriteTimeout; negative disables it.
	WriteTimeout time.Duration
	// ShedLimit bounds requests concurrently in flight on the query server
	// across all connections; excess requests are answered with
	// {"error":"overloaded"} immediately. 0 means DefaultShedLimit;
	// negative disables shedding.
	ShedLimit int
}

func (o *ServeOptions) normalize() {
	if o.IdleTimeout == 0 {
		o.IdleTimeout = DefaultIdleTimeout
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = DefaultWriteTimeout
	}
	if o.ShedLimit == 0 {
		o.ShedLimit = DefaultShedLimit
	}
}

// ServeQueries starts a TCP listener on addr (e.g. "127.0.0.1:0") backed by
// the query server, which must already be started. Close shuts it down.
func ServeQueries(addr string, qs *QueryServer) (*NetServer, error) {
	return ServeQueriesOpts(addr, qs, ServeOptions{})
}

// ServeQueriesOpts is ServeQueries with explicit resilience options.
func ServeQueriesOpts(addr string, qs *QueryServer, opts ServeOptions) (*NetServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return ServeQueriesListener(ln, qs, opts), nil
}

// ServeQueriesListener serves the query protocol on an existing listener
// (e.g. a fault-injecting wrapper in tests). The server owns the listener
// and closes it on Close.
func ServeQueriesListener(ln net.Listener, qs *QueryServer, opts ServeOptions) *NetServer {
	opts.normalize()
	reg := qs.sys.telemetry
	s := &NetServer{
		qs: qs, ln: ln, opts: opts, conns: make(map[net.Conn]struct{}),
		connections: reg.Counter("printqueue_netserver_connections_total",
			"TCP query connections accepted."),
		requests: reg.Counter("printqueue_netserver_requests_total",
			"Query requests received over TCP."),
		badRequests: reg.Counter("printqueue_netserver_bad_requests_total",
			"TCP query requests rejected as malformed."),
		shed: reg.Counter("printqueue_netserver_shed_total",
			"Query requests rejected with {\"error\":\"overloaded\"} because the backlog exceeded the shed limit."),
		acceptRetries: reg.Counter("printqueue_netserver_accept_retries_total",
			"Transient accept failures survived by the listener's retry loop."),
		binaryConns: reg.Counter("printqueue_netserver_binary_connections_total",
			"TCP query connections negotiated to the binary (v2) framing."),
		framesRx: reg.Counter("printqueue_netserver_frames_total",
			"Binary protocol frames processed.", telemetry.L("dir", "rx")),
		framesTx: reg.Counter("printqueue_netserver_frames_total",
			"Binary protocol frames processed.", telemetry.L("dir", "tx")),
		bytesRx: reg.Counter("printqueue_netserver_frame_bytes_total",
			"Binary protocol bytes processed, headers included.", telemetry.L("dir", "rx")),
		bytesTx: reg.Counter("printqueue_netserver_frame_bytes_total",
			"Binary protocol bytes processed, headers included.", telemetry.L("dir", "tx")),
		batched: reg.Counter("printqueue_netserver_batched_queries_total",
			"Queries that arrived inside a batch frame."),
		inflightGauge: reg.Gauge("printqueue_netserver_inflight",
			"Query requests admitted and currently executing, across all connections."),
		connInflight: reg.Gauge("printqueue_netserver_conn_inflight_max",
			"High watermark of requests in flight on a single connection."),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener's address (useful with port 0).
func (s *NetServer) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting, closes open connections, and waits for handler
// goroutines to drain.
func (s *NetServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *NetServer) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *NetServer) acceptLoop() {
	defer s.wg.Done()
	const maxAcceptBackoff = time.Second
	var backoff time.Duration
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.isClosed() || errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient failures — fd exhaustion (EMFILE/ENFILE),
			// aborted handshakes — must not kill the listener: back off
			// and retry instead of abandoning the query plane.
			if backoff == 0 {
				backoff = 5 * time.Millisecond
			} else if backoff *= 2; backoff > maxAcceptBackoff {
				backoff = maxAcceptBackoff
			}
			s.acceptRetries.Inc()
			time.Sleep(backoff)
			continue
		}
		backoff = 0
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.connections.Inc()
		go s.handle(conn)
	}
}

// maxLine caps one request line; a query interval/point is ~100 bytes of
// JSON, so a generous cap guards against hostile input.
const maxLine = 1 << 16

// admit reserves n units of query backlog, shedding if the limit would be
// exceeded. release returns them.
func (s *NetServer) admit(n int64) bool {
	v := s.inflight.Add(n)
	if s.opts.ShedLimit > 0 && v > int64(s.opts.ShedLimit) {
		s.inflight.Add(-n)
		s.shed.Inc()
		s.qs.sys.Events().Record(tracing.EventShed, "netserver", v-n, 0)
		return false
	}
	s.inflightGauge.Add(n)
	return true
}

// serverTrace opens the server half of a traced query, joining the
// client's trace id (forced ids bypass sampling). With local tracing
// disabled the trace is detached: spans still travel back in the reply,
// but nothing is retained server-side.
func (s *NetServer) serverTrace(name string, traceID uint64) *tracing.Trace {
	if t := s.qs.sys.Tracer(); t != nil {
		return t.StartForced(name, traceID)
	}
	return tracing.NewDetached(name, traceID, 0)
}

// kindName maps a wire query kind to its trace root name.
func kindName(k QueryKind) string {
	if k == OriginalQuery {
		return "original"
	}
	return "interval"
}

func (s *NetServer) release(n int64) {
	s.inflight.Add(-n)
	s.inflightGauge.Add(-n)
}

// handle sniffs the connection's first byte to negotiate the protocol: a
// binary frame's magic byte can never begin a JSON request, so v2 clients
// are detected without a handshake round trip and v1 clients fall back to
// the JSON line protocol transparently.
func (s *NetServer) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	br := getReader(conn)
	defer putReader(br)
	if s.opts.IdleTimeout > 0 {
		if err := conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout)); err != nil {
			return
		}
	}
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	if first[0] == frameMagic {
		s.binaryConns.Inc()
		s.handleBinary(conn, br)
		return
	}
	s.handleJSON(conn, br)
}

// handleJSON serves the v1 newline-delimited JSON protocol: one request,
// one response, in order. Line scratch and response encode buffers are
// pooled and reused across requests.
func (s *NetServer) handleJSON(conn net.Conn, br *bufio.Reader) {
	scratch := getBuf()
	defer func() { putBuf(scratch) }()
	for {
		if s.opts.IdleTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout)); err != nil {
				return
			}
		}
		line, tooLong, err := readLine(br, scratch[:0], maxLine)
		if err != nil {
			return // peer gone, reset, or idle deadline expired
		}
		scratch = line[:0] // keep any capacity readLine grew
		if tooLong {
			s.badRequests.Inc()
			if !s.reply(conn, NetResponse{Error: fmt.Sprintf("bad request: line exceeds %d bytes", maxLine)}) {
				return
			}
			continue
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		s.requests.Inc()
		var req NetRequest
		var resp NetResponse
		var tr *tracing.Trace
		if err := json.Unmarshal(line, &req); err != nil {
			s.badRequests.Inc()
			resp = NetResponse{Error: fmt.Sprintf("bad request: %v", err)}
		} else {
			if req.Trace != 0 {
				tr = s.serverTrace(req.Kind, req.Trace)
			}
			sp := tr.StartSpan("server.dispatch", tracing.SrcServer)
			if !s.admit(1) {
				sp.End()
				resp = NetResponse{ID: req.ID, Error: ErrOverloaded.Error()}
			} else {
				sp.End()
				resp = s.execute(req, tr)
				s.release(1)
			}
		}
		if tr != nil {
			resp.Spans = tr.Spans()
		}
		if !s.replyTrace(conn, resp, tr) {
			return
		}
	}
}

// handleBinary serves wire protocol v2: a reader loop decodes frames and
// dispatches each request to the query workers concurrently, and a writer
// goroutine streams replies back in completion order. A frame that fails
// to decode means the stream can no longer be trusted (unlike JSON lines,
// frames cannot resynchronize), so the connection is dropped; the client
// treats that as poison and redials.
func (s *NetServer) handleBinary(conn net.Conn, br *bufio.Reader) {
	out := make(chan outFrame, 64)
	writerDone := make(chan struct{})
	go s.connWriter(conn, out, writerDone)
	var reqWG sync.WaitGroup
	var perConn atomic.Int64 // requests in flight on this connection
	scratch := getBuf()
	// stopPush unwinds a checkpoint-push goroutine (opSubscribe) when the
	// reader loop exits, so the drain below can safely close out.
	stopPush := make(chan struct{})
	subscribed := false
loop:
	for {
		if s.opts.IdleTimeout > 0 && !subscribed {
			if err := conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout)); err != nil {
				break
			}
		}
		op, payload, err := readFrame(br, scratch, maxFramePayload)
		scratch = payload[:0]
		if err != nil {
			if isFrameErr(err) {
				s.badRequests.Inc()
			}
			break
		}
		s.framesRx.Inc()
		s.bytesRx.Add(int64(frameHeaderLen + len(payload)))
		switch op {
		case opQuery, opQueryT:
			var id, traceID uint64
			var q BatchQuery
			var err error
			if op == opQueryT {
				id, traceID, q, err = decodeQueryRequestT(payload)
			} else {
				id, q, err = decodeQueryRequest(payload)
			}
			if err != nil {
				s.badRequests.Inc()
				break loop
			}
			s.requests.Inc()
			var tr *tracing.Trace
			if op == opQueryT {
				tr = s.serverTrace(kindName(q.Kind), traceID)
			}
			spD := tr.StartSpan("server.dispatch", tracing.SrcServer)
			if !s.admit(1) {
				spD.End()
				resp := NetResponse{Error: ErrOverloaded.Error()}
				out <- outFrame{buf: s.encodeReply(id, resp, tr), tr: tr, errStr: resp.Error}
				continue
			}
			reqWG.Add(1)
			s.connInflight.Max(perConn.Add(1))
			go func() {
				defer reqWG.Done()
				spD.End() // dispatch = decode + admit + handoff to this goroutine
				resp := s.executeWire(q, tr)
				s.release(1)
				perConn.Add(-1)
				out <- outFrame{buf: s.encodeReply(id, resp, tr), tr: tr, errStr: resp.Error}
			}()
		case opBatch, opBatchT:
			var id, traceID uint64
			var qs []BatchQuery
			var err error
			if op == opBatchT {
				id, traceID, qs, err = decodeBatchRequestT(payload)
			} else {
				id, qs, err = decodeBatchRequest(payload)
			}
			if err != nil {
				s.badRequests.Inc()
				break loop
			}
			s.requests.Add(int64(len(qs)))
			s.batched.Add(int64(len(qs)))
			var tr *tracing.Trace
			if op == opBatchT {
				tr = s.serverTrace("batch", traceID)
			}
			spD := tr.StartSpan("server.dispatch", tracing.SrcServer)
			if len(qs) == 0 {
				spD.End()
				out <- outFrame{buf: s.encodeBatchReply(id, nil, tr), tr: tr}
				continue
			}
			// A batch is admitted whole: each query counts one unit
			// against the shed limit, and an over-limit batch sheds in a
			// single reply rather than executing partially.
			if !s.admit(int64(len(qs))) {
				spD.End()
				resps := make([]NetResponse, len(qs))
				for i := range resps {
					resps[i].Error = ErrOverloaded.Error()
				}
				out <- outFrame{buf: s.encodeBatchReply(id, resps, tr), tr: tr, errStr: ErrOverloaded.Error()}
				continue
			}
			reqWG.Add(1)
			s.connInflight.Max(perConn.Add(int64(len(qs))))
			go s.serveBatch(id, qs, tr, spD, out, &reqWG, &perConn)
		case opSubscribe:
			since, err := decodeSubscribe(payload)
			if err != nil || subscribed {
				s.badRequests.Inc()
				break loop
			}
			subscribed = true
			// A push stream has no request cadence, so the idle deadline
			// would kill a healthy but quiet subscription; clear it. The
			// reader stays blocked as the connection-death detector.
			conn.SetReadDeadline(time.Time{})
			// Subscribe to live retires before replaying the log so no
			// checkpoint falls between the two; the subscriber dedupes the
			// overlap by freeze time.
			sub := s.qs.sys.stream.subscribe()
			reqWG.Add(1)
			go func() {
				defer reqWG.Done()
				defer s.qs.sys.stream.unsubscribe(sub)
				s.pushCheckpoints(sub, since, out, stopPush)
			}()
		default:
			s.badRequests.Inc()
			break loop
		}
	}
	// Drain: unwind a push goroutine, wait for dispatched requests (their
	// replies flow through out), then let the writer finish and reclaim
	// its buffers.
	close(stopPush)
	reqWG.Wait()
	close(out)
	<-writerDone
	putBuf(scratch)
}

// outFrame is one encoded reply headed for the connection writer, plus
// the server-side trace it closes (nil for untraced requests).
type outFrame struct {
	buf    []byte
	tr     *tracing.Trace
	errStr string // the reply's application error, annotated at Finish
}

// encodeReply encodes a single-query reply, traced or not. For a traced
// request the reply carries the trace's spans recorded so far (the write
// span lands afterwards and is only visible server-side).
func (s *NetServer) encodeReply(id uint64, resp NetResponse, tr *tracing.Trace) []byte {
	if tr != nil {
		return appendReplyTFrame(getBuf(), id, resp, tr.Spans())
	}
	return appendReplyFrame(getBuf(), id, resp)
}

// encodeBatchReply is encodeReply for batch replies.
func (s *NetServer) encodeBatchReply(id uint64, resps []NetResponse, tr *tracing.Trace) []byte {
	if tr != nil {
		return appendBatchReplyTFrame(getBuf(), id, resps, tr.Spans())
	}
	return appendBatchReplyFrame(getBuf(), id, resps)
}

// serveBatch fans a batch's queries out to the query workers concurrently
// and answers with one frame once every query completes, in request order.
func (s *NetServer) serveBatch(id uint64, qs []BatchQuery, tr *tracing.Trace, spD tracing.SpanHandle, out chan<- outFrame, reqWG *sync.WaitGroup, perConn *atomic.Int64) {
	defer reqWG.Done()
	spD.End()
	resps := make([]NetResponse, len(qs))
	var wg sync.WaitGroup
	for i := range qs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i] = s.executeWire(qs[i], tr)
		}(i)
	}
	wg.Wait()
	s.release(int64(len(qs)))
	perConn.Add(int64(-len(qs)))
	out <- outFrame{buf: s.encodeBatchReply(id, resps, tr), tr: tr}
}

// errPushStopped aborts a segment-log replay when the subscriber's
// connection is unwinding.
var errPushStopped = errors.New("control: checkpoint push stopped")

// pushCheckpoints drives one checkpoint subscription: replay the segment
// log for records with FreezeTime > since, then stream live retires from
// the subscriber's bounded queue, emitting a resync marker whenever
// backpressure forced drops. Sequence numbers are assigned here, at send
// time, so replayed and live frames share one monotonic sequence; pushed
// frames ride the connection's ordinary writer goroutine, interleaving
// with any query replies on the same connection.
func (s *NetServer) pushCheckpoints(sub *streamSub, since uint64, out chan<- outFrame, stop <-chan struct{}) {
	var seq uint64
	send := func(buf []byte) bool {
		select {
		case out <- outFrame{buf: buf}:
			return true
		case <-stop:
			putBuf(buf)
			return false
		}
	}
	if hist := s.qs.sys.hist; hist != nil {
		err := hist.ReplaySince(since, func(payload []byte, port int, freezeTime, prevFreeze uint64, special bool) error {
			seq++
			flags := pushFlagReplay
			if special {
				flags |= pushFlagSpecial
			}
			if !send(appendCheckpointFrame(getBuf(), seq, port, freezeTime, prevFreeze, flags, payload)) {
				return errPushStopped
			}
			return nil
		})
		if errors.Is(err, errPushStopped) {
			return
		}
		// Any other replay error (disk fault, pruned segment racing a
		// read): stream live anyway. The subscriber's coverage tracking
		// keeps its answers sound over the missing span, and a later
		// resubscribe retries the replay.
	}
	for {
		for {
			rec, dropped, ok := sub.pop()
			if dropped > 0 {
				// Records were evicted under backpressure before rec; tell
				// the subscriber its view gapped so it never serves the
				// hole silently.
				if !send(appendResyncFrame(getBuf(), dropped)) {
					if ok {
						putBuf(rec.buf)
					}
					return
				}
			}
			if !ok {
				break
			}
			seq++
			buf := appendCheckpointFrame(getBuf(), seq, rec.port, rec.freezeTime, rec.prevFreeze, rec.flags, rec.buf)
			putBuf(rec.buf)
			if !send(buf) {
				return
			}
		}
		select {
		case <-sub.wake:
		case <-stop:
			return
		}
	}
}

// connWriter is the per-connection writer goroutine for the binary
// protocol: it streams completed replies in the order they finish, under
// the write deadline, recycling each frame buffer. After a write error it
// keeps draining (and recycling) so dispatched requests never block, but
// the connection is closed so the reader loop unwinds too. Traced
// requests are orphan-closed here: whether the write succeeded or the
// connection died, the server-side trace is finished exactly once.
func (s *NetServer) connWriter(conn net.Conn, out <-chan outFrame, done chan<- struct{}) {
	defer close(done)
	dead := false
	for f := range out {
		if !dead {
			if s.opts.WriteTimeout > 0 {
				if err := conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout)); err != nil {
					dead = true
				}
			}
			if !dead {
				spW := f.tr.StartSpan("server.write", tracing.SrcServer)
				if _, err := conn.Write(f.buf); err != nil {
					dead = true
				} else {
					spW.End()
					s.framesTx.Inc()
					s.bytesTx.Add(int64(len(f.buf)))
				}
			}
			if dead {
				conn.Close()
			}
		}
		if dead {
			f.tr.Finish("connection dead")
		} else {
			f.tr.Finish(f.errStr)
		}
		putBuf(f.buf)
	}
}

// reply writes one v1 response line under the write deadline, reporting
// whether the connection is still usable. The line is encoded into a
// pooled buffer — no json.Marshal, no fresh slice per reply.
func (s *NetServer) reply(conn net.Conn, resp NetResponse) bool {
	return s.replyTrace(conn, resp, nil)
}

// replyTrace is reply plus trace closure: the write span is recorded
// (server-side only; the spans already left in resp) and the trace is
// finished whether or not the write succeeded.
func (s *NetServer) replyTrace(conn net.Conn, resp NetResponse, tr *tracing.Trace) bool {
	buf := appendJSONResponse(getBuf(), resp)
	buf = append(buf, '\n')
	defer putBuf(buf)
	if s.opts.WriteTimeout > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout)); err != nil {
			tr.Finish("connection dead")
			return false
		}
	}
	spW := tr.StartSpan("server.write", tracing.SrcServer)
	_, err := conn.Write(buf)
	if err != nil {
		tr.Finish("connection dead")
		return false
	}
	spW.End()
	tr.Finish(resp.Error)
	return true
}

// readLine reads one newline-terminated line of at most max bytes,
// appending into buf (typically pooled scratch, so steady-state requests
// allocate nothing). An over-long line is consumed through its terminating
// newline and reported via tooLong, so the connection can answer with an
// error and keep serving instead of dying silently (the old bufio.Scanner
// ErrTooLong behavior).
func readLine(br *bufio.Reader, buf []byte, max int) (line []byte, tooLong bool, err error) {
	line = buf
	for {
		frag, err := br.ReadSlice('\n')
		if !tooLong {
			line = append(line, frag...)
			if len(line) > max {
				tooLong = true
				line = line[:0]
			}
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		if err != nil {
			return line[:0], false, err // EOF/timeout/reset; drop any partial line
		}
		return line, tooLong, nil
	}
}

func (s *NetServer) execute(req NetRequest, tr *tracing.Trace) NetResponse {
	resp := NetResponse{ID: req.ID}
	var kind QueryKind
	switch req.Kind {
	case "interval":
		kind = IntervalQuery
	case "original":
		kind = OriginalQuery
	default:
		s.badRequests.Inc()
		resp.Error = fmt.Sprintf("unknown kind %q", req.Kind)
		return resp
	}
	at := req.Start
	if kind == OriginalQuery {
		at = req.At
	}
	wire := s.executeWire(BatchQuery{Kind: kind, Port: req.Port, Queue: req.Queue, Start: at, End: req.End}, tr)
	resp.Counts = wire.Counts
	resp.Error = wire.Error
	return resp
}

// executeWire runs one decoded query on the query workers, recording
// stage spans into tr (nil for untraced requests). For OriginalQuery
// the instant travels in Start.
func (s *NetServer) executeWire(q BatchQuery, tr *tracing.Trace) NetResponse {
	var res QueryResult
	switch q.Kind {
	case IntervalQuery:
		res = s.qs.intervalTraced(q.Port, q.Start, q.End, tr)
	case OriginalQuery:
		res = s.qs.originalTraced(q.Port, q.Queue, q.Start, tr)
	default:
		s.badRequests.Inc()
		return NetResponse{Error: fmt.Sprintf("unknown kind %d", q.Kind)}
	}
	if res.Err != nil {
		return NetResponse{Error: res.Err.Error()}
	}
	return NetResponse{Counts: res.Counts}
}

// Client-side resilience defaults. Queries are read-only and idempotent, so
// retrying a failed round trip — on the same connection after an overload
// reply, or on a fresh one after an I/O error — is always safe.
const (
	// DefaultDialTimeout is the per-round-trip I/O deadline applied when
	// DialOptions.Timeout is zero: long enough for any real query, short
	// enough that a hung QueryService cannot block a diagnosis forever.
	DefaultDialTimeout = 5 * time.Second
	// DefaultMaxRetries is how many additional attempts a round trip makes
	// after a retryable failure.
	DefaultMaxRetries = 2
	// DefaultBackoffBase is the first retry's backoff; it doubles per
	// retry (with jitter) up to DefaultBackoffMax.
	DefaultBackoffBase = 20 * time.Millisecond
	// DefaultBackoffMax caps the exponential backoff between retries.
	DefaultBackoffMax = time.Second
)

// DialOptions tunes a QueryClient connection.
type DialOptions struct {
	// Timeout is the I/O deadline applied to each round-trip attempt
	// (write + read). 0 means DefaultDialTimeout; negative disables
	// deadlines.
	Timeout time.Duration
	// MaxRetries is the retry budget per round trip: after the first
	// attempt fails with a retryable error (I/O error, desync, overload),
	// up to MaxRetries further attempts are made, redialing if the
	// connection was poisoned. 0 means DefaultMaxRetries; negative
	// disables retries.
	MaxRetries int
	// BackoffBase is the backoff before the first retry, doubling per
	// subsequent retry with jitter in [d/2, d]. 0 means
	// DefaultBackoffBase; negative disables backoff waits.
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff. 0 means DefaultBackoffMax;
	// a value below BackoffBase (including negative) is clamped up to
	// BackoffBase, so the cap can never invert the backoff window.
	BackoffMax time.Duration
	// Seed seeds the jitter PRNG so chaos tests are reproducible. 0 means
	// a fixed default seed (the client's behavior is deterministic for a
	// given fault sequence).
	Seed int64
	// Dialer, if non-nil, replaces net.DialTimeout for the initial dial
	// and every reconnect — the hook fault-injection harnesses use.
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
	// Timeouts, Retries, and Reconnects, if non-nil, are incremented for
	// every round-trip I/O timeout, retry attempt, and successful redial
	// respectively — wire them to a telemetry registry's
	// printqueue_query_client_{timeouts,retries,reconnects}_total to fold
	// client-side resilience into the query metrics. The client also
	// counts internally; see QueryClient.Timeouts/Retries/Reconnects.
	Timeouts   *telemetry.Counter
	Retries    *telemetry.Counter
	Reconnects *telemetry.Counter
	// Tracer, if non-nil, traces round trips: sampled queries carry
	// their trace id on the wire and absorb the server's stage spans
	// into one joined trace; unsampled queries still feed the tracer's
	// always-on slowlog. nil (the default) keeps tracing entirely off
	// the hot path.
	Tracer *tracing.Tracer
}

// errDesync marks a response that could not be matched to its request (a
// mismatched id or an undecodable line). The connection is poisoned — its
// buffered bytes can no longer be trusted — and the attempt is retried on a
// fresh connection, which is safe because queries are idempotent.
var errDesync = errors.New("control: query response desynchronized from request")

// QueryClient is a client for the NetServer protocol.
//
// Every request carries a monotonically increasing id that the server
// echoes; a response whose id does not match the in-flight request is never
// returned to the caller. After any I/O error the connection is poisoned
// and closed — its buffered bytes could belong to an abandoned round trip —
// and the next attempt redials. This fixes the classic framing-desync bug
// where a timed-out read left the previous query's response in the buffer
// to be returned as the answer to the next query.
type QueryClient struct {
	addr        string
	timeout     time.Duration
	maxRetries  int
	backoffBase time.Duration
	backoffMax  time.Duration
	dialer      func(addr string, timeout time.Duration) (net.Conn, error)

	closed atomic.Bool

	// mu serializes round trips: one request/response exchange owns the
	// connection (and retry loop) at a time.
	mu   sync.Mutex
	conn net.Conn
	// br and wbuf persist across redials: adopt resets the reader onto the
	// new connection and the encode buffer is reused in place, so a
	// flapping connection no longer allocates a fresh bufio.Reader +
	// json.Encoder pair per redial while the old pair's buffers linger.
	br     *bufio.Reader
	wbuf   []byte
	broken bool
	lastID uint64
	jit    *jitterSource
	sleep  func(time.Duration) // test hook; time.Sleep

	timeouts, retries, reconnects      atomic.Int64
	timeoutCtr, retryCtr, reconnectCtr *telemetry.Counter

	tracer *tracing.Tracer
}

// Dial connects to a NetServer with default options.
func Dial(addr string) (*QueryClient, error) {
	return DialOpts(addr, DialOptions{})
}

// resolved applies the option defaults shared by the JSON QueryClient and
// the binary MuxClient.
func (o DialOptions) resolved() (timeout time.Duration, maxRetries int, backoffBase, backoffMax time.Duration, seed int64, dialer func(string, time.Duration) (net.Conn, error)) {
	timeout = o.Timeout
	if timeout == 0 {
		timeout = DefaultDialTimeout
	}
	maxRetries = o.MaxRetries
	if maxRetries == 0 {
		maxRetries = DefaultMaxRetries
	} else if maxRetries < 0 {
		maxRetries = 0
	}
	backoffBase = o.BackoffBase
	if backoffBase == 0 {
		backoffBase = DefaultBackoffBase
	} else if backoffBase < 0 {
		backoffBase = 0
	}
	backoffMax = o.BackoffMax
	if backoffMax == 0 {
		backoffMax = DefaultBackoffMax
	}
	seed = o.Seed
	if seed == 0 {
		seed = 1
	}
	dialer = o.Dialer
	if dialer == nil {
		dialer = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return
}

// DialOpts connects to a NetServer with explicit options. The initial dial
// is not retried (so a misconfigured address fails fast); the retry budget
// applies to round trips.
func DialOpts(addr string, opts DialOptions) (*QueryClient, error) {
	timeout, maxRetries, backoffBase, backoffMax, seed, dialer := opts.resolved()
	c := &QueryClient{
		addr:         addr,
		timeout:      timeout,
		maxRetries:   maxRetries,
		backoffBase:  backoffBase,
		backoffMax:   backoffMax,
		dialer:       dialer,
		jit:          newJitterSource(seed),
		sleep:        time.Sleep,
		timeoutCtr:   opts.Timeouts,
		retryCtr:     opts.Retries,
		reconnectCtr: opts.Reconnects,
		tracer:       opts.Tracer,
	}
	conn, err := dialer(addr, max(timeout, 0))
	if err != nil {
		return nil, err
	}
	c.adopt(conn)
	return c, nil
}

// adopt installs a fresh connection (caller holds mu, or the client is not
// yet shared), reusing the previous connection's read buffer.
func (c *QueryClient) adopt(conn net.Conn) {
	c.conn = conn
	if c.br == nil {
		c.br = bufio.NewReaderSize(conn, 4096)
	} else {
		c.br.Reset(conn)
	}
	c.broken = false
}

// Close closes the connection. Subsequent round trips fail with
// net.ErrClosed instead of redialing.
func (c *QueryClient) Close() error {
	c.closed.Store(true)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// Timeouts returns how many round-trip attempts have failed with an I/O
// timeout.
func (c *QueryClient) Timeouts() int64 { return c.timeouts.Load() }

// Retries returns how many round-trip attempts were retries of a failed
// attempt.
func (c *QueryClient) Retries() int64 { return c.retries.Load() }

// Reconnects returns how many times the client redialed after poisoning a
// connection.
func (c *QueryClient) Reconnects() int64 { return c.reconnects.Load() }

// roundTrip performs one logical query, with retries and (when a tracer
// is configured) end-to-end tracing: sampled queries get a client trace
// whose id travels on the wire, and every trace — including ones whose
// round trips fail permanently — is orphan-closed here. Unsampled
// queries feed the tracer's always-on slowlog.
func (c *QueryClient) roundTrip(req NetRequest) (map[string]float64, error) {
	if c.tracer == nil {
		return c.roundTripTraced(req, nil)
	}
	t0 := time.Now()
	tr := c.tracer.Start(req.Kind)
	req.Trace = tr.ID() // 0 when unsampled: the wire stays trace-free
	counts, err := c.roundTripTraced(req, tr)
	if tr != nil {
		tr.FinishErr(err)
	} else {
		c.tracer.MaybeSlow(req.Kind, t0, time.Since(t0), err)
	}
	return counts, err
}

func (c *QueryClient) roundTripTraced(req NetRequest, tr *tracing.Trace) (map[string]float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt <= c.maxRetries; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			if c.retryCtr != nil {
				c.retryCtr.Inc()
			}
			if d := c.backoff(attempt); d > 0 {
				c.sleep(d)
			}
		}
		if c.closed.Load() {
			return nil, net.ErrClosed
		}
		if c.conn == nil || c.broken {
			if err := c.redialLocked(); err != nil {
				lastErr = err
				continue
			}
		}
		counts, err := c.attempt(req, tr)
		if err == nil {
			return counts, nil
		}
		lastErr = err
		if !retryable(err) {
			return nil, err
		}
	}
	return nil, lastErr
}

// attempt performs one request/response exchange on the live connection.
// Any failure that leaves the connection's framing untrustworthy poisons it.
func (c *QueryClient) attempt(req NetRequest, tr *tracing.Trace) (map[string]float64, error) {
	c.lastID++
	req.ID = c.lastID
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			c.poison()
			return nil, err
		}
	}
	spE := tr.StartSpan("client.encode", tracing.SrcClient)
	c.wbuf = appendJSONRequest(c.wbuf[:0], req)
	c.wbuf = append(c.wbuf, '\n')
	spE.End()
	spW := tr.StartSpan("client.write", tracing.SrcClient)
	if _, err := c.conn.Write(c.wbuf); err != nil {
		c.poison()
		return nil, c.noteTimeout(err)
	}
	spW.End()
	spA := tr.StartSpan("client.await", tracing.SrcClient)
	for {
		line, err := c.br.ReadBytes('\n')
		if err != nil {
			c.poison()
			return nil, c.noteTimeout(err)
		}
		var resp NetResponse
		if err := json.Unmarshal(line, &resp); err != nil {
			c.poison()
			return nil, fmt.Errorf("%w: undecodable response: %v", errDesync, err)
		}
		if resp.ID != 0 && resp.ID < req.ID {
			// A late response to a round trip this client already
			// abandoned: discard it and keep reading. (Poisoning on
			// error makes this rare — it needs an error path that left
			// the connection alive — but ids make it harmless.)
			continue
		}
		if resp.ID != 0 && resp.ID != req.ID {
			c.poison()
			return nil, fmt.Errorf("%w: response id %d for request id %d", errDesync, resp.ID, req.ID)
		}
		spA.End()
		tr.AddSpans(resp.Spans)
		if resp.Error != "" {
			if resp.Error == ErrOverloaded.Error() {
				return nil, ErrOverloaded
			}
			return nil, errors.New(resp.Error)
		}
		if resp.Counts == nil {
			// An empty result omits "counts" on the wire; normalize so
			// callers can distinguish "no culprits" from a zero value.
			resp.Counts = make(map[string]float64)
		}
		return resp.Counts, nil
	}
}

// poison marks the connection unusable and closes it: after any I/O error
// its buffered bytes may belong to an abandoned round trip.
func (c *QueryClient) poison() {
	c.broken = true
	if c.conn != nil {
		c.conn.Close()
	}
}

// redialLocked replaces a poisoned (or never-established) connection.
func (c *QueryClient) redialLocked() error {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	conn, err := c.dialer(c.addr, max(c.timeout, 0))
	if err != nil {
		return err
	}
	c.adopt(conn)
	c.reconnects.Add(1)
	if c.reconnectCtr != nil {
		c.reconnectCtr.Inc()
	}
	return nil
}

// backoff returns the jittered exponential backoff before retry attempt n
// (n >= 1): base doubled per retry, capped at backoffMax with a
// shift clamp so the doubling can never overflow, jittered uniformly in
// [d/2, d]. See backoffDur.
func (c *QueryClient) backoff(attempt int) time.Duration {
	return backoffDur(c.backoffBase, c.backoffMax, attempt, c.jit)
}

// retryable reports whether a round-trip failure may be retried. Transport
// failures and desyncs are retried on a fresh connection; an overload reply
// is retried after backoff on the same connection. Application-level errors
// (unknown port, empty interval, ...) are returned to the caller as-is.
func retryable(err error) bool {
	if errors.Is(err, ErrOverloaded) || errors.Is(err, errDesync) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// noteTimeout counts err if it is an I/O timeout, and passes it through.
func (c *QueryClient) noteTimeout(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		c.timeouts.Add(1)
		if c.timeoutCtr != nil {
			c.timeoutCtr.Inc()
		}
	}
	return err
}

// Interval queries per-flow packet counts over [start, end) on a port.
func (c *QueryClient) Interval(port int, start, end uint64) (map[string]float64, error) {
	return c.roundTrip(NetRequest{Kind: "interval", Port: port, Start: start, End: end})
}

// Original queries the original culprits at time t on a port/queue.
func (c *QueryClient) Original(port, queue int, t uint64) (map[string]float64, error) {
	return c.roundTrip(NetRequest{Kind: "original", Port: port, Queue: queue, At: t})
}
