package control

import (
	"reflect"
	"sync"
	"testing"
)

func TestQueryServerBasics(t *testing.T) {
	cfg := testConfig(0)
	cfg.PollPeriodNs = 500
	s, _ := New(cfg)
	var ts uint64 = 1000
	for i := 0; i < 100; i++ {
		ts += 10
		s.OnDequeue(deq(fkey(byte(i%3)), 0, ts-40, ts, 8))
	}
	s.Finalize(ts + 1)

	qs := NewQueryServer(s)
	// Queries before Start fail fast.
	if res := qs.Interval(0, 1000, ts); res.Err == nil {
		t.Fatal("query on stopped server succeeded")
	}
	qs.Start(2)
	defer qs.Stop()

	res := qs.Interval(0, 1000, ts+1)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	var total float64
	for _, n := range res.Counts {
		total += n
	}
	if total < 90 || total > 110 {
		t.Fatalf("live query total %v, want ~100", total)
	}
	orig := qs.Original(0, 0, ts)
	if orig.Err != nil {
		t.Fatal(orig.Err)
	}
	if bad := qs.Interval(42, 0, 1); bad.Err == nil {
		t.Fatal("unknown port succeeded")
	}
}

// TestQueryServerConcurrentWithDataPlane drives the data plane in one
// goroutine while several query goroutines hammer the server. Run with
// -race to validate the locking discipline.
func TestQueryServerConcurrentWithDataPlane(t *testing.T) {
	cfg := testConfig(0)
	cfg.PollPeriodNs = 200
	cfg.MaxCheckpoints = 64
	s, _ := New(cfg)
	qs := NewQueryServer(s)
	qs.Start(4)
	defer qs.Stop()

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Data-plane goroutine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var ts uint64 = 1000
		for i := 0; i < 50000; i++ {
			ts += 10
			s.OnDequeue(deq(fkey(byte(i%5)), 0, ts-40, ts, (i%64)*4))
		}
		close(stop)
	}()

	// Query goroutines.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var ts uint64 = 1000
			for {
				select {
				case <-stop:
					return
				default:
				}
				ts += 500
				res := qs.Interval(0, ts, ts+1000)
				if res.Err != nil {
					t.Errorf("goroutine %d: %v", g, res.Err)
					return
				}
				if res2 := qs.Original(0, 0, ts); res2.Err != nil &&
					res2.Err.Error() != "control: no checkpoints for port 0" {
					t.Errorf("goroutine %d original: %v", g, res2.Err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestQueryServerParallelFanout checks that a wide interval over a deep
// checkpoint history is sharded across the worker pool and that the
// parallel merge returns exactly the serial result.
func TestQueryServerParallelFanout(t *testing.T) {
	cfg := testConfig(0)
	cfg.PollPeriodNs = 256
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := buildDeepHistory(t, s, 0, 4*parallelMinRun)

	// Serial reference (no semaphore → no fan-out).
	serial, err := s.QueryInterval(0, 0, ts+1)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]float64, len(serial))
	for f, n := range serial {
		want[f.String()] = n
	}

	qs := NewQueryServer(s)
	qs.Start(4)
	defer qs.Stop()
	before := s.qpath.parallelFanouts.Load()
	res := qs.Interval(0, 0, ts+1)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !reflect.DeepEqual(res.Counts, want) {
		t.Fatalf("parallel result %v != serial %v", res.Counts, want)
	}
	if got := s.qpath.parallelFanouts.Load(); got <= before {
		t.Fatalf("parallel fanout counter = %d (was %d); wide query over %d checkpoints did not shard",
			got, before, len(s.Checkpoints(0)))
	}

	// A narrow interval must not fan out (run below parallelMinRun) and must
	// still match the serial answer exactly.
	lo, hi := ts-600, ts
	serialNarrow, err := s.QueryInterval(0, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	wantNarrow := make(map[string]float64, len(serialNarrow))
	for f, n := range serialNarrow {
		wantNarrow[f.String()] = n
	}
	mid := s.qpath.parallelFanouts.Load()
	resNarrow := qs.Interval(0, lo, hi)
	if resNarrow.Err != nil {
		t.Fatal(resNarrow.Err)
	}
	if !reflect.DeepEqual(resNarrow.Counts, wantNarrow) {
		t.Fatalf("narrow parallel result %v != serial %v", resNarrow.Counts, wantNarrow)
	}
	if got := s.qpath.parallelFanouts.Load(); got != mid {
		t.Fatalf("narrow query fanned out (counter %d -> %d)", mid, got)
	}
}

func TestQueryServerStartStopIdempotent(t *testing.T) {
	s, _ := New(testConfig(0))
	qs := NewQueryServer(s)
	qs.Start(1)
	qs.Start(3) // no-op
	qs.Stop()
	qs.Stop() // no-op
	if res := qs.Interval(0, 0, 1); res.Err == nil {
		t.Fatal("query after stop succeeded")
	}
	// Restart works.
	qs.Start(1)
	defer qs.Stop()
	if res := qs.Interval(0, 5, 4); res.Err == nil {
		t.Fatal("empty interval accepted")
	}
}
