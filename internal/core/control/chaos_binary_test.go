package control

import (
	"net"
	"sync"
	"testing"
	"time"

	"printqueue/internal/faultnet"
)

// The binary codec has to survive the same fault families PR 4 proved the
// JSON plane against — with one extra hazard: frames cannot resynchronize,
// so any torn frame must poison the connection rather than desync ids.

// TestChaosBinaryTornFramePoisons scripts the exact torn-frame hazard: a
// server whose first reply is cut off mid-frame. The client must treat the
// truncation as poison (fail + redial), and the retried query — served
// cleanly the second time — must return its own answer.
func TestChaosBinaryTornFramePoisons(t *testing.T) {
	srv, ts := netFixture(t)
	// A man-in-the-middle listener: connection 0 tears every server write
	// in half (then resets), later connections pass through cleanly.
	mitm, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mitm.Close()
	var connOrdinal int
	var mu sync.Mutex
	go func() {
		for {
			down, err := mitm.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			ordinal := connOrdinal
			connOrdinal++
			mu.Unlock()
			up, err := net.Dial("tcp", srv.Addr().String())
			if err != nil {
				down.Close()
				return
			}
			go proxyCopy(up, down, false) // client -> server always clean
			go proxyCopy(down, up, ordinal == 0)
		}
	}()

	c, err := DialMuxOpts(mitm.Addr().String(), DialOptions{
		Timeout:     500 * time.Millisecond,
		MaxRetries:  4,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	counts, err := c.Interval(0, 1000, ts+1)
	if err != nil {
		t.Fatalf("query through a torn first reply: %v", err)
	}
	var total float64
	for _, n := range counts {
		total += n
	}
	if total < 50 || total > 70 {
		t.Fatalf("total %v, want ~60 (desynced reply?)", total)
	}
	if c.Reconnects() == 0 {
		t.Error("torn frame did not poison the connection (no redial recorded)")
	}
	// A follow-up empty-interval query must never see the first query's
	// counts — ids survived the redial.
	empty, err := c.Interval(0, ts+100, ts+200)
	if err != nil {
		t.Fatalf("follow-up query: %v", err)
	}
	if len(empty) != 0 {
		t.Fatalf("empty interval returned %d flows (stale response leaked)", len(empty))
	}
}

// proxyCopy shuttles bytes; when tear is set, the first write is truncated
// to half and the connection is reset — a mid-frame cut.
func proxyCopy(dst, src net.Conn, tear bool) {
	defer dst.Close()
	defer src.Close()
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if tear {
				dst.Write(buf[:n/2])
				return // reset both sides mid-frame
			}
			if _, err := dst.Write(buf[:n]); err != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// TestChaosBinaryFaultMatrix is TestChaosFaultMatrix for the mux client:
// each fault family, fixed seed, and the invariant that a successful query
// never returns another query's data.
func TestChaosBinaryFaultMatrix(t *testing.T) {
	seed := chaosSeed(t)
	cases := []struct {
		name string
		fcfg faultnet.Config
	}{
		{"drops", faultnet.Config{Seed: seed, DropWrite: 0.3}},
		{"resets", faultnet.Config{Seed: seed, Reset: 0.08}},
		{"partial-writes", faultnet.Config{Seed: seed, PartialWrite: 0.3}},
		{"latency", faultnet.Config{Seed: seed, ReadLatency: 2 * time.Millisecond, WriteLatency: 2 * time.Millisecond}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, ts := chaosFixture(t, tc.fcfg, ServeOptions{})
			c, err := DialMuxOpts(srv.Addr().String(), DialOptions{
				Timeout:     100 * time.Millisecond,
				MaxRetries:  8,
				BackoffBase: time.Millisecond,
				BackoffMax:  10 * time.Millisecond,
				Seed:        seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			successes := 0
			for i := 0; i < 20; i++ {
				var counts map[string]float64
				var err error
				wantFull := i%2 == 0
				if wantFull {
					counts, err = c.Interval(0, 1000, ts+1)
				} else {
					counts, err = c.Interval(0, ts+100, ts+200)
				}
				if err != nil {
					continue // chaos may exhaust the budget; wrong data may not
				}
				successes++
				var total float64
				for _, n := range counts {
					total += n
				}
				if wantFull && (total < 50 || total > 70) {
					t.Fatalf("query %d: total %v, want ~60 (mismatched response?)", i, total)
				}
				if !wantFull && total != 0 {
					t.Fatalf("query %d: empty interval returned %v packets (stale response)", i, total)
				}
			}
			if successes < 15 {
				t.Fatalf("only %d/20 queries succeeded under %s with an 8-retry budget", successes, tc.name)
			}
			t.Logf("%s: %d/20 ok, timeouts=%d retries=%d reconnects=%d",
				tc.name, successes, c.Timeouts(), c.Retries(), c.Reconnects())
		})
	}
}

// TestChaosBinaryPipelinedUnderFaults drives one mux connection from many
// goroutines while the network drops writes: concurrent in-flight requests
// share the poison/redial machinery, and every success must be the right
// answer for its own interval.
func TestChaosBinaryPipelinedUnderFaults(t *testing.T) {
	srv, ts := chaosFixture(t, faultnet.Config{Seed: chaosSeed(t), DropWrite: 0.1}, ServeOptions{})
	c, err := DialMuxOpts(srv.Addr().String(), DialOptions{
		Timeout:     100 * time.Millisecond,
		MaxRetries:  8,
		BackoffBase: time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
		Seed:        chaosSeed(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				full := (g+i)%2 == 0
				var counts map[string]float64
				var err error
				if full {
					counts, err = c.Interval(0, 1000, ts+1)
				} else {
					counts, err = c.Interval(0, ts+100, ts+200)
				}
				if err != nil {
					continue
				}
				var total float64
				for _, n := range counts {
					total += n
				}
				if full && (total < 50 || total > 70) {
					t.Errorf("goroutine %d query %d: total %v, want ~60", g, i, total)
				}
				if !full && total != 0 {
					t.Errorf("goroutine %d query %d: stale response (%v packets for empty interval)", g, i, total)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestChaosBinaryBatchUnderFaults retries whole batch frames through
// resets; a successful batch must answer every query correctly and in
// request order.
func TestChaosBinaryBatchUnderFaults(t *testing.T) {
	srv, ts := chaosFixture(t, faultnet.Config{Seed: chaosSeed(t), Reset: 0.05}, ServeOptions{})
	c, err := DialMuxOpts(srv.Addr().String(), DialOptions{
		Timeout:     200 * time.Millisecond,
		MaxRetries:  8,
		BackoffBase: time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
		Seed:        chaosSeed(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	qs := []BatchQuery{
		{Kind: IntervalQuery, Port: 0, Start: 1000, End: ts + 1},
		{Kind: IntervalQuery, Port: 0, Start: ts + 100, End: ts + 200},
		{Kind: IntervalQuery, Port: 0, Start: 1000, End: ts + 1},
	}
	successes := 0
	for i := 0; i < 10; i++ {
		rs, err := c.Batch(qs)
		if err != nil {
			continue
		}
		successes++
		if len(rs) != 3 {
			t.Fatalf("batch %d: %d results, want 3", i, len(rs))
		}
		for j, wantFull := range []bool{true, false, true} {
			if rs[j].Err != nil {
				t.Fatalf("batch %d result %d: %v", i, j, rs[j].Err)
			}
			var total float64
			for _, n := range rs[j].Counts {
				total += n
			}
			if wantFull && (total < 50 || total > 70) {
				t.Fatalf("batch %d result %d: total %v, want ~60 (order scrambled?)", i, j, total)
			}
			if !wantFull && total != 0 {
				t.Fatalf("batch %d result %d: %v packets for the empty interval", i, j, total)
			}
		}
	}
	if successes < 5 {
		t.Fatalf("only %d/10 batches succeeded with an 8-retry budget", successes)
	}
}

// TestChaosBinaryMidFrameLatency delays the server's first reply past the
// client's deadline (the PR 4 desync scenario, reframed): the waiter times
// out, the connection is poisoned, and the retry — plus a follow-up
// empty-interval query — must both return their own answers.
func TestChaosBinaryMidFrameLatency(t *testing.T) {
	srv, ts := chaosFixture(t, faultnet.Config{
		Seed: chaosSeed(t), WriteLatency: 300 * time.Millisecond, SlowWrites: 1,
	}, ServeOptions{})
	c, err := DialMuxOpts(srv.Addr().String(), DialOptions{
		Timeout:     50 * time.Millisecond,
		MaxRetries:  4,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	counts, err := c.Interval(0, 1000, ts+1)
	if err != nil {
		t.Fatalf("query A after retries: %v", err)
	}
	var total float64
	for _, n := range counts {
		total += n
	}
	if total < 50 || total > 70 {
		t.Fatalf("query A total %v, want ~60", total)
	}
	empty, err := c.Interval(0, ts+100, ts+200)
	if err != nil {
		t.Fatalf("query B: %v", err)
	}
	if len(empty) != 0 {
		t.Fatalf("query B returned %d flows, want 0 (late reply leaked)", len(empty))
	}
	if c.Timeouts() == 0 || c.Reconnects() == 0 {
		t.Fatalf("timeouts=%d reconnects=%d, want both > 0", c.Timeouts(), c.Reconnects())
	}
}
