package control

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func TestMuxClientRoundTrip(t *testing.T) {
	srv, ts := netFixture(t)
	c, err := DialMux(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	counts, err := c.Interval(0, 1000, ts+1)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, n := range counts {
		total += n
	}
	if total < 50 || total > 70 {
		t.Fatalf("interval total %v, want ~60", total)
	}

	orig, err := c.Original(0, 0, ts)
	if err != nil {
		t.Fatal(err)
	}
	if len(orig) == 0 {
		t.Fatal("original query returned nothing")
	}

	empty, err := c.Interval(0, ts+100, ts+200)
	if err != nil {
		t.Fatal(err)
	}
	if empty == nil || len(empty) != 0 {
		t.Fatalf("empty result = %v, want non-nil empty map", empty)
	}

	if _, err := c.Interval(9, 0, 1); err == nil {
		t.Fatal("unknown-port query succeeded")
	}
	if _, err := c.Interval(0, 5, 5); err == nil {
		t.Fatal("empty interval succeeded")
	}
	if got := srv.binaryConns.Load(); got == 0 {
		t.Error("binary connection not counted; sniff fell back to JSON?")
	}
}

// TestMuxClientPipelined hammers one connection from many goroutines with
// interleaved full/empty interval queries: every answer must match its own
// question, which is exactly what the per-id pending map guarantees.
func TestMuxClientPipelined(t *testing.T) {
	srv, ts := netFixture(t)
	c, err := DialMux(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				full := (g+i)%2 == 0
				var counts map[string]float64
				var err error
				if full {
					counts, err = c.Interval(0, 1000, ts+1)
				} else {
					counts, err = c.Interval(0, ts+100, ts+200)
				}
				if err != nil {
					t.Errorf("goroutine %d query %d: %v", g, i, err)
					return
				}
				var total float64
				for _, n := range counts {
					total += n
				}
				if full && (total < 50 || total > 70) {
					t.Errorf("goroutine %d query %d: total %v, want ~60 (cross-wired reply?)", g, i, total)
				}
				if !full && total != 0 {
					t.Errorf("goroutine %d query %d: empty interval returned %v packets", g, i, total)
				}
			}
		}(g)
	}
	wg.Wait()
	// Only one TCP connection carried all of it.
	if got := srv.binaryConns.Load(); got != 1 {
		t.Errorf("binary connections = %d, want 1", got)
	}
}

func TestMuxClientBatch(t *testing.T) {
	srv, ts := netFixture(t)
	_ = srv
	c, err := DialMux(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	qs := []BatchQuery{
		{Kind: IntervalQuery, Port: 0, Start: 1000, End: ts + 1},
		{Kind: IntervalQuery, Port: 0, Start: ts + 100, End: ts + 200},
		{Kind: IntervalQuery, Port: 9, Start: 0, End: 1}, // per-query error
		{Kind: OriginalQuery, Port: 0, Queue: 0, Start: ts},
	}
	rs, err := c.Batch(qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(qs) {
		t.Fatalf("batch returned %d results, want %d", len(rs), len(qs))
	}
	var total float64
	for _, n := range rs[0].Counts {
		total += n
	}
	if rs[0].Err != nil || total < 50 || total > 70 {
		t.Fatalf("batch[0] = %+v (total %v), want ~60 packets", rs[0], total)
	}
	if rs[1].Err != nil || len(rs[1].Counts) != 0 || rs[1].Counts == nil {
		t.Fatalf("batch[1] = %+v, want non-nil empty counts", rs[1])
	}
	if rs[2].Err == nil {
		t.Fatal("batch[2] unknown-port query succeeded")
	}
	if rs[3].Err != nil || len(rs[3].Counts) == 0 {
		t.Fatalf("batch[3] = %+v, want original culprits", rs[3])
	}

	// Zero-query batch is a local no-op.
	if rs, err := c.Batch(nil); err != nil || rs != nil {
		t.Fatalf("empty batch = %v, %v", rs, err)
	}
	if got := srv.batched.Load(); got != int64(len(qs)) {
		t.Errorf("batched counter = %d, want %d", got, len(qs))
	}
}

// TestMuxClientLateReplyDiscarded forces a round-trip timeout, then
// verifies the connection was poisoned and the next query — on a fresh
// connection — gets its own answer, mirroring the PR 4 desync guarantee.
func TestMuxClientLateReplyDiscarded(t *testing.T) {
	srv, ts := netFixture(t)
	c, err := DialMuxOpts(srv.Addr().String(), DialOptions{
		Timeout:     30 * time.Millisecond,
		MaxRetries:  -1, // observe the raw timeout
		BackoffBase: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Saturate the shed limit so the server cannot answer, guaranteeing a
	// client-side deadline expiry without any server cooperation... except
	// a shed reply would arrive immediately. Instead, stall the query by
	// pointing the client at a listener that accepts and stays silent.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			_ = conn // accept and never reply
		}
	}()
	silent, err := DialMuxOpts(ln.Addr().String(), DialOptions{
		Timeout: 30 * time.Millisecond, MaxRetries: -1, BackoffBase: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	if _, err := silent.Interval(0, 1, 2); err == nil {
		t.Fatal("query against a silent server succeeded")
	} else {
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("err = %v, want a timeout", err)
		}
	}
	if silent.Timeouts() != 1 {
		t.Errorf("timeouts = %d, want 1", silent.Timeouts())
	}

	// The real client still answers correctly after its peer's timeout
	// drama — and a retrying client against the real server stays correct.
	counts, err := c.Interval(0, 1000, ts+1)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, n := range counts {
		total += n
	}
	if total < 50 || total > 70 {
		t.Fatalf("total %v, want ~60", total)
	}
}

// TestMuxClientReconnect severs the connection out from under the client;
// the next query must redial transparently and count the reconnect.
func TestMuxClientReconnect(t *testing.T) {
	srv, ts := netFixture(t)
	c, err := DialMuxOpts(srv.Addr().String(), DialOptions{
		Timeout: time.Second, MaxRetries: 2, BackoffBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Interval(0, 1000, ts+1); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	c.conn.Close()
	c.mu.Unlock()
	counts, err := c.Interval(0, 1000, ts+1)
	if err != nil {
		t.Fatalf("query across severed connection: %v", err)
	}
	var total float64
	for _, n := range counts {
		total += n
	}
	if total < 50 || total > 70 {
		t.Fatalf("post-reconnect total %v, want ~60", total)
	}
	if c.Reconnects() == 0 {
		t.Error("reconnect not counted")
	}
}

// TestMuxClientClose: queries after Close fail fast with net.ErrClosed.
func TestMuxClientClose(t *testing.T) {
	srv, _ := netFixture(t)
	c, err := DialMux(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Interval(0, 1, 2); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("query after Close: %v, want net.ErrClosed", err)
	}
	if err := c.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestMuxServerShedsSingleAndBatch saturates the shed limit and checks
// both ops answer overloaded without executing, then recover.
func TestMuxServerShedsSingleAndBatch(t *testing.T) {
	srv, ts := netFixture(t)
	srv.inflight.Add(int64(srv.opts.ShedLimit)) // saturate
	c, err := DialMuxOpts(srv.Addr().String(), DialOptions{Timeout: time.Second, MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Interval(0, 1000, ts+1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated single query returned %v, want ErrOverloaded", err)
	}
	if _, err := c.Batch([]BatchQuery{{Kind: IntervalQuery, Port: 0, Start: 1000, End: ts + 1}}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated batch returned %v, want ErrOverloaded", err)
	}
	srv.inflight.Add(int64(-srv.opts.ShedLimit))
	if _, err := c.Interval(0, 1000, ts+1); err != nil {
		t.Fatalf("query after overload cleared: %v", err)
	}
	if srv.shed.Load() < 2 {
		t.Errorf("shed counter = %d, want >= 2", srv.shed.Load())
	}
}

// TestMuxServerDropsCorruptStream sends a valid query followed by garbage:
// the server must answer the query, then drop the connection rather than
// desync, and the client's pending map must fail cleanly.
func TestMuxServerDropsCorruptStream(t *testing.T) {
	srv, ts := netFixture(t)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	frame := appendQueryFrame(nil, 1, BatchQuery{Kind: IntervalQuery, Port: 0, Start: 1000, End: ts + 1})
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	// Read the reply frame.
	hdr := make([]byte, frameHeaderLen)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(conn, hdr); err != nil {
		t.Fatalf("no reply: %v", err)
	}
	n := int(binary.BigEndian.Uint32(hdr[2:]))
	payload := make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		t.Fatal(err)
	}
	id, r, err := decodeReply(payload)
	if err != nil || id != 1 || r.Err != nil {
		t.Fatalf("reply id=%d err=%v decode=%v", id, r.Err, err)
	}

	// Now send garbage where a frame header should be.
	if _, err := conn.Write([]byte("this is not a frame\n")); err != nil {
		t.Fatal(err)
	}
	// The server must close the connection.
	one := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(one); err == nil {
		t.Fatal("server kept talking on a corrupt binary stream")
	}
	if srv.badRequests.Load() == 0 {
		t.Error("corrupt frame not counted as a bad request")
	}
}
