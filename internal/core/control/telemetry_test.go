package control

import (
	"errors"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"printqueue/internal/telemetry"
)

// scrape renders the system's registry to a string.
func scrape(t *testing.T, s *System) string {
	t.Helper()
	var b strings.Builder
	if err := s.Telemetry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestPipelineTelemetry drives the sharded pipeline and checks the
// instrumentation ends up in the registry: per-shard worker counters, the
// freeze-to-retire histogram, the flush counter, and introspection.
func TestPipelineTelemetry(t *testing.T) {
	cfg := testConfig(0, 1)
	cfg.PollPeriodNs = 200
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPipeline(sys, PipelineConfig{Shards: 2, BatchSize: 8, RingDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	const n = 4000
	var ts uint64 = 1000
	for i := 0; i < n; i++ {
		ts += 10
		pl.Ingest(deq(fkey(byte(i&7)), i&1, ts-5, ts, 16))
	}
	pl.Flush()
	pl.Close()

	st := sys.Stats()
	if st.PacketsObserved != n {
		t.Fatalf("PacketsObserved = %d, want %d", st.PacketsObserved, n)
	}
	if st.Checkpoints == 0 {
		t.Fatal("no checkpoints taken; poll period too long for the trace")
	}
	var shardPkts int64
	for i := 0; i < 2; i++ {
		shardPkts += sys.Telemetry().Counter("printqueue_pipeline_packets_total", "",
			telemetry.L("shard", string(rune('0'+i)))).Load()
	}
	if shardPkts != n {
		t.Errorf("shard packet counters sum to %d, want %d", shardPkts, n)
	}
	if got := sys.stats.freezeRetireNs.Count(); got != int64(st.Checkpoints) {
		t.Errorf("freeze-to-retire histogram has %d observations, want %d (checkpoints)", got, st.Checkpoints)
	}

	out := scrape(t, sys)
	for _, want := range []string{
		"printqueue_pipeline_shard_ring_occupancy{shard=\"0\"}",
		"printqueue_pipeline_shard_ring_high_watermark{shard=\"1\"}",
		"printqueue_pipeline_backpressure_wait_ns_total{shard=\"0\"}",
		"printqueue_pipeline_flushes_total",
		"printqueue_checkpoint_freeze_to_retire_ns_bucket",
		"printqueue_port_packets_total{port=\"0\"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	in := sys.Introspect()
	if in.Pipeline != nil {
		t.Error("introspection still reports a pipeline after Close")
	}
	if len(in.Ports) != 2 || in.Ports[0].Packets+in.Ports[1].Packets != n {
		t.Errorf("introspection ports = %+v, want %d packets across 2 ports", in.Ports, n)
	}
}

// TestIntrospectLivePipeline checks the pipeline section while the
// pipeline is open.
func TestIntrospectLivePipeline(t *testing.T) {
	sys, err := New(testConfig(0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPipeline(sys, PipelineConfig{Shards: 2, BatchSize: 4, RingDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Close()
	in := sys.Introspect()
	if in.Pipeline == nil {
		t.Fatal("introspection missing open pipeline")
	}
	if in.Pipeline.Shards != 2 || len(in.Pipeline.PerShard) != 2 {
		t.Fatalf("pipeline introspection = %+v, want 2 shards", in.Pipeline)
	}
	// Round-robin by rank: shard 0 gets ports {0, 2}, shard 1 gets {1}.
	if got := in.Pipeline.PerShard[0].Ports; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("shard 0 ports = %v, want [0 2]", got)
	}
}

// TestQueryServerMetrics checks the per-op latency histograms and error
// counters around the query workers.
func TestQueryServerMetrics(t *testing.T) {
	sys, err := New(testConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	var ts uint64 = 1000
	for i := 0; i < 200; i++ {
		ts += 10
		sys.OnDequeue(deq(fkey(1), 0, ts-5, ts, 8))
	}
	sys.Finalize(ts + 1)

	qs := NewQueryServer(sys)
	qs.Start(2)
	defer qs.Stop()
	if res := qs.Interval(0, 1000, ts); res.Err != nil {
		t.Fatalf("interval query: %v", res.Err)
	}
	if res := qs.Interval(9, 1000, ts); res.Err == nil {
		t.Fatal("interval query on inactive port succeeded")
	}
	if res := qs.Original(0, 0, ts/2); res.Err != nil {
		t.Fatalf("original query: %v", res.Err)
	}

	if got := qs.met.latencyNs[IntervalQuery].Count(); got != 2 {
		t.Errorf("interval latency observations = %d, want 2", got)
	}
	if got := qs.met.latencyNs[OriginalQuery].Count(); got != 1 {
		t.Errorf("original latency observations = %d, want 1", got)
	}
	if got := qs.met.errors[IntervalQuery].Load(); got != 1 {
		t.Errorf("interval errors = %d, want 1", got)
	}
	if got := qs.met.inflight.Load(); got != 0 {
		t.Errorf("inflight gauge = %d after queries drained, want 0", got)
	}
	out := scrape(t, sys)
	if !strings.Contains(out, `printqueue_query_latency_ns_bucket{op="interval",le=`) {
		t.Error("/metrics missing interval latency buckets")
	}
	// Query-path instrumentation: pruning, index hits, build cost, fan-out.
	for _, want := range []string{
		"printqueue_query_checkpoints_scanned_total",
		"printqueue_query_checkpoints_pruned_total",
		"printqueue_query_cells_visited_total",
		"printqueue_query_index_build_ns_bucket",
		"printqueue_query_parallel_fanouts_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if got := sys.qpath.checkpointsScanned.Load(); got == 0 {
		t.Error("interval query scanned no checkpoints")
	}
	if got := sys.qpath.cellsVisited.Load(); got == 0 {
		t.Error("interval query visited no cells")
	}
	if got := sys.qpath.indexBuildNs.Count(); got == 0 {
		t.Error("no index builds observed")
	}
}

// TestQueryClientTimeout connects the client to a listener that never
// responds: the round trip must fail with a deadline error, and the
// timeout must be counted both internally and in the wired counter.
func TestQueryClientTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	hold := make(chan struct{})
	defer close(hold)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { <-hold; conn.Close() }() // accept, never answer
		}
	}()

	reg := telemetry.NewRegistry()
	ctr := reg.Counter("printqueue_query_client_timeouts_total", "Client round trips that timed out.")
	// MaxRetries -1: this test counts exactly one attempt; the retry
	// machinery has its own coverage in chaos_test.go.
	c, err := DialOpts(ln.Addr().String(), DialOptions{Timeout: 50 * time.Millisecond, MaxRetries: -1, Timeouts: ctr})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Interval(0, 1, 2)
	if err == nil {
		t.Fatal("round trip against a mute server succeeded")
	}
	var ne net.Error
	if !(errors.As(err, &ne) && ne.Timeout()) {
		t.Fatalf("error is not a timeout: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("round trip blocked %v; deadline not applied", elapsed)
	}
	if c.Timeouts() != 1 {
		t.Errorf("client timeout count = %d, want 1", c.Timeouts())
	}
	if ctr.Load() != 1 {
		t.Errorf("registry timeout counter = %d, want 1", ctr.Load())
	}
}

// TestResilienceMetricsParity extends the metrics-parity guarantee to the
// query-plane resilience counters: shed, accept retries, and the client's
// timeout/retry/reconnect counters (wired into the same registry) must all
// appear in the Prometheus exposition with the values their in-process
// accessors report.
func TestResilienceMetricsParity(t *testing.T) {
	cfg := testConfig(0)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ts uint64 = 1000
	for i := 0; i < 60; i++ {
		ts += 10
		sys.OnDequeue(deq(fkey(byte(i%3)), 0, ts-40, ts, 8))
	}
	sys.Finalize(ts + 1)
	qs := NewQueryServer(sys)
	qs.Start(2)
	defer qs.Stop()
	srv, err := ServeQueriesOpts("127.0.0.1:0", qs, ServeOptions{ShedLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	reg := sys.Telemetry()
	c, err := DialOpts(srv.Addr().String(), DialOptions{
		Timeout:     time.Second,
		MaxRetries:  3,
		BackoffBase: time.Millisecond,
		Timeouts:    reg.Counter("printqueue_query_client_timeouts_total", "Client round trips that timed out."),
		Retries:     reg.Counter("printqueue_query_client_retries_total", "Client round-trip retry attempts."),
		Reconnects:  reg.Counter("printqueue_query_client_reconnects_total", "Client redials after a poisoned connection."),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Drive a shed (saturated backlog), releasing capacity only once the
	// shed has been observed so the client's retry then succeeds.
	srv.inflight.Add(1)
	go func() {
		for srv.shed.Load() == 0 {
			time.Sleep(time.Millisecond)
		}
		srv.inflight.Add(-1)
	}()
	if _, err := c.Interval(0, 1000, ts+1); err != nil {
		t.Fatalf("query across overload window: %v", err)
	}
	// Drive a reconnect: sever the client's connection out from under it.
	c.conn.Close()
	if _, err := c.Interval(0, 1000, ts+1); err != nil {
		t.Fatalf("query across severed connection: %v", err)
	}

	out := scrape(t, sys)
	for metric, want := range map[string]int64{
		"printqueue_netserver_shed_total":           srv.shed.Load(),
		"printqueue_netserver_accept_retries_total": srv.acceptRetries.Load(),
		"printqueue_query_client_timeouts_total":    c.Timeouts(),
		"printqueue_query_client_retries_total":     c.Retries(),
		"printqueue_query_client_reconnects_total":  c.Reconnects(),
		"printqueue_netserver_bad_requests_total":   0,
		"printqueue_netserver_connections_total":    srv.connections.Load(),
	} {
		line := metric + " " + strconv.FormatInt(want, 10)
		if !strings.Contains(out, line) {
			t.Errorf("/metrics missing %q", line)
		}
	}
	if srv.shed.Load() == 0 {
		t.Error("shed counter did not move")
	}
	if c.Retries() == 0 || c.Reconnects() == 0 {
		t.Errorf("client resilience counters did not move: retries=%d reconnects=%d", c.Retries(), c.Reconnects())
	}
}
