package control

import (
	"math/rand/v2"
	"reflect"
	"sync"
	"testing"

	"printqueue/internal/core/qmonitor"
)

// buildDeepHistory drives a system with a long trace and a short poll
// period, producing a checkpoint history of at least minCheckpoints, and
// returns the final dequeue timestamp.
func buildDeepHistory(t *testing.T, s *System, port, minCheckpoints int) uint64 {
	t.Helper()
	var ts uint64 = 1000
	for i := 0; len(s.Checkpoints(port)) < minCheckpoints; i++ {
		ts += 8
		s.OnDequeue(deq(fkey(byte(i%24)), port, ts-16, ts, 8))
		if i > 1_000_000 {
			t.Fatal("history not growing; poll period misconfigured")
		}
	}
	s.Finalize(ts + 1)
	return ts
}

// TestQueryPathDifferential compares the indexed interval-query path with
// the reference scan over randomized intervals on a deep checkpoint
// history. The two must be bit-identical (exact DeepEqual on float maps),
// including empty, inverted, point, and all-history intervals.
func TestQueryPathDifferential(t *testing.T) {
	cfg := testConfig(0)
	cfg.PollPeriodNs = 256
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	horizon := buildDeepHistory(t, s, 0, 64)

	rng := rand.New(rand.NewPCG(13, 37))
	for q := 0; q < 120; q++ {
		var lo, hi uint64
		switch q {
		case 0:
			lo, hi = 0, horizon+1000 // all history
		case 1:
			lo, hi = 0, 1 // before the first packet
		case 2:
			lo, hi = horizon, horizon+1 // the very last instant
		case 3:
			lo, hi = horizon/2, horizon/2+1 // point query mid-trace
		default:
			lo = rng.Uint64N(horizon)
			hi = lo + 1 + rng.Uint64N(horizon/3)
		}
		s.cfg.QueryPath = QueryPathIndexed
		indexed, err := s.QueryInterval(0, lo, hi)
		if err != nil {
			t.Fatalf("indexed query [%d,%d): %v", lo, hi, err)
		}
		s.cfg.QueryPath = QueryPathScan
		scan, err := s.QueryInterval(0, lo, hi)
		if err != nil {
			t.Fatalf("scan query [%d,%d): %v", lo, hi, err)
		}
		if !reflect.DeepEqual(indexed, scan) {
			t.Fatalf("interval [%d,%d): indexed %v != scan %v", lo, hi, indexed, scan)
		}
	}
	if got := s.qpath.checkpointsPruned.Load(); got == 0 {
		t.Error("narrow queries pruned no checkpoints")
	}
}

// TestPruneCheckpoints checks the coverage binary search against a
// brute-force overlap filter on synthetic histories.
func TestPruneCheckpoints(t *testing.T) {
	mk := func(freezes ...uint64) []*Checkpoint {
		var cps []*Checkpoint
		prev := uint64(0)
		for _, f := range freezes {
			cps = append(cps, &Checkpoint{FreezeTime: f, PrevFreeze: prev})
			prev = f
		}
		return cps
	}
	oracle := func(cps []*Checkpoint, start, end uint64) []*Checkpoint {
		var out []*Checkpoint
		for _, cp := range cps {
			// Coverage (PrevFreeze, FreezeTime] overlaps [start, end)?
			lo, hi := start, end
			if cp.PrevFreeze > lo {
				lo = cp.PrevFreeze
			}
			if cp.FreezeTime < hi {
				hi = cp.FreezeTime
			}
			if hi > lo {
				out = append(out, cp)
			}
		}
		return out
	}

	// Intervals are non-empty (end > start) — QueryInterval rejects empty
	// intervals before pruning runs.
	hist := mk(100, 200, 300, 400, 500)
	cases := [][2]uint64{
		{0, 50}, {0, 100}, {0, 101}, {150, 250},
		{200, 201}, {199, 200}, {450, 600}, {500, 600}, {0, 1000},
		{99, 501}, {100, 101}, {499, 500},
	}
	for _, c := range cases {
		got := pruneCheckpoints(hist, c[0], c[1])
		want := oracle(hist, c[0], c[1])
		if len(got) != len(want) {
			t.Fatalf("interval [%d,%d): pruned %d checkpoints, oracle %d", c[0], c[1], len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("interval [%d,%d): run differs at %d", c[0], c[1], i)
			}
		}
	}
	if got := pruneCheckpoints(nil, 0, 100); len(got) != 0 {
		t.Fatalf("pruning empty history returned %d checkpoints", len(got))
	}

	// Randomized histories and intervals.
	rng := rand.New(rand.NewPCG(5, 8))
	for trial := 0; trial < 40; trial++ {
		var freezes []uint64
		f := uint64(0)
		for i := 0; i < rng.IntN(30); i++ {
			f += 1 + rng.Uint64N(100)
			freezes = append(freezes, f)
		}
		h := mk(freezes...)
		for q := 0; q < 20; q++ {
			lo := rng.Uint64N(f + 100)
			hi := lo + 1 + rng.Uint64N(f/2+10)
			got := pruneCheckpoints(h, lo, hi)
			want := oracle(h, lo, hi)
			if len(got) != len(want) {
				t.Fatalf("trial %d [%d,%d): pruned %d, oracle %d", trial, lo, hi, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d [%d,%d): run differs at %d", trial, lo, hi, i)
				}
			}
		}
	}
}

// TestQueryOriginalPrefixMemo checks the memoized merge prefix returns the
// same culprits as the direct merge loop, across repeated queries, multiple
// query times, and history trimming (which bumps the generation).
func TestQueryOriginalPrefixMemo(t *testing.T) {
	cfg := testConfig(0)
	cfg.PollPeriodNs = 256
	cfg.MaxCheckpoints = 12
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ts uint64 = 1000
	check := func() {
		t.Helper()
		cps := s.Checkpoints(0)
		if len(cps) == 0 {
			return
		}
		for _, q := range []uint64{0, ts / 4, ts / 2, ts, ts + 1000} {
			got, err := s.QueryOriginal(0, 0, q)
			if err != nil {
				t.Fatalf("QueryOriginal(%d): %v", q, err)
			}
			idx := nearestCheckpoint(cps, q)
			snap := cps[0].QM[0]
			for i := 1; i <= idx; i++ {
				snap = qmonitor.Merge(snap, cps[i].QM[0])
			}
			want := snap.OriginalCulprits()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("QueryOriginal(%d) = %v, want %v (direct merge of %d checkpoints)", q, got, want, idx+1)
			}
		}
	}

	for round := 0; round < 6; round++ {
		for i := 0; i < 400; i++ {
			ts += 8
			depth := 4 + (i % 60) // staircase climbs and resets
			s.OnDequeue(deq(fkey(byte(i%10)), 0, ts-16, ts, depth))
		}
		s.FinalizePort(0, ts+1)
		check() // repeated rounds exercise cache extension and, once the
		// history exceeds MaxCheckpoints, the generation reset
	}
	ps := s.ports[0]
	ps.mu.RLock()
	gen := ps.histGen
	n := ps.checkpoints.len()
	ps.mu.RUnlock()
	if gen == 0 {
		t.Fatal("history never trimmed; MaxCheckpoints not exercised")
	}
	if n > cfg.MaxCheckpoints {
		t.Fatalf("history has %d checkpoints, bound is %d", n, cfg.MaxCheckpoints)
	}
}

// TestQueryOriginalPrefixConcurrent hammers QueryOriginal from many
// goroutines while traffic (and trimming) continues, for the race detector.
func TestQueryOriginalPrefixConcurrent(t *testing.T) {
	cfg := testConfig(0)
	cfg.PollPeriodNs = 256
	cfg.MaxCheckpoints = 8
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := buildDeepHistory(t, s, 0, cfg.MaxCheckpoints)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			ts += 8
			s.OnDequeue(deq(fkey(byte(i%6)), 0, ts-16, ts, 12))
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, _ = s.QueryOriginal(0, 0, uint64(1000+i*37*(g+1)))
				_, _ = s.QueryInterval(0, uint64(i*16), uint64(i*16+512))
			}
		}(g)
	}
	wg.Wait()
}
