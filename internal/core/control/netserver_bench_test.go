package control

import (
	"net"
	"sync"
	"testing"
	"time"

	"printqueue/internal/tracing"
)

// The BenchmarkNetQuery suite compares the JSON line protocol against the
// binary wire (sequential, pipelined, batched) on one TCP connection.
//
// Raw loopback has ~0 RTT, so on loopback every protocol degenerates to a
// CPU benchmark and pipelining — whose entire purpose is keeping the pipe
// full across the round trip — can't be observed. The suite therefore
// injects a fixed one-way propagation delay (benchRTT/2, applied uniformly
// to every protocol via the client dialer) the way pipelining benchmarks
// conventionally do: infinite bandwidth, fixed delay, order preserved,
// writes never blocked. Per-connection queries/sec under that identical
// network is the figure of merit.
const benchRTT = 2 * time.Millisecond

// delayConn adds a fixed propagation delay to writes: Write returns
// immediately and a deliverer goroutine forwards each chunk to the
// underlying conn once its due time arrives. Delays overlap rather than
// accumulate, so N in-flight writes each see ~d, not N*d.
type delayConn struct {
	net.Conn
	d      time.Duration
	q      chan delayChunk
	closed chan struct{}
	once   sync.Once

	emu  sync.Mutex
	werr error
}

type delayChunk struct {
	due time.Time
	p   []byte
}

func newDelayConn(c net.Conn, d time.Duration) *delayConn {
	dc := &delayConn{Conn: c, d: d, q: make(chan delayChunk, 4096), closed: make(chan struct{})}
	go dc.deliver()
	return dc
}

func (dc *delayConn) deliver() {
	for {
		select {
		case <-dc.closed:
			return
		case ch := <-dc.q:
			if wait := time.Until(ch.due); wait > 0 {
				time.Sleep(wait)
			}
			if _, err := dc.Conn.Write(ch.p); err != nil {
				dc.emu.Lock()
				dc.werr = err
				dc.emu.Unlock()
				return
			}
		}
	}
}

func (dc *delayConn) Write(p []byte) (int, error) {
	dc.emu.Lock()
	err := dc.werr
	dc.emu.Unlock()
	if err != nil {
		return 0, err
	}
	buf := make([]byte, len(p))
	copy(buf, p)
	select {
	case dc.q <- delayChunk{due: time.Now().Add(dc.d), p: buf}:
		return len(p), nil
	case <-dc.closed:
		return 0, net.ErrClosed
	}
}

func (dc *delayConn) Close() error {
	dc.once.Do(func() { close(dc.closed) })
	return dc.Conn.Close()
}

func delayDialer(d time.Duration) func(string, time.Duration) (net.Conn, error) {
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		return newDelayConn(c, d), nil
	}
}

// benchNetFixture is netFixture with more query workers and a shed limit
// high enough that pipelined benchmarks measure throughput, not admission.
func benchNetFixture(b *testing.B) *NetServer {
	b.Helper()
	cfg := testConfig(0)
	s, _ := New(cfg)
	var ts uint64 = 1000
	for i := 0; i < 60; i++ {
		ts += 10
		s.OnDequeue(deq(fkey(byte(i%3)), 0, ts-40, ts, 8))
	}
	s.Finalize(ts + 1)
	qs := NewQueryServer(s)
	qs.Start(8)
	b.Cleanup(qs.Stop)
	srv, err := ServeQueriesOpts("127.0.0.1:0", qs, ServeOptions{ShedLimit: 4096})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	return srv
}

func benchDialOpts() DialOptions {
	return DialOptions{
		Timeout: 30 * time.Second,
		Dialer:  delayDialer(benchRTT / 2),
	}
}

func reportQPS(b *testing.B) {
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
}

// BenchmarkNetQueryJSON is the baseline: one JSON-line query per round
// trip, strictly sequential on one connection.
func BenchmarkNetQueryJSON(b *testing.B) {
	srv := benchNetFixture(b)
	c, err := DialOpts(srv.Addr().String(), benchDialOpts())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Interval(0, 1000, 1050); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportQPS(b)
}

// BenchmarkNetQueryBinary: the binary codec, still one query in flight at
// a time — isolates the encode/decode win from the pipelining win.
func BenchmarkNetQueryBinary(b *testing.B) {
	srv := benchNetFixture(b)
	c, err := DialMuxOpts(srv.Addr().String(), benchDialOpts())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Interval(0, 1000, 1050); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportQPS(b)
}

// BenchmarkNetQueryBinaryPipelined keeps many requests in flight over ONE
// connection — the headline number the wire v2 protocol exists for.
func BenchmarkNetQueryBinaryPipelined(b *testing.B) {
	srv := benchNetFixture(b)
	c, err := DialMuxOpts(srv.Addr().String(), benchDialOpts())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ReportAllocs()
	b.SetParallelism(64)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := c.Interval(0, 1000, 1050); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	reportQPS(b)
	if got := srv.binaryConns.Load(); got != 1 {
		b.Fatalf("pipelined benchmark used %d connections, want 1", got)
	}
}

// BenchmarkNetQueryBinaryPipelinedTraced is the pipelined benchmark with
// tracing sampling EVERY query on both sides — the worst-case tracing
// overhead. Compare against BenchmarkNetQueryBinaryPipelined (sampling
// off, which must stay within 2% of the untraced PR 6 baseline).
func BenchmarkNetQueryBinaryPipelinedTraced(b *testing.B) {
	srv := benchNetFixture(b)
	srv.qs.sys.EnableTracing(TraceOptions{SampleEvery: 1})
	opts := benchDialOpts()
	opts.Tracer = tracing.New(tracing.Config{SampleEvery: 1})
	c, err := DialMuxOpts(srv.Addr().String(), opts)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ReportAllocs()
	b.SetParallelism(64)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := c.Interval(0, 1000, 1050); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	reportQPS(b)
}

// BenchmarkNetQueryBinaryBatch amortizes framing over 64 queries per
// frame; b.N counts individual queries so queries/sec stays comparable.
func BenchmarkNetQueryBinaryBatch(b *testing.B) {
	srv := benchNetFixture(b)
	c, err := DialMuxOpts(srv.Addr().String(), benchDialOpts())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	const batchSize = 64
	qs := make([]BatchQuery, batchSize)
	for i := range qs {
		qs[i] = BatchQuery{Kind: IntervalQuery, Port: 0, Start: 1000, End: 1050}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += batchSize {
		n := batchSize
		if rem := b.N - done; rem < n {
			n = rem
		}
		if _, err := c.Batch(qs[:n]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportQPS(b)
}
