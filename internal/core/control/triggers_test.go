package control

import (
	"testing"

	"printqueue/internal/pktrec"
)

func tpkt(depth int, delay uint64, dstPort uint16, queue int) *pktrec.Packet {
	p := deq(fkey(1), 0, 1000, 1000+delay, depth)
	p.Flow.DstPort = dstPort
	p.Queue = queue
	return p
}

func TestDepthTrigger(t *testing.T) {
	tr := DepthTrigger(100)
	if tr(tpkt(99, 0, 80, 0)) || !tr(tpkt(100, 0, 80, 0)) {
		t.Fatal("depth threshold wrong")
	}
}

func TestDelayTrigger(t *testing.T) {
	tr := DelayTrigger(500)
	if tr(tpkt(0, 499, 80, 0)) || !tr(tpkt(0, 500, 80, 0)) {
		t.Fatal("delay threshold wrong")
	}
}

func TestFlowSampleTrigger(t *testing.T) {
	target := fkey(1)
	target.DstPort = 80
	tr := FlowSampleTrigger(target, 4, 7)
	fired, total := 0, 10000
	for i := 0; i < total; i++ {
		p := tpkt(0, uint64(i)*13, 80, 0)
		if tr(p) {
			fired++
		}
	}
	if fired < total/8 || fired > total/2 {
		t.Fatalf("1-in-4 sampler fired %d of %d", fired, total)
	}
	// Other flows never fire.
	other := tpkt(0, 13, 81, 0)
	for i := 0; i < 100; i++ {
		other.Meta.DeqTimedelta = uint64(i)
		if tr(other) {
			t.Fatal("sampler fired for a different flow")
		}
	}
	// n=0 is clamped to 1 (always fire for the flow).
	always := FlowSampleTrigger(target, 0, 7)
	if !always(tpkt(0, 1, 80, 0)) {
		t.Fatal("n=0 sampler did not fire")
	}
}

func TestProbeTrigger(t *testing.T) {
	tr := ProbeTrigger(7777)
	if !tr(tpkt(0, 0, 7777, 0)) || tr(tpkt(0, 0, 80, 0)) {
		t.Fatal("probe port matching wrong")
	}
}

func TestQueueClassTrigger(t *testing.T) {
	tr := QueueClassTrigger(1, DepthTrigger(10))
	if tr(tpkt(50, 0, 80, 0)) {
		t.Fatal("fired for wrong class")
	}
	if !tr(tpkt(50, 0, 80, 1)) {
		t.Fatal("did not fire for matching class")
	}
	if tr(tpkt(5, 0, 80, 1)) {
		t.Fatal("inner trigger ignored")
	}
}

func TestRandomSampleTrigger(t *testing.T) {
	tr := RandomSampleTrigger(10, 3)
	fired := 0
	for i := 0; i < 10000; i++ {
		if tr(tpkt(0, 0, 80, 0)) {
			fired++
		}
	}
	if fired < 700 || fired > 1400 {
		t.Fatalf("1-in-10 sampler fired %d of 10000", fired)
	}
}

func TestTriggerCombinators(t *testing.T) {
	deep := DepthTrigger(100)
	slow := DelayTrigger(500)
	any := AnyTrigger(deep, slow)
	all := AllTrigger(deep, slow)
	cases := []struct {
		p        *pktrec.Packet
		any, all bool
	}{
		{tpkt(200, 600, 80, 0), true, true},
		{tpkt(200, 10, 80, 0), true, false},
		{tpkt(10, 600, 80, 0), true, false},
		{tpkt(10, 10, 80, 0), false, false},
	}
	for i, c := range cases {
		if any(c.p) != c.any || all(c.p) != c.all {
			t.Fatalf("case %d: any=%v all=%v, want %v/%v", i, any(c.p), all(c.p), c.any, c.all)
		}
	}
}

// TestTriggerIntegration wires a DelayTrigger into a live System.
func TestTriggerIntegration(t *testing.T) {
	cfg := testConfig(0)
	cfg.DPTrigger = DelayTrigger(400)
	s, _ := New(cfg)
	var ts uint64 = 1000
	for i := 0; i < 20; i++ {
		ts += 10
		delay := uint64(50)
		if i == 10 {
			delay = 450
		}
		s.OnDequeue(deq(fkey(1), 0, ts-delay, ts, 5))
	}
	if got := len(s.DPQueries(0)); got != 1 {
		t.Fatalf("dp queries = %d, want 1", got)
	}
}
