package control

import (
	"fmt"
	"runtime"
	"sync"

	"printqueue/internal/pktrec"
)

// This file implements the sharded ingestion pipeline: the software
// analogue of the Tofino processing every egress port's packets in parallel
// pipeline stages (paper §6). Ports are partitioned across shard workers,
// each fed by a bounded SPSC batch ring, so aggregate throughput scales
// with cores while each port's packets are still processed by exactly one
// goroutine in dequeue order — the invariant every PrintQueue structure
// depends on. Checkpoint register copies run on a separate snapshot
// goroutine (snapshotter), mirroring the paper's double-buffered frozen
// reads over PCIe: the packet path only toggles the write selector.

// PipelineConfig tunes the sharded ingestion pipeline.
type PipelineConfig struct {
	// Shards is the number of ingestion worker goroutines. Ports are
	// assigned round-robin by activation rank. Default (0):
	// min(#ports, GOMAXPROCS).
	Shards int
	// BatchSize is the number of packets per ring batch. Default 256.
	BatchSize int
	// RingDepth is the number of batches buffered per shard before the
	// producer blocks. Default 8.
	RingDepth int
	// SnapshotQueue bounds the frozen reads queued to the snapshot
	// goroutine before flips block. Default 2*#ports (both periodic sets
	// of every port in flight).
	SnapshotQueue int
}

func (c *PipelineConfig) normalize(numPorts int) {
	if c.Shards <= 0 {
		c.Shards = numPorts
		if p := runtime.GOMAXPROCS(0); c.Shards > p {
			c.Shards = p
		}
	}
	if c.Shards > numPorts {
		c.Shards = numPorts
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.RingDepth <= 0 {
		c.RingDepth = 8
	}
	if c.SnapshotQueue <= 0 {
		c.SnapshotQueue = 2 * numPorts
	}
}

// shard is one worker's input queue plus the producer-side batch being
// filled for it.
type shard struct {
	ring *spscRing
	cur  *packetBatch
}

// Pipeline drives a System through sharded, batched ingestion. Ingest must
// be called from a single goroutine with packets in per-port dequeue order
// (the order the traffic manager emits them); the pipeline fans them out to
// the port's shard worker. Close flushes, drains the workers and the
// snapshot goroutine, and returns the System to synchronous (serial) mode.
type Pipeline struct {
	sys    *System
	cfg    PipelineConfig
	shards []*shard
	// shardOf maps a port id to its shard (dense, like System.portTab).
	shardOf []*shard
	pool    sync.Pool
	wg      sync.WaitGroup
	closed  bool
}

// NewPipeline builds and starts a pipeline over a System. The System must
// not be driven by direct OnDequeue calls (or a second pipeline) while the
// pipeline is open.
func NewPipeline(sys *System, cfg PipelineConfig) (*Pipeline, error) {
	cfg.normalize(len(sys.cfg.Ports))
	if err := sys.startSnapshotter(cfg.SnapshotQueue); err != nil {
		return nil, err
	}
	pl := &Pipeline{sys: sys, cfg: cfg}
	pl.pool.New = func() any {
		return &packetBatch{pkts: make([]pktrec.Packet, 0, cfg.BatchSize)}
	}
	pl.shards = make([]*shard, cfg.Shards)
	for i := range pl.shards {
		pl.shards[i] = &shard{ring: newSPSCRing(cfg.RingDepth)}
	}
	pl.shardOf = make([]*shard, len(sys.portTab))
	for rank, port := range sys.cfg.Ports {
		pl.shardOf[port] = pl.shards[rank%cfg.Shards]
	}
	for _, sh := range pl.shards {
		pl.wg.Add(1)
		go pl.worker(sh)
	}
	return pl, nil
}

// Ingest hands one dequeued packet to its port's shard. The packet is
// copied by value into the current batch; the caller may reuse *p. Packets
// for ports without PrintQueue are dropped, as in OnDequeue.
func (pl *Pipeline) Ingest(p *pktrec.Packet) {
	if p.Port < 0 || p.Port >= len(pl.shardOf) {
		return
	}
	sh := pl.shardOf[p.Port]
	if sh == nil {
		return
	}
	b := sh.cur
	if b == nil {
		b = pl.pool.Get().(*packetBatch)
		sh.cur = b
	}
	b.pkts = append(b.pkts, *p)
	if len(b.pkts) == cap(b.pkts) {
		sh.ring.push(b)
		sh.cur = nil
	}
}

// Flush pushes every partially filled batch to its shard so the workers see
// all packets ingested so far. It does not wait for them to be processed.
func (pl *Pipeline) Flush() {
	for _, sh := range pl.shards {
		if sh.cur != nil && len(sh.cur.pkts) > 0 {
			sh.ring.push(sh.cur)
			sh.cur = nil
		}
	}
}

// Close flushes remaining batches, waits for the shard workers to drain,
// stops the snapshot goroutine (retiring any in-flight frozen reads), and
// returns the System to synchronous mode. After Close, Finalize and queries
// observe every ingested packet. Close is idempotent.
func (pl *Pipeline) Close() {
	if pl.closed {
		return
	}
	pl.closed = true
	pl.Flush()
	for _, sh := range pl.shards {
		sh.ring.close()
	}
	pl.wg.Wait()
	pl.sys.stopSnapshotter()
}

// worker is one shard's ingestion goroutine: it owns its ports exclusively,
// so the per-port serial path (register updates, flips, DP queries) runs
// unmodified and in dequeue order.
func (pl *Pipeline) worker(sh *shard) {
	defer pl.wg.Done()
	sys := pl.sys
	for {
		b, ok := sh.ring.pop()
		if !ok {
			return
		}
		for i := range b.pkts {
			sys.OnDequeue(&b.pkts[i])
		}
		b.pkts = b.pkts[:0]
		pl.pool.Put(b)
	}
}

// snapJob is one frozen read handed to the snapshot goroutine: the register
// set of a port frozen at freezeTime, covering (prevFreeze, freezeTime].
type snapJob struct {
	ps         *portState
	sel        int
	freezeTime uint64
	prevFreeze uint64
}

// snapshotter is the background checkpoint goroutine. A single goroutine
// consumes jobs FIFO, which preserves each port's checkpoint order (jobs
// for one port are enqueued by its one shard worker, in flip order) —
// queryCheckpoints and nearestCheckpoint rely on the history being sorted
// by freeze time.
type snapshotter struct {
	sys *System
	ch  chan snapJob
	wg  sync.WaitGroup
}

func (s *System) startSnapshotter(queue int) error {
	if s.snap != nil {
		return fmt.Errorf("control: pipeline already attached to this system")
	}
	sn := &snapshotter{sys: s, ch: make(chan snapJob, queue)}
	sn.wg.Add(1)
	go sn.run()
	s.snap = sn
	return nil
}

// stopSnapshotter drains outstanding jobs and uninstalls the snapshotter;
// subsequent flips snapshot synchronously again. Must only be called once
// every ingestion worker has stopped.
func (s *System) stopSnapshotter() {
	sn := s.snap
	if sn == nil {
		return
	}
	close(sn.ch)
	sn.wg.Wait()
	s.snap = nil
}

func (sn *snapshotter) enqueue(job snapJob) { sn.ch <- job }

func (sn *snapshotter) run() {
	defer sn.wg.Done()
	for job := range sn.ch {
		cp := sn.sys.snapshotSet(job.ps, job.sel, job.freezeTime, job.prevFreeze, false)
		job.ps.retire(cp, sn.sys.cfg.MaxCheckpoints)
		job.ps.clearPending(job.sel)
	}
}
